// Unit tests of the M:N executor's shard primitives, at a smaller grain
// than the differential / chaos suites:
//
//   * sharded run-queue FIFO — per-(src,dst) delivery order survives the
//     batch drains, the full-mailbox spill path and work-stealing worker
//     handoffs;
//   * steal determinism — lifecycleCounts() and the conservation counters
//     of a fixed manual-control schedule are identical with stealing on
//     and off (stealing may move work between OS threads, never change
//     what happens);
//   * spill-hold FIFO across owner handoffs — the regression test for the
//     latent single-THREAD assumption in the spill-hold path (rt/faults.h):
//     with latency spikes on every send and stealing on, consecutive
//     flushes of one rank's spill legally run on different workers, and
//     the (src,dst) stream must still never reorder. The ownership rule
//     is single-OWNER (shard-lock holder), which RtWorld::assertSenderOwned
//     enforces in debug builds.
//
// The timer wheel's shard-confinement abort lives in test_sync.cpp (it
// needs the LOADEX_SYNC_FORCE_DEBUG build), and the mailbox batch-drain
// equivalence in test_rt_mailbox.cpp next to the other mailbox units.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rt/world.h"
#include "sim/application.h"
#include "sim/message.h"

namespace loadex::rt {
namespace {

/// Records (src, tag) arrival order. Written only by the rank's owner
/// (whoever holds its shard lock), read after stop() — no lock needed.
struct RecordingHandler : sim::StateHandler {
  std::vector<std::pair<Rank, int>> seen;
  void onStateMessage(const sim::Message& m) override {
    seen.emplace_back(m.src, m.tag);
  }
};

/// The tags rank `dst` saw from rank `src`, in arrival order.
std::vector<int> tagsFrom(const RecordingHandler& h, Rank src) {
  std::vector<int> tags;
  for (const auto& [s, t] : h.seen)
    if (s == src) tags.push_back(t);
  return tags;
}

void expectFifo(const std::vector<int>& tags, int want_count) {
  ASSERT_EQ(static_cast<int>(tags.size()), want_count);
  for (int i = 0; i < want_count; ++i)
    ASSERT_EQ(tags[static_cast<std::size_t>(i)], i)
        << "per-pair stream reordered at position " << i;
}

// ---- sharded run-queue FIFO ------------------------------------------------

// Two sender ranks broadcast tagged streams through 8-slot mailboxes on a
// 2-worker, stealing pool: nearly every send takes the spill path, spill
// flushes and mailbox drains interleave across workers, and every
// (src,dst) stream must still arrive in send order.
TEST(RtExecutorShard, RunQueueKeepsPerPairFifoThroughSpillAndSteal) {
  constexpr int kProcs = 8;
  constexpr int kMsgs = 100;
  const Rank senders[] = {0, 5};  // rank % shards puts them on different shards

  RtConfig rcfg;
  rcfg.nprocs = kProcs;
  rcfg.executor.workers = 2;
  rcfg.executor.steal = true;
  rcfg.mailbox.capacity = 8;
  RtWorld world(rcfg);
  std::vector<core::Transport*> tr = world.transports();

  std::vector<RecordingHandler> handlers(kProcs);
  for (Rank r = 0; r < kProcs; ++r) world.attach(r, &handlers[r]);
  world.start();
  EXPECT_EQ(world.workerCount(), 2);
  EXPECT_GE(world.shardCount(), 2);

  for (Rank src : senders)
    world.post(src, [&tr, src] {
      for (int seq = 0; seq < kMsgs; ++seq)
        for (Rank dst = 0; dst < kProcs; ++dst) {
          if (dst == src) continue;
          tr[static_cast<std::size_t>(src)]->sendState(
              dst, static_cast<core::StateTag>(seq), /*size=*/8, nullptr);
        }
    });
  ASSERT_TRUE(world.drain(60.0));
  world.stop();

  const RtRunStats st = world.runStats();
  EXPECT_EQ(st.state_posted, 2 * kMsgs * (kProcs - 1));
  EXPECT_EQ(st.state_posted, st.state_delivered);
  EXPECT_GT(st.spill_enqueues, 0) << "8-slot mailboxes never spilled?";

  for (Rank dst = 0; dst < kProcs; ++dst)
    for (Rank src : senders) {
      if (dst == src) continue;
      SCOPED_TRACE("src=" + std::to_string(src) +
                   " dst=" + std::to_string(dst));
      expectFifo(tagsFrom(handlers[static_cast<std::size_t>(dst)], src),
                 kMsgs);
    }
}

// ---- steal-vs-no-steal determinism -----------------------------------------

struct LifecycleOutcome {
  RtWorld::LifecycleCounts counts;
  RtRunStats stats;
};

/// A fixed manual-control schedule, drained to quiescence between phases
/// so its outcome is schedule-determined, not timing-determined.
LifecycleOutcome runManualSchedule(bool steal) {
  constexpr int kProcs = 16;
  RtConfig rcfg;
  rcfg.nprocs = kProcs;
  rcfg.executor.workers = 2;
  rcfg.executor.steal = steal;
  rcfg.faults.manual_control = true;
  RtWorld world(rcfg);
  std::vector<RecordingHandler> handlers(kProcs);
  for (Rank r = 0; r < kProcs; ++r) world.attach(r, &handlers[r]);
  world.start();

  const auto postAll = [&world] {
    for (Rank r = 0; r < world.nprocs(); ++r) world.post(r, [] {});
  };
  postAll();                        // 16 delivered
  EXPECT_TRUE(world.drain(30.0));
  world.crashRank(3);
  postAll();                        // 15 delivered, 1 dropped at the seal
  EXPECT_TRUE(world.drain(30.0));
  world.pauseRank(5);
  world.restartRank(3);
  world.resumeRank(5);
  postAll();                        // 16 delivered again
  EXPECT_TRUE(world.drain(30.0));
  world.stop();

  LifecycleOutcome out;
  out.counts = world.lifecycleCounts();
  out.stats = world.runStats();
  return out;
}

TEST(RtExecutorShard, LifecycleCountsAreStealInvariant) {
  const LifecycleOutcome on = runManualSchedule(/*steal=*/true);
  const LifecycleOutcome off = runManualSchedule(/*steal=*/false);

  EXPECT_EQ(on.counts.crashes, 1);
  EXPECT_EQ(on.counts.restarts, 1);
  EXPECT_EQ(on.counts.crashes, off.counts.crashes);
  EXPECT_EQ(on.counts.restarts, off.counts.restarts);
  EXPECT_EQ(on.counts.suspects_flagged, off.counts.suspects_flagged);
  EXPECT_EQ(on.counts.deaths_declared, off.counts.deaths_declared);
  EXPECT_EQ(on.counts.revives, off.counts.revives);

  // The conservation ledger of the fixed schedule is steal-invariant too.
  EXPECT_EQ(on.stats.task_posted, 48);
  EXPECT_EQ(on.stats.task_delivered, 47);
  EXPECT_EQ(on.stats.task_dropped, 1);
  EXPECT_EQ(on.stats.task_posted, off.stats.task_posted);
  EXPECT_EQ(on.stats.task_delivered, off.stats.task_delivered);
  EXPECT_EQ(on.stats.task_dropped, off.stats.task_dropped);
  EXPECT_EQ(on.stats.dropped_at_sealed_mailbox,
            off.stats.dropped_at_sealed_mailbox);
}

// ---- spill-hold FIFO across worker handoffs --------------------------------

// Regression for the spill-hold single-thread assumption (rt/faults.h):
// with a 100% latency-spike plan every state send is parked in the
// sender's spill queue with a release time, and with stealing on a
// 2-worker pool the flushing worker is routinely a different OS thread
// from the one that enqueued. The hold must delay the whole (src,dst)
// stream — never let one envelope past its successors — across those
// handoffs. (Ownership is the shard lock, not a thread identity;
// RtWorld::assertSenderOwned aborts debug builds if a non-owner flushes.)
TEST(RtExecutorShard, SpillHoldFifoSurvivesWorkerHandoff) {
  constexpr int kProcs = 4;
  constexpr int kMsgs = 120;

  RtConfig rcfg;
  rcfg.nprocs = kProcs;
  rcfg.executor.workers = 2;
  rcfg.executor.steal = true;
  rcfg.mailbox.capacity = 16;
  rcfg.faults.messages.latency_spike_prob = 1.0;
  rcfg.faults.messages.latency_spike_s = 0.5e-3;
  rcfg.faults.messages.affects_state = true;
  rcfg.faults.messages.affects_app = false;
  rcfg.faults.messages.seed = 7;
  RtWorld world(rcfg);
  std::vector<core::Transport*> tr = world.transports();

  std::vector<RecordingHandler> handlers(kProcs);
  for (Rank r = 0; r < kProcs; ++r) world.attach(r, &handlers[r]);
  world.start();

  world.post(0, [&tr] {
    for (int seq = 0; seq < kMsgs; ++seq)
      for (Rank dst = 1; dst < kProcs; ++dst)
        tr[0]->sendState(dst, static_cast<core::StateTag>(seq), /*size=*/8, nullptr);
  });
  ASSERT_TRUE(world.drain(60.0));
  world.stop();

  const RtRunStats st = world.runStats();
  EXPECT_EQ(st.state_posted, kMsgs * (kProcs - 1));
  EXPECT_EQ(st.latency_spikes, st.state_posted)
      << "every send must take the spill-hold path";
  EXPECT_EQ(st.state_posted, st.state_delivered)
      << "a held envelope was lost";
  EXPECT_EQ(st.state_dropped, 0);

  for (Rank dst = 1; dst < kProcs; ++dst) {
    SCOPED_TRACE("dst=" + std::to_string(dst));
    expectFifo(tagsFrom(handlers[static_cast<std::size_t>(dst)], 0), kMsgs);
  }
}

// ---- executor shape resolution ---------------------------------------------

TEST(RtExecutorShard, AutoShapeClampsWorkersToShardsAndRanks) {
  {
    RtConfig rcfg;
    rcfg.nprocs = 2;
    rcfg.executor.workers = 8;  // more workers than ranks
    RtWorld world(rcfg);
    RecordingHandler h0, h1;
    world.attach(0, &h0);
    world.attach(1, &h1);
    world.start();
    EXPECT_EQ(world.shardCount(), 2);   // shards clamp to nprocs
    EXPECT_EQ(world.workerCount(), 2);  // workers clamp to shards
    world.stop();
  }
  {
    RtConfig rcfg;
    rcfg.nprocs = 6;
    rcfg.executor.workers = 2;
    rcfg.executor.shards = 3;
    RtWorld world(rcfg);
    std::vector<RecordingHandler> handlers(6);
    for (Rank r = 0; r < 6; ++r) world.attach(r, &handlers[r]);
    world.start();
    EXPECT_EQ(world.shardCount(), 3);
    EXPECT_EQ(world.workerCount(), 2);
    EXPECT_FALSE(world.usingLegacyExecutor());
    world.stop();
  }
}

}  // namespace
}  // namespace loadex::rt
