// Exact message-count and byte-accounting properties of the mechanisms —
// the quantities Table 6 reports must follow closed-form protocol costs.
#include <gtest/gtest.h>

#include "sim_test_utils.h"

namespace loadex::core {
namespace {

using test::CoreHarness;

TEST(MessageCounts, NaiveBroadcastsPerThresholdCrossing) {
  MechanismConfig cfg;
  cfg.threshold = {10.0, 10.0};
  const int n = 6;
  CoreHarness h(n, MechanismKind::kNaive, cfg);
  // 5 changes of +6: crossings at cumulative 12, 24 (drift resets at each
  // broadcast): +6 (6), +6 (12 -> send), +6 (6), +6 (12 -> send), +6 (6).
  for (int i = 0; i < 5; ++i)
    h.at(0.1 + i * 0.1, [&h] { h.mechs.at(0).addLocalLoad({6.0, 0.0}); });
  h.run();
  const auto& st = h.mechs.at(0).stats();
  EXPECT_EQ(st.sent_by_tag.get("update_abs"), 2 * (n - 1));
  EXPECT_EQ(st.bytes_sent,
            2 * (n - 1) * UpdateAbsolutePayload::sizeBytes());
}

TEST(MessageCounts, IncrementAccumulatorResetsExactly) {
  MechanismConfig cfg;
  cfg.threshold = {10.0, 10.0};
  const int n = 4;
  CoreHarness h(n, MechanismKind::kIncrement, cfg);
  // +6, +6 (12 -> send, reset), -4, -4, -4 (-12 -> send, reset), +6.
  const double deltas[] = {6, 6, -4, -4, -4, 6};
  for (int i = 0; i < 6; ++i) {
    const double d = deltas[i];
    h.at(0.1 + i * 0.1, [&h, d] { h.mechs.at(0).addLocalLoad({d, 0.0}); });
  }
  h.run();
  EXPECT_EQ(h.mechs.at(0).stats().sent_by_tag.get("update_delta"),
            2 * (n - 1));
  // Everyone agrees on the broadcast part; the trailing +6 is pending.
  EXPECT_DOUBLE_EQ(h.mechs.at(2).view().load(0).workload, 0.0);
  EXPECT_DOUBLE_EQ(h.mechs.at(0).localLoad().workload, 6.0);
}

TEST(MessageCounts, MasterToAllCostsOneBroadcastPerSelection) {
  MechanismConfig cfg;
  cfg.threshold = {1e18, 1e18};  // silence updates entirely
  cfg.no_more_master = false;
  const int n = 8;
  CoreHarness h(n, MechanismKind::kIncrement, cfg);
  const int selections = 5;
  for (int s = 0; s < selections; ++s) {
    h.at(0.1 + s * 0.1, [&h] {
      auto& m = h.mechs.at(0);
      m.requestView([](const LoadView&) {});
      m.commitSelection({{1, {10, 0}}, {2, {10, 0}}});
    });
  }
  h.run();
  const auto total = h.mechs.aggregateStats();
  EXPECT_EQ(total.sent_by_tag.get("master_to_all"), selections * (n - 1));
  EXPECT_EQ(total.messagesSent(), selections * (n - 1));
  EXPECT_EQ(total.bytes_sent,
            selections * (n - 1) * MasterToAllPayload::sizeBytes(2));
}

TEST(MessageCounts, SnapshotSequentialDecisionsCostFormula) {
  const int n = 7;
  CoreHarness h(n, MechanismKind::kSnapshot);
  const int decisions = 4;
  // Spaced far enough apart that no two snapshots overlap: each costs
  // exactly (n-1) start + (n-1) snp + (n-1) end + 1 master_to_slave.
  for (int d = 0; d < decisions; ++d) {
    h.at(1.0 + d * 10.0, [&h] {
      h.mechs.at(0).requestView([&h](const LoadView&) {
        h.mechs.at(0).commitSelection({{3, {10, 0}}});
      });
    });
  }
  h.run();
  const auto total = h.mechs.aggregateStats();
  EXPECT_EQ(total.sent_by_tag.get("start_snp"), decisions * (n - 1));
  EXPECT_EQ(total.sent_by_tag.get("snp"), decisions * (n - 1));
  EXPECT_EQ(total.sent_by_tag.get("end_snp"), decisions * (n - 1));
  EXPECT_EQ(total.sent_by_tag.get("master_to_slave"), decisions);
  EXPECT_EQ(total.snapshot_rearms, 0);
  EXPECT_EQ(total.messagesSent(),
            decisions * (3 * (n - 1) + 1));
}

TEST(MessageCounts, SnapshotAnswersAreBiggerMessages) {
  // §4.5 note: "the size of each message is larger for the snapshot-based
  // algorithm since we can send all the metrics required in a single
  // message."
  EXPECT_GT(SnpPayload::sizeBytes(), UpdateDeltaPayload::sizeBytes());
  EXPECT_GT(SnpPayload::sizeBytes(), UpdateAbsolutePayload::sizeBytes());
}

TEST(MessageCounts, NetworkAndMechanismCountsAgree) {
  // The network's state-channel tally must equal the mechanisms' sends.
  MechanismConfig cfg;
  cfg.threshold = {0.0, 0.0};
  CoreHarness h(5, MechanismKind::kIncrement, cfg);
  for (int i = 0; i < 10; ++i)
    h.at(0.1 + i * 0.05, [&h, i] {
      h.mechs.at(i % 5).addLocalLoad({1.0 + i, 0.0});
    });
  h.run();
  EXPECT_EQ(h.world.network().messageCounts().get("state"),
            h.mechs.aggregateStats().messagesSent());
}

}  // namespace
}  // namespace loadex::core
