// Randomized differential harness for the pooled/lazy simulation kernel.
//
// Every scenario draws a world size, mechanism kind, thresholds, jitter and
// message-fault configuration from a seeded RNG, builds the identical
// scripted workload twice — once with NetworkConfig::legacy_kernel (each
// broadcast destination scheduled as its own event, the pre-pool kernel's
// behaviour) and once with the lazy logical-broadcast fast path — and
// asserts the two runs are observably identical: same schedule digest,
// same makespan, same event count, same per-channel message counts and
// wire bytes, same fault statistics. A ProtocolAuditor rides along on both
// runs and must stay clean.
//
// This is the safety net that lets the kernel optimise representation
// (slab pool, 4-ary heap, O(1) broadcast enqueue) while proving it never
// changes *what* the simulator computes.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/world_harness.h"

namespace loadex {
namespace {

using core::LoadMetrics;
using core::MechanismKind;

// ---- scenario plan --------------------------------------------------------

struct LoadOp {
  SimTime time = 0.0;
  Rank rank = 0;
  double workload = 0.0;
  double memory = 0.0;
};

struct TaskOp {
  SimTime time = 0.0;
  Rank rank = 0;
  Flops work = 0.0;
};

struct SelectOp {
  SimTime time = 0.0;
  Rank master = 0;
  double share = 0.0;
};

struct Scenario {
  std::uint64_t seed = 0;
  int nprocs = 4;
  MechanismKind kind = MechanismKind::kNaive;
  bool hardened = false;  ///< increment only: reliable_updates
  double threshold = 5.0;
  double jitter_s = 0.0;
  sim::FaultPlan faults;
  std::vector<LoadOp> loads;
  std::vector<TaskOp> tasks;
  std::vector<SelectOp> selections;
  Rank no_more_master = kNoRank;  ///< rank announcing No_more_master, if any
  SimTime no_more_master_at = 0.0;
};

Scenario drawScenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.seed = seed;
  s.nprocs = static_cast<int>(4 + rng.uniformInt(29));  // 4..32
  switch (rng.uniformInt(3)) {
    case 0: s.kind = MechanismKind::kNaive; break;
    case 1: s.kind = MechanismKind::kIncrement; break;
    default: s.kind = MechanismKind::kSnapshot; break;
  }
  if (s.kind == MechanismKind::kIncrement) s.hardened = rng.uniformInt(2) == 0;
  s.threshold = rng.uniformReal(0.5, 15.0);
  if (rng.uniformInt(2) == 0) s.jitter_s = rng.uniformReal(1e-6, 1e-4);

  // One scenario in three runs on a lossy network. The snapshot protocol
  // has no recovery from a lost start_snp (the paper assumes MPI
  // reliability), so faults stay on the two update-style mechanisms.
  if (rng.uniformInt(3) == 0 && s.kind != MechanismKind::kSnapshot) {
    s.faults.drop_prob = rng.uniformReal(0.0, 0.08);
    s.faults.duplicate_prob = rng.uniformReal(0.0, 0.08);
    s.faults.latency_spike_prob = rng.uniformReal(0.0, 0.1);
    s.faults.latency_spike_s = rng.uniformReal(1e-5, 1e-3);
    s.faults.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
    // State-only faults: a duplicated *app* message would double-apply
    // delegated work and trip the auditor's reservation accounting.
    s.faults.affects_app = false;
    if (rng.uniformInt(2) == 0) {
      const SimTime start = rng.uniformReal(0.1, 0.5);
      s.faults.blackouts.push_back(
          {kNoRank, static_cast<Rank>(rng.uniformInt(
                        static_cast<std::uint64_t>(s.nprocs))),
           start, start + rng.uniformReal(0.05, 0.2)});
    }
  }

  const auto randRank = [&] {
    return static_cast<Rank>(
        rng.uniformInt(static_cast<std::uint64_t>(s.nprocs)));
  };

  const int nloads = s.nprocs * 4 + static_cast<int>(rng.uniformInt(20));
  for (int i = 0; i < nloads; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0), randRank(),
                       rng.uniformReal(-4.0, 24.0), rng.uniformReal(0.0, 8.0)});

  const int ntasks = s.nprocs + static_cast<int>(rng.uniformInt(12));
  for (int i = 0; i < ntasks; ++i)
    s.tasks.push_back({rng.uniformReal(0.01, 0.8), randRank(),
                       rng.uniformReal(1e3, 5e5)});

  // A few masters take decisions; each selection delegates real work so
  // the auditor's reservation accounting closes.
  const int nsel = 1 + static_cast<int>(rng.uniformInt(4));
  for (int i = 0; i < nsel; ++i)
    s.selections.push_back({0.3 + 0.25 * i + rng.uniformReal(0.0, 0.1),
                            randRank(), rng.uniformReal(5.0, 40.0)});

  if (rng.uniformInt(4) == 0) {
    s.no_more_master = randRank();
    s.no_more_master_at = rng.uniformReal(0.6, 0.9);
  }
  return s;
}

// ---- running one kernel ---------------------------------------------------

struct Observed {
  std::uint64_t digest = 0;
  SimTime end_time = 0.0;
  std::uint64_t events = 0;
  std::map<std::string, std::int64_t> counts;
  Bytes bytes_sent = 0;
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t spikes = 0;
  sim::BroadcastPathStats bcast;
  sim::PoolStats pool;
};

Rank leastLoaded(const core::LoadView& v, Rank self) {
  Rank best = kNoRank;
  for (Rank r = 0; r < v.nprocs(); ++r) {
    if (r == self) continue;
    if (best == kNoRank || v.load(r).workload < v.load(best).workload)
      best = r;
  }
  return best;
}

Observed runScenario(const Scenario& s, bool legacy_kernel) {
  sim::WorldConfig wcfg;
  wcfg.network.jitter_s = s.jitter_s;
  wcfg.network.faults = s.faults;
  wcfg.network.legacy_kernel = legacy_kernel;
  core::MechanismConfig mcfg;
  mcfg.threshold = {s.threshold, s.threshold};
  mcfg.reliability.reliable_updates = s.hardened;
  harness::CoreHarness h(s.nprocs, s.kind, mcfg, wcfg);

  core::AuditorConfig acfg;
  acfg.allow_message_loss = s.faults.enabled();
  acfg.check_snapshot = !s.faults.enabled();
  // A rank that announced No_more_master stops receiving updates, so its
  // own view goes legitimately stale — the conservation invariant only
  // holds scenario-wide without that optimisation.
  acfg.check_conservation = s.no_more_master == kNoRank;
  h.attachAuditor(acfg);

  for (const LoadOp& op : s.loads)
    h.at(op.time, [&h, op] {
      h.mechs.at(op.rank).addLocalLoad({op.workload, op.memory});
    });
  for (const TaskOp& op : s.tasks)
    h.at(op.time, [&h, op] {
      h.app.pushTask(op.rank, op.work);
      h.world.process(op.rank).notifyReadyWork();
    });
  for (const SelectOp& op : s.selections)
    h.atWhenFree(op.time, op.master, [&h, op] {
      auto& m = h.mechs.at(op.master);
      m.requestView([&h, op, &m](const core::LoadView& v) {
        const Rank slave = leastLoaded(v, op.master);
        if (slave == kNoRank) return;
        m.commitSelection({{slave, {op.share, 0.0}}});
        harness::sendWork(h.world.process(op.master), slave,
                          /*work=*/op.share * 1e3, {op.share, 0.0},
                          /*is_slave_delegated=*/true);
      });
    });
  if (s.no_more_master != kNoRank)
    h.at(s.no_more_master_at,
         [&h, r = s.no_more_master] { h.mechs.at(r).noMoreMaster(); });

  const sim::RunResult res = h.run();
  h.finishAudit();

  Observed o;
  o.digest = res.schedule_digest;
  o.end_time = res.end_time;
  o.events = res.events;
  o.counts = h.world.network().messageCounts().all();
  o.bytes_sent = h.world.network().bytesSent();
  o.dropped = res.messages_dropped;
  o.duplicated = res.messages_duplicated;
  o.spikes = res.latency_spikes;
  o.bcast = h.world.network().broadcastStats();
  o.pool = h.world.queue().poolStats();
  return o;
}

// ---- the differential property --------------------------------------------

class ScaleDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScaleDifferential, LazyKernelIsObservablyIdenticalToLegacy) {
  const Scenario s = drawScenario(GetParam());
  SCOPED_TRACE("seed=" + std::to_string(s.seed) +
               " nprocs=" + std::to_string(s.nprocs) +
               " kind=" + core::mechanismKindName(s.kind) +
               (s.hardened ? " hardened" : "") +
               (s.faults.enabled() ? " faults" : ""));

  const Observed legacy = runScenario(s, /*legacy_kernel=*/true);
  const Observed lazy = runScenario(s, /*legacy_kernel=*/false);

  EXPECT_EQ(legacy.digest, lazy.digest);
  EXPECT_DOUBLE_EQ(legacy.end_time, lazy.end_time);
  EXPECT_EQ(legacy.events, lazy.events);
  EXPECT_EQ(legacy.counts, lazy.counts);
  EXPECT_EQ(legacy.bytes_sent, lazy.bytes_sent);
  EXPECT_EQ(legacy.dropped, lazy.dropped);
  EXPECT_EQ(legacy.duplicated, lazy.duplicated);
  EXPECT_EQ(legacy.spikes, lazy.spikes);

  // The legacy escape hatch never coalesces; the lazy path accounts every
  // coalesced delivery it fans out.
  EXPECT_EQ(legacy.bcast.logical_broadcasts, 0);
  EXPECT_GE(lazy.bcast.fanout_deliveries, lazy.bcast.logical_broadcasts);
  EXPECT_EQ(lazy.pool.broadcast_deliveries,
            static_cast<std::uint64_t>(lazy.bcast.fanout_deliveries));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleDifferential,
                         ::testing::Range<std::uint64_t>(1, 51));

// A plain threshold-crossing broadcast storm must actually take the lazy
// path (the differential property above would trivially hold if
// broadcast() always fell back to per-destination sends).
TEST(ScaleDifferential, LazyPathEngagesOnBroadcastStorms) {
  Rng rng(1234);
  Scenario s;
  s.kind = MechanismKind::kNaive;
  s.nprocs = 24;
  s.threshold = 1.0;
  for (int i = 0; i < 120; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0),
                       static_cast<Rank>(rng.uniformInt(24)),
                       rng.uniformReal(2.0, 24.0), 0.0});
  const Observed lazy = runScenario(s, /*legacy_kernel=*/false);
  EXPECT_GT(lazy.bcast.logical_broadcasts, 0);
  EXPECT_GT(lazy.bcast.fanout_deliveries, lazy.bcast.logical_broadcasts);
  // Fan-out deliveries cost zero extra pool nodes, so the pooled kernel
  // allocates far fewer nodes than the legacy one for the same schedule.
  const Observed legacy = runScenario(s, /*legacy_kernel=*/true);
  EXPECT_LT(lazy.pool.node_allocations, legacy.pool.node_allocations);
  EXPECT_EQ(lazy.digest, legacy.digest);
}

}  // namespace
}  // namespace loadex
