#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/expect.h"

namespace loadex {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 1.25);
}

TEST(Accumulator, EmptyThrows) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW(acc.mean(), ContractViolation);
  EXPECT_THROW(acc.min(), ContractViolation);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 0.5);
    all.add(i * 0.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(PeakTracker, TracksMaximum) {
  PeakTracker t;
  t.add(10.0);
  t.add(5.0);
  EXPECT_DOUBLE_EQ(t.peak(), 15.0);
  t.add(-12.0);
  EXPECT_DOUBLE_EQ(t.current(), 3.0);
  EXPECT_DOUBLE_EQ(t.peak(), 15.0);
  t.add(20.0);
  EXPECT_DOUBLE_EQ(t.peak(), 23.0);
}

TEST(PeakTracker, SetAndReset) {
  PeakTracker t;
  t.set(7.0);
  t.set(3.0);
  EXPECT_DOUBLE_EQ(t.current(), 3.0);
  EXPECT_DOUBLE_EQ(t.peak(), 7.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.current(), 0.0);
  EXPECT_DOUBLE_EQ(t.peak(), 0.0);
}

TEST(CounterSet, BumpAndTotal) {
  CounterSet c;
  c.bump("a");
  c.bump("a", 4);
  c.bump("b", 2);
  EXPECT_EQ(c.get("a"), 5);
  EXPECT_EQ(c.get("b"), 2);
  EXPECT_EQ(c.get("missing"), 0);
  EXPECT_EQ(c.total(), 7);
}

TEST(CounterSet, Merge) {
  CounterSet a, b;
  a.bump("x", 1);
  b.bump("x", 2);
  b.bump("y", 3);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 3);
  EXPECT_EQ(a.get("y"), 3);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> s{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(s, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50), ContractViolation);
}

}  // namespace
}  // namespace loadex
