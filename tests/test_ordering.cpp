#include "ordering/ordering.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/expect.h"
#include "common/rng.h"
#include "sparse/generators.h"
#include "symbolic/analysis.h"

namespace loadex::ordering {
namespace {

sparse::Pattern path(int n) {
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  return sparse::Pattern::fromEdges(n, std::move(e));
}

std::int64_t fillOf(const sparse::Pattern& p, const std::vector<int>& perm) {
  const auto a = symbolic::analyze(p, perm);
  return a.factor_nnz;
}

TEST(Rcm, IsPermutationOnGrids) {
  const auto g = sparse::grid2d(7, 9);
  EXPECT_TRUE(sparse::isPermutation(reverseCuthillMcKee(g)));
}

TEST(Rcm, HandlesDisconnected) {
  const auto p = sparse::Pattern::fromEdges(7, {{0, 1}, {1, 2}, {4, 5}});
  const auto perm = reverseCuthillMcKee(p);
  EXPECT_TRUE(sparse::isPermutation(perm));
}

TEST(Rcm, ReducesBandwidthOnShuffledPath) {
  // A path graph with scrambled labels has terrible natural bandwidth;
  // RCM must recover an (almost) banded ordering.
  Rng rng(3);
  auto scramble = sparse::identityPermutation(40);
  rng.shuffle(scramble);
  const auto p = path(40).permuted(scramble);
  const auto perm = reverseCuthillMcKee(p);
  const auto q = p.permuted(perm);
  int bw = 0;
  for (int i = 0; i < q.n(); ++i)
    for (const int j : q.row(i)) bw = std::max(bw, std::abs(i - j));
  EXPECT_LE(bw, 2);  // a path has optimal bandwidth 1
}

TEST(MinDegree, IsPermutation) {
  const auto g = sparse::grid2d(8, 8);
  EXPECT_TRUE(sparse::isPermutation(minimumDegree(g)));
}

TEST(MinDegree, NoFillOnTreeGraph) {
  // Eliminating a tree in minimum-degree order creates zero fill:
  // factor nnz == edges + diagonal.
  std::vector<std::pair<int, int>> e;
  for (int i = 1; i < 31; ++i) e.emplace_back(i, (i - 1) / 2);  // binary tree
  const auto t = sparse::Pattern::fromEdges(31, std::move(e));
  const auto perm = minimumDegree(t);
  EXPECT_EQ(fillOf(t, perm), 31 + 30);
}

TEST(MinDegree, BeatsNaturalOrderOnGrid) {
  const auto g = sparse::grid2d(12, 12);
  const auto md = fillOf(g, minimumDegree(g));
  const auto nat = fillOf(g, sparse::identityPermutation(g.n()));
  EXPECT_LT(md, nat);
}

TEST(NestedDissection, IsPermutationOnSuite) {
  Rng rng(5);
  for (const auto& p :
       {sparse::grid2d(15, 17), sparse::grid3d(6, 7, 8),
        sparse::circuitLike(800, 4, 5, rng), sparse::randomMesh(600, 6, rng)}) {
    EXPECT_TRUE(sparse::isPermutation(nestedDissection(p))) << p.n();
  }
}

TEST(NestedDissection, HandlesIsolatedVertices) {
  const auto p = sparse::Pattern::fromEdges(10, {{0, 1}, {2, 3}});
  EXPECT_TRUE(sparse::isPermutation(nestedDissection(p)));
}

TEST(NestedDissection, BeatsRcmFillOnGrid) {
  const auto g = sparse::grid2d(24, 24);
  const auto nd = fillOf(g, nestedDissection(g));
  const auto rcm = fillOf(g, reverseCuthillMcKee(g));
  EXPECT_LT(nd, rcm);
}

TEST(NestedDissection, SeparatorLandsLastOnGrid) {
  // The top-level separator of a grid is eliminated last; the final
  // vertices of the ordering must form a small, connected-ish cut.
  const auto g = sparse::grid2d(16, 16);
  NestedDissectionOptions opts;
  opts.leaf_size = 16;
  const auto perm = nestedDissection(g, opts);
  EXPECT_TRUE(sparse::isPermutation(perm));
  // Fill must be far below the dense worst case.
  const auto a = symbolic::analyze(g, perm);
  EXPECT_LT(a.factor_nnz, static_cast<std::int64_t>(g.n()) * g.n() / 8);
}

TEST(OrderingKind, ParseAndName) {
  EXPECT_EQ(parseOrderingKind("nd"), OrderingKind::kNestedDissection);
  EXPECT_EQ(parseOrderingKind("metis"), OrderingKind::kNestedDissection);
  EXPECT_EQ(parseOrderingKind("rcm"), OrderingKind::kRcm);
  EXPECT_EQ(parseOrderingKind("amd"), OrderingKind::kMinDegree);
  EXPECT_EQ(parseOrderingKind("natural"), OrderingKind::kNatural);
  EXPECT_THROW(parseOrderingKind("sorcery"), ContractViolation);
  EXPECT_STREQ(orderingKindName(OrderingKind::kRcm), "rcm");
}

// Property sweep: every ordering is a permutation and never loses to the
// dense factor on fill.
using OrderingParams = std::tuple<OrderingKind, int /*which graph*/>;

class OrderingProperty : public ::testing::TestWithParam<OrderingParams> {};

TEST_P(OrderingProperty, ValidAndBounded) {
  const auto [kind, which] = GetParam();
  Rng rng(11 + which);
  sparse::Pattern g;
  switch (which) {
    case 0: g = sparse::grid2d(11, 13); break;
    case 1: g = sparse::grid3d(5, 5, 5); break;
    case 2: g = sparse::circuitLike(400, 4, 4, rng); break;
    default: g = sparse::lpAAT(150, 220, 4, rng); break;
  }
  const auto perm = computeOrdering(g, kind);
  ASSERT_TRUE(sparse::isPermutation(perm));
  const auto a = symbolic::analyze(g, perm);
  const std::int64_t dense =
      static_cast<std::int64_t>(g.n()) * (g.n() + 1) / 2;
  EXPECT_GE(a.factor_nnz, g.n());
  EXPECT_LE(a.factor_nnz, dense);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderingProperty,
    ::testing::Combine(::testing::Values(OrderingKind::kNatural,
                                         OrderingKind::kRcm,
                                         OrderingKind::kMinDegree,
                                         OrderingKind::kNestedDissection),
                       ::testing::Values(0, 1, 2, 3)),
    [](const ::testing::TestParamInfo<OrderingParams>& info) {
      return std::string(orderingKindName(std::get<0>(info.param))) + "_g" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace loadex::ordering
