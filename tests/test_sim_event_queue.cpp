#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/expect.h"
#include "common/rng.h"

namespace loadex::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.scheduleAt(3.0, [&] { order.push_back(3); });
  q.scheduleAt(1.0, [&] { order.push_back(1); });
  q.scheduleAt(2.0, [&] { order.push_back(2); });
  q.runUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.scheduleAt(1.0, [&, i] { order.push_back(i); });
  q.runUntil();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired_at = -1;
  q.scheduleAt(5.0, [&] {
    q.scheduleAfter(2.0, [&] { fired_at = q.now(); });
  });
  q.runUntil();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.scheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.runUntil();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  const EventId id = q.scheduleAt(1.0, [] {});
  q.runUntil();
  EXPECT_FALSE(q.cancel(id));  // already fired
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.scheduleAt(10.0, [] {});
  q.runUntil();
  EXPECT_THROW(q.scheduleAt(5.0, [] {}), ContractViolation);
  EXPECT_THROW(q.scheduleAfter(-1.0, [] {}), ContractViolation);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.scheduleAt(1.0, [&] { ++fired; });
  q.scheduleAt(2.0, [&] { ++fired; });
  q.scheduleAt(3.0, [&] { ++fired; });
  EXPECT_EQ(q.runUntil(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pendingCount(), 1u);
  EXPECT_DOUBLE_EQ(q.nextEventTime(), 3.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.scheduleAfter(1.0, recurse);
  };
  q.scheduleAt(0.0, recurse);
  q.runUntil();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, FiredCountAndPending) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.scheduleAt(i, [] {});
  EXPECT_EQ(q.pendingCount(), 7u);
  q.runUntil();
  EXPECT_EQ(q.firedCount(), 7u);
  EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, CancelInsideHandler) {
  EventQueue q;
  bool late_fired = false;
  EventId late = q.scheduleAt(5.0, [&] { late_fired = true; });
  q.scheduleAt(1.0, [&] { q.cancel(late); });
  q.runUntil();
  EXPECT_FALSE(late_fired);
}

// ---------------------------------------------------------------------------
// Determinism regressions. The kernel's ordering contract — (time,
// insertion sequence) — is what makes whole-simulation replay bit-for-bit
// reproducible; these tests pin it down explicitly.
// ---------------------------------------------------------------------------

TEST(EventQueueDeterminism, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  // Interleave two tie groups with an earlier singleton, scheduling out of
  // any "natural" order.
  q.scheduleAt(2.0, [&] { order.push_back(20); });
  q.scheduleAt(1.0, [&] { order.push_back(10); });
  q.scheduleAt(2.0, [&] { order.push_back(21); });
  q.scheduleAt(0.5, [&] { order.push_back(0); });
  q.scheduleAt(2.0, [&] { order.push_back(22); });
  q.scheduleAt(1.0, [&] { order.push_back(11); });
  q.runUntil();
  // Ties resolve by insertion sequence, never by id hashing or heap layout.
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11, 20, 21, 22}));
}

/// One pseudo-random "simulation": events reschedule follow-ups and cancel
/// earlier events based on draws from a seeded Rng. Returns the full fired
/// trace as (time, label) pairs.
std::vector<std::pair<SimTime, int>> randomisedTrace(std::uint64_t seed) {
  EventQueue q;
  Rng rng(seed);
  std::vector<std::pair<SimTime, int>> trace;
  std::vector<EventId> pending;
  int next_label = 0;
  std::function<void(int)> fire = [&](int label) {
    trace.emplace_back(q.now(), label);
    const int children = rng.uniformInt(3);
    for (int c = 0; c < children; ++c) {
      const int child = next_label++;
      // Coarse time grid on purpose: plenty of exact ties.
      const SimTime dt = 0.25 * rng.uniformInt(4);
      pending.push_back(q.scheduleAfter(dt, [&fire, child] { fire(child); }));
    }
    if (!pending.empty() && rng.uniformInt(4) == 0) {
      q.cancel(pending[static_cast<std::size_t>(
          rng.uniformInt(static_cast<int>(pending.size())))]);
    }
  };
  for (int i = 0; i < 50; ++i) {
    const int label = next_label++;
    const SimTime t = 0.25 * rng.uniformInt(8);
    pending.push_back(q.scheduleAt(t, [&fire, label] { fire(label); }));
  }
  q.runUntil(200.0);
  return trace;
}

TEST(EventQueueDeterminism, IdenticallySeededRunsProduceIdenticalOrders) {
  for (const std::uint64_t seed : {1u, 42u, 20050404u}) {
    const auto a = randomisedTrace(seed);
    const auto b = randomisedTrace(seed);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "replay diverged for seed " << seed;
  }
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  SimTime last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const SimTime t = static_cast<SimTime>((i * 7919) % 1000);
    q.scheduleAt(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  q.runUntil();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace loadex::sim
