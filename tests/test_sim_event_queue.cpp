#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.h"

namespace loadex::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.scheduleAt(3.0, [&] { order.push_back(3); });
  q.scheduleAt(1.0, [&] { order.push_back(1); });
  q.scheduleAt(2.0, [&] { order.push_back(2); });
  q.runUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.scheduleAt(1.0, [&, i] { order.push_back(i); });
  q.runUntil();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired_at = -1;
  q.scheduleAt(5.0, [&] {
    q.scheduleAfter(2.0, [&] { fired_at = q.now(); });
  });
  q.runUntil();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.scheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.runUntil();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  const EventId id = q.scheduleAt(1.0, [] {});
  q.runUntil();
  EXPECT_FALSE(q.cancel(id));  // already fired
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.scheduleAt(10.0, [] {});
  q.runUntil();
  EXPECT_THROW(q.scheduleAt(5.0, [] {}), ContractViolation);
  EXPECT_THROW(q.scheduleAfter(-1.0, [] {}), ContractViolation);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.scheduleAt(1.0, [&] { ++fired; });
  q.scheduleAt(2.0, [&] { ++fired; });
  q.scheduleAt(3.0, [&] { ++fired; });
  EXPECT_EQ(q.runUntil(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pendingCount(), 1u);
  EXPECT_DOUBLE_EQ(q.nextEventTime(), 3.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.scheduleAfter(1.0, recurse);
  };
  q.scheduleAt(0.0, recurse);
  q.runUntil();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, FiredCountAndPending) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.scheduleAt(i, [] {});
  EXPECT_EQ(q.pendingCount(), 7u);
  q.runUntil();
  EXPECT_EQ(q.firedCount(), 7u);
  EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, CancelInsideHandler) {
  EventQueue q;
  bool late_fired = false;
  EventId late = q.scheduleAt(5.0, [&] { late_fired = true; });
  q.scheduleAt(1.0, [&] { q.cancel(late); });
  q.runUntil();
  EXPECT_FALSE(late_fired);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  SimTime last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const SimTime t = static_cast<SimTime>((i * 7919) % 1000);
    q.scheduleAt(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  q.runUntil();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace loadex::sim
