#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "common/expect.h"

namespace loadex {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, UniformIntZeroThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.uniformInt(0), ContractViolation);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRealMeanIsRoughlyHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniformReal();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialNeedsPositiveLambda) {
  Rng rng(29);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
  EXPECT_NE(v, sorted);  // 1/10! chance of false failure, deterministic seed
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Mix64, IsStableAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace loadex
