#include "common/expect.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

namespace loadex {
namespace {

std::string capture(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a ContractViolation";
  return {};
}

TEST(Expect, PassingConditionIsSilent) {
  EXPECT_NO_THROW(LOADEX_EXPECT(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(LOADEX_CHECK(true));
}

TEST(Expect, MessageNamesConditionFileAndLine) {
  const int expected_line = __LINE__ + 2;
  const std::string what = capture([] {
    LOADEX_EXPECT(2 + 2 == 5, "ministry of truth");
  });
  EXPECT_NE(what.find("contract violation"), std::string::npos) << what;
  // The stringised condition text...
  EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
  // ...the source location of the failing check...
  EXPECT_NE(what.find("test_common_expect.cpp"), std::string::npos) << what;
  EXPECT_NE(what.find(":" + std::to_string(expected_line)), std::string::npos)
      << what;
  // ...and the caller's message.
  EXPECT_NE(what.find("ministry of truth"), std::string::npos) << what;
}

TEST(Expect, CheckOmitsTheMessageSeparator) {
  const std::string what = capture([] { LOADEX_CHECK(false); });
  EXPECT_NE(what.find("false"), std::string::npos) << what;
  // No trailing " — " separator when there is no message.
  EXPECT_EQ(what.find("—"), std::string::npos) << what;
}

TEST(Expect, ViolationIsALogicError) {
  // Callers may catch the std hierarchy; the type must stay a logic_error.
  try {
    LOADEX_EXPECT(false, "hierarchy");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("hierarchy"), std::string::npos);
  }
}

TEST(Expect, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  LOADEX_EXPECT(++evaluations > 0, "side effect");
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace loadex
