// ProtocolAuditor tests: clean runs audit clean, and every invariant the
// auditor knows about actually fires on a deliberately corrupted run.
#include <gtest/gtest.h>

#include <string>

#include "common/expect.h"
#include "core/audit.h"
#include "sim_test_utils.h"

namespace loadex::core {
namespace {

using test::CoreHarness;

bool hasViolation(const ProtocolAuditor& a, const std::string& needle) {
  for (const auto& v : a.violations())
    if (v.find(needle) != std::string::npos) return true;
  return false;
}

MechanismConfig tinyThreshold() {
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{1.0, 1.0};
  return cfg;
}

/// Fig. 1-shaped scenario: loads, one long task, two selections with the
/// real delegated work shipped to the chosen slaves.
void runFig1Scenario(CoreHarness& h) {
  h.at(0.1, [&] {
    h.mechs.at(0).addLocalLoad({50.0, 0.0});
    h.mechs.at(1).addLocalLoad({50.0, 0.0});
    h.mechs.at(2).addLocalLoad({10.0, 0.0});
  });
  auto selection = [&h](Rank master) {
    auto& m = h.mechs.at(master);
    m.requestView([&h, &m, master](const LoadView& v) {
      Rank slave = kNoRank;
      for (Rank r = 0; r < v.nprocs(); ++r) {
        if (r == master) continue;
        if (slave == kNoRank || v.load(r).workload < v.load(slave).workload)
          slave = r;
      }
      m.commitSelection({{slave, LoadMetrics{100.0, 0.0}}});
      test::sendWork(h.world.process(master), slave, 100.0,
                     LoadMetrics{100.0, 0.0}, /*is_slave_delegated=*/true);
    });
  };
  h.atWhenFree(2.0, 0, [&, selection] { selection(0); });
  h.atWhenFree(3.0, 1, [&, selection] { selection(1); });
  h.run();
}

// ---------------------------------------------------------------------------
// Positive: clean runs audit clean, for all three mechanisms.
// ---------------------------------------------------------------------------

class AuditCleanRun : public ::testing::TestWithParam<MechanismKind> {};

TEST_P(AuditCleanRun, Fig1ScenarioAuditsClean) {
  CoreHarness h(3, GetParam(), tinyThreshold());
  h.attachAuditor();
  runFig1Scenario(h);
  h.finishAudit();  // throws on any violation
  EXPECT_TRUE(h.auditor->clean());
  EXPECT_GT(h.auditor->eventsObserved(), 0);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, AuditCleanRun,
                         ::testing::Values(MechanismKind::kNaive,
                                           MechanismKind::kIncrement,
                                           MechanismKind::kSnapshot),
                         [](const auto& info) {
                           return std::string(mechanismKindName(info.param));
                         });

TEST(Audit, ConcurrentSnapshotsAuditClean) {
  AuditorConfig acfg;
  acfg.check_reservations = false;  // reservations without shipped work
  CoreHarness h(5, MechanismKind::kSnapshot);
  h.attachAuditor(acfg);
  for (Rank r : {3, 1, 0}) {
    h.at(1.0, [&h, r] {
      h.mechs.at(r).requestView([&h, r](const LoadView&) {
        h.mechs.at(r).commitSelection({{4, LoadMetrics{10.0, 0.0}}});
      });
    });
  }
  h.run();
  h.finishAudit();
}

// ---------------------------------------------------------------------------
// Negative: each invariant fires on a deliberately corrupted run.
// ---------------------------------------------------------------------------

/// Drop every state message from rank 0 to rank 1 around t = 0.1.
sim::WorldConfig oneLinkBlackout() {
  sim::WorldConfig wcfg;
  wcfg.network.faults.blackouts.push_back(
      sim::LinkBlackout{0, 1, 0.05, 0.2});
  return wcfg;
}

TEST(Audit, LostDeltaBreaksIncrementConservation) {
  CoreHarness h(3, MechanismKind::kIncrement, tinyThreshold(),
                oneLinkBlackout());
  auto& a = h.attachAuditor();
  h.at(0.1, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.run();
  a.finish();
  EXPECT_TRUE(hasViolation(a, "increment conservation broken"));
  EXPECT_TRUE(hasViolation(a, "never delivered"));  // FIFO end-of-run check
  EXPECT_THROW(a.expectClean(), ContractViolation);
}

TEST(Audit, LostUpdateBreaksNaiveCoherence) {
  CoreHarness h(3, MechanismKind::kNaive, tinyThreshold(), oneLinkBlackout());
  auto& a = h.attachAuditor();
  h.at(0.1, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.run();
  a.finish();
  EXPECT_TRUE(hasViolation(a, "naive coherence broken"));
}

TEST(Audit, MessageLossModeTolerisesTheSameRun) {
  AuditorConfig acfg;
  acfg.allow_message_loss = true;
  CoreHarness h(3, MechanismKind::kIncrement, tinyThreshold(),
                oneLinkBlackout());
  auto& a = h.attachAuditor(acfg);
  h.at(0.1, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.run();
  a.finish();
  EXPECT_TRUE(a.clean()) << a.violations().front();
}

TEST(Audit, DuplicateDeliveryIsDetected) {
  sim::WorldConfig wcfg;
  wcfg.network.faults.duplicate_prob = 1.0;
  CoreHarness h(2, MechanismKind::kIncrement, tinyThreshold(), wcfg);
  auto& a = h.attachAuditor();
  h.at(0.1, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.run();
  a.finish();
  EXPECT_TRUE(hasViolation(a, "duplicate"));
}

TEST(Audit, UnmatchedReservationIsDetected) {
  CoreHarness h(3, MechanismKind::kIncrement, tinyThreshold());
  auto& a = h.attachAuditor();
  h.at(1.0, [&] {
    h.mechs.at(0).requestView([&](const LoadView&) {
      // Reserve 50 units on rank 1 but never ship the actual work.
      h.mechs.at(0).commitSelection({{1, LoadMetrics{50.0, 0.0}}});
    });
  });
  h.run();
  a.finish();
  EXPECT_TRUE(hasViolation(a, "reservation accounting broken"));
}

TEST(Audit, DelegatedWorkWithoutReservationIsDetected) {
  CoreHarness h(2, MechanismKind::kIncrement, tinyThreshold());
  auto& a = h.attachAuditor();
  h.at(1.0, [&] {
    // Work claiming to be master-delegated arrives with no reservation.
    test::sendWork(h.world.process(0), 1, 30.0, LoadMetrics{30.0, 0.0},
                   /*is_slave_delegated=*/true);
  });
  h.run();
  a.finish();
  EXPECT_TRUE(hasViolation(a, "exceeding its outstanding reservation"));
}

TEST(Audit, CrashedResponderBreaksSnapshotTermination) {
  sim::WorldConfig wcfg;
  wcfg.process_faults.push_back(
      {1, 0.05, sim::ProcessFaultEvent::Kind::kCrash});
  AuditorConfig acfg;
  acfg.allow_crashes = true;  // the crash itself is scripted, hence legal
  CoreHarness h(2, MechanismKind::kSnapshot, MechanismConfig{}, wcfg);
  auto& a = h.attachAuditor(acfg);
  bool completed = false;
  h.at(0.1, [&] {
    h.mechs.at(0).requestView([&](const LoadView&) {
      completed = true;
      h.mechs.at(0).commitSelection({});
    });
  });
  h.run();
  a.finish();
  // The unhardened protocol freezes forever on a crashed responder — the
  // auditor reports the initiator's snapshot as never terminated.
  EXPECT_FALSE(completed);
  EXPECT_TRUE(hasViolation(a, "snapshot termination broken"));
}

TEST(Audit, SendToCrashedRankIsDetected) {
  sim::WorldConfig wcfg;
  wcfg.process_faults.push_back(
      {2, 0.05, sim::ProcessFaultEvent::Kind::kCrash});
  CoreHarness h(3, MechanismKind::kIncrement, tinyThreshold(), wcfg);
  auto& a = h.attachAuditor();
  h.at(0.1, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.run();
  a.finish();
  EXPECT_TRUE(hasViolation(a, "to crashed rank 2"));
}

TEST(Audit, ForgedSnapshotAnswerTripsRecordingConsistency) {
  AuditorConfig acfg;
  acfg.check_fifo = false;  // direct hook calls have no matching delivery
  CoreHarness h(3, MechanismKind::kSnapshot);
  auto& a = h.attachAuditor(acfg);
  // Rank 1 "answers" a request rank 0 never started, with a load that is
  // not its recorded state.
  SnpPayload forged;
  forged.request = 42;
  forged.state = LoadMetrics{123.0, 0.0};
  a.onStateSend(h.mechs.at(1), /*dst=*/0, StateTag::kSnp,
                SnpPayload::sizeBytes(), &forged);
  EXPECT_TRUE(hasViolation(a, "but its load is"));
  EXPECT_TRUE(hasViolation(a, "named request 0"));
}

TEST(Audit, NonMonotonicSnapshotRequestIdIsDetected) {
  AuditorConfig acfg;
  acfg.check_fifo = false;
  CoreHarness h(2, MechanismKind::kSnapshot);
  auto& a = h.attachAuditor(acfg);
  StartSnpPayload start;
  start.request = 5;
  EndSnpPayload end;
  a.onStateSend(h.mechs.at(0), 1, StateTag::kStartSnp,
                StartSnpPayload::sizeBytes(), &start);
  EXPECT_TRUE(a.clean());
  a.onStateSend(h.mechs.at(0), 1, StateTag::kEndSnp, EndSnpPayload::sizeBytes(),
                &end);
  // A *new* broadcast must use a strictly larger request id.
  a.onStateSend(h.mechs.at(0), 1, StateTag::kStartSnp,
                StartSnpPayload::sizeBytes(), &start);
  EXPECT_TRUE(hasViolation(a, "not greater than"));
}

TEST(Audit, FailFastThrowsAtTheViolatingEvent) {
  AuditorConfig acfg;
  acfg.fail_fast = true;
  CoreHarness h(2, MechanismKind::kIncrement, tinyThreshold());
  h.attachAuditor(acfg);
  h.at(1.0, [&] {
    test::sendWork(h.world.process(0), 1, 30.0, LoadMetrics{30.0, 0.0},
                   /*is_slave_delegated=*/true);
  });
  EXPECT_THROW(h.run(), ContractViolation);
}

TEST(Audit, DetachStopsObservation) {
  CoreHarness h(2, MechanismKind::kIncrement, tinyThreshold());
  auto& a = h.attachAuditor();
  h.mechs.at(0).addLocalLoad({5.0, 0.0});
  const auto seen = a.eventsObserved();
  EXPECT_GT(seen, 0);
  a.detach();
  h.mechs.at(0).addLocalLoad({5.0, 0.0});
  EXPECT_EQ(a.eventsObserved(), seen);
}

}  // namespace
}  // namespace loadex::core
