// Unit tests of the rt building blocks: the bounded MPSC mailbox (both the
// Vyukov ring and the mutex baseline), the thread-confined timer wheel and
// the monotonic clock. The cross-thread cases run on real std::threads —
// they are small enough to be deterministic in what they assert (counts
// and per-producer FIFO), never in timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "rt/clock.h"
#include "rt/mailbox.h"
#include "rt/timer_wheel.h"
#include "rt/transport.h"
#include "rt/world.h"
#include "sim/application.h"

namespace loadex::rt {
namespace {

Envelope taskEnvelope(std::function<void()> fn = {}) {
  Envelope e;
  e.kind = Envelope::Kind::kTask;
  e.fn = std::move(fn);
  return e;
}

/// Envelope carrying (producer, sequence) in the message header so the
/// consumer can check per-producer FIFO.
Envelope tagged(int producer, int seq) {
  Envelope e;
  e.kind = Envelope::Kind::kState;
  e.msg.src = producer;
  e.msg.tag = seq;
  return e;
}

class MailboxBothModes : public ::testing::TestWithParam<bool> {
 protected:
  MailboxConfig config(std::size_t capacity) const {
    MailboxConfig cfg;
    cfg.capacity = capacity;
    cfg.lock_free_ring = GetParam();
    return cfg;
  }
};

TEST_P(MailboxBothModes, CapacityRoundsUpToPowerOfTwo) {
  Mailbox mb(config(100));
  EXPECT_EQ(mb.capacity(), 128u);
  EXPECT_EQ(mb.lockFreeRing(), GetParam());
}

TEST_P(MailboxBothModes, SingleProducerFifo) {
  Mailbox mb(config(64));
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(mb.tryPush(tagged(0, i)));
  Envelope e;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(mb.tryPop(e));
    EXPECT_EQ(e.msg.tag, i);
  }
  EXPECT_FALSE(mb.tryPop(e));
  const MailboxStats s = mb.stats();
  EXPECT_EQ(s.pushes, 40u);
  EXPECT_EQ(s.pops, 40u);
  EXPECT_EQ(s.full_rejections, 0u);
}

TEST_P(MailboxBothModes, TryPushRejectsWhenFull) {
  Mailbox mb(config(4));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(mb.tryPush(tagged(0, i)));
  EXPECT_FALSE(mb.tryPush(tagged(0, 99)));
  EXPECT_EQ(mb.stats().full_rejections, 1u);

  // Popping one frees one slot, and FIFO order survives the full episode.
  Envelope e;
  ASSERT_TRUE(mb.tryPop(e));
  EXPECT_EQ(e.msg.tag, 0);
  ASSERT_TRUE(mb.tryPush(tagged(0, 4)));
  for (int want = 1; want <= 4; ++want) {
    ASSERT_TRUE(mb.tryPop(e));
    EXPECT_EQ(e.msg.tag, want);
  }
}

TEST_P(MailboxBothModes, PopTimesOutOnEmpty) {
  Mailbox mb(config(8));
  Envelope e;
  EXPECT_FALSE(mb.pop(e, 0.01));
  EXPECT_FALSE(mb.pop(e, 0.0));
}

TEST_P(MailboxBothModes, MultiProducerPreservesPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kEach = 5000;
  Mailbox mb(config(256));  // much smaller than the traffic: forces retries

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, p] {
      for (int i = 0; i < kEach; ++i) mb.push(tagged(p, i));
    });
  }

  std::map<int, int> next_seq;
  int received = 0;
  Envelope e;
  while (received < kProducers * kEach) {
    if (!mb.pop(e, 1.0)) break;
    const int p = e.msg.src;
    EXPECT_EQ(e.msg.tag, next_seq[p]) << "producer " << p << " reordered";
    ++next_seq[p];
    ++received;
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(received, kProducers * kEach);
  const MailboxStats s = mb.stats();
  EXPECT_EQ(s.pushes, static_cast<std::uint64_t>(kProducers * kEach));
  EXPECT_EQ(s.pops, static_cast<std::uint64_t>(kProducers * kEach));
}

TEST_P(MailboxBothModes, BlockingPushCompletesOnceConsumerDrains) {
  Mailbox mb(config(2));
  ASSERT_TRUE(mb.tryPush(tagged(0, 0)));
  ASSERT_TRUE(mb.tryPush(tagged(0, 1)));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    mb.push(tagged(0, 2));  // blocks: mailbox is full
    pushed.store(true);
  });

  Envelope e;
  ASSERT_TRUE(mb.pop(e, 1.0));
  EXPECT_EQ(e.msg.tag, 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(mb.pop(e, 1.0));
  EXPECT_EQ(e.msg.tag, 1);
  ASSERT_TRUE(mb.pop(e, 1.0));
  EXPECT_EQ(e.msg.tag, 2);
}

// The M:N executor's shard drain (tryPopBatch) must be observationally
// equivalent to a loop of single pops: same sequence, same stats, just
// fewer consumer-side synchronisation rounds.
TEST_P(MailboxBothModes, TryPopBatchMatchesSinglePopSequence) {
  constexpr int kMsgs = 57;
  Mailbox batched(config(64));
  Mailbox singly(config(64));
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(batched.tryPush(tagged(0, i)));
    ASSERT_TRUE(singly.tryPush(tagged(0, i)));
  }

  // Drain one with varied batch sizes (including max > available at the
  // tail), the other one envelope at a time.
  std::vector<int> batch_tags;
  std::vector<Envelope> scratch(16);
  const std::size_t batch_sizes[] = {1, 3, 7, 16, 16, 16, 16};
  for (const std::size_t max : batch_sizes) {
    const std::size_t k = batched.tryPopBatch(scratch.data(), max);
    EXPECT_LE(k, max);
    for (std::size_t i = 0; i < k; ++i) batch_tags.push_back(scratch[i].msg.tag);
  }
  std::vector<int> single_tags;
  Envelope e;
  while (singly.tryPop(e)) single_tags.push_back(e.msg.tag);

  EXPECT_EQ(batch_tags, single_tags);
  ASSERT_EQ(static_cast<int>(batch_tags.size()), kMsgs);
  // An empty mailbox yields an empty batch and counts nothing.
  EXPECT_EQ(batched.tryPopBatch(scratch.data(), scratch.size()), 0u);
  EXPECT_EQ(batched.stats().pops, singly.stats().pops);
  EXPECT_EQ(batched.stats().pops, static_cast<std::uint64_t>(kMsgs));
}

TEST_P(MailboxBothModes, TaskEnvelopesCarryTheirClosure) {
  Mailbox mb(config(8));
  int ran = 0;
  ASSERT_TRUE(mb.tryPush(taskEnvelope([&ran] { ++ran; })));
  Envelope e;
  ASSERT_TRUE(mb.tryPop(e));
  ASSERT_EQ(e.kind, Envelope::Kind::kTask);
  e.fn();
  EXPECT_EQ(ran, 1);
}

INSTANTIATE_TEST_SUITE_P(RingAndMutex, MailboxBothModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ring" : "mutex";
                         });

// ---- timer wheel ----------------------------------------------------------

TEST(TimerWheel, FiresInDeadlineOrderAcrossLaps) {
  // Narrow wheel (4 slots) so deadlines wrap laps and collide in slots.
  TimerWheel wheel(/*slot_width_s=*/0.1, /*nslots=*/4);
  std::vector<int> fired;
  wheel.schedule(0.0, 1.25, [&] { fired.push_back(3); });  // lap 3, slot 0
  wheel.schedule(0.0, 0.05, [&] { fired.push_back(1); });
  wheel.schedule(0.0, 0.45, [&] { fired.push_back(2); });  // lap 1
  EXPECT_EQ(wheel.pending(), 3u);
  EXPECT_DOUBLE_EQ(wheel.nextDeadline(), 0.05);

  EXPECT_EQ(wheel.fireDue(0.5), 2);  // only the first two are due
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_EQ(wheel.fireDue(2.0), 1);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(wheel.nextDeadline(),
                   std::numeric_limits<double>::infinity());
}

TEST(TimerWheel, EqualDeadlinesFireInArmOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    wheel.schedule(0.0, 0.25, [&fired, i] { fired.push_back(i); });
  EXPECT_EQ(wheel.fireDue(0.25), 5);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerWheel, CallbacksMayRearm) {
  TimerWheel wheel;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 3) wheel.schedule(static_cast<double>(hops), 1.0, hop);
  };
  wheel.schedule(0.0, 1.0, hop);
  // Each fireDue fires one hop, which re-arms the next.
  EXPECT_EQ(wheel.fireDue(10.0), 1);
  EXPECT_EQ(wheel.fireDue(10.0), 1);
  EXPECT_EQ(wheel.fireDue(10.0), 1);
  EXPECT_EQ(wheel.fireDue(10.0), 0);
  EXPECT_EQ(hops, 3);
  EXPECT_EQ(wheel.firedTotal(), 3u);
}

TEST(TimerWheel, ZeroAndNegativeDelaysFireImmediately) {
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(5.0, 0.0, [&] { ++fired; });
  wheel.schedule(5.0, -1.0, [&] { ++fired; });  // clamped to now
  EXPECT_EQ(wheel.fireDue(5.0), 2);
  EXPECT_EQ(fired, 2);
}

// ---- monotonic clock ------------------------------------------------------

TEST(MonotonicClock, StartsNearZeroAndNeverGoesBack) {
  MonotonicClock clock;
  const SimTime t0 = clock.now();
  EXPECT_GE(t0, 0.0);
  EXPECT_LT(t0, 1.0);  // origin is captured at construction
  SimTime prev = t0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = clock.now();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(MonotonicClock, SleepForAdvancesAtLeastThatLong) {
  MonotonicClock clock;
  const SimTime t0 = clock.now();
  MonotonicClock::sleepFor(0.01);
  EXPECT_GE(clock.now() - t0, 0.009);  // scheduler may round, never down
}

// ---- spill queue under bursty senders -------------------------------------
// World-level: two ranks flood a third through a deliberately tiny
// mailbox, so nearly every send hits a full ring and detours through the
// sender-side spill queue. Nothing may be lost, per-sender FIFO must
// survive the spill episodes, and the overflow shows up in
// mailbox_full_rejections / spill_enqueues.

/// Records (src, seq) arrival order; thread-confined to the receiving
/// node's thread, read after stop().
struct RecordingHandler final : sim::StateHandler {
  std::vector<std::pair<Rank, Bytes>> received;
  void onStateMessage(const sim::Message& m) override {
    received.emplace_back(m.src, m.size);
  }
};

TEST(SpillQueue, BurstySendersOverflowWithoutLossOrReordering) {
  constexpr int kEach = 2000;
  RtConfig cfg;
  cfg.nprocs = 3;
  cfg.mailbox.capacity = 4;  // tiny on purpose: force constant overflow
  RtWorld world(cfg);
  std::vector<core::Transport*> tp = world.transports();

  RecordingHandler sink;
  world.attach(2, &sink);
  world.start();

  // Each sender blasts its burst from its own node thread in one closure:
  // the receiver cannot keep up, so the tail of every burst spills.
  for (Rank src : {Rank{0}, Rank{1}}) {
    world.post(src, [&tp, src] {
      for (int i = 0; i < kEach; ++i)
        tp[static_cast<std::size_t>(src)]->sendState(
            2, core::StateTag::kUpdateAbsolute, /*size=*/i, nullptr);
    });
  }
  ASSERT_TRUE(world.drain(60.0));
  world.stop();

  const RtRunStats st = world.runStats();
  EXPECT_EQ(st.state_posted, 2 * kEach);
  EXPECT_EQ(st.state_delivered, 2 * kEach);
  EXPECT_GT(st.mailbox_full_rejections, 0u)
      << "a 4-slot mailbox absorbed a 4000-message burst?";
  EXPECT_GT(st.spill_enqueues, 0);

  // Per-sender FIFO: each sender's sequence numbers arrive in order.
  ASSERT_EQ(sink.received.size(), static_cast<std::size_t>(2 * kEach));
  Bytes next_seq[2] = {0, 0};
  for (const auto& [src, seq] : sink.received) {
    ASSERT_TRUE(src == 0 || src == 1);
    EXPECT_EQ(seq, next_seq[src]) << "reordered stream from P" << src;
    next_seq[src] = seq + 1;
  }
}

}  // namespace
}  // namespace loadex::rt
