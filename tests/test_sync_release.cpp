// Release-mode twin of test_sync.cpp: compiled with
// LOADEX_SYNC_FORCE_DEBUG=0, so every owner/rank/confinement check in
// src/common/sync.h must compile away — no extra state in the wrappers
// and no aborts on the misuse patterns the debug build traps.

#include "common/sync.h"

#include <mutex>  // size-parity check against the raw primitive
#include <thread>

#include <gtest/gtest.h>

namespace {

using loadex::sync::CondVar;
using loadex::sync::LockRank;
using loadex::sync::Mutex;
using loadex::sync::MutexLock;
using loadex::sync::ThreadConfined;

static_assert(!loadex::sync::kDebugChecksEnabled,
              "this target forces the debug checks off");
// The layout guarantee from the sync.h file comment: with the checks
// compiled out, the wrapper adds nothing to the raw primitive.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release Mutex must carry no debug state");
static_assert(sizeof(ThreadConfined) == 1,
              "release ThreadConfined must be an empty marker");

TEST(SyncRelease, AssertHeldIsInertWithoutTheLock) {
  Mutex mu{LockRank::kLifecycle};
  mu.assertHeld();  // debug build would abort; release is a no-op
}

TEST(SyncRelease, HierarchyInversionIsNotChecked) {
  // Distinct mutexes, so no real deadlock — only the debug rank check
  // would object, and it is compiled out.
  Mutex hi{LockRank::kTraceRing};
  Mutex lo{LockRank::kLifecycle};
  MutexLock a(hi);
  MutexLock b(lo);
}

TEST(SyncRelease, ThreadConfinedChecksAreInert) {
  ThreadConfined tc;
  tc.assertConfined();
  std::thread t([&tc] { tc.assertConfined(); });  // debug would abort
  t.join();
  tc.bindToCurrentThread();
}

TEST(SyncRelease, LockingAndCondVarStillWork) {
  Mutex mu{LockRank::kMailboxPark};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lk(mu);
    ready = true;
    cv.notifyOne();
  });
  {
    MutexLock lk(mu);
    for (int i = 0; i < 2000 && !ready; ++i) cv.waitFor(mu, 0.005);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(SyncRelease, MutexExcludesOtherThreadsWhileHeld) {
  Mutex mu{LockRank::kAuditSerial};
  MutexLock lk(mu);
  bool acquired = true;
  std::thread t([&] { acquired = mu.try_lock(); });
  t.join();
  EXPECT_FALSE(acquired);
}

}  // namespace
