// Shared helpers for simulator / mechanism tests.
//
// The scaffolding itself lives in src/harness/world_harness.h so benchmark
// drivers can reuse it; this header keeps the historical loadex::test names
// the test files were written against.
#pragma once

#include "harness/world_harness.h"

namespace loadex::test {

using harness::CoreHarness;
using harness::kWorkTag;
using harness::ScriptedApp;
using harness::sendWork;
using harness::WorkPayload;

}  // namespace loadex::test
