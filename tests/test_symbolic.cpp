#include "symbolic/analysis.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/expect.h"
#include "common/rng.h"
#include "ordering/ordering.h"
#include "sparse/generators.h"
#include "symbolic/etree.h"

namespace loadex::symbolic {
namespace {

// Brute-force Boolean Cholesky fill on a dense copy; returns per-column
// counts of L (incl. diagonal). O(n^3); for cross-checking only.
std::vector<std::int64_t> bruteColCounts(const sparse::Pattern& p) {
  const int n = p.n();
  std::vector<std::vector<bool>> a(static_cast<std::size_t>(n),
                                   std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int i = 0; i < n; ++i)
    for (const int j : p.row(i)) a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  for (int k = 0; k < n; ++k)
    for (int i = k + 1; i < n; ++i)
      if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)])
        for (int j = k + 1; j < n; ++j)
          if (a[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)]) {
            a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
            a[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
          }
  std::vector<std::int64_t> count(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    count[static_cast<std::size_t>(j)] = 1;
    for (int i = j + 1; i < n; ++i)
      if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
        ++count[static_cast<std::size_t>(j)];
  }
  return count;
}

// Brute-force elimination tree: parent(j) = min{i > j : L(i,j) != 0}.
std::vector<int> bruteEtree(const sparse::Pattern& p) {
  const auto counts = bruteColCounts(p);  // fills `a` internally; redo here
  const int n = p.n();
  std::vector<std::vector<bool>> a(static_cast<std::size_t>(n),
                                   std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int i = 0; i < n; ++i)
    for (const int j : p.row(i)) a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  for (int k = 0; k < n; ++k)
    for (int i = k + 1; i < n; ++i)
      if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)])
        for (int j = k + 1; j < n; ++j)
          if (a[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)]) {
            a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
            a[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
          }
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i)
      if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
        parent[static_cast<std::size_t>(j)] = i;
        break;
      }
  (void)counts;
  return parent;
}

TEST(Etree, PathGraphIsAChain) {
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i + 1 < 6; ++i) e.emplace_back(i, i + 1);
  const auto p = sparse::Pattern::fromEdges(6, std::move(e));
  const auto parent = eliminationTree(p);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(parent[static_cast<std::size_t>(i)], i + 1);
  EXPECT_EQ(parent[5], -1);
}

TEST(Etree, MatchesBruteForceOnRandomGraphs) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 20 + static_cast<int>(rng.uniformInt(30));
    std::vector<std::pair<int, int>> e;
    const int ne = n * 2;
    for (int k = 0; k < ne; ++k)
      e.emplace_back(static_cast<int>(rng.uniformInt(n)),
                     static_cast<int>(rng.uniformInt(n)));
    const auto p = sparse::Pattern::fromEdges(n, std::move(e));
    EXPECT_EQ(eliminationTree(p), bruteEtree(p)) << "trial " << trial;
  }
}

TEST(ColCounts, MatchBruteForceOnRandomGraphs) {
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 15 + static_cast<int>(rng.uniformInt(25));
    std::vector<std::pair<int, int>> e;
    for (int k = 0; k < n * 2; ++k)
      e.emplace_back(static_cast<int>(rng.uniformInt(n)),
                     static_cast<int>(rng.uniformInt(n)));
    const auto p = sparse::Pattern::fromEdges(n, std::move(e));
    const auto parent = eliminationTree(p);
    EXPECT_EQ(columnCounts(p, parent), bruteColCounts(p)) << "trial " << trial;
  }
}

TEST(Postorder, ChildrenBeforeParents) {
  // Tree: 5 <- {3, 4}, 3 <- {0, 1}, 4 <- {2}.
  const std::vector<int> parent{3, 3, 4, 5, 5, -1};
  const auto post = postorder(parent);
  ASSERT_EQ(post.size(), 6u);
  std::vector<int> pos(6);
  for (int i = 0; i < 6; ++i) pos[static_cast<std::size_t>(post[static_cast<std::size_t>(i)])] = i;
  for (int v = 0; v < 6; ++v) {
    if (parent[static_cast<std::size_t>(v)] != -1) {
      EXPECT_LT(pos[static_cast<std::size_t>(v)],
                pos[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])]);
    }
  }
}

TEST(Postorder, ForestsCoverAllRoots) {
  const std::vector<int> parent{-1, -1, -1};
  EXPECT_EQ(postorder(parent).size(), 3u);
}

TEST(TreeHeight, Chain) {
  const std::vector<int> parent{1, 2, 3, -1};
  EXPECT_EQ(treeHeight(parent), 4);
}

TEST(Analysis, MonotoneEtreeAndExactNnz) {
  const auto g = sparse::grid2d(9, 9);
  const auto a = analyze(g, ordering::nestedDissection(g));
  for (int j = 0; j < g.n(); ++j) {
    const int p = a.parent[static_cast<std::size_t>(j)];
    EXPECT_TRUE(p == -1 || p > j) << j;
  }
  std::int64_t sum = 0;
  for (const auto c : a.col_count) sum += c;
  EXPECT_EQ(sum, a.factor_nnz);
  EXPECT_TRUE(sparse::isPermutation(a.perm));
}

TEST(Analysis, PermutationComposesCorrectly) {
  // The combined permutation must yield the same factor size as applying
  // it directly (self-consistency of the composition).
  const auto g = sparse::grid2d(8, 7);
  const auto a = analyze(g, ordering::minimumDegree(g));
  const auto direct = analyze(g, a.perm);
  EXPECT_EQ(direct.factor_nnz, a.factor_nnz);
}

TEST(AssemblyTree, PivotsConserved) {
  const auto g = sparse::grid3d(5, 5, 5);
  const auto a = analyze(g, ordering::nestedDissection(g));
  EXPECT_EQ(a.tree.totalPivots(), g.n());
  EXPECT_GT(a.tree.size(), 1);
  EXPECT_LT(a.tree.size(), g.n());  // amalgamation compressed something
}

TEST(AssemblyTree, StructureInvariants) {
  const auto g = sparse::grid2d(16, 16);
  const auto a = analyze(g, ordering::nestedDissection(g));
  const auto& tree = a.tree;
  int root_count = 0;
  for (const auto& nd : tree.nodes()) {
    EXPECT_GT(nd.npiv, 0);
    EXPECT_GE(nd.front, nd.npiv);
    if (nd.parent == -1) {
      ++root_count;
      EXPECT_EQ(nd.border(), 0);  // roots have no contribution block
    } else {
      EXPECT_NE(nd.parent, nd.id);
      EXPECT_GE(tree.node(nd.parent).id, 0);
    }
    for (const int c : nd.children) EXPECT_EQ(tree.node(c).parent, nd.id);
  }
  EXPECT_EQ(static_cast<int>(tree.roots().size()), root_count);
  // Postorder: children before parents.
  std::vector<int> pos(static_cast<std::size_t>(tree.size()), -1);
  for (int i = 0; i < tree.size(); ++i)
    pos[static_cast<std::size_t>(tree.postorder()[static_cast<std::size_t>(i)])] = i;
  for (const auto& nd : tree.nodes()) {
    if (nd.parent != -1) {
      EXPECT_LT(pos[static_cast<std::size_t>(nd.id)],
                pos[static_cast<std::size_t>(nd.parent)]);
    }
  }
}

TEST(AssemblyTree, AmalgamationMonotoneInTolerance) {
  const auto g = sparse::grid2d(20, 20);
  const auto perm = ordering::nestedDissection(g);
  const sparse::Pattern permuted = g.permuted(perm);
  const auto parent0 = eliminationTree(permuted);
  const auto post = postorder(parent0);
  const auto reordered = permuted.permuted(post);
  const auto parent = eliminationTree(reordered);
  const auto cc = columnCounts(reordered, parent);

  AmalgamationOptions strict;
  strict.small_supernode = 1;
  strict.fill_tolerance = 0.0;
  AmalgamationOptions relaxed;
  relaxed.small_supernode = 16;
  relaxed.fill_tolerance = 0.4;
  const auto t_strict = buildAssemblyTree(parent, cc, strict);
  const auto t_relaxed = buildAssemblyTree(parent, cc, relaxed);
  EXPECT_GE(t_strict.size(), t_relaxed.size());
  EXPECT_EQ(t_strict.totalPivots(), g.n());
  EXPECT_EQ(t_relaxed.totalPivots(), g.n());
}

TEST(AssemblyTree, RenderMentionsFronts) {
  const auto g = sparse::grid2d(10, 10);
  const auto a = analyze(g, ordering::nestedDissection(g));
  const auto text = a.tree.render(10);
  EXPECT_NE(text.find("front #"), std::string::npos);
  EXPECT_NE(text.find("npiv="), std::string::npos);
}

TEST(AssemblyTree, RequiresMonotoneParent) {
  const std::vector<int> bad_parent{2, 0, -1};  // parent[1] = 0 < 1
  const std::vector<std::int64_t> cc{1, 1, 1};
  EXPECT_THROW(buildAssemblyTree(bad_parent, cc), ContractViolation);
}

// Parameterized sweep over generators and orderings: pivot conservation
// and sane front sizes everywhere.
using SymbolicParams = std::tuple<int /*graph*/, ordering::OrderingKind>;

class SymbolicSweep : public ::testing::TestWithParam<SymbolicParams> {};

TEST_P(SymbolicSweep, TreeInvariantsHold) {
  const auto [which, kind] = GetParam();
  Rng rng(33 + which);
  sparse::Pattern g;
  switch (which) {
    case 0: g = sparse::grid2d(13, 11); break;
    case 1: g = sparse::grid3d(5, 6, 4); break;
    case 2: g = sparse::circuitLike(500, 4, 4, rng); break;
    default: g = sparse::randomMesh(400, 5, rng); break;
  }
  const auto a = analyze(g, ordering::computeOrdering(g, kind));
  EXPECT_EQ(a.tree.totalPivots(), g.n());
  for (const auto& nd : a.tree.nodes()) {
    EXPECT_GE(nd.front, nd.npiv);
    EXPECT_LE(nd.front, g.n());
  }
  EXPECT_GE(a.factor_nnz, g.n());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SymbolicSweep,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values(ordering::OrderingKind::kRcm,
                          ordering::OrderingKind::kMinDegree,
                          ordering::OrderingKind::kNestedDissection)),
    [](const ::testing::TestParamInfo<SymbolicParams>& info) {
      return "g" + std::to_string(std::get<0>(info.param)) + "_" +
             ordering::orderingKindName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace loadex::symbolic
