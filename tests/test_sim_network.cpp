#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.h"

namespace loadex::sim {
namespace {

struct Delivery {
  SimTime time;
  Message msg;
};

struct NetFixture {
  EventQueue queue;
  NetworkConfig cfg;
  Network net;
  std::vector<Delivery> deliveries;

  explicit NetFixture(NetworkConfig c, int nprocs = 4)
      : cfg(c), net(queue, c, nprocs) {
    for (Rank r = 0; r < nprocs; ++r)
      net.setReceiver(r, [this](const Message& m) {
        deliveries.push_back({queue.now(), m});
      });
  }

  Message mk(Rank src, Rank dst, Bytes size, Channel ch = Channel::kApp) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.size = size;
    m.channel = ch;
    return m;
  }
};

TEST(Network, LatencyPlusTransfer) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.bandwidth_bytes_per_s = 1e6;
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 1000));  // 1 ms transfer + 1 ms latency
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_NEAR(f.deliveries[0].time, 2e-3, 1e-12);
}

TEST(Network, PerPairFifoOrder) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.bandwidth_bytes_per_s = 1e6;
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  // Big message first, tiny one second: FIFO must hold anyway.
  auto big = f.mk(0, 1, 100000);
  big.tag = 1;
  auto small = f.mk(0, 1, 1);
  small.tag = 2;
  f.net.send(big);
  f.net.send(small);
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(f.deliveries[0].msg.tag, 1);
  EXPECT_EQ(f.deliveries[1].msg.tag, 2);
  EXPECT_LE(f.deliveries[0].time, f.deliveries[1].time);
}

TEST(Network, SenderSerialization) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;  // 1 byte per ms
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 100));  // 100 ms transfer
  f.net.send(f.mk(0, 2, 100));  // queued behind the first on the NIC
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_NEAR(f.deliveries[0].time, 0.1, 1e-9);
  EXPECT_NEAR(f.deliveries[1].time, 0.2, 1e-9);
}

TEST(Network, ParallelSendersDoNotInterfere) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 2, 100));
  f.net.send(f.mk(1, 3, 100));
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_NEAR(f.deliveries[0].time, 0.1, 1e-9);
  EXPECT_NEAR(f.deliveries[1].time, 0.1, 1e-9);
}

TEST(Network, NoSerializationModeOverlaps) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;
  cfg.per_message_overhead_bytes = 0;
  cfg.serialize_sender = false;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 100));
  f.net.send(f.mk(0, 2, 100));
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_NEAR(f.deliveries[1].time, 0.1, 1e-9);
}

TEST(Network, OverheadBytesCount) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;
  cfg.per_message_overhead_bytes = 50;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 50));
  f.queue.runUntil();
  EXPECT_NEAR(f.deliveries[0].time, 0.1, 1e-9);
}

TEST(Network, CountsAndBytes) {
  NetworkConfig cfg;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 10, Channel::kState));
  f.net.send(f.mk(0, 1, 20, Channel::kState));
  f.net.send(f.mk(1, 0, 30, Channel::kApp));
  f.queue.runUntil();
  EXPECT_EQ(f.net.messageCounts().get("state"), 2);
  EXPECT_EQ(f.net.messageCounts().get("app"), 1);
  // Wire bytes: payloads (10+20+30) plus per_message_overhead_bytes for
  // each of the three messages.
  EXPECT_EQ(f.net.bytesSent(),
            60 + 3 * f.cfg.per_message_overhead_bytes);
  EXPECT_EQ(f.net.bytesSent(Channel::kState),
            30 + 2 * f.cfg.per_message_overhead_bytes);
  EXPECT_EQ(f.net.bytesSent(Channel::kApp),
            30 + f.cfg.per_message_overhead_bytes);
}

TEST(Network, RejectsBadEndpoints) {
  NetworkConfig cfg;
  NetFixture f(cfg);
  EXPECT_THROW(f.net.send(f.mk(0, 0, 1)), ContractViolation);
  EXPECT_THROW(f.net.send(f.mk(-1, 1, 1)), ContractViolation);
  EXPECT_THROW(f.net.send(f.mk(0, 9, 1)), ContractViolation);
}

}  // namespace
}  // namespace loadex::sim
