#include "sim/network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "common/expect.h"

namespace loadex::sim {
namespace {

struct Delivery {
  SimTime time;
  Message msg;
};

struct NetFixture {
  EventQueue queue;
  NetworkConfig cfg;
  Network net;
  std::vector<Delivery> deliveries;

  explicit NetFixture(NetworkConfig c, int nprocs = 4)
      : cfg(c), net(queue, c, nprocs) {
    for (Rank r = 0; r < nprocs; ++r)
      net.setReceiver(r, [this](const Message& m) {
        deliveries.push_back({queue.now(), m});
      });
  }

  Message mk(Rank src, Rank dst, Bytes size, Channel ch = Channel::kApp) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.size = size;
    m.channel = ch;
    return m;
  }
};

TEST(Network, LatencyPlusTransfer) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.bandwidth_bytes_per_s = 1e6;
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 1000));  // 1 ms transfer + 1 ms latency
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_NEAR(f.deliveries[0].time, 2e-3, 1e-12);
}

TEST(Network, PerPairFifoOrder) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.bandwidth_bytes_per_s = 1e6;
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  // Big message first, tiny one second: FIFO must hold anyway.
  auto big = f.mk(0, 1, 100000);
  big.tag = 1;
  auto small = f.mk(0, 1, 1);
  small.tag = 2;
  f.net.send(big);
  f.net.send(small);
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(f.deliveries[0].msg.tag, 1);
  EXPECT_EQ(f.deliveries[1].msg.tag, 2);
  EXPECT_LE(f.deliveries[0].time, f.deliveries[1].time);
}

TEST(Network, SenderSerialization) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;  // 1 byte per ms
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 100));  // 100 ms transfer
  f.net.send(f.mk(0, 2, 100));  // queued behind the first on the NIC
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_NEAR(f.deliveries[0].time, 0.1, 1e-9);
  EXPECT_NEAR(f.deliveries[1].time, 0.2, 1e-9);
}

TEST(Network, ParallelSendersDoNotInterfere) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;
  cfg.per_message_overhead_bytes = 0;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 2, 100));
  f.net.send(f.mk(1, 3, 100));
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_NEAR(f.deliveries[0].time, 0.1, 1e-9);
  EXPECT_NEAR(f.deliveries[1].time, 0.1, 1e-9);
}

TEST(Network, NoSerializationModeOverlaps) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;
  cfg.per_message_overhead_bytes = 0;
  cfg.serialize_sender = false;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 100));
  f.net.send(f.mk(0, 2, 100));
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_NEAR(f.deliveries[1].time, 0.1, 1e-9);
}

TEST(Network, OverheadBytesCount) {
  NetworkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bytes_per_s = 1e3;
  cfg.per_message_overhead_bytes = 50;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 50));
  f.queue.runUntil();
  EXPECT_NEAR(f.deliveries[0].time, 0.1, 1e-9);
}

TEST(Network, CountsAndBytes) {
  NetworkConfig cfg;
  NetFixture f(cfg);
  f.net.send(f.mk(0, 1, 10, Channel::kState));
  f.net.send(f.mk(0, 1, 20, Channel::kState));
  f.net.send(f.mk(1, 0, 30, Channel::kApp));
  f.queue.runUntil();
  EXPECT_EQ(f.net.messageCounts().get("state"), 2);
  EXPECT_EQ(f.net.messageCounts().get("app"), 1);
  // Wire bytes: payloads (10+20+30) plus per_message_overhead_bytes for
  // each of the three messages.
  EXPECT_EQ(f.net.bytesSent(),
            60 + 3 * f.cfg.per_message_overhead_bytes);
  EXPECT_EQ(f.net.bytesSent(Channel::kState),
            30 + 2 * f.cfg.per_message_overhead_bytes);
  EXPECT_EQ(f.net.bytesSent(Channel::kApp),
            30 + f.cfg.per_message_overhead_bytes);
}

TEST(Network, RejectsBadEndpoints) {
  NetworkConfig cfg;
  NetFixture f(cfg);
  EXPECT_THROW(f.net.send(f.mk(0, 0, 1)), ContractViolation);
  EXPECT_THROW(f.net.send(f.mk(-1, 1, 1)), ContractViolation);
  EXPECT_THROW(f.net.send(f.mk(0, 9, 1)), ContractViolation);
}

// ---- logical broadcast ----------------------------------------------------

// Run the same broadcast under both kernels and return the fixtures for
// side-by-side inspection.
struct BroadcastPair {
  NetFixture lazy;
  NetFixture legacy;

  BroadcastPair(NetworkConfig cfg, int nprocs,
                const std::function<void(NetFixture&)>& scenario)
      : lazy(cfg, nprocs), legacy([&] {
          cfg.legacy_kernel = true;
          return cfg;
        }(), nprocs) {
    scenario(lazy);
    scenario(legacy);
  }

  void expectIdentical() {
    ASSERT_EQ(lazy.deliveries.size(), legacy.deliveries.size());
    for (std::size_t i = 0; i < lazy.deliveries.size(); ++i) {
      EXPECT_DOUBLE_EQ(lazy.deliveries[i].time, legacy.deliveries[i].time);
      EXPECT_EQ(lazy.deliveries[i].msg.dst, legacy.deliveries[i].msg.dst);
    }
    EXPECT_EQ(lazy.queue.scheduleDigest(), legacy.queue.scheduleDigest());
    EXPECT_EQ(lazy.net.messageCounts().all(), legacy.net.messageCounts().all());
    EXPECT_EQ(lazy.net.bytesSent(), legacy.net.bytesSent());
  }
};

TEST(Network, BroadcastDeliversToEveryDestinationInOrder) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.bandwidth_bytes_per_s = 1e9;
  BroadcastPair p(cfg, 8, [](NetFixture& f) {
    f.net.broadcast(f.mk(2, kNoRank, 100, Channel::kState),
                    {0, 1, 3, 4, 5, 6, 7});
    f.queue.runUntil();
  });
  ASSERT_EQ(p.lazy.deliveries.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    const Rank expected = static_cast<Rank>(i < 2 ? i : i + 1);
    EXPECT_EQ(p.lazy.deliveries[i].msg.dst, expected);
    EXPECT_EQ(p.lazy.deliveries[i].msg.src, 2);
  }
  p.expectIdentical();
  // One logical event for the whole fan-out on the lazy path.
  EXPECT_EQ(p.lazy.net.broadcastStats().logical_broadcasts, 1);
  EXPECT_EQ(p.lazy.net.broadcastStats().fanout_deliveries, 7);
  EXPECT_EQ(p.legacy.net.broadcastStats().logical_broadcasts, 0);
}

TEST(Network, BroadcastAcrossBlackoutWindowSkipsDarkLink) {
  // A blackout on one directed link while the broadcast departs: that
  // destination's delivery is eaten (counted as a drop), all others land.
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.faults.blackouts.push_back({/*src=*/0, /*dst=*/2, 0.0, 1.0});
  BroadcastPair p(cfg, 4, [](NetFixture& f) {
    f.net.broadcast(f.mk(0, kNoRank, 64, Channel::kState), {1, 2, 3});
    f.queue.runUntil();
  });
  ASSERT_EQ(p.lazy.deliveries.size(), 2u);
  EXPECT_EQ(p.lazy.deliveries[0].msg.dst, 1);
  EXPECT_EQ(p.lazy.deliveries[1].msg.dst, 3);
  EXPECT_EQ(p.lazy.net.messagesDropped(), 1);
  p.expectIdentical();
  // The dark destination never becomes a pending delivery.
  EXPECT_EQ(p.lazy.net.broadcastStats().fanout_deliveries, 2);
}

TEST(Network, BroadcastAfterBlackoutWindowReachesEveryone) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.faults.blackouts.push_back({0, 2, 0.0, 1.0});
  BroadcastPair p(cfg, 4, [](NetFixture& f) {
    f.queue.scheduleAt(2.0, [&f] {  // window closed
      f.net.broadcast(f.mk(0, kNoRank, 64, Channel::kState), {1, 2, 3});
    });
    f.queue.runUntil();
  });
  EXPECT_EQ(p.lazy.deliveries.size(), 3u);
  EXPECT_EQ(p.lazy.net.messagesDropped(), 0);
  p.expectIdentical();
}

TEST(Network, BroadcastPerDestinationDropAndDuplicate) {
  // Random per-link faults hit individual destinations of one broadcast;
  // both kernels must take identical RNG draws and produce the identical
  // delivery schedule, drop/duplicate counts included.
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.faults.drop_prob = 0.3;
  cfg.faults.duplicate_prob = 0.3;
  cfg.faults.seed = 99;
  constexpr int kProcs = 16;
  std::vector<Rank> dsts;
  for (Rank r = 1; r < kProcs; ++r) dsts.push_back(r);
  BroadcastPair p(cfg, kProcs, [&dsts](NetFixture& f) {
    for (int round = 0; round < 8; ++round)
      f.net.broadcast(f.mk(0, kNoRank, 64, Channel::kState), dsts);
    f.queue.runUntil();
  });
  p.expectIdentical();
  // With 120 link transmissions at p=0.3 each, both fault kinds occurred.
  EXPECT_GT(p.lazy.net.messagesDropped(), 0);
  EXPECT_GT(p.lazy.net.messagesDuplicated(), 0);
  // Deliveries = transmissions - drops + duplicate copies.
  const auto expected = static_cast<std::int64_t>(8 * dsts.size()) -
                        p.lazy.net.messagesDropped() +
                        p.lazy.net.messagesDuplicated();
  EXPECT_EQ(static_cast<std::int64_t>(p.lazy.deliveries.size()), expected);
}

TEST(Network, BroadcastWithJitterKeepsKernelsIdentical) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.jitter_s = 5e-4;  // non-monotone per-destination arrival times
  cfg.seed = 7;
  BroadcastPair p(cfg, 12, [](NetFixture& f) {
    std::vector<Rank> dsts;
    for (Rank r = 1; r < 12; ++r) dsts.push_back(r);
    f.net.broadcast(f.mk(0, kNoRank, 256, Channel::kState), dsts);
    f.queue.runUntil();
  });
  EXPECT_EQ(p.lazy.deliveries.size(), 11u);
  p.expectIdentical();
}

TEST(Network, BroadcastSkippedRankIsNeverExpanded) {
  // The dst list is built by the caller (e.g. broadcastState skipping
  // No_more_master ranks): a rank absent from the list must see nothing
  // and cost nothing — no counter bump, no wire bytes, no delivery.
  NetworkConfig cfg;
  NetFixture f(cfg, 4);
  f.net.broadcast(f.mk(0, kNoRank, 64, Channel::kState), {1, 3});  // skip 2
  f.queue.runUntil();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(f.deliveries[0].msg.dst, 1);
  EXPECT_EQ(f.deliveries[1].msg.dst, 3);
  EXPECT_EQ(f.net.messageCounts().get("state"), 2);
  EXPECT_EQ(f.net.bytesSent(),
            2 * (64 + f.cfg.per_message_overhead_bytes));
}

TEST(Network, EmptyBroadcastIsFree) {
  NetworkConfig cfg;
  NetFixture f(cfg, 4);
  f.net.broadcast(f.mk(0, kNoRank, 64, Channel::kState), {});
  f.queue.runUntil();
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.net.broadcastStats().logical_broadcasts, 0);
  EXPECT_EQ(f.net.bytesSent(), 0);
}

}  // namespace
}  // namespace loadex::sim
