// Chaos verification of the rt fault layer (rt/faults.h + supervisor).
//
// Two kinds of coverage:
//
//   * a seeded chaos sweep — up to 32 ranks flooding a hostile script
//     while the supervisor executes scripted crash / pause / restart
//     events and the transports inject ~5% state-message loss plus
//     duplicates, latency spikes and a blackout window. Assertions are
//     the conservation identities that must hold under ANY fault
//     schedule (every posted envelope delivered or counted in exactly
//     one drop bucket, timers fired or cancelled, mailbox pushes ==
//     pops), a clean ProtocolAuditor under the fault-tolerant config
//     (loss legal, FIFO order still mandatory — this is what proves the
//     latency-spike path cannot reorder a pair stream), and view
//     coherence between a restarted rank and every surviving peer after
//     an explicit rejoin resync at quiescence. The sweep spans the
//     executor axis: the default M:N pool, pinned 1- and 2-worker pools
//     (ranks ≫ workers forces steals), and the legacy thread-per-rank
//     escape hatch, plus a saturation flood of 1024 ranks on 4 workers;
//
//   * deterministic lifecycle units (FaultPlan::manual_control) — exact
//     drop accounting around a sealed mailbox, heartbeat detection
//     driving suspect -> dead -> revive transitions into peer views, a
//     manual crash/restart/resync round restoring coherence, and the
//     clean-path guarantee: with an inert plan (and with hooks enabled
//     but no fault configured) every fault counter stays zero and the
//     exact clean-run identities of test_rt_differential still hold.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/audit.h"
#include "harness/script.h"
#include "rt/audit_lock.h"
#include "rt/clock.h"
#include "rt/supervisor.h"
#include "rt/workload.h"
#include "rt/world.h"

namespace loadex {
namespace {

using core::MechanismKind;
using harness::Script;
using ProcKind = ProcessFaultEvent::Kind;

core::MechanismConfig chaosMechConfig(const Script& s) {
  core::MechanismConfig mcfg;
  mcfg.threshold = {s.threshold, s.threshold};
  mcfg.reliability.reliable_updates = s.hardened;
  if (s.kind == MechanismKind::kSnapshot) {
    // Mandatory under crashes/loss: the paper's snapshot deadlocks when
    // an answer is lost or an initiator dies mid-snapshot; the timeout
    // retries and eventually completes with a partial quorum.
    mcfg.reliability.snapshot_timeout_s = 10e-3;
    mcfg.reliability.max_snapshot_retries = 3;
  }
  return mcfg;
}

/// Sleep-poll until `pred` holds or `timeout_s` elapses.
bool pollUntil(const rt::RtWorld& world, double timeout_s,
               const std::function<bool()>& pred) {
  const SimTime deadline = world.now() + timeout_s;
  while (!pred()) {
    if (world.now() >= deadline) return false;
    rt::MonotonicClock::sleepFor(1e-3);
  }
  return true;
}

void expectFaultIdentities(const rt::RtRunStats& st) {
  EXPECT_EQ(st.state_posted + st.state_duplicated,
            st.state_delivered + st.state_dropped)
      << "state channel leaks envelopes under faults";
  EXPECT_EQ(st.task_posted + st.task_duplicated,
            st.task_delivered + st.task_dropped)
      << "task channel leaks envelopes under faults";
  EXPECT_EQ(st.timers_armed, st.timers_fired + st.timers_cancelled);
  EXPECT_EQ(st.mailbox_pushes, st.mailbox_pops)
      << "a sealed mailbox kept an unswept envelope";
}

// ---- seeded chaos sweep ----------------------------------------------------

struct ChaosCase {
  std::uint64_t seed = 0;
  int nprocs = 8;
  MechanismKind kind = MechanismKind::kNaive;
  bool hardened = false;        ///< increment only
  bool permanent_crash = false; ///< one victim stays down for good
  bool legacy = false;          ///< A/B: thread-per-rank escape hatch
  int workers = 0;              ///< M:N pool size (0: auto)
};

/// Hostile script sized like test_rt_stress's, except masters are drawn
/// from the low ranks only — the chaos victims are the top three ranks,
/// so every scripted selection's initiator survives and the
/// committed+skipped bookkeeping stays exact.
Script chaosScript(const ChaosCase& c) {
  Rng rng(c.seed * 0x9e3779b97f4a7c15ull + 1);
  Script s;
  s.seed = c.seed;
  s.nprocs = c.nprocs;
  s.kind = c.kind;
  s.hardened = c.hardened;
  s.threshold = 1.0;

  const auto randRank = [&] {
    return static_cast<Rank>(
        rng.uniformInt(static_cast<std::uint64_t>(c.nprocs)));
  };
  const auto randMaster = [&] {
    return static_cast<Rank>(
        rng.uniformInt(static_cast<std::uint64_t>(c.nprocs - 3)));
  };

  const int nloads = c.nprocs * 30;
  for (int i = 0; i < nloads; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0), randRank(),
                       {rng.uniformReal(2.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});
  for (int i = 0; i < 6; ++i)
    s.selections.push_back(
        {rng.uniformReal(0.3, 0.9), randMaster(), rng.uniformReal(5.0, 40.0)});
  return s;
}

class RtChaos : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(RtChaos, SurvivesCrashPauseRestartWithLoss) {
  const ChaosCase& c = GetParam();
  const Script s = chaosScript(c);
  SCOPED_TRACE("seed=" + std::to_string(c.seed) +
               " nprocs=" + std::to_string(c.nprocs) +
               " kind=" + core::mechanismKindName(c.kind) +
               (c.hardened ? " hardened" : "") +
               (c.permanent_crash ? " permanent_crash" : "") +
               (c.legacy ? " legacy" : "") +
               (c.workers > 0 ? " workers=" + std::to_string(c.workers)
                              : ""));

  // Victims: top three ranks (never scripted as masters).
  const Rank restarted = static_cast<Rank>(c.nprocs - 1);
  const Rank paused = static_cast<Rank>(c.nprocs - 2);
  const Rank perma = static_cast<Rank>(c.nprocs - 3);

  rt::RtConfig rcfg;
  rcfg.nprocs = c.nprocs;
  rcfg.executor.legacy_executor = c.legacy;
  rcfg.executor.workers = c.workers;
  rt::FaultPlan& fp = rcfg.faults;
  fp.messages.drop_prob = 0.05;
  fp.messages.duplicate_prob = 0.02;
  fp.messages.latency_spike_prob = 0.02;
  fp.messages.latency_spike_s = 2e-3;
  // Task closures must not be randomly lost (a vanished delegation would
  // double-count or lose real work); they still die with a crashed rank.
  fp.messages.affects_state = true;
  fp.messages.affects_app = false;
  fp.messages.seed = c.seed * 1069 + 7;
  fp.messages.blackouts.push_back({/*src=*/0, /*dst=*/1, 0.004, 0.012});
  // Script time spans [0.01, 1.0] at time_scale 0.05 => ~50ms of paced
  // traffic; all lifecycle events land inside it.
  fp.process.push_back({restarted, 0.008, ProcKind::kCrash});
  fp.process.push_back({paused, 0.010, ProcKind::kPause});
  if (c.permanent_crash) fp.process.push_back({perma, 0.014, ProcKind::kCrash});
  fp.process.push_back({restarted, 0.020, ProcKind::kRestart});
  fp.process.push_back({paused, 0.045, ProcKind::kResume});
  fp.suspicion.enabled = true;
  fp.suspicion.suspect_after_s = 20e-3;
  fp.suspicion.dead_after_s = 80e-3;
  fp.suspicion.sweep_period_s = 1e-3;

  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), s.kind, chaosMechConfig(s));

  core::AuditorConfig acfg;
  acfg.allow_message_loss = true;  // injected drops + duplicates are legal
  acfg.allow_crashes = true;       // sealed destinations + frozen ranks too
  acfg.check_conservation = false; // lost updates corrupt views by design
  core::ProtocolAuditor auditor(acfg);
  rt::RtAuditBinding audit_binding(auditor, mechs);

  for (Rank r = 0; r < c.nprocs; ++r) world.attach(r, &mechs.at(r));
  world.superviseMechanisms(&mechs);
  world.start();

  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res =
      driver.run(s, /*time_scale=*/0.05, /*drain_timeout_s=*/120.0);
  EXPECT_TRUE(res.drained) << "chaos run failed to quiesce";

  // The supervisor owns the schedule; make sure every event has fired
  // before reasoning about end-state (drain can win the race on a fast
  // machine only by microseconds, but be explicit).
  const std::int64_t want_crashes = c.permanent_crash ? 2 : 1;
  EXPECT_TRUE(pollUntil(world, 10.0, [&] {
    const rt::RtWorld::LifecycleCounts lc = world.lifecycleCounts();
    return lc.crashes >= want_crashes && lc.restarts >= 1 &&
           world.rankLife(paused) == rt::RankLife::kAlive;
  })) << "scripted lifecycle events did not all fire";
  EXPECT_TRUE(world.drain(30.0));

  // The supervisor resynced `restarted` at restart time, but later script
  // traffic changed loads again; a final resync at quiescence is what
  // makes view coherence assertable below.
  rt::postRejoinResync(world, mechs, restarted);
  EXPECT_TRUE(world.drain(30.0));
  world.stop();

  // Every scripted selection's master survived, so each selection closure
  // ran exactly once (committed or skipped when the view had no slave).
  EXPECT_EQ(res.selections_committed + res.selections_skipped,
            static_cast<std::int64_t>(s.selections.size()));

  const rt::RtRunStats st = world.runStats();
  expectFaultIdentities(st);
  EXPECT_EQ(st.crashes, want_crashes);
  EXPECT_EQ(st.restarts, 1);
  EXPECT_GE(st.resyncs, 1);
  EXPECT_GT(st.fault_drops, 0) << "5% loss on a flood must drop something";
  EXPECT_EQ(world.pendingWork(), 0);
  if (c.permanent_crash) {
    EXPECT_EQ(world.rankLife(perma), rt::RankLife::kCrashed);
    EXPECT_GE(st.deaths_declared, 1);
  }

  // Auditor: loss and crashes are legal, reordering and double-execution
  // are not. Annotate the crash history for the finish-time checks.
  auditor.noteCrashed(restarted);
  auditor.noteRestarted(restarted);
  if (c.permanent_crash) auditor.noteCrashed(perma);
  auditor.finish();
  auditor.expectClean();

  // Rejoin coherence: after the final resync the restarted rank and every
  // surviving peer agree on each other's authoritative loads exactly
  // (resync copies localLoad, no threshold residue involved).
  for (Rank p = 0; p < c.nprocs; ++p) {
    if (p == restarted || (c.permanent_crash && p == perma)) continue;
    SCOPED_TRACE("peer=" + std::to_string(p));
    const core::LoadMetrics& mine = mechs.at(p).localLoad();
    const core::LoadMetrics& seen = mechs.at(restarted).view().load(p);
    EXPECT_NEAR(seen.workload, mine.workload, 1e-9);
    EXPECT_NEAR(seen.memory, mine.memory, 1e-9);
    const core::LoadMetrics& back = mechs.at(p).view().load(restarted);
    EXPECT_NEAR(back.workload, mechs.at(restarted).localLoad().workload, 1e-9);
    EXPECT_NEAR(back.memory, mechs.at(restarted).localLoad().memory, 1e-9);
    EXPECT_FALSE(mechs.at(p).view().dead(restarted));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtChaos,
    ::testing::Values(
        // M:N executor, auto-sized pool (the default runtime).
        ChaosCase{1, 8, MechanismKind::kNaive, false, false},
        ChaosCase{2, 8, MechanismKind::kIncrement, true, false},
        ChaosCase{3, 8, MechanismKind::kSnapshot, false, false},
        ChaosCase{4, 32, MechanismKind::kNaive, false, true},
        ChaosCase{5, 32, MechanismKind::kIncrement, true, true},
        ChaosCase{6, 32, MechanismKind::kSnapshot, false, true},
        // A/B on the legacy thread-per-rank escape hatch: the fault layer
        // must behave identically when lifecycle events join/spawn real
        // threads instead of flipping shard-local state.
        ChaosCase{7, 8, MechanismKind::kNaive, false, false, true},
        ChaosCase{8, 32, MechanismKind::kSnapshot, false, true, true},
        // Pinned small pools: ranks ≫ workers, so crash teardown and
        // restart must interleave with foreign-shard steals.
        ChaosCase{9, 32, MechanismKind::kIncrement, true, true, false, 2},
        ChaosCase{10, 32, MechanismKind::kNaive, false, false, false, 1}));

// ---- M:N saturation flood --------------------------------------------------

// N=1024 ranks on 4 workers: every shard serves hundreds of ranks and
// every worker serves multiple shards, so mailbox drains, spill flushes,
// timer fires and crash teardown constantly hand ranks across OS threads.
// This is the TSan showcase for the M:N executor — the interesting output
// is the *absence* of races; the assertions are the same conservation
// identities as the sweep above, plus rejoin coherence at scale.
TEST(RtChaosFlood, ThousandRanksOnFourWorkersSurviveChaos) {
  constexpr int kProcs = 1024;
  const Rank restarted = kProcs - 1;
  const Rank paused = kProcs - 2;
  const Rank perma = kProcs - 3;

  // Bounded hostile script: one naive threshold crossing broadcasts to
  // 1023 peers, so it is the load-op count that prices the storm.
  Rng rng(0xF100Du);
  Script s;
  s.nprocs = kProcs;
  s.kind = MechanismKind::kNaive;
  s.threshold = 6.0;
  for (int i = 0; i < 256; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0),
                       static_cast<Rank>(rng.uniformInt(kProcs)),
                       {rng.uniformReal(2.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});
  for (int i = 0; i < 6; ++i)
    s.selections.push_back(
        {rng.uniformReal(0.3, 0.9),
         static_cast<Rank>(rng.uniformInt(kProcs - 3)),  // survivors only
         rng.uniformReal(5.0, 40.0)});

  rt::RtConfig rcfg;
  rcfg.nprocs = kProcs;
  rcfg.executor.workers = 4;
  // 1024 default-size rings would cost hundreds of MB; small rings also
  // keep the spill path hot for the whole flood.
  rcfg.mailbox.capacity = 256;
  rt::FaultPlan& fp = rcfg.faults;
  fp.messages.drop_prob = 0.05;
  fp.messages.duplicate_prob = 0.02;
  fp.messages.latency_spike_prob = 0.02;
  fp.messages.latency_spike_s = 2e-3;
  fp.messages.affects_state = true;
  fp.messages.affects_app = false;
  fp.messages.seed = 0xF100D5EEDull;
  fp.process.push_back({restarted, 0.008, ProcKind::kCrash});
  fp.process.push_back({paused, 0.010, ProcKind::kPause});
  fp.process.push_back({perma, 0.014, ProcKind::kCrash});
  fp.process.push_back({restarted, 0.020, ProcKind::kRestart});
  fp.process.push_back({paused, 0.045, ProcKind::kResume});
  // Generous detector thresholds: a 4-worker pass over 1024 ranks under
  // TSan can stretch heartbeat ages, and a spurious suspect transition
  // broadcasts to 1023 peers — advisory noise this test does not need.
  fp.suspicion.enabled = true;
  fp.suspicion.suspect_after_s = 250e-3;
  fp.suspicion.dead_after_s = 1.0;
  fp.suspicion.sweep_period_s = 5e-3;

  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), s.kind, chaosMechConfig(s));

  core::AuditorConfig acfg;
  acfg.allow_message_loss = true;
  acfg.allow_crashes = true;
  acfg.check_conservation = false;
  core::ProtocolAuditor auditor(acfg);
  rt::RtAuditBinding audit_binding(auditor, mechs);

  for (Rank r = 0; r < kProcs; ++r) world.attach(r, &mechs.at(r));
  world.superviseMechanisms(&mechs);
  world.start();
  EXPECT_EQ(world.workerCount(), 4);

  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res =
      driver.run(s, /*time_scale=*/0.05, /*drain_timeout_s=*/300.0);
  EXPECT_TRUE(res.drained) << "flood failed to quiesce";

  EXPECT_TRUE(pollUntil(world, 30.0, [&] {
    const rt::RtWorld::LifecycleCounts lc = world.lifecycleCounts();
    return lc.crashes >= 2 && lc.restarts >= 1 &&
           world.rankLife(paused) == rt::RankLife::kAlive;
  })) << "scripted lifecycle events did not all fire";
  EXPECT_TRUE(world.drain(60.0));

  rt::postRejoinResync(world, mechs, restarted);
  EXPECT_TRUE(world.drain(60.0));
  world.stop();

  EXPECT_EQ(res.selections_committed + res.selections_skipped,
            static_cast<std::int64_t>(s.selections.size()));

  const rt::RtRunStats st = world.runStats();
  expectFaultIdentities(st);
  EXPECT_EQ(st.crashes, 2);
  EXPECT_EQ(st.restarts, 1);
  EXPECT_GE(st.resyncs, 1);
  EXPECT_GT(st.fault_drops, 0);
  EXPECT_EQ(world.pendingWork(), 0);
  EXPECT_EQ(world.rankLife(perma), rt::RankLife::kCrashed);

  auditor.noteCrashed(restarted);
  auditor.noteRestarted(restarted);
  auditor.noteCrashed(perma);
  auditor.finish();
  auditor.expectClean();

  // Rejoin coherence at scale: after the final resync, every surviving
  // peer and the restarted rank agree on each other's loads exactly.
  for (Rank p = 0; p < kProcs; ++p) {
    if (p == restarted || p == perma) continue;
    const core::LoadMetrics& mine = mechs.at(p).localLoad();
    const core::LoadMetrics& seen = mechs.at(restarted).view().load(p);
    ASSERT_NEAR(seen.workload, mine.workload, 1e-9) << "peer=" << p;
    const core::LoadMetrics& back = mechs.at(p).view().load(restarted);
    ASSERT_NEAR(back.workload, mechs.at(restarted).localLoad().workload,
                1e-9) << "peer=" << p;
    ASSERT_FALSE(mechs.at(p).view().dead(restarted)) << "peer=" << p;
  }
}

// ---- deterministic lifecycle units ----------------------------------------

/// Fixture bits shared by the manual-control tests.
struct ManualRig {
  rt::RtWorld world;
  core::MechanismSet mechs;

  explicit ManualRig(rt::RtConfig rcfg, core::MechanismConfig mcfg,
                     MechanismKind kind = MechanismKind::kNaive)
      : world(rcfg), mechs(world.transports(), kind, mcfg) {
    for (Rank r = 0; r < world.nprocs(); ++r) world.attach(r, &mechs.at(r));
  }
};

rt::RtConfig manualConfig(int nprocs) {
  rt::RtConfig rcfg;
  rcfg.nprocs = nprocs;
  rcfg.faults.manual_control = true;
  return rcfg;
}

TEST(RtChaosUnit, CrashSealsMailboxWithExactDropAccounting) {
  core::MechanismConfig mcfg;
  mcfg.threshold = {1.0, 1.0};
  ManualRig rig(manualConfig(4), mcfg);
  rig.world.start();

  ASSERT_EQ(rig.world.rankLife(2), rt::RankLife::kAlive);
  rig.world.crashRank(2);
  EXPECT_EQ(rig.world.rankLife(2), rt::RankLife::kCrashed);

  // A blocking post to the sealed rank is dropped (counted), not hung on.
  rig.world.post(2, [] {});
  // A naive broadcast from rank 0 loses exactly the copy aimed at rank 2.
  rig.world.post(0, [&rig] { rig.mechs.at(0).addLocalLoad({10.0, 0.0}); });
  EXPECT_TRUE(rig.world.drain(30.0));
  rig.world.stop();

  const rt::RtRunStats st = rig.world.runStats();
  EXPECT_EQ(st.crashes, 1);
  EXPECT_EQ(st.state_posted, 3);  // broadcast to ranks 1, 2, 3
  EXPECT_EQ(st.state_delivered, 2);
  EXPECT_EQ(st.state_dropped, 1);
  EXPECT_EQ(st.task_dropped, 1);  // the empty closure
  EXPECT_EQ(st.dropped_at_sealed_mailbox, 2);
  expectFaultIdentities(st);
  EXPECT_EQ(rig.world.pendingWork(), 0);
}

TEST(RtChaosUnit, ManualRestartWithResyncRestoresCoherence) {
  core::MechanismConfig mcfg;
  // Threshold high enough that the naive mechanism never broadcasts on
  // its own: every view entry checked below came from the resync.
  mcfg.threshold = {100.0, 100.0};
  ManualRig rig(manualConfig(4), mcfg);
  rig.world.start();

  for (Rank r = 0; r < 4; ++r)
    rig.world.post(r, [&rig, r] {
      rig.mechs.at(r).addLocalLoad({5.0 + 2.0 * r, 1.0 * r});
    });
  ASSERT_TRUE(rig.world.drain(30.0));

  rig.world.crashRank(1);
  for (Rank r : {Rank{0}, Rank{2}, Rank{3}})
    rig.world.post(r, [&rig, r] {
      rig.mechs.at(r).addLocalLoad({2.0 * r + 2.0, 0.0});
    });
  ASSERT_TRUE(rig.world.drain(30.0));

  rig.world.restartRank(1);
  EXPECT_EQ(rig.world.rankLife(1), rt::RankLife::kAlive);
  // Mirror the supervisor's restart sequence: protocol reset first (FIFO
  // puts it ahead of the resync on rank 1's mailbox), then the exchange.
  rig.world.post(1, [&rig] { rig.mechs.at(1).onRestart(); });
  rt::postRejoinResync(rig.world, rig.mechs, 1);
  ASSERT_TRUE(rig.world.drain(30.0));
  rig.world.stop();

  const rt::RtRunStats st = rig.world.runStats();
  EXPECT_EQ(st.crashes, 1);
  EXPECT_EQ(st.restarts, 1);
  for (Rank p : {Rank{0}, Rank{2}, Rank{3}}) {
    SCOPED_TRACE("peer=" + std::to_string(p));
    EXPECT_DOUBLE_EQ(rig.mechs.at(1).view().load(p).workload,
                     rig.mechs.at(p).localLoad().workload);
    // localLoad survives the crash (checkpoint-restore semantics): peers
    // see rank 1's pre-crash load again after the resync.
    EXPECT_DOUBLE_EQ(rig.mechs.at(p).view().load(1).workload,
                     rig.mechs.at(1).localLoad().workload);
  }
  EXPECT_DOUBLE_EQ(rig.mechs.at(1).localLoad().workload, 7.0);
  expectFaultIdentities(st);
}

TEST(RtChaosUnit, DetectorSuspectsBuriesAndRevivesAPausedRank) {
  rt::RtConfig rcfg = manualConfig(4);
  rcfg.faults.suspicion.enabled = true;
  rcfg.faults.suspicion.suspect_after_s = 30e-3;
  rcfg.faults.suspicion.dead_after_s = 120e-3;
  rcfg.faults.suspicion.sweep_period_s = 2e-3;
  core::MechanismConfig mcfg;
  mcfg.threshold = {1.0, 1.0};
  ManualRig rig(rcfg, mcfg);
  rig.world.superviseMechanisms(&rig.mechs);
  rig.world.start();

  rig.world.pauseRank(3);
  EXPECT_TRUE(pollUntil(rig.world, 30.0, [&rig] {
    return rig.world.lifecycleCounts().suspects_flagged >= 1;
  })) << "paused rank never suspected";
  EXPECT_TRUE(pollUntil(rig.world, 30.0, [&rig] {
    return rig.world.lifecycleCounts().deaths_declared >= 1;
  })) << "paused rank never declared dead";

  rig.world.resumeRank(3);
  EXPECT_TRUE(pollUntil(rig.world, 30.0, [&rig] {
    return rig.world.lifecycleCounts().revives >= 1;
  })) << "resumed rank never revived";
  // Let the revive broadcasts land, then settle.
  EXPECT_TRUE(rig.world.drain(30.0));
  rig.world.stop();

  const rt::RtRunStats st = rig.world.runStats();
  EXPECT_GE(st.suspects_flagged, 1);
  EXPECT_GE(st.deaths_declared, 1);
  EXPECT_GE(st.revives, 1);
  EXPECT_GE(rig.mechs.aggregateStats().ranks_suspected, 1);
  for (Rank r : {Rank{0}, Rank{1}, Rank{2}}) {
    SCOPED_TRACE("peer=" + std::to_string(r));
    EXPECT_FALSE(rig.mechs.at(r).view().suspect(3));
    EXPECT_FALSE(rig.mechs.at(r).view().dead(3));
  }
  expectFaultIdentities(st);
}

// ---- clean-path guarantee --------------------------------------------------

/// Replays a drawn script and asserts the exact clean-run identities plus
/// all-zero fault counters. Run once with the inert default plan and once
/// with the hooks armed but no fault configured: the per-send fault
/// branch must change nothing when no fault fires.
void expectCleanRunDigest(bool arm_hooks) {
  const Script s = harness::drawScript(/*seed=*/7);
  rt::RtConfig rcfg;
  rcfg.nprocs = s.nprocs;
  rcfg.faults.manual_control = arm_hooks;

  rt::RtWorld world(rcfg);
  core::MechanismConfig mcfg;
  mcfg.threshold = {s.threshold, s.threshold};
  mcfg.reliability.reliable_updates = s.hardened;
  core::MechanismSet mechs(world.transports(), s.kind, mcfg);
  for (Rank r = 0; r < s.nprocs; ++r) world.attach(r, &mechs.at(r));
  world.start();

  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res =
      driver.run(s, /*time_scale=*/0.0, /*drain_timeout_s=*/60.0);
  EXPECT_TRUE(res.drained);
  world.stop();

  const rt::RtRunStats st = world.runStats();
  // Clean-run identities, exactly as test_rt_differential asserts them.
  EXPECT_EQ(st.state_posted, st.state_delivered);
  EXPECT_EQ(st.task_posted, st.task_delivered);
  EXPECT_EQ(st.timers_armed, st.timers_fired);
  EXPECT_EQ(st.mailbox_pushes,
            static_cast<std::uint64_t>(st.state_posted + st.task_posted +
                                       s.nprocs));
  // Every fault counter stays zero.
  EXPECT_EQ(st.state_dropped, 0);
  EXPECT_EQ(st.task_dropped, 0);
  EXPECT_EQ(st.state_duplicated, 0);
  EXPECT_EQ(st.task_duplicated, 0);
  EXPECT_EQ(st.fault_drops, 0);
  EXPECT_EQ(st.latency_spikes, 0);
  EXPECT_EQ(st.dropped_at_sealed_mailbox, 0);
  EXPECT_EQ(st.crash_discards, 0);
  EXPECT_EQ(st.timers_cancelled, 0);
  EXPECT_EQ(st.crashes, 0);
  EXPECT_EQ(st.restarts, 0);
  EXPECT_EQ(st.resyncs, 0);
  EXPECT_EQ(st.suspects_flagged, 0);
  EXPECT_EQ(st.deaths_declared, 0);
  EXPECT_EQ(st.revives, 0);
}

TEST(RtChaosUnit, InertPlanKeepsEveryFaultCounterZero) {
  expectCleanRunDigest(/*arm_hooks=*/false);
}

TEST(RtChaosUnit, ArmedButEmptyPlanIsObservationallyClean) {
  expectCleanRunDigest(/*arm_hooks=*/true);
}

}  // namespace
}  // namespace loadex
