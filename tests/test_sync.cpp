// Debug-mode contract tests for the annotated sync layer
// (src/common/sync.h). This target compiles with LOADEX_SYNC_FORCE_DEBUG=1,
// so the owner/rank/confinement machinery is active regardless of the
// build type — each misuse must abort with a diagnostic (death tests),
// and each correct use must run silently.
//
// The release-mode twin (test_sync_release.cpp, LOADEX_SYNC_FORCE_DEBUG=0)
// checks the same constructs compile down to nothing.

#include "common/sync.h"

#include <thread>

#include <gtest/gtest.h>

// Header-only; rides on this target's forced-debug sync machinery for the
// shard-confinement contract tests at the bottom of the file.
#include "rt/timer_wheel.h"

namespace {

using loadex::sync::CondVar;
using loadex::sync::LockRank;
using loadex::sync::Mutex;
using loadex::sync::MutexLock;
using loadex::sync::ThreadConfined;

static_assert(loadex::sync::kDebugChecksEnabled,
              "this target forces the debug checks on");

// Death tests below spawn threads inside the EXPECT_DEATH statement; the
// default "fast" style is only safe in single-threaded children.
void useThreadsafeDeathTests() {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
}

TEST(SyncAssertHeld, PassesWhileHeldAcrossUnlockRelockAndWait) {
  Mutex mu{LockRank::kLifecycle};
  CondVar cv;
  MutexLock lk(mu);
  mu.assertHeld();
  lk.unlock();
  lk.lock();
  mu.assertHeld();
  // waitFor unlocks and relocks inside; ownership must be exact after.
  cv.waitFor(mu, 0.001);
  mu.assertHeld();
}

TEST(SyncAssertHeldDeathTest, AbortsWhenNeverLocked) {
  useThreadsafeDeathTests();
  Mutex mu{LockRank::kLifecycle};
  EXPECT_DEATH(mu.assertHeld(), "assertHeld: lock not held");
}

TEST(SyncAssertHeldDeathTest, AbortsAfterScopedRelease) {
  useThreadsafeDeathTests();
  EXPECT_DEATH(
      {
        Mutex mu{LockRank::kLifecycle};
        { MutexLock lk(mu); }
        mu.assertHeld();
      },
      "assertHeld: lock not held");
}

TEST(SyncAssertHeldDeathTest, AbortsOnAForeignThreadWhileHeld) {
  useThreadsafeDeathTests();
  EXPECT_DEATH(
      {
        Mutex mu{LockRank::kLifecycle};
        MutexLock lk(mu);
        std::thread t([&mu] { mu.assertHeld(); });
        t.join();
      },
      "assertHeld: lock not held");
}

TEST(SyncLockHierarchy, AscendingNestingIsLegal) {
  Mutex lo{LockRank::kLifecycle};
  Mutex hi{LockRank::kTraceRing};
  MutexLock a(lo);
  MutexLock b(hi);
  lo.assertHeld();
  hi.assertHeld();
}

TEST(SyncLockHierarchy, ReleaseReopensTheRank) {
  Mutex a{LockRank::kMailboxPark};
  Mutex b{LockRank::kMailboxPark};
  { MutexLock lk(a); }
  MutexLock lk(b);  // same rank is fine once `a` is released
  b.assertHeld();
}

TEST(SyncLockHierarchyDeathTest, AbortsOnDescendingNesting) {
  useThreadsafeDeathTests();
  EXPECT_DEATH(
      {
        Mutex hi{LockRank::kTraceRing};
        Mutex lo{LockRank::kLifecycle};
        MutexLock a(hi);
        MutexLock b(lo);
      },
      "hierarchy order");
}

TEST(SyncLockHierarchyDeathTest, AbortsOnEqualRankNesting) {
  useThreadsafeDeathTests();
  EXPECT_DEATH(
      {
        Mutex a{LockRank::kMailboxDeque};
        Mutex b{LockRank::kMailboxDeque};
        MutexLock la(a);
        MutexLock lb(b);
      },
      "hierarchy order");
}

TEST(SyncThreadConfined, FirstTouchBindsAndStays) {
  ThreadConfined tc;
  tc.assertConfined();
  tc.assertConfined();
}

TEST(SyncThreadConfined, ExplicitRebindHandsOwnershipOver) {
  ThreadConfined tc;
  tc.assertConfined();  // bound to this thread
  std::thread t([&tc] {
    tc.bindToCurrentThread();  // the audited handover path
    tc.assertConfined();
  });
  t.join();
}

TEST(SyncThreadConfinedDeathTest, AbortsOnForeignThreadTouch) {
  useThreadsafeDeathTests();
  EXPECT_DEATH(
      {
        ThreadConfined tc;
        tc.assertConfined();
        std::thread t([&tc] { tc.assertConfined(); });
        t.join();
      },
      "foreign thread");
}

TEST(SyncThreadConfinedDeathTest, AbortsOnOldOwnerAfterHandover) {
  useThreadsafeDeathTests();
  EXPECT_DEATH(
      {
        ThreadConfined tc;
        tc.assertConfined();
        std::thread t([&tc] {
          tc.bindToCurrentThread();
          tc.assertConfined();
        });
        t.join();
        tc.assertConfined();  // ownership moved away; this must trip
      },
      "foreign thread");
}

// ---- timer wheel ownership (rt/timer_wheel.h) ------------------------------
// The wheel rides on the sync layer's debug machinery, so its ownership
// contract is pinned here where LOADEX_SYNC_FORCE_DEBUG is on: once
// bindToShard() switches a wheel from thread confinement to shard
// confinement, every touch without the shard lock must abort — including
// from the thread that constructed the wheel (the M:N executor's point:
// thread identity stops mattering, lock ownership is everything).

TEST(TimerWheelShardConfinement, ShardLockHolderPassesFromAnyThread) {
  Mutex mu{LockRank::kShard};
  loadex::rt::TimerWheel wheel;
  wheel.bindToShard(&mu);
  int fired = 0;
  {
    MutexLock lk(mu);
    wheel.schedule(/*now=*/0.0, /*delay=*/0.0, [&fired] { ++fired; });
    EXPECT_EQ(wheel.fireDue(1.0), 1);
  }
  // A "stealing" worker: different OS thread, same lock — must pass.
  std::thread thief([&] {
    MutexLock lk(mu);
    wheel.schedule(0.0, 0.0, [&fired] { ++fired; });
    EXPECT_EQ(wheel.fireDue(1.0), 1);
  });
  thief.join();
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheelShardConfinementDeathTest, AbortsWithoutTheShardLock) {
  useThreadsafeDeathTests();
  Mutex mu{LockRank::kShard};
  loadex::rt::TimerWheel wheel;
  wheel.bindToShard(&mu);
  EXPECT_DEATH(wheel.schedule(0.0, 0.0, [] {}),
               "assertHeld: lock not held");
  EXPECT_DEATH(wheel.fireDue(1.0), "assertHeld: lock not held");
  EXPECT_DEATH(wheel.cancelAll(), "assertHeld: lock not held");
}

TEST(SyncCondVar, NotifyWakesAParkedWaiter) {
  Mutex mu{LockRank::kMailboxPark};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lk(mu);
    ready = true;
    cv.notifyOne();
  });
  {
    MutexLock lk(mu);
    // Bounded-slice wait loop, as every caller in the tree does it.
    for (int i = 0; i < 2000 && !ready; ++i) cv.waitFor(mu, 0.005);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

}  // namespace
