// End-to-end tests: full simulated factorizations under each mechanism.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "ordering/ordering.h"
#include "solver/runner.h"
#include "sparse/generators.h"

namespace loadex::solver {
namespace {

sparse::Problem gridProblem(int nx, int ny, int nz = 1, bool symmetric = true) {
  sparse::Problem p;
  p.name = "grid";
  p.pattern = nz > 1 ? sparse::grid3d(nx, ny, nz) : sparse::grid2d(nx, ny);
  p.symmetric = symmetric;
  return p;
}

SolverConfig baseConfig(int nprocs, core::MechanismKind kind,
                        Strategy strategy = Strategy::kWorkload) {
  SolverConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mechanism = kind;
  cfg.strategy = strategy;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  cfg.auto_threshold_fraction = 0.05;
  return cfg;
}

TEST(Integration, CompletesOnOneProcess) {
  const auto res = runProblem(gridProblem(14, 14),
                              baseConfig(1, core::MechanismKind::kIncrement));
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.factor_time, 0.0);
  EXPECT_EQ(res.dynamic_decisions, 0);
  EXPECT_EQ(res.state_messages, 0);
}

class MechanismCompletion
    : public ::testing::TestWithParam<
          std::tuple<core::MechanismKind, int, Strategy>> {};

TEST_P(MechanismCompletion, FactorizationCompletes) {
  const auto [kind, nprocs, strategy] = GetParam();
  const auto res =
      runProblem(gridProblem(12, 12, 12), baseConfig(nprocs, kind, strategy));
  EXPECT_TRUE(res.completed) << res.mechanism << " " << nprocs;
  EXPECT_GT(res.factor_time, 0.0);
  EXPECT_GT(res.peak_active_mem, 0.0);
  if (nprocs >= 8) {
    // Small process counts may map every big front onto single-process
    // subtrees; from 8 on there are genuine type-2 decisions.
    EXPECT_GT(res.dynamic_decisions, 0);
    EXPECT_EQ(res.selections_made, res.dynamic_decisions);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MechanismCompletion,
    ::testing::Combine(::testing::Values(core::MechanismKind::kNaive,
                                         core::MechanismKind::kIncrement,
                                         core::MechanismKind::kSnapshot),
                       ::testing::Values(2, 4, 8, 16),
                       ::testing::Values(Strategy::kWorkload,
                                         Strategy::kMemory)),
    [](const auto& info) {
      return std::string(core::mechanismKindName(std::get<0>(info.param))) +
             "_p" + std::to_string(std::get<1>(info.param)) + "_" +
             strategyName(std::get<2>(info.param));
    });

TEST(Integration, DeterministicAcrossRuns) {
  const auto cfg = baseConfig(8, core::MechanismKind::kIncrement);
  const auto problem = gridProblem(8, 8, 8);
  const auto a = runProblem(problem, cfg);
  const auto b = runProblem(problem, cfg);
  EXPECT_EQ(a.factor_time, b.factor_time);
  EXPECT_EQ(a.peak_active_mem, b.peak_active_mem);
  EXPECT_EQ(a.state_messages, b.state_messages);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(Integration, SnapshotUsesFarFewerMessages) {
  // Table 6's shape: the demand-driven snapshot sends an order of
  // magnitude fewer state messages than the increment mechanism.
  const auto problem = gridProblem(12, 12, 12, /*symmetric=*/false);
  const auto incr = runProblem(
      problem, baseConfig(8, core::MechanismKind::kIncrement));
  const auto snap = runProblem(
      problem, baseConfig(8, core::MechanismKind::kSnapshot));
  ASSERT_TRUE(incr.completed);
  ASSERT_TRUE(snap.completed);
  EXPECT_GT(incr.state_messages, 4 * snap.state_messages);
}

TEST(Integration, SnapshotIsSlowerThanIncrements) {
  // Table 5's shape: the synchronisation of snapshots costs wall-clock.
  const auto problem = gridProblem(12, 12, 12, false);
  const auto incr = runProblem(
      problem, baseConfig(16, core::MechanismKind::kIncrement));
  const auto snap = runProblem(
      problem, baseConfig(16, core::MechanismKind::kSnapshot));
  EXPECT_GT(snap.factor_time, incr.factor_time);
  EXPECT_GT(snap.snapshot_time, 0.0);
  EXPECT_EQ(snap.snapshots, snap.dynamic_decisions);
}

TEST(Integration, NaiveMemoryNeverBeatsIncrementsMuch) {
  // Table 4's shape: with the memory-based scheduler the naive mechanism
  // tends to a worse (or equal) peak than increments; it must never be
  // dramatically better.
  const auto problem = gridProblem(9, 9, 9);
  const auto naive =
      runProblem(problem, baseConfig(8, core::MechanismKind::kNaive,
                                     Strategy::kMemory));
  const auto incr =
      runProblem(problem, baseConfig(8, core::MechanismKind::kIncrement,
                                     Strategy::kMemory));
  ASSERT_TRUE(naive.completed);
  ASSERT_TRUE(incr.completed);
  EXPECT_GE(naive.peak_active_mem, 0.8 * incr.peak_active_mem);
}

TEST(Integration, ThreadedModeSpeedsUpSnapshot) {
  // Table 7's shape: the comm thread reduces snapshot stalls.
  const auto problem = gridProblem(10, 10, 10, false);
  auto cfg = baseConfig(16, core::MechanismKind::kSnapshot);
  const auto plain = runProblem(problem, cfg);
  cfg.process.comm_thread = true;
  cfg.process.poll_period_s = 50e-6;
  const auto threaded = runProblem(problem, cfg);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(threaded.completed);
  EXPECT_LT(threaded.factor_time, plain.factor_time);
  EXPECT_LT(threaded.snapshot_time, plain.snapshot_time);
}

TEST(Integration, NoMoreMasterReducesMessages) {
  const auto problem = gridProblem(10, 10, 10, false);
  auto cfg = baseConfig(16, core::MechanismKind::kIncrement);
  const auto with_nmm = runProblem(problem, cfg);
  cfg.mech.no_more_master = false;
  cfg.app.announce_no_more_master = false;
  const auto without = runProblem(problem, cfg);
  ASSERT_TRUE(with_nmm.completed);
  ASSERT_TRUE(without.completed);
  EXPECT_LT(with_nmm.state_messages, without.state_messages);
}

TEST(Integration, ThresholdControlsMessageVolume) {
  const auto problem = gridProblem(12, 12, 12);
  auto cfg = baseConfig(8, core::MechanismKind::kIncrement);
  // Isolate the Update traffic: reservation broadcasts and No_more_master
  // announcements are independent of the threshold.
  cfg.mech.no_more_master = false;
  cfg.app.announce_no_more_master = false;
  cfg.auto_threshold = false;
  cfg.mech.threshold = {1.0, 1.0};  // hair trigger
  const auto chatty = runProblem(problem, cfg);
  cfg.mech.threshold = {1e12, 1e12};  // nearly mute
  const auto quiet = runProblem(problem, cfg);
  ASSERT_TRUE(chatty.completed);
  ASSERT_TRUE(quiet.completed);
  EXPECT_GT(chatty.state_messages, 5 * quiet.state_messages);
}

TEST(Integration, MessageCountGrowsWithProcs) {
  // §2.3: "the number of messages will increase with the number of
  // processes" for the broadcast-based mechanisms.
  const auto problem = gridProblem(9, 9, 9, false);
  const auto p8 =
      runProblem(problem, baseConfig(8, core::MechanismKind::kIncrement));
  const auto p32 =
      runProblem(problem, baseConfig(32, core::MechanismKind::kIncrement));
  EXPECT_GT(p32.state_messages, p8.state_messages);
}

TEST(Integration, SnapshotMessagesScaleWithDecisionsTimesProcs) {
  const auto problem = gridProblem(9, 9, 9, false);
  const auto res =
      runProblem(problem, baseConfig(12, core::MechanismKind::kSnapshot));
  ASSERT_TRUE(res.completed);
  // Protocol floor: each decision needs >= 3(P-1) messages
  // (start/snp/end), plus re-arms and master_to_slave traffic.
  const std::int64_t floor =
      static_cast<std::int64_t>(res.dynamic_decisions) * 3 * (12 - 1);
  EXPECT_GE(res.state_messages, floor);
  EXPECT_LT(res.state_messages, 4 * floor + 1000);
}

TEST(Integration, WorkloadStrategyBalancesBusyTime) {
  const auto problem = gridProblem(16, 16, 16, false);
  const auto res = runProblem(
      problem, baseConfig(8, core::MechanismKind::kIncrement));
  ASSERT_TRUE(res.completed);
  // Parallel efficiency sanity: 8 processes must beat 1 process by > 2x.
  const auto serial =
      runProblem(problem, baseConfig(1, core::MechanismKind::kIncrement));
  EXPECT_LT(res.factor_time, serial.factor_time / 2.0);
}

TEST(Integration, HonoursDifferentOrderings) {
  const auto problem = gridProblem(12, 12);
  for (const auto kind :
       {ordering::OrderingKind::kRcm, ordering::OrderingKind::kMinDegree,
        ordering::OrderingKind::kNestedDissection}) {
    const auto res = runProblem(
        problem, baseConfig(4, core::MechanismKind::kIncrement), kind);
    EXPECT_TRUE(res.completed) << ordering::orderingKindName(kind);
  }
}

TEST(Integration, IrregularProblemsComplete) {
  Rng rng(5);
  sparse::Problem p;
  p.name = "circuit";
  p.symmetric = false;
  p.pattern = sparse::circuitLike(3000, 4, 8, rng);
  for (const auto kind :
       {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
        core::MechanismKind::kSnapshot}) {
    const auto res = runProblem(p, baseConfig(8, kind));
    EXPECT_TRUE(res.completed) << core::mechanismKindName(kind);
  }
}

}  // namespace
}  // namespace loadex::solver
