// Tests for the loadex_obs subsystem: Chrome trace-event exporter (golden
// file), ring-buffer semantics, MetricsRegistry instruments and gauge
// sampling, and the subsystem's central promise — observation does not
// perturb the simulation (bit-identical event schedules with tracing and
// metrics on or off).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "solver/runner.h"
#include "sparse/generators.h"

namespace loadex::obs {
namespace {

// ---------------------------------------------------------------------------
// Chrome trace exporter — golden file.
// ---------------------------------------------------------------------------

/// A scripted recorder session exercising every event phase, name
/// interning/reuse, JSON string escaping and the fixed-precision
/// timestamps. The script is frozen: its export must match the golden file
/// byte for byte. Regenerate after an *intentional* format change with
///   LOADEX_UPDATE_GOLDEN=1 ./tests/test_obs
void scriptedSession(TraceRecorder& tr) {
  tr.nameRankTracks(2);
  tr.setTrackName(rankTrack(1, Lane::kMain), "P1 \"main\"\\lane");  // escaping
  tr.beginSpan(0.0, rankTrack(0, Lane::kMain), "task A");
  tr.counter(1e-6, "P0 active_mem", 128.0);
  tr.beginSpan(2e-6, rankTrack(0, Lane::kProto), "snapshot");
  tr.instant(2e-6, rankTrack(0, Lane::kProto), "rearm");
  const std::uint64_t flow = tr.nextFlowId();
  tr.completeSpan(3e-6, 4.5e-6, rankTrack(0, Lane::kNetState), "snd snp");
  tr.flowBegin(3e-6, rankTrack(0, Lane::kNetState), "snp", flow);
  tr.completeSpan(4.5e-6, 4.5e-6, rankTrack(1, Lane::kNetState), "rcv snp");
  tr.flowEnd(4.5e-6, rankTrack(1, Lane::kNetState), "snp", flow);
  tr.endSpan(5e-6, rankTrack(0, Lane::kProto));
  tr.counter(6e-6, "P0 active_mem", 64.25);   // reuses interned name
  tr.endSpan(7.125e-6, rankTrack(0, Lane::kMain));
}

std::string goldenPath() {
  return std::string(LOADEX_SOURCE_DIR) + "/tests/golden/chrome_trace.json";
}

TEST(TraceExporter, MatchesGoldenFile) {
  TraceRecorder tr;
  scriptedSession(tr);
  std::ostringstream got;
  tr.writeChromeTrace(got);

  if (std::getenv("LOADEX_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath());
    ASSERT_TRUE(out) << "cannot write " << goldenPath();
    out << got.str();
    GTEST_SKIP() << "golden file regenerated: " << goldenPath();
  }

  std::ifstream in(goldenPath());
  ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                  << " — regenerate with LOADEX_UPDATE_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "exporter output drifted from the golden file; if the change is "
         "intentional, rerun with LOADEX_UPDATE_GOLDEN=1";
}

TEST(TraceExporter, ExportIsByteDeterministic) {
  TraceRecorder a, b;
  scriptedSession(a);
  scriptedSession(b);
  std::ostringstream sa, sb;
  a.writeChromeTrace(sa);
  b.writeChromeTrace(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

// ---------------------------------------------------------------------------
// Ring buffer.
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RingWrapsDroppingOldest) {
  TraceConfig cfg;
  cfg.capacity = 8;
  TraceRecorder tr(cfg);
  for (int i = 0; i < 20; ++i)
    tr.instant(i * 1e-6, kGlobalTrack, "e" + std::to_string(i));
  EXPECT_EQ(tr.size(), 8u);
  EXPECT_EQ(tr.recorded(), 20u);
  EXPECT_EQ(tr.dropped(), 12u);

  std::ostringstream os;
  tr.writeChromeTrace(os);
  const std::string json = os.str();
  // Oldest surviving event first; dropped events absent.
  EXPECT_EQ(json.find("\"e11\""), std::string::npos);
  EXPECT_NE(json.find("\"e12\""), std::string::npos);
  EXPECT_NE(json.find("\"e19\""), std::string::npos);
  EXPECT_LT(json.find("\"e12\""), json.find("\"e19\""));
  EXPECT_NE(json.find("\"dropped\": 12"), std::string::npos);
}

TEST(TraceRecorder, MessageNamerDefaultAndOverride) {
  TraceRecorder tr;
  EXPECT_EQ(tr.messageName(0, 5), "state/5");
  EXPECT_EQ(tr.messageName(1, 7), "app/7");
  tr.setMessageNamer([](int channel, int tag) {
    return std::to_string(channel) + ":" + std::to_string(tag);
  });
  EXPECT_EQ(tr.messageName(1, 7), "1:7");
}

// ---------------------------------------------------------------------------
// MetricsRegistry.
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndAccumulatorCreateOnFirstUse) {
  MetricsRegistry m;
  EXPECT_EQ(m.findCounter("msgs"), nullptr);
  // The write-side instrument getters require the registry lock (the
  // LOADEX_METRIC macro holds it for normal call sites).
  {
    const sync::MutexLock lk(m.mu());
    m.counter("msgs").add(3);
    m.counter("msgs").add();
  }
  ASSERT_NE(m.findCounter("msgs"), nullptr);
  EXPECT_EQ(m.findCounter("msgs")->get(), 4);

  {
    const sync::MutexLock lk(m.mu());
    m.accumulator("stall").add(2.0);
    m.accumulator("stall").add(4.0);
  }
  ASSERT_NE(m.findAccumulator("stall"), nullptr);
  EXPECT_DOUBLE_EQ(m.findAccumulator("stall")->sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.findAccumulator("stall")->mean(), 3.0);
}

TEST(Metrics, HistogramBucketsUpperEdgeInclusive) {
  MetricsRegistry m;
  const sync::MutexLock lk(m.mu());
  auto& h = m.histogram("lat", {1.0, 10.0, 100.0});
  // Same name returns the same instrument (bounds of later calls ignored).
  EXPECT_EQ(&m.histogram("lat", {}), &h);

  h.add(0.5);    // <= 1.0
  h.add(1.0);    // on the edge -> first bucket
  h.add(5.0);    // <= 10
  h.add(100.0);  // on the last edge -> third bucket
  h.add(1e6);    // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 1);
  EXPECT_EQ(h.buckets()[3], 1);  // overflow bucket
}

TEST(HistogramQuantiles, PinnedOnAKnownUniformDistribution) {
  // 100 samples, 25 per bucket over {[0,10], (10,20], (20,30], (30,40]}.
  Histogram h({10.0, 20.0, 30.0, 40.0});
  for (int b = 0; b < 4; ++b)
    for (int i = 0; i < 25; ++i) h.add(5.0 + 10.0 * b);

  // quantile(q) targets rank q*count and interpolates linearly inside
  // the containing bucket (first bucket's lower edge is 0).
  EXPECT_DOUBLE_EQ(h.quantile(0.125), 5.0);   // halfway into bucket 0
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 10.0);   // exactly fills bucket 0
  EXPECT_DOUBLE_EQ(h.p50(), 20.0);            // exactly fills bucket 1
  EXPECT_DOUBLE_EQ(h.quantile(0.625), 25.0);  // halfway into bucket 2
  EXPECT_DOUBLE_EQ(h.p95(), 38.0);            // 80% into bucket 3
  EXPECT_DOUBLE_EQ(h.p99(), 39.6);            // 96% into bucket 3
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
}

TEST(HistogramQuantiles, SingleBucketInterpolatesFromZero) {
  Histogram h({100.0});
  for (int i = 0; i < 10; ++i) h.add(1.0);
  // All mass sits in [0, 100]: the estimator only knows the bucket.
  EXPECT_DOUBLE_EQ(h.p50(), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 10.0);
}

TEST(HistogramQuantiles, OverflowClampsToLastBoundAndEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);  // empty histogram
  for (int i = 0; i < 10; ++i) h.add(50.0);
  // Overflow samples have no upper edge; the estimator clamps to the
  // last finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.p50(), 1.0);
  EXPECT_DOUBLE_EQ(h.p99(), 1.0);
}

TEST(HistogramQuantiles, LogBoundsSpanTheRequestedRange) {
  const std::vector<double> decades = Histogram::logBounds(1.0, 100.0, 1);
  ASSERT_EQ(decades.size(), 3u);
  EXPECT_DOUBLE_EQ(decades[0], 1.0);
  EXPECT_DOUBLE_EQ(decades[1], 10.0);
  EXPECT_DOUBLE_EQ(decades[2], 100.0);

  const std::vector<double> fine = Histogram::logBounds(1e-7, 1e3, 6);
  EXPECT_DOUBLE_EQ(fine.front(), 1e-7);
  EXPECT_GE(fine.back(), 1e3);
  const double step = std::pow(10.0, 1.0 / 6.0);
  for (std::size_t i = 1; i < fine.size(); ++i)
    EXPECT_NEAR(fine[i] / fine[i - 1], step, 1e-12);
}

TEST(Metrics, AccumulatorFamilySumAndMax) {
  MetricsRegistry m;
  {
    const sync::MutexLock lk(m.mu());
    m.accumulator("snapshot/stall/P0").add(1.5);
    m.accumulator("snapshot/stall/P2").add(4.0);
    m.accumulator("snapshot/stall/P2").add(0.5);
  }
  // P1 and P3 never stalled: absent instruments contribute zero.
  EXPECT_DOUBLE_EQ(m.accumulatorFamilySum("snapshot/stall", 4), 6.0);
  EXPECT_DOUBLE_EQ(m.accumulatorFamilyMax("snapshot/stall", 4), 4.5);
  // A rank outside the window is ignored.
  EXPECT_DOUBLE_EQ(m.accumulatorFamilySum("snapshot/stall", 2), 1.5);
}

TEST(Metrics, GaugeSamplingHonoursPeriod) {
  MetricsRegistry m;
  double level = 10.0;
  m.registerGauge("depth", [&] { return level; });
  m.setSamplePeriod(1.0);

  // The first sample fires once a full period has elapsed (never at t=0,
  // before the run has done anything).
  {
    const sync::MutexLock lk(m.mu());
    m.maybeSample(0.0);
    level = 20.0;
    m.maybeSample(0.5);   // still within the first period: no sample
    m.maybeSample(1.25);  // period elapsed: first sample
    level = 30.0;
    m.maybeSample(1.5);   // next sample due at 2.25: no
    m.maybeSample(7.0);   // second sample
  }
  EXPECT_EQ(m.samplesTaken(), 2);

  const auto* stats = m.findGaugeStats("depth");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 2);
  EXPECT_DOUBLE_EQ(stats->min(), 20.0);
  EXPECT_DOUBLE_EQ(stats->max(), 30.0);
}

TEST(Metrics, DisabledSamplingIsInert) {
  MetricsRegistry m;
  int calls = 0;
  m.registerGauge("g", [&] { ++calls; return 0.0; });
  {
    const sync::MutexLock lk(m.mu());
    for (double t = 0.0; t < 10.0; t += 0.1) m.maybeSample(t);
  }
  EXPECT_EQ(m.samplesTaken(), 0);
  EXPECT_EQ(calls, 0);
}

TEST(Metrics, MacroEvaluatesNothingWhenDisabled) {
  ASSERT_EQ(metricsRegistry(), nullptr);
  int evaluations = 0;
  // The statement below must not run without an installed registry.
  LOADEX_METRIC(counter([&] { ++evaluations; return "x"; }()).add());
  EXPECT_EQ(evaluations, 0);

  MetricsRegistry m;
  ScopedObservation session(nullptr, &m);
  LOADEX_METRIC(counter([&] { ++evaluations; return "x"; }()).add());
  EXPECT_EQ(evaluations, 1);
  const sync::MutexLock lk(m.mu());
  EXPECT_EQ(m.counter("x").get(), 1);
}

// ---------------------------------------------------------------------------
// Replay determinism: observation must not perturb the schedule.
// ---------------------------------------------------------------------------

solver::SolverConfig obsTestConfig(core::MechanismKind kind) {
  solver::SolverConfig cfg;
  cfg.nprocs = 8;
  cfg.mechanism = kind;
  cfg.strategy = solver::Strategy::kWorkload;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  cfg.auto_threshold_fraction = 0.05;
  return cfg;
}

class ObservationDeterminism
    : public ::testing::TestWithParam<core::MechanismKind> {};

TEST_P(ObservationDeterminism, ScheduleIsBitIdenticalWithTracingOn) {
  sparse::Problem problem;
  problem.name = "grid";
  problem.pattern = sparse::grid3d(8, 8, 8);
  problem.symmetric = true;

  const auto plain_cfg = obsTestConfig(GetParam());
  const auto plain = solver::runProblem(problem, plain_cfg);
  ASSERT_TRUE(plain.completed);
  ASSERT_NE(plain.schedule_digest, 0u);

  TraceRecorder recorder;
  auto traced_cfg = plain_cfg;
  traced_cfg.trace = &recorder;
  traced_cfg.metrics_sample_period_s = 1e-4;  // gauge sampling on too
  const auto traced = solver::runProblem(problem, traced_cfg);
  ASSERT_TRUE(traced.completed);
  EXPECT_GT(recorder.recorded(), 0u);  // tracing demonstrably happened

  // The digest folds every fired (time, seq) pair: equality means the two
  // runs executed the exact same events in the exact same order.
  EXPECT_EQ(plain.schedule_digest, traced.schedule_digest);
  EXPECT_EQ(plain.factor_time, traced.factor_time);
  EXPECT_EQ(plain.sim_events, traced.sim_events);
  EXPECT_EQ(plain.state_messages, traced.state_messages);
  EXPECT_EQ(plain.snapshot_time, traced.snapshot_time);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, ObservationDeterminism,
                         ::testing::Values(core::MechanismKind::kIncrement,
                                           core::MechanismKind::kSnapshot),
                         [](const auto& info) {
                           return std::string(
                               core::mechanismKindName(info.param));
                         });

// An end-to-end traced run produces a structurally sound trace: balanced
// nesting is checked by tools/trace_stats.py in CI; here we check the
// cheap invariants directly.
TEST(ObservationEndToEnd, TracedSolverRunRecordsAllLanes) {
  sparse::Problem problem;
  problem.name = "grid";
  // Big enough that the mapping produces type-2 fronts, so dynamic
  // decisions — and therefore snapshots — actually happen.
  problem.pattern = sparse::grid3d(12, 12, 12);
  problem.symmetric = true;

  TraceRecorder recorder;
  auto cfg = obsTestConfig(core::MechanismKind::kSnapshot);
  cfg.trace = &recorder;
  const auto res = solver::runProblem(problem, cfg);
  ASSERT_TRUE(res.completed);
  ASSERT_GT(res.snapshots, 0);

  std::ostringstream os;
  recorder.writeChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"snapshot\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled\""), std::string::npos);
  EXPECT_NE(json.find("\"snd "), std::string::npos);
  EXPECT_NE(json.find("\"rcv "), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow arrows
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

}  // namespace
}  // namespace loadex::obs
