#include "sparse/pattern.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.h"
#include "common/rng.h"
#include "sparse/generators.h"
#include "sparse/matrix_market.h"

namespace loadex::sparse {
namespace {

TEST(Pattern, FromEdgesSymmetrizesAndDedups) {
  const auto p = Pattern::fromEdges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 3}, {1, 1}});
  EXPECT_EQ(p.n(), 4);
  EXPECT_EQ(p.adjCount(), 4);  // (0,1),(1,0),(2,3),(3,2); diagonal dropped
  EXPECT_TRUE(p.hasEdge(0, 1));
  EXPECT_TRUE(p.hasEdge(1, 0));
  EXPECT_TRUE(p.hasEdge(3, 2));
  EXPECT_FALSE(p.hasEdge(0, 2));
  EXPECT_FALSE(p.hasEdge(1, 1));
}

TEST(Pattern, RowsAreSorted) {
  const auto p = Pattern::fromEdges(5, {{4, 0}, {2, 0}, {0, 1}, {3, 0}});
  const auto r0 = p.row(0);
  EXPECT_TRUE(std::is_sorted(r0.begin(), r0.end()));
  EXPECT_EQ(p.degree(0), 4);
}

TEST(Pattern, EdgeEndpointValidation) {
  EXPECT_THROW(Pattern::fromEdges(3, {{0, 3}}), ContractViolation);
  EXPECT_THROW(Pattern::fromEdges(3, {{-1, 0}}), ContractViolation);
}

TEST(Pattern, PermutedPreservesStructure) {
  const auto p = Pattern::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<int> perm{3, 2, 1, 0};  // reverse
  const auto q = p.permuted(perm);
  EXPECT_EQ(q.adjCount(), p.adjCount());
  // old edge (0,1) -> new vertices (3,2)
  EXPECT_TRUE(q.hasEdge(3, 2));
  EXPECT_TRUE(q.hasEdge(1, 0));  // old (2,3)
  EXPECT_FALSE(q.hasEdge(0, 3));
}

TEST(Pattern, PermutedRejectsBadPerm) {
  const auto p = Pattern::fromEdges(3, {{0, 1}});
  EXPECT_THROW(p.permuted({0, 0, 1}), ContractViolation);
  EXPECT_THROW(p.permuted({0, 1}), ContractViolation);
}

TEST(Pattern, ConnectedComponents) {
  const auto p = Pattern::fromEdges(6, {{0, 1}, {1, 2}, {4, 5}});
  std::vector<int> labels;
  EXPECT_EQ(p.connectedComponents(&labels), 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[5]);
}

TEST(PermutationHelpers, InvertAndIdentity) {
  const std::vector<int> p{2, 0, 1};
  const auto inv = invertPermutation(p);
  EXPECT_EQ(inv, (std::vector<int>{1, 2, 0}));
  EXPECT_TRUE(isPermutation(p));
  EXPECT_FALSE(isPermutation({0, 0, 1}));
  EXPECT_FALSE(isPermutation({0, 3, 1}));
  EXPECT_EQ(identityPermutation(3), (std::vector<int>{0, 1, 2}));
}

TEST(Generators, Grid2dStructure) {
  const auto g = grid2d(4, 3);
  EXPECT_EQ(g.n(), 12);
  // Interior vertex 5 = (1,1): 4 neighbours in the 5-point stencil.
  EXPECT_EQ(g.degree(5), 4);
  EXPECT_EQ(g.degree(0), 2);  // corner
  std::vector<int> labels;
  EXPECT_EQ(g.connectedComponents(&labels), 1);
}

TEST(Generators, Grid2dNinePoint) {
  const auto g = grid2d(4, 4, /*nine_point=*/true);
  EXPECT_EQ(g.degree(5), 8);  // interior of a 9-point stencil
}

TEST(Generators, Grid3dStructure) {
  const auto g = grid3d(3, 3, 3);
  EXPECT_EQ(g.n(), 27);
  EXPECT_EQ(g.degree(13), 6);  // centre of the 7-point stencil
  const auto g27 = grid3d(3, 3, 3, /*27pt=*/true);
  EXPECT_EQ(g27.degree(13), 26);
}

TEST(Generators, LpAATHasCliques) {
  Rng rng(7);
  const auto g = lpAAT(200, 300, 4, rng);
  EXPECT_EQ(g.n(), 200);
  EXPECT_GT(g.adjCount(), 0);
}

TEST(Generators, CircuitLikeHasHubs) {
  Rng rng(7);
  const auto g = circuitLike(20000, 4, 6, rng);
  int max_deg = 0;
  double avg = static_cast<double>(g.adjCount()) / g.n();
  for (int v = 0; v < g.n(); ++v) max_deg = std::max(max_deg, g.degree(v));
  // Hub nets tower over the average degree.
  EXPECT_GT(max_deg, 5 * avg);
}

TEST(Generators, RandomMeshIsModestDegree) {
  Rng rng(9);
  const auto g = randomMesh(1000, 6, rng);
  EXPECT_EQ(g.n(), 1000);
  double avg = static_cast<double>(g.adjCount()) / g.n();
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 20.0);
}

TEST(Generators, PaperSuitesAreComplete) {
  const auto small = paperSuiteSmall(0.5);
  ASSERT_EQ(small.size(), 8u);
  EXPECT_EQ(small[0].name, "BMWCRA_1");
  EXPECT_TRUE(small[0].symmetric);
  EXPECT_FALSE(small[6].symmetric);  // ULTRASOUND3 is UNS
  const auto large = paperSuiteLarge(0.5);
  ASSERT_EQ(large.size(), 3u);
  EXPECT_EQ(large[0].name, "AUDIKW_1");
}

TEST(Generators, SuiteIsDeterministic) {
  const auto a = paperSuiteSmall(0.3, 42);
  const auto b = paperSuiteSmall(0.3, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pattern.n(), b[i].pattern.n());
    EXPECT_EQ(a[i].pattern.adjCount(), b[i].pattern.adjCount());
  }
}

TEST(Generators, ScaleChangesSize) {
  const auto s1 = paperSuiteSmall(0.25);
  const auto s2 = paperSuiteSmall(1.0);
  EXPECT_LT(s1[0].pattern.n(), s2[0].pattern.n());
}

TEST(Generators, PaperProblemLookup) {
  EXPECT_TRUE(paperProblem("gupta3", 0.25).has_value());
  EXPECT_TRUE(paperProblem("AUDIKW_1", 0.25).has_value());
  EXPECT_FALSE(paperProblem("NOT_A_MATRIX").has_value());
}

TEST(MatrixMarket, RoundTrip) {
  const auto g = grid2d(3, 3);
  std::stringstream ss;
  writeMatrixMarket(ss, g);
  MatrixMarketInfo info;
  const auto back = readMatrixMarket(ss, &info);
  EXPECT_TRUE(info.symmetric);
  EXPECT_EQ(back.n(), g.n());
  EXPECT_EQ(back.adjCount(), g.adjCount());
  for (int i = 0; i < g.n(); ++i)
    for (const int j : g.row(i)) EXPECT_TRUE(back.hasEdge(i, j));
}

TEST(MatrixMarket, ParsesGeneralWithValues) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 5.0\n"
      "2 1 -1.0\n"
      "1 2 -1.0\n"
      "3 3 2.0\n");
  const auto p = readMatrixMarket(ss);
  EXPECT_EQ(p.n(), 3);
  EXPECT_TRUE(p.hasEdge(0, 1));
  EXPECT_EQ(p.adjCount(), 2);
}

TEST(MatrixMarket, RejectsMalformed) {
  std::stringstream no_banner("3 3 1\n1 1\n");
  EXPECT_THROW(readMatrixMarket(no_banner), ContractViolation);
  std::stringstream rect(
      "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n");
  EXPECT_THROW(readMatrixMarket(rect), ContractViolation);
  std::stringstream oob(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n");
  EXPECT_THROW(readMatrixMarket(oob), ContractViolation);
}

}  // namespace
}  // namespace loadex::sparse
