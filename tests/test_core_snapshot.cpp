// Tests for the §3 snapshot mechanism: protocol-level unit tests through a
// fake transport, and end-to-end tests in the simulated world.
#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim_test_utils.h"

namespace loadex::core {
namespace {

using test::CoreHarness;

// ---------------------------------------------------------------------------
// Protocol-level tests: feed messages directly into one mechanism instance.
// ---------------------------------------------------------------------------

struct FakeTransport final : Transport {
  Rank self_rank = 0;
  int n = 4;
  SimTime time = 0.0;

  struct Sent {
    Rank dst;
    StateTag tag;
    std::shared_ptr<const sim::Payload> payload;
  };
  std::vector<Sent> sent;

  Rank self() const override { return self_rank; }
  int nprocs() const override { return n; }
  SimTime now() const override { return time; }
  void sendState(Rank dst, StateTag tag, Bytes,
                 std::shared_ptr<const sim::Payload> payload) override {
    sent.push_back({dst, tag, std::move(payload)});
  }

  int count(StateTag tag, Rank dst = kNoRank) const {
    int c = 0;
    for (const auto& s : sent)
      if (s.tag == tag && (dst == kNoRank || s.dst == dst)) ++c;
    return c;
  }
};

/// Inject a state message into a mechanism as if delivered by the network.
template <typename P>
void inject(Mechanism& m, Rank src, StateTag tag, P payload) {
  sim::Message msg;
  msg.src = src;
  msg.dst = m.self();
  msg.channel = sim::Channel::kState;
  msg.tag = static_cast<int>(tag);
  msg.payload = std::make_shared<P>(std::move(payload));
  m.onStateMessage(msg);
}

StartSnpPayload start(RequestId req) {
  StartSnpPayload p;
  p.request = req;
  return p;
}

SnpPayload answer(RequestId req, double workload) {
  SnpPayload p;
  p.request = req;
  p.state = LoadMetrics{workload, 0.0};
  return p;
}

TEST(SnapshotProtocol, AnswersFirstStartSnpImmediately) {
  FakeTransport t;
  t.self_rank = 3;
  SnapshotMechanism m(t, {});
  m.addLocalLoad({42.0, 0.0});
  inject(m, 1, StateTag::kStartSnp, start(1));
  ASSERT_EQ(t.count(StateTag::kSnp, 1), 1);
  const auto& snp = payloadCast<SnpPayload>(*t.sent.back().payload);
  EXPECT_EQ(snp.request, 1u);
  EXPECT_DOUBLE_EQ(snp.state.workload, 42.0);
  EXPECT_TRUE(m.blocksComputation());
}

TEST(SnapshotProtocol, DelaysNonLeaderStartSnp) {
  FakeTransport t;
  t.self_rank = 3;
  SnapshotMechanism m(t, {});
  inject(m, 1, StateTag::kStartSnp, start(1));  // leader: rank 1
  inject(m, 2, StateTag::kStartSnp, start(1));  // not leader: delayed
  EXPECT_EQ(t.count(StateTag::kSnp, 1), 1);
  EXPECT_EQ(t.count(StateTag::kSnp, 2), 0);
  EXPECT_EQ(m.concurrentSnapshots(), 2);
}

TEST(SnapshotProtocol, StrongerLaterStartGetsAnswered) {
  // Paper line 20: the election winner is answered immediately, even if
  // another (weaker) snapshot is already open — delaying instead would
  // deadlock three-way initiator races.
  FakeTransport t;
  t.self_rank = 3;
  SnapshotMechanism m(t, {});
  inject(m, 2, StateTag::kStartSnp, start(1));  // leader: 2
  inject(m, 1, StateTag::kStartSnp, start(1));  // 1 preempts: answered too
  EXPECT_EQ(t.count(StateTag::kSnp, 2), 1);
  EXPECT_EQ(t.count(StateTag::kSnp, 1), 1);
}

TEST(SnapshotProtocol, EndSnpFlushesDelayedAnswerToNewLeader) {
  FakeTransport t;
  t.self_rank = 3;
  SnapshotMechanism m(t, {});
  inject(m, 1, StateTag::kStartSnp, start(1));
  inject(m, 2, StateTag::kStartSnp, start(7));
  EXPECT_EQ(t.count(StateTag::kSnp, 2), 0);
  inject(m, 1, StateTag::kEndSnp, EndSnpPayload{});
  ASSERT_EQ(t.count(StateTag::kSnp, 2), 1);
  const auto& snp = payloadCast<SnpPayload>(*t.sent.back().payload);
  EXPECT_EQ(snp.request, 7u);  // answered with the request id 2 sent
  EXPECT_TRUE(m.blocksComputation());  // snapshot of 2 still open
  inject(m, 2, StateTag::kEndSnp, EndSnpPayload{});
  EXPECT_FALSE(m.blocksComputation());
}

TEST(SnapshotProtocol, MasterToSlaveUpdatesLocalLoad) {
  FakeTransport t;
  SnapshotMechanism m(t, {});
  m.addLocalLoad({10.0, 1.0});
  MasterToSlavePayload p;
  p.share = LoadMetrics{90.0, 9.0};
  inject(m, 2, StateTag::kMasterToSlave, p);
  EXPECT_DOUBLE_EQ(m.localLoad().workload, 100.0);
  EXPECT_DOUBLE_EQ(m.localLoad().memory, 10.0);
}

TEST(SnapshotProtocol, InitiatorCollectsAnswersAndFinalizes) {
  FakeTransport t;
  t.self_rank = 0;
  t.n = 3;
  SnapshotMechanism m(t, {});
  m.addLocalLoad({5.0, 0.0});
  bool fired = false;
  m.requestView([&](const LoadView& v) {
    fired = true;
    EXPECT_DOUBLE_EQ(v.load(0).workload, 5.0);
    EXPECT_DOUBLE_EQ(v.load(1).workload, 11.0);
    EXPECT_DOUBLE_EQ(v.load(2).workload, 22.0);
    m.commitSelection({{1, LoadMetrics{100.0, 0.0}}});
  });
  EXPECT_EQ(t.count(StateTag::kStartSnp), 2);
  EXPECT_TRUE(m.blocksComputation());
  inject(m, 1, StateTag::kSnp, answer(1, 11.0));
  EXPECT_FALSE(fired);
  inject(m, 2, StateTag::kSnp, answer(1, 22.0));
  EXPECT_TRUE(fired);
  EXPECT_EQ(t.count(StateTag::kMasterToSlave, 1), 1);
  EXPECT_EQ(t.count(StateTag::kEndSnp), 2);
  EXPECT_FALSE(m.blocksComputation());  // no other snapshot was open
}

TEST(SnapshotProtocol, StaleRequestAnswersAreIgnored) {
  FakeTransport t;
  t.self_rank = 0;
  t.n = 3;
  SnapshotMechanism m(t, {});
  bool fired = false;
  m.requestView([&](const LoadView&) {
    fired = true;
    m.commitSelection({});
  });
  inject(m, 1, StateTag::kSnp, answer(999, 1.0));  // wrong request id
  inject(m, 2, StateTag::kSnp, answer(1, 2.0));
  EXPECT_FALSE(fired);
  inject(m, 1, StateTag::kSnp, answer(1, 1.0));
  EXPECT_TRUE(fired);
}

TEST(SnapshotProtocol, DuplicateAnswersAreCountedOnce) {
  FakeTransport t;
  t.self_rank = 0;
  t.n = 3;
  SnapshotMechanism m(t, {});
  bool fired = false;
  m.requestView([&](const LoadView&) {
    fired = true;
    m.commitSelection({});
  });
  inject(m, 1, StateTag::kSnp, answer(1, 1.0));
  inject(m, 1, StateTag::kSnp, answer(1, 1.0));
  EXPECT_FALSE(fired);
}

TEST(SnapshotProtocol, PreemptedInitiatorRearmsWithFreshRequest) {
  FakeTransport t;
  t.self_rank = 2;
  t.n = 4;
  SnapshotMechanism m(t, {});  // hardened re-arm (default config)
  bool fired = false;
  m.requestView([&](const LoadView&) {
    fired = true;
    m.commitSelection({});
  });
  EXPECT_EQ(m.myRequestId(), 1u);
  inject(m, 3, StateTag::kSnp, answer(1, 3.0));  // one early answer
  // Rank 0 preempts: we answer it but keep our request id for now — only
  // rank 0's *decision* (its end_snp) can invalidate gathered answers.
  inject(m, 0, StateTag::kStartSnp, start(5));
  EXPECT_EQ(t.count(StateTag::kSnp, 0), 1);
  EXPECT_EQ(m.myRequestId(), 1u);
  inject(m, 1, StateTag::kSnp, answer(1, 1.0));
  EXPECT_FALSE(fired);
  // The leader finishes: re-arm with request id 2; every answer gathered
  // for request 1 is now worthless.
  inject(m, 0, StateTag::kEndSnp, EndSnpPayload{});
  EXPECT_EQ(m.myRequestId(), 2u);
  EXPECT_EQ(m.stats().snapshot_rearms, 1);
  inject(m, 3, StateTag::kSnp, answer(1, 3.0));  // stale, ignored
  EXPECT_FALSE(fired);
  inject(m, 0, StateTag::kSnp, answer(2, 0.0));
  inject(m, 1, StateTag::kSnp, answer(2, 1.0));
  inject(m, 3, StateTag::kSnp, answer(2, 3.0));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(m.blocksComputation());
}

TEST(SnapshotProtocol, PaperModeRearmsOnFirstPreemptingStart) {
  MechanismConfig cfg;
  cfg.rearm_on_every_preemption = false;  // the paper's pseudocode rule
  FakeTransport t;
  t.self_rank = 2;
  t.n = 4;
  SnapshotMechanism m(t, cfg);
  m.requestView([&](const LoadView&) { m.commitSelection({}); });
  EXPECT_EQ(m.myRequestId(), 1u);
  inject(m, 0, StateTag::kStartSnp, start(5));
  // nb_snp == 1 and rank 0 preempts: immediate re-arm (lines 23-27 +
  // the initiate-loop).
  EXPECT_EQ(m.myRequestId(), 2u);
  EXPECT_EQ(m.stats().snapshot_rearms, 1);
  // A second simultaneous snapshot (nb_snp == 2) does not re-arm again.
  inject(m, 1, StateTag::kStartSnp, start(9));
  EXPECT_EQ(m.myRequestId(), 2u);
  EXPECT_EQ(m.stats().snapshot_rearms, 1);
}

TEST(SnapshotProtocol, WeakerConcurrentInitiatorDoesNotCauseRearm) {
  FakeTransport t;
  t.self_rank = 1;
  t.n = 4;
  SnapshotMechanism m(t, {});
  m.requestView([&](const LoadView&) { m.commitSelection({}); });
  // Rank 3 also starts a snapshot, but we are the stronger leader: we delay
  // the answer and keep our request id.
  inject(m, 3, StateTag::kStartSnp, start(9));
  EXPECT_EQ(m.myRequestId(), 1u);
  EXPECT_EQ(m.stats().snapshot_rearms, 0);
  EXPECT_EQ(t.count(StateTag::kSnp, 3), 0);
  // Our snapshot completes; the delayed answer is flushed at finalize time.
  inject(m, 0, StateTag::kSnp, answer(1, 0.0));
  inject(m, 2, StateTag::kSnp, answer(1, 2.0));
  inject(m, 3, StateTag::kSnp, answer(1, 3.0));
  EXPECT_EQ(t.count(StateTag::kSnp, 3), 1);
  // Still blocked: rank 3's snapshot is open; its end releases us.
  EXPECT_TRUE(m.blocksComputation());
  inject(m, 3, StateTag::kEndSnp, EndSnpPayload{});
  EXPECT_FALSE(m.blocksComputation());
}

TEST(SnapshotProtocol, SingleProcessViewIsImmediate) {
  FakeTransport t;
  t.self_rank = 0;
  t.n = 1;
  SnapshotMechanism m(t, {});
  m.addLocalLoad({3.0, 1.0});
  bool fired = false;
  m.requestView([&](const LoadView& v) {
    fired = true;
    EXPECT_DOUBLE_EQ(v.load(0).workload, 3.0);
    m.commitSelection({});
  });
  EXPECT_TRUE(fired);
  EXPECT_FALSE(m.blocksComputation());
}

TEST(SnapshotProtocol, CommitOutsideCallbackIsRejected) {
  FakeTransport t;
  SnapshotMechanism m(t, {});
  EXPECT_THROW(m.commitSelection({}), ContractViolation);
}

TEST(SnapshotProtocol, OverlappingRequestViewIsRejected) {
  FakeTransport t;
  t.n = 3;
  SnapshotMechanism m(t, {});
  m.requestView([&](const LoadView&) { m.commitSelection({}); });
  EXPECT_THROW(m.requestView([](const LoadView&) {}), ContractViolation);
}

// ---------------------------------------------------------------------------
// End-to-end tests in the simulated world.
// ---------------------------------------------------------------------------

/// These scenarios commit reservations without shipping the actual work, so
/// the auditor runs with the reservation-matching invariant disabled.
AuditorConfig snapshotAudit() {
  AuditorConfig cfg;
  cfg.check_reservations = false;
  return cfg;
}

TEST(SnapshotWorld, SingleSnapshotSeesExactLoads) {
  CoreHarness h(5, MechanismKind::kSnapshot);
  h.attachAuditor(snapshotAudit());
  for (Rank r = 0; r < 5; ++r)
    h.at(0.1, [&h, r] { h.mechs.at(r).addLocalLoad({10.0 * (r + 1), 1.0 * r}); });
  LoadView seen;
  h.at(1.0, [&] {
    h.mechs.at(0).requestView([&](const LoadView& v) {
      seen = v;
      h.mechs.at(0).commitSelection({{3, LoadMetrics{77.0, 7.0}}});
    });
  });
  h.run();
  h.finishAudit();
  ASSERT_EQ(seen.nprocs(), 5);
  for (Rank r = 0; r < 5; ++r)
    EXPECT_DOUBLE_EQ(seen.load(r).workload, 10.0 * (r + 1)) << r;
  // The selected slave's local load carries the reservation.
  EXPECT_DOUBLE_EQ(h.mechs.at(3).localLoad().workload, 40.0 + 77.0);
  // Everyone is unblocked at the end.
  for (Rank r = 0; r < 5; ++r)
    EXPECT_FALSE(h.mechs.at(r).blocksComputation()) << r;
}

TEST(SnapshotWorld, MessageCountsMatchProtocol) {
  const int n = 6;
  CoreHarness h(n, MechanismKind::kSnapshot);
  h.attachAuditor(snapshotAudit());
  h.at(1.0, [&] {
    h.mechs.at(2).requestView([&](const LoadView&) {
      h.mechs.at(2).commitSelection({});
    });
  });
  h.run();
  h.finishAudit();
  const auto total = h.mechs.aggregateStats();
  EXPECT_EQ(total.sent_by_tag.get("start_snp"), n - 1);
  EXPECT_EQ(total.sent_by_tag.get("snp"), n - 1);
  EXPECT_EQ(total.sent_by_tag.get("end_snp"), n - 1);
  EXPECT_EQ(total.snapshots_initiated, 1);
}

TEST(SnapshotWorld, ConcurrentSnapshotsAreSequentialized) {
  CoreHarness h(4, MechanismKind::kSnapshot);
  h.attachAuditor(snapshotAudit());
  for (Rank r = 0; r < 4; ++r)
    h.at(0.1, [&h, r] { h.mechs.at(r).addLocalLoad({100.0, 0.0}); });

  SimTime p0_done = -1, p2_done = -1;
  double p2_sees_p3 = -1;
  // Both initiate at (simulated) the same instant.
  h.at(1.0, [&] {
    h.mechs.at(0).requestView([&](const LoadView&) {
      p0_done = h.world.now();
      h.mechs.at(0).commitSelection({{3, LoadMetrics{500.0, 0.0}}});
    });
  });
  h.at(1.0, [&] {
    h.mechs.at(2).requestView([&](const LoadView& v) {
      p2_done = h.world.now();
      p2_sees_p3 = v.load(3).workload;
      h.mechs.at(2).commitSelection({});
    });
  });
  h.run();
  h.finishAudit();

  // Min-rank leader completes first; the later snapshot must include the
  // earlier selection's reservation on p3.
  ASSERT_GE(p0_done, 0.0);
  ASSERT_GE(p2_done, 0.0);
  EXPECT_LT(p0_done, p2_done);
  EXPECT_DOUBLE_EQ(p2_sees_p3, 600.0);
  for (Rank r = 0; r < 4; ++r)
    EXPECT_FALSE(h.mechs.at(r).blocksComputation()) << r;
}

TEST(SnapshotWorld, ThreeConcurrentSnapshotsAllComplete) {
  CoreHarness h(6, MechanismKind::kSnapshot);
  h.attachAuditor(snapshotAudit());
  std::vector<std::pair<Rank, SimTime>> completions;
  std::vector<double> p5_seen;
  for (Rank r : {4, 2, 0}) {
    h.at(1.0, [&h, &completions, &p5_seen, r] {
      h.mechs.at(r).requestView([&, r](const LoadView& v) {
        completions.emplace_back(r, h.world.now());
        p5_seen.push_back(v.load(5).workload);
        h.mechs.at(r).commitSelection({{5, LoadMetrics{100.0, 0.0}}});
      });
    });
  }
  h.run();
  h.finishAudit();
  ASSERT_EQ(completions.size(), 3u);
  // Completion order follows the min-rank election.
  EXPECT_EQ(completions[0].first, 0);
  EXPECT_EQ(completions[1].first, 2);
  EXPECT_EQ(completions[2].first, 4);
  // Each successive decision saw the previous reservations on p5.
  EXPECT_DOUBLE_EQ(p5_seen[0], 0.0);
  EXPECT_DOUBLE_EQ(p5_seen[1], 100.0);
  EXPECT_DOUBLE_EQ(p5_seen[2], 200.0);
  EXPECT_DOUBLE_EQ(h.mechs.at(5).localLoad().workload, 300.0);
  for (Rank r = 0; r < 6; ++r)
    EXPECT_FALSE(h.mechs.at(r).blocksComputation()) << r;
}

TEST(SnapshotWorld, MaxRankElectionReversesOrder) {
  MechanismConfig cfg;
  cfg.election = ElectionPolicy::kMaxRank;
  CoreHarness h(4, MechanismKind::kSnapshot, cfg);
  std::vector<Rank> order;
  for (Rank r : {1, 3}) {
    h.at(1.0, [&h, &order, r] {
      h.mechs.at(r).requestView([&, r](const LoadView&) {
        order.push_back(r);
        h.mechs.at(r).commitSelection({});
      });
    });
  }
  h.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[1], 1);
}

TEST(SnapshotWorld, SnapshotFreezesComputation) {
  // Slow network: the snapshot stays in flight for ~40 ms, a comfortable
  // window in which to queue work on a frozen process.
  sim::WorldConfig wcfg;
  wcfg.network.latency_s = 0.01;
  CoreHarness h(3, MechanismKind::kSnapshot, MechanismConfig{}, wcfg);
  SimTime task_done = -1;
  h.at(1.0, [&] {
    h.mechs.at(0).requestView([&](const LoadView&) {
      h.mechs.at(0).commitSelection({});
    });
  });
  // start_snp reaches p1 at ~1.01 (p1 freezes); end_snp at ~1.03+. The
  // task is queued at 1.02, in the middle of the frozen window.
  h.at(1.02, [&] {
    h.app.pushTask(1, 1e6, [&](sim::Process& p) { task_done = p.now(); });
    h.world.process(1).notifyReadyWork();
  });
  h.run();
  ASSERT_GE(task_done, 0.0);
  // The task (1 ms at 1 Gflop/s) must only have run after end_snp arrived.
  EXPECT_GT(task_done, 1.03);
  const auto& stats = h.mechs.at(1).stats();
  EXPECT_GT(stats.time_blocked, 0.0);
}

TEST(SnapshotWorld, BlockedTimeIsAccounted) {
  CoreHarness h(4, MechanismKind::kSnapshot);
  h.at(1.0, [&] {
    h.mechs.at(0).requestView([&](const LoadView&) {
      h.mechs.at(0).commitSelection({});
    });
  });
  h.run();
  const auto total = h.mechs.aggregateStats();
  EXPECT_GT(total.time_blocked, 0.0);
  EXPECT_EQ(total.snapshot_duration.count(), 1);
  EXPECT_GT(total.snapshot_duration.mean(), 0.0);
}

}  // namespace
}  // namespace loadex::core
