// Stress test of the rt runtime, intended primarily for ThreadSanitizer:
// 8-32 ranks flooding tens of thousands of mailbox messages through a
// random mix of mechanisms, both mailbox implementations, with selections
// and No_more_master announcements racing the load storm. Assertions are
// conservation-only (the same invariants as test_rt_differential) — the
// point is that TSan observes every cross-thread edge of the mailbox, the
// timer wheel deferrals and the drain protocol under real contention.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "harness/script.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "rt/workload.h"
#include "rt/world.h"

namespace loadex {
namespace {

using core::MechanismKind;
using harness::Script;

/// A deliberately hostile script: low threshold so nearly every load
/// change crosses it (naive broadcasts to nprocs-1 ranks each time),
/// several selections per master, all timestamps compressed so the driver
/// floods the world with zero pacing.
Script stressScript(std::uint64_t seed, int nprocs, MechanismKind kind) {
  Rng rng(seed);
  Script s;
  s.seed = seed;
  s.nprocs = nprocs;
  s.kind = kind;
  s.hardened = kind == MechanismKind::kIncrement && rng.uniformInt(2) == 0;
  s.threshold = 1.0;

  const int nloads = nprocs * 40;
  for (int i = 0; i < nloads; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0),
                       static_cast<Rank>(rng.uniformInt(
                           static_cast<std::uint64_t>(nprocs))),
                       {rng.uniformReal(2.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});

  for (int i = 0; i < 8; ++i)
    s.selections.push_back({rng.uniformReal(0.3, 0.9),
                            static_cast<Rank>(rng.uniformInt(
                                static_cast<std::uint64_t>(nprocs))),
                            rng.uniformReal(5.0, 40.0)});

  if (rng.uniformInt(3) == 0) {
    s.no_more_master = static_cast<Rank>(
        rng.uniformInt(static_cast<std::uint64_t>(nprocs)));
    s.no_more_master_at = rng.uniformReal(0.6, 0.9);
  }
  return s;
}

struct StressCase {
  std::uint64_t seed;
  int nprocs;
  MechanismKind kind;
  bool lock_free_ring;
};

class RtStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(RtStress, FloodsStayConservativeAndTSanClean) {
  const StressCase& c = GetParam();
  const Script s = stressScript(c.seed, c.nprocs, c.kind);
  SCOPED_TRACE("seed=" + std::to_string(c.seed) +
               " nprocs=" + std::to_string(c.nprocs) +
               " kind=" + core::mechanismKindName(c.kind) +
               (c.lock_free_ring ? " ring" : " mutex"));

  rt::RtConfig rcfg;
  rcfg.nprocs = c.nprocs;
  rcfg.mailbox.lock_free_ring = c.lock_free_ring;
  // Small mailboxes force the full-mailbox spill path under the storm.
  rcfg.mailbox.capacity = 256;
  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), s.kind,
                           [&] {
                             core::MechanismConfig m;
                             m.threshold = {s.threshold, s.threshold};
                             m.reliability.reliable_updates = s.hardened;
                             return m;
                           }());
  for (Rank r = 0; r < c.nprocs; ++r) world.attach(r, &mechs.at(r));
  world.start();

  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res =
      driver.run(s, /*time_scale=*/0.0, /*drain_timeout_s=*/120.0);
  world.stop();

  ASSERT_TRUE(res.drained) << "rt world failed to quiesce under load";
  EXPECT_EQ(res.selections_committed + res.selections_skipped,
            static_cast<std::int64_t>(s.selections.size()));

  const rt::RtRunStats st = world.runStats();
  EXPECT_EQ(st.state_posted, st.state_delivered);
  EXPECT_EQ(st.task_posted, st.task_delivered);
  EXPECT_EQ(st.timers_armed, st.timers_fired);
  // The storm must be a real storm: naive/increment broadcast threshold
  // crossings to every peer, so state traffic dwarfs the op count. (The
  // snapshot mechanism is demand-driven — its traffic scales with the
  // selections, not the load changes.)
  if (s.kind != MechanismKind::kSnapshot) {
    EXPECT_GT(st.state_posted, static_cast<std::int64_t>(s.loads.size()));
  }

  const harness::ScriptExpectations want = harness::expectationsOf(s);
  const double tol =
      1e-9 * (1.0 + std::abs(want.total_load.workload));
  EXPECT_NEAR(res.total_load.workload, want.total_load.workload, tol);
}

std::string stressName(const ::testing::TestParamInfo<StressCase>& info) {
  const StressCase& c = info.param;
  return std::string(core::mechanismKindName(c.kind)) + "_n" +
         std::to_string(c.nprocs) + (c.lock_free_ring ? "_ring" : "_mutex");
}

INSTANTIATE_TEST_SUITE_P(
    Mix, RtStress,
    ::testing::Values(
        StressCase{11, 8, MechanismKind::kNaive, true},
        StressCase{12, 16, MechanismKind::kIncrement, true},
        StressCase{13, 32, MechanismKind::kNaive, true},
        StressCase{14, 12, MechanismKind::kSnapshot, true},
        StressCase{15, 8, MechanismKind::kIncrement, false},
        StressCase{16, 16, MechanismKind::kNaive, false},
        StressCase{17, 8, MechanismKind::kSnapshot, false}),
    stressName);

// The obs layer attaches to an rt run unchanged: every rank thread then
// records trace events and metrics concurrently (the recorder and the
// registry serialise internally). This is the TSan coverage for those
// locks — the assertion itself only needs the session to have been used.
TEST(RtStress, ObservedFloodRecordsFromEveryRankThread) {
  const Script s = stressScript(/*seed=*/21, /*nprocs=*/12,
                                MechanismKind::kSnapshot);

  obs::TraceRecorder recorder;
  recorder.nameRankTracks(s.nprocs);
  obs::MetricsRegistry metrics;
  obs::ScopedObservation observe(&recorder, &metrics);

  rt::RtConfig rcfg;
  rcfg.nprocs = s.nprocs;
  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), s.kind,
                           [&] {
                             core::MechanismConfig m;
                             m.threshold = {s.threshold, s.threshold};
                             return m;
                           }());
  for (Rank r = 0; r < s.nprocs; ++r) world.attach(r, &mechs.at(r));
  world.start();
  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res =
      driver.run(s, /*time_scale=*/0.0, /*drain_timeout_s=*/120.0);
  world.stop();

  ASSERT_TRUE(res.drained);
  // The snapshot mechanism traces its protocol lane and records the
  // duration histogram; with 8 selections both must have fired.
  EXPECT_GT(recorder.recorded(), 0u);
  const auto* hist = metrics.findHistogram("snapshot/duration_s");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->count(), 0);
}

}  // namespace
}  // namespace loadex
