#include "sim/world.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/expect.h"

namespace loadex::sim {
namespace {

struct OneShotApp : Application {
  std::deque<ComputeTask> tasks;
  void onAppMessage(Process&, const Message&) override {}
  std::optional<ComputeTask> nextTask(Process&) override {
    if (tasks.empty()) return std::nullopt;
    auto t = std::move(tasks.front());
    tasks.pop_front();
    return t;
  }
};

TEST(World, EmptyWorldIsImmediatelyQuiescent) {
  World world(WorldConfig{});
  const auto r = world.run();
  EXPECT_FALSE(r.hit_limit);
  EXPECT_TRUE(world.quiescent());
  EXPECT_DOUBLE_EQ(r.end_time, 0.0);
}

TEST(World, RunUntilLimitStopsEarly) {
  World world(WorldConfig{});
  world.queue().scheduleAt(5.0, [] {});
  world.queue().scheduleAt(10.0, [] {});
  const auto r = world.run(/*until=*/7.0);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_DOUBLE_EQ(r.end_time, 5.0);
  EXPECT_FALSE(world.quiescent());
  const auto r2 = world.run();
  EXPECT_FALSE(r2.hit_limit);
  EXPECT_TRUE(world.quiescent());
}

TEST(World, MaxEventsGuardTrips) {
  World world(WorldConfig{});
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] { world.queue().scheduleAfter(1.0, tick); };
  world.queue().scheduleAt(0.0, tick);
  const auto r = world.run(kInfiniteTime, /*max_events=*/100);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_EQ(r.events, 100u);
}

TEST(World, SpeedFactorsScaleTaskDurations) {
  WorldConfig cfg;
  cfg.nprocs = 2;
  cfg.process.flops_per_s = 1e6;
  cfg.speed_factors = {1.0, 4.0};
  World world(cfg);
  OneShotApp slow, fast;
  SimTime slow_done = -1, fast_done = -1;
  slow.tasks.push_back(
      ComputeTask{4e6, "t", [&](Process& p) { slow_done = p.now(); }});
  fast.tasks.push_back(
      ComputeTask{4e6, "t", [&](Process& p) { fast_done = p.now(); }});
  world.attach(0, &slow, nullptr);
  world.attach(1, &fast, nullptr);
  world.run();
  EXPECT_NEAR(slow_done, 4.0, 1e-9);
  EXPECT_NEAR(fast_done, 1.0, 1e-9);
}

TEST(World, SpeedFactorsValidated) {
  WorldConfig cfg;
  cfg.nprocs = 3;
  cfg.speed_factors = {1.0, 2.0};  // wrong arity
  EXPECT_THROW(World w(cfg), ContractViolation);
  cfg.speed_factors = {1.0, 0.0, 1.0};  // non-positive
  EXPECT_THROW(World w2(cfg), ContractViolation);
}

TEST(NetworkJitter, PreservesPerPairFifo) {
  WorldConfig cfg;
  cfg.nprocs = 2;
  cfg.network.jitter_s = 1e-3;
  cfg.network.latency_s = 1e-6;
  World world(cfg);
  std::vector<int> received;
  struct Recorder : Application {
    std::vector<int>* out;
    void onAppMessage(Process&, const Message& m) override {
      out->push_back(m.tag);
    }
    std::optional<ComputeTask> nextTask(Process&) override {
      return std::nullopt;
    }
  } rec;
  rec.out = &received;
  world.attach(1, &rec, nullptr);
  world.queue().scheduleAt(0.0, [&] {
    for (int i = 0; i < 50; ++i)
      world.process(0).send(1, Channel::kApp, i, 8, nullptr);
  });
  world.run();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(NetworkJitter, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    WorldConfig cfg;
    cfg.nprocs = 2;
    cfg.network.jitter_s = 1e-3;
    cfg.network.seed = seed;
    World world(cfg);
    SimTime arrival = -1;
    struct Recorder : Application {
      SimTime* at;
      void onAppMessage(Process& p, const Message&) override { *at = p.now(); }
      std::optional<ComputeTask> nextTask(Process&) override {
        return std::nullopt;
      }
    } rec;
    rec.at = &arrival;
    world.attach(1, &rec, nullptr);
    world.queue().scheduleAt(0.0, [&] {
      world.process(0).send(1, Channel::kApp, 0, 8, nullptr);
    });
    world.run();
    return arrival;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace loadex::sim
