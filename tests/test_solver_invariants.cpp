// Conservation invariants of the distributed factorization, checked at
// quiescence across mechanisms, strategies, process counts and problem
// families:
//  * every front and contribution block allocated is eventually freed
//    (residual active memory ~ 0 on every process);
//  * every unit of workload accounted by the mechanisms is eventually
//    retired (residual workload / memory metrics ~ 0) — this catches any
//    double counting between reservations (Master_To_All /
//    master_to_slave) and slave-side self-accounting (Alg. 3 line (1));
//  * the factor entries accumulated across processes equal the symbolic
//    prediction.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "solver/runner.h"
#include "sparse/generators.h"

namespace loadex::solver {
namespace {

using Params = std::tuple<core::MechanismKind, Strategy, int /*nprocs*/,
                          int /*problem*/, bool /*comm_thread*/>;

class ConservationSweep : public ::testing::TestWithParam<Params> {};

TEST_P(ConservationSweep, EverythingBalancesAtQuiescence) {
  const auto [kind, strategy, nprocs, which, threaded] = GetParam();
  Rng rng(91 + which);
  sparse::Problem p;
  p.symmetric = (which % 2 == 0);
  switch (which) {
    case 0:
      p.name = "grid3d";
      p.pattern = sparse::grid3d(11, 11, 11);
      break;
    case 1:
      p.name = "circuit";
      p.pattern = sparse::circuitLike(6000, 4, 6, rng);
      break;
    default:
      p.name = "mesh3d";
      p.pattern = sparse::randomMesh(4000, 8, rng, /*3d=*/true);
      break;
  }

  SolverConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mechanism = kind;
  cfg.strategy = strategy;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  cfg.process.comm_thread = threaded;
  const auto res = runProblem(p, cfg);

  ASSERT_TRUE(res.completed);
  // Residuals are rounding-level relative to the problem size.
  const double mem_tol = 1.0 + 1e-6 * res.peak_active_mem;
  EXPECT_LT(res.residual_active_mem, mem_tol);
  EXPECT_LT(res.residual_workload, 1e-6 * res.total_flops + 1.0);
  EXPECT_LT(res.residual_memory_metric, mem_tol);
  EXPECT_GT(res.factor_entries_total, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationSweep,
    ::testing::Combine(::testing::Values(core::MechanismKind::kNaive,
                                         core::MechanismKind::kIncrement,
                                         core::MechanismKind::kSnapshot),
                       ::testing::Values(Strategy::kWorkload,
                                         Strategy::kMemory),
                       ::testing::Values(4, 24),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::string(core::mechanismKindName(std::get<0>(info.param))) +
             "_" + strategyName(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param)) + "_g" +
             std::to_string(std::get<3>(info.param)) +
             (std::get<4>(info.param) ? "_thr" : "");
    });

TEST(FactorEntries, MatchSymbolicPredictionExactly) {
  sparse::Problem p;
  p.name = "grid";
  p.symmetric = true;
  p.pattern = sparse::grid3d(9, 9, 9);
  const auto analysis = analyzeProblem(p);
  SolverConfig cfg;
  cfg.nprocs = 8;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  const auto plan = planTree(analysis.tree, p.symmetric, [&] {
    auto m = cfg.mapping;
    m.nprocs = cfg.nprocs;
    return m;
  }());
  const auto res = runSolver(analysis, p.symmetric, cfg, p.name);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.factor_entries_total, plan.total_factor_entries);
}

TEST(FactorEntries, IndependentOfMechanism) {
  sparse::Problem p;
  p.name = "grid";
  p.symmetric = false;
  p.pattern = sparse::grid3d(10, 10, 10);
  const auto analysis = analyzeProblem(p);
  std::vector<Entries> totals;
  for (const auto kind :
       {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
        core::MechanismKind::kSnapshot}) {
    SolverConfig cfg;
    cfg.nprocs = 12;
    cfg.mechanism = kind;
    cfg.mapping.type2_min_front = 80;
    cfg.mapping.type2_min_border = 8;
    const auto res = runSolver(analysis, p.symmetric, cfg, p.name);
    ASSERT_TRUE(res.completed);
    totals.push_back(res.factor_entries_total);
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[1], totals[2]);
}

}  // namespace
}  // namespace loadex::solver
