#include "solver/mapping.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "ordering/ordering.h"
#include "solver/schedulers.h"
#include "sparse/generators.h"
#include "symbolic/analysis.h"

namespace loadex::solver {
namespace {

symbolic::Analysis gridAnalysis(int nx, int ny, int nz = 1) {
  const auto g = nz > 1 ? sparse::grid3d(nx, ny, nz) : sparse::grid2d(nx, ny);
  return symbolic::analyze(g, ordering::nestedDissection(g));
}

TEST(Costs, FormulasAreConsistent) {
  symbolic::FrontNode nd;
  nd.npiv = 10;
  nd.front = 30;
  const auto unsym = frontCosts(nd, false);
  const auto sym = frontCosts(nd, true);
  EXPECT_DOUBLE_EQ(unsym.total_flops, unsym.master_flops + unsym.slave_flops);
  EXPECT_NEAR(sym.total_flops, unsym.total_flops / 2, 1e-9);
  EXPECT_EQ(unsym.front_entries, 900);
  EXPECT_EQ(unsym.master_front_entries, 300);
  EXPECT_EQ(unsym.cb_entries, 400);
  EXPECT_EQ(unsym.factor_entries, 10 * 50);  // k(2m-k)
  EXPECT_EQ(sym.factor_entries, 300);        // k*m
}

TEST(Costs, RootFrontHasNoCb) {
  symbolic::FrontNode nd;
  nd.npiv = 20;
  nd.front = 20;
  const auto c = frontCosts(nd, false);
  EXPECT_EQ(c.cb_entries, 0);
  EXPECT_DOUBLE_EQ(c.slave_flops, 0.0);
}

TEST(Mapping, EveryNodeGetsAMasterInRange) {
  const auto a = gridAnalysis(20, 20);
  MappingOptions opts;
  opts.nprocs = 8;
  const auto plan = planTree(a.tree, true, opts);
  ASSERT_EQ(static_cast<int>(plan.nodes.size()), a.tree.size());
  for (const auto& np : plan.nodes) {
    EXPECT_GE(np.master, 0);
    EXPECT_LT(np.master, 8);
  }
}

TEST(Mapping, SingleProcessIsAllSubtrees) {
  const auto a = gridAnalysis(12, 12);
  MappingOptions opts;
  opts.nprocs = 1;
  const auto plan = planTree(a.tree, true, opts);
  for (const auto& np : plan.nodes) {
    EXPECT_EQ(np.type, NodeType::kSubtree);
    EXPECT_EQ(np.master, 0);
  }
  EXPECT_EQ(plan.dynamic_decisions, 0);
}

TEST(Mapping, Type2NodesExistOnBigGrids) {
  const auto a = gridAnalysis(12, 12, 12);
  MappingOptions opts;
  opts.nprocs = 16;
  opts.type2_min_front = 100;
  opts.type2_min_border = 16;
  const auto plan = planTree(a.tree, true, opts);
  EXPECT_GT(plan.dynamic_decisions, 0);
  int type2 = 0, type3 = 0;
  for (const auto& np : plan.nodes) {
    if (np.type == NodeType::kType2) ++type2;
    if (np.type == NodeType::kType3) ++type3;
  }
  EXPECT_EQ(type2, plan.dynamic_decisions);
  EXPECT_LE(type3, 1);
  // Master counts add up.
  int master_sum = 0;
  for (const int c : plan.type2_masters_per_rank) master_sum += c;
  EXPECT_EQ(master_sum, type2);
}

TEST(Mapping, DecisionsGrowWithProcessCount) {
  // Table 3's trend: more processes -> more (or equal) dynamic decisions,
  // because proportional mapping keeps multi-process ranges deeper.
  const auto a = gridAnalysis(10, 10, 10);
  MappingOptions base;
  base.type2_min_front = 100;
  base.type2_min_border = 16;
  int prev = 0;
  for (const int p : {4, 16, 64}) {
    MappingOptions opts = base;
    opts.nprocs = p;
    const auto plan = planTree(a.tree, true, opts);
    EXPECT_GE(plan.dynamic_decisions, prev) << p;
    prev = plan.dynamic_decisions;
  }
}

TEST(Mapping, InitialWorkloadCoversSubtrees) {
  const auto a = gridAnalysis(16, 16);
  MappingOptions opts;
  opts.nprocs = 4;
  const auto plan = planTree(a.tree, true, opts);
  double initial = 0.0;
  for (const auto w : plan.initial_workload) initial += w;
  double subtree_work = 0.0;
  for (int id = 0; id < a.tree.size(); ++id)
    if (plan.at(id).type == NodeType::kSubtree)
      subtree_work += plan.at(id).costs.total_flops;
  EXPECT_NEAR(initial, subtree_work, 1e-6 * std::max(1.0, subtree_work));
  EXPECT_GT(initial, 0.0);
}

TEST(Mapping, DisconnectedProblemsAreMapped) {
  // Two independent grids + isolated vertices.
  std::vector<std::pair<int, int>> e;
  const auto g1 = sparse::grid2d(8, 8);
  for (int i = 0; i < g1.n(); ++i)
    for (const int j : g1.row(i))
      if (j < i) e.emplace_back(i, j);
  const int off = g1.n();
  for (int i = 0; i < g1.n(); ++i)
    for (const int j : g1.row(i))
      if (j < i) e.emplace_back(off + i, off + j);
  const auto p = sparse::Pattern::fromEdges(2 * g1.n() + 5, std::move(e));
  const auto a = symbolic::analyze(p, ordering::nestedDissection(p));
  MappingOptions opts;
  opts.nprocs = 6;
  const auto plan = planTree(a.tree, true, opts);
  EXPECT_EQ(static_cast<int>(plan.nodes.size()), a.tree.size());
}

// ---------------------------------------------------------------------------

TEST(WaterFill, EqualLoadsSplitEvenly) {
  std::vector<std::pair<double, Rank>> cand{{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  const auto rows = waterFillRows(cand, 100, 1.0, 4, 16);
  ASSERT_EQ(rows.size(), 4u);
  int total = 0;
  for (const auto& a : rows) {
    EXPECT_EQ(a.rows, 25);
    total += a.rows;
  }
  EXPECT_EQ(total, 100);
}

TEST(WaterFill, SkewedLoadsGetCompensated) {
  std::vector<std::pair<double, Rank>> cand{{0, 1}, {50, 2}};
  const auto rows = waterFillRows(cand, 100, 1.0, 1, 16);
  ASSERT_EQ(rows.size(), 2u);
  // Final level should equalize: r1 - r2 == 50.
  EXPECT_EQ(rows[0].rows - rows[1].rows, 50);
  EXPECT_EQ(rows[0].rows + rows[1].rows, 100);
}

TEST(WaterFill, OverloadedCandidatesDropOut) {
  std::vector<std::pair<double, Rank>> cand{{0, 1}, {1000, 2}};
  const auto rows = waterFillRows(cand, 10, 1.0, 1, 16);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].slave, 1);
  EXPECT_EQ(rows[0].rows, 10);
}

TEST(WaterFill, RespectsMaxSlaves) {
  std::vector<std::pair<double, Rank>> cand;
  for (Rank r = 0; r < 20; ++r) cand.emplace_back(0.0, r);
  const auto rows = waterFillRows(cand, 1000, 1.0, 1, 5);
  EXPECT_LE(rows.size(), 5u);
}

TEST(WaterFill, RespectsMinRows) {
  std::vector<std::pair<double, Rank>> cand;
  for (Rank r = 0; r < 8; ++r) cand.emplace_back(0.0, r);
  // Only 20 rows with min 8 per slave: at most 2 slaves.
  const auto rows = waterFillRows(cand, 20, 1.0, 8, 16);
  EXPECT_LE(rows.size(), 2u);
  int total = 0;
  for (const auto& a : rows) {
    total += a.rows;
    EXPECT_GE(a.rows, 8);
  }
  EXPECT_EQ(total, 20);
}

TEST(WaterFill, TinyWorkSingleSlave) {
  std::vector<std::pair<double, Rank>> cand{{3.0, 7}, {9.0, 2}};
  const auto rows = waterFillRows(cand, 2, 1.0, 8, 16);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].slave, 7);
  EXPECT_EQ(rows[0].rows, 2);
}

TEST(Schedulers, WorkloadPicksLeastLoaded) {
  core::LoadView view(4);
  view.set(0, {100, 0});
  view.set(1, {5, 999});   // light work, heavy memory
  view.set(2, {200, 1});
  view.set(3, {300, 1});
  SelectionRequest req;
  req.master = 0;
  req.rows = 16;
  req.front = 32;
  req.slave_flops = 1600.0;
  req.min_rows_per_slave = 16;  // forces a single slave
  const auto w = WorkloadScheduler{}.select(view, req);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].slave, 1);
  const auto m = MemoryScheduler{}.select(view, req);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].slave, 2);  // least memory among the non-masters
}

TEST(Schedulers, SharesCarryFlopsAndMemory) {
  core::LoadView view(3);
  SelectionRequest req;
  req.master = 0;
  req.rows = 10;
  req.front = 20;
  req.slave_flops = 500.0;
  req.min_rows_per_slave = 1;
  const auto sel = WorkloadScheduler{}.select(view, req);
  double flops = 0.0, mem = 0.0;
  for (const auto& a : sel) {
    flops += a.share.workload;
    mem += a.share.memory;
    EXPECT_NE(a.slave, 0);
  }
  EXPECT_NEAR(flops, 500.0, 1e-9);
  EXPECT_NEAR(mem, 10.0 * 20.0, 1e-9);
}

TEST(Schedulers, ParseAndName) {
  EXPECT_EQ(parseStrategy("workload"), Strategy::kWorkload);
  EXPECT_EQ(parseStrategy("memory"), Strategy::kMemory);
  EXPECT_THROW(parseStrategy("vibes"), ContractViolation);
  EXPECT_STREQ(strategyName(Strategy::kMemory), "memory");
}

}  // namespace
}  // namespace loadex::solver
