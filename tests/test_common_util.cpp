#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.h"
#include "common/expect.h"
#include "common/log.h"
#include "common/table.h"

namespace loadex {
namespace {

TEST(Expect, ThrowsWithMessage) {
  try {
    LOADEX_EXPECT(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Expect, PassesSilently) {
  EXPECT_NO_THROW(LOADEX_CHECK(2 + 2 == 4));
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(parseLogLevel("ERROR"), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("Debug"), LogLevel::kDebug);
  EXPECT_THROW(parseLogLevel("loud"), ContractViolation);
}

TEST(Table, RendersAlignedColumns) {
  Table t("Demo");
  t.setHeader({"Matrix", "32 procs", "64 procs"});
  t.addRow({"BMWCRA_1", "41", "96"});
  t.addRow({"GUPTA3", "8", "8"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("BMWCRA_1"), std::string::npos);
  // Numeric cells are right-aligned to the column width of "64 procs".
  EXPECT_NE(out.find("|       96"), std::string::npos);
}

TEST(Table, RowArityMustMatchHeader) {
  Table t;
  t.setHeader({"a", "b"});
  EXPECT_THROW(t.addRow({"only one"}), ContractViolation);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmtInt(1401373), "1,401,373");
  EXPECT_EQ(Table::fmtInt(-42), "-42");
  EXPECT_EQ(Table::fmtInt(7), "7");
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",     "--procs=64", "--mechanism", "snapshot",
                        "--paper",  "--no-trace", "positional"};
  CliFlags flags(7, argv);
  EXPECT_EQ(flags.getInt("procs", 0), 64);
  EXPECT_EQ(flags.getString("mechanism", ""), "snapshot");
  EXPECT_TRUE(flags.getBool("paper", false));
  EXPECT_FALSE(flags.getBool("trace", true));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, argv);
  EXPECT_EQ(flags.getInt("absent", 7), 7);
  EXPECT_DOUBLE_EQ(flags.getDouble("absent", 2.5), 2.5);
  EXPECT_EQ(flags.getString("absent", "dflt"), "dflt");
  EXPECT_FALSE(flags.has("absent"));
}

TEST(Cli, BadBoolThrows) {
  const char* argv[] = {"prog", "--flag=banana"};
  CliFlags flags(2, argv);
  EXPECT_THROW(flags.getBool("flag", false), ContractViolation);
}

}  // namespace
}  // namespace loadex
