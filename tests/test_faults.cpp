// Fault-injection subsystem tests: network faults, process faults, replay
// determinism, and end-to-end degradation behaviour of the hardened
// protocols (ctest label: faults).
#include <gtest/gtest.h>

#include <vector>

#include "sim_test_utils.h"
#include "sim/network.h"
#include "sim/world.h"
#include "solver/runner.h"
#include "sparse/generators.h"

namespace loadex {
namespace {

using core::MechanismConfig;
using core::MechanismKind;
using sim::Channel;
using sim::FaultPlan;
using sim::LinkBlackout;
using sim::Message;
using sim::NetworkConfig;
using sim::ProcessFaultEvent;
using test::CoreHarness;

// ---- network-level faults --------------------------------------------------

struct NetFixture {
  sim::EventQueue queue;
  sim::Network net;
  std::vector<Message> delivered;

  explicit NetFixture(NetworkConfig cfg, int nprocs = 4)
      : net(queue, cfg, nprocs) {
    for (Rank r = 0; r < nprocs; ++r)
      net.setReceiver(r, [this](const Message& m) { delivered.push_back(m); });
  }

  void send(Rank src, Rank dst, Bytes size, Channel ch = Channel::kState) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.size = size;
    m.channel = ch;
    net.send(std::move(m));
  }
};

// ---- LinkBlackout::matches edge cases -------------------------------------
// The predicate is shared by the simulator and the rt runtime
// (common/faults.h), so its edge semantics must be pinned down once:
// kNoRank wildcards, a half-open [start, end) window, and the zero-width
// degenerate case that matches nothing.

TEST(LinkBlackoutMatches, ExactLinkAndWindow) {
  const LinkBlackout b{1, 2, 1.0, 2.0};
  EXPECT_TRUE(b.matches(1, 2, 1.5));
  EXPECT_FALSE(b.matches(2, 1, 1.5));  // direction matters
  EXPECT_FALSE(b.matches(1, 3, 1.5));
  EXPECT_FALSE(b.matches(0, 2, 1.5));
}

TEST(LinkBlackoutMatches, WindowIsHalfOpen) {
  const LinkBlackout b{1, 2, 1.0, 2.0};
  EXPECT_TRUE(b.matches(1, 2, 1.0));   // start is inclusive
  EXPECT_FALSE(b.matches(1, 2, 2.0));  // end is exclusive
  EXPECT_FALSE(b.matches(1, 2, 0.999999));
  EXPECT_TRUE(b.matches(1, 2, 1.999999));
}

TEST(LinkBlackoutMatches, WildcardsMatchAnyRank) {
  const LinkBlackout any_src{kNoRank, 2, 0.0, 1.0};
  EXPECT_TRUE(any_src.matches(0, 2, 0.5));
  EXPECT_TRUE(any_src.matches(7, 2, 0.5));
  EXPECT_FALSE(any_src.matches(0, 3, 0.5));

  const LinkBlackout any_dst{2, kNoRank, 0.0, 1.0};
  EXPECT_TRUE(any_dst.matches(2, 0, 0.5));
  EXPECT_TRUE(any_dst.matches(2, 7, 0.5));
  EXPECT_FALSE(any_dst.matches(3, 0, 0.5));

  const LinkBlackout total{kNoRank, kNoRank, 0.0, 1.0};
  EXPECT_TRUE(total.matches(0, 1, 0.5));
  EXPECT_TRUE(total.matches(5, 6, 0.0));
  EXPECT_FALSE(total.matches(5, 6, 1.0));  // window still half-open
}

TEST(LinkBlackoutMatches, ZeroWidthWindowMatchesNothing) {
  // [t, t) is empty by the half-open convention — even at t itself.
  const LinkBlackout b{kNoRank, kNoRank, 1.0, 1.0};
  EXPECT_FALSE(b.matches(0, 1, 1.0));
  EXPECT_FALSE(b.matches(0, 1, 1.0 - 1e-12));
  EXPECT_FALSE(b.matches(0, 1, 1.0 + 1e-12));
}

TEST(NetworkFaults, CertainDropLosesEveryMessage) {
  NetworkConfig cfg;
  cfg.faults.drop_prob = 1.0;
  NetFixture f(cfg);
  for (int i = 0; i < 10; ++i) f.send(0, 1, 100);
  f.queue.runUntil();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.net.messagesDropped(), 10);
  // Wire bytes are still counted at the sender: the NIC transmitted them.
  EXPECT_EQ(f.net.bytesSent(),
            10 * (100 + cfg.per_message_overhead_bytes));
}

TEST(NetworkFaults, BlackoutDropsOnlyMatchingWindow) {
  NetworkConfig cfg;
  cfg.faults.blackouts.push_back(LinkBlackout{0, 1, 1.0, 2.0});
  NetFixture f(cfg);
  f.send(0, 1, 8);                                     // t=0: before window
  f.queue.scheduleAt(1.5, [&] { f.send(0, 1, 8); });   // inside: dropped
  f.queue.scheduleAt(1.5, [&] { f.send(0, 2, 8); });   // other link: kept
  f.queue.scheduleAt(2.5, [&] { f.send(0, 1, 8); });   // after window
  f.queue.runUntil();
  EXPECT_EQ(f.delivered.size(), 3u);
  EXPECT_EQ(f.net.messagesDropped(), 1);
}

TEST(NetworkFaults, WildcardBlackoutSilencesARank) {
  NetworkConfig cfg;
  cfg.faults.blackouts.push_back(LinkBlackout{2, kNoRank, 0.0, 10.0});
  NetFixture f(cfg);
  f.send(2, 0, 8);
  f.send(2, 1, 8);
  f.send(1, 0, 8);
  f.queue.runUntil();
  EXPECT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.net.messagesDropped(), 2);
}

TEST(NetworkFaults, CertainDuplicationDeliversTwiceInOrder) {
  NetworkConfig cfg;
  cfg.faults.duplicate_prob = 1.0;
  NetFixture f(cfg);
  f.send(0, 1, 100);
  f.queue.runUntil();
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.net.messagesDuplicated(), 1);
  // The duplicated copy also crossed the wire.
  EXPECT_EQ(f.net.bytesSent(),
            2 * (100 + cfg.per_message_overhead_bytes));
}

TEST(NetworkFaults, LatencySpikeDelaysDelivery) {
  NetworkConfig cfg;
  cfg.latency_s = 1e-3;
  cfg.bandwidth_bytes_per_s = 1e9;
  cfg.per_message_overhead_bytes = 0;
  cfg.faults.latency_spike_prob = 1.0;
  cfg.faults.latency_spike_s = 0.5;

  sim::EventQueue q;
  sim::Network net(q, cfg, 2);
  SimTime arrival = -1.0;
  net.setReceiver(1, [&](const Message&) { arrival = q.now(); });
  net.setReceiver(0, [](const Message&) {});
  Message m;
  m.src = 0;
  m.dst = 1;
  m.size = 0;
  net.send(std::move(m));
  q.runUntil();
  EXPECT_EQ(net.latencySpikes(), 1);
  EXPECT_GE(arrival, 0.5);
}

TEST(NetworkFaults, ChannelScopingSparesTheOtherChannel) {
  NetworkConfig cfg;
  cfg.faults.drop_prob = 1.0;
  cfg.faults.affects_app = false;  // state-only faults
  NetFixture f(cfg);
  f.send(0, 1, 8, Channel::kState);
  f.send(0, 1, 8, Channel::kApp);
  f.queue.runUntil();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].channel, Channel::kApp);
}

// An enabled-but-probability-free plan (a blackout that never matches)
// must not perturb the jitter stream: the fault RNG is a separate stream.
TEST(NetworkFaults, FaultPathDoesNotPerturbJitterDraws) {
  NetworkConfig base;
  base.jitter_s = 1e-4;

  NetworkConfig with_plan = base;
  with_plan.faults.blackouts.push_back(LinkBlackout{0, 1, 1e9, 2e9});
  ASSERT_TRUE(with_plan.faults.enabled());

  auto arrivals = [](NetworkConfig cfg) {
    sim::EventQueue q;
    sim::Network net(q, cfg, 4);
    std::vector<SimTime> times;
    for (Rank r = 0; r < 4; ++r)
      net.setReceiver(r, [&times, &q](const Message&) {
        times.push_back(q.now());
      });
    for (int i = 0; i < 20; ++i) {
      Message m;
      m.src = i % 3;
      m.dst = 3;
      m.size = 64;
      m.channel = Channel::kState;
      net.send(std::move(m));
    }
    q.runUntil();
    return times;
  };
  EXPECT_EQ(arrivals(base), arrivals(with_plan));
}

// ---- process-level faults --------------------------------------------------

TEST(ProcessFaults, CrashLosesQueuedAndLaterMessages) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = 2;
  wcfg.process_faults.push_back(
      {1, 0.5, ProcessFaultEvent::Kind::kCrash});
  CoreHarness h(2, MechanismKind::kNaive, MechanismConfig{}, wcfg);

  // Rank 1 busy until well past the crash; a message sent to it before the
  // crash sits in its queue and dies with it; one sent after is dropped at
  // delivery.
  h.app.pushTask(1, 1e9 * 2.0);  // 2 s of work at the default 1 GF/s
  h.at(0.1, [&] {
    test::sendWork(h.world.process(0), 1, 1e6, {1.0, 0.0}, false);
  });
  h.at(1.0, [&] {
    test::sendWork(h.world.process(0), 1, 1e6, {1.0, 0.0}, false);
  });
  const auto run = h.run();
  EXPECT_EQ(run.crashes, 1);
  EXPECT_EQ(run.messages_lost_at_down_procs, 2);
  EXPECT_TRUE(h.world.process(1).crashed());
  // The crashed process never ran the queued work message's task.
  EXPECT_EQ(h.world.process(1).tasksRun(), 1);
}

TEST(ProcessFaults, PauseStretchesCompletionTime) {
  auto runWith = [](std::vector<ProcessFaultEvent> faults) {
    sim::WorldConfig wcfg;
    wcfg.nprocs = 1;
    wcfg.process_faults = std::move(faults);
    CoreHarness h(1, MechanismKind::kNaive, MechanismConfig{}, wcfg);
    h.app.pushTask(0, 1e9);  // 1 s of work
    return h.run().end_time;
  };
  const SimTime clean = runWith({});
  const SimTime paused =
      runWith({{0, 0.2, ProcessFaultEvent::Kind::kPause},
               {0, 0.7, ProcessFaultEvent::Kind::kResume}});
  EXPECT_NEAR(paused - clean, 0.5, 1e-9);
}

TEST(ProcessFaults, RestartResumesProcessing) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = 2;
  wcfg.process_faults.push_back({1, 0.1, ProcessFaultEvent::Kind::kCrash});
  wcfg.process_faults.push_back(
      {1, 0.5, ProcessFaultEvent::Kind::kRestart});
  CoreHarness h(2, MechanismKind::kNaive, MechanismConfig{}, wcfg);
  // Work delivered after the restart runs normally.
  h.at(0.6, [&] {
    test::sendWork(h.world.process(0), 1, 1e6, {1.0, 0.0}, false);
  });
  const auto run = h.run();
  EXPECT_EQ(run.crashes, 1);
  EXPECT_EQ(run.restarts, 1);
  EXPECT_FALSE(h.world.process(1).crashed());
  EXPECT_EQ(h.world.process(1).tasksRun(), 1);
}

// ---- hardened increment under sustained random loss ------------------------

TEST(HardenedIncrement, ViewsConvergeDespiteLossAndDuplication) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = 4;
  wcfg.network.faults.drop_prob = 0.10;
  wcfg.network.faults.duplicate_prob = 0.05;
  wcfg.network.faults.affects_app = false;

  MechanismConfig mcfg;
  mcfg.threshold = {0.5, 1e18};  // broadcast nearly every change
  mcfg.reliability.reliable_updates = true;

  CoreHarness h(4, MechanismKind::kIncrement, mcfg, wcfg);
  for (int i = 0; i < 50; ++i) {
    const Rank r = i % 4;
    h.at(1e-3 * i, [&h, r] {
      h.mechs.at(r).addLocalLoad({1.0, 0.0});
    });
  }
  const auto run = h.run();
  ASSERT_FALSE(run.hit_limit);
  EXPECT_GT(run.messages_dropped, 0);

  core::MechanismStats total;
  for (Rank r = 0; r < 4; ++r) h.mechs.at(r).stats().mergeInto(total);
  EXPECT_GT(total.retransmissions, 0);

  // No permanent view divergence: every rank's view of every rank matches
  // that rank's actual local load.
  for (Rank viewer = 0; viewer < 4; ++viewer)
    for (Rank subject = 0; subject < 4; ++subject)
      EXPECT_DOUBLE_EQ(
          h.mechs.at(viewer).view().load(subject).workload,
          h.mechs.at(subject).localLoad().workload)
          << "viewer " << viewer << " subject " << subject;
}

TEST(HardenedIncrement, UnhardenedDivergesUnderSameLoss) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = 4;
  wcfg.network.faults.drop_prob = 0.10;
  wcfg.network.faults.affects_app = false;

  MechanismConfig mcfg;
  mcfg.threshold = {0.5, 1e18};

  CoreHarness h(4, MechanismKind::kIncrement, mcfg, wcfg);
  for (int i = 0; i < 50; ++i) {
    const Rank r = i % 4;
    h.at(1e-3 * i, [&h, r] {
      h.mechs.at(r).addLocalLoad({1.0, 0.0});
    });
  }
  const auto run = h.run();
  ASSERT_GT(run.messages_dropped, 0);
  bool diverged = false;
  for (Rank viewer = 0; viewer < 4 && !diverged; ++viewer)
    for (Rank subject = 0; subject < 4; ++subject)
      if (h.mechs.at(viewer).view().load(subject).workload !=
          h.mechs.at(subject).localLoad().workload) {
        diverged = true;
        break;
      }
  EXPECT_TRUE(diverged) << "expected the unhardened protocol to diverge";
}

// ---- replay determinism (satellite: identical seeds, identical runs) -------

sparse::Problem faultsGrid() {
  sparse::Problem p;
  p.name = "grid";
  p.pattern = sparse::grid2d(20, 20);
  p.symmetric = true;
  return p;
}

solver::SolverConfig faultySolverConfig() {
  solver::SolverConfig cfg;
  cfg.nprocs = 8;
  cfg.mechanism = MechanismKind::kIncrement;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  cfg.network.faults.drop_prob = 0.01;
  cfg.network.faults.duplicate_prob = 0.005;
  cfg.network.faults.latency_spike_prob = 0.01;
  cfg.network.faults.latency_spike_s = 1e-4;
  cfg.network.faults.affects_app = false;
  cfg.mech.reliability.reliable_updates = true;
  cfg.app.staleness_limit_s = 0.0;
  cfg.process_faults.push_back(
      {7, 1e-3, ProcessFaultEvent::Kind::kPause});
  cfg.process_faults.push_back(
      {7, 2e-3, ProcessFaultEvent::Kind::kResume});
  return cfg;
}

TEST(ReplayDeterminism, IdenticalSeedsGiveBitIdenticalRuns) {
  const auto problem = faultsGrid();
  const auto cfg = faultySolverConfig();
  const auto a = runProblem(problem, cfg);
  const auto b = runProblem(problem, cfg);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.factor_time, b.factor_time);  // bit-identical, not NEAR
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.state_messages, b.state_messages);
  EXPECT_EQ(a.state_bytes, b.state_bytes);
  EXPECT_EQ(a.app_messages, b.app_messages);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_EQ(a.latency_spikes, b.latency_spikes);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.nacks_sent, b.nacks_sent);
  EXPECT_EQ(a.gaps_detected, b.gaps_detected);
  EXPECT_EQ(a.peak_active_mem, b.peak_active_mem);
  EXPECT_EQ(a.local_fallbacks, b.local_fallbacks);
}

TEST(ReplayDeterminism, DifferentFaultSeedsDiverge) {
  const auto problem = faultsGrid();
  auto cfg = faultySolverConfig();
  const auto a = runProblem(problem, cfg);
  cfg.network.faults.seed ^= 0x1234567;
  const auto b = runProblem(problem, cfg);
  EXPECT_NE(a.messages_dropped, b.messages_dropped);
}

// ---- end-to-end degradation ------------------------------------------------

TEST(SolverDegradation, HardenedIncrementCompletesAtFivePercentLoss) {
  const auto problem = faultsGrid();
  auto cfg = faultySolverConfig();
  cfg.network.faults.drop_prob = 0.05;
  cfg.process_faults.clear();
  const auto res = runProblem(problem, cfg);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.messages_dropped, 0);
  EXPECT_GT(res.retransmissions, 0);
}

TEST(SolverDegradation, SchedulerSkipsDeadRanks) {
  core::LoadView view(4);
  view.set(0, {100.0, 0.0});
  view.set(1, {1.0, 0.0});  // least loaded — but dead
  view.set(2, {50.0, 0.0});
  view.set(3, {60.0, 0.0});
  view.markDead(1);

  solver::SelectionRequest req;
  req.master = 0;
  req.rows = 64;
  req.front = 128;
  req.slave_flops = 1e6;
  req.min_rows_per_slave = 8;
  req.max_slaves = 16;
  const auto sel = solver::WorkloadScheduler{}.select(view, req);
  ASSERT_FALSE(sel.empty());
  for (const auto& a : sel) EXPECT_NE(a.slave, 1);
}

TEST(SolverDegradation, AllCandidatesDeadYieldsEmptySelection) {
  core::LoadView view(3);
  view.markDead(1);
  view.markDead(2);
  solver::SelectionRequest req;
  req.master = 0;
  req.rows = 64;
  req.front = 128;
  req.slave_flops = 1e6;
  const auto sel = solver::WorkloadScheduler{}.select(view, req);
  EXPECT_TRUE(sel.empty());
}

TEST(SolverDegradation, StalenessLimitFiltersSilentRanks) {
  core::LoadView view(3);
  view.set(1, {1.0, 0.0});
  view.set(2, {2.0, 0.0});
  view.touch(1, 10.0);  // heard from recently
  view.touch(2, 1.0);   // silent for 9 s
  solver::SelectionRequest req;
  req.master = 0;
  req.rows = 64;
  req.front = 128;
  req.slave_flops = 1e6;
  req.now = 10.0;
  req.staleness_limit_s = 5.0;
  const auto sel = solver::WorkloadScheduler{}.select(view, req);
  ASSERT_FALSE(sel.empty());
  for (const auto& a : sel) EXPECT_EQ(a.slave, 1);
}

}  // namespace
}  // namespace loadex
