// Unit tests of the pooled event-queue kernel: slab allocator behaviour
// (free-list reuse, chunk growth, generation tags) and the digest /
// ordering contract of logical broadcasts. The scenario-level guarantees
// are covered by test_sim_event_queue.cpp; this file pins down the pool
// mechanics the scale benches rely on.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace loadex::sim {
namespace {

// Reference FNV-1a fold, mirroring the queue's digest definition.
std::uint64_t foldFnv(std::uint64_t digest, std::uint64_t bits) {
  digest ^= bits;
  digest *= 0x100000001b3ULL;
  return digest;
}

std::uint64_t referenceDigest(
    const std::vector<std::pair<SimTime, std::uint64_t>>& fired) {
  std::uint64_t d = 0xcbf29ce484222325ULL;
  for (const auto& [t, seq] : fired) {
    d = foldFnv(d, std::bit_cast<std::uint64_t>(t));
    d = foldFnv(d, seq);
  }
  return d;
}

TEST(EventQueuePool, FifoTieBreakMatchesInsertionOrderAcrossKinds) {
  // Single events and broadcast targets at the same instant interleave by
  // insertion sequence, exactly as if every target were its own event.
  EventQueue q;
  std::vector<int> order;
  q.scheduleAt(1.0, [&] { order.push_back(0); });               // seq 0
  q.scheduleBroadcast({{1.0, 7, 0, 0}, {1.0, 8, 0, 0}},         // seq 1, 2
                      [&](const BroadcastTarget& t) {
                        order.push_back(t.dst);
                      });
  q.scheduleAt(1.0, [&] { order.push_back(3); });               // seq 3
  q.runUntil();
  EXPECT_EQ(order, (std::vector<int>{0, 7, 8, 3}));
}

TEST(EventQueuePool, FreeListReusesSlotsUnderChurn) {
  EventQueue q;
  int fired = 0;
  constexpr int kRounds = 10'000;
  for (int i = 0; i < kRounds; ++i) {
    q.scheduleAt(static_cast<SimTime>(i), [&] { ++fired; });
    ASSERT_TRUE(q.runNext());
  }
  EXPECT_EQ(fired, kRounds);
  const PoolStats& ps = q.poolStats();
  EXPECT_EQ(ps.node_allocations, static_cast<std::uint64_t>(kRounds));
  // Only one event is ever pending: one chunk suffices and every slot
  // after the first comes from the free list.
  EXPECT_EQ(ps.pool_chunks, 1u);
  EXPECT_EQ(ps.free_list_reuses, static_cast<std::uint64_t>(kRounds - 1));
}

TEST(EventQueuePool, CancelChurnReusesSlotsWithoutGrowth) {
  EventQueue q;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 64; ++i)
      ids.push_back(q.scheduleAt(1.0, [] {}));
    for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  }
  EXPECT_TRUE(q.empty());
  // 64 live slots peak -> a single chunk, everything else reused.
  EXPECT_EQ(q.poolStats().pool_chunks, 1u);
  EXPECT_EQ(q.poolStats().free_list_reuses, 100u * 64u - 64u);
}

TEST(EventQueuePool, DigestMatchesReferenceAcrossPoolGrowth) {
  // Schedule enough simultaneous pending events to carve several chunks;
  // the digest must be exactly the FNV-1a fold of the fired (time, seq)
  // stream, independent of slab layout.
  EventQueue q;
  std::vector<std::pair<SimTime, std::uint64_t>> expected;
  constexpr int kEvents = 1500;  // > 5 chunks of 256
  for (int i = 0; i < kEvents; ++i) {
    // Deterministic scatter; fire order is by time then insertion seq.
    const SimTime t = static_cast<SimTime>((i * 7919) % 1000);
    q.scheduleAt(t, [] {});
    expected.emplace_back(t, static_cast<std::uint64_t>(i));
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_GE(q.poolStats().pool_chunks, 5u);
  q.runUntil();
  EXPECT_EQ(q.scheduleDigest(), referenceDigest(expected));
}

TEST(EventQueuePool, DigestUnaffectedBySlotReuse) {
  // Same logical (time, seq) stream, radically different pool histories:
  // one queue holds everything pending at once, the other recycles a
  // single slot. The digest depends only on the fired stream.
  EventQueue all_pending;
  for (int i = 0; i < 300; ++i)
    all_pending.scheduleAt(static_cast<SimTime>(i), [] {});
  all_pending.runUntil();

  EventQueue recycled;
  for (int i = 0; i < 300; ++i) {
    recycled.scheduleAt(static_cast<SimTime>(i), [] {});
    recycled.runNext();
  }

  EXPECT_EQ(all_pending.scheduleDigest(), recycled.scheduleDigest());
  EXPECT_GT(all_pending.poolStats().pool_chunks,
            recycled.poolStats().pool_chunks);
}

TEST(EventQueuePool, BroadcastDigestEqualsIndividualSchedules) {
  constexpr int kFanout = 37;
  EventQueue individual;
  for (int i = 0; i < kFanout; ++i)
    individual.scheduleAt(2.0 + 0.1 * i, [] {});
  individual.runUntil();

  EventQueue broadcast;
  std::vector<BroadcastTarget> targets;
  for (int i = 0; i < kFanout; ++i)
    targets.push_back({2.0 + 0.1 * i, i, 0, 0});
  int fired = 0;
  broadcast.scheduleBroadcast(std::move(targets),
                              [&](const BroadcastTarget&) { ++fired; });
  broadcast.runUntil();

  EXPECT_EQ(fired, kFanout);
  EXPECT_EQ(broadcast.scheduleDigest(), individual.scheduleDigest());
  // The whole fan-out costs one pool node vs one per destination.
  EXPECT_EQ(broadcast.poolStats().node_allocations, 1u);
  EXPECT_EQ(individual.poolStats().node_allocations,
            static_cast<std::uint64_t>(kFanout));
  EXPECT_EQ(broadcast.poolStats().broadcast_deliveries,
            static_cast<std::uint64_t>(kFanout));
}

TEST(EventQueuePool, BroadcastWithUnsortedTimesFiresInTimeOrder) {
  // Per-link jitter can hand the broadcast non-monotone arrival times;
  // deliveries must still fire in global (time, seq) order, interleaved
  // with independent events.
  EventQueue q;
  std::vector<int> order;
  q.scheduleBroadcast({{5.0, 50, 0, 0}, {1.0, 10, 0, 0}, {3.0, 30, 0, 0}},
                      [&](const BroadcastTarget& t) {
                        order.push_back(t.dst);
                        EXPECT_DOUBLE_EQ(q.now(), static_cast<SimTime>(t.dst) / 10.0);
                      });
  q.scheduleAt(2.0, [&] { order.push_back(20); });
  q.scheduleAt(4.0, [&] { order.push_back(40); });
  q.runUntil();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30, 40, 50}));
}

TEST(EventQueuePool, BroadcastCookieRoundTrips) {
  EventQueue q;
  std::vector<std::uint64_t> cookies;
  q.scheduleBroadcast({{1.0, 0, 0xdead, 0}, {2.0, 1, 0xbeef, 0}},
                      [&](const BroadcastTarget& t) {
                        cookies.push_back(t.cookie);
                      });
  q.runUntil();
  EXPECT_EQ(cookies, (std::vector<std::uint64_t>{0xdead, 0xbeef}));
}

TEST(EventQueuePool, DrainWhilePushGrowsPoolUnderRunningHandlers) {
  // Handlers schedule further events while firing — the pool grows and
  // recycles mid-drain. Under ASan this checks node-address stability
  // across reentrant growth.
  EventQueue q;
  int fired = 0;
  constexpr int kGenerations = 6;
  std::function<void(int)> cascade = [&](int depth) {
    ++fired;
    if (depth >= kGenerations) return;
    for (int i = 0; i < 4; ++i)
      q.scheduleAfter(0.5, [&cascade, depth] { cascade(depth + 1); });
  };
  for (int i = 0; i < 100; ++i)
    q.scheduleAt(0.0, [&cascade] { cascade(1); });
  q.runUntil();
  EXPECT_TRUE(q.empty());
  // 100 roots, each a 4-ary cascade of depth 6.
  int expected = 0;
  for (int d = 0, layer = 100; d < kGenerations; ++d, layer *= 4)
    expected += layer;
  EXPECT_EQ(fired, expected);
  EXPECT_GT(q.poolStats().pool_chunks, 1u);
}

TEST(EventQueuePool, BroadcastCallbackMaySchedule) {
  // The fire callback runs while its own node is still live (more targets
  // pending) — scheduling from inside it must not disturb the fan-out.
  EventQueue q;
  std::vector<int> order;
  q.scheduleBroadcast({{1.0, 1, 0, 0}, {2.0, 2, 0, 0}, {3.0, 3, 0, 0}},
                      [&](const BroadcastTarget& t) {
                        order.push_back(t.dst);
                        q.scheduleAfter(0.25, [&order, d = t.dst] {
                          order.push_back(100 + d);
                        });
                      });
  q.runUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 101, 2, 102, 3, 103}));
}

TEST(EventQueuePool, BroadcastsAreNotCancellable) {
  EventQueue q;
  q.scheduleBroadcast({{1.0, 0, 0, 0}}, [](const BroadcastTarget&) {});
  // Broadcasts return no id; forging one against the live slot must fail.
  // Slot 0 gen 1 is the broadcast node.
  const EventId forged = (static_cast<EventId>(1) << 32) | 0;
  EXPECT_FALSE(q.cancel(forged));
  EXPECT_EQ(q.runUntil(), 1u);
}

TEST(EventQueuePool, GenerationTagRejectsStaleIds) {
  EventQueue q;
  const EventId first = q.scheduleAt(1.0, [] {});
  q.runNext();
  // The slot is recycled under a fresh generation; the stale id must not
  // cancel the new occupant.
  const EventId second = q.scheduleAt(2.0, [] {});
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.pendingCount(), 1u);
  EXPECT_TRUE(q.cancel(second));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueuePool, EmptyBroadcastIsANoOp) {
  EventQueue q;
  q.scheduleBroadcast({}, [](const BroadcastTarget&) { FAIL(); });
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.poolStats().broadcasts, 0u);
  EXPECT_EQ(q.poolStats().node_allocations, 0u);
}

TEST(EventQueuePool, PendingCountTracksBroadcastFanout) {
  EventQueue q;
  q.scheduleBroadcast({{1.0, 0, 0, 0}, {2.0, 1, 0, 0}, {3.0, 2, 0, 0}},
                      [](const BroadcastTarget&) {});
  EXPECT_EQ(q.pendingCount(), 3u);
  q.runNext();
  EXPECT_EQ(q.pendingCount(), 2u);
  q.runUntil();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.firedCount(), 3u);
}

}  // namespace
}  // namespace loadex::sim
