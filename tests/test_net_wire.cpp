// Wire-format coverage for the real-socket transport (src/net/wire.h).
//
//  * seeded round-trip property tests for every StateTag: random payloads
//    encode -> frame -> decode back to identical fields, bit-for-bit on
//    the doubles (LE bit-pattern codec, no FP arithmetic in between);
//  * framing robustness: every strict prefix of a valid frame is
//    kNeedMore (a stream cut never desynchronises), corrupt length /
//    version / kind prefixes are kBad (the connection is dropped, not
//    resynchronised by guessing), truncated state bodies decode to
//    failure instead of reading past the buffer;
//  * cross-version stability: tests/golden/wire_v1.bin pins the exact v1
//    byte stream — today's decoder must accept yesterday's bytes, and
//    today's encoder must still produce them. Regenerate deliberately
//    with LOADEX_REGEN_GOLDEN=1 after a schema version bump, never to
//    silence a diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/payloads.h"
#include "net/wire.h"

namespace loadex::net {
namespace {

using core::StateTag;

constexpr StateTag kAllTags[] = {
    StateTag::kUpdateAbsolute, StateTag::kUpdateDelta,
    StateTag::kMasterToAll,    StateTag::kNoMoreMaster,
    StateTag::kStartSnp,       StateTag::kSnp,
    StateTag::kEndSnp,         StateTag::kMasterToSlave,
    StateTag::kNack,           StateTag::kHeartbeat,
};

/// Draw a payload with seeded-random field values for `tag`.
std::shared_ptr<const sim::Payload> drawPayload(StateTag tag, Rng& rng) {
  const auto load = [&rng] {
    return core::LoadMetrics{rng.uniformReal(-100.0, 100.0),
                             rng.uniformReal(0.0, 64.0)};
  };
  switch (tag) {
    case StateTag::kUpdateAbsolute: {
      auto p = std::make_shared<core::UpdateAbsolutePayload>();
      p->load = load();
      return p;
    }
    case StateTag::kUpdateDelta: {
      auto p = std::make_shared<core::UpdateDeltaPayload>();
      p->delta = load();
      p->seq = rng.uniformInt(1u << 20);
      return p;
    }
    case StateTag::kMasterToAll: {
      auto p = std::make_shared<core::MasterToAllPayload>();
      p->seq = rng.uniformInt(1u << 20);
      const auto n = rng.uniformInt(5);  // 0..4 assignments
      for (std::uint64_t i = 0; i < n; ++i)
        p->assignments.push_back(
            {static_cast<Rank>(rng.uniformInt(64)), load()});
      return p;
    }
    case StateTag::kNoMoreMaster:
      return std::make_shared<core::NoMoreMasterPayload>();
    case StateTag::kStartSnp: {
      auto p = std::make_shared<core::StartSnpPayload>();
      p->request = rng.uniformInt(1u << 20);
      return p;
    }
    case StateTag::kSnp: {
      auto p = std::make_shared<core::SnpPayload>();
      p->request = rng.uniformInt(1u << 20);
      p->state = load();
      return p;
    }
    case StateTag::kEndSnp:
      return std::make_shared<core::EndSnpPayload>();
    case StateTag::kMasterToSlave: {
      auto p = std::make_shared<core::MasterToSlavePayload>();
      p->share = load();
      return p;
    }
    case StateTag::kNack: {
      auto p = std::make_shared<core::NackPayload>();
      p->from = rng.uniformInt(1u << 16);
      p->to = p->from + rng.uniformInt(64);
      return p;
    }
    case StateTag::kHeartbeat: {
      auto p = std::make_shared<core::HeartbeatPayload>();
      p->last_seq = rng.uniformInt(1u << 20);
      return p;
    }
  }
  return nullptr;
}

/// Field-exact payload comparison per tag (doubles compare ==: the codec
/// moves bit patterns, never arithmetic).
void expectPayloadEq(StateTag tag, const sim::Payload& a,
                     const sim::Payload& b) {
  using core::payloadCast;
  switch (tag) {
    case StateTag::kUpdateAbsolute: {
      const auto& x = payloadCast<core::UpdateAbsolutePayload>(a);
      const auto& y = payloadCast<core::UpdateAbsolutePayload>(b);
      EXPECT_EQ(x.load.workload, y.load.workload);
      EXPECT_EQ(x.load.memory, y.load.memory);
      return;
    }
    case StateTag::kUpdateDelta: {
      const auto& x = payloadCast<core::UpdateDeltaPayload>(a);
      const auto& y = payloadCast<core::UpdateDeltaPayload>(b);
      EXPECT_EQ(x.delta.workload, y.delta.workload);
      EXPECT_EQ(x.delta.memory, y.delta.memory);
      EXPECT_EQ(x.seq, y.seq);
      return;
    }
    case StateTag::kMasterToAll: {
      const auto& x = payloadCast<core::MasterToAllPayload>(a);
      const auto& y = payloadCast<core::MasterToAllPayload>(b);
      EXPECT_EQ(x.seq, y.seq);
      ASSERT_EQ(x.assignments.size(), y.assignments.size());
      for (std::size_t i = 0; i < x.assignments.size(); ++i) {
        EXPECT_EQ(x.assignments[i].slave, y.assignments[i].slave);
        EXPECT_EQ(x.assignments[i].share.workload,
                  y.assignments[i].share.workload);
        EXPECT_EQ(x.assignments[i].share.memory,
                  y.assignments[i].share.memory);
      }
      return;
    }
    case StateTag::kNoMoreMaster:
    case StateTag::kEndSnp:
      return;  // empty bodies
    case StateTag::kStartSnp:
      EXPECT_EQ(payloadCast<core::StartSnpPayload>(a).request,
                payloadCast<core::StartSnpPayload>(b).request);
      return;
    case StateTag::kSnp: {
      const auto& x = payloadCast<core::SnpPayload>(a);
      const auto& y = payloadCast<core::SnpPayload>(b);
      EXPECT_EQ(x.request, y.request);
      EXPECT_EQ(x.state.workload, y.state.workload);
      EXPECT_EQ(x.state.memory, y.state.memory);
      return;
    }
    case StateTag::kMasterToSlave: {
      const auto& x = payloadCast<core::MasterToSlavePayload>(a);
      const auto& y = payloadCast<core::MasterToSlavePayload>(b);
      EXPECT_EQ(x.share.workload, y.share.workload);
      EXPECT_EQ(x.share.memory, y.share.memory);
      return;
    }
    case StateTag::kNack: {
      const auto& x = payloadCast<core::NackPayload>(a);
      const auto& y = payloadCast<core::NackPayload>(b);
      EXPECT_EQ(x.from, y.from);
      EXPECT_EQ(x.to, y.to);
      return;
    }
    case StateTag::kHeartbeat:
      EXPECT_EQ(payloadCast<core::HeartbeatPayload>(a).last_seq,
                payloadCast<core::HeartbeatPayload>(b).last_seq);
      return;
  }
  FAIL() << "unknown tag";
}

/// Encode one kState frame (header + body) for a payload.
std::vector<std::uint8_t> encodeStateFrame(
    StateTag tag, const sim::Payload& p, std::uint32_t link_seq) {
  std::vector<std::uint8_t> buf;
  FrameBuilder fb(buf, FrameKind::kState, link_seq);
  encodeStateBody(tag, p, fb.writer());
  fb.finish();
  return buf;
}

// ---- round trips ----------------------------------------------------------

TEST(NetWire, EveryStateTagRoundTripsSeededPayloads) {
  Rng rng(0xB17EC0DEu);
  for (const StateTag tag : kAllTags) {
    SCOPED_TRACE(core::stateTagName(tag));
    for (int trial = 0; trial < 64; ++trial) {
      const auto original = drawPayload(tag, rng);
      ASSERT_NE(original, nullptr);
      const std::uint32_t seq = static_cast<std::uint32_t>(trial) + 1;
      const auto buf = encodeStateFrame(tag, *original, seq);

      FrameView f;
      std::size_t consumed = 0;
      ASSERT_EQ(tryDecodeFrame(buf.data(), buf.size(), f, consumed),
                DecodeStatus::kFrame);
      EXPECT_EQ(consumed, buf.size());
      EXPECT_EQ(f.version, kWireVersion);
      EXPECT_EQ(f.kind, FrameKind::kState);
      EXPECT_EQ(f.link_seq, seq);

      WireReader r(f.body, f.body_len);
      StateFrame out;
      ASSERT_TRUE(decodeStateBody(r, out));
      EXPECT_EQ(out.tag, tag);
      // The declared Bytes size is recomputed at the receiver and must
      // match the paper's accounting for the decoded payload.
      EXPECT_EQ(out.size, stateSizeBytes(tag, *original));
      expectPayloadEq(tag, *original, *out.payload);
    }
  }
}

TEST(NetWire, BackToBackFramesDecodeInOrder) {
  Rng rng(0xCAFEu);
  std::vector<std::uint8_t> stream;
  std::vector<StateTag> tags;
  for (int i = 0; i < 20; ++i) {
    const StateTag tag = kAllTags[rng.uniformInt(10)];
    const auto p = drawPayload(tag, rng);
    const auto one =
        encodeStateFrame(tag, *p, static_cast<std::uint32_t>(i) + 1);
    stream.insert(stream.end(), one.begin(), one.end());
    tags.push_back(tag);
  }
  std::size_t pos = 0;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    FrameView f;
    std::size_t consumed = 0;
    ASSERT_EQ(tryDecodeFrame(stream.data() + pos, stream.size() - pos, f,
                             consumed),
              DecodeStatus::kFrame);
    EXPECT_EQ(f.link_seq, static_cast<std::uint32_t>(i) + 1);
    WireReader r(f.body, f.body_len);
    StateFrame out;
    ASSERT_TRUE(decodeStateBody(r, out));
    EXPECT_EQ(out.tag, tags[i]);
    pos += consumed;
  }
  EXPECT_EQ(pos, stream.size());
}

// ---- truncation and garbage ----------------------------------------------

TEST(NetWire, EveryStrictFramePrefixNeedsMoreBytes) {
  Rng rng(0x7235CA7Eu);
  const auto p = drawPayload(StateTag::kSnp, rng);
  const auto buf = encodeStateFrame(StateTag::kSnp, *p, 9);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    FrameView f;
    std::size_t consumed = 0;
    EXPECT_EQ(tryDecodeFrame(buf.data(), cut, f, consumed),
              DecodeStatus::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(NetWire, GarbageLengthPrefixIsRejectedNotBuffered) {
  // A length prefix beyond kMaxFrameBytes must be kBad immediately: a
  // decoder that waits for 4 GiB of body turns one corrupt byte into an
  // unbounded memory demand.
  std::vector<std::uint8_t> buf(16, 0);
  const std::uint32_t absurd = kMaxFrameBytes + 1;
  for (std::size_t i = 0; i < 4; ++i)
    buf[i] = static_cast<std::uint8_t>(absurd >> (8 * i));
  FrameView f;
  std::size_t consumed = 0;
  EXPECT_EQ(tryDecodeFrame(buf.data(), buf.size(), f, consumed),
            DecodeStatus::kBad);

  // A length too short to hold version+kind+seq cannot be any frame.
  std::vector<std::uint8_t> tiny(16, 0);
  tiny[0] = 3;
  EXPECT_EQ(tryDecodeFrame(tiny.data(), tiny.size(), f, consumed),
            DecodeStatus::kBad);
}

TEST(NetWire, WrongVersionAndUnknownKindAreRejected) {
  Rng rng(0xBAD5EEDu);
  const auto p = drawPayload(StateTag::kNack, rng);
  const auto good = encodeStateFrame(StateTag::kNack, *p, 1);

  auto bad_version = good;
  bad_version[4] = kWireVersion + 1;
  FrameView f;
  std::size_t consumed = 0;
  EXPECT_EQ(tryDecodeFrame(bad_version.data(), bad_version.size(), f,
                           consumed),
            DecodeStatus::kBad);

  auto bad_kind = good;
  bad_kind[5] = 0;  // below kHello
  EXPECT_EQ(tryDecodeFrame(bad_kind.data(), bad_kind.size(), f, consumed),
            DecodeStatus::kBad);
  bad_kind[5] = 200;  // above kPing
  EXPECT_EQ(tryDecodeFrame(bad_kind.data(), bad_kind.size(), f, consumed),
            DecodeStatus::kBad);
}

TEST(NetWire, TruncatedStateBodiesFailCleanly) {
  Rng rng(0x0DDB17Eu);
  for (const StateTag tag : kAllTags) {
    SCOPED_TRACE(core::stateTagName(tag));
    const auto p = drawPayload(tag, rng);
    std::vector<std::uint8_t> body;
    WireWriter w(body);
    encodeStateBody(tag, *p, w);
    // Every strict prefix of the body must decode to failure — never to a
    // bogus payload, never past the end of the buffer.
    for (std::size_t cut = 0; cut < body.size(); ++cut) {
      WireReader r(body.data(), cut);
      StateFrame out;
      EXPECT_FALSE(decodeStateBody(r, out)) << "cut at " << cut;
    }
    // Trailing garbage is equally malformed: a state body is exact.
    std::vector<std::uint8_t> padded = body;
    padded.push_back(0x5a);
    WireReader r(padded.data(), padded.size());
    StateFrame out;
    EXPECT_FALSE(decodeStateBody(r, out));
  }
}

TEST(NetWire, CorruptAssignmentCountIsRejected) {
  // A Master_To_All whose count field promises more assignments than the
  // body holds must fail on the count check, not allocate/iterate.
  core::MasterToAllPayload p;
  p.seq = 7;
  p.assignments.push_back({2, {1.0, 2.0}});
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  encodeStateBody(StateTag::kMasterToAll, p, w);
  body[9] = 0xff;  // count lives after [u8 tag][u64 seq]
  WireReader r(body.data(), body.size());
  StateFrame out;
  EXPECT_FALSE(decodeStateBody(r, out));
  EXPECT_FALSE(r.ok());
}

// ---- golden byte stream ---------------------------------------------------

std::string goldenPath() {
  return std::string(LOADEX_SOURCE_DIR) + "/tests/golden/wire_v1.bin";
}

/// The pinned v1 stream: one frame per StateTag with fixed field values,
/// link_seq 1..10. Any byte-level change to the codec shows up as a diff
/// against the checked-in file.
std::vector<std::uint8_t> buildGoldenStream() {
  std::vector<std::uint8_t> stream;
  std::uint32_t seq = 0;
  const auto add = [&stream, &seq](StateTag tag, const sim::Payload& p) {
    const auto one = encodeStateFrame(tag, p, ++seq);
    stream.insert(stream.end(), one.begin(), one.end());
  };

  core::UpdateAbsolutePayload abs;
  abs.load = {12.5, 3.25};
  add(StateTag::kUpdateAbsolute, abs);

  core::UpdateDeltaPayload delta;
  delta.delta = {-4.75, 0.5};
  delta.seq = 42;
  add(StateTag::kUpdateDelta, delta);

  core::MasterToAllPayload mta;
  mta.seq = 43;
  mta.assignments = {{1, {10.0, 1.0}}, {3, {20.0, 2.0}}};
  add(StateTag::kMasterToAll, mta);

  add(StateTag::kNoMoreMaster, core::NoMoreMasterPayload{});

  core::StartSnpPayload start;
  start.request = 7;
  add(StateTag::kStartSnp, start);

  core::SnpPayload snp;
  snp.request = 7;
  snp.state = {99.0, 8.0};
  add(StateTag::kSnp, snp);

  add(StateTag::kEndSnp, core::EndSnpPayload{});

  core::MasterToSlavePayload mts;
  mts.share = {15.0, 0.0};
  add(StateTag::kMasterToSlave, mts);

  core::NackPayload nack;
  nack.from = 5;
  nack.to = 9;
  add(StateTag::kNack, nack);

  core::HeartbeatPayload hb;
  hb.last_seq = 44;
  add(StateTag::kHeartbeat, hb);

  return stream;
}

TEST(NetWireGolden, CheckedInV1StreamStillDecodes) {
  const std::vector<std::uint8_t> expected = buildGoldenStream();

  if (std::getenv("LOADEX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
    out.write(reinterpret_cast<const char*>(expected.data()),
              static_cast<std::streamsize>(expected.size()));
    GTEST_SKIP() << "regenerated " << goldenPath();
  }

  std::ifstream in(goldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << goldenPath()
                         << " (run with LOADEX_REGEN_GOLDEN=1 once)";
  std::vector<std::uint8_t> golden(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  // Encoder stability: today's encoder still produces yesterday's bytes.
  EXPECT_EQ(golden, expected)
      << "wire layout drifted from the checked-in v1 stream; if the change "
         "is deliberate, bump kWireVersion and regenerate";

  // Decoder stability: yesterday's bytes still decode, frame by frame,
  // into the expected tags and link sequence.
  std::size_t pos = 0;
  std::uint32_t seq = 0;
  const StateTag want_order[] = {
      StateTag::kUpdateAbsolute, StateTag::kUpdateDelta,
      StateTag::kMasterToAll,    StateTag::kNoMoreMaster,
      StateTag::kStartSnp,       StateTag::kSnp,
      StateTag::kEndSnp,         StateTag::kMasterToSlave,
      StateTag::kNack,           StateTag::kHeartbeat,
  };
  for (const StateTag want : want_order) {
    FrameView f;
    std::size_t consumed = 0;
    ASSERT_EQ(tryDecodeFrame(golden.data() + pos, golden.size() - pos, f,
                             consumed),
              DecodeStatus::kFrame);
    EXPECT_EQ(f.version, kWireVersion);
    EXPECT_EQ(f.kind, FrameKind::kState);
    EXPECT_EQ(f.link_seq, ++seq);
    WireReader r(f.body, f.body_len);
    StateFrame out;
    ASSERT_TRUE(decodeStateBody(r, out));
    EXPECT_EQ(out.tag, want);
    pos += consumed;
  }
  EXPECT_EQ(pos, golden.size());

  // Spot-check decoded field values against the generator's constants.
  FrameView f;
  std::size_t consumed = 0;
  ASSERT_EQ(tryDecodeFrame(golden.data(), golden.size(), f, consumed),
            DecodeStatus::kFrame);
  WireReader r(f.body, f.body_len);
  StateFrame out;
  ASSERT_TRUE(decodeStateBody(r, out));
  const auto& abs = core::payloadCast<core::UpdateAbsolutePayload>(
      *out.payload);
  EXPECT_EQ(abs.load.workload, 12.5);
  EXPECT_EQ(abs.load.memory, 3.25);
}

}  // namespace
}  // namespace loadex::net
