// Scenario tests reproducing the paper's Figure 1: two masters select
// slaves in close succession while the cheapest process is stuck in a long
// task. The naive mechanism double-books it; the increment and snapshot
// mechanisms see the first reservation.
#include <gtest/gtest.h>

#include <vector>

#include "sim_test_utils.h"

namespace loadex::core {
namespace {

using test::CoreHarness;

/// argmin of workload among ranks != self (ties -> lowest rank).
Rank pickLeastLoaded(const LoadView& v, Rank self) {
  Rank best = kNoRank;
  for (Rank r = 0; r < v.nprocs(); ++r) {
    if (r == self) continue;
    if (best == kNoRank || v.load(r).workload < v.load(best).workload)
      best = r;
  }
  return best;
}

struct Fig1Result {
  std::vector<Rank> chosen;       ///< slave chosen by P0, then by P1
  std::vector<SimTime> decided;   ///< decision times
  double final_p2_load = 0.0;
};

/// Runs the Fig. 1 scenario under the given mechanism:
///   t0: P0 and P1 carry base load 50; P2 carries 10 (the natural victim).
///   t1 = 1.0 : P2 starts a long local task (busy until t = 11).
///   t2 = 2.0 : P0 selects a slave and ships it 100 units of work.
///   t3 = 3.0 : P1 selects a slave likewise.
Fig1Result runFig1(MechanismKind kind) {
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{1.0, 1.0};
  sim::WorldConfig wcfg;
  wcfg.process.flops_per_s = 1e6;
  CoreHarness h(3, kind, cfg, wcfg);
  h.attachAuditor();  // protocol invariants hold on every Fig. 1 run
  Fig1Result result;

  h.at(0.1, [&] {
    h.mechs.at(0).addLocalLoad({50.0, 0.0});
    h.mechs.at(1).addLocalLoad({50.0, 0.0});
    h.mechs.at(2).addLocalLoad({10.0, 0.0});
  });
  h.at(1.0, [&] {
    h.app.pushTask(2, 10e6, {});  // busy until t = 11
    h.world.process(2).notifyReadyWork();
  });
  auto selection = [&](Rank master) {
    auto& m = h.mechs.at(master);
    m.requestView([&, master](const LoadView& v) {
      const Rank slave = pickLeastLoaded(v, master);
      result.chosen.push_back(slave);
      result.decided.push_back(h.world.now());
      m.commitSelection({{slave, LoadMetrics{100.0, 0.0}}});
      test::sendWork(h.world.process(master), slave, /*work=*/100.0,
                     LoadMetrics{100.0, 0.0}, /*is_slave_delegated=*/true);
    });
  };
  // Initiations defer while a snapshot blocks the master — a real process
  // can only take decisions between tasks.
  h.atWhenFree(2.0, 0, [&] { selection(0); });
  h.atWhenFree(3.0, 1, [&] { selection(1); });
  h.run();
  h.finishAudit();
  result.final_p2_load = h.mechs.at(2).localLoad().workload;
  return result;
}

TEST(Fig1, NaiveDoubleBooksTheBusyProcess) {
  const Fig1Result r = runFig1(MechanismKind::kNaive);
  ASSERT_EQ(r.chosen.size(), 2u);
  EXPECT_EQ(r.chosen[0], 2);
  // P1 never learned about P0's choice: P2 is picked twice (Fig. 1).
  EXPECT_EQ(r.chosen[1], 2);
}

TEST(Fig1, IncrementsSeeTheReservation) {
  const Fig1Result r = runFig1(MechanismKind::kIncrement);
  ASSERT_EQ(r.chosen.size(), 2u);
  EXPECT_EQ(r.chosen[0], 2);
  // Master_To_All reached P1 before its decision: P2 now appears loaded
  // with 110 units, so P1 picks P0 (50) instead.
  EXPECT_EQ(r.chosen[1], 0);
}

TEST(Fig1, SnapshotSeesTheReservation) {
  const Fig1Result r = runFig1(MechanismKind::kSnapshot);
  ASSERT_EQ(r.chosen.size(), 2u);
  EXPECT_EQ(r.chosen[0], 2);
  EXPECT_EQ(r.chosen[1], 0);
}

TEST(Fig1, SnapshotDecisionsStallOnTheLongTask) {
  // P2 cannot answer start_snp while computing (a process cannot compute
  // and communicate simultaneously): both snapshot decisions complete only
  // after P2's task ends at t = 11.
  const Fig1Result r = runFig1(MechanismKind::kSnapshot);
  ASSERT_EQ(r.decided.size(), 2u);
  EXPECT_GT(r.decided[0], 11.0);
  EXPECT_GT(r.decided[1], r.decided[0]);
}

TEST(Fig1, MaintainedViewDecisionsAreImmediate) {
  for (const auto kind : {MechanismKind::kNaive, MechanismKind::kIncrement}) {
    const Fig1Result r = runFig1(kind);
    ASSERT_EQ(r.decided.size(), 2u);
    EXPECT_NEAR(r.decided[0], 2.0, 1e-6) << mechanismKindName(kind);
    EXPECT_NEAR(r.decided[1], 3.0, 1e-6) << mechanismKindName(kind);
  }
}

TEST(Fig1, LoadAccountingIsConsistentAtQuiescence) {
  // Whatever the mechanism, the work physically shipped to P2 must end up
  // in P2's local accounting exactly once (no double counting between the
  // reservation message and the task arrival).
  const double naive = runFig1(MechanismKind::kNaive).final_p2_load;
  const double incr = runFig1(MechanismKind::kIncrement).final_p2_load;
  const double snap = runFig1(MechanismKind::kSnapshot).final_p2_load;
  // Naive picked P2 twice: 10 + 2*100; the others picked it once: 10 + 100.
  EXPECT_DOUBLE_EQ(naive, 210.0);
  EXPECT_DOUBLE_EQ(incr, 110.0);
  EXPECT_DOUBLE_EQ(snap, 110.0);
}

TEST(Fig1, MessageEconomyRanking) {
  // The snapshot mechanism needs protocol traffic per decision; the naive
  // and increment mechanisms pay per load variation. In this tiny scenario
  // both maintained mechanisms send only a handful of updates.
  const auto count = [](MechanismKind kind) {
    MechanismConfig cfg;
    cfg.threshold = LoadMetrics{1.0, 1.0};
    sim::WorldConfig wcfg;
    wcfg.process.flops_per_s = 1e6;
    CoreHarness h(3, kind, cfg, wcfg);
    h.at(0.1, [&] { h.mechs.at(0).addLocalLoad({50.0, 0.0}); });
    h.at(2.0, [&] {
      h.mechs.at(1).requestView([&](const LoadView&) {
        h.mechs.at(1).commitSelection({{0, LoadMetrics{10.0, 0.0}}});
      });
    });
    h.run();
    return h.mechs.aggregateStats().messagesSent();
  };
  // snapshot: 2 start + 2 snp + 2 end + 1 master_to_slave = 7
  // increments: 2 updates + 2 master_to_all = 4 ; naive: 2 updates = 2.
  EXPECT_EQ(count(MechanismKind::kNaive), 2);
  EXPECT_EQ(count(MechanismKind::kIncrement), 4);
  EXPECT_EQ(count(MechanismKind::kSnapshot), 7);
}

}  // namespace
}  // namespace loadex::core
