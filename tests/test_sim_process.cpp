#include "sim/process.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "sim/world.h"

namespace loadex::sim {
namespace {

struct RecordingHandler : StateHandler {
  std::vector<std::pair<SimTime, int>> seen;  // (time, tag)
  bool block = false;
  EventQueue* q = nullptr;

  void onStateMessage(const Message& m) override {
    seen.emplace_back(q->now(), m.tag);
    if (m.tag == 999) block = false;  // an "end_snp"-like unblock message
  }
  bool blocksComputation() const override { return block; }
};

struct QueueApp : Application {
  std::deque<ComputeTask> tasks;
  std::vector<std::pair<SimTime, int>> app_msgs;
  EventQueue* q = nullptr;

  void onAppMessage(Process&, const Message& m) override {
    app_msgs.emplace_back(q->now(), m.tag);
  }
  std::optional<ComputeTask> nextTask(Process&) override {
    if (tasks.empty()) return std::nullopt;
    auto t = std::move(tasks.front());
    tasks.pop_front();
    return t;
  }
};

struct Fixture {
  WorldConfig cfg;
  World world;
  RecordingHandler handler;
  QueueApp app;

  explicit Fixture(ProcessConfig pc = {}, int nprocs = 2)
      : cfg([&] {
          WorldConfig c;
          c.nprocs = nprocs;
          c.process = pc;
          c.network.latency_s = 0.0;
          c.network.per_message_overhead_bytes = 0;
          return c;
        }()),
        world(cfg) {
    handler.q = &world.queue();
    app.q = &world.queue();
    world.attach(0, &app, &handler);
  }

  /// Send a message from rank 1 to rank 0 at time t.
  void sendAt(SimTime t, Channel ch, int tag) {
    world.queue().scheduleAt(t, [this, ch, tag] {
      world.process(1).send(0, ch, tag, 8, nullptr);
    });
  }
};

ProcessConfig fastHandling() {
  ProcessConfig pc;
  pc.flops_per_s = 1e6;  // 1 flop = 1 microsecond
  pc.state_msg_handle_s = 0.0;
  pc.app_msg_handle_s = 0.0;
  return pc;
}

TEST(Process, StateMessagesHavePriority) {
  Fixture f(fastHandling());
  // Both messages arrive while a task is running, so both are queued when
  // the pump drains: the state message must be treated first even though
  // the app message arrived earlier (Algorithm 1 lines 2-5).
  f.app.tasks.push_back(ComputeTask{2e6, "busy", {}});  // runs [0, 2]
  f.sendAt(1.0, Channel::kApp, 7);
  f.sendAt(1.1, Channel::kState, 3);
  f.world.run();
  ASSERT_EQ(f.handler.seen.size(), 1u);
  ASSERT_EQ(f.app.app_msgs.size(), 1u);
  EXPECT_NEAR(f.handler.seen[0].first, 2.0, 1e-6);
  EXPECT_LE(f.handler.seen[0].first, f.app.app_msgs[0].first);
}

TEST(Process, NoMessageTreatmentWhileComputing) {
  Fixture f(fastHandling());
  f.app.tasks.push_back(ComputeTask{5e6, "long", {}});  // runs [0, 5] seconds
  f.sendAt(1.0, Channel::kState, 42);
  const auto result = f.world.run();
  ASSERT_EQ(f.handler.seen.size(), 1u);
  // Treated only when the task finished, not on arrival.
  EXPECT_NEAR(f.handler.seen[0].first, 5.0, 1e-9);
  EXPECT_GE(result.end_time, 5.0);
}

TEST(Process, CommThreadTreatsDuringCompute) {
  ProcessConfig pc = fastHandling();
  pc.comm_thread = true;
  pc.poll_period_s = 0.01;
  Fixture f(pc);
  f.app.tasks.push_back(ComputeTask{5e6, "long", {}});
  f.sendAt(1.0, Channel::kState, 42);
  f.world.run();
  ASSERT_EQ(f.handler.seen.size(), 1u);
  // Treated at the next poll tick after arrival, within one period.
  EXPECT_GE(f.handler.seen[0].first, 1.0);
  EXPECT_LE(f.handler.seen[0].first, 1.0 + 2 * pc.poll_period_s);
}

TEST(Process, PausedTaskStillCompletesFullWork) {
  ProcessConfig pc = fastHandling();
  pc.comm_thread = true;
  pc.poll_period_s = 0.01;
  Fixture f(pc);
  SimTime done_at = -1;
  f.app.tasks.push_back(
      ComputeTask{5e6, "long", [&](Process& p) { done_at = p.now(); }});
  f.sendAt(1.0, Channel::kState, 42);
  f.world.run();
  // The pause is effectively zero-cost here (handling cost 0), so the task
  // should still end at ~5 s and the full busy time must be accounted.
  EXPECT_NEAR(done_at, 5.0, 0.05);
  EXPECT_NEAR(f.world.process(0).busyTime(), 5.0, 1e-6);
}

TEST(Process, BlockedHandlerFreezesComputeUntilUnblocked) {
  Fixture f(fastHandling());
  f.handler.block = true;
  f.app.tasks.push_back(ComputeTask{1e6, "t", {}});
  f.sendAt(2.0, Channel::kState, 999);  // unblocks
  f.world.run();
  // Task ran only after the unblock message: ends at 2.0 + 1.0.
  EXPECT_NEAR(f.world.process(0).busyTime(), 1.0, 1e-6);
  EXPECT_NEAR(f.world.now(), 3.0, 1e-6);
  EXPECT_EQ(f.world.process(0).tasksRun(), 1);
}

TEST(Process, BlockedCommThreadPausesMidTask) {
  ProcessConfig pc = fastHandling();
  pc.comm_thread = true;
  pc.poll_period_s = 0.01;
  Fixture f(pc);
  f.app.tasks.push_back(ComputeTask{5e6, "long", {}});
  // Block at t=1 via a message whose handler sets block (simulate by
  // pre-setting block inside a scheduled action, then unblock at t=3).
  f.world.queue().scheduleAt(1.0, [&] { f.handler.block = true; });
  f.sendAt(3.0, Channel::kState, 999);
  f.world.run();
  // 5 s of work + ~2 s frozen: completion near 7 s.
  EXPECT_NEAR(f.world.now(), 7.0, 0.05);
  EXPECT_NEAR(f.world.process(0).pausedTime(), 2.0, 0.05);
}

TEST(Process, AppMessagesDeferredWhileBlocked) {
  Fixture f(fastHandling());
  f.handler.block = true;
  f.sendAt(1.0, Channel::kApp, 5);
  f.sendAt(2.0, Channel::kState, 999);  // unblock
  f.world.run();
  ASSERT_EQ(f.app.app_msgs.size(), 1u);
  EXPECT_NEAR(f.app.app_msgs[0].first, 2.0, 1e-6);
}

TEST(Process, HandlingCostSerializesMessages) {
  ProcessConfig pc = fastHandling();
  pc.state_msg_handle_s = 0.5;
  Fixture f(pc);
  f.sendAt(1.0, Channel::kState, 1);
  f.sendAt(1.0, Channel::kState, 2);
  f.sendAt(1.0, Channel::kState, 3);
  f.world.run();
  ASSERT_EQ(f.handler.seen.size(), 3u);
  EXPECT_NEAR(f.handler.seen[1].first - f.handler.seen[0].first, 0.5, 1e-9);
  EXPECT_NEAR(f.handler.seen[2].first - f.handler.seen[1].first, 0.5, 1e-9);
  EXPECT_NEAR(f.world.process(0).msgHandleTime(), 1.5, 1e-9);
}

TEST(Process, TasksRunBackToBack) {
  Fixture f(fastHandling());
  std::vector<SimTime> ends;
  for (int i = 0; i < 3; ++i)
    f.app.tasks.push_back(
        ComputeTask{1e6, "t", [&](Process& p) { ends.push_back(p.now()); }});
  f.world.run();
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_NEAR(ends[0], 1.0, 1e-9);
  EXPECT_NEAR(ends[1], 2.0, 1e-9);
  EXPECT_NEAR(ends[2], 3.0, 1e-9);
  EXPECT_EQ(f.world.process(0).tasksRun(), 3);
  EXPECT_TRUE(f.world.quiescent());
}

TEST(Process, CompletionCallbackCanEnqueueMoreWork) {
  Fixture f(fastHandling());
  int chained = 0;
  f.app.tasks.push_back(ComputeTask{1e6, "first", [&](Process& p) {
    ++chained;
    f.app.tasks.push_back(ComputeTask{1e6, "second", [&](Process& p2) {
      ++chained;
      (void)p2;
    }});
    (void)p;
  }});
  f.world.run();
  EXPECT_EQ(chained, 2);
  EXPECT_NEAR(f.world.now(), 2.0, 1e-9);
}

TEST(Process, ZeroWorkTaskCompletesImmediately) {
  Fixture f(fastHandling());
  SimTime done = -1;
  f.app.tasks.push_back(ComputeTask{0.0, "empty", [&](Process& p) {
    done = p.now();
  }});
  f.world.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

}  // namespace
}  // namespace loadex::sim
