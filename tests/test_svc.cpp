// loadex_svc: arrival generator determinism and moments, dispatch policy
// units, the shared replay ordering, and end-to-end conservation of the
// open-loop service workload in both runtimes (including sim-vs-rt
// agreement on the injected arrival stream).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "harness/replay.h"
#include "harness/script.h"
#include "svc/arrivals.h"
#include "svc/ledger.h"
#include "svc/policy.h"
#include "svc/rt_driver.h"
#include "svc/service_app.h"

namespace loadex::svc {
namespace {

ArrivalConfig smallArrivals(int n, double rate_hz) {
  ArrivalConfig cfg;
  cfg.n_requests = n;
  cfg.rate_hz = rate_hz;
  return cfg;
}

core::MechanismConfig svcMech() {
  core::MechanismConfig m;
  // Half the mean request size: most completions cross the threshold, so
  // the maintained-view mechanisms actually maintain.
  m.threshold = {5e5, 1e18};
  return m;
}

// ---- arrival generator ----------------------------------------------------

TEST(Arrivals, RegenerationIsDeterministic) {
  const ArrivalConfig cfg = smallArrivals(500, 1000.0);
  const ArrivalScript a = generateArrivals(cfg);
  const ArrivalScript b = generateArrivals(cfg);
  ASSERT_EQ(a.arrivals.size(), 500u);
  EXPECT_EQ(a.digest(), b.digest());

  SimTime prev = 0.0;
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].id, static_cast<std::int64_t>(i));
    EXPECT_GE(a.arrivals[i].time, prev);
    EXPECT_GT(a.arrivals[i].work, 0.0);
    prev = a.arrivals[i].time;
  }

  ArrivalConfig other = cfg;
  other.seed ^= 1;
  EXPECT_NE(generateArrivals(other).digest(), a.digest());
}

TEST(Arrivals, PoissonMomentsAreSane) {
  const ArrivalScript s = generateArrivals(smallArrivals(20000, 1000.0));
  double sum = 0.0, sum2 = 0.0;
  SimTime prev = 0.0;
  for (const Arrival& a : s.arrivals) {
    const double gap = a.time - prev;
    prev = a.time;
    sum += gap;
    sum2 += gap * gap;
  }
  const double n = static_cast<double>(s.arrivals.size());
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  // Exponential gaps: mean 1/rate, cv^2 = 1.
  EXPECT_NEAR(mean, 1e-3, 0.05e-3);
  EXPECT_NEAR(var / (mean * mean), 1.0, 0.15);
}

TEST(Arrivals, BurstyPhasesAreDeterministicAndModulated) {
  ArrivalConfig cfg = smallArrivals(5000, 1000.0);
  cfg.phases = {{5000.0, 5e-3}, {500.0, 20e-3}};
  const ArrivalScript a = generateArrivals(cfg);
  EXPECT_EQ(a.digest(), generateArrivals(cfg).digest());
  EXPECT_NE(a.digest(), generateArrivals(smallArrivals(5000, 1000.0)).digest());

  // Dwell-weighted mean: (5000*5ms + 500*20ms) / 25ms = 1400/s.
  EXPECT_NEAR(meanArrivalRate(cfg), 1400.0, 1e-9);
  const double observed =
      static_cast<double>(a.arrivals.size()) / a.arrivals.back().time;
  EXPECT_GT(observed, 500.0);
  EXPECT_LT(observed, 5000.0);
}

TEST(Arrivals, WorkStreamIsIndependentOfPhases) {
  // The clock and the request bodies are separate RNG streams: changing
  // the phase structure must not perturb the work sequence.
  ArrivalConfig plain = smallArrivals(1000, 1000.0);
  ArrivalConfig bursty = plain;
  bursty.phases = {{4000.0, 2e-3}, {250.0, 8e-3}};
  const ArrivalScript a = generateArrivals(plain);
  const ArrivalScript b = generateArrivals(bursty);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i)
    EXPECT_DOUBLE_EQ(a.arrivals[i].work, b.arrivals[i].work) << "i=" << i;
}

// ---- dispatch policies ----------------------------------------------------

std::vector<ServerStat> boardOf(const std::vector<double>& work,
                                const std::vector<bool>& alive) {
  std::vector<ServerStat> b(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    b[i].outstanding_work = work[i];
    b[i].alive = alive[i];
  }
  return b;
}

DispatchContext ctxOf(const std::vector<ServerStat>& board, SimTime now) {
  DispatchContext ctx;
  ctx.servers = &board;
  ctx.self = 0;
  ctx.now = now;
  return ctx;
}

TEST(Policies, RoundRobinCyclesAndSkipsDead) {
  auto policy = makePolicy(PolicyKind::kRoundRobin, 0.0);
  Rng rng(1);
  auto board = boardOf({0, 0, 0, 0}, {false, true, true, true});
  const DispatchContext ctx = ctxOf(board, 0.0);
  EXPECT_EQ(policy->choose(ctx, rng), 1);
  EXPECT_EQ(policy->choose(ctx, rng), 2);
  EXPECT_EQ(policy->choose(ctx, rng), 3);
  EXPECT_EQ(policy->choose(ctx, rng), 1);
  board[2].alive = false;
  EXPECT_EQ(policy->choose(ctx, rng), 3);
  EXPECT_EQ(policy->choose(ctx, rng), 1);
  board[1].alive = false;
  board[3].alive = false;
  EXPECT_EQ(policy->choose(ctx, rng), kNoRank);
}

TEST(Policies, RandomPicksEveryEligibleServerOnly) {
  auto policy = makePolicy(PolicyKind::kRandom, 0.0);
  Rng rng(7);
  const auto board = boardOf({0, 0, 0, 0}, {false, true, false, true});
  const DispatchContext ctx = ctxOf(board, 0.0);
  bool saw1 = false, saw3 = false;
  for (int i = 0; i < 200; ++i) {
    const Rank r = policy->choose(ctx, rng);
    ASSERT_TRUE(r == 1 || r == 3) << "picked ineligible rank " << r;
    saw1 = saw1 || r == 1;
    saw3 = saw3 || r == 3;
  }
  EXPECT_TRUE(saw1 && saw3);
}

TEST(Policies, ShortestQueuePicksLeastOutstandingAlive) {
  auto policy = makePolicy(PolicyKind::kShortestQueue, 0.0);
  Rng rng(1);
  auto board = boardOf({0, 9, 2, 5}, {false, true, true, true});
  EXPECT_EQ(policy->choose(ctxOf(board, 0.0), rng), 2);
  board[2].alive = false;
  EXPECT_EQ(policy->choose(ctxOf(board, 0.0), rng), 3);
  // Ties break to the lowest rank.
  board = boardOf({0, 4, 4, 4}, {false, true, true, true});
  EXPECT_EQ(policy->choose(ctxOf(board, 0.0), rng), 1);
}

TEST(Policies, StaleShortestQueueActsOnTheOldBoard) {
  auto policy = makePolicy(PolicyKind::kStaleShortestQueue, 1.0);
  Rng rng(1);
  auto board = boardOf({0, 1, 5, 5}, {false, true, true, true});
  EXPECT_EQ(policy->choose(ctxOf(board, 0.0), rng), 1);
  EXPECT_DOUBLE_EQ(policy->lastInfoAge(), 0.0);

  // Rank 1 is now the worst choice, but the snapshot has not expired —
  // the stale policy keeps picking it and reports the growing age.
  board[1].outstanding_work = 100.0;
  EXPECT_EQ(policy->choose(ctxOf(board, 0.5), rng), 1);
  EXPECT_DOUBLE_EQ(policy->lastInfoAge(), 0.5);

  // Past the refresh period the board is re-read.
  EXPECT_EQ(policy->choose(ctxOf(board, 1.5), rng), 2);
  EXPECT_DOUBLE_EQ(policy->lastInfoAge(), 0.0);
}

TEST(Policies, KindNamesRoundTripAndClassify) {
  for (const PolicyKind k : allPolicyKinds())
    EXPECT_EQ(parsePolicyKind(policyKindName(k)), k);
  EXPECT_EQ(allPolicyKinds().size(), 7u);
  EXPECT_FALSE(policyUsesMechanism(PolicyKind::kShortestQueue));
  EXPECT_TRUE(policyUsesMechanism(PolicyKind::kSnapshot));
  EXPECT_EQ(mechanismKindOf(PolicyKind::kIncrement),
            core::MechanismKind::kIncrement);
  EXPECT_EQ(makePolicy(PolicyKind::kNaive, 0.0), nullptr);
}

// ---- shared replay ordering -----------------------------------------------

TEST(Replay, OrderedScriptOpsSortByTimeWithDeclarationTieBreak) {
  harness::Script s;
  s.nprocs = 4;
  s.loads.push_back({2.0, 1, {1.0, 0.0}});   // declaration order 0
  s.loads.push_back({1.0, 2, {1.0, 0.0}});   // order 1
  s.selections.push_back({1.0, 0, 5.0});     // order 2
  s.no_more_master = 3;
  s.no_more_master_at = 1.0;                 // order 3
  const auto ops = harness::orderedScriptOps(s);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].what, harness::ScriptOpRef::What::kLoad);
  EXPECT_EQ(ops[0].index, 1u);  // the t=1 load beats same-time later decls
  EXPECT_EQ(ops[1].what, harness::ScriptOpRef::What::kSelect);
  EXPECT_EQ(ops[2].what, harness::ScriptOpRef::What::kNoMoreMaster);
  EXPECT_EQ(ops[3].what, harness::ScriptOpRef::What::kLoad);
  EXPECT_EQ(ops[3].index, 0u);
}

// ---- sim end-to-end -------------------------------------------------------

class SvcSimSweep : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SvcSimSweep, CleanRunConservesAndIsDeterministic) {
  const ArrivalScript script = generateArrivals(smallArrivals(300, 1500.0));
  SvcSimConfig cfg;
  cfg.nprocs = 4;
  cfg.policy = GetParam();
  cfg.mech = svcMech();
  cfg.speed_factors = {1.0, 1.0, 0.5, 2.0};  // heterogeneous servers

  const SvcSimResult a = runSvcSim(cfg, script);
  EXPECT_EQ(a.totals.arrived, 300);
  EXPECT_EQ(a.totals.completed, 300);
  EXPECT_EQ(a.totals.dropped(), 0);
  EXPECT_EQ(a.arrivals_digest, script.digest());
  EXPECT_EQ(a.sojourn.count(), 300);
  EXPECT_GT(a.sojourn.mean(), 0.0);
  if (policyUsesMechanism(cfg.policy)) {
    EXPECT_GT(a.mech_stats.messagesSent(), 0);
  }

  const SvcSimResult b = runSvcSim(cfg, script);
  EXPECT_EQ(b.run.schedule_digest, a.run.schedule_digest);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SvcSimSweep,
                         ::testing::ValuesIn(allPolicyKinds()),
                         [](const auto& info) {
                           return std::string(policyKindName(info.param));
                         });

TEST(SvcSimFaults, ServerCrashDropsWithCauseButConserves) {
  const ArrivalScript script = generateArrivals(smallArrivals(400, 1500.0));
  for (const PolicyKind p :
       {PolicyKind::kShortestQueue, PolicyKind::kIncrement}) {
    SCOPED_TRACE(policyKindName(p));
    SvcSimConfig cfg;
    cfg.nprocs = 4;
    cfg.policy = p;
    cfg.mech = svcMech();
    cfg.audit = svcAuditorConfig(/*faulty=*/true);
    using Kind = loadex::ProcessFaultEvent::Kind;
    cfg.process_faults.push_back({3, 0.05, Kind::kCrash});
    cfg.process_faults.push_back({3, 0.12, Kind::kRestart});

    const SvcSimResult r = runSvcSim(cfg, script);
    EXPECT_EQ(r.run.crashes, 1);
    EXPECT_EQ(r.run.restarts, 1);
    EXPECT_EQ(r.totals.arrived, 400);
    EXPECT_EQ(r.totals.arrived, r.totals.completed + r.totals.dropped());
    EXPECT_GT(r.totals.dropped(), 0) << "a mid-traffic crash must cost";
    EXPECT_LT(r.totals.dropped(), 400);
  }
}

// ---- rt end-to-end --------------------------------------------------------

class SvcRtSweep : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SvcRtSweep, RtAgreesWithSimOnTheInjectedStream) {
  const ArrivalScript script = generateArrivals(smallArrivals(200, 2000.0));
  SvcSimConfig scfg;
  scfg.nprocs = 4;
  scfg.policy = GetParam();
  scfg.mech = svcMech();
  const SvcSimResult sim = runSvcSim(scfg, script);

  SvcRtConfig rcfg;
  rcfg.nprocs = 4;
  rcfg.policy = GetParam();
  rcfg.mech = svcMech();
  const SvcRtResult rt = runSvcRt(rcfg, script);

  EXPECT_TRUE(rt.drained);
  // Same script, same fold: the two runtimes injected the same stream.
  EXPECT_EQ(rt.arrivals_digest, sim.arrivals_digest);
  EXPECT_EQ(rt.arrivals_digest, script.digest());
  EXPECT_EQ(rt.totals.arrived, 200);
  EXPECT_EQ(rt.totals.completed, 200);
  EXPECT_EQ(rt.totals.dropped(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SvcRtSweep,
                         ::testing::ValuesIn(allPolicyKinds()),
                         [](const auto& info) {
                           return std::string(policyKindName(info.param));
                         });

TEST(SvcRtFaults, ChoreographedCrashRestartConserves) {
  const ArrivalScript script = generateArrivals(smallArrivals(400, 4000.0));
  SvcRtConfig cfg;
  cfg.nprocs = 4;
  cfg.policy = PolicyKind::kIncrement;
  cfg.mech = svcMech();
  cfg.audit = svcAuditorConfig(/*faulty=*/true);
  cfg.rt.faults.manual_control = true;
  cfg.rt.faults.suspicion.enabled = true;
  cfg.rt.faults.suspicion.suspect_after_s = 20e-3;
  cfg.rt.faults.suspicion.dead_after_s = 60e-3;
  cfg.crash_rank = 3;
  cfg.crash_at_frac = 0.3;
  cfg.restart_at_frac = 0.5;
  cfg.down_wait_s = 0.15;

  const SvcRtResult r = runSvcRt(cfg, script);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.rt_stats.crashes, 1);
  EXPECT_EQ(r.rt_stats.restarts, 1);
  EXPECT_EQ(r.totals.arrived, 400);
  EXPECT_EQ(r.totals.arrived, r.totals.completed + r.totals.dropped());
  EXPECT_GT(r.totals.completed, 0);
}

}  // namespace
}  // namespace loadex::svc
