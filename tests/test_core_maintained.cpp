// Unit and property tests for the maintained-view mechanisms:
// NaiveMechanism (Algorithm 2) and IncrementMechanism (Algorithm 3).
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/increment.h"
#include "core/naive.h"
#include "sim_test_utils.h"

namespace loadex::core {
namespace {

using test::CoreHarness;

MechanismConfig tinyThreshold() {
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{0.0, 0.0};  // broadcast any nonzero change
  return cfg;
}

TEST(Naive, BroadcastConvergesViews) {
  CoreHarness h(4, MechanismKind::kNaive, tinyThreshold());
  h.at(0.5, [&] { h.mechs.at(2).addLocalLoad({100.0, 7.0}); });
  h.run();
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(h.mechs.at(r).view().load(2).workload, 100.0) << r;
    EXPECT_DOUBLE_EQ(h.mechs.at(r).view().load(2).memory, 7.0) << r;
  }
}

TEST(Naive, ThresholdSuppressesSmallChanges) {
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{50.0, 50.0};
  CoreHarness h(3, MechanismKind::kNaive, cfg);
  h.at(0.5, [&] { h.mechs.at(0).addLocalLoad({10.0, 0.0}); });
  h.run();
  EXPECT_EQ(h.mechs.at(0).stats().messagesSent(), 0);
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).workload, 0.0);
  // Local view always tracks the true local load.
  EXPECT_DOUBLE_EQ(h.mechs.at(0).view().load(0).workload, 10.0);
}

TEST(Naive, ThresholdTripsOnAccumulatedDrift) {
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{50.0, 50.0};
  CoreHarness h(3, MechanismKind::kNaive, cfg);
  h.at(0.5, [&] { h.mechs.at(0).addLocalLoad({30.0, 0.0}); });
  h.at(0.6, [&] { h.mechs.at(0).addLocalLoad({30.0, 0.0}); });  // drift 60 > 50
  h.run();
  // One broadcast to each of the 2 peers, carrying the absolute value 60.
  EXPECT_EQ(h.mechs.at(0).stats().sent_by_tag.get("update_abs"), 2);
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).workload, 60.0);
}

TEST(Naive, MemoryMetricAloneCanTrip) {
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{1e9, 5.0};
  CoreHarness h(2, MechanismKind::kNaive, cfg);
  h.at(0.5, [&] { h.mechs.at(0).addLocalLoad({1.0, 10.0}); });
  h.run();
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).memory, 10.0);
}

TEST(Naive, CommitSelectionPublishesNothing) {
  CoreHarness h(3, MechanismKind::kNaive, tinyThreshold());
  h.at(0.5, [&] {
    auto& m = h.mechs.at(0);
    m.requestView([&](const LoadView&) {});
    m.commitSelection({{1, LoadMetrics{500.0, 0.0}}});
  });
  h.run();
  // No reservation traffic: peer 2 still sees p1 at zero (Fig. 1's hole).
  EXPECT_DOUBLE_EQ(h.mechs.at(2).view().load(1).workload, 0.0);
  EXPECT_EQ(h.mechs.at(0).stats().messagesSent(), 0);
}

TEST(Increment, DeltaBroadcastAccumulates) {
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{50.0, 50.0};
  CoreHarness h(3, MechanismKind::kIncrement, cfg);
  h.at(0.5, [&] { h.mechs.at(0).addLocalLoad({30.0, 1.0}); });
  h.at(0.6, [&] { h.mechs.at(0).addLocalLoad({40.0, 1.0}); });
  h.run();
  EXPECT_EQ(h.mechs.at(0).stats().sent_by_tag.get("update_delta"), 2);
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).workload, 70.0);
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).memory, 2.0);
  EXPECT_TRUE(
      static_cast<IncrementMechanism&>(h.mechs.at(0)).pendingDelta().isZero());
}

TEST(Increment, NegativeDeltasPropagate) {
  CoreHarness h(2, MechanismKind::kIncrement, tinyThreshold());
  h.at(0.5, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.at(0.6, [&] { h.mechs.at(0).addLocalLoad({-40.0, 0.0}); });
  h.run();
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).workload, 60.0);
}

TEST(Increment, SlaveDelegatedPositiveDeltaIsSkipped) {
  CoreHarness h(2, MechanismKind::kIncrement, tinyThreshold());
  h.at(0.5, [&] {
    // Algorithm 3 line (1): delegated positive load must not be
    // self-reported — the Master_To_All already carried it.
    h.mechs.at(0).addLocalLoad({100.0, 5.0}, /*is_slave_delegated=*/true);
  });
  h.run();
  EXPECT_EQ(h.mechs.at(0).stats().messagesSent(), 0);
  EXPECT_DOUBLE_EQ(h.mechs.at(0).localLoad().workload, 0.0);
}

TEST(Increment, SlaveDelegatedNegativeDeltaPropagates) {
  CoreHarness h(2, MechanismKind::kIncrement, tinyThreshold());
  h.at(0.5, [&] {
    h.mechs.at(0).addLocalLoad({-100.0, -5.0}, /*is_slave_delegated=*/true);
  });
  h.run();
  EXPECT_DOUBLE_EQ(h.mechs.at(0).localLoad().workload, -100.0);
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).workload, -100.0);
}

TEST(Increment, MasterToAllReachesEveryoneIncludingSlave) {
  CoreHarness h(4, MechanismKind::kIncrement, tinyThreshold());
  h.at(0.5, [&] {
    auto& m = h.mechs.at(0);
    m.requestView([](const LoadView&) {});
    m.commitSelection(
        {{1, LoadMetrics{500.0, 10.0}}, {2, LoadMetrics{300.0, 6.0}}});
  });
  h.run();
  // Observer p3 sees both reservations.
  EXPECT_DOUBLE_EQ(h.mechs.at(3).view().load(1).workload, 500.0);
  EXPECT_DOUBLE_EQ(h.mechs.at(3).view().load(2).workload, 300.0);
  // The slaves' own local loads were bumped on reception (line 21).
  EXPECT_DOUBLE_EQ(h.mechs.at(1).localLoad().workload, 500.0);
  EXPECT_DOUBLE_EQ(h.mechs.at(2).localLoad().memory, 6.0);
  // The master's own view includes its decision without a round-trip.
  EXPECT_DOUBLE_EQ(h.mechs.at(0).view().load(1).workload, 500.0);
}

TEST(Increment, ConsecutiveSelectionsSeeEachOther) {
  CoreHarness h(3, MechanismKind::kIncrement, tinyThreshold());
  LoadMetrics p1_seen_by_2{-1, -1};
  h.at(0.5, [&] {
    auto& m = h.mechs.at(0);
    m.requestView([](const LoadView&) {});
    m.commitSelection({{1, LoadMetrics{500.0, 0.0}}});
  });
  h.at(1.5, [&] {
    auto& m = h.mechs.at(2);
    m.requestView([&](const LoadView& v) { p1_seen_by_2 = v.load(1); });
    m.commitSelection({});
  });
  h.run();
  EXPECT_DOUBLE_EQ(p1_seen_by_2.workload, 500.0);
}

TEST(NoMoreMaster, StopsLoadTrafficTowardsSender) {
  CoreHarness h(3, MechanismKind::kIncrement, tinyThreshold());
  h.at(0.5, [&] { h.mechs.at(2).noMoreMaster(); });
  h.at(1.0, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.run();
  // p0 broadcast only to p1 (p2 opted out): 1 update instead of 2.
  EXPECT_EQ(h.mechs.at(0).stats().sent_by_tag.get("update_delta"), 1);
  EXPECT_DOUBLE_EQ(h.mechs.at(1).view().load(0).workload, 100.0);
  EXPECT_DOUBLE_EQ(h.mechs.at(2).view().load(0).workload, 0.0);
}

TEST(NoMoreMaster, DisabledByConfig) {
  MechanismConfig cfg = tinyThreshold();
  cfg.no_more_master = false;
  CoreHarness h(3, MechanismKind::kIncrement, cfg);
  h.at(0.5, [&] { h.mechs.at(2).noMoreMaster(); });
  h.at(1.0, [&] { h.mechs.at(0).addLocalLoad({100.0, 0.0}); });
  h.run();
  EXPECT_EQ(h.mechs.at(0).stats().sent_by_tag.get("update_delta"), 2);
  EXPECT_EQ(h.mechs.at(2).stats().sent_by_tag.get("no_more_master"), 0);
}

TEST(NoMoreMaster, SentOnlyOnce) {
  CoreHarness h(3, MechanismKind::kIncrement, tinyThreshold());
  h.at(0.5, [&] {
    h.mechs.at(2).noMoreMaster();
    h.mechs.at(2).noMoreMaster();
  });
  h.run();
  EXPECT_EQ(h.mechs.at(2).stats().sent_by_tag.get("no_more_master"), 2);
}

// ---------------------------------------------------------------------------
// Property: after the system quiesces, every process's view of every rank
// agrees with that rank's true local load, up to the broadcast threshold.
// ---------------------------------------------------------------------------

using PropertyParams =
    std::tuple<MechanismKind, int /*nprocs*/, double /*threshold*/,
               std::uint64_t /*seed*/>;

class MaintainedViewProperty : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(MaintainedViewProperty, ViewsConvergeWithinThreshold) {
  const auto [kind, nprocs, threshold, seed] = GetParam();
  MechanismConfig cfg;
  cfg.threshold = LoadMetrics{threshold, threshold};
  CoreHarness h(nprocs, kind, cfg);
  h.attachAuditor();  // FIFO + conservation must hold across the sweep
  Rng rng(seed);

  // Random load-change schedule; cumulative loads stay the ground truth.
  std::vector<LoadMetrics> truth(static_cast<std::size_t>(nprocs));
  SimTime t = 0.1;
  for (int i = 0; i < 200; ++i) {
    const Rank r = static_cast<Rank>(rng.uniformInt(nprocs));
    LoadMetrics delta{rng.uniformReal(-20.0, 50.0), rng.uniformReal(-2.0, 5.0)};
    truth[static_cast<std::size_t>(r)] += delta;
    h.at(t, [&h, r, delta] { h.mechs.at(r).addLocalLoad(delta); });
    t += rng.uniformReal(0.0, 0.05);
  }
  h.run();
  h.finishAudit();

  for (Rank obs = 0; obs < nprocs; ++obs) {
    for (Rank r = 0; r < nprocs; ++r) {
      const auto& seen = h.mechs.at(obs).view().load(r);
      const auto& real = truth[static_cast<std::size_t>(r)];
      EXPECT_LE(std::abs(seen.workload - real.workload), threshold + 1e-9)
          << "observer " << obs << " target " << r;
      EXPECT_LE(std::abs(seen.memory - real.memory), threshold + 1e-9)
          << "observer " << obs << " target " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaintainedViewProperty,
    ::testing::Combine(::testing::Values(MechanismKind::kNaive,
                                         MechanismKind::kIncrement),
                       ::testing::Values(2, 3, 8, 16),
                       ::testing::Values(0.0, 25.0),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      return std::string(mechanismKindName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(static_cast<int>(std::get<2>(info.param))) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace loadex::core
