// Stress / property tests of the mechanisms under adversarial conditions:
// network jitter (arbitrary interleavings), many concurrent snapshot
// initiators, heterogeneous process speeds, threaded mode.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/snapshot.h"
#include "sim_test_utils.h"
#include "solver/runner.h"
#include "sparse/generators.h"

namespace loadex::core {
namespace {

using test::CoreHarness;

// ---------------------------------------------------------------------------
// Snapshot sequentialisation property: k concurrent initiators, arbitrary
// jitter. Every initiator must complete, exactly once each, and the i-th
// completed view (in completion order) must contain exactly the
// reservations of the i earlier decisions — byte-exact sequentialisation.
// ---------------------------------------------------------------------------

using SnapParams = std::tuple<int /*nprocs*/, int /*initiators*/,
                              double /*jitter*/, std::uint64_t /*seed*/>;

class SnapshotSequentialisation
    : public ::testing::TestWithParam<SnapParams> {};

TEST_P(SnapshotSequentialisation, ViewsReflectAllPriorDecisions) {
  const auto [nprocs, k, jitter, seed] = GetParam();
  if (k > nprocs - 1) GTEST_SKIP() << "more initiators than candidates";

  sim::WorldConfig wcfg;
  wcfg.network.jitter_s = jitter;
  wcfg.network.seed = seed;
  CoreHarness h(nprocs, MechanismKind::kSnapshot, MechanismConfig{}, wcfg);

  // The target everyone assigns work to: the highest rank (never an
  // initiator here), share 100 each.
  const Rank target = nprocs - 1;
  Rng rng(seed);
  std::vector<Rank> initiators;
  for (Rank r = 0; r < k; ++r) initiators.push_back(r);
  rng.shuffle(initiators);

  std::vector<double> target_seen;  // view of target at each completion
  for (const Rank who : initiators) {
    const SimTime t = 1.0 + rng.uniformReal(0.0, 1e-4);
    h.atWhenFree(t, who, [&h, &target_seen, who, target] {
      h.mechs.at(who).requestView(
          [&h, &target_seen, who, target](const LoadView& v) {
            target_seen.push_back(v.load(target).workload);
            h.mechs.at(who).commitSelection(
                {{target, LoadMetrics{100.0, 0.0}}});
          });
    });
  }
  h.run();

  ASSERT_EQ(target_seen.size(), static_cast<std::size_t>(k));
  if (jitter == 0.0) {
    // On an in-order network (MPI-like, as in the paper) the
    // sequentialisation is exact: the i-th completed view contains
    // precisely the i earlier reservations.
    for (int i = 0; i < k; ++i)
      EXPECT_DOUBLE_EQ(target_seen[static_cast<std::size_t>(i)], 100.0 * i)
          << "completion " << i;
  } else {
    // With cross-pair reordering a one-decision staleness window remains
    // (shared with the paper's pseudocode; see snapshot.cpp): views are
    // monotone and at most one decision behind.
    for (int i = 0; i < k; ++i) {
      const double seen = target_seen[static_cast<std::size_t>(i)];
      EXPECT_GE(seen, 100.0 * (i - 1)) << "completion " << i;
      EXPECT_LE(seen, 100.0 * i) << "completion " << i;
      if (i > 0) {
        EXPECT_GE(seen, target_seen[static_cast<std::size_t>(i - 1)]);
      }
    }
  }
  EXPECT_DOUBLE_EQ(h.mechs.at(target).localLoad().workload, 100.0 * k);
  for (Rank r = 0; r < nprocs; ++r)
    EXPECT_FALSE(h.mechs.at(r).blocksComputation()) << r;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotSequentialisation,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(2, 3, 7),
                       ::testing::Values(0.0, 5e-4),
                       ::testing::Values(11u, 12u, 13u)),
    [](const ::testing::TestParamInfo<SnapParams>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_j" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 1e4)) +
             "_s" + std::to_string(std::get<3>(info.param));
    });

// The same property under the pseudocode-faithful re-arm rule and under
// alternative election policies.
TEST(SnapshotSequentialisation, HoldsUnderMaxRankElection) {
  MechanismConfig cfg;
  cfg.election = ElectionPolicy::kMaxRank;
  CoreHarness h(8, MechanismKind::kSnapshot, cfg);
  std::vector<double> seen;
  for (const Rank who : {1, 3, 5}) {
    h.at(1.0, [&h, &seen, who] {
      h.mechs.at(who).requestView([&h, &seen, who](const LoadView& v) {
        seen.push_back(v.load(7).workload);
        h.mechs.at(who).commitSelection({{7, LoadMetrics{50.0, 0.0}}});
      });
    });
  }
  h.run();
  ASSERT_EQ(seen.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(seen[static_cast<std::size_t>(i)], 50.0 * i);
}

TEST(SnapshotSequentialisation, PaperRearmRuleWithTwoInitiators) {
  // With only two concurrent snapshots the pseudocode rule is airtight;
  // verify it end-to-end.
  MechanismConfig cfg;
  cfg.rearm_on_every_preemption = false;
  CoreHarness h(6, MechanismKind::kSnapshot, cfg);
  std::vector<double> seen;
  for (const Rank who : {0, 4}) {
    h.at(1.0, [&h, &seen, who] {
      h.mechs.at(who).requestView([&h, &seen, who](const LoadView& v) {
        seen.push_back(v.load(5).workload);
        h.mechs.at(who).commitSelection({{5, LoadMetrics{70.0, 0.0}}});
      });
    });
  }
  h.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.0);
  EXPECT_DOUBLE_EQ(seen[1], 70.0);
}

// ---------------------------------------------------------------------------
// Maintained views under jitter: convergence within threshold still holds.
// ---------------------------------------------------------------------------

TEST(MaintainedUnderJitter, ViewsStillConverge) {
  for (const auto kind :
       {MechanismKind::kNaive, MechanismKind::kIncrement}) {
    MechanismConfig mcfg;
    mcfg.threshold = {0.0, 0.0};
    sim::WorldConfig wcfg;
    wcfg.network.jitter_s = 1e-3;
    CoreHarness h(6, kind, mcfg, wcfg);
    Rng rng(5);
    std::vector<double> truth(6, 0.0);
    for (int i = 0; i < 100; ++i) {
      const Rank r = static_cast<Rank>(rng.uniformInt(6));
      const double d = rng.uniformReal(-10.0, 20.0);
      truth[static_cast<std::size_t>(r)] += d;
      h.at(0.1 + i * 0.01, [&h, r, d] {
        h.mechs.at(r).addLocalLoad({d, 0.0});
      });
    }
    h.run();
    for (Rank obs = 0; obs < 6; ++obs)
      for (Rank r = 0; r < 6; ++r)
        EXPECT_NEAR(h.mechs.at(obs).view().load(r).workload,
                    truth[static_cast<std::size_t>(r)], 1e-9)
            << mechanismKindName(kind);
  }
}

// ---------------------------------------------------------------------------
// Full-solver stress: jitter + heterogeneity + threaded mode, for every
// mechanism — completion and conservation must survive all of it.
// ---------------------------------------------------------------------------

using SolverStressParams = std::tuple<MechanismKind, bool /*threaded*/>;

class SolverStress : public ::testing::TestWithParam<SolverStressParams> {};

TEST_P(SolverStress, HeterogeneousJitteryMachineStillBalances) {
  const auto [kind, threaded] = GetParam();
  sparse::Problem p;
  p.name = "grid";
  p.symmetric = false;
  p.pattern = sparse::grid3d(10, 10, 10);

  solver::SolverConfig cfg;
  cfg.nprocs = 12;
  cfg.mechanism = kind;
  cfg.strategy = solver::Strategy::kMemory;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  cfg.network.jitter_s = 1e-4;
  cfg.heterogeneity = 0.5;
  cfg.process.comm_thread = threaded;
  const auto res = solver::runProblem(p, cfg);

  ASSERT_TRUE(res.completed) << mechanismKindName(kind);
  EXPECT_LT(res.residual_active_mem, 1.0 + 1e-6 * res.peak_active_mem);
  EXPECT_LT(res.residual_workload, 1.0 + 1e-6 * res.total_flops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverStress,
    ::testing::Combine(::testing::Values(MechanismKind::kNaive,
                                         MechanismKind::kIncrement,
                                         MechanismKind::kSnapshot),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(mechanismKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_thr" : "_plain");
    });

// ---------------------------------------------------------------------------
// Adversarial scripted losses: drop one specific protocol message at a
// known instant (via a narrow link blackout). The unhardened mechanisms
// diverge or deadlock exactly as §2.2/§3's reliable-network assumption
// predicts; the hardened ones recover.
// ---------------------------------------------------------------------------

// Drop the Master_To_All carrying rank 2's reservation. Without
// reliability, rank 2 never learns its own share: its self-accounting (and
// everyone's view of it) diverges forever. With sequence numbers the next
// message (or heartbeat) exposes the gap and a NACK recovers the loss.
class AdversarialIncrement : public ::testing::TestWithParam<bool> {};

TEST_P(AdversarialIncrement, LostMasterToAll) {
  const bool hard = GetParam();
  MechanismConfig mcfg;
  mcfg.threshold = {0.5, 1e18};
  mcfg.reliability.reliable_updates = hard;
  sim::WorldConfig wcfg;
  // Only messages 0 -> 2 around t = 1.0: exactly the Master_To_All.
  wcfg.network.faults.blackouts.push_back({0, 2, 0.999, 1.001});
  CoreHarness h(3, MechanismKind::kIncrement, mcfg, wcfg);

  h.at(1.0, [&h] {
    h.mechs.at(0).requestView([&h](const LoadView&) {
      h.mechs.at(0).commitSelection({{2, LoadMetrics{100.0, 0.0}}});
    });
  });
  // Later traffic from rank 0 (an ordinary Update) reveals the gap early;
  // without it the heartbeat tail-flush does.
  h.at(1.5, [&h] { h.mechs.at(0).addLocalLoad({7.0, 0.0}); });
  const auto run = h.run();
  ASSERT_FALSE(run.hit_limit);
  EXPECT_EQ(run.messages_dropped, 1);

  if (hard) {
    EXPECT_DOUBLE_EQ(h.mechs.at(2).localLoad().workload, 100.0);
    for (Rank viewer = 0; viewer < 3; ++viewer)
      EXPECT_DOUBLE_EQ(h.mechs.at(viewer).view().load(2).workload, 100.0)
          << "viewer " << viewer;
  } else {
    // The reservation is gone: rank 2 still believes it has no work while
    // the other ranks booked 100 on it.
    EXPECT_DOUBLE_EQ(h.mechs.at(2).localLoad().workload, 0.0);
    EXPECT_DOUBLE_EQ(h.mechs.at(0).view().load(2).workload, 100.0);
  }
}

TEST_P(AdversarialIncrement, LostUpdateDelta) {
  const bool hard = GetParam();
  MechanismConfig mcfg;
  mcfg.threshold = {0.5, 1e18};
  mcfg.reliability.reliable_updates = hard;
  sim::WorldConfig wcfg;
  wcfg.network.faults.blackouts.push_back({1, 0, 1.999, 2.001});
  CoreHarness h(3, MechanismKind::kIncrement, mcfg, wcfg);

  h.at(2.0, [&h] { h.mechs.at(1).addLocalLoad({40.0, 0.0}); });
  h.at(2.5, [&h] { h.mechs.at(1).addLocalLoad({2.0, 0.0}); });
  const auto run = h.run();
  ASSERT_FALSE(run.hit_limit);
  EXPECT_EQ(run.messages_dropped, 1);

  const double seen_by_0 = h.mechs.at(0).view().load(1).workload;
  const double seen_by_2 = h.mechs.at(2).view().load(1).workload;
  EXPECT_DOUBLE_EQ(seen_by_2, 42.0);  // unaffected link
  if (hard) {
    EXPECT_DOUBLE_EQ(seen_by_0, 42.0);
  } else {
    EXPECT_DOUBLE_EQ(seen_by_0, 2.0);  // the 40.0 increment is gone forever
  }
}

INSTANTIATE_TEST_SUITE_P(HardenedVsNot, AdversarialIncrement,
                         ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "hardened" : "paper";
                         });

// Drop rank 1's snp answer. The paper's protocol waits for it forever (the
// initiator never completes, every process stays frozen); the hardened one
// times out, re-arms with a fresh request id, and the retry succeeds.
class AdversarialSnapshot : public ::testing::TestWithParam<bool> {};

TEST_P(AdversarialSnapshot, LostSnpAnswer) {
  const bool hard = GetParam();
  MechanismConfig mcfg;
  if (hard) mcfg.reliability.snapshot_timeout_s = 1e-3;
  sim::WorldConfig wcfg;
  wcfg.network.latency_s = 1e-4;  // coarse timing: easy to bracket
  wcfg.network.faults.blackouts.push_back({1, 0, 1.0, 1.0005});
  CoreHarness h(3, MechanismKind::kSnapshot, mcfg, wcfg);

  bool completed = false;
  h.at(1.0, [&h, &completed] {
    h.mechs.at(0).requestView([&h, &completed](const LoadView&) {
      completed = true;
      h.mechs.at(0).commitSelection({{2, LoadMetrics{10.0, 0.0}}});
    });
  });
  const auto run = h.run();
  ASSERT_FALSE(run.hit_limit);
  EXPECT_EQ(run.messages_dropped, 1);

  if (hard) {
    EXPECT_TRUE(completed);
    EXPECT_GT(h.mechs.at(0).stats().snapshot_timeouts, 0);
    for (Rank r = 0; r < 3; ++r)
      EXPECT_FALSE(h.mechs.at(r).blocksComputation()) << r;
  } else {
    // Deadlock: the event queue drained with the snapshot still open and
    // all three processes frozen.
    EXPECT_FALSE(completed);
    EXPECT_TRUE(dynamic_cast<const SnapshotMechanism&>(h.mechs.at(0))
                    .snapshotPending());
    for (Rank r = 0; r < 3; ++r)
      EXPECT_TRUE(h.mechs.at(r).blocksComputation()) << r;
  }
}

TEST_P(AdversarialSnapshot, LostEndSnp) {
  const bool hard = GetParam();
  MechanismConfig mcfg;
  // Generous timeout: the snapshot itself completes undisturbed (~2 ms);
  // only rank 1's guard timer is in play here.
  if (hard) mcfg.reliability.snapshot_timeout_s = 5e-3;
  sim::WorldConfig wcfg;
  wcfg.network.latency_s = 1e-3;
  // start_snp 0->1 is sent at t = 1.0, the end_snp around t = 1.002 (one
  // latency out, answers one latency back): the window catches only the
  // end_snp. The selection goes to rank 2, so no master_to_slave crosses
  // the blacked-out link.
  wcfg.network.faults.blackouts.push_back({0, 1, 1.0015, 1.1});
  CoreHarness h(3, MechanismKind::kSnapshot, mcfg, wcfg);

  bool completed = false;
  h.at(1.0, [&h, &completed] {
    h.mechs.at(0).requestView([&h, &completed](const LoadView&) {
      completed = true;
      h.mechs.at(0).commitSelection({{2, LoadMetrics{10.0, 0.0}}});
    });
  });
  const auto run = h.run();
  ASSERT_FALSE(run.hit_limit);
  EXPECT_TRUE(completed);  // the initiator is unaffected either way
  EXPECT_EQ(run.messages_dropped, 1);

  if (hard) {
    // Rank 1's guard timer force-closed the orphaned snapshot.
    EXPECT_FALSE(h.mechs.at(1).blocksComputation());
    EXPECT_GT(h.mechs.at(1).stats().snapshot_aborts, 0);
  } else {
    // Rank 1 never hears the end_snp: frozen forever.
    EXPECT_TRUE(h.mechs.at(1).blocksComputation());
  }
}

INSTANTIATE_TEST_SUITE_P(HardenedVsNot, AdversarialSnapshot,
                         ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "hardened" : "paper";
                         });

TEST(Heterogeneity, SlowMachineTakesLonger) {
  sparse::Problem p;
  p.name = "grid";
  p.symmetric = true;
  p.pattern = sparse::grid3d(10, 10, 10);
  solver::SolverConfig cfg;
  cfg.nprocs = 8;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  const auto homo = solver::runProblem(p, cfg);
  cfg.heterogeneity = 0.8;  // speeds in [0.2, 1.8]
  const auto hetero = solver::runProblem(p, cfg);
  ASSERT_TRUE(homo.completed);
  ASSERT_TRUE(hetero.completed);
  // A machine with 0.2x-speed stragglers cannot beat the homogeneous one
  // when the workload view assumes equal speeds.
  EXPECT_GT(hetero.factor_time, homo.factor_time);
}

}  // namespace
}  // namespace loadex::core
