// Stress / property tests of the mechanisms under adversarial conditions:
// network jitter (arbitrary interleavings), many concurrent snapshot
// initiators, heterogeneous process speeds, threaded mode.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "sim_test_utils.h"
#include "solver/runner.h"
#include "sparse/generators.h"

namespace loadex::core {
namespace {

using test::CoreHarness;

// ---------------------------------------------------------------------------
// Snapshot sequentialisation property: k concurrent initiators, arbitrary
// jitter. Every initiator must complete, exactly once each, and the i-th
// completed view (in completion order) must contain exactly the
// reservations of the i earlier decisions — byte-exact sequentialisation.
// ---------------------------------------------------------------------------

using SnapParams = std::tuple<int /*nprocs*/, int /*initiators*/,
                              double /*jitter*/, std::uint64_t /*seed*/>;

class SnapshotSequentialisation
    : public ::testing::TestWithParam<SnapParams> {};

TEST_P(SnapshotSequentialisation, ViewsReflectAllPriorDecisions) {
  const auto [nprocs, k, jitter, seed] = GetParam();
  if (k > nprocs - 1) GTEST_SKIP() << "more initiators than candidates";

  sim::WorldConfig wcfg;
  wcfg.network.jitter_s = jitter;
  wcfg.network.seed = seed;
  CoreHarness h(nprocs, MechanismKind::kSnapshot, MechanismConfig{}, wcfg);

  // The target everyone assigns work to: the highest rank (never an
  // initiator here), share 100 each.
  const Rank target = nprocs - 1;
  Rng rng(seed);
  std::vector<Rank> initiators;
  for (Rank r = 0; r < k; ++r) initiators.push_back(r);
  rng.shuffle(initiators);

  std::vector<double> target_seen;  // view of target at each completion
  for (const Rank who : initiators) {
    const SimTime t = 1.0 + rng.uniformReal(0.0, 1e-4);
    h.atWhenFree(t, who, [&h, &target_seen, who, target] {
      h.mechs.at(who).requestView(
          [&h, &target_seen, who, target](const LoadView& v) {
            target_seen.push_back(v.load(target).workload);
            h.mechs.at(who).commitSelection(
                {{target, LoadMetrics{100.0, 0.0}}});
          });
    });
  }
  h.run();

  ASSERT_EQ(target_seen.size(), static_cast<std::size_t>(k));
  if (jitter == 0.0) {
    // On an in-order network (MPI-like, as in the paper) the
    // sequentialisation is exact: the i-th completed view contains
    // precisely the i earlier reservations.
    for (int i = 0; i < k; ++i)
      EXPECT_DOUBLE_EQ(target_seen[static_cast<std::size_t>(i)], 100.0 * i)
          << "completion " << i;
  } else {
    // With cross-pair reordering a one-decision staleness window remains
    // (shared with the paper's pseudocode; see snapshot.cpp): views are
    // monotone and at most one decision behind.
    for (int i = 0; i < k; ++i) {
      const double seen = target_seen[static_cast<std::size_t>(i)];
      EXPECT_GE(seen, 100.0 * (i - 1)) << "completion " << i;
      EXPECT_LE(seen, 100.0 * i) << "completion " << i;
      if (i > 0)
        EXPECT_GE(seen, target_seen[static_cast<std::size_t>(i - 1)]);
    }
  }
  EXPECT_DOUBLE_EQ(h.mechs.at(target).localLoad().workload, 100.0 * k);
  for (Rank r = 0; r < nprocs; ++r)
    EXPECT_FALSE(h.mechs.at(r).blocksComputation()) << r;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotSequentialisation,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(2, 3, 7),
                       ::testing::Values(0.0, 5e-4),
                       ::testing::Values(11u, 12u, 13u)),
    [](const ::testing::TestParamInfo<SnapParams>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_j" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 1e4)) +
             "_s" + std::to_string(std::get<3>(info.param));
    });

// The same property under the pseudocode-faithful re-arm rule and under
// alternative election policies.
TEST(SnapshotSequentialisation, HoldsUnderMaxRankElection) {
  MechanismConfig cfg;
  cfg.election = ElectionPolicy::kMaxRank;
  CoreHarness h(8, MechanismKind::kSnapshot, cfg);
  std::vector<double> seen;
  for (const Rank who : {1, 3, 5}) {
    h.at(1.0, [&h, &seen, who] {
      h.mechs.at(who).requestView([&h, &seen, who](const LoadView& v) {
        seen.push_back(v.load(7).workload);
        h.mechs.at(who).commitSelection({{7, LoadMetrics{50.0, 0.0}}});
      });
    });
  }
  h.run();
  ASSERT_EQ(seen.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(seen[static_cast<std::size_t>(i)], 50.0 * i);
}

TEST(SnapshotSequentialisation, PaperRearmRuleWithTwoInitiators) {
  // With only two concurrent snapshots the pseudocode rule is airtight;
  // verify it end-to-end.
  MechanismConfig cfg;
  cfg.rearm_on_every_preemption = false;
  CoreHarness h(6, MechanismKind::kSnapshot, cfg);
  std::vector<double> seen;
  for (const Rank who : {0, 4}) {
    h.at(1.0, [&h, &seen, who] {
      h.mechs.at(who).requestView([&h, &seen, who](const LoadView& v) {
        seen.push_back(v.load(5).workload);
        h.mechs.at(who).commitSelection({{5, LoadMetrics{70.0, 0.0}}});
      });
    });
  }
  h.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.0);
  EXPECT_DOUBLE_EQ(seen[1], 70.0);
}

// ---------------------------------------------------------------------------
// Maintained views under jitter: convergence within threshold still holds.
// ---------------------------------------------------------------------------

TEST(MaintainedUnderJitter, ViewsStillConverge) {
  for (const auto kind :
       {MechanismKind::kNaive, MechanismKind::kIncrement}) {
    MechanismConfig mcfg;
    mcfg.threshold = {0.0, 0.0};
    sim::WorldConfig wcfg;
    wcfg.network.jitter_s = 1e-3;
    CoreHarness h(6, kind, mcfg, wcfg);
    Rng rng(5);
    std::vector<double> truth(6, 0.0);
    for (int i = 0; i < 100; ++i) {
      const Rank r = static_cast<Rank>(rng.uniformInt(6));
      const double d = rng.uniformReal(-10.0, 20.0);
      truth[static_cast<std::size_t>(r)] += d;
      h.at(0.1 + i * 0.01, [&h, r, d] {
        h.mechs.at(r).addLocalLoad({d, 0.0});
      });
    }
    h.run();
    for (Rank obs = 0; obs < 6; ++obs)
      for (Rank r = 0; r < 6; ++r)
        EXPECT_NEAR(h.mechs.at(obs).view().load(r).workload,
                    truth[static_cast<std::size_t>(r)], 1e-9)
            << mechanismKindName(kind);
  }
}

// ---------------------------------------------------------------------------
// Full-solver stress: jitter + heterogeneity + threaded mode, for every
// mechanism — completion and conservation must survive all of it.
// ---------------------------------------------------------------------------

using SolverStressParams = std::tuple<MechanismKind, bool /*threaded*/>;

class SolverStress : public ::testing::TestWithParam<SolverStressParams> {};

TEST_P(SolverStress, HeterogeneousJitteryMachineStillBalances) {
  const auto [kind, threaded] = GetParam();
  sparse::Problem p;
  p.name = "grid";
  p.symmetric = false;
  p.pattern = sparse::grid3d(10, 10, 10);

  solver::SolverConfig cfg;
  cfg.nprocs = 12;
  cfg.mechanism = kind;
  cfg.strategy = solver::Strategy::kMemory;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  cfg.network.jitter_s = 1e-4;
  cfg.heterogeneity = 0.5;
  cfg.process.comm_thread = threaded;
  const auto res = solver::runProblem(p, cfg);

  ASSERT_TRUE(res.completed) << mechanismKindName(kind);
  EXPECT_LT(res.residual_active_mem, 1.0 + 1e-6 * res.peak_active_mem);
  EXPECT_LT(res.residual_workload, 1.0 + 1e-6 * res.total_flops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverStress,
    ::testing::Combine(::testing::Values(MechanismKind::kNaive,
                                         MechanismKind::kIncrement,
                                         MechanismKind::kSnapshot),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(mechanismKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_thr" : "_plain");
    });

TEST(Heterogeneity, SlowMachineTakesLonger) {
  sparse::Problem p;
  p.name = "grid";
  p.symmetric = true;
  p.pattern = sparse::grid3d(10, 10, 10);
  solver::SolverConfig cfg;
  cfg.nprocs = 8;
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  const auto homo = solver::runProblem(p, cfg);
  cfg.heterogeneity = 0.8;  // speeds in [0.2, 1.8]
  const auto hetero = solver::runProblem(p, cfg);
  ASSERT_TRUE(homo.completed);
  ASSERT_TRUE(hetero.completed);
  // A machine with 0.2x-speed stragglers cannot beat the homogeneous one
  // when the workload view assumes equal speeds.
  EXPECT_GT(hetero.factor_time, homo.factor_time);
}

}  // namespace
}  // namespace loadex::core
