// SimTransport glue semantics, in particular the schedule() re-pump: a
// mechanism timer can make local work ready (or unfreeze a snapshot), and
// unlike a message delivery a bare queue event does not pump the process —
// binding.h re-pumps via notifyReadyWork after the callback. These tests
// prove that re-pump is load-bearing, not belt-and-braces.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/binding.h"
#include "harness/world_harness.h"
#include "sim/world.h"

namespace loadex {
namespace {

using core::MechanismConfig;
using core::MechanismKind;
using core::MechanismSet;
using core::SimTransport;
using harness::CoreHarness;

// A timer scheduled through SimTransport that pushes a task into an idle
// process's application queue: the re-pump makes the process pick it up.
TEST(SimTransportSchedule, RePumpStartsWorkMadeReadyByTimer) {
  CoreHarness h(2, MechanismKind::kNaive);
  SimTransport transport(h.world.process(0));

  bool task_ran = false;
  transport.schedule(0.25, [&] {
    h.app.pushTask(0, /*work=*/1e6,
                   [&](sim::Process&) { task_ran = true; });
  });

  h.run();
  EXPECT_TRUE(task_ran)
      << "timer made work ready but the process never started it";
}

// Control experiment for the test above: the *same* closure scheduled as a
// bare queue event (no notifyReadyWork) leaves the task stranded — the
// idle process is only pumped by deliveries and explicit notifications.
// This pins the contract documented in binding.h: if someone "simplifies"
// schedule() to a plain scheduleAfter, this pair of tests catches it.
TEST(SimTransportSchedule, BareQueueEventDoesNotPumpTheProcess) {
  CoreHarness h(2, MechanismKind::kNaive);

  bool task_ran = false;
  h.world.queue().scheduleAfter(0.25, [&] {
    h.app.pushTask(0, /*work=*/1e6,
                   [&](sim::Process&) { task_ran = true; });
  });

  h.run();
  EXPECT_FALSE(task_ran)
      << "a bare queue event now pumps the process; the re-pump in "
         "SimTransport::schedule (and this control test) are stale";
}

// The callback fires at now + delay in simulated time.
TEST(SimTransportSchedule, FiresAtRequestedSimulatedTime) {
  CoreHarness h(2, MechanismKind::kNaive);
  SimTransport transport(h.world.process(0));

  SimTime fired_at = -1.0;
  transport.schedule(0.5, [&] { fired_at = h.world.process(0).now(); });

  h.run();
  EXPECT_DOUBLE_EQ(fired_at, 0.5);
}

// schedule() must also wake a process whose app queue already has work but
// that went idle before the timer: the re-pump is what restarts it. Run a
// real snapshot-mechanism scenario on top to confirm the re-pump composes
// with mechanism state (the demand-driven snapshot schedules its own
// timers through the same path).
TEST(SimTransportSchedule, RePumpComposesWithSnapshotMechanism) {
  CoreHarness h(4, MechanismKind::kSnapshot);
  h.attachAuditor();

  bool selected = false;
  h.atWhenFree(0.1, 0, [&] {
    h.mechs.at(0).requestView([&](const core::LoadView&) {
      h.mechs.at(0).commitSelection({{1, {10.0, 0.0}}});
      harness::sendWork(h.world.process(0), 1, /*work=*/1e6,
                        {10.0, 0.0}, /*is_slave_delegated=*/true);
      selected = true;
    });
  });

  // Give every rank a little initial work so the snapshot has something to
  // observe and the ranks go idle at different times.
  for (Rank r = 0; r < 4; ++r) {
    h.at(0.01, [&h, r] { h.mechs.at(r).addLocalLoad({2.0 + r, 0.0}); });
  }

  h.run();
  h.finishAudit();
  EXPECT_TRUE(selected) << "snapshot view request never completed; its "
                           "answer timers rely on schedule()'s re-pump";
}

// The transports-vector constructor (the rt seam) builds one mechanism per
// transport in rank order and leaves them fully functional.
TEST(MechanismSetOverTransports, BindsOneMechanismPerTransport) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = 3;
  sim::World world(wcfg);

  std::vector<std::unique_ptr<SimTransport>> owned;
  std::vector<core::Transport*> transports;
  for (Rank r = 0; r < 3; ++r) {
    owned.push_back(std::make_unique<SimTransport>(world.process(r)));
    transports.push_back(owned.back().get());
  }

  MechanismSet mechs(transports, MechanismKind::kIncrement,
                     MechanismConfig{});
  ASSERT_EQ(mechs.size(), 3);
  EXPECT_EQ(mechs.kind(), MechanismKind::kIncrement);
  for (Rank r = 0; r < 3; ++r) {
    EXPECT_EQ(mechs.at(r).self(), r);
    EXPECT_EQ(mechs.at(r).nprocs(), 3);
  }
}

}  // namespace
}  // namespace loadex
