// Differential harness: the real-threads runtime vs the discrete-event
// simulator, replaying the same seeded harness::Script on both.
//
// The two runtimes cannot agree on timing — the simulator's clock is a
// fiction the event queue advances, the rt world's is the host's — so the
// comparison is restricted to conservation-style invariants any faithful
// replay must satisfy (see harness/script.h):
//
//   * every scripted selection commits exactly once (nprocs >= 2 means the
//     least-loaded policy always finds a slave);
//   * the total load at quiescence equals the scripted injections plus the
//     delegated shares, on both runtimes, to FP-accumulation tolerance;
//   * per-channel message conservation inside the rt world: every state
//     post is delivered, every task post is delivered, and the mechanisms'
//     own sender-side counts match what the transports posted;
//   * a ProtocolAuditor attached to BOTH runs (over the serialising
//     LockedAuditObserver on the rt side) finishes clean — reservation
//     bookkeeping closes, snapshot lifecycles are well-formed.
//
// What this deliberately does NOT claim: identical message counts (an rt
// flood coalesces threshold crossings differently), identical slave
// choices (view timing differs), or any latency property.
//
// The executor axis (RtExecutorAxis below) replays the same scripts over
// every runtime the rt world offers — the legacy thread-per-rank executor
// and the M:N sharded executor at 1, 2 and 8 workers with stealing on and
// off — at N up to 1024 ranks. The invariants are executor-blind, which
// is exactly the claim: scheduling is a performance decision, never a
// semantic one.
//
// The process axis (RtProcessAxis below) goes one level further down:
// the same script replayed across 8 separate OS processes over
// Unix-domain sockets (src/net), with the wire-level conservation
// identity folded in. Serialization and real kernels are transport
// decisions, never semantic ones either.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/audit.h"
#include "harness/script.h"
#include "harness/world_harness.h"
#include "net/launch.h"
#include "rt/audit_lock.h"
#include "rt/workload.h"
#include "rt/world.h"

namespace loadex {
namespace {

using core::MechanismConfig;
using core::MechanismKind;
using harness::Script;
using harness::ScriptExpectations;

core::MechanismConfig mechanismConfigOf(const Script& s) {
  MechanismConfig mcfg;
  mcfg.threshold = {s.threshold, s.threshold};
  mcfg.reliability.reliable_updates = s.hardened;
  return mcfg;
}

core::AuditorConfig auditorConfigOf(const Script& s) {
  core::AuditorConfig acfg;
  // A rank that announced No_more_master stops receiving updates, so its
  // view goes legitimately stale; mirror the sim differential suite.
  acfg.check_conservation = s.no_more_master == kNoRank;
  return acfg;
}

struct Replay {
  std::int64_t committed = 0;
  std::int64_t skipped = 0;
  core::LoadMetrics total_load;
  std::int64_t mech_messages_sent = 0;
};

// ---- simulator replay -----------------------------------------------------

Replay runOnSimulator(const Script& s) {
  harness::CoreHarness h(s.nprocs, s.kind, mechanismConfigOf(s));
  h.attachAuditor(auditorConfigOf(s));

  Replay rep;
  for (const auto& op : s.loads)
    h.at(op.time, [&h, op] { h.mechs.at(op.rank).addLocalLoad(op.delta); });
  for (const auto& op : s.selections)
    h.atWhenFree(op.time, op.master, [&h, &rep, op] {
      auto& m = h.mechs.at(op.master);
      m.requestView([&h, &rep, op, &m](const core::LoadView& v) {
        const Rank slave = harness::leastLoadedSlave(v, op.master);
        if (slave == kNoRank) {
          ++rep.skipped;
          return;
        }
        m.commitSelection({{slave, {op.share, 0.0}}});
        ++rep.committed;
        harness::sendWork(h.world.process(op.master), slave,
                          /*work=*/op.share * 1e3, {op.share, 0.0},
                          /*is_slave_delegated=*/true);
      });
    });
  if (s.no_more_master != kNoRank)
    h.at(s.no_more_master_at,
         [&h, r = s.no_more_master] { h.mechs.at(r).noMoreMaster(); });

  h.run();
  h.finishAudit();

  for (Rank r = 0; r < s.nprocs; ++r)
    rep.total_load += h.mechs.at(r).localLoad();
  rep.mech_messages_sent = h.mechs.aggregateStats().messagesSent();
  return rep;
}

// ---- rt replay ------------------------------------------------------------

/// One point on the executor axis. The default is the M:N executor
/// auto-sized to the machine — what every non-axis test below runs on.
struct ExecVariant {
  const char* name = "mn_auto";
  bool legacy = false;
  int workers = 0;  ///< 0: auto
  bool steal = true;
};

Replay runOnRt(const Script& s, bool lock_free_ring,
               const ExecVariant& ex = {},
               std::size_t mailbox_capacity = 0) {
  rt::RtConfig rcfg;
  rcfg.nprocs = s.nprocs;
  rcfg.mailbox.lock_free_ring = lock_free_ring;
  // Big-N runs shrink the rings: the default 4096 slots per rank would
  // cost hundreds of MB at N=1024, and a small ring exercises the spill
  // path the executor must keep FIFO anyway.
  if (mailbox_capacity != 0) rcfg.mailbox.capacity = mailbox_capacity;
  rcfg.executor.legacy_executor = ex.legacy;
  rcfg.executor.workers = ex.workers;
  rcfg.executor.steal = ex.steal;
  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), s.kind, mechanismConfigOf(s));

  core::ProtocolAuditor auditor(auditorConfigOf(s));
  rt::RtAuditBinding audit_binding(auditor, mechs);

  for (Rank r = 0; r < s.nprocs; ++r) world.attach(r, &mechs.at(r));
  world.start();
  if (ex.legacy) {
    EXPECT_EQ(world.workerCount(), 0);  // no pool under thread-per-rank
  } else if (ex.workers > 0 && ex.workers <= s.nprocs) {
    EXPECT_EQ(world.workerCount(), ex.workers);
  }

  rt::WorkloadDriver driver(world, mechs);
  const rt::WorkloadResult res = driver.run(s, /*time_scale=*/0.0,
                                            /*drain_timeout_s=*/60.0);
  EXPECT_TRUE(res.drained) << "rt world failed to quiesce";
  world.stop();

  auditor.finish();
  auditor.expectClean();

  // Message conservation per channel inside the rt world.
  const rt::RtRunStats st = world.runStats();
  EXPECT_EQ(st.state_posted, st.state_delivered)
      << "state envelopes lost or double-delivered";
  EXPECT_EQ(st.task_posted, st.task_delivered)
      << "task envelopes lost or double-delivered";
  EXPECT_EQ(st.timers_armed, st.timers_fired);
  EXPECT_EQ(st.mailbox_pushes,
            static_cast<std::uint64_t>(st.state_posted + st.task_posted +
                                       s.nprocs))  // + one kStop per node
      << "mailbox traffic does not reconcile with the posting counters";

  Replay rep;
  rep.committed = res.selections_committed;
  rep.skipped = res.selections_skipped;
  rep.total_load = res.total_load;
  rep.mech_messages_sent = mechs.aggregateStats().messagesSent();
  // What the mechanisms sent is exactly what the transports posted.
  EXPECT_EQ(rep.mech_messages_sent, st.state_posted);
  return rep;
}

// ---- the differential property --------------------------------------------

void expectLoadNear(const core::LoadMetrics& got,
                    const core::LoadMetrics& want) {
  const double tol_w = 1e-9 * (1.0 + std::abs(want.workload));
  const double tol_m = 1e-9 * (1.0 + std::abs(want.memory));
  EXPECT_NEAR(got.workload, want.workload, tol_w);
  EXPECT_NEAR(got.memory, want.memory, tol_m);
}

void checkScript(const Script& s) {
  SCOPED_TRACE("seed=" + std::to_string(s.seed) +
               " nprocs=" + std::to_string(s.nprocs) +
               " kind=" + core::mechanismKindName(s.kind) +
               (s.hardened ? " hardened" : "") +
               (s.no_more_master != kNoRank ? " no_more_master" : ""));
  const ScriptExpectations want = harness::expectationsOf(s);

  const Replay sim = runOnSimulator(s);
  const Replay rtr = runOnRt(s, /*lock_free_ring=*/true);

  // Selection conservation: both runtimes commit every scripted selection.
  EXPECT_EQ(sim.committed, want.selections);
  EXPECT_EQ(rtr.committed, want.selections);
  EXPECT_EQ(sim.skipped, 0);
  EXPECT_EQ(rtr.skipped, 0);

  // Load conservation: same final bookkeeping on both runtimes.
  expectLoadNear(sim.total_load, want.total_load);
  expectLoadNear(rtr.total_load, want.total_load);
}

class RtDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtDifferential, RtAndSimAgreeOnConservationInvariants) {
  checkScript(harness::drawScript(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtDifferential,
                         ::testing::Range<std::uint64_t>(1, 13));

// drawScript picks the mechanism from the seed; pin each kind explicitly
// so all three are exercised no matter how the draws fall.
class RtDifferentialPerKind
    : public ::testing::TestWithParam<core::MechanismKind> {};

TEST_P(RtDifferentialPerKind, EveryMechanismSurvivesTheDifferential) {
  for (std::uint64_t seed = 101; seed < 104; ++seed) {
    Script s = harness::drawScript(seed);
    s.kind = GetParam();
    if (s.kind != MechanismKind::kIncrement) s.hardened = false;
    checkScript(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, RtDifferentialPerKind,
                         ::testing::Values(MechanismKind::kNaive,
                                           MechanismKind::kIncrement,
                                           MechanismKind::kSnapshot),
                         [](const ::testing::TestParamInfo<MechanismKind>& i) {
                           return std::string(
                               core::mechanismKindName(i.param));
                         });

// The mutex-baseline mailbox must satisfy the same invariants as the ring
// (the differential above always runs the ring fast path).
TEST(RtDifferential, MutexMailboxBaselineAgreesToo) {
  for (std::uint64_t seed = 201; seed < 204; ++seed) {
    const Script s = harness::drawScript(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ScriptExpectations want = harness::expectationsOf(s);
    const Replay rtr = runOnRt(s, /*lock_free_ring=*/false);
    EXPECT_EQ(rtr.committed, want.selections);
    expectLoadNear(rtr.total_load, want.total_load);
  }
}

// ---- executor axis ---------------------------------------------------------
//
// {legacy, M:N×{1,2,8} workers, steal on/off} × 3 mechanisms at
// N ∈ {32, 256, 1024}. All three axes shrink to the same claim: the
// conservation invariants of checkScript hold on every executor, so the
// M:N refactor changed scheduling, not semantics.

constexpr ExecVariant kExecLegacy{"legacy", true, 0, false};
constexpr ExecVariant kExecMn1{"mn1", false, 1, false};
constexpr ExecVariant kExecMn1Steal{"mn1_steal", false, 1, true};
constexpr ExecVariant kExecMn2{"mn2", false, 2, false};
constexpr ExecVariant kExecMn2Steal{"mn2_steal", false, 2, true};
constexpr ExecVariant kExecMn8{"mn8", false, 8, false};
constexpr ExecVariant kExecMn8Steal{"mn8_steal", false, 8, true};

/// One deterministic script per (nprocs, kind): every executor variant
/// replays the SAME plan, so agreement across the axis is agreement on a
/// single ground truth. Op counts are bounded independently of nprocs —
/// at N=1024 one naive threshold crossing broadcasts to 1023 peers, so
/// it is the load-op count (not the rank count) that prices the storm.
Script scaleScript(int nprocs, MechanismKind kind) {
  Rng rng(0xE5ECA415u ^ (static_cast<std::uint64_t>(nprocs) << 8) ^
          static_cast<std::uint64_t>(static_cast<int>(kind)));
  Script s;
  s.seed = static_cast<std::uint64_t>(nprocs);
  s.nprocs = nprocs;
  s.kind = kind;
  // Hardened increments arm retransmit timers; running them across the
  // axis checks timers_armed == timers_fired on every executor.
  s.hardened = kind == MechanismKind::kIncrement;
  s.threshold = 6.0;
  const auto randRank = [&] {
    return static_cast<Rank>(
        rng.uniformInt(static_cast<std::uint64_t>(nprocs)));
  };
  const int nloads = std::min(nprocs * 4, 192);
  for (int i = 0; i < nloads; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0), randRank(),
                       {rng.uniformReal(2.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});
  for (int i = 0; i < 6; ++i)
    s.selections.push_back({rng.uniformReal(0.3, 0.9), randRank(),
                            rng.uniformReal(5.0, 40.0)});
  return s;
}

struct ExecAxisCase {
  int nprocs;
  MechanismKind kind;
  ExecVariant exec;
  std::size_t mailbox_capacity;  ///< 0: default ring size
};

std::vector<ExecAxisCase> execAxisCases() {
  const MechanismKind kinds[] = {MechanismKind::kNaive,
                                 MechanismKind::kIncrement,
                                 MechanismKind::kSnapshot};
  // N=32: the full cross, legacy included — cheap enough to be exhaustive.
  const ExecVariant small_axis[] = {kExecLegacy, kExecMn1,  kExecMn1Steal,
                                    kExecMn2,    kExecMn2Steal, kExecMn8,
                                    kExecMn8Steal};
  // N=256: thread-per-rank is still affordable; keep legacy in the loop
  // beside representative M:N points (steal off at 2, on at 8).
  const ExecVariant mid_axis[] = {kExecLegacy, kExecMn2, kExecMn8Steal};
  // N=1024 is the M:N raison d'être — ranks ≫ cores on both extremes of
  // the pool (1 worker and 8, steal on/off). Spawning 1024 OS threads to
  // re-prove that the legacy executor scales badly is not worth the CI
  // minutes (the N≤256 rows already cover its semantics).
  const ExecVariant big_axis[] = {kExecMn1, kExecMn8, kExecMn8Steal};
  std::vector<ExecAxisCase> cases;
  for (MechanismKind k : kinds) {
    for (const ExecVariant& e : small_axis) cases.push_back({32, k, e, 0});
    for (const ExecVariant& e : mid_axis) cases.push_back({256, k, e, 256});
    for (const ExecVariant& e : big_axis) cases.push_back({1024, k, e, 256});
  }
  return cases;
}

class RtExecutorAxis : public ::testing::TestWithParam<ExecAxisCase> {};

TEST_P(RtExecutorAxis, ConservationHoldsOnEveryExecutor) {
  const ExecAxisCase& c = GetParam();
  const Script s = scaleScript(c.nprocs, c.kind);
  SCOPED_TRACE("nprocs=" + std::to_string(c.nprocs) +
               " kind=" + core::mechanismKindName(c.kind) +
               " exec=" + c.exec.name);
  const ScriptExpectations want = harness::expectationsOf(s);

  const Replay sim = runOnSimulator(s);
  EXPECT_EQ(sim.committed, want.selections);
  EXPECT_EQ(sim.skipped, 0);
  expectLoadNear(sim.total_load, want.total_load);

  const Replay rtr =
      runOnRt(s, /*lock_free_ring=*/true, c.exec, c.mailbox_capacity);
  EXPECT_EQ(rtr.committed, want.selections);
  EXPECT_EQ(rtr.skipped, 0);
  expectLoadNear(rtr.total_load, want.total_load);
}

INSTANTIATE_TEST_SUITE_P(
    ExecutorAxis, RtExecutorAxis, ::testing::ValuesIn(execAxisCases()),
    [](const ::testing::TestParamInfo<ExecAxisCase>& i) {
      return std::string(core::mechanismKindName(i.param.kind)) + "_n" +
             std::to_string(i.param.nprocs) + "_" + i.param.exec.name;
    });

// ---- process axis ----------------------------------------------------------
//
// The third runtime: ranks as separate OS processes over Unix-domain
// sockets, state serialized through the versioned wire format. Same
// deterministic script as the executor axis at N=8, same invariants —
// plus the transport-level conservation identity the supervisor folds
// from the per-rank summaries (posted + duplicated == delivered +
// dropped on both channels) and a loss-free wire: no per-link FIFO gaps,
// no decode errors, every child's rank-local audit clean.

Replay runOnNet(const Script& s) {
  net::NetOptions opts;
  opts.transport = net::NetTransportKind::kUds;
  const net::NetRunReport rep = net::runMultiProcess(s, opts);

  EXPECT_TRUE(rep.ok) << "net run failed: " << rep.error;
  EXPECT_TRUE(rep.conservationHolds())
      << "state " << rep.state.posted << "+" << rep.state.duplicated
      << " != " << rep.state.delivered << "+" << rep.state.dropped;
  EXPECT_EQ(rep.seq_violations, 0) << "wire FIFO gaps on a loss-free run";
  EXPECT_EQ(rep.decode_errors, 0);
  EXPECT_EQ(rep.audit_violations, 0);
  for (const net::NetRankResult& r : rep.ranks) {
    EXPECT_EQ(r.exit_code, 0) << "rank " << r.rank << ": "
                              << r.first_violation;
  }
  // A fault-free plan must not drop or duplicate anything.
  EXPECT_EQ(rep.state.dropped, 0);
  EXPECT_EQ(rep.state.duplicated, 0);
  EXPECT_EQ(rep.work.posted, rep.work.delivered);

  Replay r;
  r.committed = rep.committed;
  r.skipped = rep.skipped;
  r.total_load = rep.total_load;
  r.mech_messages_sent = rep.mech_messages_sent;
  // What the mechanisms sent is exactly what the sockets carried.
  EXPECT_EQ(rep.mech_messages_sent, rep.state.posted);
  return r;
}

class RtProcessAxis : public ::testing::TestWithParam<core::MechanismKind> {};

TEST_P(RtProcessAxis, MultiProcessRunAgreesWithSimAndRt) {
  const Script s = scaleScript(8, GetParam());
  SCOPED_TRACE("kind=" + std::string(core::mechanismKindName(s.kind)));
  const ScriptExpectations want = harness::expectationsOf(s);

  const Replay sim = runOnSimulator(s);
  const Replay rtr = runOnRt(s, /*lock_free_ring=*/true);
  const Replay netr = runOnNet(s);

  // All three runtimes commit every scripted selection and agree on the
  // final load bookkeeping — the decision count and conservation claims
  // of the acceptance criteria.
  EXPECT_EQ(sim.committed, want.selections);
  EXPECT_EQ(rtr.committed, want.selections);
  EXPECT_EQ(netr.committed, want.selections);
  EXPECT_EQ(netr.skipped, sim.skipped);
  EXPECT_EQ(netr.skipped, rtr.skipped);
  expectLoadNear(sim.total_load, want.total_load);
  expectLoadNear(rtr.total_load, want.total_load);
  expectLoadNear(netr.total_load, want.total_load);
}

INSTANTIATE_TEST_SUITE_P(
    ProcessAxis, RtProcessAxis,
    ::testing::Values(MechanismKind::kNaive, MechanismKind::kIncrement,
                      MechanismKind::kSnapshot),
    [](const ::testing::TestParamInfo<core::MechanismKind>& i) {
      return std::string(core::mechanismKindName(i.param));
    });

}  // namespace
}  // namespace loadex
