// Sojourn-time benchmark of the open-loop service workload (loadex_svc):
// every dispatch policy — four references plus the paper's three
// mechanisms behind the same decision rule — under four conditions:
//
//   sim_clean   discrete-event run, reliable network
//   sim_faulty  4% state-channel loss + one server crash/restart
//   rt_clean    real threads, flood injection
//   rt_faulty   4% loss + choreographed crash/restart + failure detector
//
// Not a paper table: the paper measures mechanism cost inside a solver;
// this driver measures the same mechanisms as a *service* — what a
// request feels (mean/p50/p99 sojourn), what the decision knew (mean
// info age) and what the exchange cost (state messages). The arrival
// stream is a seeded two-phase MMPP at 70% of aggregate capacity, so
// burst periods push the servers near saturation where stale views
// actually hurt.
//
// Record identity: problem=svc_open_loop, mechanism=<policy>,
// strategy=<condition>. Sim records carry the schedule digest and fully
// deterministic extras. The rt records use the injected-arrival digest
// as their schedule digest (the only replayable identity a threaded run
// has) and keep every timing-dependent measurement under host_ keys so
// baseline diffs still pair them up.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "svc/arrivals.h"
#include "svc/rt_driver.h"
#include "svc/service_app.h"

using namespace loadex;

namespace {

struct Condition {
  const char* name;
  bool rt = false;
  bool faulty = false;
};

constexpr Condition kConditions[] = {
    {"sim_clean", false, false},
    {"sim_faulty", false, true},
    {"rt_clean", true, false},
    {"rt_faulty", true, true},
};

struct BenchShape {
  int nprocs = 8;
  int requests = 100000;
  std::uint64_t seed = 1;
  double mean_work = 1e6;           ///< flops per request
  std::vector<double> speeds;       ///< heterogeneous server speeds
  double capacity_hz = 0.0;         ///< aggregate service rate
  double expected_makespan_s = 0.0;
  svc::ArrivalConfig arrivals;
};

BenchShape makeShape(int nprocs, int requests, std::uint64_t seed) {
  BenchShape s;
  s.nprocs = nprocs;
  s.requests = requests;
  s.seed = seed;
  // Alternating 0.75x / 1.25x servers: heterogeneous, same aggregate as
  // a homogeneous fleet (pairs sum to 2.0).
  s.speeds.assign(static_cast<std::size_t>(nprocs), 1.0);
  for (Rank r = 1; r < nprocs; ++r)
    s.speeds[static_cast<std::size_t>(r)] = (r % 2 == 1) ? 0.75 : 1.25;
  double agg = 0.0;
  for (Rank r = 1; r < nprocs; ++r)
    agg += s.speeds[static_cast<std::size_t>(r)] * 1e9;
  s.capacity_hz = agg / s.mean_work;

  s.arrivals.seed = seed * 0x9e3779b9u + 0x5ecc1u;
  s.arrivals.n_requests = requests;
  s.arrivals.mean_work = s.mean_work;
  // Two-phase MMPP averaging 0.7x capacity: bursts at 0.98x (queues
  // build, stale decisions cost), lulls at 0.42x (queues drain).
  s.arrivals.phases = {{0.98 * s.capacity_hz, 25e-3},
                       {0.42 * s.capacity_hz, 25e-3}};
  s.expected_makespan_s =
      static_cast<double>(requests) / (0.7 * s.capacity_hz);
  return s;
}

core::MechanismConfig mechConfigOf(const BenchShape& s, bool faulty) {
  core::MechanismConfig m;
  // Half the mean request: most load changes broadcast, the maintained
  // views stay maintained.
  m.threshold = {0.5 * s.mean_work, 1e18};
  if (faulty) {
    m.reliability.reliable_updates = true;
    m.reliability.snapshot_timeout_s = 5e-3;
  }
  return m;
}

struct RunRow {
  svc::LedgerTotals totals;
  double sojourn_mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double queue_mean = 0.0;
  double mean_info_age = 0.0;
  std::int64_t state_messages = 0;
  std::uint64_t digest = 0;
  double sim_makespan_s = 0.0;  ///< 0 for rt rows
  std::uint64_t sim_events = 0;
  double host_wall_s = 0.0;
};

RunRow rowOf(const svc::LedgerTotals& totals, const obs::Histogram& sojourn,
             const obs::Histogram& queue_wait, double info_age,
             const core::MechanismStats& ms) {
  RunRow r;
  r.totals = totals;
  r.sojourn_mean = sojourn.mean();
  r.p50 = sojourn.p50();
  r.p95 = sojourn.p95();
  r.p99 = sojourn.p99();
  r.queue_mean = queue_wait.mean();
  r.mean_info_age = info_age;
  r.state_messages = ms.messagesSent();
  return r;
}

RunRow runSim(const BenchShape& s, svc::PolicyKind policy, bool faulty,
              const svc::ArrivalScript& script) {
  svc::SvcSimConfig cfg;
  cfg.nprocs = s.nprocs;
  cfg.policy = policy;
  cfg.mech = mechConfigOf(s, faulty);
  cfg.speed_factors = s.speeds;
  cfg.audit = svc::svcAuditorConfig(faulty);
  if (faulty) {
    cfg.network.faults.drop_prob = 0.04;
    cfg.network.faults.affects_app = false;  // state channel only
    cfg.network.faults.seed = s.seed * 1069 + 11;
    using Kind = loadex::ProcessFaultEvent::Kind;
    const Rank victim = s.nprocs - 1;
    cfg.process_faults.push_back(
        {victim, 0.30 * s.expected_makespan_s, Kind::kCrash});
    cfg.process_faults.push_back(
        {victim, 0.45 * s.expected_makespan_s, Kind::kRestart});
  }
  const svc::SvcSimResult res = svc::runSvcSim(cfg, script);
  RunRow r = rowOf(res.totals, res.sojourn, res.queue_wait,
                   res.mean_info_age, res.mech_stats);
  r.digest = res.run.schedule_digest;
  r.sim_makespan_s = res.run.end_time;
  r.sim_events = res.run.events;
  return r;
}

RunRow runRt(const BenchShape& s, svc::PolicyKind policy, bool faulty,
             const svc::ArrivalScript& script) {
  svc::SvcRtConfig cfg;
  cfg.nprocs = s.nprocs;
  cfg.policy = policy;
  cfg.mech = mechConfigOf(s, faulty);
  cfg.audit = svc::svcAuditorConfig(faulty);
  cfg.drain_timeout_s = 120.0;
  if (faulty) {
    cfg.rt.faults.messages.drop_prob = 0.04;
    cfg.rt.faults.messages.affects_app = false;
    cfg.rt.faults.messages.seed = s.seed * 1069 + 13;
    cfg.rt.faults.manual_control = true;
    cfg.rt.faults.suspicion.enabled = true;
    cfg.rt.faults.suspicion.suspect_after_s = 20e-3;
    cfg.rt.faults.suspicion.dead_after_s = 60e-3;
    cfg.crash_rank = s.nprocs - 1;
    cfg.crash_at_frac = 0.30;
    cfg.restart_at_frac = 0.45;
    cfg.down_wait_s = 0.1;
  }
  const svc::SvcRtResult res = svc::runSvcRt(cfg, script);
  RunRow r = rowOf(res.totals, res.sojourn, res.queue_wait,
                   res.mean_info_age, res.mech_stats);
  r.digest = res.arrivals_digest;
  r.host_wall_s = res.wall_s;
  return r;
}

std::string us(double seconds) { return Table::fmt(seconds * 1e6, 1); }

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::BenchEnv::parse(argc, argv);
  const CliFlags flags(argc, argv);
  const int nprocs = static_cast<int>(flags.getInt("n", 8));
  const int requests = static_cast<int>(flags.getInt(
      "requests",
      std::max<std::int64_t>(
          500, std::llround(100000.0 * env.effectiveScale()))));
  // Triage filters: run one policy and/or one condition cell in isolation.
  const std::string only_policy = flags.getString("policy", "");
  const std::string only_condition = flags.getString("condition", "");
  const BenchShape shape = makeShape(nprocs, requests, env.seed);
  const svc::ArrivalScript script = svc::generateArrivals(shape.arrivals);

  std::cout << "Open-loop service sojourn — " << requests << " requests, "
            << nprocs - 1 << " heterogeneous servers + 1 dispatcher, MMPP "
            << "at 70% capacity (" << Table::fmt(shape.capacity_hz, 0)
            << " req/s aggregate)\n\n";

  bench::JsonResults json("svc_sojourn", env);
  Table t("Sojourn time by dispatch policy and condition");
  t.setHeader({"policy", "condition", "done", "dropped", "mean us",
               "p50 us", "p99 us", "info age us", "state msgs"});

  for (const svc::PolicyKind policy : svc::allPolicyKinds()) {
    if (!only_policy.empty() && only_policy != svc::policyKindName(policy))
      continue;
    for (const Condition& c : kConditions) {
      if (!only_condition.empty() && only_condition != c.name) continue;
      std::cerr << "[cell] " << svc::policyKindName(policy) << " / "
                << c.name << " ..." << std::endl;
      const RunRow r = c.rt ? runRt(shape, policy, c.faulty, script)
                            : runSim(shape, policy, c.faulty, script);
      t.addRow({svc::policyKindName(policy), c.name,
                std::to_string(r.totals.completed),
                std::to_string(r.totals.dropped()), us(r.sojourn_mean),
                us(r.p50), us(r.p99), us(r.mean_info_age),
                std::to_string(r.state_messages)});

      obs::BenchResultRecord rec;
      rec.problem = "svc_open_loop";
      rec.mechanism = svc::policyKindName(policy);
      rec.strategy = c.name;
      rec.nprocs = nprocs;
      rec.completed = true;
      rec.schedule_digest = r.digest;
      std::map<std::string, double> extra{
          {"requests", static_cast<double>(requests)}};
      if (c.rt) {
        // Threaded runs: everything timing-dependent is host-volatile.
        extra["host_completed"] = static_cast<double>(r.totals.completed);
        extra["host_dropped"] = static_cast<double>(r.totals.dropped());
        extra["host_sojourn_mean_s"] = r.sojourn_mean;
        extra["host_sojourn_p50_s"] = r.p50;
        extra["host_sojourn_p95_s"] = r.p95;
        extra["host_sojourn_p99_s"] = r.p99;
        extra["host_queue_mean_s"] = r.queue_mean;
        extra["host_info_age_s"] = r.mean_info_age;
        extra["host_state_messages"] =
            static_cast<double>(r.state_messages);
        extra["host_wall_s"] = r.host_wall_s;
      } else {
        rec.makespan_s = r.sim_makespan_s;
        rec.sim_events = r.sim_events;
        rec.state_messages = r.state_messages;
        extra["completed"] = static_cast<double>(r.totals.completed);
        extra["dropped_no_candidate"] =
            static_cast<double>(r.totals.dropped_no_candidate);
        extra["dropped_server_crash"] =
            static_cast<double>(r.totals.dropped_server_crash);
        extra["dropped_lost"] = static_cast<double>(r.totals.dropped_lost);
        extra["sojourn_mean_s"] = r.sojourn_mean;
        extra["sojourn_p50_s"] = r.p50;
        extra["sojourn_p95_s"] = r.p95;
        extra["sojourn_p99_s"] = r.p99;
        extra["queue_mean_s"] = r.queue_mean;
        extra["info_age_s"] = r.mean_info_age;
      }
      json.add(std::move(rec), std::move(extra));
    }
  }

  t.setFootnote(
      "References: shortest_queue reads the live board (oracle), "
      "stale_shortest_queue a periodic snapshot of it; the mechanism rows "
      "route through requestView/commitSelection. rt sojourns measure "
      "dispatch + transport only (no simulated service burn).");
  t.print(std::cout);
  return json.write() ? 0 : 1;
}
