// Fault injection — degradation of decision quality and message overhead
// under state-channel message loss, per mechanism, plus a crash scenario.
//
// Not a paper table: the paper assumes a perfectly reliable network. This
// driver measures what the hardened protocols (ack/timeout/retry, see
// DESIGN.md) cost and buy on a lossy platform:
//  * sweep drop rate in {0, 0.1%, 1%, 5%} on the state channel only (the
//    application's task traffic is kept intact — the object of study is
//    the load-exchange protocol);
//  * hardened increment and snapshot must complete every run — no
//    deadlock, no permanent view divergence — including 5% loss combined
//    with one crashed process (synthetic load churn for the crash case:
//    a crashed rank can never finish a factorization's tree nodes).
#include <iostream>

#include "bench_common.h"
#include "core/binding.h"
#include "sim/world.h"

using namespace loadex;

namespace {

struct SweepRow {
  double drop = 0.0;
  solver::SolverResult res;
};

solver::SolverConfig faultyConfig(core::MechanismKind kind, double drop) {
  auto cfg = bench::defaultConfig(32, kind, solver::Strategy::kWorkload);
  // Aggressive type-2 thresholds: plenty of dynamic decisions even at
  // --quick scale, so the drop rate actually stresses the protocols.
  cfg.mapping.type2_min_front = 80;
  cfg.mapping.type2_min_border = 8;
  cfg.network.faults.drop_prob = drop;
  cfg.network.faults.affects_app = false;  // state channel only
  if (kind == core::MechanismKind::kIncrement) {
    cfg.mech.reliability.reliable_updates = drop > 0.0;
  } else if (kind == core::MechanismKind::kSnapshot) {
    if (drop > 0.0) cfg.mech.reliability.snapshot_timeout_s = 5e-3;
  }
  return cfg;
}

/// Peak-memory imbalance max/avg: the decision-quality proxy (1.0 = the
/// selections spread load perfectly despite the degraded views).
double imbalance(const solver::SolverResult& r) {
  return r.avg_peak_active_mem > 0.0
             ? r.peak_active_mem / r.avg_peak_active_mem
             : 0.0;
}

// ---- crash scenario: synthetic load churn ---------------------------------

/// Round-robin load churn on every rank; rank `crash_rank` crashes at
/// `crash_at`. Success = the world quiesces (no deadlock) and every
/// surviving rank's view of every surviving rank matches that rank's true
/// load (no permanent divergence).
struct CrashOutcome {
  bool quiesced = false;
  bool views_converged = false;
  std::int64_t dropped = 0;
  std::int64_t retransmissions = 0;
  std::int64_t declared_dead = 0;
};

CrashOutcome runCrashChurn(core::MechanismKind kind, double drop,
                           int nprocs, Rank crash_rank, SimTime crash_at) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = nprocs;
  wcfg.network.faults.drop_prob = drop;
  wcfg.network.faults.affects_app = false;
  wcfg.process_faults.push_back(
      {crash_rank, crash_at, sim::ProcessFaultEvent::Kind::kCrash});

  core::MechanismConfig mcfg;
  mcfg.threshold = {0.5, 1e18};
  if (kind == core::MechanismKind::kIncrement)
    mcfg.reliability.reliable_updates = true;
  if (kind == core::MechanismKind::kSnapshot)
    mcfg.reliability.snapshot_timeout_s = 1e-3;

  sim::World world(wcfg);
  core::MechanismSet mechs(world, kind, mcfg);
  for (Rank r = 0; r < nprocs; ++r) world.attach(r, nullptr, &mechs.at(r));

  // 200 churn events spread over 0.4 s; the crash lands mid-churn. For
  // the snapshot mechanism churn stays local (it broadcasts nothing), so
  // add periodic decisions from rank 0 to exercise the full protocol.
  for (int i = 0; i < 200; ++i) {
    const Rank r = static_cast<Rank>(i % nprocs);
    world.queue().scheduleAt(2e-3 * i, [&mechs, r] {
      if (r == 0 && mechs.at(0).kind() == core::MechanismKind::kSnapshot) {
        if (mechs.at(0).blocksComputation()) return;  // snapshot still live
        mechs.at(0).requestView([&mechs](const core::LoadView&) {
          mechs.at(0).commitSelection({});
        });
        return;
      }
      if (mechs.at(r).kind() == core::MechanismKind::kSnapshot &&
          mechs.at(r).blocksComputation())
        return;  // frozen processes take no local decisions
      mechs.at(r).addLocalLoad({1.0, 0.0});
    });
  }

  const auto run = world.run(/*until=*/60.0);
  CrashOutcome out;
  out.quiesced = !run.hit_limit;
  out.dropped = run.messages_dropped;

  core::MechanismStats total;
  for (Rank r = 0; r < nprocs; ++r) mechs.at(r).stats().mergeInto(total);
  out.retransmissions = total.retransmissions;
  out.declared_dead = total.ranks_declared_dead;

  out.views_converged = true;
  for (Rank viewer = 0; viewer < nprocs; ++viewer) {
    if (viewer == crash_rank) continue;
    for (Rank subject = 0; subject < nprocs; ++subject) {
      if (subject == crash_rank) continue;
      // The increment mechanism must agree exactly; the snapshot's
      // maintained entries are only refreshed per decision, so compare
      // what the last completed snapshot could know: skip non-initiators.
      if (kind == core::MechanismKind::kSnapshot && viewer != 0) continue;
      const double seen = mechs.at(viewer).view().load(subject).workload;
      const double truth = mechs.at(subject).localLoad().workload;
      if (kind == core::MechanismKind::kIncrement && seen != truth)
        out.views_converged = false;
      if (kind == core::MechanismKind::kSnapshot &&
          std::abs(seen - truth) > 2.0)  // at most the churn since the
        out.views_converged = false;     // last snapshot of the run
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  bench::JsonResults json("faults_degradation", env);
  sparse::Problem p;
  p.name = "grid3d";
  p.symmetric = true;
  const int side = std::max(12, static_cast<int>(16 * env.effectiveScale()));
  p.pattern = sparse::grid3d(side, side, side);
  const auto analysis = solver::analyzeProblem(p);

  const double drops[] = {0.0, 0.001, 0.01, 0.05};

  for (const auto kind : {core::MechanismKind::kNaive,
                          core::MechanismKind::kIncrement,
                          core::MechanismKind::kSnapshot}) {
    Table t(std::string("Fault degradation — ") + mechanismKindName(kind) +
            " (32 procs, state-channel loss" +
            (kind == core::MechanismKind::kNaive
                 ? ", no hardening applicable)"
                 : ", hardened when drop > 0)"));
    t.setHeader({"drop", "completed", "time", "imbalance", "msgs",
                 "wire bytes", "retrans", "nacks", "snp timeouts",
                 "fallbacks"});
    for (const double drop : drops) {
      std::cerr << "  [run] " << mechanismKindName(kind) << " drop=" << drop
                << "\n";
      const auto res = solver::runSolver(analysis, p.symmetric,
                                         faultyConfig(kind, drop), p.name);
      // Identity-bearing extras (no host_ prefix): the sim is seeded and
      // deterministic, so the whole trajectory is diffable run-to-run.
      json.add(res, {{"drop_prob", drop}, {"imbalance", imbalance(res)}});
      t.addRow({Table::fmt(drop * 100, 1) + "%",
                res.completed ? "yes" : "NO", Table::fmt(res.factor_time, 4),
                Table::fmt(imbalance(res), 2),
                Table::fmtInt(res.state_messages),
                Table::fmtInt(res.state_wire_bytes),
                Table::fmtInt(res.retransmissions),
                Table::fmtInt(res.nacks_sent),
                Table::fmtInt(res.snapshot_timeouts),
                Table::fmtInt(res.local_fallbacks)});
    }
    t.print(std::cout);
  }

  {
    Table t("Crash + 5% loss — hardened protocols on synthetic churn "
            "(16 procs, rank 5 crashes mid-run)");
    t.setHeader({"mechanism", "quiesced", "views converged", "dropped",
                 "retrans", "ranks declared dead"});
    for (const auto kind : {core::MechanismKind::kIncrement,
                            core::MechanismKind::kSnapshot}) {
      std::cerr << "  [run] crash churn " << mechanismKindName(kind) << "\n";
      const auto out = runCrashChurn(kind, 0.05, 16, 5, 0.2);
      obs::BenchResultRecord rec;
      rec.problem = "crash_churn";
      rec.mechanism = mechanismKindName(kind);
      rec.strategy = "hardened";
      rec.nprocs = 16;
      rec.completed = out.quiesced && out.views_converged;
      json.add(std::move(rec),
               {{"drop_prob", 0.05},
                {"dropped", static_cast<double>(out.dropped)},
                {"retransmissions",
                 static_cast<double>(out.retransmissions)},
                {"ranks_declared_dead",
                 static_cast<double>(out.declared_dead)}});
      t.addRow({mechanismKindName(kind), out.quiesced ? "yes" : "NO",
                out.views_converged ? "yes" : "NO",
                Table::fmtInt(out.dropped), Table::fmtInt(out.retransmissions),
                Table::fmtInt(out.declared_dead)});
    }
    t.setFootnote(
        "Success criterion: every run quiesces (no deadlock) and surviving "
        "ranks' views match the true loads (no permanent divergence).");
    t.print(std::cout);
  }
  return json.write() ? 0 : 1;
}
