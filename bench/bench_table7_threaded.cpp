// Table 7 — impact of the threaded load-exchange mechanisms (§4.5): a
// communication thread polls the state channel every 50 microseconds, so
// state messages no longer wait for the running task to end.
//
// Expected shape (paper): both mechanisms improve; the snapshot stall
// time collapses (CONV3D64 @128: 100 s -> 14 s) but snapshot still loses
// to increments. The CONV3D64 stall row reproduces that §4.5 claim.
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  bench::JsonResults json("table7_threaded", env);
  const auto problems =
      bench::analyzeSuite(sparse::paperSuiteLarge(env.effectiveScale(),
                                                  env.seed));

  for (const int np : {64, 128}) {
    Table t("Table 7(" + std::string(np == 64 ? "a" : "b") +
            ") — threaded mechanisms, factorization time (simulated s), " +
            std::to_string(np) + " processes (measured)");
    t.setHeader({"Matrix", "Incr", "Incr+thread", "Snap", "Snap+thread",
                 "snap stall", "snap stall+thread"});
    for (const auto& ap : problems) {
      std::cerr << "  [run] " << ap.problem.name << " p" << np << "\n";
      std::vector<solver::SolverResult> r;
      for (const bool threaded : {false, true}) {
        for (const auto kind : {core::MechanismKind::kIncrement,
                                core::MechanismKind::kSnapshot}) {
          auto cfg = bench::defaultConfig(np, kind,
                                          solver::Strategy::kWorkload);
          cfg.process.comm_thread = threaded;
          cfg.process.poll_period_s = 50e-6;  // the paper's 50 us
          r.push_back(solver::runSolver(ap.analysis, ap.problem.symmetric,
                                        cfg, ap.problem.name));
        }
      }
      // r = {incr, snap, incr+thr, snap+thr}. The stall columns come from
      // the loadex_obs snapshot/stall metrics (via SolverResult), not from
      // re-derived arithmetic — the same numbers a trace of the run shows.
      t.addRow({ap.problem.name, Table::fmt(r[0].factor_time, 2),
                Table::fmt(r[2].factor_time, 2),
                Table::fmt(r[1].factor_time, 2),
                Table::fmt(r[3].factor_time, 2),
                Table::fmt(r[1].snapshot_time, 2),
                Table::fmt(r[3].snapshot_time, 2)});
      for (std::size_t i = 0; i < r.size(); ++i)
        json.add(r[i], {{"comm_thread", i >= 2 ? 1.0 : 0.0}});
    }
    t.print(std::cout);
  }
  json.write();

  bench::printPaperReference(
      "Table 7(a), 64 procs (threaded times)",
      {"Matrix", "Incr+thr", "Snap+thr", "(plain: incr / snap)"},
      {{"AUDIKW_1", "79.54", "114.96", "94.74 / 141.62"},
       {"CONV3D64", "367.28", "432.71", "381.27 / 688.39"},
       {"ULTRASOUND80", "49.56", "69.60", "48.69 / 85.68"}});
  bench::printPaperReference(
      "Table 7(b), 128 procs (threaded times)",
      {"Matrix", "Incr+thr", "Snap+thr", "(plain: incr / snap)"},
      {{"AUDIKW_1", "41.00", "59.19", "53.51 / 87.70"},
       {"CONV3D64", "189.47", "237.69", "178.88 / 315.63"},
       {"ULTRASOUND80", "35.91", "52.00", "35.12 / 66.53"}});
  std::cout << "Paper §4.5: CONV3D64 @128, total snapshot stall dropped "
               "from ~100 s to ~14 s with the thread.\n";
  return 0;
}
