// Ablation (paper §5 perspective) — "it would be interesting to study
// some issues such as the criterion used to elect the leader, which
// probably [has] a significant impact on the overall behaviour."
//
// Compares leader-election policies for the snapshot mechanism, plus the
// faithful-vs-hardened re-arm rule for preempted initiators.
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  auto problem = sparse::paperSuiteLarge(env.effectiveScale(), env.seed)[1];
  std::cerr << "  [analyze] " << problem.name << "\n";
  const auto analysis = solver::analyzeProblem(problem);

  Table t("Leader-election ablation — " + problem.name +
          ", 64 processes, snapshot mechanism, workload-based scheduling");
  t.setHeader({"election", "rearm rule", "time (s)", "stall (s)", "msgs",
               "rearms", "peak mem (Me)"});
  for (const auto policy :
       {core::ElectionPolicy::kMinRank, core::ElectionPolicy::kMaxRank,
        core::ElectionPolicy::kHashedRank}) {
    for (const bool hardened : {true, false}) {
      auto cfg = bench::defaultConfig(64, core::MechanismKind::kSnapshot,
                                      solver::Strategy::kWorkload);
      cfg.mech.election = policy;
      cfg.mech.rearm_on_every_preemption = hardened;
      std::cerr << "  [run] " << core::electionPolicyName(policy)
                << (hardened ? " hardened" : " faithful") << "\n";
      const auto res = solver::runSolver(analysis, problem.symmetric, cfg,
                                         problem.name);
      t.addRow({core::electionPolicyName(policy),
                hardened ? "hardened" : "paper", Table::fmt(res.factor_time, 2),
                Table::fmt(res.snapshot_time, 2),
                Table::fmtInt(res.state_messages), Table::fmtInt(res.rearms),
                bench::mega(res.peak_active_mem)});
    }
  }
  t.setFootnote(
      "\"paper\" follows the pseudocode: re-arm only while nb_snp == 1. "
      "\"hardened\" (the default) re-arms with a fresh request id whenever "
      "another snapshot completes while the view is incomplete, so the "
      "view postdates every decision the initiator has heard of — a few "
      "hundred extra messages for a strictly stronger guarantee. The "
      "election criterion itself moves the time by ~10-15%, confirming "
      "the paper's §5 suspicion that it matters.");
  t.print(std::cout);
  return 0;
}
