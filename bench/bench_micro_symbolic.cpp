// Micro-benchmarks of the symbolic pipeline (ordering, etree, counts,
// amalgamation) on a 3-D grid problem.
#include <benchmark/benchmark.h>

#include "ordering/ordering.h"
#include "sparse/generators.h"
#include "symbolic/analysis.h"

using namespace loadex;

namespace {

const sparse::Pattern& grid() {
  static const sparse::Pattern g = sparse::grid3d(16, 16, 16);
  return g;
}

void BM_NestedDissection(benchmark::State& state) {
  for (auto _ : state) {
    auto perm = ordering::nestedDissection(grid());
    benchmark::DoNotOptimize(perm.data());
  }
}
BENCHMARK(BM_NestedDissection);

void BM_Rcm(benchmark::State& state) {
  for (auto _ : state) {
    auto perm = ordering::reverseCuthillMcKee(grid());
    benchmark::DoNotOptimize(perm.data());
  }
}
BENCHMARK(BM_Rcm);

void BM_EliminationTree(benchmark::State& state) {
  static const auto permuted = grid().permuted(ordering::nestedDissection(grid()));
  for (auto _ : state) {
    auto parent = symbolic::eliminationTree(permuted);
    benchmark::DoNotOptimize(parent.data());
  }
}
BENCHMARK(BM_EliminationTree);

void BM_ColumnCounts(benchmark::State& state) {
  static const auto permuted = grid().permuted(ordering::nestedDissection(grid()));
  static const auto parent0 = symbolic::eliminationTree(permuted);
  static const auto post = symbolic::postorder(parent0);
  static const auto reordered = permuted.permuted(post);
  static const auto parent = symbolic::eliminationTree(reordered);
  for (auto _ : state) {
    auto cc = symbolic::columnCounts(reordered, parent);
    benchmark::DoNotOptimize(cc.data());
  }
}
BENCHMARK(BM_ColumnCounts);

void BM_FullAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    auto a = symbolic::analyze(grid(), ordering::nestedDissection(grid()));
    benchmark::DoNotOptimize(a.factor_nnz);
  }
}
BENCHMARK(BM_FullAnalysis);

}  // namespace
