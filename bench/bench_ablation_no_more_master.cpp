// Ablation (§2.3) — the No_more_master optimisation.
//
// "Typically, we observed that the number of messages could be divided
// by 2 in the case of our test application, MUMPS."
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  const auto problems =
      bench::analyzeSuite(sparse::paperSuiteLarge(env.effectiveScale(),
                                                  env.seed));

  Table t("No_more_master ablation — increments mechanism, 64 processes, "
          "workload-based scheduling");
  t.setHeader({"Matrix", "msgs with NMM", "msgs without", "reduction",
               "time with (s)", "time without (s)"});
  for (const auto& ap : problems) {
    auto with_cfg = bench::defaultConfig(64, core::MechanismKind::kIncrement,
                                         solver::Strategy::kWorkload);
    auto without_cfg = with_cfg;
    without_cfg.mech.no_more_master = false;
    without_cfg.app.announce_no_more_master = false;
    std::cerr << "  [run] " << ap.problem.name << "\n";
    const auto with_nmm = solver::runSolver(ap.analysis, ap.problem.symmetric,
                                            with_cfg, ap.problem.name);
    const auto without = solver::runSolver(ap.analysis, ap.problem.symmetric,
                                           without_cfg, ap.problem.name);
    t.addRow({ap.problem.name, Table::fmtInt(with_nmm.state_messages),
              Table::fmtInt(without.state_messages),
              "x" + Table::fmt(static_cast<double>(without.state_messages) /
                                   std::max<std::int64_t>(
                                       1, with_nmm.state_messages),
                               2),
              Table::fmt(with_nmm.factor_time, 2),
              Table::fmt(without.factor_time, 2)});
  }
  t.setFootnote("Paper §2.3: the optimisation roughly halved the message "
                "count in MUMPS.");
  t.print(std::cout);
  return 0;
}
