// Weak-scaling benchmark of the simulation kernel itself.
//
// The paper's tables stop at 128 processes; this driver measures how the
// *simulator* scales when the platform grows: N ∈ {32, 128, 512, 2048}
// ranks, each receiving the same per-rank load churn (weak scaling), every
// churn step crossing the mechanism threshold so the platform sustains a
// broadcast storm — the worst case for the O(N) eager fan-out the pooled
// kernel replaces.
//
// Every configuration runs twice, once per kernel:
//   lazy    — logical broadcast events, slab-pooled queue (the default)
//   legacy  — NetworkConfig::legacy_kernel, one event per destination
// Both produce bit-identical schedules (asserted here via the digest);
// what differs is the cost: wall time, events/sec and — the headline —
// pool allocations on the broadcast path (lazy ≈ 1 node per broadcast,
// legacy ≈ 1 per delivery, a ≥fan-out× reduction).
//
// --json emits one record per (N, mechanism, kernel) with the allocation
// counters as deterministic extras and the host measurements (wall time,
// events/sec, peak RSS) as volatile "host_" extras, which the diff tool
// excludes from record identity.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.h"
#include "common/rng.h"
#include "harness/world_harness.h"

using namespace loadex;

namespace {

/// Current peak resident set size in KiB (0 where unavailable).
double peakRssKib() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // bytes on macOS
#else
  return static_cast<double>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0.0;
#endif
}

struct RunStats {
  sim::RunResult result;
  double wall_s = 0.0;
  std::int64_t state_messages = 0;
  Bytes state_payload_bytes = 0;
  Bytes state_wire_bytes = 0;
  sim::PoolStats pool;
  sim::BroadcastPathStats bcast;
};

/// One weak-scaled broadcast-storm run: `churn` threshold-crossing load
/// variations per rank, at seeded pseudo-random instants in [0, 1).
RunStats runOne(int nprocs, core::MechanismKind kind, bool legacy_kernel,
                int churn, std::uint64_t seed) {
  sim::WorldConfig wcfg;
  wcfg.network.legacy_kernel = legacy_kernel;
  core::MechanismConfig mcfg;
  mcfg.threshold = {1.0, 1.0};
  harness::CoreHarness h(nprocs, kind, mcfg, wcfg);

  Rng rng(seed);
  for (int step = 0; step < churn; ++step)
    for (Rank r = 0; r < nprocs; ++r) {
      const SimTime t = rng.uniformReal(0.0, 1.0);
      h.at(t, [&h, r] { h.mechs.at(r).addLocalLoad({2.0, 1.0}); });
    }

  RunStats s;
  const auto t0 = std::chrono::steady_clock::now();  // loadex-lint: allow(banned-wallclock) measures the simulator, never feeds the simulation
  s.result = h.run();
  const auto t1 = std::chrono::steady_clock::now();  // loadex-lint: allow(banned-wallclock) measures the simulator, never feeds the simulation
  s.wall_s = std::chrono::duration<double>(t1 - t0).count();
  s.state_messages = h.world.network().messageCounts().get("state");
  s.state_wire_bytes = h.world.network().bytesSent(sim::Channel::kState);
  for (Rank r = 0; r < nprocs; ++r)
    s.state_payload_bytes += h.mechs.at(r).stats().bytes_sent;
  s.pool = h.world.queue().poolStats();
  s.bcast = h.world.network().broadcastStats();
  return s;
}

obs::BenchResultRecord toRecord(int nprocs, core::MechanismKind kind,
                                const char* kernel, const RunStats& s) {
  obs::BenchResultRecord rec;
  rec.problem = "weak_scale_storm";
  rec.mechanism = core::mechanismKindName(kind);
  rec.strategy = kernel;  ///< record identity: which kernel ran
  rec.nprocs = nprocs;
  rec.completed = true;
  rec.makespan_s = s.result.end_time;
  rec.sim_events = s.result.events;
  rec.state_messages = s.state_messages;
  rec.state_bytes = s.state_payload_bytes;
  rec.state_wire_bytes = s.state_wire_bytes;
  rec.schedule_digest = s.result.schedule_digest;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::BenchEnv::parse(argc, argv);
  const CliFlags flags(argc, argv);
  // --n <world size>: run a single point (CI smoke); 0 = full sweep.
  const int only_n = static_cast<int>(flags.getInt("n", 0));
  const int churn =
      std::max(1, static_cast<int>(std::lround(4.0 * env.effectiveScale())));

  std::vector<int> sizes{32, 128, 512, 2048};
  if (only_n > 0) sizes.assign(1, only_n);

  std::cout << "Weak scaling of the simulation kernel — " << churn
            << " threshold-crossing load variations per rank, every one a "
               "full broadcast\n\n";

  bench::JsonResults json("scale_weak", env);
  Table t("Broadcast-storm weak scaling, lazy vs legacy kernel");
  t.setHeader({"N", "mechanism", "kernel", "wall s", "events/s", "msgs",
               "pool allocs", "alloc ratio"});

  bool digests_agree = true;
  for (const int n : sizes) {
    for (const auto kind :
         {core::MechanismKind::kNaive, core::MechanismKind::kIncrement}) {
      const RunStats lazy = runOne(n, kind, /*legacy_kernel=*/false, churn,
                                   env.seed);
      const RunStats legacy = runOne(n, kind, /*legacy_kernel=*/true, churn,
                                     env.seed);
      if (lazy.result.schedule_digest != legacy.result.schedule_digest) {
        digests_agree = false;
        std::cerr << "ERROR: kernel schedule digests diverge at N=" << n
                  << " kind=" << core::mechanismKindName(kind) << "\n";
      }
      // Broadcast-path allocation ratio. The schedules are digest-checked
      // identical, so the legacy kernel pays exactly one pool node per
      // fan-out delivery where the lazy kernel pays one per logical
      // broadcast: fanout_deliveries / logical_broadcasts is the saving
      // on the broadcast path (receiver-side treatment events are the
      // same in both kernels and excluded).
      const double ratio =
          lazy.bcast.logical_broadcasts == 0
              ? 1.0
              : static_cast<double>(lazy.bcast.fanout_deliveries) /
                    static_cast<double>(lazy.bcast.logical_broadcasts);
      const std::pair<const char*, const RunStats*> sides[] = {
          {"lazy", &lazy}, {"legacy", &legacy}};
      for (const auto& [side, sp] : sides) {
        const RunStats& s = *sp;
        const bool is_lazy = sp == &lazy;
        t.addRow({std::to_string(n), core::mechanismKindName(kind), side,
                  Table::fmt(s.wall_s, 3),
                  Table::fmt(static_cast<double>(s.result.events) /
                                 std::max(s.wall_s, 1e-12),
                             0),
                  std::to_string(s.state_messages),
                  std::to_string(s.pool.node_allocations),
                  is_lazy ? Table::fmt(ratio, 1) + "x" : "1.0x"});
        json.add(
            toRecord(n, kind, side, s),
            {{"churn_per_rank", static_cast<double>(churn)},
             {"pool_node_allocations",
              static_cast<double>(s.pool.node_allocations)},
             {"pool_free_list_reuses",
              static_cast<double>(s.pool.free_list_reuses)},
             {"pool_chunks", static_cast<double>(s.pool.pool_chunks)},
             {"broadcasts_logical",
              static_cast<double>(s.bcast.logical_broadcasts)},
             {"broadcast_deliveries",
              static_cast<double>(s.bcast.fanout_deliveries)},
             {"bcast_alloc_ratio_vs_legacy", is_lazy ? ratio : 1.0},
             {"host_wall_s", s.wall_s},
             {"host_events_per_s", static_cast<double>(s.result.events) /
                                       std::max(s.wall_s, 1e-12)},
             {"host_peak_rss_kib", peakRssKib()}});
      }
    }
  }
  t.setFootnote(
      "alloc ratio = broadcast-path pool allocations, legacy / lazy, for "
      "the identical (digest-checked) schedule: the lazy kernel pays one "
      "node per logical broadcast where the legacy kernel pays one per "
      "fan-out delivery. Total pool allocs include the receiver-side "
      "message-treatment events, identical in both kernels.");
  t.print(std::cout);
  if (!json.write()) return 1;
  return digests_agree ? 0 : 1;
}
