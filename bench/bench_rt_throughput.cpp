// Throughput and latency of the real-threads runtime (src/rt).
//
// Two layers are measured:
//
//   mailbox — raw envelope throughput of one bounded MPSC mailbox, ring vs
//     mutex implementation, 1 and 4 producer threads against the single
//     consumer. This is the fabric every rt message rides on.
//
//   end-to-end — a seeded selection script (harness::Script shape: load
//     storm + master selections) replayed by rt::WorkloadDriver over a
//     full RtWorld, for N ∈ {4, 8, 16} ranks × the three paper mechanisms.
//     Reported: state messages/sec through the mailboxes and the
//     requestView → view-callback latency (the real-time cost of a
//     scheduling decision, the quantity the paper's Table 5 approximates
//     in simulated time).
//
//   weak scaling (--weak) — ranks ≫ cores on the M:N executor: N ∈
//     {64, 256, 1024} ranks with constant per-rank work on a pinned
//     8-worker pool, so the rank count grows 16× while the core budget
//     stays fixed. Reported per (N, mechanism): delivered state messages,
//     throughput and wall time. The --json records carry a deterministic
//     schedule digest (an FNV fold of the generated script, the only
//     replayable identity of a threaded run) so CI can gate the N=256
//     point against bench/baselines/rt_weak_n256.json; --n runs a single
//     N for that job.
//
// Every measured number here is host-volatile — thread scheduling, not
// simulation, decides it — so --json emits them all as "host_"-prefixed
// extras; record identity is only (problem, mechanism, strategy, nprocs)
// plus the deterministic script-shape extras of the weak mode.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/rng.h"
#include "harness/script.h"
#include "rt/clock.h"
#include "rt/mailbox.h"
#include "rt/workload.h"
#include "rt/world.h"

using namespace loadex;

namespace {

// ---- raw mailbox throughput -----------------------------------------------

struct MailboxRun {
  std::uint64_t msgs = 0;
  double wall_s = 0.0;
  std::uint64_t full_rejections = 0;
  double msgsPerS() const { return static_cast<double>(msgs) / wall_s; }
};

MailboxRun runMailbox(bool lock_free_ring, int producers,
                      std::uint64_t msgs_total) {
  rt::MailboxConfig cfg;
  cfg.lock_free_ring = lock_free_ring;
  rt::Mailbox mb(cfg);
  const std::uint64_t per = msgs_total / static_cast<std::uint64_t>(producers);

  const rt::MonotonicClock clock;
  const SimTime t0 = clock.now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&mb, per] {
      for (std::uint64_t i = 0; i < per; ++i) {
        rt::Envelope e;
        e.kind = rt::Envelope::Kind::kState;
        e.msg.tag = static_cast<int>(i);
        mb.push(std::move(e));
      }
    });
  }
  std::uint64_t got = 0;
  rt::Envelope e;
  const std::uint64_t want = per * static_cast<std::uint64_t>(producers);
  while (got < want) {
    if (mb.pop(e, 1.0)) ++got;
  }
  for (auto& t : threads) t.join();

  MailboxRun r;
  r.msgs = got;
  r.wall_s = std::max(clock.now() - t0, 1e-12);
  r.full_rejections = mb.stats().full_rejections;
  return r;
}

// ---- end-to-end selection runs --------------------------------------------

/// Same hostile shape as tests/test_rt_stress.cpp: every load change
/// crosses the threshold, several masters take decisions mid-storm.
harness::Script benchScript(std::uint64_t seed, int nprocs,
                            core::MechanismKind kind, double scale) {
  Rng rng(seed);
  harness::Script s;
  s.seed = seed;
  s.nprocs = nprocs;
  s.kind = kind;
  s.threshold = 1.0;
  const int nloads = static_cast<int>(nprocs * 40 * scale);
  for (int i = 0; i < nloads; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0),
                       static_cast<Rank>(rng.uniformInt(
                           static_cast<std::uint64_t>(nprocs))),
                       {rng.uniformReal(2.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});
  for (int i = 0; i < 8; ++i)
    s.selections.push_back({rng.uniformReal(0.3, 0.9),
                            static_cast<Rank>(rng.uniformInt(
                                static_cast<std::uint64_t>(nprocs))),
                            rng.uniformReal(5.0, 40.0)});
  return s;
}

struct EndToEndRun {
  rt::WorkloadResult result;
  rt::RtRunStats stats;
  double latency_mean_s = 0.0;
  double latency_p95_s = 0.0;
  double stateMsgsPerS() const {
    return static_cast<double>(stats.state_delivered) /
           std::max(result.wall_s, 1e-12);
  }
};

EndToEndRun runEndToEnd(int nprocs, core::MechanismKind kind,
                        std::uint64_t seed, double scale) {
  const harness::Script s = benchScript(seed, nprocs, kind, scale);
  rt::RtConfig rcfg;
  rcfg.nprocs = nprocs;
  rt::RtWorld world(rcfg);
  core::MechanismSet mechs(world.transports(), kind,
                           [&] {
                             core::MechanismConfig m;
                             m.threshold = {s.threshold, s.threshold};
                             return m;
                           }());
  for (Rank r = 0; r < nprocs; ++r) world.attach(r, &mechs.at(r));
  world.start();
  rt::WorkloadDriver driver(world, mechs);
  EndToEndRun run;
  run.result = driver.run(s, /*time_scale=*/0.0, /*drain_timeout_s=*/120.0);
  world.stop();
  run.stats = world.runStats();

  std::vector<double> lat = run.result.selection_latency_s;
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    double sum = 0.0;
    for (const double l : lat) sum += l;
    run.latency_mean_s = sum / static_cast<double>(lat.size());
    run.latency_p95_s = lat[std::min(lat.size() - 1,
                                     static_cast<std::size_t>(
                                         0.95 * static_cast<double>(
                                                    lat.size())))];
  }
  return run;
}

std::string human(double v) { return Table::fmt(v / 1e6, 2) + "M"; }

// ---- weak scaling: ranks >> cores on the M:N executor -----------------------

constexpr int kWeakWorkers = 8;
constexpr int kWeakLoadsPerRank = 4;
constexpr int kWeakSelections = 8;

/// Constant per-rank work: every rank takes kWeakLoadsPerRank load
/// changes, so the injected op count grows linearly with N while the
/// 8-worker core budget stays fixed. (Broadcast mechanisms still pay
/// O(N) deliveries per threshold crossing — that fan-out is the scaling
/// cost the curve exists to show.)
harness::Script weakScript(std::uint64_t seed, int nprocs,
                           core::MechanismKind kind) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(nprocs) << 20) ^
          static_cast<std::uint64_t>(static_cast<int>(kind)));
  harness::Script s;
  s.seed = seed;
  s.nprocs = nprocs;
  s.kind = kind;
  s.threshold = 6.0;
  for (int i = 0; i < nprocs * kWeakLoadsPerRank; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0),
                       static_cast<Rank>(i % nprocs),  // even per-rank work
                       {rng.uniformReal(2.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});
  for (int i = 0; i < kWeakSelections; ++i)
    s.selections.push_back({rng.uniformReal(0.3, 0.9),
                            static_cast<Rank>(rng.uniformInt(
                                static_cast<std::uint64_t>(nprocs))),
                            rng.uniformReal(5.0, 40.0)});
  return s;
}

std::uint64_t fnv1a64(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t bitsOf(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Replay-identity fingerprint of a weak-scaling run: a threaded replay
/// has no deterministic event schedule, so the digest folds the script
/// itself — the plan both the baseline and the CI run must regenerate
/// bit-for-bit from the same seed.
std::uint64_t scriptDigest(const harness::Script& s) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  h = fnv1a64(h, static_cast<std::uint64_t>(s.nprocs));
  h = fnv1a64(h, static_cast<std::uint64_t>(static_cast<int>(s.kind)));
  h = fnv1a64(h, bitsOf(s.threshold));
  for (const auto& op : s.loads) {
    h = fnv1a64(h, static_cast<std::uint64_t>(op.rank));
    h = fnv1a64(h, bitsOf(op.time));
    h = fnv1a64(h, bitsOf(op.delta.workload));
    h = fnv1a64(h, bitsOf(op.delta.memory));
  }
  for (const auto& op : s.selections) {
    h = fnv1a64(h, static_cast<std::uint64_t>(op.master));
    h = fnv1a64(h, bitsOf(op.time));
    h = fnv1a64(h, bitsOf(op.share));
  }
  return h;
}

int runWeakScaling(const bench::BenchEnv& env, int only_n) {
  bench::JsonResults json("rt_weak", env);
  std::cout << "rt weak scaling — ranks >> cores on the M:N executor ("
            << kWeakWorkers << " workers, " << kWeakLoadsPerRank
            << " loads/rank)\n\n";
  Table wt("Weak scaling, state msgs/sec on a fixed 8-worker pool");
  wt.setHeader({"N", "ranks/worker", "state msgs", "msgs/s", "wall",
                "sel lat p95", "steal"});
  for (const int n : {64, 256, 1024}) {
    if (only_n != 0 && n != only_n) continue;
    for (const auto kind :
         {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
          core::MechanismKind::kSnapshot}) {
      const harness::Script s = weakScript(env.seed, n, kind);
      rt::RtConfig rcfg;
      rcfg.nprocs = n;
      rcfg.executor.workers = kWeakWorkers;
      // Default 4096-slot rings would cost hundreds of MB at N=1024;
      // small rings also keep the spill path in the measured loop.
      rcfg.mailbox.capacity = 256;
      rt::RtWorld world(rcfg);
      core::MechanismSet mechs(world.transports(), kind,
                               [&] {
                                 core::MechanismConfig m;
                                 m.threshold = {s.threshold, s.threshold};
                                 return m;
                               }());
      for (Rank r = 0; r < n; ++r) world.attach(r, &mechs.at(r));
      world.start();
      rt::WorkloadDriver driver(world, mechs);
      EndToEndRun run;
      run.result =
          driver.run(s, /*time_scale=*/0.0, /*drain_timeout_s=*/300.0);
      world.stop();
      run.stats = world.runStats();

      std::vector<double> lat = run.result.selection_latency_s;
      double p95 = 0.0;
      if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        p95 = lat[std::min(lat.size() - 1,
                           static_cast<std::size_t>(
                               0.95 * static_cast<double>(lat.size())))];
      }
      const std::int64_t visits =
          run.stats.shard_visits_home + run.stats.shard_visits_stolen;
      const double steal_ratio =
          visits > 0 ? static_cast<double>(run.stats.shard_visits_stolen) /
                           static_cast<double>(visits)
                     : 0.0;
      wt.addRow({std::to_string(n) + " " + core::mechanismKindName(kind),
                 std::to_string(n / kWeakWorkers),
                 std::to_string(run.stats.state_delivered),
                 Table::fmt(run.stateMsgsPerS(), 0),
                 Table::fmt(run.result.wall_s * 1e3, 1) + "ms",
                 Table::fmt(p95 * 1e6, 1) + "us",
                 Table::fmt(steal_ratio * 100.0, 1) + "%"});

      obs::BenchResultRecord rec;
      rec.problem = "rt_weak_scale";
      rec.mechanism = core::mechanismKindName(kind);
      rec.strategy = "mn8";  // M:N executor, 8 workers
      rec.nprocs = n;
      rec.completed = run.result.drained;
      rec.selections = run.result.selections_committed;
      rec.state_messages =
          static_cast<std::int64_t>(run.stats.state_delivered);
      rec.state_bytes = static_cast<std::int64_t>(run.stats.state_bytes);
      rec.schedule_digest = scriptDigest(s);
      json.add(std::move(rec),
               {// Deterministic script shape (part of the record identity).
                {"ranks_per_worker", static_cast<double>(n / kWeakWorkers)},
                {"script_loads", static_cast<double>(s.loads.size())},
                {"script_selections",
                 static_cast<double>(s.selections.size())},
                // Volatile host measurements.
                {"host_wall_s", run.result.wall_s},
                {"host_state_msgs_per_s", run.stateMsgsPerS()},
                {"host_selection_latency_p95_s", p95},
                {"host_spill_enqueues",
                 static_cast<double>(run.stats.spill_enqueues)},
                // Steal-rate accounting of the M:N pool: how much of the
                // shard traffic came from idle workers stealing foreign
                // shards vs visiting their own.
                {"host_shard_visits_home",
                 static_cast<double>(run.stats.shard_visits_home)},
                {"host_shard_visits_stolen",
                 static_cast<double>(run.stats.shard_visits_stolen)},
                {"host_steal_ratio", steal_ratio}});
    }
  }
  wt.setFootnote(
      "Constant per-rank work on a pinned 8-worker pool; broadcast "
      "mechanisms pay O(N) deliveries per crossing. Digests fingerprint "
      "the generated script (the replayable identity of a threaded run).");
  wt.print(std::cout);
  return json.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::BenchEnv::parse(argc, argv);
  const CliFlags flags(argc, argv);
  if (flags.getBool("weak", false))
    return runWeakScaling(env, static_cast<int>(flags.getInt("n", 0)));
  bench::JsonResults json("rt_throughput", env);

  // ---- mailbox layer ------------------------------------------------------
  const auto msgs_total = static_cast<std::uint64_t>(
      2e6 * env.effectiveScale());
  std::cout << "rt mailbox throughput — " << msgs_total
            << " envelopes through one MPSC mailbox\n\n";
  Table mt("Mailbox msgs/sec (single consumer)");
  mt.setHeader({"impl", "producers", "msgs/s", "full rejections"});
  for (const bool ring : {true, false}) {
    for (const int producers : {1, 4}) {
      const MailboxRun r = runMailbox(ring, producers, msgs_total);
      const char* impl = ring ? "ring" : "mutex";
      mt.addRow({impl, std::to_string(producers), human(r.msgsPerS()),
                 std::to_string(r.full_rejections)});
      obs::BenchResultRecord rec;
      rec.problem = "rt_mailbox";
      rec.strategy = impl;
      rec.nprocs = producers;  ///< producer threads, not ranks
      rec.completed = r.msgs == msgs_total / producers * producers;
      json.add(std::move(rec),
               {{"host_msgs_per_s", r.msgsPerS()},
                {"host_wall_s", r.wall_s},
                {"host_msgs", static_cast<double>(r.msgs)},
                {"host_full_rejections",
                 static_cast<double>(r.full_rejections)}});
    }
  }
  mt.print(std::cout);

  // ---- end-to-end layer ---------------------------------------------------
  std::cout << "\nrt end-to-end — selection scripts on real rank threads\n\n";
  Table et("End-to-end state msgs/sec and selection latency");
  et.setHeader({"N", "mechanism", "state msgs", "msgs/s", "sel lat mean",
                "sel lat p95"});
  for (const int n : {4, 8, 16}) {
    for (const auto kind :
         {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
          core::MechanismKind::kSnapshot}) {
      const EndToEndRun r =
          runEndToEnd(n, kind, env.seed, env.effectiveScale());
      et.addRow({std::to_string(n), core::mechanismKindName(kind),
                 std::to_string(r.stats.state_delivered),
                 Table::fmt(r.stateMsgsPerS(), 0),
                 Table::fmt(r.latency_mean_s * 1e6, 1) + "us",
                 Table::fmt(r.latency_p95_s * 1e6, 1) + "us"});
      obs::BenchResultRecord rec;
      rec.problem = "rt_end_to_end";
      rec.mechanism = core::mechanismKindName(kind);
      rec.strategy = "rt";
      rec.nprocs = n;
      rec.completed = r.result.drained;
      rec.selections = r.result.selections_committed;
      json.add(std::move(rec),
               {{"host_wall_s", r.result.wall_s},
                {"host_state_msgs",
                 static_cast<double>(r.stats.state_delivered)},
                {"host_state_msgs_per_s", r.stateMsgsPerS()},
                {"host_selection_latency_mean_s", r.latency_mean_s},
                {"host_selection_latency_p95_s", r.latency_p95_s},
                {"host_spill_enqueues",
                 static_cast<double>(r.stats.spill_enqueues)}});
    }
  }
  et.setFootnote(
      "All numbers are host measurements (thread scheduling decides them); "
      "the --json records carry them as host_ extras only.");
  et.print(std::cout);

  return json.write() ? 0 : 1;
}
