// Figure 1 — the naive mechanism's coherence failure, as a timeline.
//
// P2 is the least-loaded process but starts a long task at t1. P0 then
// selects a slave at t2 and P1 at t3. Under the naive mechanism P1 does
// not know about P0's decision (P2 is busy and cannot advertise it):
// P2 is chosen twice. The increment and snapshot mechanisms propagate
// the reservation and avoid the double booking.
#include <iostream>

#include "bench_common.h"
#include "harness/world_harness.h"

using namespace loadex;

namespace {

struct Outcome {
  std::vector<Rank> chosen;
  std::vector<SimTime> decided;
  double p2_final_load = 0.0;
};

Rank leastLoaded(const core::LoadView& v, Rank self) {
  Rank best = kNoRank;
  for (Rank r = 0; r < v.nprocs(); ++r) {
    if (r == self) continue;
    if (best == kNoRank || v.load(r).workload < v.load(best).workload)
      best = r;
  }
  return best;
}

Outcome run(core::MechanismKind kind) {
  sim::WorldConfig wcfg;
  wcfg.process.flops_per_s = 1e6;
  core::MechanismConfig mcfg;
  mcfg.threshold = {1.0, 1.0};
  harness::CoreHarness h(3, kind, mcfg, wcfg);

  Outcome out;
  h.at(0.1, [&] {
    h.mechs.at(0).addLocalLoad({50, 0});
    h.mechs.at(1).addLocalLoad({50, 0});
    h.mechs.at(2).addLocalLoad({10, 0});
  });
  h.at(1.0, [&] {  // t1: P2 starts a long task (until t = 11)
    h.app.pushTask(2, 10e6);
    h.world.process(2).notifyReadyWork();
  });
  auto selection = [&](Rank master) {
    auto& m = h.mechs.at(master);
    m.requestView([&, master](const core::LoadView& v) {
      const Rank slave = leastLoaded(v, master);
      out.chosen.push_back(slave);
      out.decided.push_back(h.world.now());
      m.commitSelection({{slave, {100.0, 0.0}}});
      // The delegated work arrives as a message: the slave accounts it
      // (the naive mechanism broadcasts here — only once the slave gets
      // to treat the message).
      harness::sendWork(h.world.process(master), slave, /*work=*/0.0,
                        {100.0, 0.0}, /*is_slave_delegated=*/true);
    });
  };
  // A master blocked by a live snapshot defers its decision (Algorithm 1).
  h.atWhenFree(2.0, 0, [&] { selection(0); }, 1e-4);  // t2
  h.atWhenFree(3.0, 1, [&] { selection(1); }, 1e-4);  // t3
  h.run();
  out.p2_final_load = h.mechs.at(2).localLoad().workload;
  return out;
}

}  // namespace

int main() {
  std::cout << "Figure 1 — coherence of load information under successive "
               "slave selections\n"
            << "Scenario: loads {P0: 50, P1: 50, P2: 10}; t1=1: P2 starts a "
               "10 s task; t2=2: P0 selects; t3=3: P1 selects.\n\n";
  Table t("Measured outcome per mechanism");
  t.setHeader({"Mechanism", "P0 chose", "@t", "P1 chose", "@t",
               "P2 final load", "double-booked?"});
  for (const auto kind :
       {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
        core::MechanismKind::kSnapshot}) {
    const Outcome o = run(kind);
    t.addRow({core::mechanismKindName(kind), "P" + std::to_string(o.chosen[0]),
              Table::fmt(o.decided[0], 2), "P" + std::to_string(o.chosen[1]),
              Table::fmt(o.decided[1], 2), Table::fmt(o.p2_final_load, 0),
              (o.chosen[0] == o.chosen[1]) ? "YES" : "no"});
  }
  t.setFootnote(
      "Paper Fig. 1: with the naive mechanism P2 is selected by both P0 and "
      "P1 (it cannot advertise the first reservation while computing); the "
      "increment / snapshot mechanisms propagate the reservation. Note the "
      "snapshot decisions complete only after P2's task ends (t > 11): a "
      "process cannot compute and answer start_snp simultaneously.");
  t.print(std::cout);
  return 0;
}
