// Figure 1 — the naive mechanism's coherence failure, as a timeline.
//
// P2 is the least-loaded process but starts a long task at t1. P0 then
// selects a slave at t2 and P1 at t3. Under the naive mechanism P1 does
// not know about P0's decision (P2 is busy and cannot advertise it):
// P2 is chosen twice. The increment and snapshot mechanisms propagate
// the reservation and avoid the double booking.
#include <iostream>

#include "bench_common.h"
#include "core/binding.h"
#include "sim/world.h"

using namespace loadex;

namespace {

struct Outcome {
  std::vector<Rank> chosen;
  std::vector<SimTime> decided;
  double p2_final_load = 0.0;
};

struct WorkPayload final : sim::Payload {
  double load = 0.0;
};
constexpr int kWorkTag = 100;

struct IdleApp final : sim::Application {
  core::MechanismSet* mechs = nullptr;
  std::deque<sim::ComputeTask>* p2_tasks = nullptr;
  void onAppMessage(sim::Process& p, const sim::Message& m) override {
    // Delegated work arrives: the slave accounts it (the naive mechanism
    // broadcasts here — only once the slave gets to treat the message).
    const auto& w = m.as<WorkPayload>();
    mechs->at(p.rank()).addLocalLoad({w.load, 0.0},
                                     /*is_slave_delegated=*/true);
  }
  std::optional<sim::ComputeTask> nextTask(sim::Process& p) override {
    if (p.rank() == 2 && p2_tasks != nullptr && !p2_tasks->empty()) {
      auto t = std::move(p2_tasks->front());
      p2_tasks->pop_front();
      return t;
    }
    return std::nullopt;
  }
};

Rank leastLoaded(const core::LoadView& v, Rank self) {
  Rank best = kNoRank;
  for (Rank r = 0; r < v.nprocs(); ++r) {
    if (r == self) continue;
    if (best == kNoRank || v.load(r).workload < v.load(best).workload)
      best = r;
  }
  return best;
}

Outcome run(core::MechanismKind kind) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = 3;
  wcfg.process.flops_per_s = 1e6;
  sim::World world(wcfg);
  core::MechanismConfig mcfg;
  mcfg.threshold = {1.0, 1.0};
  core::MechanismSet mechs(world, kind, mcfg);
  std::deque<sim::ComputeTask> p2_tasks;
  IdleApp app;
  app.mechs = &mechs;
  app.p2_tasks = &p2_tasks;
  for (Rank r = 0; r < 3; ++r) world.attach(r, &app, &mechs.at(r));

  Outcome out;
  auto& q = world.queue();
  q.scheduleAt(0.1, [&] {
    mechs.at(0).addLocalLoad({50, 0});
    mechs.at(1).addLocalLoad({50, 0});
    mechs.at(2).addLocalLoad({10, 0});
  });
  q.scheduleAt(1.0, [&] {  // t1: P2 starts a long task (until t = 11)
    p2_tasks.push_back(sim::ComputeTask{10e6, "long", {}});
    world.process(2).notifyReadyWork();
  });
  auto selection = [&](Rank master) {
    auto& m = mechs.at(master);
    m.requestView([&, master](const core::LoadView& v) {
      const Rank slave = leastLoaded(v, master);
      out.chosen.push_back(slave);
      out.decided.push_back(world.now());
      m.commitSelection({{slave, {100.0, 0.0}}});
      auto payload = std::make_shared<WorkPayload>();
      payload->load = 100.0;
      world.process(master).send(slave, sim::Channel::kApp, kWorkTag, 1024,
                                 std::move(payload));
    });
  };
  // A master blocked by a live snapshot defers its decision (Algorithm 1).
  auto whenFree = [&](SimTime t, Rank master) {
    auto task = std::make_shared<std::function<void()>>();
    *task = [&, master, task] {
      if (mechs.at(master).blocksComputation()) {
        q.scheduleAfter(1e-4, *task);
        return;
      }
      selection(master);
    };
    q.scheduleAt(t, *task);
  };
  whenFree(2.0, 0);  // t2
  whenFree(3.0, 1);  // t3
  world.run();
  out.p2_final_load = mechs.at(2).localLoad().workload;
  return out;
}

}  // namespace

int main() {
  std::cout << "Figure 1 — coherence of load information under successive "
               "slave selections\n"
            << "Scenario: loads {P0: 50, P1: 50, P2: 10}; t1=1: P2 starts a "
               "10 s task; t2=2: P0 selects; t3=3: P1 selects.\n\n";
  Table t("Measured outcome per mechanism");
  t.setHeader({"Mechanism", "P0 chose", "@t", "P1 chose", "@t",
               "P2 final load", "double-booked?"});
  for (const auto kind :
       {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
        core::MechanismKind::kSnapshot}) {
    const Outcome o = run(kind);
    t.addRow({core::mechanismKindName(kind), "P" + std::to_string(o.chosen[0]),
              Table::fmt(o.decided[0], 2), "P" + std::to_string(o.chosen[1]),
              Table::fmt(o.decided[1], 2), Table::fmt(o.p2_final_load, 0),
              (o.chosen[0] == o.chosen[1]) ? "YES" : "no"});
  }
  t.setFootnote(
      "Paper Fig. 1: with the naive mechanism P2 is selected by both P0 and "
      "P1 (it cannot advertise the first reservation while computing); the "
      "increment / snapshot mechanisms propagate the reservation. Note the "
      "snapshot decisions complete only after P2's task ends (t > 11): a "
      "process cannot compute and answer start_snp simultaneously.");
  t.print(std::cout);
  return 0;
}
