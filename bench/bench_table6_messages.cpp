// Table 6 — total number of state-information messages exchanged during
// the factorization, increments vs snapshot, on 64 and 128 processes.
//
// Expected shape (paper): the snapshot mechanism exchanges 13-27x fewer
// messages (but each snp answer is bigger: all metrics in one message).
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  bench::JsonResults json("table6_messages", env);
  const auto problems =
      bench::analyzeSuite(sparse::paperSuiteLarge(env.effectiveScale(),
                                                  env.seed));

  for (const int np : {64, 128}) {
    Table t("Table 6(" + std::string(np == 64 ? "a" : "b") +
            ") — state-information messages, " + std::to_string(np) +
            " processes (measured)");
    // "bytes" = payload bytes counted at the mechanism; "wire" = what the
    // network actually carried (payload + per-message header overhead), so
    // the many-small-messages increment mechanism pays proportionally more.
    t.setHeader({"Matrix", "Increments based", "Snapshot based",
                 "incr/snap", "incr bytes", "snap bytes", "incr wire",
                 "snap wire"});
    for (const auto& ap : problems) {
      std::cerr << "  [run] " << ap.problem.name << " p" << np << "\n";
      const auto incr = solver::runSolver(
          ap.analysis, ap.problem.symmetric,
          bench::defaultConfig(np, core::MechanismKind::kIncrement,
                               solver::Strategy::kWorkload),
          ap.problem.name);
      const auto snap = solver::runSolver(
          ap.analysis, ap.problem.symmetric,
          bench::defaultConfig(np, core::MechanismKind::kSnapshot,
                               solver::Strategy::kWorkload),
          ap.problem.name);
      const double ratio =
          snap.state_messages > 0
              ? static_cast<double>(incr.state_messages) /
                    static_cast<double>(snap.state_messages)
              : 0.0;
      t.addRow({ap.problem.name, Table::fmtInt(incr.state_messages),
                Table::fmtInt(snap.state_messages), Table::fmt(ratio, 1),
                Table::fmtInt(incr.state_bytes),
                Table::fmtInt(snap.state_bytes),
                Table::fmtInt(incr.state_wire_bytes),
                Table::fmtInt(snap.state_wire_bytes)});
      json.add(incr);
      json.add(snap, {{"msg_ratio_incr_over_snap", ratio}});
    }
    t.print(std::cout);
  }
  json.write();

  bench::printPaperReference(
      "Table 6(a), 64 procs", {"Matrix", "Incr", "Snap", "ratio"},
      {{"AUDIKW_1", "302,715", "11,388", "26.6"},
       {"CONV3D64", "386,196", "16,471", "23.4"},
       {"ULTRASOUND80", "208,024", "12,400", "16.8"}});
  bench::printPaperReference(
      "Table 6(b), 128 procs", {"Matrix", "Incr", "Snap", "ratio"},
      {{"AUDIKW_1", "1,386,165", "39,832", "34.8"},
       {"CONV3D64", "1,401,373", "57,089", "24.5"},
       {"ULTRASOUND80", "746,731", "50,324", "14.8"}});
  return 0;
}
