// Ablation (paper conclusion) — network latency sensitivity.
//
// "For machines with high latency networks, the cost of the mechanism
// based on increments could become large ... [the snapshot approach]
// could still be well adapted for distributed systems where the links
// have high latency/low bandwidth."
//
// Sweep the one-way latency and compare the two mechanisms' factorization
// times; report where (and whether) the crossover appears.
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  auto problem = sparse::paperSuiteLarge(env.effectiveScale(), env.seed)[1];
  std::cerr << "  [analyze] " << problem.name << "\n";
  const auto analysis = solver::analyzeProblem(problem);

  Table t("Network ablation — " + problem.name +
          ", 64 processes, workload-based scheduling");
  t.setHeader({"latency", "bandwidth", "incr time (s)", "snap time (s)",
               "snap/incr", "incr msgs", "snap msgs"});
  struct Net {
    double lat;
    double bw;
  };
  const std::vector<Net> nets = {
      {5e-6, 1e9},   // the paper's "very high bandwidth / low latency"
      {5e-4, 1e9},   // WAN-ish latency, fat pipe
      {1e-2, 1e9},   // extreme latency
      {5e-6, 1e7},   // fast links, slow NICs (per-message cost dominates)
      {5e-6, 2e6},   // heavily bandwidth-constrained
      {5e-4, 2e6},   // slow and far
  };
  for (const auto& net : nets) {
    std::vector<solver::SolverResult> r;
    for (const auto kind : {core::MechanismKind::kIncrement,
                            core::MechanismKind::kSnapshot}) {
      auto cfg = bench::defaultConfig(64, kind, solver::Strategy::kWorkload);
      cfg.network.latency_s = net.lat;
      cfg.network.bandwidth_bytes_per_s = net.bw;
      std::cerr << "  [run] lat=" << net.lat << " bw=" << net.bw << " "
                << core::mechanismKindName(kind) << "\n";
      r.push_back(
          solver::runSolver(analysis, problem.symmetric, cfg, problem.name));
    }
    t.addRow({Table::fmt(net.lat * 1e6, 0) + " us",
              Table::fmt(net.bw / 1e6, 0) + " MB/s",
              Table::fmt(r[0].factor_time, 2), Table::fmt(r[1].factor_time, 2),
              Table::fmt(r[1].factor_time / r[0].factor_time, 2),
              Table::fmtInt(r[0].state_messages),
              Table::fmtInt(r[1].state_messages)});
  }
  t.setFootnote(
      "Raw latency hurts the snapshot mechanism (each decision is a "
      "synchronous round-trip) while barely touching the fire-and-forget "
      "increments traffic. Low bandwidth slows both: the increments "
      "mechanism ships ~10x the state *bytes* (compare Table 6), but in "
      "this application the factorization data itself dominates the wire, "
      "so the end-to-end ranking does not flip — consistent with the "
      "paper's own observation that state-message cost 'had no impact on "
      "our factorization time measurement'. The paper's conjecture that "
      "snapshots suit weak links would require state traffic to dominate "
      "(e.g. far more frequent decisions).");
  t.print(std::cout);
  return 0;
}
