// Ablation (§2.1/§2.3) — the Update threshold trades message volume
// against view accuracy. The paper recommends "a threshold of the same
// order as the granularity of the tasks appearing in slave selections".
//
// Sweep: threshold as a fraction of the mean task cost, increments
// mechanism, memory-based scheduling (most sensitive to view quality).
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  auto problem = sparse::paperSuiteLarge(env.effectiveScale(), env.seed)[1];
  std::cerr << "  [analyze] " << problem.name << "\n";
  const auto analysis = solver::analyzeProblem(problem);

  Table t("Threshold ablation — " + problem.name +
          ", 64 processes, increments, memory-based scheduling");
  t.setHeader({"threshold (x mean task)", "state msgs", "peak mem (Me)",
               "factor time (s)"});
  for (const double frac : {0.0, 0.01, 0.05, 0.25, 1.0, 4.0, 1e6}) {
    auto cfg = bench::defaultConfig(64, core::MechanismKind::kIncrement,
                                    solver::Strategy::kMemory);
    cfg.auto_threshold = true;
    cfg.auto_threshold_fraction = frac;
    std::cerr << "  [run] threshold x" << frac << "\n";
    const auto res = solver::runSolver(analysis, problem.symmetric, cfg,
                                       problem.name);
    t.addRow({frac >= 1e6 ? "inf (mute)" : Table::fmt(frac, 2),
              Table::fmtInt(res.state_messages),
              bench::mega(res.peak_active_mem),
              Table::fmt(res.factor_time, 3)});
  }
  t.setFootnote(
      "Small thresholds buy an accurate view with a flood of broadcasts; "
      "huge thresholds silence Updates entirely and the schedulers fall "
      "back on reservation (Master_To_All) information only.");
  t.print(std::cout);
  return 0;
}
