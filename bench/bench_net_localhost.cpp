// Throughput, latency and syscall economics of the multi-process socket
// transport (src/net) on localhost.
//
// Two layers are measured:
//
//   rtt — raw wire round trips over one connection: a forked echo child
//     bounces kPing frames back, the parent times each trip. This is the
//     kernel-boundary cost every cross-process state message pays, per
//     transport (TCP loopback vs Unix-domain stream).
//
//   end-to-end — a seeded selection script replayed by 8 forked rank
//     processes (net::runMultiProcess) for the three paper mechanisms ×
//     {tcp, uds} × {coalesce, flush-per-message}. The coalescing axis is
//     the point: with coalescing on, a rank's outbound frames accumulate
//     per connection and flush once per event-loop pass, so PR 4's
//     lazy-broadcast win (one logical broadcast, N-1 sends) survives the
//     kernel boundary as ~1 write(2) per destination per batch. The
//     flush-per-message arm pays one write(2) per frame; the reported
//     frames/write ratio is the measured syscall saving.
//
// Every measured number is host-volatile (kernel scheduling decides it),
// so --json emits them as "host_"-prefixed extras; record identity is
// (problem, mechanism, strategy, nprocs) plus the deterministic script
// shape, with the script digest pinning the replayed plan bit-for-bit.
// CI gates bench/baselines/net_localhost_n8.json on exactly that
// identity.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/rng.h"
#include "harness/script.h"
#include "net/launch.h"
#include "net/socket.h"
#include "net/wire.h"
#include "rt/clock.h"

using namespace loadex;

namespace {

constexpr int kNprocs = 8;

// ---- script + digest (replay identity, same scheme as bench_rt) -----------

harness::Script netScript(std::uint64_t seed, core::MechanismKind kind,
                          double scale) {
  Rng rng(seed ^ static_cast<std::uint64_t>(static_cast<int>(kind)));
  harness::Script s;
  s.seed = seed;
  s.nprocs = kNprocs;
  s.kind = kind;
  s.threshold = 1.0;  // every load change crosses: maximum wire chatter
  const int nloads = static_cast<int>(kNprocs * 40 * scale);
  for (int i = 0; i < nloads; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0),
                       static_cast<Rank>(rng.uniformInt(
                           static_cast<std::uint64_t>(kNprocs))),
                       {rng.uniformReal(2.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});
  for (int i = 0; i < 8; ++i)
    s.selections.push_back({rng.uniformReal(0.3, 0.9),
                            static_cast<Rank>(rng.uniformInt(
                                static_cast<std::uint64_t>(kNprocs))),
                            rng.uniformReal(5.0, 40.0)});
  return s;
}

std::uint64_t fnv1a64(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t bitsOf(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t scriptDigest(const harness::Script& s) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  h = fnv1a64(h, static_cast<std::uint64_t>(s.nprocs));
  h = fnv1a64(h, static_cast<std::uint64_t>(static_cast<int>(s.kind)));
  h = fnv1a64(h, bitsOf(s.threshold));
  for (const auto& op : s.loads) {
    h = fnv1a64(h, static_cast<std::uint64_t>(op.rank));
    h = fnv1a64(h, bitsOf(op.time));
    h = fnv1a64(h, bitsOf(op.delta.workload));
    h = fnv1a64(h, bitsOf(op.delta.memory));
  }
  for (const auto& op : s.selections) {
    h = fnv1a64(h, static_cast<std::uint64_t>(op.master));
    h = fnv1a64(h, bitsOf(op.time));
    h = fnv1a64(h, bitsOf(op.share));
  }
  return h;
}

// ---- raw round-trip latency -----------------------------------------------

/// Read exactly one frame off a blocking socket (bench-local; the run
/// protocol in src/net has its own non-blocking path).
bool readOneFrame(int fd, std::vector<std::uint8_t>& buf,
                  net::FrameView& f) {
  std::uint8_t hdr[4];
  if (!net::readAll(fd, hdr, sizeof hdr)) return false;
  std::uint32_t body_len = 0;
  for (std::size_t i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  if (body_len < net::kFrameHeaderBytes - 4 ||
      body_len > net::kMaxFrameBytes)
    return false;
  buf.assign(4 + body_len, 0);
  std::copy(hdr, hdr + 4, buf.begin());
  if (!net::readAll(fd, buf.data() + 4, body_len)) return false;
  std::size_t consumed = 0;
  return net::tryDecodeFrame(buf.data(), buf.size(), f, consumed) ==
         net::DecodeStatus::kFrame;
}

struct RttRun {
  int trips = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
};

/// Fork an echo child and time `trips` one-frame round trips.
RttRun runRtt(net::NetTransportKind transport, int trips) {
  const std::string uds_path =
      "/tmp/loadex_bench_rtt." + std::to_string(::getpid());
  std::uint16_t port = 0;
  net::Fd listener = transport == net::NetTransportKind::kTcp
                         ? net::listenTcp(0, port)
                         : net::listenUds(uds_path);
  if (!listener.valid()) return {};

  const pid_t pid = ::fork();
  if (pid == 0) {
    listener.reset();
    net::Fd conn = transport == net::NetTransportKind::kTcp
                       ? net::connectTcp(port)
                       : net::connectUds(uds_path);
    std::vector<std::uint8_t> buf;
    net::FrameView f;
    while (conn.valid() && readOneFrame(conn.get(), buf, f)) {
      if (f.kind == net::FrameKind::kStop) break;
      net::writeAll(conn.get(), buf.data(), buf.size());  // echo verbatim
    }
    ::_exit(0);
  }

  bool again = false;
  net::Fd conn = net::acceptOn(listener.get(), again);
  RttRun run;
  if (conn.valid()) {
    const rt::MonotonicClock clock;
    std::vector<std::uint8_t> ping;
    {
      net::FrameBuilder fb(ping, net::FrameKind::kPing, 1);
      fb.writer().u64(0);
      fb.finish();
    }
    std::vector<std::uint8_t> buf;
    net::FrameView f;
    std::vector<double> rtts;
    rtts.reserve(static_cast<std::size_t>(trips));
    for (int i = 0; i < trips; ++i) {
      const double t0 = clock.now();
      if (!net::writeAll(conn.get(), ping.data(), ping.size()) ||
          !readOneFrame(conn.get(), buf, f))
        break;
      rtts.push_back(clock.now() - t0);
    }
    std::vector<std::uint8_t> stop;
    {
      net::FrameBuilder fb(stop, net::FrameKind::kStop, 2);
      fb.finish();
    }
    net::writeAll(conn.get(), stop.data(), stop.size());

    if (!rtts.empty()) {
      double sum = 0.0;
      for (const double r : rtts) sum += r;
      run.trips = static_cast<int>(rtts.size());
      run.mean_s = sum / static_cast<double>(rtts.size());
      std::sort(rtts.begin(), rtts.end());
      run.p50_s = rtts[rtts.size() / 2];
      run.p95_s = rtts[std::min(
          rtts.size() - 1,
          static_cast<std::size_t>(0.95 *
                                   static_cast<double>(rtts.size())))];
    }
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (transport == net::NetTransportKind::kUds)
    ::unlink(uds_path.c_str());
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::BenchEnv::parse(argc, argv);
  bench::JsonResults json("net_localhost", env);
  const int rtt_trips = env.quick ? 500 : 2000;

  std::cout << "net localhost — " << kNprocs
            << " rank processes, real sockets, wire format v"
            << static_cast<int>(net::kWireVersion) << "\n\n";

  // ---- raw RTT ------------------------------------------------------------
  Table rt_table("Wire round-trip latency, one connection");
  rt_table.setHeader({"transport", "trips", "mean", "p50", "p95"});
  for (const auto transport :
       {net::NetTransportKind::kUds, net::NetTransportKind::kTcp}) {
    const RttRun r = runRtt(transport, rtt_trips);
    rt_table.addRow({net::netTransportKindName(transport),
                     std::to_string(r.trips),
                     Table::fmt(r.mean_s * 1e6, 1) + "us",
                     Table::fmt(r.p50_s * 1e6, 1) + "us",
                     Table::fmt(r.p95_s * 1e6, 1) + "us"});

    obs::BenchResultRecord rec;
    rec.problem = "net_rtt";
    rec.mechanism = "none";
    rec.strategy = net::netTransportKindName(transport);
    rec.nprocs = 2;
    rec.completed = r.trips > 0;
    json.add(std::move(rec),
             {{"host_rtt_mean_s", r.mean_s},
              {"host_rtt_p50_s", r.p50_s},
              {"host_rtt_p95_s", r.p95_s},
              {"host_trips", static_cast<double>(r.trips)}});
  }
  rt_table.setFootnote(
      "One kPing frame each way, blocking sockets, forked echo peer. The "
      "per-message kernel-boundary cost every mechanism pays.");
  rt_table.print(std::cout);
  std::cout << "\n";

  // ---- end-to-end script replays ------------------------------------------
  Table t("End-to-end, 8 rank processes, coalescing vs flush-per-message");
  t.setHeader({"mechanism", "transport", "flush", "wall", "frames",
               "write(2)", "frames/write", "state msgs/s"});
  bool all_ok = true;
  for (const auto kind :
       {core::MechanismKind::kNaive, core::MechanismKind::kIncrement,
        core::MechanismKind::kSnapshot}) {
    const harness::Script s =
        netScript(env.seed, kind, env.effectiveScale());
    for (const auto transport :
         {net::NetTransportKind::kUds, net::NetTransportKind::kTcp}) {
      for (const bool coalesce : {true, false}) {
        net::NetOptions opts;
        opts.transport = transport;
        opts.coalesce = coalesce;
        const net::NetRunReport rep = net::runMultiProcess(s, opts);
        all_ok = all_ok && rep.ok && rep.conservationHolds();

        const double frames_per_write =
            rep.flush_writes > 0
                ? static_cast<double>(rep.frames_sent) /
                      static_cast<double>(rep.flush_writes)
                : 0.0;
        const double msgs_per_s =
            static_cast<double>(rep.state.delivered) /
            std::max(rep.wall_s, 1e-12);
        t.addRow({core::mechanismKindName(kind),
                  net::netTransportKindName(transport),
                  coalesce ? "loop" : "msg",
                  Table::fmt(rep.wall_s * 1e3, 1) + "ms",
                  std::to_string(rep.frames_sent),
                  std::to_string(rep.flush_writes),
                  Table::fmt(frames_per_write, 2),
                  Table::fmt(msgs_per_s, 0)});

        obs::BenchResultRecord rec;
        rec.problem = "net_localhost";
        rec.mechanism = core::mechanismKindName(kind);
        rec.strategy =
            std::string(net::netTransportKindName(transport)) +
            (coalesce ? "_coalesce" : "_flush");
        rec.nprocs = kNprocs;
        rec.completed = rep.ok;
        rec.selections = rep.committed;
        rec.state_messages = rep.state.delivered;
        rec.state_wire_bytes = rep.bytes_sent;
        rec.schedule_digest = scriptDigest(s);
        json.add(std::move(rec),
                 {// Deterministic script shape (part of the identity).
                  {"script_loads", static_cast<double>(s.loads.size())},
                  {"script_selections",
                   static_cast<double>(s.selections.size())},
                  // Volatile host measurements.
                  {"host_wall_s", rep.wall_s},
                  {"host_state_msgs_per_s", msgs_per_s},
                  {"host_bytes_sent", static_cast<double>(rep.bytes_sent)},
                  {"host_flush_writes",
                   static_cast<double>(rep.flush_writes)},
                  {"host_flush_partials",
                   static_cast<double>(rep.flush_partials)},
                  {"host_frames_per_write", frames_per_write},
                  {"host_probe_rounds",
                   static_cast<double>(rep.probe_rounds)}});
      }
    }
  }
  t.setFootnote(
      "flush=loop coalesces per connection and writes once per event-loop "
      "pass; flush=msg writes every frame. frames/write > 1 on the "
      "coalescing arms is the syscall saving that carries the lazy-"
      "broadcast win across the kernel boundary.");
  t.print(std::cout);

  if (!all_ok) {
    std::cerr << "\nERROR: a run failed to quiesce cleanly\n";
    return 1;
  }
  return json.write() ? 0 : 1;
}
