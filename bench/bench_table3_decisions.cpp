// Table 3 — number of dynamic decisions for 32, 64 and 128 processes.
//
// A dynamic decision is a type-2 slave selection; the count is a static
// property of the assembly tree + proportional mapping, so no simulation
// is needed here.
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);

  Table t("Table 3 — number of dynamic decisions (measured)");
  t.setHeader({"Matrix", "32 procs", "64 procs", "128 procs"});

  auto addSuite = [&](std::vector<sparse::Problem> suite,
                      bool small_suite) {
    for (auto& p : suite) {
      std::cerr << "  [analyze] " << p.name << "\n";
      const auto a = solver::analyzeProblem(p);
      std::vector<std::string> row{p.name};
      for (const int np : {32, 64, 128}) {
        const bool in_paper = small_suite ? np != 128 : np != 32;
        if (!in_paper) {
          row.push_back("-");
          continue;
        }
        auto cfg = bench::defaultConfig(np, core::MechanismKind::kIncrement,
                                        solver::Strategy::kWorkload);
        cfg.mapping.nprocs = np;
        const auto plan = solver::planTree(a.tree, p.symmetric, cfg.mapping);
        row.push_back(Table::fmtInt(plan.dynamic_decisions));
      }
      t.addRow(std::move(row));
    }
  };
  addSuite(sparse::paperSuiteSmall(env.effectiveScale(), env.seed), true);
  t.addSeparator();
  addSuite(sparse::paperSuiteLarge(env.effectiveScale(), env.seed), false);
  t.print(std::cout);

  bench::printPaperReference(
      "Table 3", {"Matrix", "32", "64", "128"},
      {{"BMWCRA_1", "41", "96", "-"},
       {"GUPTA3", "8", "8", "-"},
       {"MSDOOR", "38", "81", "-"},
       {"SHIP_003", "70", "152", "-"},
       {"PRE2", "92", "125", "-"},
       {"TWOTONE", "55", "57", "-"},
       {"ULTRASOUND3", "49", "116", "-"},
       {"XENON2", "50", "65", "-"},
       {"AUDIKW_1", "-", "119", "199"},
       {"CONV3D64", "-", "169", "274"},
       {"ULTRASOUND80", "-", "122", "218"}});
  return 0;
}
