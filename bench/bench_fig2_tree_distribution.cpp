// Figure 2 — distribution of a multifrontal assembly tree over four
// processes, with node types (subtrees, type 1, type 2, type 3 root).
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  (void)env;

  sparse::Problem p;
  p.name = "grid3d_16x16x16_27pt";
  p.symmetric = true;
  p.pattern = sparse::grid3d(16, 16, 16, /*27pt=*/true);
  const auto a = solver::analyzeProblem(p);

  solver::MappingOptions mopts;
  mopts.nprocs = 4;
  mopts.type2_min_front = 150;
  mopts.type2_min_border = 16;
  const auto plan = solver::planTree(a.tree, p.symmetric, mopts);

  std::cout << "Figure 2 — assembly tree of " << p.name << " (n="
            << p.pattern.n() << ", " << a.tree.size()
            << " fronts) over 4 processes\n\n";

  // Render the top of the tree with type / master annotations.
  struct Emit {
    const symbolic::AssemblyTree& tree;
    const solver::TreePlan& plan;
    int budget = 40;
    void operator()(int id, int depth) {
      if (budget-- <= 0) return;
      const auto& nd = tree.node(id);
      const auto& np = plan.at(id);
      for (int d = 0; d < depth; ++d) std::cout << "  ";
      std::cout << "#" << id << " m=" << nd.front << " npiv=" << nd.npiv
                << "  [" << solver::nodeTypeName(np.type) << ", P"
                << np.master << "]";
      if (np.type == solver::NodeType::kSubtree && depth > 0) {
        std::cout << " (whole subtree on P" << np.master << ")";
        std::cout << "\n";
        return;  // don't expand mapped subtrees: matches the figure
      }
      std::cout << "\n";
      auto kids = nd.children;
      std::sort(kids.begin(), kids.end(), [&](int x, int y) {
        return tree.node(x).front > tree.node(y).front;
      });
      for (const int c : kids) (*this)(c, depth + 1);
    }
  };
  Emit emit{a.tree, plan};
  for (const int r : a.tree.roots()) emit(r, 0);

  Table t("\nNode-type census (4 processes)");
  t.setHeader({"Type", "Count", "Flops share (%)"});
  std::map<solver::NodeType, std::pair<int, double>> census;
  for (int id = 0; id < a.tree.size(); ++id) {
    auto& c = census[plan.at(id).type];
    c.first += 1;
    c.second += plan.at(id).costs.total_flops;
  }
  for (const auto& [type, c] : census)
    t.addRow({solver::nodeTypeName(type), Table::fmtInt(c.first),
              Table::fmt(100.0 * c.second / plan.total_flops, 1)});
  t.setFootnote(
      "Paper §4.1: leaf subtrees are mapped statically to one process "
      "each; type-2 nodes pick their slaves dynamically; the type-3 root "
      "is a static 2-D (ScaLAPACK-style) factorization. On large enough "
      "machines ~80% of the flops are in slave (type-2) tasks.");
  t.print(std::cout);
  return 0;
}
