// Micro-benchmarks of the discrete-event kernel and network model.
#include <benchmark/benchmark.h>

#include "sim/network.h"
#include "sim/world.h"

using namespace loadex;

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    long long sink = 0;
    for (int i = 0; i < n; ++i)
      q.scheduleAt(static_cast<SimTime>((i * 2654435761u) % 1000),
                   [&sink] { ++sink; });
    q.runUntil();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_EventQueueCancel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      ids.push_back(q.scheduleAt(static_cast<SimTime>(i), [] {}));
    for (int i = 0; i < n; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
    q.runUntil();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancel)->Arg(10000);

void BM_NetworkPointToPoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    sim::Network net(q, {}, 2);
    long long delivered = 0;
    net.setReceiver(0, [&](const sim::Message&) { ++delivered; });
    net.setReceiver(1, [&](const sim::Message&) { ++delivered; });
    for (int i = 0; i < n; ++i) {
      sim::Message m;
      m.src = i % 2;
      m.dst = 1 - (i % 2);
      m.size = 64;
      net.send(std::move(m));
    }
    q.runUntil();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NetworkPointToPoint)->Arg(10000);

void BM_WorldIdleProcesses(benchmark::State& state) {
  // Cost of standing up a world and running it to (trivial) quiescence.
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::WorldConfig cfg;
    cfg.nprocs = nprocs;
    sim::World world(cfg);
    const auto r = world.run();
    benchmark::DoNotOptimize(r.events);
  }
}
BENCHMARK(BM_WorldIdleProcesses)->Arg(32)->Arg(128);

}  // namespace
