// Shared main() for the google-benchmark micro benches, adding the repo's
// `--json <path>` convention on top of the usual benchmark flags: every
// run is captured and written as a schema-versioned loadex.bench-result
// record, so trace_stats.py can validate and diff micro numbers exactly
// like the table/scale drivers. Console output is unchanged (the capture
// reporter extends ConsoleReporter).
//
// Record mapping: problem = benchmark name, strategy = "micro",
// completed = !error. All timing fields are host measurements, so they
// go under "host_"-prefixed extras, which the diff tool keeps out of the
// record identity (micro timings are never stable across machines).
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

/// ConsoleReporter that also captures each per-iteration run (aggregates
/// such as mean/stddev rows are skipped: they repeat the iteration data).
class CaptureReporter final : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(loadex::bench::JsonResults& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      loadex::obs::BenchResultRecord rec;
      rec.problem = run.benchmark_name();
      rec.strategy = "micro";
      rec.nprocs = 1;
      rec.completed = !run.error_occurred;
      std::map<std::string, double> extra;
      // The micro benches use the default time unit (nanoseconds) and
      // never set ->Unit(), so the adjusted times are ns per iteration.
      extra["host_real_ns_per_iter"] = run.GetAdjustedRealTime();
      extra["host_cpu_ns_per_iter"] = run.GetAdjustedCPUTime();
      extra["host_iterations"] = static_cast<double>(run.iterations);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end())
        extra["host_items_per_second"] = items->second.value;
      json_.add(std::move(rec), std::move(extra));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  loadex::bench::JsonResults& json_;
};

/// Peel `--json <path>` / `--json=<path>` off argv before the benchmark
/// library sees it (it rejects flags it does not know).
std::string extractJsonPath(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0 && r + 1 < argc) {
      path = argv[++r];
    } else if (std::strncmp(argv[r], "--json=", 7) == 0) {
      path = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

std::string benchName(const char* argv0) {
  std::string name(argv0);
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  loadex::bench::BenchEnv env;
  env.json_path = extractJsonPath(argc, argv);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  loadex::bench::JsonResults json(benchName(argv[0]), env);
  CaptureReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  return json.write() ? 0 : 1;
}
