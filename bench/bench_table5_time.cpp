// Table 5 — factorization time (simulated seconds) on 64 and 128
// processes under the workload-based strategy (§4.2.2): increments vs
// snapshot.
//
// Expected shape (paper): the snapshot mechanism is ~1.5-2x slower; the
// gap is the synchronisation cost of building the snapshots (processes
// cannot compute while one is live) plus the sequentialisation of
// concurrent decisions.
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  bench::JsonResults json("table5_time", env);
  const auto problems =
      bench::analyzeSuite(sparse::paperSuiteLarge(env.effectiveScale(),
                                                  env.seed));

  for (const int np : {64, 128}) {
    Table t("Table 5(" + std::string(np == 64 ? "a" : "b") +
            ") — factorization time (simulated s), " + std::to_string(np) +
            " processes, workload-based scheduling (measured)");
    t.setHeader({"Matrix", "Increments based", "Snapshot based",
                 "snap/incr", "snapshot stall (s)"});
    for (const auto& ap : problems) {
      std::cerr << "  [run] " << ap.problem.name << " p" << np << "\n";
      const auto incr = solver::runSolver(
          ap.analysis, ap.problem.symmetric,
          bench::defaultConfig(np, core::MechanismKind::kIncrement,
                               solver::Strategy::kWorkload),
          ap.problem.name);
      const auto snap = solver::runSolver(
          ap.analysis, ap.problem.symmetric,
          bench::defaultConfig(np, core::MechanismKind::kSnapshot,
                               solver::Strategy::kWorkload),
          ap.problem.name);
      t.addRow({ap.problem.name, Table::fmt(incr.factor_time, 2),
                Table::fmt(snap.factor_time, 2),
                Table::fmt(snap.factor_time / incr.factor_time, 2),
                Table::fmt(snap.snapshot_time, 2)});
      json.add(incr);
      json.add(snap,
               {{"time_ratio_vs_incr", snap.factor_time / incr.factor_time}});
    }
    t.print(std::cout);
  }
  json.write();

  bench::printPaperReference(
      "Table 5(a), 64 procs", {"Matrix", "Incr (s)", "Snap (s)", "ratio"},
      {{"AUDIKW_1", "94.74", "141.62", "1.49"},
       {"CONV3D64", "381.27", "688.39", "1.81"},
       {"ULTRASOUND80", "48.69", "85.68", "1.76"}});
  bench::printPaperReference(
      "Table 5(b), 128 procs", {"Matrix", "Incr (s)", "Snap (s)", "ratio"},
      {{"AUDIKW_1", "53.51", "87.70", "1.64"},
       {"CONV3D64", "178.88", "315.63", "1.76"},
       {"ULTRASOUND80", "35.12", "66.53", "1.89"}});
  return 0;
}
