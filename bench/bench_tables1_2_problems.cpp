// Tables 1 & 2 — the test-problem inventory.
//
// Prints the synthetic substitutes for the paper's matrices (order,
// structural nonzeros, symmetry, generator family) next to the paper's
// originals, plus the symbolic-analysis profile each one produces.
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);

  struct PaperRow {
    const char* name;
    long long order;
    long long nz;
    const char* type;
  };
  const std::vector<PaperRow> paper_small = {
      {"BMWCRA_1", 148770, 5396386, "SYM"},
      {"GUPTA3", 16783, 4670105, "SYM"},
      {"MSDOOR", 415863, 10328399, "SYM"},
      {"SHIP_003", 121728, 4103881, "SYM"},
      {"PRE2", 659033, 5959282, "UNS"},
      {"TWOTONE", 120750, 1224224, "UNS"},
      {"ULTRASOUND3", 185193, 11390625, "UNS"},
      {"XENON2", 157464, 3866688, "UNS"},
  };
  const std::vector<PaperRow> paper_large = {
      {"AUDIKW_1", 943695, 39297771, "SYM"},
      {"CONV3D64", 836550, 12548250, "UNS"},
      {"ULTRASOUND80", 531441, 330761161, "UNS"},
  };

  auto emit = [&](const std::string& title,
                  std::vector<sparse::Problem> suite,
                  const std::vector<PaperRow>& paper) {
    Table t(title + " — synthetic substitutes (scale=" +
            Table::fmt(env.effectiveScale(), 2) + ")");
    t.setHeader({"Matrix", "Order", "NZ", "Type", "Family", "Tree nodes",
                 "Max front", "Factor nnz"});
    for (auto& p : suite) {
      std::cerr << "  [analyze] " << p.name << "\n";
      const auto a = solver::analyzeProblem(p);
      t.addRow({p.name, Table::fmtInt(p.pattern.n()),
                Table::fmtInt(p.pattern.nnzFull()),
                p.symmetric ? "SYM" : "UNS", p.family,
                Table::fmtInt(a.tree.size()), Table::fmtInt(a.tree.maxFront()),
                Table::fmtInt(a.factor_nnz)});
    }
    t.print(std::cout);

    std::vector<std::vector<std::string>> rows;
    for (const auto& r : paper)
      rows.push_back({r.name, Table::fmtInt(r.order), Table::fmtInt(r.nz),
                      r.type});
    bench::printPaperReference(title, {"Matrix", "Order", "NZ", "Type"}, rows);
  };

  emit("Table 1 (first set of test problems)",
       sparse::paperSuiteSmall(env.effectiveScale(), env.seed), paper_small);
  emit("Table 2 (set of larger test problems)",
       sparse::paperSuiteLarge(env.effectiveScale(), env.seed), paper_large);
  return 0;
}
