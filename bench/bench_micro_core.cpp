// Micro-benchmarks of the three mechanisms' message handling.
#include <benchmark/benchmark.h>

#include "core/binding.h"
#include "core/increment.h"
#include "core/naive.h"
#include "core/snapshot.h"

using namespace loadex;

namespace {

struct NullTransport final : core::Transport {
  int n = 64;
  std::int64_t sent = 0;
  Rank self() const override { return 0; }
  int nprocs() const override { return n; }
  SimTime now() const override { return 0.0; }
  void sendState(Rank, core::StateTag, Bytes,
                 std::shared_ptr<const sim::Payload>) override {
    ++sent;
  }
};

void BM_IncrementLocalLoad(benchmark::State& state) {
  NullTransport t;
  core::MechanismConfig cfg;
  cfg.threshold = {100.0, 100.0};
  core::IncrementMechanism m(t, cfg);
  double sign = 1.0;
  for (auto _ : state) {
    m.addLocalLoad({sign * 30.0, 0.0});
    sign = -sign;
  }
  benchmark::DoNotOptimize(t.sent);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementLocalLoad);

void BM_NaiveUpdateHandling(benchmark::State& state) {
  NullTransport t;
  core::NaiveMechanism m(t, {});
  sim::Message msg;
  msg.src = 3;
  msg.dst = 0;
  msg.channel = sim::Channel::kState;
  msg.tag = static_cast<int>(core::StateTag::kUpdateAbsolute);
  auto payload = std::make_shared<core::UpdateAbsolutePayload>();
  payload->load = {42.0, 7.0};
  msg.payload = payload;
  for (auto _ : state) m.onStateMessage(msg);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveUpdateHandling);

void BM_MasterToAllHandling(benchmark::State& state) {
  NullTransport t;
  core::IncrementMechanism m(t, {});
  sim::Message msg;
  msg.src = 3;
  msg.dst = 0;
  msg.channel = sim::Channel::kState;
  msg.tag = static_cast<int>(core::StateTag::kMasterToAll);
  auto payload = std::make_shared<core::MasterToAllPayload>();
  for (Rank r = 1; r < 17; ++r)
    payload->assignments.push_back({r, {100.0, 10.0}});
  msg.payload = payload;
  for (auto _ : state) m.onStateMessage(msg);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MasterToAllHandling);

void BM_SnapshotRoundTrip(benchmark::State& state) {
  // Full snapshot protocol round on a 64-process system, driven directly.
  for (auto _ : state) {
    NullTransport t;
    core::SnapshotMechanism m(t, {});
    bool fired = false;
    m.requestView([&](const core::LoadView&) {
      fired = true;
      m.commitSelection({{1, {10.0, 1.0}}});
    });
    for (Rank r = 1; r < t.n; ++r) {
      sim::Message msg;
      msg.src = r;
      msg.dst = 0;
      msg.channel = sim::Channel::kState;
      msg.tag = static_cast<int>(core::StateTag::kSnp);
      auto payload = std::make_shared<core::SnpPayload>();
      payload->request = m.myRequestId();
      payload->state = {static_cast<double>(r), 0.0};
      msg.payload = payload;
      m.onStateMessage(msg);
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRoundTrip);

}  // namespace
