// Table 4 — peak of active memory (millions of entries, max over the
// processes) on 32 and 64 processes, per exchange mechanism, under the
// memory-based dynamic scheduling strategy (§4.2.1).
//
// Expected shape (paper): naive >= increments >= snapshot in most cases,
// with occasional inversions from schedule side effects (e.g. GUPTA3).
#include <iostream>

#include "bench_common.h"

using namespace loadex;

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::parse(argc, argv);
  bench::JsonResults json("table4_memory", env);
  const auto problems =
      bench::analyzeSuite(sparse::paperSuiteSmall(env.effectiveScale(),
                                                  env.seed));
  const std::vector<core::MechanismKind> mechs = {
      core::MechanismKind::kIncrement, core::MechanismKind::kSnapshot,
      core::MechanismKind::kNaive};

  for (const int np : {32, 64}) {
    Table t("Table 4(" + std::string(np == 32 ? "a" : "b") + ") — peak of "
            "active memory (millions of entries), " + std::to_string(np) +
            " processes, memory-based scheduling (measured)");
    t.setHeader({"Matrix", "Increments based", "Snapshot based", "naive"});
    for (const auto& ap : problems) {
      std::vector<std::string> row{ap.problem.name};
      for (const auto kind : mechs) {
        std::cerr << "  [run] " << ap.problem.name << " p" << np << " "
                  << core::mechanismKindName(kind) << "\n";
        const auto cfg =
            bench::defaultConfig(np, kind, solver::Strategy::kMemory);
        const auto res = solver::runSolver(ap.analysis, ap.problem.symmetric,
                                           cfg, ap.problem.name);
        row.push_back(res.completed ? bench::mega(res.peak_active_mem)
                                    : "FAIL");
        json.add(res);
      }
      t.addRow(std::move(row));
    }
    t.print(std::cout);
  }
  json.write();

  bench::printPaperReference(
      "Table 4(a), 32 procs", {"Matrix", "Incr", "Snap", "naive"},
      {{"BMWCRA_1", "3.71", "3.71", "3.71"},
       {"GUPTA3", "3.88", "4.35", "3.88"},
       {"MSDOOR", "1.51", "1.51", "1.51"},
       {"SHIP_003", "5.52", "5.52", "5.52"},
       {"PRE2", "7.88", "7.83", "8.04"},
       {"TWOTONE", "1.94", "1.89", "1.99"},
       {"ULTRASOUND3", "7.17", "6.02", "10.69"},
       {"XENON2", "2.83", "2.86", "2.93"}});
  bench::printPaperReference(
      "Table 4(b), 64 procs", {"Matrix", "Incr", "Snap", "naive"},
      {{"BMWCRA_1", "2.30", "2.30", "3.55"},
       {"GUPTA3", "2.70", "2.70", "2.70"},
       {"MSDOOR", "1.01", "0.84", "0.84"},
       {"SHIP_003", "2.19", "2.19", "2.19"},
       {"PRE2", "7.66", "7.87", "7.72"},
       {"TWOTONE", "1.86", "1.86", "1.88"},
       {"ULTRASOUND3", "3.59", "3.40", "5.24"},
       {"XENON2", "2.45", "2.41", "3.61"}});
  return 0;
}
