// Shared plumbing for the table/figure benchmark drivers.
//
// Every bench binary prints (a) the measured table in the paper's layout
// and (b) the paper's own numbers for side-by-side shape comparison.
// Absolute values differ by construction — the substrate is a simulator
// and the problems are synthetic equivalents (see DESIGN.md) — what must
// match is who wins and by roughly what factor.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "ordering/ordering.h"
#include "solver/runner.h"
#include "sparse/generators.h"

namespace loadex::bench {

struct BenchEnv {
  double scale = 1.0;      ///< problem-size multiplier (--scale)
  bool quick = false;      ///< --quick: halve the scale for smoke runs
  std::uint64_t seed = 1;  ///< --seed
  std::string json_path;   ///< --json <path>: machine-readable results

  static BenchEnv parse(int argc, const char* const* argv) {
    const CliFlags flags(argc, argv);
    BenchEnv env;
    env.scale = flags.getDouble("scale", 1.0);
    env.quick = flags.getBool("quick", false);
    env.seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
    env.json_path = flags.getString("json", "");
    if (env.quick) env.scale *= 0.5;
    return env;
  }

  double effectiveScale() const { return scale; }
};

/// Structured-results sink for a bench driver: collect one record per run
/// (toResultRecord flattens a SolverResult) and write the schema-versioned
/// JSON document when --json <path> was given. Without the flag the sink
/// is inert — add() still accumulates, write() does nothing.
class JsonResults {
 public:
  JsonResults(const std::string& bench_name, const BenchEnv& env)
      : writer_(bench_name), path_(env.json_path) {
    writer_.setMeta("scale", env.effectiveScale());
    writer_.setMeta("seed", static_cast<double>(env.seed));
  }

  void add(const solver::SolverResult& res,
           std::map<std::string, double> extra = {}) {
    obs::BenchResultRecord rec = solver::toResultRecord(res);
    rec.extra = std::move(extra);
    writer_.add(std::move(rec));
  }

  /// For drivers that build their records directly (no solver run, e.g.
  /// the scale benches). Extra keys prefixed "host_" are volatile host
  /// measurements: the diff tool keeps them out of the record identity.
  void add(obs::BenchResultRecord rec,
           std::map<std::string, double> extra = {}) {
    rec.extra = std::move(extra);
    writer_.add(std::move(rec));
  }

  /// Write the document if --json was given; returns false on I/O error.
  bool write() const {
    if (path_.empty()) return true;
    const bool ok = writer_.writeFile(path_);
    if (ok)
      std::cerr << "  [json] " << writer_.size() << " records -> " << path_
                << "\n";
    return ok;
  }

 private:
  obs::ResultWriter writer_;
  std::string path_;
};

/// Baseline solver configuration shared by the experiment drivers.
inline solver::SolverConfig defaultConfig(int nprocs,
                                          core::MechanismKind kind,
                                          solver::Strategy strategy) {
  solver::SolverConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mechanism = kind;
  cfg.strategy = strategy;
  cfg.mapping.type2_min_front = 200;
  cfg.mapping.type2_min_border = 16;
  cfg.app.max_slaves = 32;
  return cfg;
}

/// Analyze every problem of a suite once (nested dissection ordering).
struct AnalyzedProblem {
  sparse::Problem problem;
  symbolic::Analysis analysis;
};

inline std::vector<AnalyzedProblem> analyzeSuite(
    std::vector<sparse::Problem> suite) {
  std::vector<AnalyzedProblem> out;
  out.reserve(suite.size());
  for (auto& p : suite) {
    std::cerr << "  [analyze] " << p.name << " (n=" << p.pattern.n() << ")\n";
    AnalyzedProblem ap{std::move(p), {}};
    ap.analysis = solver::analyzeProblem(ap.problem);
    out.push_back(std::move(ap));
  }
  return out;
}

/// Paper reference values, printed under each measured table.
inline void printPaperReference(const std::string& title,
                                const std::vector<std::string>& header,
                                const std::vector<std::vector<std::string>>& rows) {
  Table t("Paper reference — " + title);
  t.setHeader(header);
  for (const auto& r : rows) t.addRow(r);
  t.setFootnote(
      "(IBM SP at IDRIS, real MUMPS, original matrices; compare shapes, "
      "not absolute values.)");
  t.print(std::cout);
}

inline std::string mega(double entries) {
  return Table::fmt(entries / 1e6, 2);
}

}  // namespace loadex::bench
