#include "common/rng.h"

#include <cmath>

#include "common/expect.h"

namespace loadex {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : Rng(seed, /*stream=*/0) {}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t sm = seed ^ mix64(stream + 0x5851f42d4c957f2dULL);
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniformInt(std::uint64_t n) {
  LOADEX_EXPECT(n > 0, "uniformInt needs n > 0");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniformRange(std::int64_t lo, std::int64_t hi) {
  LOADEX_EXPECT(lo <= hi, "uniformRange needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniformInt(span));
}

double Rng::uniformReal() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) {
  return lo + (hi - lo) * uniformReal();
}

bool Rng::bernoulli(double p) { return uniformReal() < p; }

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniformReal();
  while (u1 <= 0.0) u1 = uniformReal();
  const double u2 = uniformReal();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  LOADEX_EXPECT(lambda > 0.0, "exponential needs lambda > 0");
  double u = uniformReal();
  while (u <= 0.0) u = uniformReal();
  return -std::log(u) / lambda;
}

Rng Rng::fork() {
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a, b);
}

}  // namespace loadex
