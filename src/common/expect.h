// Checked assertions that throw instead of aborting, so unit tests can
// assert on violations and applications get a diagnosable error.
#pragma once

#include <stdexcept>
#include <string>

namespace loadex {

/// Thrown when a LOADEX_EXPECT / LOADEX_CHECK condition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void failExpect(const char* cond, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace loadex

/// Precondition / invariant check, always enabled (the code is not in a hot
/// enough loop for this to matter; correctness of the protocols is the point).
#define LOADEX_EXPECT(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::loadex::detail::failExpect(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                   \
  } while (false)

/// Shorthand without a custom message.
#define LOADEX_CHECK(cond) LOADEX_EXPECT(cond, "")
