#include "common/expect.h"

#include <sstream>

namespace loadex::detail {

void failExpect(const char* cond, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace loadex::detail
