#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace loadex {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Accumulator::mean() const {
  LOADEX_EXPECT(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  LOADEX_EXPECT(count_ > 0, "variance of empty accumulator");
  return m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  LOADEX_EXPECT(count_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  LOADEX_EXPECT(count_ > 0, "max of empty accumulator");
  return max_;
}

void PeakTracker::add(double delta) {
  current_ += delta;
  peak_ = std::max(peak_, current_);
}

void PeakTracker::set(double value) {
  current_ = value;
  peak_ = std::max(peak_, current_);
}

void PeakTracker::reset() {
  current_ = 0.0;
  peak_ = 0.0;
}

void CounterSet::bump(const std::string& name, std::int64_t amount) {
  counters_[name] += amount;
}

std::int64_t CounterSet::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t CounterSet::total() const {
  std::int64_t t = 0;
  for (const auto& [_, v] : counters_) t += v;
  return t;
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

double percentile(std::vector<double> samples, double p) {
  LOADEX_EXPECT(!samples.empty(), "percentile of empty sample");
  LOADEX_EXPECT(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace loadex
