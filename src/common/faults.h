// Shared fault-injection plan types, runtime-agnostic.
//
// The paper analyses the mechanisms on a perfectly reliable platform; the
// repo scripts the imperfections a production deployment must survive:
// message loss / duplication / latency spikes on the links, scripted
// per-link blackout windows, and process-level crash / pause / restart
// events. These plan types are pure data — the simulator (sim/faults.h +
// sim/network.cpp) interprets them deterministically against virtual
// time, and the real-threads runtime (rt/faults.h + rt/world.cpp)
// interprets the same plan against wall-clock seconds since start().
// Everything is seeded; with the default (inert) plan no random draw is
// ever taken.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace loadex {

/// A scripted outage of one directed link (or a set of links, using
/// kNoRank as a wildcard): every message *sent* on a matching link inside
/// [start, end) is silently discarded. Used by the adversarial tests to
/// drop one specific protocol message at a known instant.
struct LinkBlackout {
  Rank src = kNoRank;  ///< sender rank, kNoRank = any
  Rank dst = kNoRank;  ///< receiver rank, kNoRank = any
  SimTime start = 0.0;
  SimTime end = 0.0;   ///< half-open window [start, end)

  bool matches(Rank s, Rank d, SimTime t) const {
    return (src == kNoRank || src == s) && (dst == kNoRank || dst == d) &&
           t >= start && t < end;
  }
};

/// Per-message random faults plus scripted blackouts. The default plan is
/// inert: no random draw is ever taken and the run is bit-for-bit
/// identical to a fault-free one.
struct FaultPlan {
  /// Probability that a message is dropped in transit.
  double drop_prob = 0.0;

  /// Probability that a message is delivered twice (the copy arrives one
  /// extra latency later, FIFO order preserved).
  double duplicate_prob = 0.0;

  /// Probability that a message suffers an extra `latency_spike_s` delay.
  double latency_spike_prob = 0.0;
  double latency_spike_s = 0.0;

  /// Which channels the random faults and blackouts apply to. State-only
  /// faults isolate the load-exchange protocols (the object of study)
  /// while keeping the application's task traffic intact.
  bool affects_state = true;
  bool affects_app = true;

  /// Scripted outages, checked at send time.
  std::vector<LinkBlackout> blackouts;

  /// Seed of the dedicated fault RNG stream (independent from the jitter
  /// stream, so enabling faults does not perturb jitter draws).
  std::uint64_t seed = 0xfa017ed;

  bool enabled() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 ||
           latency_spike_prob > 0.0 || !blackouts.empty();
  }
};

/// One scripted process-level fault event.
struct ProcessFaultEvent {
  enum class Kind {
    kCrash,    ///< fail-stop: queues flushed, in-flight messages to it lost
    kPause,    ///< slow-node stall: stops computing, messages keep queueing
    kResume,   ///< end of a pause
    kRestart,  ///< crashed process comes back (in-flight state was lost)
  };

  Rank rank = 0;
  SimTime time = 0.0;
  Kind kind = Kind::kCrash;
};

inline const char* processFaultKindName(ProcessFaultEvent::Kind k) {
  switch (k) {
    case ProcessFaultEvent::Kind::kCrash: return "crash";
    case ProcessFaultEvent::Kind::kPause: return "pause";
    case ProcessFaultEvent::Kind::kResume: return "resume";
    case ProcessFaultEvent::Kind::kRestart: return "restart";
  }
  return "?";
}

}  // namespace loadex
