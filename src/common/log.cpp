#include "common/log.h"

#include <algorithm>
#include <cctype>
#include <iostream>

#include "common/expect.h"

namespace loadex {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() { return g_level; }
void setLogLevel(LogLevel level) { g_level = level; }

LogLevel parseLogLevel(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "off") return LogLevel::kOff;
  if (s == "error") return LogLevel::kError;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "info") return LogLevel::kInfo;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "trace") return LogLevel::kTrace;
  LOADEX_EXPECT(false, "unknown log level: " + name);
}

namespace detail {
void emitLog(LogLevel level, const std::string& message) {
  std::cerr << "[" << levelName(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace loadex
