// The annotated synchronisation layer: every lock and condition variable
// in src/ goes through these wrappers (loadex-lint rule `raw-sync` bans
// the std primitives everywhere else), which buys three things the raw
// primitives cannot give us:
//
//   compile-time checking — the LOADEX_* attribute set below maps onto
//     Clang Thread Safety Analysis (no-op on GCC). Members carry
//     LOADEX_GUARDED_BY(mu), functions carry LOADEX_REQUIRES /
//     LOADEX_ACQUIRE / LOADEX_RELEASE / LOADEX_EXCLUDES, and the `tsa`
//     CMake preset builds src/ with `-Wthread-safety -Werror`, so a
//     handler touching shared state without its lock is a build break,
//     not a TSan lottery ticket.
//   runtime backing — debug builds (and every sanitizer build) track the
//     owning thread of each Mutex, so LOADEX_ASSERT_HELD aborts the
//     moment an annotation is violated on a path the static analysis
//     could not see (callbacks, type-erased closures). Release builds
//     compile the checks away: sizeof(Mutex) == sizeof(std::mutex).
//   deadlock freedom by construction — every Mutex is constructed with a
//     LockRank from the global hierarchy below, and a thread may only
//     acquire a mutex whose rank is strictly greater than every rank it
//     already holds. Debug builds enforce this on every acquisition;
//     loadex-lint rule `lock-hierarchy` checks lexically nested
//     acquisitions against the declared order at review time.
//
// The lock hierarchy (acquire strictly upward; see DESIGN.md §13 for the
// full rationale):
//
//   kShard           (5)   rt executor shard ownership: whoever holds a
//                          shard's mutex is the unique consumer of its
//                          member ranks' mailboxes, wheels and spill.
//                          Handlers run under it, so it sits below every
//                          lock a handler may take
//   kWorkloadTally   (10)  WorkloadDriver tallies — leaf from driver side
//   kSvcLedger       (15)  svc request ledger; tight scopes only, never
//                          held across a mechanism or transport call
//   kLifecycle       (20)  RtWorld crash/restart/sweep transitions; sweeps
//                          pop sealed mailboxes, so it ranks below them
//   kMailboxPark     (30)  Mailbox consumer/producer parking; pop() holds
//                          it across tryPop, which takes the deque lock
//   kMailboxDeque    (40)  Mailbox mutex-mode deque — innermost rt lock
//   kAuditSerial     (50)  LockedAuditObserver hook serialisation
//   kMetricsRegistry (60)  MetricsRegistry; gauge sampling emits trace
//                          counters, so it ranks below the trace ring
//   kTraceRing       (70)  TraceRecorder ring — leaf of the whole system
//
// Thread-confined state (per-node timer wheels, spill queues, the
// supervisor's suspicion table) is not locked at all: it is marked with
// LOADEX_THREAD_CONFINED and asserts, in debug builds, that every touch
// comes from the thread it is bound to.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

// ---------------------------------------------------------------------------
// Capability attributes: Clang Thread Safety Analysis, no-op elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define LOADEX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LOADEX_THREAD_ANNOTATION(x)  // no-op on GCC and others
#endif

/// Declares a class to be a lockable capability (goes on the type).
#define LOADEX_CAPABILITY(x) LOADEX_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires on construction, releases on scope
/// exit (goes on the type).
#define LOADEX_SCOPED_CAPABILITY LOADEX_THREAD_ANNOTATION(scoped_lockable)
/// Member is protected by the given mutex: every read and write must hold it.
#define LOADEX_GUARDED_BY(x) LOADEX_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by the given mutex.
#define LOADEX_PT_GUARDED_BY(x) LOADEX_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function may only be called while holding the given mutex(es).
#define LOADEX_REQUIRES(...) \
  LOADEX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and does not release before returning.
#define LOADEX_ACQUIRE(...) \
  LOADEX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es); they must be held on entry.
#define LOADEX_RELEASE(...) \
  LOADEX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define LOADEX_TRY_ACQUIRE(...) \
  LOADEX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the given mutex(es) (non-reentrancy contract).
#define LOADEX_EXCLUDES(...) \
  LOADEX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Assertion to the analysis that the mutex is held at this point.
#define LOADEX_ASSERT_CAPABILITY(x) \
  LOADEX_THREAD_ANNOTATION(assert_capability(x))
/// Getter returning (a reference to) the named mutex, so the analysis can
/// see through the indirection.
#define LOADEX_RETURN_CAPABILITY(x) LOADEX_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch for functions deliberately exercising misuse (tests of the
/// runtime backstop). Never legitimate in src/.
#define LOADEX_NO_THREAD_SAFETY_ANALYSIS \
  LOADEX_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Debug-check gating. LOADEX_SYNC_FORCE_DEBUG (tests) beats
// LOADEX_SYNC_DEBUG (build system: on for sanitizer builds) beats the
// NDEBUG default. Targets must not mix settings across TUs that share
// sync-including object code (the build system keeps one setting per
// build tree; the forced test targets link no such library).
// ---------------------------------------------------------------------------

#if defined(LOADEX_SYNC_FORCE_DEBUG)
#define LOADEX_SYNC_DEBUG_ENABLED LOADEX_SYNC_FORCE_DEBUG
#elif defined(LOADEX_SYNC_DEBUG)
#define LOADEX_SYNC_DEBUG_ENABLED LOADEX_SYNC_DEBUG
#elif !defined(NDEBUG)
#define LOADEX_SYNC_DEBUG_ENABLED 1
#else
#define LOADEX_SYNC_DEBUG_ENABLED 0
#endif

namespace loadex::sync {

/// The global lock hierarchy. A thread may acquire a Mutex only with a
/// rank strictly greater than every rank it already holds (debug-checked
/// on every lock(); lint-checked for lexically nested acquisitions).
/// Keep the numeric order in sync with the table in the file comment —
/// loadex-lint parses this enum to drive the `lock-hierarchy` rule.
enum class LockRank : int {
  kShard = 5,
  kWorkloadTally = 10,
  kSvcLedger = 15,
  kLifecycle = 20,
  kMailboxPark = 30,
  kMailboxDeque = 40,
  kAuditSerial = 50,
  kMetricsRegistry = 60,
  kTraceRing = 70,
};

/// Sync-layer contract failures abort (not throw): they fire on arbitrary
/// threads, possibly mid-unwind, where an exception would be std::terminate
/// with less context anyway. The message goes to stderr first so death
/// tests and humans both see what was violated.
[[noreturn]] inline void syncFatal(const char* what, int rank_a, int rank_b) {
  std::fprintf(stderr, "loadex sync violation: %s (rank %d vs %d)\n", what,
               rank_a, rank_b);
  std::abort();
}

#if LOADEX_SYNC_DEBUG_ENABLED
namespace detail {
/// Ranks held by the current thread, in acquisition order.
inline std::vector<int>& heldRanks() {
  thread_local std::vector<int> held;
  return held;
}

inline void noteAcquired(int rank) {
  auto& held = heldRanks();
  if (!held.empty() && held.back() >= rank)
    syncFatal("lock acquired out of hierarchy order: new rank must exceed "
              "every held rank",
              rank, held.back());
  held.push_back(rank);
}

inline void noteReleased(int rank) {
  auto& held = heldRanks();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == rank) {
      held.erase(std::next(it).base());
      return;
    }
  }
  syncFatal("released a lock this thread does not hold", rank, -1);
}
}  // namespace detail
#endif  // LOADEX_SYNC_DEBUG_ENABLED

/// Annotated mutex. Construction requires a LockRank so every lock in the
/// tree is placed in the global hierarchy; there is deliberately no
/// default constructor.
class LOADEX_CAPABILITY("mutex") Mutex {
 public:
#if LOADEX_SYNC_DEBUG_ENABLED
  explicit Mutex(LockRank rank) : rank_(static_cast<int>(rank)) {}
#else
  explicit Mutex(LockRank) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LOADEX_ACQUIRE() {
#if LOADEX_SYNC_DEBUG_ENABLED
    detail::noteAcquired(rank_);
#endif
    mu_.lock();
#if LOADEX_SYNC_DEBUG_ENABLED
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  void unlock() LOADEX_RELEASE() {
#if LOADEX_SYNC_DEBUG_ENABLED
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
    detail::noteReleased(rank_);
#endif
    mu_.unlock();
  }

  bool try_lock() LOADEX_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if LOADEX_SYNC_DEBUG_ENABLED
    detail::noteAcquired(rank_);
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
    return true;
  }

  /// The runtime back-stop behind every LOADEX_REQUIRES annotation: debug
  /// builds abort unless the calling thread holds this mutex; release
  /// builds compile to nothing.
  void assertHeld() const LOADEX_ASSERT_CAPABILITY(this) {
#if LOADEX_SYNC_DEBUG_ENABLED
    if (owner_.load(std::memory_order_relaxed) != std::this_thread::get_id())
      syncFatal("assertHeld: lock not held by the calling thread", rank_, -1);
#endif
  }

#if LOADEX_SYNC_DEBUG_ENABLED
  int rank() const { return rank_; }
#endif

 private:
  std::mutex mu_;
#if LOADEX_SYNC_DEBUG_ENABLED
  /// Owning thread while locked (debug only). Written under the lock,
  /// read from anywhere by assertHeld — hence atomic, relaxed: the value
  /// only answers "is it me?", never orders other memory.
  std::atomic<std::thread::id> owner_{};
  int rank_;
#endif
};

/// True when the debug owner/rank machinery is compiled in.
inline constexpr bool kDebugChecksEnabled = LOADEX_SYNC_DEBUG_ENABLED != 0;

/// RAII scoped lock over a Mutex (the only way locks are taken outside
/// sync.h). Mirrors the RAII pattern from the Clang TSA documentation:
/// unlock()/lock() allow the wait-loop dance without losing the analysis.
class LOADEX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LOADEX_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }

  ~MutexLock() LOADEX_RELEASE() {
    if (held_) mu_.unlock();
  }

  /// Temporarily release inside the scope (blocking-retry loops).
  void unlock() LOADEX_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

  /// Re-acquire after unlock(); the destructor will release again.
  void lock() LOADEX_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable waiting on a sync::Mutex. Waits take the mutex by
/// reference (not a lock object) so the LOADEX_REQUIRES contract names
/// the capability the analysis tracks.
class CondVar {
 public:
  /// Wait up to `seconds`; returns on notify, timeout or spuriously.
  /// Deliberately predicate-free: loadex waits are bounded slices whose
  /// callers re-check their own condition on every turn, so a spurious
  /// wakeup costs one iteration, never correctness.
  void waitFor(Mutex& mu, double seconds) LOADEX_REQUIRES(mu) {
    mu.assertHeld();
    // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): see above —
    // every caller loops on a bounded slice and re-checks its condition.
    cv_.wait_for(mu, std::chrono::duration<double>(seconds));
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  /// _any: waits directly on the annotated Mutex (BasicLockable), so the
  /// debug owner/rank tracking stays exact across the unlock/relock the
  /// wait performs.
  std::condition_variable_any cv_;
};

/// Debug marker for state owned by exactly one thread at a time (timer
/// wheels, spill queues, the supervisor's suspicion table). Binds to the
/// first asserting thread; an explicit rebind hands ownership over on
/// audited transitions (rank restart spawning a fresh node thread).
/// Release builds carry no state and compile every check away.
class ThreadConfined {
 public:
  /// Claim (or hand over) ownership for the calling thread.
  void bindToCurrentThread() {
#if LOADEX_SYNC_DEBUG_ENABLED
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  /// Debug: abort unless called on the owning thread (first caller binds).
  void assertConfined() const {
#if LOADEX_SYNC_DEBUG_ENABLED
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id owner = owner_.load(std::memory_order_relaxed);
    if (owner == std::thread::id{}) {
      if (owner_.compare_exchange_strong(owner, self,
                                         std::memory_order_relaxed))
        return;
    }
    if (owner != self)
      syncFatal("thread-confined state touched from a foreign thread", -1,
                -1);
#endif
  }

#if LOADEX_SYNC_DEBUG_ENABLED
 private:
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace loadex::sync

/// Declares a thread-confined member; greppable by loadex-lint and humans.
#define LOADEX_THREAD_CONFINED(member) ::loadex::sync::ThreadConfined member

/// Runtime assertion that `mu` is held by the calling thread (see
/// Mutex::assertHeld). Pairs with every LOADEX_REQUIRES annotation.
#define LOADEX_ASSERT_HELD(mu) (mu).assertHeld()

/// Runtime assertion that the calling thread owns this confined state.
#define LOADEX_ASSERT_CONFINED(member) (member).assertConfined()
