// Plain-text table printer used by the benchmark harness to render
// paper-style tables (aligned columns, optional title and footnote).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace loadex {

class Table {
 public:
  explicit Table(std::string title = "");

  /// Set the header row. Must be called before adding rows.
  void setHeader(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  /// Append a horizontal separator line.
  void addSeparator();

  /// Footnote printed under the table.
  void setFootnote(std::string note);

  /// Render with aligned columns ("left" column 0, right-aligned the rest).
  void print(std::ostream& os) const;

  /// Convenience: number formatting helpers for cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmtInt(long long v);

 private:
  std::string title_;
  std::string footnote_;
  std::vector<std::string> header_;
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace loadex
