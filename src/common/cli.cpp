#include "common/cli.h"

#include <cstdlib>

#include "common/expect.h"

namespace loadex {

CliFlags::CliFlags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // "--name value" if the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::getString(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::getInt(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::getDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::getBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  LOADEX_EXPECT(false, "bad boolean flag value for --" + name + ": " + v);
}

}  // namespace loadex
