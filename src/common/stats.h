// Small statistics helpers: online mean/variance, min/max trackers,
// named counters. Used for simulation metrics and benchmark reporting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace loadex {

/// Welford online accumulator for mean / variance / extrema.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;
  double max() const;
  bool empty() const { return count_ == 0; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A peak tracker for a quantity that goes up and down (e.g. active memory):
/// maintains the current value and remembers the maximum ever reached.
class PeakTracker {
 public:
  void add(double delta);
  void set(double value);
  double current() const { return current_; }
  double peak() const { return peak_; }
  void reset();

 private:
  double current_ = 0.0;
  double peak_ = 0.0;
};

/// Named integer counters, e.g. message counts per type.
class CounterSet {
 public:
  void bump(const std::string& name, std::int64_t amount = 1);
  std::int64_t get(const std::string& name) const;
  std::int64_t total() const;
  const std::map<std::string, std::int64_t>& all() const { return counters_; }
  void merge(const CounterSet& other);
  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::int64_t> counters_;
};

/// Percentile from an unsorted sample (copies + sorts; fine for reporting).
double percentile(std::vector<double> samples, double p);

}  // namespace loadex
