// Minimal leveled logger. Off by default; benches/examples raise the level.
// Not thread-safe by design: the simulator is single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace loadex {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log level. Defaults to kWarn.
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Parse "off|error|warn|info|debug|trace" (case-insensitive).
LogLevel parseLogLevel(const std::string& name);

namespace detail {
void emitLog(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace loadex

#define LOADEX_LOG(level, expr)                                \
  do {                                                         \
    if (static_cast<int>(::loadex::logLevel()) >=              \
        static_cast<int>(::loadex::LogLevel::level)) {         \
      std::ostringstream loadex_log_os;                        \
      loadex_log_os << expr;                                   \
      ::loadex::detail::emitLog(::loadex::LogLevel::level,     \
                                loadex_log_os.str());          \
    }                                                          \
  } while (false)

#define LOG_ERROR(expr) LOADEX_LOG(kError, expr)
#define LOG_WARN(expr) LOADEX_LOG(kWarn, expr)
#define LOG_INFO(expr) LOADEX_LOG(kInfo, expr)
#define LOG_DEBUG(expr) LOADEX_LOG(kDebug, expr)
#define LOG_TRACE(expr) LOADEX_LOG(kTrace, expr)
