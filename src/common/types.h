// Fundamental scalar types shared across the loadex libraries.
#pragma once

#include <cstdint>

namespace loadex {

/// Process rank inside the distributed system, 0-based (MPI-style).
using Rank = int;

/// Simulated wall-clock time in seconds.
using SimTime = double;

/// Floating-point work, in floating-point operations.
using Flops = double;

/// Memory, measured in matrix *entries* (the unit the paper reports:
/// "millions of real entries"). Signed so that deltas can be negative.
using Entries = std::int64_t;

/// Message payload size in bytes (used for bandwidth costs and statistics).
using Bytes = std::int64_t;

/// Sentinel for "no rank".
inline constexpr Rank kNoRank = -1;

}  // namespace loadex
