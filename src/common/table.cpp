#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/expect.h"

namespace loadex {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::setHeader(std::vector<std::string> header) {
  LOADEX_EXPECT(rows_.empty(), "setHeader must precede addRow");
  header_ = std::move(header);
}

void Table::addRow(std::vector<std::string> row) {
  LOADEX_EXPECT(header_.empty() || row.size() == header_.size(),
                "row arity must match header");
  rows_.push_back(Row{false, std::move(row)});
}

void Table::addSeparator() { rows_.push_back(Row{true, {}}); }

void Table::setFootnote(std::string note) { footnote_ = std::move(note); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_)
    if (!r.separator) grow(r.cells);

  std::size_t total = 0;
  for (const auto w : widths) total += w + 3;
  if (total >= 3) total -= 3;

  auto emitRule = [&] { os << std::string(total, '-') << "\n"; };
  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << " | ";
      if (i == 0)
        os << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
      else
        os << std::right << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    os << "\n";
  };

  if (!title_.empty()) {
    os << title_ << "\n";
    emitRule();
  }
  if (!header_.empty()) {
    emitRow(header_);
    emitRule();
  }
  for (const auto& r : rows_) {
    if (r.separator)
      emitRule();
    else
      emitRow(r.cells);
  }
  if (!footnote_.empty()) os << footnote_ << "\n";
  os << "\n";
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmtInt(long long v) {
  // Group thousands for readability, matching the paper's large counts.
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace loadex
