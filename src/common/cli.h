// Tiny command-line flag parser for benches and examples.
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace loadex {

class CliFlags {
 public:
  /// Parse argv; unknown positional arguments are collected separately.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string getString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t getInt(const std::string& name, std::int64_t fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  bool getBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& programName() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace loadex
