// Deterministic pseudo-random number generation.
//
// All randomness in loadex flows through Rng so that every simulation and
// every generated workload is exactly reproducible from a 64-bit seed.
// The generator is xoshiro256++ (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace loadex {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mixing of a 64-bit value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though the member helpers below are
/// preferred (they are reproducible across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x10adec5u);  // "loadexs"
  Rng(std::uint64_t seed, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniformInt(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniformReal();

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Standard normal (Box–Muller, deterministic).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = static_cast<std::uint64_t>(c.size());
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = uniformInt(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child generator (for per-process streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace loadex
