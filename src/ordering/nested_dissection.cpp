#include <algorithm>
#include <numeric>

#include "common/expect.h"
#include "ordering/ordering.h"

namespace loadex::ordering {

namespace {

/// A subproblem: the induced subgraph on `verts` (global ids), stored as a
/// local Pattern with local ids 0..verts.size()-1.
struct Sub {
  std::vector<int> verts;  ///< local -> global
  sparse::Pattern graph;
};

Sub induce(const sparse::Pattern& g, std::vector<int> verts,
           std::vector<int>& global_to_local) {
  for (std::size_t i = 0; i < verts.size(); ++i)
    global_to_local[static_cast<std::size_t>(verts[i])] = static_cast<int>(i);
  std::vector<std::pair<int, int>> edges;
  for (std::size_t i = 0; i < verts.size(); ++i) {
    for (const int w : g.row(verts[i])) {
      const int lw = global_to_local[static_cast<std::size_t>(w)];
      if (lw > static_cast<int>(i)) edges.emplace_back(static_cast<int>(i), lw);
    }
  }
  Sub sub;
  sub.verts = std::move(verts);
  sub.graph = sparse::Pattern::fromEdges(static_cast<int>(sub.verts.size()),
                                         std::move(edges));
  // Reset the scratch map for the next caller.
  for (const int v : sub.verts)
    global_to_local[static_cast<std::size_t>(v)] = -1;
  return sub;
}

/// BFS levels from `start` on `g`; returns level of each vertex (-1 if
/// unreached) and the number of levels.
int bfsLevels(const sparse::Pattern& g, int start, std::vector<int>& level) {
  level.assign(static_cast<std::size_t>(g.n()), -1);
  std::vector<int> frontier{start};
  level[static_cast<std::size_t>(start)] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (const int v : frontier) {
      for (const int w : g.row(v)) {
        if (level[static_cast<std::size_t>(w)] == -1) {
          level[static_cast<std::size_t>(w)] = depth + 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
    if (!frontier.empty()) ++depth;
  }
  return depth + 1;
}

void orderRecursive(const sparse::Pattern& g, Sub sub,
                    const NestedDissectionOptions& opts, int depth,
                    std::vector<int>& global_to_local,
                    std::vector<int>& out_perm) {
  const int n = sub.graph.n();
  if (n == 0) return;

  // Small or too deep: finish with minimum degree for fill quality.
  if (n <= opts.leaf_size || depth >= opts.max_depth) {
    const auto local = minimumDegree(sub.graph);
    for (const int l : local)
      out_perm.push_back(sub.verts[static_cast<std::size_t>(l)]);
    return;
  }

  // Split disconnected subgraphs into components first.
  std::vector<int> comp;
  const int ncomp = sub.graph.connectedComponents(&comp);
  if (ncomp > 1) {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(ncomp));
    for (int v = 0; v < n; ++v)
      parts[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
          .push_back(sub.verts[static_cast<std::size_t>(v)]);
    for (auto& p : parts)
      orderRecursive(g, induce(g, std::move(p), global_to_local), opts,
                     depth, global_to_local, out_perm);
    return;
  }

  // Level-set separator: BFS from a pseudo-peripheral vertex, cut at the
  // median level.
  const int start = pseudoPeripheral(sub.graph, 0);
  std::vector<int> level;
  const int nlevels = bfsLevels(sub.graph, start, level);
  if (nlevels < 3) {
    // No useful separator (e.g. a clique): minimum degree finishes it.
    const auto local = minimumDegree(sub.graph);
    for (const int l : local)
      out_perm.push_back(sub.verts[static_cast<std::size_t>(l)]);
    return;
  }

  // Choose the level whose prefix holds ~half the vertices.
  std::vector<int> level_count(static_cast<std::size_t>(nlevels), 0);
  for (const int l : level) ++level_count[static_cast<std::size_t>(l)];
  int cut = 1, below = level_count[0];
  while (cut < nlevels - 1 && below + level_count[static_cast<std::size_t>(cut)] <
                                  n / 2) {
    below += level_count[static_cast<std::size_t>(cut)];
    ++cut;
  }

  std::vector<int> a, b, sep;
  for (int v = 0; v < n; ++v) {
    const int gl = sub.verts[static_cast<std::size_t>(v)];
    const int l = level[static_cast<std::size_t>(v)];
    if (l < cut)
      a.push_back(gl);
    else if (l > cut)
      b.push_back(gl);
    else
      sep.push_back(gl);
  }
  if (a.empty() || b.empty()) {
    const auto local = minimumDegree(sub.graph);
    for (const int l : local)
      out_perm.push_back(sub.verts[static_cast<std::size_t>(l)]);
    return;
  }

  orderRecursive(g, induce(g, std::move(a), global_to_local), opts, depth + 1,
                 global_to_local, out_perm);
  orderRecursive(g, induce(g, std::move(b), global_to_local), opts, depth + 1,
                 global_to_local, out_perm);
  // The separator is eliminated last: it becomes the subtree root front.
  for (const int s : sep) out_perm.push_back(s);
}

}  // namespace

std::vector<int> nestedDissection(const sparse::Pattern& pattern,
                                  NestedDissectionOptions options) {
  const int n = pattern.n();
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(n));
  std::vector<int> scratch(static_cast<std::size_t>(n), -1);

  // Quasi-dense rows (hub nets in circuit matrices, dense LP rows) wreck
  // level-set separators; order them last — the standard dense-row
  // deferral — and dissect the sparse remainder.
  double avg_deg =
      n > 0 ? static_cast<double>(pattern.adjCount()) / n : 0.0;
  const int dense_cut = std::max(
      options.dense_degree_min,
      static_cast<int>(options.dense_degree_factor * (avg_deg + 1.0)));
  std::vector<int> sparse_part, dense_part;
  sparse_part.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    if (pattern.degree(v) >= dense_cut)
      dense_part.push_back(v);
    else
      sparse_part.push_back(v);
  }
  if (dense_part.size() > static_cast<std::size_t>(n) / 4) {
    // Mostly-dense matrix: deferral does not apply.
    sparse_part.resize(static_cast<std::size_t>(n));
    std::iota(sparse_part.begin(), sparse_part.end(), 0);
    dense_part.clear();
  }

  orderRecursive(pattern, induce(pattern, std::move(sparse_part), scratch),
                 options, 0, scratch, perm);
  std::sort(dense_part.begin(), dense_part.end(), [&](int a, int b) {
    return pattern.degree(a) < pattern.degree(b);
  });
  perm.insert(perm.end(), dense_part.begin(), dense_part.end());

  LOADEX_EXPECT(sparse::isPermutation(perm),
                "nested dissection produced a non-permutation");
  return perm;
}

const char* orderingKindName(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kNatural: return "natural";
    case OrderingKind::kRcm: return "rcm";
    case OrderingKind::kMinDegree: return "min_degree";
    case OrderingKind::kNestedDissection: return "nested_dissection";
  }
  return "?";
}

OrderingKind parseOrderingKind(const std::string& name) {
  if (name == "natural") return OrderingKind::kNatural;
  if (name == "rcm") return OrderingKind::kRcm;
  if (name == "min_degree" || name == "amd") return OrderingKind::kMinDegree;
  if (name == "nested_dissection" || name == "nd" || name == "metis")
    return OrderingKind::kNestedDissection;
  LOADEX_EXPECT(false, "unknown ordering kind: " + name);
}

std::vector<int> computeOrdering(const sparse::Pattern& pattern,
                                 OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kNatural:
      return sparse::identityPermutation(pattern.n());
    case OrderingKind::kRcm:
      return reverseCuthillMcKee(pattern);
    case OrderingKind::kMinDegree:
      return minimumDegree(pattern);
    case OrderingKind::kNestedDissection:
      return nestedDissection(pattern);
  }
  LOADEX_EXPECT(false, "unknown ordering kind");
}

}  // namespace loadex::ordering
