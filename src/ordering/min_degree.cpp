#include <algorithm>
#include <vector>

#include "common/expect.h"
#include "ordering/ordering.h"

namespace loadex::ordering {

// Exact minimum-degree ordering on the elimination graph.
//
// Eliminating vertex v turns its neighbourhood into a clique; the next
// pivot is always a vertex of minimum current degree. The implementation
// keeps sorted adjacency vectors and a degree bucket structure. This is
// the classical quadratic-worst-case algorithm — fine for the problem
// sizes it is used on (nested dissection leaves, tests, examples); the
// benchmark problems are ordered with nested dissection.
std::vector<int> minimumDegree(const sparse::Pattern& pattern) {
  const int n = pattern.n();
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    adj[static_cast<std::size_t>(i)].assign(pattern.row(i).begin(),
                                            pattern.row(i).end());

  // Degree buckets: bucket[d] holds candidate vertices of degree d (lazily
  // maintained — entries may be stale and are re-checked on pop).
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(n) + 1);
  std::vector<int> degree(static_cast<std::size_t>(n));
  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    degree[static_cast<std::size_t>(i)] =
        static_cast<int>(adj[static_cast<std::size_t>(i)].size());
    buckets[static_cast<std::size_t>(degree[static_cast<std::size_t>(i)])]
        .push_back(i);
  }

  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(n));
  int cursor = 0;  // smallest possibly-non-empty bucket
  std::vector<int> scratch;

  for (int step = 0; step < n; ++step) {
    // Pop the next valid minimum-degree vertex.
    int v = -1;
    while (v == -1) {
      LOADEX_EXPECT(cursor <= n, "minimum degree ran out of buckets");
      auto& b = buckets[static_cast<std::size_t>(cursor)];
      while (!b.empty()) {
        const int cand = b.back();
        b.pop_back();
        if (!eliminated[static_cast<std::size_t>(cand)] &&
            degree[static_cast<std::size_t>(cand)] == cursor) {
          v = cand;
          break;
        }
      }
      if (v == -1) ++cursor;
    }

    perm.push_back(v);
    eliminated[static_cast<std::size_t>(v)] = true;
    auto& nv = adj[static_cast<std::size_t>(v)];

    // Connect the remaining neighbours of v into a clique.
    for (const int u : nv) {
      if (eliminated[static_cast<std::size_t>(u)]) continue;
      auto& nu = adj[static_cast<std::size_t>(u)];
      // nu := (nu ∪ nv) \ {u, v}, keeping only non-eliminated vertices.
      scratch.clear();
      scratch.reserve(nu.size() + nv.size());
      std::set_union(nu.begin(), nu.end(), nv.begin(), nv.end(),
                     std::back_inserter(scratch));
      nu.clear();
      for (const int w : scratch)
        if (w != u && w != v && !eliminated[static_cast<std::size_t>(w)])
          nu.push_back(w);
      const int d = static_cast<int>(nu.size());
      if (d != degree[static_cast<std::size_t>(u)]) {
        degree[static_cast<std::size_t>(u)] = d;
        buckets[static_cast<std::size_t>(d)].push_back(u);
        cursor = std::min(cursor, d);
      }
    }
    nv.clear();
    nv.shrink_to_fit();
  }

  LOADEX_EXPECT(sparse::isPermutation(perm),
                "minimum degree produced a non-permutation");
  return perm;
}

}  // namespace loadex::ordering
