#include <algorithm>

#include "common/expect.h"
#include "ordering/ordering.h"

namespace loadex::ordering {

namespace {

struct BfsResult {
  std::vector<int> order;    ///< visit order (component of the start vertex)
  int levels = 0;            ///< eccentricity + 1
  int last_level_start = 0;  ///< index into order of the last level
};

/// Degree-sorted BFS (Cuthill–McKee style) over unvisited vertices.
BfsResult bfs(const sparse::Pattern& g, int start, std::vector<bool>& visited) {
  BfsResult r;
  r.order.push_back(start);
  visited[static_cast<std::size_t>(start)] = true;
  std::size_t head = 0;
  while (head < r.order.size()) {
    const std::size_t level_end = r.order.size();
    r.last_level_start = static_cast<int>(head);
    ++r.levels;
    std::vector<int> level(
        r.order.begin() + static_cast<std::ptrdiff_t>(head),
        r.order.begin() + static_cast<std::ptrdiff_t>(level_end));
    std::sort(level.begin(), level.end(),
              [&](int a, int b) { return g.degree(a) < g.degree(b); });
    for (const int v : level) {
      std::vector<int> nbrs(g.row(v).begin(), g.row(v).end());
      std::sort(nbrs.begin(), nbrs.end(),
                [&](int a, int b) { return g.degree(a) < g.degree(b); });
      for (const int w : nbrs) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          r.order.push_back(w);
        }
      }
    }
    head = level_end;
  }
  return r;
}

}  // namespace

/// Find a pseudo-peripheral vertex of the component containing `start`
/// (George–Liu iteration: hop to a low-degree vertex of the deepest level
/// until the eccentricity stops improving).
int pseudoPeripheral(const sparse::Pattern& g, int start) {
  int v = start;
  int best_levels = -1;
  for (int iter = 0; iter < 8; ++iter) {
    std::vector<bool> scratch(static_cast<std::size_t>(g.n()), false);
    const BfsResult r = bfs(g, v, scratch);
    if (r.levels <= best_levels) break;
    best_levels = r.levels;
    int cand = r.order.back();
    for (std::size_t i = static_cast<std::size_t>(r.last_level_start);
         i < r.order.size(); ++i)
      if (g.degree(r.order[i]) < g.degree(cand)) cand = r.order[i];
    v = cand;
  }
  return v;
}

std::vector<int> reverseCuthillMcKee(const sparse::Pattern& pattern) {
  const int n = pattern.n();
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    if (visited[static_cast<std::size_t>(s)]) continue;
    const int start = pseudoPeripheral(pattern, s);
    const BfsResult r = bfs(pattern, start, visited);
    perm.insert(perm.end(), r.order.begin(), r.order.end());
  }
  std::reverse(perm.begin(), perm.end());
  LOADEX_EXPECT(sparse::isPermutation(perm), "RCM produced a non-permutation");
  return perm;
}

}  // namespace loadex::ordering
