// Fill-reducing orderings.
//
// The paper reorders with METIS; this library substitutes its own nested
// dissection (the workhorse for the benchmark problems), with minimum
// degree and reverse Cuthill–McKee available for comparison and for small
// problems. All functions return a new->old permutation: vertex i of the
// permuted matrix is vertex perm[i] of the original.
#pragma once

#include <string>
#include <vector>

#include "sparse/pattern.h"

namespace loadex::ordering {

/// Reverse Cuthill–McKee (bandwidth-reducing; baseline, not fill-optimal).
std::vector<int> reverseCuthillMcKee(const sparse::Pattern& pattern);

/// Exact minimum (external) degree with elimination-graph updates.
/// Intended for small/medium problems (quadratic worst case).
std::vector<int> minimumDegree(const sparse::Pattern& pattern);

struct NestedDissectionOptions {
  /// Stop recursing and order the part with minimum degree below this size.
  int leaf_size = 64;
  /// Maximum recursion depth (safety valve).
  int max_depth = 64;
  /// Quasi-dense row deferral: vertices whose degree exceeds
  /// max(dense_degree_min, dense_degree_factor * average degree) are
  /// ordered last instead of polluting the level-set separators.
  int dense_degree_min = 48;
  double dense_degree_factor = 8.0;
};

/// Nested dissection via BFS level-set separators from pseudo-peripheral
/// vertices. Works on any connected or disconnected pattern.
std::vector<int> nestedDissection(const sparse::Pattern& pattern,
                                  NestedDissectionOptions options = {});

enum class OrderingKind { kNatural, kRcm, kMinDegree, kNestedDissection };

const char* orderingKindName(OrderingKind kind);
OrderingKind parseOrderingKind(const std::string& name);

/// Dispatch helper.
std::vector<int> computeOrdering(const sparse::Pattern& pattern,
                                 OrderingKind kind);

/// George–Liu pseudo-peripheral vertex of the component containing
/// `start` (shared by RCM and the nested-dissection separator search).
int pseudoPeripheral(const sparse::Pattern& pattern, int start);

}  // namespace loadex::ordering
