// Static planning of the assembly tree over N processes:
//  * node types (paper §4.1 / Fig. 2): leaf subtrees (all tasks of a
//    subtree mapped to one process), type-1 sequential nodes, type-2
//    1-D-parallel master/slave nodes (the dynamic-decision sites), and a
//    type-3 2-D root treated statically (ScaLAPACK substitute);
//  * Geist–Ng style proportional mapping of processes onto subtrees;
//  * static choice of each node's master (the paper: "mapping of the
//    masters ... is static and only aims at balancing the memory").
#pragma once

#include <vector>

#include "common/types.h"
#include "solver/costs.h"
#include "symbolic/assembly_tree.h"

namespace loadex::solver {

enum class NodeType { kSubtree, kType1, kType2, kType3 };

inline const char* nodeTypeName(NodeType t) {
  switch (t) {
    case NodeType::kSubtree: return "subtree";
    case NodeType::kType1: return "type1";
    case NodeType::kType2: return "type2";
    case NodeType::kType3: return "type3";
  }
  return "?";
}

struct NodePlan {
  NodeType type = NodeType::kType1;
  Rank master = 0;
  FrontCosts costs;
};

struct MappingOptions {
  int nprocs = 4;
  /// Fronts at least this large (and with enough border rows) become
  /// type-2 parallel nodes.
  int type2_min_front = 300;
  /// Minimum border rows for a type-2 node to be worth parallelizing.
  int type2_min_border = 32;
  /// Treat the biggest root front as a static 2-D (type-3) node.
  bool type3_root = true;
};

struct TreePlan {
  std::vector<NodePlan> nodes;              ///< indexed by node id
  std::vector<double> subtree_flops;        ///< total flops below+at node
  std::vector<double> initial_workload;     ///< per rank: mapped subtree work
  std::vector<int> type2_masters_per_rank;  ///< for No_more_master triggers
  int dynamic_decisions = 0;                ///< number of type-2 nodes
  double total_flops = 0.0;
  Entries total_factor_entries = 0;

  const NodePlan& at(int id) const { return nodes[static_cast<std::size_t>(id)]; }
};

TreePlan planTree(const symbolic::AssemblyTree& tree, bool symmetric,
                  const MappingOptions& options);

}  // namespace loadex::solver
