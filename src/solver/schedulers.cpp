#include "solver/schedulers.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/expect.h"

namespace loadex::solver {

const char* strategyName(Strategy s) {
  return s == Strategy::kWorkload ? "workload" : "memory";
}

Strategy parseStrategy(const std::string& name) {
  if (name == "workload") return Strategy::kWorkload;
  if (name == "memory") return Strategy::kMemory;
  LOADEX_EXPECT(false, "unknown scheduling strategy: " + name);
}

std::unique_ptr<SlaveScheduler> makeScheduler(Strategy strategy) {
  if (strategy == Strategy::kWorkload)
    return std::make_unique<WorkloadScheduler>();
  return std::make_unique<MemoryScheduler>();
}

std::vector<RowAssignment> waterFillRows(
    const std::vector<std::pair<double, Rank>>& sorted_metric, int rows,
    double metric_per_row, int min_rows_per_slave, int max_slaves) {
  LOADEX_EXPECT(rows > 0, "no rows to distribute");
  LOADEX_EXPECT(!sorted_metric.empty(), "no candidate slaves");
  min_rows_per_slave = std::max(1, min_rows_per_slave);

  // Upper bound on the useful number of slaves.
  int nslaves = std::min<int>(
      {static_cast<int>(sorted_metric.size()), std::max(1, max_slaves),
       std::max(1, rows / min_rows_per_slave)});

  while (true) {
    // Water level T with the nslaves least-loaded candidates, dropping
    // candidates that sit above the water line.
    int used = nslaves;
    double level = 0.0;
    while (used > 0) {
      double sum = 0.0;
      for (int i = 0; i < used; ++i) sum += sorted_metric[static_cast<std::size_t>(i)].first;
      level = (sum + rows * metric_per_row) / used;
      if (used == 1 ||
          level >= sorted_metric[static_cast<std::size_t>(used) - 1].first)
        break;
      --used;
    }

    // Convert the level into integer row counts.
    std::vector<RowAssignment> out;
    out.reserve(static_cast<std::size_t>(used));
    int assigned = 0;
    for (int i = 0; i < used; ++i) {
      double want = rows;
      if (metric_per_row > 0.0)
        want = (level - sorted_metric[static_cast<std::size_t>(i)].first) /
               metric_per_row;
      else
        want = static_cast<double>(rows) / used;
      int r = static_cast<int>(std::floor(want));
      r = std::max(0, std::min(r, rows - assigned));
      out.push_back({sorted_metric[static_cast<std::size_t>(i)].second, r});
      assigned += r;
    }
    // Distribute the rounding leftovers to the least-loaded slaves.
    for (std::size_t i = 0; assigned < rows; i = (i + 1) % out.size()) {
      ++out[i].rows;
      ++assigned;
    }

    // Enforce granularity: drop empty/undersized slaves and retry with a
    // smaller committee (their rows go back into the pool).
    int undersized = 0;
    for (const auto& a : out)
      if (a.rows < min_rows_per_slave) ++undersized;
    if (undersized == 0 || static_cast<int>(out.size()) <= 1) {
      out.erase(std::remove_if(out.begin(), out.end(),
                               [](const RowAssignment& a) { return a.rows == 0; }),
                out.end());
      // A single undersized slave still gets everything (rows must go
      // somewhere).
      if (out.empty())
        out.push_back({sorted_metric[0].second, rows});
      return out;
    }
    nslaves = std::max(1, static_cast<int>(out.size()) - undersized);
  }
}

core::SlaveSelection SlaveScheduler::select(const core::LoadView& view,
                                            const SelectionRequest& req) const {
  LOADEX_EXPECT(req.rows > 0, "type-2 node without border rows");
  std::vector<std::pair<double, Rank>> cand;
  std::vector<std::pair<double, Rank>> suspects;
  cand.reserve(static_cast<std::size_t>(view.nprocs()));
  for (Rank r = 0; r < view.nprocs(); ++r) {
    if (r == req.master) continue;
    if (view.dead(r)) continue;  // crashed/unreachable: never delegate to it
    if (req.staleness_limit_s > 0.0 &&
        view.staleness(r, req.now) > req.staleness_limit_s)
      continue;  // entry too old to trust
    // Failure-detector suspects (missed heartbeats, not declared dead)
    // are a last resort: used only when no healthy candidate exists.
    (view.suspect(r) ? suspects : cand).emplace_back(metric(view, r), r);
  }
  if (cand.empty()) cand = std::move(suspects);
  if (cand.empty()) return {};  // caller degrades to local execution
  std::stable_sort(cand.begin(), cand.end());

  const auto rows = waterFillRows(cand, req.rows, metricPerRow(req),
                                  req.min_rows_per_slave, req.max_slaves);
  core::SlaveSelection sel;
  sel.reserve(rows.size());
  const double flops_per_row =
      req.rows > 0 ? req.slave_flops / req.rows : 0.0;
  for (const auto& a : rows) {
    core::SlaveAssignment sa;
    sa.slave = a.slave;
    sa.share.workload = flops_per_row * a.rows;
    sa.share.memory = static_cast<double>(a.rows) *
                      static_cast<double>(req.front);
    sel.push_back(sa);
  }
  return sel;
}

}  // namespace loadex::solver
