// The distributed multifrontal factorization, as a sim::Application.
//
// One FactorApp instance drives all N simulated processes (it keeps
// per-rank state internally, as a real MPI application keeps per-process
// state in each rank's memory). It follows the paper's Algorithm 1 shape:
// tasks activate when their children's contributions arrived; type-2
// masters take a dynamic slave-selection decision through the load
// mechanism; slaves receive row blocks, compute, and return contribution
// parts; the type-3 root is processed with a static 2-D distribution.
//
// Memory accounting tracks *active* memory per process (live fronts +
// buffered contribution blocks), the metric Table 4 reports.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/binding.h"
#include "sim/application.h"
#include "solver/mapping.h"
#include "solver/schedulers.h"
#include "symbolic/assembly_tree.h"

namespace loadex::solver {

struct FactorAppOptions {
  int min_rows_per_slave = 8;
  int max_slaves = 16;
  /// Trigger No_more_master after a process's last type-2 selection.
  bool announce_no_more_master = true;
  /// Memory-aware local task selection (§4.2.1's task-selection side):
  /// when the local active memory exceeds the view average, prefer the
  /// ready task with the smallest front.
  bool memory_aware_task_selection = false;
  /// Degradation awareness: candidates not heard from for longer than
  /// this are skipped by the slave selection (0 = off). Dead-flagged
  /// ranks are always skipped.
  double staleness_limit_s = 0.0;
};

class FactorApp final : public sim::Application {
 public:
  FactorApp(const symbolic::AssemblyTree& tree, const TreePlan& plan,
            core::MechanismSet& mechanisms, const SlaveScheduler& scheduler,
            FactorAppOptions options);

  // ---- sim::Application -------------------------------------------------
  void onStart(sim::Process& p) override;
  void onAppMessage(sim::Process& p, const sim::Message& m) override;
  std::optional<sim::ComputeTask> nextTask(sim::Process& p) override;
  bool finished(const sim::Process& p) const override;

  // ---- results ----------------------------------------------------------
  bool allNodesDone() const { return nodes_done_ == tree_.size(); }
  int nodesDone() const { return nodes_done_; }
  double peakActiveMemory(Rank r) const;   ///< entries
  double maxPeakActiveMemory() const;      ///< max over ranks
  /// Active memory currently held (should return to ~0 at quiescence:
  /// every front and contribution block is eventually freed).
  double currentActiveMemory(Rank r) const;
  Entries factorEntries(Rank r) const;
  std::int64_t appMessages() const { return app_messages_; }
  int selectionsMade() const { return selections_made_; }
  /// Type-2 nodes the master executed alone (no usable slave candidate).
  int localFallbacks() const { return local_fallbacks_; }

  /// Printable name of an application-channel message tag (used by the
  /// trace recorder to label wire slices).
  static const char* appTagName(int tag);

 private:
  // message tags on the application channel
  static constexpr int kTagContribution = 10;
  static constexpr int kTagSlaveTask = 11;
  static constexpr int kTagSlavePart = 12;
  static constexpr int kTagRootChunk = 13;

  struct SlaveWork {
    int node = -1;
    Rank master = kNoRank;
    int rows = 0;
    Flops flops = 0.0;
    Entries mem = 0;
    Entries cb_part = 0;
  };

  struct ProcState {
    std::deque<int> ready;             ///< ready local (master) nodes
    std::deque<SlaveWork> slave_work;  ///< received row blocks
    std::deque<std::pair<Flops, Entries>> root_chunks;
    int type2_masters_left = 0;
    PeakTracker active_mem;            ///< entries
    Entries factor_entries = 0;
  };

  struct NodeState {
    int contribs_pending = 0;  ///< children contributions not yet arrived
    /// Where the children's contribution-block entries physically live
    /// until this node's assembly consumes them. For a type-2 child the
    /// holders are its *slaves* — so the child's slave selection decides
    /// where CB memory sits, exactly the lever the memory-based strategy
    /// uses in MUMPS.
    std::vector<std::pair<Rank, Entries>> cb_holders;
    int parts_pending = 0;     ///< slave CB parts not yet arrived (type 2)
    bool selection_done = false;
    /// Type-2 node executed entirely by its master because no live, fresh
    /// slave candidate was available (degraded mode).
    bool local_fallback = false;
    bool master_done = false;
    bool completed = false;
  };

  ProcState& ps(Rank r) { return procs_[static_cast<std::size_t>(r)]; }
  NodeState& ns(int id) { return nodes_[static_cast<std::size_t>(id)]; }

  /// Mirror an active-memory change into both the local tracker and the
  /// mechanism's memory metric.
  void memDelta(sim::Process& p, Entries delta, bool delegated = false);

  /// Release the contribution blocks buffered for node `id` from the
  /// processes holding them (called when the node's assembly starts).
  void consumeContributions(int id);

  void activateNode(sim::Process& p, int id);
  sim::ComputeTask makeMasterTask(sim::Process& p, int id);
  sim::ComputeTask makeSlaveTask(sim::Process& p, SlaveWork work);
  void performSelection(sim::Process& p, int id,
                        const core::LoadView& view);
  void masterPartDone(sim::Process& p, int id);
  void maybeCompleteType2(sim::Process& p, int id);
  void completeNode(sim::Process& p, int id);
  void deliverContribution(sim::Process& p, int node, Entries cb);
  void startRoot(sim::Process& p, int id);

  const symbolic::AssemblyTree& tree_;
  const TreePlan& plan_;
  core::MechanismSet& mechs_;
  const SlaveScheduler& scheduler_;
  FactorAppOptions options_;

  std::vector<ProcState> procs_;
  std::vector<NodeState> nodes_;
  int nodes_done_ = 0;
  std::int64_t app_messages_ = 0;
  int selections_made_ = 0;
  int local_fallbacks_ = 0;
};

}  // namespace loadex::solver
