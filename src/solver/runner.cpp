#include "solver/runner.h"

#include <algorithm>

#include "common/expect.h"
#include "common/log.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace loadex::solver {

symbolic::Analysis analyzeProblem(const sparse::Problem& problem,
                                  ordering::OrderingKind ordering) {
  const auto perm = ordering::computeOrdering(problem.pattern, ordering);
  return symbolic::analyze(problem.pattern, perm);
}

SolverResult runSolver(const symbolic::Analysis& analysis, bool symmetric,
                       const SolverConfig& config,
                       const std::string& problem_name) {
  SolverConfig cfg = config;
  cfg.mapping.nprocs = cfg.nprocs;

  const TreePlan plan = planTree(analysis.tree, symmetric, cfg.mapping);

  if (cfg.auto_threshold) {
    // Threshold "of the same order as the granularity of the tasks": a
    // fraction of the mean per-node work / front size.
    const double nn = std::max(1, analysis.tree.size());
    cfg.mech.threshold.workload =
        cfg.auto_threshold_fraction * plan.total_flops / nn;
    double mean_front = 0.0;
    for (const auto& nd : analysis.tree.nodes())
      mean_front += static_cast<double>(nd.front) * nd.front;
    cfg.mech.threshold.memory = cfg.auto_threshold_fraction * mean_front / nn;
  }

  sim::WorldConfig wcfg;
  wcfg.nprocs = cfg.nprocs;
  wcfg.network = cfg.network;
  wcfg.process = cfg.process;
  wcfg.process_faults = cfg.process_faults;
  if (cfg.heterogeneity > 0.0) {
    LOADEX_EXPECT(cfg.heterogeneity < 1.0, "heterogeneity must be in [0,1)");
    Rng rng(cfg.heterogeneity_seed, 0xe7e20);
    wcfg.speed_factors.reserve(static_cast<std::size_t>(cfg.nprocs));
    for (int r = 0; r < cfg.nprocs; ++r)
      wcfg.speed_factors.push_back(
          rng.uniformReal(1.0 - cfg.heterogeneity, 1.0 + cfg.heterogeneity));
  }
  sim::World world(wcfg);

  core::MechanismSet mechs(world, cfg.mechanism, cfg.mech);
  const auto scheduler = makeScheduler(cfg.strategy);
  FactorAppOptions app_opts = cfg.app;
  app_opts.memory_aware_task_selection =
      (cfg.strategy == Strategy::kMemory);
  FactorApp app(analysis.tree, plan, mechs, *scheduler, app_opts);
  for (Rank r = 0; r < cfg.nprocs; ++r)
    world.attach(r, &app, &mechs.at(r));

  // ---- observability ----------------------------------------------------
  // A metrics registry is always installed: the mechanisms publish their
  // stall intervals into it and the result fields below read them back.
  // The trace recorder comes from the config, or stays whatever an outer
  // scope installed (e.g. a test tracing across several runs).
  obs::MetricsRegistry metrics;
  metrics.setSamplePeriod(cfg.metrics_sample_period_s);
  if (cfg.metrics_sample_period_s > 0.0) {
    for (Rank r = 0; r < cfg.nprocs; ++r) {
      metrics.registerGauge("P" + std::to_string(r) + " active_mem sampled",
                            [&app, r] { return app.currentActiveMemory(r); });
      metrics.registerGauge(
          "P" + std::to_string(r) + " state_queue_depth",
          [&world, r] {
            return static_cast<double>(world.process(r).stateQueueDepth());
          });
    }
  }
  if (cfg.trace != nullptr) {
    cfg.trace->nameRankTracks(cfg.nprocs);
    cfg.trace->setMessageNamer([](int channel, int tag) {
      if (channel == static_cast<int>(sim::Channel::kState))
        return std::string(
            core::stateTagName(static_cast<core::StateTag>(tag)));
      return std::string(FactorApp::appTagName(tag));
    });
  }
  obs::ScopedObservation observe(
      cfg.trace != nullptr ? cfg.trace : obs::traceRecorder(), &metrics);

  const sim::RunResult run = world.run();

  SolverResult res;
  res.problem = problem_name;
  res.mechanism = core::mechanismKindName(cfg.mechanism);
  res.strategy = strategyName(cfg.strategy);
  res.nprocs = cfg.nprocs;
  res.completed = app.allNodesDone() && !run.hit_limit;
  res.factor_time = run.end_time;
  res.sim_events = run.events;
  res.schedule_digest = run.schedule_digest;
  res.tree_nodes = analysis.tree.size();
  res.total_flops = plan.total_flops;
  res.dynamic_decisions = plan.dynamic_decisions;
  res.selections_made = app.selectionsMade();
  res.app_messages = app.appMessages();
  res.local_fallbacks = app.localFallbacks();
  res.messages_dropped = run.messages_dropped;
  res.messages_duplicated = run.messages_duplicated;
  res.latency_spikes = run.latency_spikes;
  res.messages_lost_at_down_procs = run.messages_lost_at_down_procs;
  res.crashes = run.crashes;

  double peak = 0.0, sum_peak = 0.0;
  for (Rank r = 0; r < cfg.nprocs; ++r) {
    peak = std::max(peak, app.peakActiveMemory(r));
    sum_peak += app.peakActiveMemory(r);
  }
  res.peak_active_mem = peak;
  res.avg_peak_active_mem = sum_peak / cfg.nprocs;

  const core::MechanismStats total = mechs.aggregateStats();
  res.state_messages = total.messagesSent();
  res.state_bytes = total.bytes_sent;
  res.state_wire_bytes = world.network().bytesSent(sim::Channel::kState);
  res.snapshots = total.snapshots_initiated;
  res.rearms = total.snapshot_rearms;
  res.gaps_detected = total.gaps_detected;
  res.retransmissions = total.retransmissions;
  res.nacks_sent = total.nacks_sent;
  res.duplicates_dropped = total.duplicates_dropped;
  res.snapshot_timeouts = total.snapshot_timeouts;
  res.partial_snapshots = total.partial_snapshots;
  res.ranks_declared_dead = total.ranks_declared_dead;
  // Stall breakdown, read back from the metrics the instrumented code
  // emitted during the run (mechanism stall accumulators, process timers).
  res.snapshot_time = metrics.accumulatorFamilyMax("snapshot/stall",
                                                   cfg.nprocs);
  res.snapshot_stall_total =
      metrics.accumulatorFamilySum("snapshot/stall", cfg.nprocs);
  for (Rank r = 0; r < cfg.nprocs; ++r) {
    const sim::Process& p = world.process(r);
    res.busy_max = std::max(res.busy_max, p.busyTime());
    res.paused_max = std::max(res.paused_max, p.pausedTime());
    res.msg_handle_total += p.msgHandleTime();
  }

  for (Rank r = 0; r < cfg.nprocs; ++r) {
    res.residual_active_mem = std::max(
        res.residual_active_mem, std::abs(app.currentActiveMemory(r)));
    res.residual_workload = std::max(
        res.residual_workload, std::abs(mechs.at(r).localLoad().workload));
    res.residual_memory_metric = std::max(
        res.residual_memory_metric, std::abs(mechs.at(r).localLoad().memory));
    res.factor_entries_total += app.factorEntries(r);
  }

  if (!res.completed) {
    LOG_WARN("factorization incomplete: " << app.nodesDone() << "/"
                                          << analysis.tree.size()
                                          << " nodes done (problem "
                                          << problem_name << ")");
  }
  return res;
}

SolverResult runProblem(const sparse::Problem& problem,
                        const SolverConfig& config,
                        ordering::OrderingKind ordering) {
  const symbolic::Analysis analysis = analyzeProblem(problem, ordering);
  return runSolver(analysis, problem.symmetric, config, problem.name);
}

obs::BenchResultRecord toResultRecord(const SolverResult& res) {
  obs::BenchResultRecord rec;
  rec.problem = res.problem;
  rec.mechanism = res.mechanism;
  rec.strategy = res.strategy;
  rec.nprocs = res.nprocs;
  rec.completed = res.completed;
  rec.makespan_s = res.factor_time;
  rec.peak_active_mem = res.peak_active_mem;
  rec.avg_peak_active_mem = res.avg_peak_active_mem;
  rec.total_flops = res.total_flops;
  rec.state_messages = res.state_messages;
  rec.state_bytes = res.state_bytes;
  rec.state_wire_bytes = res.state_wire_bytes;
  rec.app_messages = res.app_messages;
  rec.dynamic_decisions = res.dynamic_decisions;
  rec.selections = res.selections_made;
  rec.snapshots = res.snapshots;
  rec.snapshot_rearms = res.rearms;
  rec.sim_events = res.sim_events;
  rec.stall_snapshot_max_s = res.snapshot_time;
  rec.stall_snapshot_total_s = res.snapshot_stall_total;
  rec.busy_max_s = res.busy_max;
  rec.paused_max_s = res.paused_max;
  rec.msg_handle_total_s = res.msg_handle_total;
  rec.schedule_digest = res.schedule_digest;
  return rec;
}

}  // namespace loadex::solver
