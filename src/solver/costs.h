// Flop and memory cost model of a frontal-matrix partial factorization.
//
// For a front of order m eliminating k pivots (border b = m - k):
//  * the master eliminates the k pivot rows (panel factorization + update
//    of the U/L panel);
//  * in a type-2 node, the b border rows are distributed by rows over the
//    slaves, which perform the Schur-complement update;
//  * the contribution block (b x b) is passed to the parent front.
// Symmetric (LDLt) problems cost roughly half of unsymmetric (LU) ones
// and store only the lower factor part.
#pragma once

#include "common/types.h"
#include "symbolic/assembly_tree.h"

namespace loadex::solver {

struct FrontCosts {
  Flops total_flops = 0.0;    ///< full front factorization
  Flops master_flops = 0.0;   ///< pivot-panel part (type-2 master share)
  Flops slave_flops = 0.0;    ///< Schur update part (distributed by rows)
  Entries front_entries = 0;        ///< m*m (whole front)
  Entries master_front_entries = 0; ///< k*m (master's rows)
  Entries cb_entries = 0;           ///< b*b contribution block
  Entries factor_entries = 0;       ///< factors stored after elimination
};

inline FrontCosts frontCosts(const symbolic::FrontNode& node, bool symmetric) {
  const double k = static_cast<double>(node.npiv);
  const double m = static_cast<double>(node.front);
  const double b = m - k;
  FrontCosts c;
  const double panel = (2.0 / 3.0) * k * k * k + 2.0 * k * k * b;
  const double update = 2.0 * k * b * b;
  const double factor = symmetric ? 0.5 : 1.0;
  c.master_flops = factor * panel;
  c.slave_flops = factor * update;
  c.total_flops = c.master_flops + c.slave_flops;
  c.front_entries = static_cast<Entries>(m * m);
  c.master_front_entries = static_cast<Entries>(k * m);
  c.cb_entries = static_cast<Entries>(b * b);
  c.factor_entries = symmetric ? static_cast<Entries>(k * m)
                               : static_cast<Entries>(k * (2.0 * m - k));
  return c;
}

}  // namespace loadex::solver
