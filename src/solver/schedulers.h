// Dynamic slave-selection strategies (§4.2).
//
// Given the mechanism's current view of all loads, a type-2 master picks
// the slaves and splits the border rows of its front into an irregular
// 1-D row blocking:
//  * workload-based (§4.2.2): equalize remaining floating-point work;
//  * memory-based   (§4.2.1): equalize active-memory occupation.
// Both honour granularity constraints (minimum rows per slave, maximum
// number of slaves).
#pragma once

#include <memory>
#include <string>

#include "core/load.h"
#include "solver/costs.h"

namespace loadex::solver {

enum class Strategy { kWorkload, kMemory };

const char* strategyName(Strategy s);
Strategy parseStrategy(const std::string& name);

struct SelectionRequest {
  Rank master = 0;
  int rows = 0;            ///< border rows b to distribute
  int front = 0;           ///< front order m (memory per row = m entries)
  Flops slave_flops = 0;   ///< total update work to distribute
  int min_rows_per_slave = 8;
  int max_slaves = 16;
  // ---- degradation awareness (faulty runs) -----------------------------
  SimTime now = 0.0;               ///< decision time, for staleness checks
  /// Skip candidates not heard from for longer than this. 0 disables the
  /// check (paper behaviour on a reliable network).
  double staleness_limit_s = 0.0;
};

/// Selected slaves with (rows, flops, memory) shares. The LoadMetrics
/// share of each assignment is {flops share, rows * m entries}.
struct RowAssignment {
  Rank slave = kNoRank;
  int rows = 0;
};

class SlaveScheduler {
 public:
  virtual ~SlaveScheduler() = default;
  virtual Strategy strategy() const = 0;

  /// Pick slaves and row shares from the given load view. Ranks flagged
  /// dead in the view — and, when `req.staleness_limit_s > 0`, ranks whose
  /// entry is older than the limit — are never selected; if no candidate
  /// survives, the selection is empty and the caller must execute the
  /// node locally.
  core::SlaveSelection select(const core::LoadView& view,
                              const SelectionRequest& req) const;

 protected:
  /// Metric the strategy balances (workload or memory) for rank r.
  virtual double metric(const core::LoadView& view, Rank r) const = 0;
  /// Metric increase per assigned row.
  virtual double metricPerRow(const SelectionRequest& req) const = 0;
};

class WorkloadScheduler final : public SlaveScheduler {
 public:
  Strategy strategy() const override { return Strategy::kWorkload; }

 protected:
  double metric(const core::LoadView& view, Rank r) const override {
    return view.load(r).workload;
  }
  double metricPerRow(const SelectionRequest& req) const override {
    return req.rows > 0 ? req.slave_flops / req.rows : 0.0;
  }
};

class MemoryScheduler final : public SlaveScheduler {
 public:
  Strategy strategy() const override { return Strategy::kMemory; }

 protected:
  double metric(const core::LoadView& view, Rank r) const override {
    return view.load(r).memory;
  }
  double metricPerRow(const SelectionRequest& req) const override {
    return static_cast<double>(req.front);
  }
};

std::unique_ptr<SlaveScheduler> makeScheduler(Strategy strategy);

/// Water-filling row partition: give rows to the least-loaded candidates
/// so their post-assignment metric equalizes, subject to the granularity
/// constraints. Exposed for direct unit testing.
std::vector<RowAssignment> waterFillRows(
    const std::vector<std::pair<double, Rank>>& sorted_metric, int rows,
    double metric_per_row, int min_rows_per_slave, int max_slaves);

}  // namespace loadex::solver
