#include "solver/mapping.h"

#include <algorithm>
#include <functional>

#include "common/expect.h"

namespace loadex::solver {

TreePlan planTree(const symbolic::AssemblyTree& tree, bool symmetric,
                  const MappingOptions& options) {
  LOADEX_EXPECT(options.nprocs >= 1, "mapping needs at least one process");
  const int nn = tree.size();
  TreePlan plan;
  plan.nodes.resize(static_cast<std::size_t>(nn));
  plan.subtree_flops.assign(static_cast<std::size_t>(nn), 0.0);
  plan.initial_workload.assign(static_cast<std::size_t>(options.nprocs), 0.0);
  plan.type2_masters_per_rank.assign(static_cast<std::size_t>(options.nprocs),
                                     0);

  // Costs and subtree work (postorder: children before parents).
  for (const int id : tree.postorder()) {
    const auto& nd = tree.node(id);
    auto& np = plan.nodes[static_cast<std::size_t>(id)];
    np.costs = frontCosts(nd, symmetric);
    plan.total_flops += np.costs.total_flops;
    plan.total_factor_entries += np.costs.factor_entries;
    plan.subtree_flops[static_cast<std::size_t>(id)] = np.costs.total_flops;
    for (const int c : nd.children)
      plan.subtree_flops[static_cast<std::size_t>(id)] +=
          plan.subtree_flops[static_cast<std::size_t>(c)];
  }

  // Proportional mapping: distribute the process range [lo, hi) of a node
  // over its children by subtree work; a range of size 1 maps the whole
  // subtree onto that process.
  int master_rr = 0;  // round-robin offset for master placement
  std::function<void(int, int, int, bool)> assign = [&](int id, int lo,
                                                        int hi, bool is_root) {
    const auto& nd = tree.node(id);
    auto& np = plan.nodes[static_cast<std::size_t>(id)];
    const int span = hi - lo;
    LOADEX_EXPECT(span >= 1, "empty process range during mapping");

    if (span == 1) {
      // Whole subtree on one process: every node below becomes a subtree
      // task (the paper's "leave subtrees").
      std::function<void(int)> mark = [&](int sid) {
        auto& sp = plan.nodes[static_cast<std::size_t>(sid)];
        sp.type = NodeType::kSubtree;
        sp.master = lo;
        plan.initial_workload[static_cast<std::size_t>(lo)] +=
            sp.costs.total_flops;
        for (const int c : tree.node(sid).children) mark(c);
      };
      mark(id);
      return;
    }

    // Node type on a multi-process range.
    const bool big_front = nd.front >= options.type2_min_front &&
                           nd.border() >= options.type2_min_border;
    if (is_root && options.type3_root && nd.front >= options.type2_min_front) {
      np.type = NodeType::kType3;
      np.master = lo;
    } else if (big_front) {
      np.type = NodeType::kType2;
      np.master = lo + (master_rr++ % span);
      ++plan.dynamic_decisions;
      ++plan.type2_masters_per_rank[static_cast<std::size_t>(np.master)];
    } else {
      np.type = NodeType::kType1;
      np.master = lo + (master_rr++ % span);
    }

    // Children ranges proportional to subtree work, each >= 1 process.
    if (nd.children.empty()) return;
    std::vector<int> kids = nd.children;
    std::sort(kids.begin(), kids.end(), [&](int a, int b) {
      return plan.subtree_flops[static_cast<std::size_t>(a)] >
             plan.subtree_flops[static_cast<std::size_t>(b)];
    });
    // More children than processes: the smallest children become
    // single-process subtrees spread round-robin over the range, and only
    // the top `span` children take part in the proportional allocation.
    if (static_cast<int>(kids.size()) > span) {
      for (std::size_t i = static_cast<std::size_t>(span); i < kids.size();
           ++i) {
        const int p = lo + static_cast<int>((i - span) % span);
        assign(kids[i], p, p + 1, false);
      }
      kids.resize(static_cast<std::size_t>(span));
    }
    double work_total = 0.0;
    for (const int c : kids)
      work_total += plan.subtree_flops[static_cast<std::size_t>(c)];
    // Largest-remainder proportional allocation of `span` processes.
    const int nk = static_cast<int>(kids.size());
    std::vector<int> share(static_cast<std::size_t>(nk), 0);
    int used = 0;
    std::vector<std::pair<double, int>> rema;
    for (int i = 0; i < nk; ++i) {
      const double frac =
          work_total > 0.0
              ? plan.subtree_flops[static_cast<std::size_t>(kids[i])] /
                    work_total * span
              : static_cast<double>(span) / nk;
      share[static_cast<std::size_t>(i)] = static_cast<int>(frac);
      used += share[static_cast<std::size_t>(i)];
      rema.emplace_back(frac - share[static_cast<std::size_t>(i)], i);
    }
    std::sort(rema.rbegin(), rema.rend());
    for (int extra = span - used, r = 0; extra > 0 && r < nk; --extra, ++r)
      ++share[static_cast<std::size_t>(rema[static_cast<std::size_t>(r)].second)];
    // Every child needs at least one process; steal from the largest.
    for (int i = 0; i < nk; ++i) {
      while (share[static_cast<std::size_t>(i)] == 0) {
        const auto big = std::max_element(share.begin(), share.end());
        LOADEX_EXPECT(*big > 1, "cannot give every child a process");
        --*big;
        ++share[static_cast<std::size_t>(i)];
      }
    }
    int cursor = lo;
    for (int i = 0; i < nk; ++i) {
      assign(kids[i], cursor, cursor + share[static_cast<std::size_t>(i)],
             false);
      cursor += share[static_cast<std::size_t>(i)];
    }
    LOADEX_EXPECT(cursor == hi, "proportional mapping lost processes");
  };

  // The roots share the whole machine. The dominant root (by subtree
  // work) gets the full process range — disconnected leftovers (isolated
  // vertices, small components) are mapped as single-process subtrees,
  // round-robin over the machine.
  std::vector<int> rs = tree.roots();
  if (!rs.empty()) {
    std::sort(rs.begin(), rs.end(), [&](int a, int b) {
      return plan.subtree_flops[static_cast<std::size_t>(a)] >
             plan.subtree_flops[static_cast<std::size_t>(b)];
    });
    assign(rs[0], 0, options.nprocs, true);
    for (std::size_t i = 1; i < rs.size(); ++i) {
      const int p = static_cast<int>((i - 1) % options.nprocs);
      assign(rs[i], p, p + 1, false);
    }
  }
  return plan;
}

}  // namespace loadex::solver
