// Experiment runner: one call runs a full simulated parallel factorization
// of a problem under a chosen mechanism / scheduling strategy and returns
// the metrics the paper's tables report.
#pragma once

#include <string>

#include "core/mechanism.h"
#include "obs/results.h"
#include "obs/trace.h"
#include "ordering/ordering.h"
#include "sim/world.h"
#include "solver/factor_app.h"
#include "solver/mapping.h"
#include "solver/schedulers.h"
#include "sparse/generators.h"
#include "symbolic/analysis.h"

namespace loadex::solver {

struct SolverConfig {
  int nprocs = 32;
  core::MechanismKind mechanism = core::MechanismKind::kIncrement;
  core::MechanismConfig mech;
  Strategy strategy = Strategy::kWorkload;
  sim::NetworkConfig network;
  sim::ProcessConfig process;     ///< incl. the §4.5 comm-thread mode
  MappingOptions mapping;         ///< nprocs field is overwritten
  FactorAppOptions app;
  /// When true (default), the Update threshold is derived from the task
  /// granularity ("a threshold of the same order as the granularity of
  /// the tasks", §2.3): a fraction of the mean front cost.
  bool auto_threshold = true;
  double auto_threshold_fraction = 0.05;

  /// Heterogeneous platform (paper §4 remark): per-process speeds drawn
  /// uniformly from [1-h, 1+h] with a deterministic seed. 0 = homogeneous.
  double heterogeneity = 0.0;
  std::uint64_t heterogeneity_seed = 7;

  /// Scripted process-level faults (crash/pause/resume/restart at given
  /// times). Network-level faults live in `network.faults`.
  std::vector<sim::ProcessFaultEvent> process_faults;

  // ---- observability (loadex_obs) --------------------------------------
  /// Trace recorder installed for the duration of the run (per-rank track
  /// names and the message namer are set up automatically). Null: keep
  /// whatever recorder an outer scope installed, or none. Tracing never
  /// perturbs the event schedule (checked by the determinism test).
  obs::TraceRecorder* trace = nullptr;
  /// Gauge sampling period in simulated seconds (per-rank active memory and
  /// state-queue depth); 0 disables sampling. Sampling piggybacks on the
  /// event kernel and schedules nothing.
  double metrics_sample_period_s = 0.0;
};

struct SolverResult {
  std::string problem;
  std::string mechanism;
  std::string strategy;
  int nprocs = 0;

  bool completed = false;
  double factor_time = 0.0;              ///< simulated seconds (Table 5/7)
  double peak_active_mem = 0.0;          ///< max-over-procs entries (Table 4)
  double avg_peak_active_mem = 0.0;
  std::int64_t state_messages = 0;       ///< Table 6
  Bytes state_bytes = 0;                 ///< payload bytes (sender-counted)
  /// Bytes actually put on the wire for the state channel, including the
  /// per-message header overhead and any fault-duplicated copies.
  Bytes state_wire_bytes = 0;
  std::int64_t app_messages = 0;
  int dynamic_decisions = 0;             ///< Table 3
  int selections_made = 0;

  // Snapshot-specific. snapshot_time is sourced from the loadex_obs stall
  // metrics the mechanism itself emits (accumulator family snapshot/stall).
  double snapshot_time = 0.0;            ///< max-over-procs frozen time
  double snapshot_stall_total = 0.0;     ///< summed over procs
  std::int64_t snapshots = 0;
  std::int64_t rearms = 0;

  // Stall/time breakdown of the run (where the simulated time went).
  double busy_max = 0.0;                 ///< max-over-procs compute time
  double paused_max = 0.0;               ///< max-over-procs task-paused time
  double msg_handle_total = 0.0;         ///< summed message-treatment cost

  double total_flops = 0.0;
  std::uint64_t sim_events = 0;
  std::int64_t tree_nodes = 0;
  /// Replay-determinism fingerprint of the event schedule (identical for
  /// identical configs, with or without observation installed).
  std::uint64_t schedule_digest = 0;

  // Conservation diagnostics (all ~0 for a correct run): leftover active
  // memory, leftover mechanism workload/memory metrics at quiescence, and
  // the factor entries accumulated across all processes.
  double residual_active_mem = 0.0;
  double residual_workload = 0.0;
  double residual_memory_metric = 0.0;
  Entries factor_entries_total = 0;

  // Fault-injection statistics (all zero on a clean run).
  std::int64_t messages_dropped = 0;
  std::int64_t messages_duplicated = 0;
  std::int64_t latency_spikes = 0;
  std::int64_t messages_lost_at_down_procs = 0;
  std::int64_t crashes = 0;
  // Hardened-protocol recovery statistics.
  std::int64_t gaps_detected = 0;
  std::int64_t retransmissions = 0;
  std::int64_t nacks_sent = 0;
  std::int64_t duplicates_dropped = 0;
  std::int64_t snapshot_timeouts = 0;
  std::int64_t partial_snapshots = 0;
  std::int64_t ranks_declared_dead = 0;
  int local_fallbacks = 0;  ///< type-2 nodes the master ran alone
};

/// Run a prepared symbolic analysis.
SolverResult runSolver(const symbolic::Analysis& analysis, bool symmetric,
                       const SolverConfig& config,
                       const std::string& problem_name = "");

/// Convenience: order (nested dissection by default) + analyze + run.
SolverResult runProblem(const sparse::Problem& problem,
                        const SolverConfig& config,
                        ordering::OrderingKind ordering =
                            ordering::OrderingKind::kNestedDissection);

/// Shared analysis cache-friendly variant: analyze once, run many configs.
symbolic::Analysis analyzeProblem(const sparse::Problem& problem,
                                  ordering::OrderingKind ordering =
                                      ordering::OrderingKind::kNestedDissection);

/// Flatten a SolverResult into the schema-versioned bench-result record
/// (obs::ResultWriter emits the JSON document; see DESIGN.md §9).
obs::BenchResultRecord toResultRecord(const SolverResult& res);

}  // namespace loadex::solver
