#include "solver/factor_app.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace loadex::solver {

namespace {

inline int protoTrack(Rank rank) {
  return obs::rankTrack(rank, obs::Lane::kProto);
}

struct ContributionPayload final : sim::Payload {
  int node = -1;
  Entries cb = 0;
};

struct SlaveTaskPayload final : sim::Payload {
  int node = -1;
  Rank master = kNoRank;
  int rows = 0;
  Flops flops = 0.0;
  Entries mem = 0;
  Entries cb_part = 0;
};

struct SlavePartPayload final : sim::Payload {
  int node = -1;
  Entries part = 0;
};

struct RootChunkPayload final : sim::Payload {
  Flops flops = 0.0;
  Entries mem = 0;
};

constexpr Bytes kEntryBytes = 8;

}  // namespace

FactorApp::FactorApp(const symbolic::AssemblyTree& tree, const TreePlan& plan,
                     core::MechanismSet& mechanisms,
                     const SlaveScheduler& scheduler, FactorAppOptions options)
    : tree_(tree),
      plan_(plan),
      mechs_(mechanisms),
      scheduler_(scheduler),
      options_(options),
      procs_(static_cast<std::size_t>(mechanisms.size())),
      nodes_(static_cast<std::size_t>(tree.size())) {
  LOADEX_EXPECT(static_cast<int>(plan.nodes.size()) == tree.size(),
                "plan does not match tree");
  for (int id = 0; id < tree_.size(); ++id)
    ns(id).contribs_pending =
        static_cast<int>(tree_.node(id).children.size());
  for (Rank r = 0; r < mechanisms.size(); ++r)
    ps(r).type2_masters_left =
        plan_.type2_masters_per_rank[static_cast<std::size_t>(r)];
}

void FactorApp::onStart(sim::Process& p) {
  const Rank r = p.rank();
  auto& mech = mechs_.at(r);

  // The paper (§4.2.2): "each processor has as initial load the cost of
  // all its subtrees".
  const double initial =
      plan_.initial_workload[static_cast<std::size_t>(r)];
  if (initial > 0.0) mech.addLocalLoad({initial, 0.0});

  // Leaves mapped to this process are ready immediately.
  for (const int id : tree_.postorder()) {
    if (plan_.at(id).master != r) continue;
    if (!tree_.node(id).children.empty()) continue;
    activateNode(p, id);
  }

  // Processes that will never master a type-2 node can announce it right
  // away (§2.3: this may be known statically).
  if (options_.announce_no_more_master &&
      ps(r).type2_masters_left == 0)
    mech.noMoreMaster();
}

const char* FactorApp::appTagName(int tag) {
  switch (tag) {
    case kTagContribution: return "contrib";
    case kTagSlaveTask: return "slave_task";
    case kTagSlavePart: return "slave_part";
    case kTagRootChunk: return "root_chunk";
  }
  return "app";
}

void FactorApp::memDelta(sim::Process& p, Entries delta, bool delegated) {
  if (delta == 0) return;
  ps(p.rank()).active_mem.add(static_cast<double>(delta));
  // Exact staircase of the Table 4 metric (the sampled gauge of the same
  // name only sees it at the sampling period).
  LOADEX_TRACE_COUNTER(p.now(),
                       "P" + std::to_string(p.rank()) + " active_mem",
                       ps(p.rank()).active_mem.current());
  mechs_.at(p.rank()).addLocalLoad({0.0, static_cast<double>(delta)},
                                   delegated);
}

void FactorApp::consumeContributions(int id) {
  auto& st = ns(id);
  for (const auto& [rank, entries] : st.cb_holders) {
    ps(rank).active_mem.add(-static_cast<double>(entries));
    mechs_.at(rank).addLocalLoad({0.0, -static_cast<double>(entries)});
  }
  st.cb_holders.clear();
}

void FactorApp::activateNode(sim::Process& p, int id) {
  const auto& np = plan_.at(id);
  LOADEX_EXPECT(np.master == p.rank(), "node activated on a foreign process");
  auto& mech = mechs_.at(p.rank());
  switch (np.type) {
    case NodeType::kSubtree:
      break;  // already in the initial workload
    case NodeType::kType1:
      mech.addLocalLoad({np.costs.total_flops, 0.0});
      break;
    case NodeType::kType2:
      // The master's own panel work; the slaves' shares enter the loads
      // through the selection's reservation messages.
      mech.addLocalLoad({np.costs.master_flops, 0.0});
      break;
    case NodeType::kType3:
      break;  // accounted per chunk in startRoot
  }
  ps(p.rank()).ready.push_back(id);
}

void FactorApp::onAppMessage(sim::Process& p, const sim::Message& m) {
  switch (m.tag) {
    case kTagContribution: {
      const auto& c = m.as<ContributionPayload>();
      deliverContribution(p, c.node, c.cb);
      return;
    }
    case kTagSlaveTask: {
      const auto& t = m.as<SlaveTaskPayload>();
      // Alg. 3 line (1): the reservation already carried this increase for
      // the increment/snapshot mechanisms; the naive mechanism accounts it
      // here (that delay is exactly Fig. 1's coherence window).
      mechs_.at(p.rank()).addLocalLoad(
          {t.flops, static_cast<double>(t.mem)}, /*is_slave_delegated=*/true);
      ps(p.rank()).active_mem.add(static_cast<double>(t.mem));
      SlaveWork w;
      w.node = t.node;
      w.master = t.master;
      w.rows = t.rows;
      w.flops = t.flops;
      w.mem = t.mem;
      w.cb_part = t.cb_part;
      ps(p.rank()).slave_work.push_back(w);
      return;
    }
    case kTagSlavePart: {
      // The part's entries stay on the slave (registered as a CB holder
      // for the parent front); this message only signals completion.
      const auto& sp = m.as<SlavePartPayload>();
      auto& st = ns(sp.node);
      LOADEX_EXPECT(st.parts_pending > 0, "unexpected slave part");
      --st.parts_pending;
      maybeCompleteType2(p, sp.node);
      return;
    }
    case kTagRootChunk: {
      const auto& rc = m.as<RootChunkPayload>();
      mechs_.at(p.rank()).addLocalLoad({rc.flops, 0.0});
      ps(p.rank()).root_chunks.emplace_back(rc.flops, rc.mem);
      return;
    }
    default:
      LOADEX_EXPECT(false, "unknown application message tag");
  }
}

std::optional<sim::ComputeTask> FactorApp::nextTask(sim::Process& p) {
  auto& st = ps(p.rank());

  // Slave row blocks first: a waiting master is the most expensive thing
  // in the system.
  if (!st.slave_work.empty()) {
    SlaveWork w = st.slave_work.front();
    st.slave_work.pop_front();
    return makeSlaveTask(p, w);
  }

  if (!st.root_chunks.empty()) {
    auto [flops, mem] = st.root_chunks.front();
    st.root_chunks.pop_front();
    memDelta(p, mem);
    sim::ComputeTask task;
    task.work = flops;
    task.label = "root_chunk";
    task.on_complete = [this, flops, mem](sim::Process& proc) {
      mechs_.at(proc.rank()).addLocalLoad({-flops, 0.0});
      memDelta(proc, -mem);
      ps(proc.rank()).factor_entries += mem;
    };
    return task;
  }

  while (!st.ready.empty()) {
    // Local task selection. The memory-aware policy (§4.2.1) prefers the
    // smallest front when this process's memory runs above the view
    // average.
    std::size_t pick = 0;
    if (options_.memory_aware_task_selection && st.ready.size() > 1) {
      const auto& view = mechs_.at(p.rank()).view();
      double avg = 0.0;
      for (Rank r = 0; r < view.nprocs(); ++r) avg += view.load(r).memory;
      avg /= view.nprocs();
      if (st.active_mem.current() > avg) {
        for (std::size_t i = 1; i < st.ready.size(); ++i) {
          if (plan_.at(st.ready[i]).costs.front_entries <
              plan_.at(st.ready[pick]).costs.front_entries)
            pick = i;
        }
      }
    }
    const int id = st.ready[pick];
    st.ready.erase(st.ready.begin() + static_cast<std::ptrdiff_t>(pick));

    const auto& np = plan_.at(id);
    switch (np.type) {
      case NodeType::kSubtree:
      case NodeType::kType1:
        return makeMasterTask(p, id);
      case NodeType::kType2: {
        if (ns(id).selection_done) return makeMasterTask(p, id);
        // Dynamic decision: ask the mechanism for a view. Maintained-view
        // mechanisms answer synchronously; the snapshot mechanism freezes
        // this process and fires the callback when the snapshot is built.
        LOADEX_TRACE_SPAN_BEGIN(p.now(), protoTrack(p.rank()),
                                "decision#" + std::to_string(id));
        mechs_.at(p.rank()).requestView(
            [this, &p, id](const core::LoadView& view) {
              performSelection(p, id, view);
            });
        if (ns(id).selection_done) {
          // Synchronous mechanism: the node went back to the ready queue;
          // pop it again and run the master part.
          LOADEX_EXPECT(!st.ready.empty() && st.ready.front() == id,
                        "selection did not requeue the node");
          st.ready.pop_front();
          return makeMasterTask(p, id);
        }
        return std::nullopt;  // snapshot in flight; process is frozen
      }
      case NodeType::kType3:
        startRoot(p, id);
        return nextTask(p);  // pick up the root chunk just queued
    }
  }
  return std::nullopt;
}

sim::ComputeTask FactorApp::makeMasterTask(sim::Process& p, int id) {
  const auto& np = plan_.at(id);
  // A type-2 node degraded to local execution behaves exactly like a
  // type-1 node from here on: full front, total work, full factor share.
  const bool type2 = np.type == NodeType::kType2 && !ns(id).local_fallback;
  const Entries front_share =
      type2 ? np.costs.master_front_entries : np.costs.front_entries;

  // Assembly: the front is allocated, the children's contribution blocks
  // are consumed (freed wherever they were held).
  memDelta(p, front_share);
  consumeContributions(id);

  sim::ComputeTask task;
  task.work = type2 ? np.costs.master_flops : np.costs.total_flops;
  task.label = std::string(nodeTypeName(np.type)) + "#" + std::to_string(id);
  task.on_complete = [this, id](sim::Process& proc) {
    const auto& nplan = plan_.at(id);
    const bool t2 = nplan.type == NodeType::kType2 && !ns(id).local_fallback;
    const Flops done = t2 ? nplan.costs.master_flops : nplan.costs.total_flops;
    mechs_.at(proc.rank()).addLocalLoad({-done, 0.0});
    const Entries share =
        t2 ? nplan.costs.master_front_entries : nplan.costs.front_entries;
    memDelta(proc, -share);
    // Factors stay on this process (not active memory).
    Entries factor_share = nplan.costs.factor_entries;
    if (t2) {
      // Slaves keep their rows of the factors (rows * npiv each).
      const int b = tree_.node(id).border();
      factor_share -= static_cast<Entries>(b) * tree_.node(id).npiv;
    }
    ps(proc.rank()).factor_entries += factor_share;
    if (t2) {
      masterPartDone(proc, id);
    } else {
      completeNode(proc, id);
    }
  };
  return task;
}

sim::ComputeTask FactorApp::makeSlaveTask(sim::Process& /*p*/,
                                          SlaveWork work) {
  sim::ComputeTask task;
  task.work = work.flops;
  task.label = "slave#" + std::to_string(work.node);
  task.on_complete = [this, work](sim::Process& proc) {
    // The slave keeps its factor rows (rows * npiv, no longer "active")
    // and *retains its contribution-block rows* until the parent front's
    // assembly consumes them — this is where the memory-based slave
    // selection pays off: CB memory sits where the slaves were placed.
    const Entries freed = work.mem - work.cb_part;
    mechs_.at(proc.rank()).addLocalLoad(
        {-work.flops, -static_cast<double>(freed)},
        /*is_slave_delegated=*/true);
    ps(proc.rank()).active_mem.add(-static_cast<double>(freed));
    ps(proc.rank()).factor_entries +=
        static_cast<Entries>(work.rows) * tree_.node(work.node).npiv;
    const int parent = tree_.node(work.node).parent;
    if (work.cb_part > 0) {
      LOADEX_EXPECT(parent != -1, "type-2 root produced a CB part");
      ns(parent).cb_holders.emplace_back(proc.rank(), work.cb_part);
    }
    // Signal completion to the node's master (the data stays here).
    auto payload = std::make_shared<SlavePartPayload>();
    payload->node = work.node;
    payload->part = work.cb_part;
    ++app_messages_;
    proc.send(work.master, sim::Channel::kApp, kTagSlavePart, 16,
              std::move(payload));
  };
  return task;
}

void FactorApp::performSelection(sim::Process& p, int id,
                                 const core::LoadView& view) {
  const auto& np = plan_.at(id);
  const auto& nd = tree_.node(id);
  auto& mech = mechs_.at(p.rank());

  SelectionRequest req;
  req.master = p.rank();
  req.rows = nd.border();
  req.front = nd.front;
  req.slave_flops = np.costs.slave_flops;
  req.min_rows_per_slave = options_.min_rows_per_slave;
  req.max_slaves = options_.max_slaves;

  req.now = p.now();
  req.staleness_limit_s = options_.staleness_limit_s;

  // How stale is the information this decision is about to act on? One
  // sample per decision: the oldest live entry in the view.
  LOADEX_METRIC(histogram("decision/view_staleness_s",
                          {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0})
                    .add([&] {
                      double worst = 0.0;
                      for (Rank r = 0; r < mech.nprocs(); ++r) {
                        if (r == p.rank() || view.dead(r)) continue;
                        worst = std::max(worst, view.staleness(r, req.now));
                      }
                      return worst;
                    }()));

  const core::SlaveSelection sel = scheduler_.select(view, req);
  mech.commitSelection(sel);  // also with an empty selection: the snapshot
                              // mechanism finalizes (end_snp) here
  ++selections_made_;

  auto& st = ns(id);
  st.parts_pending = static_cast<int>(sel.size());
  st.selection_done = true;

  if (sel.empty()) {
    // Degraded mode: no live, fresh candidate — the master absorbs the
    // slaves' share and runs the node alone (better slow than stuck).
    st.local_fallback = true;
    ++local_fallbacks_;
    mech.addLocalLoad({np.costs.slave_flops, 0.0});
    auto& pstate = ps(p.rank());
    if (--pstate.type2_masters_left == 0 &&
        options_.announce_no_more_master)
      mech.noMoreMaster();
    pstate.ready.push_front(id);
    LOADEX_TRACE_SPAN_END(p.now(), protoTrack(p.rank()));
    return;
  }

  const double flops_per_row =
      req.rows > 0 ? req.slave_flops / req.rows : 0.0;
  for (const auto& a : sel) {
    const int rows = static_cast<int>(
        std::llround(a.share.memory / static_cast<double>(req.front)));
    auto payload = std::make_shared<SlaveTaskPayload>();
    payload->node = id;
    payload->master = p.rank();
    payload->rows = rows;
    payload->flops = flops_per_row * rows;
    payload->mem = static_cast<Entries>(rows) * req.front;
    payload->cb_part = static_cast<Entries>(rows) * nd.border();
    const Bytes size = payload->mem * kEntryBytes;
    ++app_messages_;
    p.send(a.slave, sim::Channel::kApp, kTagSlaveTask, size,
           std::move(payload));
  }

  auto& pst = ps(p.rank());
  if (--pst.type2_masters_left == 0 && options_.announce_no_more_master)
    mech.noMoreMaster();

  // The master's own panel task runs next.
  pst.ready.push_front(id);
  LOADEX_TRACE_SPAN_END(p.now(), protoTrack(p.rank()));
}

void FactorApp::masterPartDone(sim::Process& p, int id) {
  ns(id).master_done = true;
  maybeCompleteType2(p, id);
}

void FactorApp::maybeCompleteType2(sim::Process& p, int id) {
  auto& st = ns(id);
  if (!st.selection_done || !st.master_done || st.parts_pending != 0 ||
      st.completed)
    return;
  completeNode(p, id);
}

void FactorApp::completeNode(sim::Process& p, int id) {
  auto& st = ns(id);
  LOADEX_EXPECT(!st.completed, "node completed twice");
  st.completed = true;
  ++nodes_done_;

  const auto& nd = tree_.node(id);
  const Entries cb = plan_.at(id).costs.cb_entries;
  if (nd.parent == -1) {
    LOADEX_EXPECT(cb == 0, "root front with a contribution block");
    return;
  }
  // Contribution-block entries stay where they were produced until the
  // parent's assembly consumes them: on this process for a type-1 or
  // subtree node, on the slaves (already registered at part completion)
  // for a type-2 node. The parent's master only needs the completion
  // signal to count down its children.
  const Rank parent_master = plan_.at(nd.parent).master;
  if (plan_.at(id).type == NodeType::kSubtree ||
      plan_.at(id).type == NodeType::kType1 || st.local_fallback) {
    if (cb > 0) {
      memDelta(p, cb);
      ns(nd.parent).cb_holders.emplace_back(p.rank(), cb);
    }
  }
  if (parent_master == p.rank()) {
    LOADEX_EXPECT(ns(nd.parent).contribs_pending > 0,
                  "parent did not expect a contribution");
    if (--ns(nd.parent).contribs_pending == 0) activateNode(p, nd.parent);
  } else {
    auto payload = std::make_shared<ContributionPayload>();
    payload->node = nd.parent;
    payload->cb = cb;
    ++app_messages_;
    p.send(parent_master, sim::Channel::kApp, kTagContribution,
           cb * kEntryBytes, std::move(payload));
  }
}

void FactorApp::deliverContribution(sim::Process& p, int node, Entries cb) {
  // Pure completion signal: the block's entries remain on their producer
  // (a registered cb_holder) until this node's assembly starts.
  (void)cb;
  auto& st = ns(node);
  LOADEX_EXPECT(st.contribs_pending > 0, "unexpected contribution");
  if (--st.contribs_pending == 0) activateNode(p, node);
}

void FactorApp::startRoot(sim::Process& p, int id) {
  const auto& np = plan_.at(id);
  const int nprocs = mechs_.size();

  // Children contribution blocks are consumed by the 2-D assembly,
  // freed wherever they were held.
  consumeContributions(id);

  const Flops flops_share = np.costs.total_flops / nprocs;
  const Entries mem_share = np.costs.front_entries / nprocs;
  // The master's chunk absorbs the integer-division remainder so that
  // factor entries are conserved exactly.
  const Entries master_share =
      np.costs.front_entries - static_cast<Entries>(nprocs - 1) * mem_share;
  for (Rank r = 0; r < nprocs; ++r) {
    if (r == p.rank()) {
      mechs_.at(p.rank()).addLocalLoad({flops_share, 0.0});
      ps(p.rank()).root_chunks.emplace_back(flops_share, master_share);
    } else {
      auto payload = std::make_shared<RootChunkPayload>();
      payload->flops = flops_share;
      payload->mem = mem_share;
      ++app_messages_;
      p.send(r, sim::Channel::kApp, kTagRootChunk, mem_share * kEntryBytes,
             payload);
    }
  }
  completeNode(p, id);
}

bool FactorApp::finished(const sim::Process& p) const {
  const auto& st = procs_[static_cast<std::size_t>(p.rank())];
  return st.ready.empty() && st.slave_work.empty() && st.root_chunks.empty();
}

double FactorApp::peakActiveMemory(Rank r) const {
  return procs_[static_cast<std::size_t>(r)].active_mem.peak();
}

double FactorApp::currentActiveMemory(Rank r) const {
  return procs_[static_cast<std::size_t>(r)].active_mem.current();
}

double FactorApp::maxPeakActiveMemory() const {
  double peak = 0.0;
  for (const auto& st : procs_) peak = std::max(peak, st.active_mem.peak());
  return peak;
}

Entries FactorApp::factorEntries(Rank r) const {
  return procs_[static_cast<std::size_t>(r)].factor_entries;
}

}  // namespace loadex::solver
