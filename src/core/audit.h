// Online protocol invariant auditor.
//
// A ProtocolAuditor attaches to a MechanismSet (one mechanism per simulated
// rank) as a passive AuditObserver and verifies, while the simulation runs,
// the paper-level guarantees the mechanisms rely on:
//
//  * per-channel FIFO delivery — state messages between each ordered
//    (sender, receiver) pair arrive in send order, with no loss and no
//    duplication (the paper's MPI channel assumption; relaxable for fault
//    scenarios via AuditorConfig::allow_message_loss);
//  * conservation of broadcast increments (Algorithm 3) — at quiescence
//    every observer's view of rank r equals r's actual load minus r's
//    sub-threshold pending delta; for the naive mechanism, every view entry
//    equals the last absolute value its owner broadcast;
//  * Master_To_All / master_to_slave reservation accounting — every load
//    share a master reserves on a remote slave is eventually matched by the
//    real delegated work arriving there (addLocalLoad with
//    is_slave_delegated == true), and no delegated work arrives that was
//    never reserved;
//  * snapshot termination and recording consistency (§3) — request ids
//    grow monotonically per initiator, every snp answer names the request
//    id the responder last received from that initiator and carries the
//    responder's load *at recording time*, and no snapshot is left open
//    (no frozen rank) at the end of the run;
//  * no sends to crashed ranks — outside explicitly-allowed fault
//    scenarios, a send whose destination is currently crashed means the
//    sender's liveness view is broken.
//
// Violations are collected as human-readable strings; expectClean() turns
// them into a ContractViolation. With fail_fast the auditor throws at the
// exact violating event, which pinpoints the offending message in a
// deterministic replay.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/binding.h"
#include "core/mechanism.h"

namespace loadex::sim {
class World;
}

namespace loadex::core {

struct AuditorConfig {
  bool check_fifo = true;          ///< FIFO / no-loss / no-duplication
  bool check_conservation = true;  ///< increment & naive view coherence
  bool check_reservations = true;  ///< reservation matched by real work
  bool check_snapshot = true;      ///< termination + answer consistency
  bool check_liveness = true;      ///< no sends to crashed ranks

  /// Fault scenarios drop messages on purpose: delivery gaps become legal
  /// (FIFO degrades to "delivered in send order"), end-of-run loss and
  /// duplicate deliveries are tolerated, and the conservation checks are
  /// skipped (a lost increment corrupts remote views by design — that is
  /// the paper's argument for the snapshot mechanism, not an auditor bug).
  bool allow_message_loss = false;

  /// Crash scenarios: sends to a crashed rank are expected (the sender
  /// cannot know), and ranks may legitimately end the run frozen.
  bool allow_crashes = false;

  /// Throw ContractViolation at the first violating event instead of
  /// collecting. The throw happens inside the simulation event, so the
  /// stack points at the offending message.
  bool fail_fast = false;

  /// Absolute slack for floating-point load comparisons.
  double tolerance = 1e-6;
};

class ProtocolAuditor final : public AuditObserver {
 public:
  explicit ProtocolAuditor(AuditorConfig config = {});

  /// Attach to every mechanism of the set (and optionally to the world,
  /// which enables the crashed-destination check). The auditor must
  /// outlive the simulation run or be detached first.
  void attach(MechanismSet& mechs, sim::World* world = nullptr);

  /// Attach to a single mechanism that is one rank of an `nprocs`-wide
  /// world living in other OS processes (the net runtime). Cross-rank
  /// invariants (FIFO, conservation, reservations) pair a send at one
  /// rank with a delivery at another; a rank-local auditor sees only its
  /// own half, so those checks are forced off. The snapshot checks are
  /// fully rank-local — start_snp monotonicity is send-side, and the snp
  /// answer check reads the request id recorded when the start_snp was
  /// delivered *here* — so they stay on, as does liveness bookkeeping.
  void attachLocal(Mechanism& m, int nprocs);

  void detach();

  /// Run the end-of-run checks (quiescence invariants). Call after the
  /// simulation has drained; online violations recorded so far are kept.
  void finish();

  /// Out-of-band crash annotations for runtimes without a sim::World (the
  /// rt world, where crashes are thread lifecycle events the auditor
  /// cannot observe). finish()-time checks then treat `r` as crashed
  /// under `allow_crashes`, exactly as a sim crash would be. Call from
  /// one thread only, after the run has drained and before finish() —
  /// these are not serialised by the observer lock.
  void noteCrashed(Rank r);
  void noteRestarted(Rank r);

  /// All violations recorded so far, in detection order.
  const std::vector<std::string>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

  /// Throws ContractViolation listing every recorded violation.
  void expectClean() const;

  std::int64_t eventsObserved() const { return events_observed_; }

  // ---- AuditObserver ----------------------------------------------------
  void onLocalLoad(const Mechanism& m, const LoadMetrics& delta,
                   bool is_slave_delegated) override;
  void onViewRequest(const Mechanism& m) override;
  void onSelection(const Mechanism& m, const SlaveSelection& sel) override;
  void onStateSend(const Mechanism& m, Rank dst, StateTag tag, Bytes size,
                   const sim::Payload* payload) override;
  void onStateDeliver(const Mechanism& m, Rank src, StateTag tag,
                      const sim::Payload* payload) override;

 private:
  struct InFlight {
    const sim::Payload* payload = nullptr;
    StateTag tag = StateTag::kUpdateAbsolute;
    std::uint64_t send_index = 0;
  };
  struct PairState {
    std::deque<InFlight> in_flight;  ///< sent, not yet delivered
    std::uint64_t sends = 0;
  };
  struct SnapshotState {
    RequestId last_started = 0;   ///< highest request id broadcast
    bool open = false;            ///< start_snp sent, end_snp pending
  };

  PairState& pair(Rank src, Rank dst) {
    return pairs_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(nprocs_) +
                  static_cast<std::size_t>(dst)];
  }
  void record(std::string violation);
  bool crashedAtFinish(Rank r) const;
  void checkConservationAtFinish();
  void checkReservationsAtFinish();
  void checkSnapshotAtFinish();
  void checkSnapshotRankAtFinish(const Mechanism& m);
  void checkFifoAtFinish();

  bool attached() const { return mechs_ != nullptr || local_ != nullptr; }

  AuditorConfig config_;
  MechanismSet* mechs_ = nullptr;
  Mechanism* local_ = nullptr;  ///< attachLocal mode: the one visible rank
  sim::World* world_ = nullptr;
  int nprocs_ = 0;

  std::vector<std::string> violations_;
  std::int64_t events_observed_ = 0;

  /// Ranks flagged crashed via noteCrashed (world-less runtimes).
  std::vector<bool> ext_crashed_;

  // ---- FIFO tracking ----------------------------------------------------
  std::vector<PairState> pairs_;  ///< indexed src * nprocs + dst

  // ---- reservation accounting -------------------------------------------
  /// Load reserved on each rank by masters' selections and not yet matched
  /// by delegated work arriving there.
  std::vector<LoadMetrics> outstanding_reservation_;

  // ---- naive conservation -----------------------------------------------
  /// Last absolute value each rank broadcast (flat, sized once from the
  /// world size; `seen` distinguishes "never broadcast" from zero load).
  struct NaiveBroadcast {
    LoadMetrics load;
    bool seen = false;
  };
  std::vector<NaiveBroadcast> last_absolute_broadcast_;
  bool no_more_master_seen_ = false;

  // ---- snapshot tracking ------------------------------------------------
  std::vector<SnapshotState> snap_;  ///< per initiator
  /// Request id of the last start_snp *delivered* to a responder from an
  /// initiator (0 = never); flat, indexed responder * nprocs + initiator.
  std::vector<RequestId> last_start_request_;
};

}  // namespace loadex::core
