#include "core/mechanism.h"

#include "common/expect.h"
#include "obs/trace.h"

namespace loadex::core {

namespace {

inline int protoTrack(Rank rank) {
  return obs::rankTrack(rank, obs::Lane::kProto);
}

}  // namespace

const char* mechanismKindName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kNaive: return "naive";
    case MechanismKind::kIncrement: return "increments";
    case MechanismKind::kSnapshot: return "snapshot";
  }
  return "?";
}

MechanismKind parseMechanismKind(const std::string& name) {
  if (name == "naive") return MechanismKind::kNaive;
  if (name == "increments" || name == "increment")
    return MechanismKind::kIncrement;
  if (name == "snapshot") return MechanismKind::kSnapshot;
  LOADEX_EXPECT(false, "unknown mechanism kind: " + name);
}

void Transport::schedule(SimTime /*delay*/, std::function<void()> /*fn*/) {
  LOADEX_EXPECT(false,
                "this transport has no timer support (required by the "
                "reliability/hardening options)");
}

void Transport::sendStateBroadcast(
    const std::vector<Rank>& dsts, StateTag tag, Bytes size,
    std::shared_ptr<const sim::Payload> payload) {
  for (const Rank r : dsts) sendState(r, tag, size, payload);
}

void MechanismStats::mergeInto(MechanismStats& out) const {
  out.sent_by_tag.merge(sent_by_tag);
  out.bytes_sent += bytes_sent;
  out.view_requests += view_requests;
  out.selections += selections;
  out.snapshots_initiated += snapshots_initiated;
  out.snapshot_rearms += snapshot_rearms;
  out.time_blocked += time_blocked;
  out.snapshot_duration.merge(snapshot_duration);
  out.gaps_detected += gaps_detected;
  out.nacks_sent += nacks_sent;
  out.retransmissions += retransmissions;
  out.duplicates_dropped += duplicates_dropped;
  out.gaps_abandoned += gaps_abandoned;
  out.snapshot_timeouts += snapshot_timeouts;
  out.partial_snapshots += partial_snapshots;
  out.snapshot_aborts += snapshot_aborts;
  out.ranks_declared_dead += ranks_declared_dead;
  out.ranks_suspected += ranks_suspected;
  out.resyncs_applied += resyncs_applied;
}

Mechanism::Mechanism(Transport& transport, MechanismConfig config)
    : transport_(transport),
      config_(config),
      view_(transport.nprocs()),
      stop_sending_to_(static_cast<std::size_t>(transport.nprocs()), false) {
  LOADEX_EXPECT(transport.nprocs() >= 1, "mechanism needs >= 1 process");
  LOADEX_EXPECT(config_.threshold.workload >= 0.0 &&
                    config_.threshold.memory >= 0.0,
                "thresholds must be non-negative");
}

void Mechanism::addLocalLoad(const LoadMetrics& delta,
                             bool is_slave_delegated) {
  if (audit_ != nullptr) audit_->onLocalLoad(*this, delta, is_slave_delegated);
  doAddLocalLoad(delta, is_slave_delegated);
}

void Mechanism::requestView(ViewCallback cb) {
  if (audit_ != nullptr) audit_->onViewRequest(*this);
  doRequestView(std::move(cb));
}

void Mechanism::commitSelection(const SlaveSelection& selection) {
  if (audit_ != nullptr) audit_->onSelection(*this, selection);
  doCommitSelection(selection);
}

void Mechanism::onStateMessage(const sim::Message& msg) {
  LOADEX_EXPECT(msg.payload != nullptr, "state message without payload");
  if (audit_ != nullptr)
    audit_->onStateDeliver(*this, msg.src, static_cast<StateTag>(msg.tag),
                           msg.payload.get());
  // Any message from src proves it is alive: refresh the staleness clock
  // and clear a possible dead mark (a restarted process revives here).
  view_.touch(msg.src, transport_.now());
  if (view_.dead(msg.src)) view_.revive(msg.src);
  LOADEX_TRACE_INSTANT(
      transport_.now(), protoTrack(transport_.self()),
      std::string("rx ") + stateTagName(static_cast<StateTag>(msg.tag)));
  handleState(msg.src, static_cast<StateTag>(msg.tag), *msg.payload);
}

void Mechanism::noteStateSend(Rank dst, StateTag tag, Bytes size,
                              const sim::Payload* payload) {
  if (audit_ != nullptr) audit_->onStateSend(*this, dst, tag, size, payload);
  stats_.sent_by_tag.bump(stateTagName(tag));
  stats_.bytes_sent += size;
  LOADEX_TRACE_INSTANT(transport_.now(), protoTrack(transport_.self()),
                       std::string("tx ") + stateTagName(tag));
}

void Mechanism::sendState(Rank dst, StateTag tag, Bytes size,
                          std::shared_ptr<const sim::Payload> payload) {
  noteStateSend(dst, tag, size, payload.get());
  transport_.sendState(dst, tag, size, std::move(payload));
}

void Mechanism::broadcastStateTo(const std::vector<Rank>& dsts, StateTag tag,
                                 Bytes size,
                                 std::shared_ptr<const sim::Payload> payload) {
  if (dsts.empty()) return;
  for (const Rank r : dsts) noteStateSend(r, tag, size, payload.get());
  transport_.sendStateBroadcast(dsts, tag, size, std::move(payload));
}

void Mechanism::broadcastState(StateTag tag, Bytes size,
                               std::shared_ptr<const sim::Payload> payload,
                               bool respect_no_more_master) {
  const Rank me = transport_.self();
  std::vector<Rank>& dsts = broadcastScratch();
  for (Rank r = 0; r < transport_.nprocs(); ++r) {
    if (r == me) continue;
    if (respect_no_more_master && config_.no_more_master &&
        stop_sending_to_[static_cast<std::size_t>(r)])
      continue;
    dsts.push_back(r);
  }
  broadcastStateTo(dsts, tag, size, std::move(payload));
}

void Mechanism::markNoMoreMaster(Rank src) {
  LOADEX_EXPECT(src >= 0 && src < transport_.nprocs(),
                "No_more_master from unknown rank");
  stop_sending_to_[static_cast<std::size_t>(src)] = true;
}

void Mechanism::notePeerSuspect(Rank peer) {
  if (peer == transport_.self() || view_.suspect(peer)) return;
  view_.markSuspect(peer);
  ++stats_.ranks_suspected;
}

void Mechanism::notePeerAlive(Rank peer) {
  if (peer == transport_.self()) return;
  view_.clearSuspect(peer);
  if (view_.dead(peer)) view_.revive(peer);
}

void Mechanism::notePeerDead(Rank peer) {
  if (peer == transport_.self()) return;
  view_.clearSuspect(peer);
  declareDead(peer);
}

void Mechanism::applyPeerResync(Rank peer, const LoadMetrics& load) {
  if (peer == transport_.self()) return;
  view_.set(peer, load);
  view_.touch(peer, transport_.now());
  view_.clearSuspect(peer);
  if (view_.dead(peer)) view_.revive(peer);
  ++stats_.resyncs_applied;
}

void Mechanism::onRestart() {
  // Suspicion marks predate the crash; the rejoin resync and subsequent
  // traffic re-learn who is actually reachable. Dead marks stay — a
  // genuinely dead peer must not be trusted just because *we* restarted.
  for (Rank r = 0; r < transport_.nprocs(); ++r) view_.clearSuspect(r);
}

void Mechanism::noMoreMaster() {
  if (!config_.no_more_master || no_more_master_sent_) return;
  no_more_master_sent_ = true;
  // Sent to *all* other processes, "including to processes which are known
  // not to be master in the future" (§2.3).
  broadcastState(StateTag::kNoMoreMaster, NoMoreMasterPayload::sizeBytes(),
                 std::make_shared<NoMoreMasterPayload>(),
                 /*respect_no_more_master=*/false);
}

}  // namespace loadex::core
