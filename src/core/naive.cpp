#include "core/naive.h"

#include "common/expect.h"

namespace loadex::core {

NaiveMechanism::NaiveMechanism(Transport& transport, MechanismConfig config)
    : Mechanism(transport, config) {}

void NaiveMechanism::doAddLocalLoad(const LoadMetrics& delta,
                                    bool /*is_slave_delegated*/) {
  // Algorithm 2 has no slave special-case: every local variation counts.
  my_load_ += delta;
  view_.set(self(), my_load_);
  maybeBroadcast();
}

void NaiveMechanism::maybeBroadcast() {
  const LoadMetrics drift = my_load_ - last_sent_;
  if (!drift.exceeds(config_.threshold)) return;
  auto payload = std::make_shared<UpdateAbsolutePayload>();
  payload->load = my_load_;
  broadcastState(StateTag::kUpdateAbsolute, UpdateAbsolutePayload::sizeBytes(),
                 std::move(payload), /*respect_no_more_master=*/true);
  last_sent_ = my_load_;
}

void NaiveMechanism::doRequestView(ViewCallback cb) {
  // The view is maintained: a decision can use it immediately.
  ++stats_.view_requests;
  cb(view_);
}

void NaiveMechanism::doCommitSelection(const SlaveSelection& /*selection*/) {
  // Algorithm 2 publishes nothing at selection time — this is precisely
  // the coherence hole the paper illustrates in Fig. 1. The chosen slaves
  // will only advertise the extra load once the work physically reaches
  // them (and their own threshold trips).
  ++stats_.selections;
}

void NaiveMechanism::handleState(Rank src, StateTag tag,
                                 const sim::Payload& p) {
  switch (tag) {
    case StateTag::kUpdateAbsolute: {
      // Hot path at scale: every rank receives every broadcast, so the
      // dispatch avoids RTTI (see payloadCast).
      const auto& up = payloadCast<UpdateAbsolutePayload>(p);
      view_.set(src, up.load);
      return;
    }
    case StateTag::kNoMoreMaster:
      markNoMoreMaster(src);
      return;
    default:
      LOADEX_EXPECT(false, std::string("naive mechanism received ") +
                               stateTagName(tag));
  }
}

}  // namespace loadex::core
