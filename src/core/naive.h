// Naive mechanism (§2.1, Algorithm 2).
//
// Each process broadcasts its *absolute* load whenever it drifted more than
// a threshold away from the last value broadcast. The view is maintained
// passively; nothing propagates a master's decision, so consecutive slave
// selections can double-book a busy process (Fig. 1).
#pragma once

#include "core/mechanism.h"

namespace loadex::core {

class NaiveMechanism final : public Mechanism {
 public:
  NaiveMechanism(Transport& transport, MechanismConfig config);

  MechanismKind kind() const override { return MechanismKind::kNaive; }

 protected:
  void doAddLocalLoad(const LoadMetrics& delta,
                      bool is_slave_delegated) override;
  void doRequestView(ViewCallback cb) override;
  void doCommitSelection(const SlaveSelection& selection) override;
  void handleState(Rank src, StateTag tag, const sim::Payload& p) override;

 private:
  void maybeBroadcast();

  LoadMetrics last_sent_;  ///< last absolute value broadcast
};

}  // namespace loadex::core
