// Load quantities exchanged between processes.
//
// The paper tracks two metrics per process: remaining workload
// (floating-point operations still to be done) and memory occupation
// (entries). Both travel together in state messages.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "common/expect.h"
#include "common/types.h"

namespace loadex::core {

struct LoadMetrics {
  double workload = 0.0;  ///< flops still to be done
  double memory = 0.0;    ///< active memory, in entries

  LoadMetrics& operator+=(const LoadMetrics& o) {
    workload += o.workload;
    memory += o.memory;
    return *this;
  }
  LoadMetrics& operator-=(const LoadMetrics& o) {
    workload -= o.workload;
    memory -= o.memory;
    return *this;
  }
  friend LoadMetrics operator+(LoadMetrics a, const LoadMetrics& b) {
    return a += b;
  }
  friend LoadMetrics operator-(LoadMetrics a, const LoadMetrics& b) {
    return a -= b;
  }
  friend LoadMetrics operator*(double s, const LoadMetrics& m) {
    return LoadMetrics{s * m.workload, s * m.memory};
  }
  friend bool operator==(const LoadMetrics&, const LoadMetrics&) = default;

  bool isZero() const { return workload == 0.0 && memory == 0.0; }

  /// True if all components are >= 0 (used by the Alg. 3 line-(1) guard:
  /// a slave skips self-reporting *positive* delegated-load increments).
  bool allNonNegative() const { return workload >= 0.0 && memory >= 0.0; }

  /// Component-wise |this| exceeds the threshold on *any* metric
  /// ("significant variation").
  bool exceeds(const LoadMetrics& threshold) const {
    return std::abs(workload) > threshold.workload ||
           std::abs(memory) > threshold.memory;
  }
};

/// A process's view of the load of every process in the system, plus
/// freshness metadata: when each entry was last refreshed by a message
/// from its owner, and whether the owner has been declared dead (crashed
/// or persistently unreachable). Degradation-aware schedulers use both to
/// skip ranks whose entries cannot be trusted.
class LoadView {
 public:
  LoadView() = default;
  explicit LoadView(int nprocs)
      : load_(static_cast<std::size_t>(nprocs)),
        last_heard_(static_cast<std::size_t>(nprocs), 0.0),
        dead_(static_cast<std::size_t>(nprocs), false),
        suspect_(static_cast<std::size_t>(nprocs), false) {}

  int nprocs() const { return static_cast<int>(load_.size()); }

  const LoadMetrics& load(Rank r) const {
    LOADEX_EXPECT(r >= 0 && r < nprocs(), "rank out of range in LoadView");
    return load_[static_cast<std::size_t>(r)];
  }
  void set(Rank r, const LoadMetrics& m) {
    LOADEX_EXPECT(r >= 0 && r < nprocs(), "rank out of range in LoadView");
    load_[static_cast<std::size_t>(r)] = m;
  }
  void add(Rank r, const LoadMetrics& delta) {
    LOADEX_EXPECT(r >= 0 && r < nprocs(), "rank out of range in LoadView");
    load_[static_cast<std::size_t>(r)] += delta;
  }

  LoadMetrics total() const {
    LoadMetrics t;
    for (const auto& m : load_) t += m;
    return t;
  }

  // ---- freshness tracking ----------------------------------------------

  /// Record that `r` was heard from at time `t` (any message counts).
  void touch(Rank r, SimTime t) {
    auto& last = last_heard_[static_cast<std::size_t>(r)];
    if (t > last) last = t;
  }
  SimTime lastHeardFrom(Rank r) const {
    return last_heard_[static_cast<std::size_t>(r)];
  }
  /// Age of the entry for `r` as seen at time `now` (infinite if dead).
  double staleness(Rank r, SimTime now) const {
    if (dead(r)) return std::numeric_limits<double>::infinity();
    return now - last_heard_[static_cast<std::size_t>(r)];
  }

  bool dead(Rank r) const { return dead_[static_cast<std::size_t>(r)]; }
  void markDead(Rank r) { dead_[static_cast<std::size_t>(r)] = true; }
  void revive(Rank r) { dead_[static_cast<std::size_t>(r)] = false; }
  int deadCount() const {
    int n = 0;
    for (const bool d : dead_) n += d ? 1 : 0;
    return n;
  }

  // ---- suspicion (failure-detector hints) ------------------------------
  // A suspect entry is still usable — the owner missed heartbeats but was
  // not declared dead — so schedulers treat it as a last resort rather
  // than skipping it outright. Reversible, unlike markDead.

  bool suspect(Rank r) const {
    return suspect_[static_cast<std::size_t>(r)];
  }
  void markSuspect(Rank r) { suspect_[static_cast<std::size_t>(r)] = true; }
  void clearSuspect(Rank r) {
    suspect_[static_cast<std::size_t>(r)] = false;
  }
  int suspectCount() const {
    int n = 0;
    for (const bool s : suspect_) n += s ? 1 : 0;
    return n;
  }

 private:
  std::vector<LoadMetrics> load_;
  std::vector<SimTime> last_heard_;
  std::vector<bool> dead_;
  std::vector<bool> suspect_;
};

/// One slave chosen by a master, with the load (work + memory) assigned.
struct SlaveAssignment {
  Rank slave = kNoRank;
  LoadMetrics share;
};

using SlaveSelection = std::vector<SlaveAssignment>;

}  // namespace loadex::core
