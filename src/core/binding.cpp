#include "core/binding.h"

#include "common/expect.h"
#include "core/increment.h"
#include "core/naive.h"
#include "core/snapshot.h"

namespace loadex::core {

std::unique_ptr<Mechanism> makeMechanism(MechanismKind kind,
                                         Transport& transport,
                                         const MechanismConfig& config) {
  switch (kind) {
    case MechanismKind::kNaive:
      return std::make_unique<NaiveMechanism>(transport, config);
    case MechanismKind::kIncrement:
      return std::make_unique<IncrementMechanism>(transport, config);
    case MechanismKind::kSnapshot:
      return std::make_unique<SnapshotMechanism>(transport, config);
  }
  LOADEX_EXPECT(false, "unknown mechanism kind");
}

MechanismSet::MechanismSet(sim::World& world, MechanismKind kind,
                           const MechanismConfig& config)
    : kind_(kind) {
  const int n = world.nprocs();
  transports_.reserve(static_cast<std::size_t>(n));
  mechanisms_.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    transports_.push_back(std::make_unique<SimTransport>(world.process(r)));
    mechanisms_.push_back(makeMechanism(kind, *transports_.back(), config));
  }
}

MechanismSet::MechanismSet(const std::vector<Transport*>& transports,
                           MechanismKind kind, const MechanismConfig& config)
    : kind_(kind) {
  LOADEX_EXPECT(!transports.empty(), "MechanismSet needs at least one rank");
  mechanisms_.reserve(transports.size());
  for (Transport* t : transports) {
    LOADEX_EXPECT(t != nullptr, "null transport");
    mechanisms_.push_back(makeMechanism(kind, *t, config));
  }
}

Mechanism& MechanismSet::at(Rank rank) {
  LOADEX_EXPECT(rank >= 0 && rank < size(), "rank out of range");
  return *mechanisms_[static_cast<std::size_t>(rank)];
}

const Mechanism& MechanismSet::at(Rank rank) const {
  LOADEX_EXPECT(rank >= 0 && rank < size(), "rank out of range");
  return *mechanisms_[static_cast<std::size_t>(rank)];
}

MechanismStats MechanismSet::aggregateStats() const {
  MechanismStats total;
  for (const auto& m : mechanisms_) m->stats().mergeInto(total);
  return total;
}

}  // namespace loadex::core
