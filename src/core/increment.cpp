#include "core/increment.h"

#include <algorithm>

#include "common/expect.h"

namespace loadex::core {

namespace {
/// Wire cost of the sequence number added by the hardened protocol.
constexpr Bytes kSeqBytes = 8;
}  // namespace

IncrementMechanism::IncrementMechanism(Transport& transport,
                                       MechanismConfig config)
    : Mechanism(transport, config),
      out_(static_cast<std::size_t>(transport.nprocs())),
      in_(static_cast<std::size_t>(transport.nprocs())) {
  LOADEX_EXPECT(config_.reliability.resend_window > 0,
                "resend window must be positive");
  LOADEX_EXPECT(!hardened() || config_.reliability.heartbeat_period_s > 0.0,
                "hardened increments need a positive heartbeat period");
}

void IncrementMechanism::doAddLocalLoad(const LoadMetrics& delta,
                                      bool is_slave_delegated) {
  // Algorithm 3 line (1): a positive variation caused by a task for which
  // this process is a slave is skipped entirely — the master's
  // Master_To_All already carried that information (and updates my_load
  // on reception, line 21).
  if (is_slave_delegated && delta.allNonNegative()) return;

  my_load_ += delta;
  view_.set(self(), my_load_);
  view_.touch(self(), transport_.now());
  pending_delta_ += delta;
  if (pending_delta_.exceeds(config_.threshold)) {
    UpdateDeltaPayload proto;
    proto.delta = pending_delta_;
    if (!hardened()) {
      broadcastState(StateTag::kUpdateDelta, UpdateDeltaPayload::sizeBytes(),
                     std::make_shared<UpdateDeltaPayload>(proto),
                     /*respect_no_more_master=*/true);
    } else {
      const Bytes size = UpdateDeltaPayload::sizeBytes() + kSeqBytes;
      for (Rank r = 0; r < nprocs(); ++r) {
        if (r == self()) continue;
        if (config_.no_more_master &&
            stop_sending_to_[static_cast<std::size_t>(r)])
          continue;
        sequencedSend(r, StateTag::kUpdateDelta, size, proto);
      }
    }
    pending_delta_ = LoadMetrics{};
  }
}

void IncrementMechanism::doRequestView(ViewCallback cb) {
  ++stats_.view_requests;
  cb(view_);
}

void IncrementMechanism::doCommitSelection(const SlaveSelection& selection) {
  ++stats_.selections;
  if (selection.empty()) return;
  MasterToAllPayload proto;
  proto.assignments = selection;
  // Processes that announced No_more_master no longer need load
  // information — unless they are among the selected slaves: a slave
  // learns its own reservation from this very message (Alg. 3 line 21),
  // and its self-accounting (hence the Updates everyone else relies on)
  // would diverge without it.
  const auto skipRank = [&](Rank r) {
    if (!config_.no_more_master ||
        !stop_sending_to_[static_cast<std::size_t>(r)])
      return false;
    for (const auto& a : selection)
      if (a.slave == r) return false;
    return true;
  };
  const Bytes size = MasterToAllPayload::sizeBytes(selection.size()) +
                     (hardened() ? kSeqBytes : 0);
  if (hardened()) {
    // Each destination carries its own stream sequence number, so the
    // hardened reservation stays an eager per-destination send.
    for (Rank r = 0; r < nprocs(); ++r) {
      if (r == self() || skipRank(r)) continue;
      sequencedSend(r, StateTag::kMasterToAll, size, proto);
    }
  } else {
    std::vector<Rank>& dsts = broadcastScratch();
    for (Rank r = 0; r < nprocs(); ++r) {
      if (r == self() || skipRank(r)) continue;
      dsts.push_back(r);
    }
    broadcastStateTo(dsts, StateTag::kMasterToAll, size,
                     std::make_shared<MasterToAllPayload>(proto));
  }
  // Apply the reservation locally too: this master will not receive its
  // own broadcast, yet its next decision must see this one.
  for (const auto& a : selection) {
    LOADEX_EXPECT(a.slave >= 0 && a.slave < nprocs(),
                  "selection names an unknown slave");
    if (a.slave == self()) {
      my_load_ += a.share;
      view_.set(self(), my_load_);
    } else {
      view_.add(a.slave, a.share);
    }
  }
}

void IncrementMechanism::applyLoadBearing(Rank src, StateTag tag,
                                          const sim::Payload& p) {
  if (tag == StateTag::kUpdateDelta) {
    const auto& up = payloadCast<UpdateDeltaPayload>(p);
    view_.add(src, up.delta);
    return;
  }
  const auto& mta = payloadCast<MasterToAllPayload>(p);
  for (const auto& a : mta.assignments) {
    if (a.slave == self()) {
      // Algorithm 3 line 21: the slave learns its reservation here.
      my_load_ += a.share;
      view_.set(self(), my_load_);
    } else {
      view_.add(a.slave, a.share);
    }
  }
  // The sender's own share of the parallel task is accounted by the
  // sender itself through addLocalLoad.
}

void IncrementMechanism::handleState(Rank src, StateTag tag,
                                     const sim::Payload& p) {
  switch (tag) {
    case StateTag::kUpdateDelta:
    case StateTag::kMasterToAll:
      if (hardened())
        onSequenced(src, tag, p);
      else
        applyLoadBearing(src, tag, p);
      return;
    case StateTag::kNack:
      onNack(src, payloadCast<NackPayload>(p));
      return;
    case StateTag::kHeartbeat:
      onHeartbeat(src, payloadCast<HeartbeatPayload>(p));
      return;
    case StateTag::kNoMoreMaster:
      markNoMoreMaster(src);
      return;
    default:
      LOADEX_EXPECT(false, std::string("increment mechanism received ") +
                               stateTagName(tag));
  }
}

// ---- hardened sender side -------------------------------------------------

template <typename P>
void IncrementMechanism::sequencedSend(Rank dst, StateTag tag, Bytes size,
                                       const P& proto) {
  OutStream& out = out_[static_cast<std::size_t>(dst)];
  auto copy = std::make_shared<P>(proto);
  copy->seq = ++out.last_seq;
  out.resend.push_back({copy->seq, tag, size, copy});
  if (static_cast<int>(out.resend.size()) > config_.reliability.resend_window)
    out.resend.pop_front();
  out.idle_rounds = 0;
  sendState(dst, tag, size, std::move(copy));
  armFlushTimer();
}

void IncrementMechanism::onNack(Rank src, const NackPayload& p) {
  LOADEX_EXPECT(hardened(), "NACK received with reliability disabled");
  for (const auto& rec : out_[static_cast<std::size_t>(src)].resend) {
    if (rec.seq < p.from || rec.seq > p.to) continue;
    ++stats_.retransmissions;
    sendState(src, rec.tag, rec.size, rec.payload);
  }
}

void IncrementMechanism::armFlushTimer() {
  if (flush_timer_armed_) return;
  const double period = config_.reliability.heartbeat_period_s;
  if (period <= 0.0) return;
  flush_timer_armed_ = true;
  transport_.schedule(period, [this] { onFlushTick(); });
}

void IncrementMechanism::onFlushTick() {
  flush_timer_armed_ = false;
  sendHeartbeats();
}

void IncrementMechanism::sendHeartbeats() {
  bool any_active = false;
  for (Rank r = 0; r < nprocs(); ++r) {
    if (r == self()) continue;
    OutStream& out = out_[static_cast<std::size_t>(r)];
    if (out.last_seq == 0) continue;  // stream never used
    if (out.last_seq > out.flushed)
      out.idle_rounds = 0;
    else
      ++out.idle_rounds;
    // Streams stay on heartbeat duty for `tail_heartbeats` quiet rounds:
    // each beacon is an independent chance to detect a lost stream tail.
    if (out.idle_rounds > config_.reliability.tail_heartbeats) continue;
    auto hb = std::make_shared<HeartbeatPayload>();
    hb->last_seq = out.last_seq;
    out.flushed = out.last_seq;
    sendState(r, StateTag::kHeartbeat, HeartbeatPayload::sizeBytes(),
              std::move(hb));
    any_active = true;
  }
  if (any_active) armFlushTimer();
}

// ---- hardened receiver side -----------------------------------------------

bool IncrementMechanism::gapOpen(Rank src) const {
  const auto& s = in_[static_cast<std::size_t>(src)];
  return !s.stash.empty() || s.announced_last >= s.next;
}

void IncrementMechanism::onSequenced(Rank src, StateTag tag,
                                     const sim::Payload& p) {
  const SeqNo seq = tag == StateTag::kUpdateDelta
                        ? payloadCast<UpdateDeltaPayload>(p).seq
                        : payloadCast<MasterToAllPayload>(p).seq;
  LOADEX_EXPECT(seq > 0, "hardened receiver got an unsequenced message");
  auto& s = in_[static_cast<std::size_t>(src)];

  if (seq < s.next) {  // duplicate or already-recovered retransmission
    ++stats_.duplicates_dropped;
    return;
  }
  if (seq == s.next) {
    applyLoadBearing(src, tag, p);
    ++s.next;
    drainStash(src);
    return;
  }

  // Early arrival: something in [next, seq-1] is missing. Stash a copy
  // (the network owns the original) and ask the sender to fill the gap.
  const bool was_open = gapOpen(src);
  Stashed st;
  st.tag = tag;
  if (tag == StateTag::kUpdateDelta)
    st.payload = std::make_shared<UpdateDeltaPayload>(
        payloadCast<UpdateDeltaPayload>(p));
  else
    st.payload = std::make_shared<MasterToAllPayload>(
        payloadCast<MasterToAllPayload>(p));
  s.stash.emplace(seq, std::move(st));
  if (!was_open) {
    ++stats_.gaps_detected;
    sendNack(src);
    armNackTimer(src);
  }
}

void IncrementMechanism::onHeartbeat(Rank src, const HeartbeatPayload& p) {
  LOADEX_EXPECT(hardened(), "heartbeat received with reliability disabled");
  auto& s = in_[static_cast<std::size_t>(src)];
  const bool was_open = gapOpen(src);
  s.announced_last = std::max(s.announced_last, p.last_seq);
  if (!gapOpen(src)) return;
  if (!was_open) ++stats_.gaps_detected;
  // Re-NACK on every beacon while the gap persists: heartbeats are few
  // (bounded by tail_heartbeats) and each NACK is another recovery shot.
  sendNack(src);
  armNackTimer(src);
}

void IncrementMechanism::drainStash(Rank src) {
  auto& s = in_[static_cast<std::size_t>(src)];
  auto it = s.stash.begin();
  while (it != s.stash.end() && it->first == s.next) {
    applyLoadBearing(src, it->second.tag, *it->second.payload);
    ++s.next;
    it = s.stash.erase(it);
  }
  if (!gapOpen(src)) s.nack_retries = 0;
}

void IncrementMechanism::sendNack(Rank src) {
  auto& s = in_[static_cast<std::size_t>(src)];
  SeqNo to = s.announced_last;
  if (!s.stash.empty()) to = std::max(to, s.stash.rbegin()->first - 1);
  if (to < s.next) return;  // nothing missing after all
  auto np = std::make_shared<NackPayload>();
  np->from = s.next;
  np->to = to;
  ++stats_.nacks_sent;
  sendState(src, StateTag::kNack, NackPayload::sizeBytes(), std::move(np));
}

void IncrementMechanism::armNackTimer(Rank src) {
  auto& s = in_[static_cast<std::size_t>(src)];
  if (s.nack_timer_armed) return;
  s.nack_timer_armed = true;
  transport_.schedule(config_.reliability.nack_timeout_s, [this, src] {
    auto& st = in_[static_cast<std::size_t>(src)];
    st.nack_timer_armed = false;
    if (!gapOpen(src)) {
      st.nack_retries = 0;
      return;
    }
    if (++st.nack_retries > config_.reliability.max_nack_retries) {
      abandonGap(src);
      return;
    }
    sendNack(src);
    armNackTimer(src);
  });
}

void IncrementMechanism::abandonGap(Rank src) {
  // The source did not answer any retry: it is presumed crashed. Apply
  // whatever arrived out of order (better than discarding it), fast-
  // forward the stream, and flag the rank so schedulers stop trusting
  // its entry. If it ever speaks again, reception revives it.
  auto& s = in_[static_cast<std::size_t>(src)];
  ++stats_.gaps_abandoned;
  declareDead(src);
  for (auto& [seq, st] : s.stash) {
    applyLoadBearing(src, st.tag, *st.payload);
    s.next = seq + 1;
  }
  s.stash.clear();
  s.next = std::max(s.next, s.announced_last + 1);
  s.nack_retries = 0;
}

}  // namespace loadex::core
