#include "core/increment.h"

#include "common/expect.h"

namespace loadex::core {

IncrementMechanism::IncrementMechanism(Transport& transport,
                                       MechanismConfig config)
    : Mechanism(transport, config) {}

void IncrementMechanism::addLocalLoad(const LoadMetrics& delta,
                                      bool is_slave_delegated) {
  // Algorithm 3 line (1): a positive variation caused by a task for which
  // this process is a slave is skipped entirely — the master's
  // Master_To_All already carried that information (and updates my_load
  // on reception, line 21).
  if (is_slave_delegated && delta.allNonNegative()) return;

  my_load_ += delta;
  view_.set(self(), my_load_);
  pending_delta_ += delta;
  if (pending_delta_.exceeds(config_.threshold)) {
    auto payload = std::make_shared<UpdateDeltaPayload>();
    payload->delta = pending_delta_;
    broadcastState(StateTag::kUpdateDelta, UpdateDeltaPayload::sizeBytes(),
                   std::move(payload), /*respect_no_more_master=*/true);
    pending_delta_ = LoadMetrics{};
  }
}

void IncrementMechanism::requestView(ViewCallback cb) {
  ++stats_.view_requests;
  cb(view_);
}

void IncrementMechanism::commitSelection(const SlaveSelection& selection) {
  ++stats_.selections;
  if (selection.empty()) return;
  auto payload = std::make_shared<MasterToAllPayload>();
  payload->assignments = selection;
  // Processes that announced No_more_master no longer need load
  // information — unless they are among the selected slaves: a slave
  // learns its own reservation from this very message (Alg. 3 line 21),
  // and its self-accounting (hence the Updates everyone else relies on)
  // would diverge without it.
  const Bytes size = MasterToAllPayload::sizeBytes(selection.size());
  for (Rank r = 0; r < nprocs(); ++r) {
    if (r == self()) continue;
    bool skip = config_.no_more_master &&
                stop_sending_to_[static_cast<std::size_t>(r)];
    if (skip) {
      for (const auto& a : selection)
        if (a.slave == r) {
          skip = false;
          break;
        }
    }
    if (!skip) sendState(r, StateTag::kMasterToAll, size, payload);
  }
  // Apply the reservation locally too: this master will not receive its
  // own broadcast, yet its next decision must see this one.
  for (const auto& a : selection) {
    LOADEX_EXPECT(a.slave >= 0 && a.slave < nprocs(),
                  "selection names an unknown slave");
    if (a.slave == self()) {
      my_load_ += a.share;
      view_.set(self(), my_load_);
    } else {
      view_.add(a.slave, a.share);
    }
  }
}

void IncrementMechanism::handleState(Rank src, StateTag tag,
                                     const sim::Payload& p) {
  switch (tag) {
    case StateTag::kUpdateDelta: {
      const auto& up = dynamic_cast<const UpdateDeltaPayload&>(p);
      view_.add(src, up.delta);
      return;
    }
    case StateTag::kMasterToAll: {
      const auto& mta = dynamic_cast<const MasterToAllPayload&>(p);
      for (const auto& a : mta.assignments) {
        if (a.slave == self()) {
          // Algorithm 3 line 21: the slave learns its reservation here.
          my_load_ += a.share;
          view_.set(self(), my_load_);
        } else {
          view_.add(a.slave, a.share);
        }
      }
      // The sender's own share of the parallel task is accounted by the
      // sender itself through addLocalLoad.
      return;
    }
    case StateTag::kNoMoreMaster:
      markNoMoreMaster(src);
      return;
    default:
      LOADEX_EXPECT(false, std::string("increment mechanism received ") +
                               stateTagName(tag));
  }
}

}  // namespace loadex::core
