// Distributed leader election policies for the snapshot mechanism (§3).
//
// The paper elects "based for example on process ranks" (smallest rank) and
// lists the election criterion as a perspective worth studying — hence the
// pluggable policy, exercised by bench_ablation_election.
#pragma once

#include <cstdint>
#include <string>

#include "common/expect.h"
#include "common/rng.h"
#include "common/types.h"

namespace loadex::core {

enum class ElectionPolicy {
  kMinRank,     ///< paper default: smallest rank wins
  kMaxRank,     ///< largest rank wins
  kHashedRank,  ///< stable pseudo-random total order over ranks
};

inline const char* electionPolicyName(ElectionPolicy p) {
  switch (p) {
    case ElectionPolicy::kMinRank: return "min_rank";
    case ElectionPolicy::kMaxRank: return "max_rank";
    case ElectionPolicy::kHashedRank: return "hashed_rank";
  }
  return "?";
}

/// Priority key of a rank under a policy; smaller key wins the election.
/// All processes evaluate the same deterministic function, so they agree.
inline std::uint64_t electionKey(ElectionPolicy policy, Rank r) {
  switch (policy) {
    case ElectionPolicy::kMinRank:
      return static_cast<std::uint64_t>(r);
    case ElectionPolicy::kMaxRank:
      return ~static_cast<std::uint64_t>(r);
    case ElectionPolicy::kHashedRank:
      return mix64(static_cast<std::uint64_t>(r) + 0x9e37u);
  }
  return 0;
}

/// The paper's elect(Pi, leader): keep the stronger of the two candidates.
/// `current` may be kNoRank (undefined leader).
inline Rank elect(ElectionPolicy policy, Rank candidate, Rank current) {
  LOADEX_EXPECT(candidate != kNoRank, "elect needs a concrete candidate");
  if (current == kNoRank) return candidate;
  return electionKey(policy, candidate) < electionKey(policy, current)
             ? candidate
             : current;
}

}  // namespace loadex::core
