// Glue between the mechanisms and the simulated processes.
//
// SimTransport sends on a Process's state channel; MechanismSet builds one
// (transport, mechanism) pair per rank and attaches each mechanism as the
// process's StateHandler.
#pragma once

#include <memory>
#include <vector>

#include "core/mechanism.h"
#include "sim/process.h"
#include "sim/world.h"

namespace loadex::core {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Process& process) : process_(process) {}

  Rank self() const override { return process_.rank(); }
  int nprocs() const override { return process_.nprocs(); }
  SimTime now() const override { return process_.now(); }
  void sendState(Rank dst, StateTag tag, Bytes size,
                 std::shared_ptr<const sim::Payload> payload) override {
    process_.send(dst, sim::Channel::kState, static_cast<int>(tag), size,
                  std::move(payload));
  }
  void sendStateBroadcast(
      const std::vector<Rank>& dsts, StateTag tag, Bytes size,
      std::shared_ptr<const sim::Payload> payload) override {
    process_.broadcast(dsts, sim::Channel::kState, static_cast<int>(tag),
                       size, std::move(payload));
  }
  void schedule(SimTime delay, std::function<void()> fn) override {
    // A mechanism timer can unfreeze the process or make local work ready
    // (snapshot answer timeout firing the view callback, a foreign guard
    // force-closing a snapshot); unlike a message delivery, a bare queue
    // event does not pump the process, so re-pump after the callback.
    process_.queue().scheduleAfter(delay,
                                   [this, fn = std::move(fn)] {
                                     fn();
                                     process_.notifyReadyWork();
                                   });
  }

 private:
  sim::Process& process_;
};

/// Create a mechanism of the given kind over a transport.
std::unique_ptr<Mechanism> makeMechanism(MechanismKind kind,
                                         Transport& transport,
                                         const MechanismConfig& config);

/// One mechanism per rank of a world, each attached as the process's state
/// handler (the application is attached separately by the solver).
class MechanismSet {
 public:
  MechanismSet(sim::World& world, MechanismKind kind,
               const MechanismConfig& config);

  /// Over externally-owned transports, one per rank in rank order. This is
  /// the seam the real-threads runtime uses: rt::RtWorld owns one
  /// RtTransport per node thread and binds the same mechanism code to them;
  /// the ProtocolAuditor and the obs layer attach exactly as they do over a
  /// sim::World. The transports must outlive the set.
  MechanismSet(const std::vector<Transport*>& transports, MechanismKind kind,
               const MechanismConfig& config);

  Mechanism& at(Rank rank);
  const Mechanism& at(Rank rank) const;
  int size() const { return static_cast<int>(mechanisms_.size()); }
  MechanismKind kind() const { return kind_; }

  /// Sum of per-process statistics (Table 6 totals).
  MechanismStats aggregateStats() const;

 private:
  MechanismKind kind_;
  std::vector<std::unique_ptr<SimTransport>> transports_;
  std::vector<std::unique_ptr<Mechanism>> mechanisms_;
};

}  // namespace loadex::core
