// Abstract interface of a load information exchange mechanism.
//
// A mechanism gives every process (a) a way to account for its own load
// changes, and (b) a way for a *master* to obtain a view of all loads right
// before a dynamic scheduling decision (slave selection), plus a way to
// publish the decision so subsequent decisions can take it into account.
//
// The three implementations are the paper's:
//   NaiveMechanism      — §2.1, Algorithm 2 (absolute broadcasts)
//   IncrementMechanism  — §2.2, Algorithm 3 (+ Master_To_All reservations)
//   SnapshotMechanism   — §3 (demand-driven distributed snapshot)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/election.h"
#include "core/load.h"
#include "core/payloads.h"
#include "sim/application.h"

namespace loadex::core {

enum class MechanismKind { kNaive, kIncrement, kSnapshot };

const char* mechanismKindName(MechanismKind kind);
MechanismKind parseMechanismKind(const std::string& name);

/// How a mechanism talks to the outside world. The production transport
/// binds to a simulated process (binding.h); tests use a scripted one.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Rank self() const = 0;
  virtual int nprocs() const = 0;
  virtual SimTime now() const = 0;
  virtual void sendState(Rank dst, StateTag tag, Bytes size,
                         std::shared_ptr<const sim::Payload> payload) = 0;

  /// Send one shared payload to every rank in `dsts`, in order. The
  /// default expands into per-destination sendState calls; transports
  /// over the simulator override it with the kernel's O(1) logical
  /// broadcast (identical observable behaviour, fewer allocations).
  virtual void sendStateBroadcast(const std::vector<Rank>& dsts, StateTag tag,
                                  Bytes size,
                                  std::shared_ptr<const sim::Payload> payload);

  /// Arm a one-shot timer `delay` seconds from now. Only the hardened
  /// (reliability-enabled) protocol paths use timers; the default
  /// implementation hard-fails so that a transport without timer support
  /// cannot silently drop a retry/timeout.
  virtual void schedule(SimTime delay, std::function<void()> fn);
};

/// Knobs of the protocol hardening layer (ack/timeout/retry). Everything
/// defaults to OFF: with the default config the mechanisms behave exactly
/// as the paper's pseudocode on a reliable network, bit for bit.
struct ReliabilityConfig {
  /// Master switch for the hardened increment protocol: sequence-numbered
  /// load updates with gap detection, NACK/resend and heartbeat tail
  /// flush. Requires a Transport with timer support.
  bool reliable_updates = false;
  /// Retry period of a pending NACK while a gap persists.
  double nack_timeout_s = 2e-4;
  /// NACK retries before the source is declared dead in the local view.
  int max_nack_retries = 8;
  /// Flush-beacon period; each active (sender, receiver) stream gets one
  /// heartbeat per period so tail losses are detected.
  double heartbeat_period_s = 2e-3;
  /// Idle heartbeat rounds sent after the stream goes quiet (each one is
  /// an independent chance to detect a lost tail).
  int tail_heartbeats = 4;
  /// Per-destination retransmission buffer depth (messages).
  int resend_window = 512;

  /// Snapshot hardening: answer-collection timeout. 0 disables it (paper
  /// behaviour: a lost snp answer deadlocks the initiator forever).
  double snapshot_timeout_s = 0.0;
  /// Full re-arm/retry rounds before the initiator completes with a
  /// partial quorum (missing ranks are declared dead, their entries kept
  /// from the maintained view and flagged stale).
  int max_snapshot_retries = 3;

  bool snapshotHardened() const { return snapshot_timeout_s > 0.0; }
};

struct MechanismConfig {
  /// "Significant variation" threshold (per metric) that triggers an
  /// Update broadcast in the maintained-view mechanisms.
  LoadMetrics threshold{1e6, 1e4};

  /// Fault-tolerance hardening, all off by default (see above).
  ReliabilityConfig reliability;

  /// Enable the §2.3 No_more_master optimisation.
  bool no_more_master = true;

  /// Snapshot: leader election criterion.
  ElectionPolicy election = ElectionPolicy::kMinRank;

  /// Snapshot hardening toggle. true (default): a pending initiator
  /// re-arms (fresh request id + re-broadcast) whenever *any* other
  /// snapshot completes, so its view postdates every earlier decision —
  /// end-driven, hence free of re-arm broadcast cascades. false: the
  /// paper's pseudocode rule (re-arm inside the start_snp handler, only
  /// while nb_snp == 1), which leaves a stale-answer window with three or
  /// more simultaneous snapshots. bench_ablation_election compares both.
  bool rearm_on_every_preemption = true;
};

/// Message statistics, counted at the sender (Table 6 reports these).
struct MechanismStats {
  CounterSet sent_by_tag;   ///< point-to-point sends, keyed by tag name
  Bytes bytes_sent = 0;
  std::int64_t view_requests = 0;   ///< dynamic decisions served
  std::int64_t selections = 0;      ///< commitSelection calls
  // Snapshot-specific (zero for the other mechanisms):
  std::int64_t snapshots_initiated = 0;
  std::int64_t snapshot_rearms = 0;
  double time_blocked = 0.0;        ///< time this process spent frozen
  Accumulator snapshot_duration;    ///< requestView -> view delivery

  // Hardened-protocol statistics (all zero with reliability off):
  std::int64_t gaps_detected = 0;        ///< sequence gaps seen as receiver
  std::int64_t nacks_sent = 0;
  std::int64_t retransmissions = 0;      ///< messages resent on NACK
  std::int64_t duplicates_dropped = 0;   ///< stale/duplicate seq discarded
  std::int64_t gaps_abandoned = 0;       ///< NACK retries exhausted
  std::int64_t snapshot_timeouts = 0;    ///< answer timeouts fired
  std::int64_t partial_snapshots = 0;    ///< completed with a partial quorum
  std::int64_t snapshot_aborts = 0;      ///< foreign snapshots force-closed
  std::int64_t ranks_declared_dead = 0;

  // Supervision statistics (rt failure detector + rejoin resync; zero
  // whenever no supervisor is attached):
  std::int64_t ranks_suspected = 0;      ///< notePeerSuspect transitions
  std::int64_t resyncs_applied = 0;      ///< applyPeerResync entries taken

  std::int64_t messagesSent() const { return sent_by_tag.total(); }
  void mergeInto(MechanismStats& out) const;
};

class Mechanism;

/// Passive observation hooks on the semantic events of a mechanism:
/// local load accounting, view requests, committed selections, and state
/// traffic (at the sender and at the receiver). The ProtocolAuditor
/// (core/audit.h) implements this to verify paper-level invariants online;
/// with no observer attached every hook collapses to a null-pointer check.
class AuditObserver {
 public:
  virtual ~AuditObserver() = default;

  virtual void onLocalLoad(const Mechanism& /*m*/, const LoadMetrics& /*delta*/,
                           bool /*is_slave_delegated*/) {}
  virtual void onViewRequest(const Mechanism& /*m*/) {}
  virtual void onSelection(const Mechanism& /*m*/,
                           const SlaveSelection& /*selection*/) {}
  virtual void onStateSend(const Mechanism& /*m*/, Rank /*dst*/,
                           StateTag /*tag*/, Bytes /*size*/,
                           const sim::Payload* /*payload*/) {}
  virtual void onStateDeliver(const Mechanism& /*m*/, Rank /*src*/,
                              StateTag /*tag*/, const sim::Payload* /*p*/) {}
};

class Mechanism : public sim::StateHandler {
 public:
  using ViewCallback = std::function<void(const LoadView&)>;

  Mechanism(Transport& transport, MechanismConfig config);
  ~Mechanism() override = default;

  virtual MechanismKind kind() const = 0;

  // ---- application-side API -------------------------------------------
  // The entry points are non-virtual: they notify the attached audit
  // observer (if any), then forward to the mechanism-specific
  // doAddLocalLoad / doRequestView / doCommitSelection implementations.

  /// Account a change of this process's own load. `is_slave_delegated`
  /// marks deltas caused by a task delegated by a master (Alg. 3 line (1):
  /// positive such deltas must not be self-reported — the master's
  /// reservation message already carried them).
  void addLocalLoad(const LoadMetrics& delta, bool is_slave_delegated = false);

  /// Ask for a view of the system to take a dynamic decision. Maintained-
  /// view mechanisms invoke `cb` synchronously; the snapshot mechanism
  /// invokes it once the snapshot completes. Exactly one commitSelection()
  /// must follow each requestView() before the next requestView().
  void requestView(ViewCallback cb);

  /// Publish the decision taken from the last requested view.
  void commitSelection(const SlaveSelection& selection);

  /// This process will never again be a master (§2.3).
  virtual void noMoreMaster();

  // ---- failure detection / crash recovery (rt supervision layer) -------
  // Called on this process's own execution context (its node thread in
  // the rt world); the simulator never calls them, so with no supervisor
  // attached they are dead code and the clean path is untouched.

  /// Advisory: the failure detector missed heartbeats from `peer`.
  /// Reversible — notePeerAlive clears it.
  void notePeerSuspect(Rank peer);
  /// The detector heard from `peer` again (or it was restarted).
  void notePeerAlive(Rank peer);
  /// The detector declared `peer` dead (crashed or silent past the dead
  /// threshold). Marks the view like any protocol-level death.
  void notePeerDead(Rank peer);

  /// Rejoin resync: overwrite the maintained entry for `peer` with its
  /// authoritative load and clear the staleness/suspicion marks. Driven
  /// by the supervisor after a restart (rt/supervisor.h).
  void applyPeerResync(Rank peer, const LoadMetrics& load);

  /// Called on a restarted process before it rejoins: shed in-flight
  /// protocol state that died with the crash (a snapshot mid-flight, a
  /// pending view callback). The base clears suspicion marks only; the
  /// maintained seq streams survive a crash untouched (the mechanism
  /// object persists — only the thread, its timers and in-flight
  /// messages are lost).
  virtual void onRestart();

  /// Attach (or detach, with nullptr) a passive audit observer. The
  /// observer must outlive the mechanism or be detached before it dies.
  void setAuditObserver(AuditObserver* observer) { audit_ = observer; }

  // ---- sim::StateHandler ----------------------------------------------
  void onStateMessage(const sim::Message& msg) final;
  bool blocksComputation() const override { return false; }

  // ---- introspection ----------------------------------------------------
  const LoadMetrics& localLoad() const { return my_load_; }
  const LoadView& view() const { return view_; }
  const MechanismStats& stats() const { return stats_; }
  const MechanismConfig& config() const { return config_; }
  Rank self() const { return transport_.self(); }
  int nprocs() const { return transport_.nprocs(); }

 protected:
  /// Mechanism-specific bodies of the public API above.
  virtual void doAddLocalLoad(const LoadMetrics& delta,
                              bool is_slave_delegated) = 0;
  virtual void doRequestView(ViewCallback cb) = 0;
  virtual void doCommitSelection(const SlaveSelection& selection) = 0;

  /// Tag-dispatched handler implemented by each mechanism.
  virtual void handleState(Rank src, StateTag tag, const sim::Payload& p) = 0;

  void sendState(Rank dst, StateTag tag, Bytes size,
                 std::shared_ptr<const sim::Payload> payload);

  /// Send to every other process that still wants load information
  /// (No_more_master senders are skipped for load-bearing tags).
  void broadcastState(StateTag tag, Bytes size,
                      std::shared_ptr<const sim::Payload> payload,
                      bool respect_no_more_master);

  /// Send one shared payload to an explicit destination list through the
  /// transport's broadcast path, with per-destination audit / stats /
  /// trace accounting identical to a sendState loop.
  void broadcastStateTo(const std::vector<Rank>& dsts, StateTag tag,
                        Bytes size,
                        std::shared_ptr<const sim::Payload> payload);

  /// Sender-side accounting of one outgoing state message (audit hook,
  /// per-tag counters, wire bytes, trace instant) — everything sendState
  /// does except the transport call itself.
  void noteStateSend(Rank dst, StateTag tag, Bytes size,
                     const sim::Payload* payload);

  /// Reusable destination-list scratch for broadcastState (sized once,
  /// avoids a per-broadcast allocation on the hot path).
  std::vector<Rank>& broadcastScratch() {
    bcast_dsts_.clear();
    return bcast_dsts_;
  }

  /// Record a No_more_master received from `src`.
  void markNoMoreMaster(Rank src);

  /// Declare `src` dead in the local view (crashed or persistently
  /// unreachable); any later message from it revives it.
  void declareDead(Rank src) {
    if (view_.dead(src)) return;
    view_.markDead(src);
    ++stats_.ranks_declared_dead;
  }

  Transport& transport_;
  MechanismConfig config_;
  AuditObserver* audit_ = nullptr;
  LoadMetrics my_load_;
  LoadView view_;
  MechanismStats stats_;
  /// stop_sending_to_[r]: r announced No_more_master.
  std::vector<bool> stop_sending_to_;
  bool no_more_master_sent_ = false;

 private:
  std::vector<Rank> bcast_dsts_;  ///< broadcastState destination scratch
};

}  // namespace loadex::core
