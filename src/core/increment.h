// Increment mechanism (§2.2, Algorithm 3) — MUMPS' default since 4.3.
//
// Load variations travel as *increments*, accumulated until a threshold.
// At every slave selection the master broadcasts a Master_To_All
// reservation carrying the load assigned to each chosen slave; every
// process (including the slaves) applies it immediately, so the next
// decision — wherever it is taken — already accounts for this one.
//
// Because every message is a *delta*, a single lost Update or
// Master_To_All corrupts every remote view forever on a lossy network.
// With `MechanismConfig::reliability.reliable_updates` the load-bearing
// stream between each (sender, receiver) pair is sequence-numbered:
// receivers detect gaps, reorder-buffer what arrived early, NACK the
// missing range (with timed, bounded retries), and senders retransmit
// from a bounded per-destination buffer. A periodic heartbeat carrying
// the last sequence number flushes the stream tail, so the *last* message
// being lost is also detected. A source that exhausts all NACK retries is
// declared dead in the local view (degradation-aware schedulers skip it).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "core/mechanism.h"

namespace loadex::core {

class IncrementMechanism final : public Mechanism {
 public:
  IncrementMechanism(Transport& transport, MechanismConfig config);

  MechanismKind kind() const override { return MechanismKind::kIncrement; }

  /// Accumulated, not-yet-broadcast local variation (∆load in Alg. 3).
  const LoadMetrics& pendingDelta() const { return pending_delta_; }

 protected:
  void doAddLocalLoad(const LoadMetrics& delta,
                      bool is_slave_delegated) override;
  void doRequestView(ViewCallback cb) override;
  void doCommitSelection(const SlaveSelection& selection) override;
  void handleState(Rank src, StateTag tag, const sim::Payload& p) override;

 private:
  bool hardened() const { return config_.reliability.reliable_updates; }

  /// Apply a load-bearing message (Update delta or Master_To_All) to the
  /// local view — the paper's reception rules, shared by the direct and
  /// the reorder-buffer delivery paths.
  void applyLoadBearing(Rank src, StateTag tag, const sim::Payload& p);

  // ---- hardened sender side --------------------------------------------
  /// Send a per-destination clone of `proto` with the next sequence
  /// number of the (self, dst) stream, remembering it for retransmission.
  template <typename P>
  void sequencedSend(Rank dst, StateTag tag, Bytes size, const P& proto);
  void onNack(Rank src, const NackPayload& p);
  void armFlushTimer();
  void onFlushTick();
  void sendHeartbeats();

  // ---- hardened receiver side ------------------------------------------
  void onSequenced(Rank src, StateTag tag, const sim::Payload& p);
  void onHeartbeat(Rank src, const HeartbeatPayload& p);
  void drainStash(Rank src);
  bool gapOpen(Rank src) const;
  void sendNack(Rank src);
  void armNackTimer(Rank src);
  void abandonGap(Rank src);

  LoadMetrics pending_delta_;  ///< ∆load accumulator

  // ---- hardened sender state -------------------------------------------
  struct SentRecord {
    SeqNo seq = 0;
    StateTag tag = StateTag::kUpdateDelta;
    Bytes size = 0;
    std::shared_ptr<const sim::Payload> payload;
  };
  /// Per-destination outgoing stream, one flat array sized once from the
  /// world size (replaces four parallel vectors: one cache line per
  /// destination instead of four scattered loads on the heartbeat sweep).
  struct OutStream {
    SeqNo last_seq = 0;   ///< last sequence number sent
    SeqNo flushed = 0;    ///< last seq covered by a heartbeat
    int idle_rounds = 0;  ///< quiet flush rounds
    std::deque<SentRecord> resend;  ///< bounded retransmission buffer
  };
  std::vector<OutStream> out_;  ///< per destination
  bool flush_timer_armed_ = false;

  // ---- hardened receiver state -----------------------------------------
  struct Stashed {
    StateTag tag = StateTag::kUpdateDelta;
    std::shared_ptr<const sim::Payload> payload;
  };
  struct InStream {
    SeqNo next = 1;                    ///< next sequence number expected
    SeqNo announced_last = 0;          ///< highest seq learnt via heartbeat
    std::map<SeqNo, Stashed> stash;    ///< early arrivals, by seq
    int nack_retries = 0;
    bool nack_timer_armed = false;
  };
  std::vector<InStream> in_;  ///< per source
};

}  // namespace loadex::core
