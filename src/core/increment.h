// Increment mechanism (§2.2, Algorithm 3) — MUMPS' default since 4.3.
//
// Load variations travel as *increments*, accumulated until a threshold.
// At every slave selection the master broadcasts a Master_To_All
// reservation carrying the load assigned to each chosen slave; every
// process (including the slaves) applies it immediately, so the next
// decision — wherever it is taken — already accounts for this one.
#pragma once

#include "core/mechanism.h"

namespace loadex::core {

class IncrementMechanism final : public Mechanism {
 public:
  IncrementMechanism(Transport& transport, MechanismConfig config);

  MechanismKind kind() const override { return MechanismKind::kIncrement; }

  void addLocalLoad(const LoadMetrics& delta,
                    bool is_slave_delegated = false) override;
  void requestView(ViewCallback cb) override;
  void commitSelection(const SlaveSelection& selection) override;

  /// Accumulated, not-yet-broadcast local variation (∆load in Alg. 3).
  const LoadMetrics& pendingDelta() const { return pending_delta_; }

 protected:
  void handleState(Rank src, StateTag tag, const sim::Payload& p) override;

 private:
  LoadMetrics pending_delta_;  ///< ∆load accumulator
};

}  // namespace loadex::core
