#include "core/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/expect.h"
#include "core/increment.h"
#include "core/payloads.h"
#include "core/snapshot.h"
#include "sim/world.h"

namespace loadex::core {

namespace {

bool nearlyEqual(const LoadMetrics& a, const LoadMetrics& b, double tol) {
  return std::abs(a.workload - b.workload) <= tol &&
         std::abs(a.memory - b.memory) <= tol;
}

std::string loadStr(const LoadMetrics& m) {
  std::ostringstream os;
  os << "{w=" << m.workload << ", m=" << m.memory << "}";
  return os.str();
}

}  // namespace

ProtocolAuditor::ProtocolAuditor(AuditorConfig config) : config_(config) {}

void ProtocolAuditor::attach(MechanismSet& mechs, sim::World* world) {
  LOADEX_EXPECT(!attached(), "auditor is already attached");
  mechs_ = &mechs;
  world_ = world;
  nprocs_ = mechs.size();
  const auto n = static_cast<std::size_t>(nprocs_);
  pairs_.assign(n * n, {});
  outstanding_reservation_.assign(n, {});
  last_absolute_broadcast_.assign(n, {});
  snap_.assign(n, {});
  last_start_request_.assign(n * n, 0);
  for (Rank r = 0; r < nprocs_; ++r) mechs.at(r).setAuditObserver(this);
}

void ProtocolAuditor::attachLocal(Mechanism& m, int nprocs) {
  LOADEX_EXPECT(!attached(), "auditor is already attached");
  LOADEX_EXPECT(nprocs > 0 && m.self() >= 0 && m.self() < nprocs,
                "attachLocal: rank outside the declared world");
  local_ = &m;
  nprocs_ = nprocs;
  // Cross-rank invariants pair a send at one rank with a delivery at
  // another; this auditor only ever sees its own rank's half.
  config_.check_fifo = false;
  config_.check_conservation = false;
  config_.check_reservations = false;
  const auto n = static_cast<std::size_t>(nprocs_);
  pairs_.assign(n * n, {});
  outstanding_reservation_.assign(n, {});
  last_absolute_broadcast_.assign(n, {});
  snap_.assign(n, {});
  last_start_request_.assign(n * n, 0);
  m.setAuditObserver(this);
}

void ProtocolAuditor::detach() {
  if (local_ != nullptr) {
    local_->setAuditObserver(nullptr);
    local_ = nullptr;
    world_ = nullptr;
    return;
  }
  if (mechs_ == nullptr) return;
  for (Rank r = 0; r < nprocs_; ++r) mechs_->at(r).setAuditObserver(nullptr);
  mechs_ = nullptr;
  world_ = nullptr;
}

void ProtocolAuditor::record(std::string violation) {
  violations_.push_back(std::move(violation));
  if (config_.fail_fast)
    LOADEX_EXPECT(false, "protocol audit: " + violations_.back());
}

void ProtocolAuditor::expectClean() const {
  if (violations_.empty()) return;
  std::ostringstream os;
  os << violations_.size() << " protocol invariant violation(s):";
  for (const auto& v : violations_) os << "\n  - " << v;
  LOADEX_EXPECT(false, os.str());
}

// ---- online hooks ---------------------------------------------------------

void ProtocolAuditor::onLocalLoad(const Mechanism& m, const LoadMetrics& delta,
                                  bool is_slave_delegated) {
  ++events_observed_;
  if (!config_.check_reservations) return;
  if (!attached() || m.kind() == MechanismKind::kNaive) return;
  // A positive delegated variation is the real work a master reserved
  // earlier (Master_To_All / master_to_slave): match it against the
  // outstanding reservation on this rank.
  if (!is_slave_delegated || !delta.allNonNegative() || delta.isZero()) return;
  auto& out = outstanding_reservation_[static_cast<std::size_t>(m.self())];
  out -= delta;
  if (out.workload < -config_.tolerance || out.memory < -config_.tolerance) {
    std::ostringstream os;
    os << "rank " << m.self() << " received delegated work " << loadStr(delta)
       << " exceeding its outstanding reservation by " << loadStr({-out.workload, -out.memory});
    record(os.str());
    out = {};  // re-anchor so one mismatch is reported once
  }
}

void ProtocolAuditor::onViewRequest(const Mechanism& /*m*/) {
  ++events_observed_;
}

void ProtocolAuditor::onSelection(const Mechanism& m,
                                  const SlaveSelection& sel) {
  ++events_observed_;
  if (!config_.check_reservations) return;
  if (!attached() || m.kind() == MechanismKind::kNaive) return;
  for (const auto& a : sel) {
    if (a.slave == m.self()) continue;  // local share needs no message
    outstanding_reservation_[static_cast<std::size_t>(a.slave)] += a.share;
  }
}

void ProtocolAuditor::onStateSend(const Mechanism& m, Rank dst, StateTag tag,
                                  Bytes /*size*/, const sim::Payload* payload) {
  ++events_observed_;
  if (!attached()) return;
  const Rank src = m.self();

  if (config_.check_liveness && !config_.allow_crashes && world_ != nullptr &&
      world_->process(dst).crashed()) {
    std::ostringstream os;
    os << "rank " << src << " sent " << stateTagName(tag)
       << " to crashed rank " << dst;
    record(os.str());
  }

  if (config_.check_fifo) {
    auto& ps = pair(src, dst);
    ps.in_flight.push_back({payload, tag, ps.sends});
    ++ps.sends;
  }

  switch (tag) {
    case StateTag::kUpdateAbsolute: {
      const auto& up = payloadCast<UpdateAbsolutePayload>(*payload);
      auto& nb = last_absolute_broadcast_[static_cast<std::size_t>(src)];
      nb.load = up.load;
      nb.seen = true;
      break;
    }
    case StateTag::kNoMoreMaster:
      no_more_master_seen_ = true;
      break;
    case StateTag::kStartSnp: {
      if (!config_.check_snapshot) break;
      const auto& sp = payloadCast<StartSnpPayload>(*payload);
      auto& st = snap_[static_cast<std::size_t>(src)];
      // A broadcast is one send per destination: repeats of the current id
      // while the snapshot is open are the same fan-out, not a new request.
      const bool same_broadcast = st.open && sp.request == st.last_started;
      if (!same_broadcast && sp.request <= st.last_started &&
          st.last_started != 0) {
        std::ostringstream os;
        os << "rank " << src << " broadcast start_snp with request id "
           << sp.request << " not greater than the previous id "
           << st.last_started;
        record(os.str());
      }
      st.last_started = std::max(st.last_started, sp.request);
      st.open = true;
      break;
    }
    case StateTag::kEndSnp:
      snap_[static_cast<std::size_t>(src)].open = false;
      break;
    case StateTag::kSnp: {
      if (!config_.check_snapshot) break;
      const auto& sp = payloadCast<SnpPayload>(*payload);
      // Channel-recording consistency: the answer must carry the
      // responder's load at recording time...
      if (!nearlyEqual(sp.state, m.localLoad(), config_.tolerance)) {
        std::ostringstream os;
        os << "rank " << src << " answered snapshot of rank " << dst
           << " with " << loadStr(sp.state) << " but its load is "
           << loadStr(m.localLoad());
        record(os.str());
      }
      // ...and name the initiator's request this responder last received
      // (an answer to a stale or never-delivered request would let a
      // pre-decision state leak past the snapshot sequentialisation).
      const RequestId seen =
          last_start_request_[static_cast<std::size_t>(src) *
                                  static_cast<std::size_t>(nprocs_) +
                              static_cast<std::size_t>(dst)];
      if (sp.request != seen) {
        std::ostringstream os;
        os << "rank " << src << " answered request " << sp.request
           << " of rank " << dst << " but the last start_snp it received "
           << "from that rank named request " << seen;
        record(os.str());
      }
      break;
    }
    default:
      break;
  }
}

void ProtocolAuditor::onStateDeliver(const Mechanism& m, Rank src,
                                     StateTag tag,
                                     const sim::Payload* payload) {
  ++events_observed_;
  if (!attached()) return;
  const Rank dst = m.self();

  if (config_.check_fifo) {
    auto& ps = pair(src, dst);
    auto& q = ps.in_flight;
    if (!q.empty() && q.front().payload == payload) {
      q.pop_front();
    } else {
      const auto it =
          std::find_if(q.begin(), q.end(), [payload](const InFlight& f) {
            return f.payload == payload;
          });
      if (it == q.end()) {
        if (!config_.allow_message_loss) {
          std::ostringstream os;
          os << "rank " << dst << " received a " << stateTagName(tag)
             << " from rank " << src
             << " that was never sent or was already delivered (duplicate)";
          record(os.str());
        }
      } else if (!config_.allow_message_loss) {
        std::ostringstream os;
        os << stateTagName(tag) << " from rank " << src << " to rank " << dst
           << " overtook " << (it - q.begin())
           << " earlier message(s) on the same channel (FIFO violation)";
        record(os.str());
        q.erase(it);
      } else {
        // Losses are legal: everything sent before this message is gone.
        q.erase(q.begin(), it + 1);
      }
    }
  }

  if (config_.check_snapshot && tag == StateTag::kStartSnp) {
    const auto& sp = payloadCast<StartSnpPayload>(*payload);
    last_start_request_[static_cast<std::size_t>(dst) *
                            static_cast<std::size_t>(nprocs_) +
                        static_cast<std::size_t>(src)] = sp.request;
  }
}

// ---- end-of-run checks ----------------------------------------------------

void ProtocolAuditor::finish() {
  LOADEX_EXPECT(attached(), "auditor finish() before attach()");
  if (config_.check_fifo) checkFifoAtFinish();
  if (config_.check_conservation) checkConservationAtFinish();
  if (config_.check_reservations) checkReservationsAtFinish();
  if (config_.check_snapshot) checkSnapshotAtFinish();
}

void ProtocolAuditor::checkFifoAtFinish() {
  if (config_.allow_message_loss || config_.allow_crashes) return;
  for (Rank s = 0; s < nprocs_; ++s) {
    for (Rank d = 0; d < nprocs_; ++d) {
      const auto& ps = pair(s, d);
      if (ps.in_flight.empty()) continue;
      std::ostringstream os;
      os << ps.in_flight.size() << " state message(s) from rank " << s
         << " to rank " << d << " were never delivered (first: "
         << stateTagName(ps.in_flight.front().tag) << ")";
      record(os.str());
    }
  }
}

void ProtocolAuditor::checkConservationAtFinish() {
  if (config_.allow_message_loss || config_.allow_crashes) return;
  const MechanismKind kind = mechs_->kind();
  if (kind == MechanismKind::kIncrement) {
    // Algorithm 3 conservation: everything rank r ever put on the wire
    // (threshold-crossing deltas) plus the reservations masters broadcast
    // for r is exactly r's load minus its sub-threshold pending delta. At
    // quiescence every observer has applied all of it, so the views agree.
    for (Rank r = 0; r < nprocs_; ++r) {
      const auto& owner =
          dynamic_cast<const IncrementMechanism&>(mechs_->at(r));
      const LoadMetrics expected = owner.localLoad() - owner.pendingDelta();
      for (Rank o = 0; o < nprocs_; ++o) {
        if (o == r) continue;
        const LoadMetrics seen = mechs_->at(o).view().load(r);
        if (nearlyEqual(seen, expected, config_.tolerance)) continue;
        std::ostringstream os;
        os << "increment conservation broken: rank " << o << " sees rank "
           << r << " at " << loadStr(seen) << " but its actual load "
           << loadStr(owner.localLoad()) << " minus pending "
           << loadStr(owner.pendingDelta()) << " is " << loadStr(expected);
        record(os.str());
      }
    }
  } else if (kind == MechanismKind::kNaive && !no_more_master_seen_) {
    // Algorithm 2: a view entry is exactly the last absolute value its
    // owner broadcast (zero if it never crossed the threshold).
    for (Rank r = 0; r < nprocs_; ++r) {
      const auto& nb = last_absolute_broadcast_[static_cast<std::size_t>(r)];
      const LoadMetrics expected = nb.seen ? nb.load : LoadMetrics{};
      for (Rank o = 0; o < nprocs_; ++o) {
        if (o == r) continue;
        const LoadMetrics seen = mechs_->at(o).view().load(r);
        if (nearlyEqual(seen, expected, config_.tolerance)) continue;
        std::ostringstream os;
        os << "naive coherence broken: rank " << o << " sees rank " << r
           << " at " << loadStr(seen) << " but the last absolute broadcast "
           << "was " << loadStr(expected);
        record(os.str());
      }
    }
  }
}

void ProtocolAuditor::checkReservationsAtFinish() {
  if (mechs_->kind() == MechanismKind::kNaive) return;
  if (config_.allow_message_loss || config_.allow_crashes) return;
  for (Rank r = 0; r < nprocs_; ++r) {
    const auto& out = outstanding_reservation_[static_cast<std::size_t>(r)];
    if (std::abs(out.workload) <= config_.tolerance &&
        std::abs(out.memory) <= config_.tolerance)
      continue;
    std::ostringstream os;
    os << "reservation accounting broken: " << loadStr(out)
       << " reserved on rank " << r
       << " was never matched by delegated work nor released";
    record(os.str());
  }
}

bool ProtocolAuditor::crashedAtFinish(Rank r) const {
  if (world_ != nullptr && world_->process(r).crashed()) return true;
  return static_cast<std::size_t>(r) < ext_crashed_.size() &&
         ext_crashed_[static_cast<std::size_t>(r)];
}

void ProtocolAuditor::noteCrashed(Rank r) {
  LOADEX_EXPECT(r >= 0, "noteCrashed: negative rank");
  if (static_cast<std::size_t>(r) >= ext_crashed_.size())
    ext_crashed_.resize(static_cast<std::size_t>(r) + 1, false);
  ext_crashed_[static_cast<std::size_t>(r)] = true;
}

void ProtocolAuditor::noteRestarted(Rank r) {
  if (static_cast<std::size_t>(r) < ext_crashed_.size())
    ext_crashed_[static_cast<std::size_t>(r)] = false;
}

void ProtocolAuditor::checkSnapshotAtFinish() {
  if (local_ != nullptr) {
    // Rank-local mode: the only mechanism whose quiescent state this
    // auditor can inspect is its own.
    if (local_->kind() == MechanismKind::kSnapshot)
      checkSnapshotRankAtFinish(*local_);
    return;
  }
  if (mechs_->kind() != MechanismKind::kSnapshot) return;
  for (Rank r = 0; r < nprocs_; ++r) checkSnapshotRankAtFinish(mechs_->at(r));
}

void ProtocolAuditor::checkSnapshotRankAtFinish(const Mechanism& m) {
  const auto& sm = dynamic_cast<const SnapshotMechanism&>(m);
  const Rank r = m.self();
  const bool crashed = crashedAtFinish(r);
  if (config_.allow_crashes && crashed) return;
  if (snap_[static_cast<std::size_t>(r)].open && !crashed) {
    std::ostringstream os;
    os << "snapshot termination broken: rank " << r
       << " broadcast start_snp (request "
       << snap_[static_cast<std::size_t>(r)].last_started
       << ") but never broadcast the matching end_snp";
    record(os.str());
  }
  if (sm.snapshotPending() || sm.concurrentSnapshots() != 0 ||
      sm.blocksComputation()) {
    std::ostringstream os;
    os << "snapshot termination broken: rank " << r
       << " ended the run frozen (pending=" << sm.snapshotPending()
       << ", open foreign snapshots=" << sm.concurrentSnapshots() << ")";
    record(os.str());
  }
}

}  // namespace loadex::core
