// Exact, demand-driven mechanism (§3): distributed snapshot in the style of
// Chandy–Lamport, coupled with a distributed leader election.
//
// Protocol summary (paper's pseudocode, translated to event-driven form):
//  * A master that needs a view broadcasts start_snp with a request id and
//    waits for a snp answer from every other process. While any snapshot is
//    live a process does not compute (blocksComputation() == true).
//  * Concurrent snapshots are sequentialised: every process tracks the set
//    of open snapshots (snp[]) and a leader (elect(): min rank by default).
//    A process answers only the current leader; answers owed to non-leaders
//    are delayed (delayed_message[]) and flushed when an end_snp makes the
//    owner the new leader.
//  * A preempted initiator re-arms: it bumps its request id and
//    re-broadcasts start_snp, so answers gathered before the preempting
//    decision are ignored (stale request id).
//  * After its decision, the initiator informs the chosen slaves
//    (master_to_slave, applied to their local load on reception) and
//    broadcasts end_snp; it stays frozen until all other open snapshots
//    complete.
//
// The paper assumes a reliable network; a single lost snp answer leaves the
// initiator frozen forever, and a lost end_snp freezes every responder.
// With `ReliabilityConfig::snapshot_timeout_s > 0` both are bounded: the
// initiator re-arms (fresh request id + re-broadcast, so retransmitted
// start_snps double as retries) up to `max_snapshot_retries` times, then
// completes with a partial quorum — unanswered ranks are declared dead and
// keep their (stale) maintained-view entries. Responders arm a guard timer
// per foreign snapshot that force-closes it if no end_snp ever arrives.
#pragma once

#include "core/mechanism.h"

namespace loadex::core {

class SnapshotMechanism final : public Mechanism {
 public:
  SnapshotMechanism(Transport& transport, MechanismConfig config);

  MechanismKind kind() const override { return MechanismKind::kSnapshot; }

  /// The snapshot mechanism exchanges no periodic load traffic, so
  /// No_more_master is pointless; this override makes it a no-op.
  void noMoreMaster() override {}

  /// Frozen while any snapshot (mine or another's) is live.
  bool blocksComputation() const override { return snapshot_ || during_snp_; }

  /// Crash recovery: the crash erased every armed timer and in-flight
  /// message, so any snapshot this process led or answered is gone.
  /// Reset to the §3 initialisation block (request ids stay monotonic so
  /// stale answers cannot match a post-restart request); peers force-close
  /// our orphaned snapshot through their foreign guard.
  void onRestart() override;

  // ---- protocol introspection (tests) ---------------------------------
  Rank currentLeader() const { return leader_; }
  int concurrentSnapshots() const { return nb_snp_; }
  bool snapshotPending() const { return during_snp_; }
  RequestId myRequestId() const { return my_request_; }

 protected:
  void doAddLocalLoad(const LoadMetrics& delta,
                      bool is_slave_delegated) override;

  /// Initiates a snapshot. The callback fires once all answers arrived;
  /// commitSelection() must be called synchronously inside the callback
  /// (this mirrors Algorithm 4: snapshot → selection → finalize).
  void doRequestView(ViewCallback cb) override;
  void doCommitSelection(const SlaveSelection& selection) override;
  void handleState(Rank src, StateTag tag, const sim::Payload& p) override;

 private:
  bool hardened() const { return config_.reliability.snapshotHardened(); }
  void arm();
  void armAnswerTimeout();
  void onAnswerTimeout(RequestId req);
  void armForeignGuard(Rank src);
  /// How long a responder waits for end_snp before presuming the initiator
  /// dead: long enough to cover every initiator-side retry round.
  SimTime foreignGuardDelay() const {
    return config_.reliability.snapshot_timeout_s *
           (config_.reliability.max_snapshot_retries + 2);
  }
  void sendSnpAnswer(Rank dst);
  void maybeComplete();
  void finalize();
  void onStartSnp(Rank src, const StartSnpPayload& p);
  void onSnp(Rank src, const SnpPayload& p);
  void onEndSnp(Rank src);
  void updateBlockAccounting();
  /// Close the currently-open stall interval (accounting + trace span +
  /// metrics). updateBlockAccounting() reopens one if still frozen.
  void endStallInterval();
  Rank electOver(Rank candidate, Rank current) const {
    return elect(config_.election, candidate, current);
  }

  // ---- paper state (Initialization block of §3) ------------------------
  Rank leader_ = kNoRank;            ///< current leader (undefined = kNoRank)
  int nb_snp_ = 0;                   ///< concurrent snapshots except mine
  bool during_snp_ = false;          ///< my own snapshot is in flight
  bool snapshot_ = false;            ///< active snapshot I do not lead
  std::vector<RequestId> request_;   ///< last request id seen per rank
  std::vector<bool> snp_;            ///< per-rank "has an open snapshot"
  std::vector<bool> delayed_;        ///< I owe this rank an answer

  // ---- initiator bookkeeping -------------------------------------------
  RequestId my_request_ = 0;
  int nb_msgs_ = 0;
  std::vector<bool> answered_;
  std::vector<LoadMetrics> gathered_;
  ViewCallback view_cb_;
  bool selection_open_ = false;
  SimTime initiated_at_ = 0.0;
  int timeout_retries_ = 0;  ///< re-arm rounds spent by the current request

  // ---- blocked-time accounting ------------------------------------------
  bool was_blocked_ = false;
  SimTime blocked_since_ = 0.0;
};

}  // namespace loadex::core
