// State-channel message payloads used by the three mechanisms.
//
// Tags and payloads follow the paper's nomenclature:
//   Update (absolute)     — naive mechanism, Algorithm 2
//   Update (increment)    — increment mechanism, Algorithm 3
//   Master_To_All         — increment mechanism reservation broadcast
//   No_more_master        — §2.3 message-count optimisation
//   start_snp / snp / end_snp — §3 snapshot protocol
//   master_to_slave       — §3 reservation sent to selected slaves
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/load.h"
#include "sim/message.h"

namespace loadex::core {

enum class StateTag : int {
  kUpdateAbsolute = 1,
  kUpdateDelta = 2,
  kMasterToAll = 3,
  kNoMoreMaster = 4,
  kStartSnp = 5,
  kSnp = 6,
  kEndSnp = 7,
  kMasterToSlave = 8,
  // Hardened-protocol traffic (reliability extension, not in the paper):
  kNack = 9,       ///< receiver-detected gap: please resend [from, to]
  kHeartbeat = 10, ///< sender's last sequence number, for tail-loss detection
};

/// Request identifier for the snapshot protocol.
using RequestId = std::uint64_t;

/// Per-(sender, receiver) sequence number of the hardened increment
/// stream; 0 means "unsequenced" (hardening disabled).
using SeqNo = std::uint64_t;

struct UpdateAbsolutePayload final : sim::Payload {
  LoadMetrics load;
  static Bytes sizeBytes() { return 24; }
};

struct UpdateDeltaPayload final : sim::Payload {
  LoadMetrics delta;
  SeqNo seq = 0;  ///< set (>= 1) only by the hardened increment protocol
  static Bytes sizeBytes() { return 24; }
};

struct MasterToAllPayload final : sim::Payload {
  std::vector<SlaveAssignment> assignments;
  SeqNo seq = 0;  ///< set (>= 1) only by the hardened increment protocol
  static Bytes sizeBytes(std::size_t nslaves) {
    return 16 + 24 * static_cast<Bytes>(nslaves);
  }
};

/// Gap report: the receiver is missing sequence numbers [from, to] of the
/// sender's load-bearing stream and asks for a retransmission.
struct NackPayload final : sim::Payload {
  SeqNo from = 0;
  SeqNo to = 0;
  static Bytes sizeBytes() { return 24; }
};

/// Periodic flush beacon of the hardened increment protocol: carries the
/// last sequence number sent on this (sender, receiver) stream so the
/// receiver can detect that the *tail* of the stream was lost.
struct HeartbeatPayload final : sim::Payload {
  SeqNo last_seq = 0;
  static Bytes sizeBytes() { return 16; }
};

struct NoMoreMasterPayload final : sim::Payload {
  static Bytes sizeBytes() { return 8; }
};

struct StartSnpPayload final : sim::Payload {
  RequestId request = 0;
  static Bytes sizeBytes() { return 16; }
};

struct SnpPayload final : sim::Payload {
  RequestId request = 0;
  LoadMetrics state;
  /// The paper notes snapshot answers are larger: all metrics travel in a
  /// single message.
  static Bytes sizeBytes() { return 48; }
};

struct EndSnpPayload final : sim::Payload {
  static Bytes sizeBytes() { return 8; }
};

struct MasterToSlavePayload final : sim::Payload {
  LoadMetrics share;
  static Bytes sizeBytes() { return 24; }
};

/// Typed payload access on the hot dispatch paths. State tags map 1:1 to
/// concrete payload types by construction (every send site pairs them),
/// so the RTTI lookup of dynamic_cast is redundant there — at large N it
/// is paid once per rank per broadcast. Debug builds keep the checked
/// cast; a tag/type mismatch is a programming error either way.
template <typename T>
inline const T& payloadCast(const sim::Payload& p) {
#ifndef NDEBUG
  return dynamic_cast<const T&>(p);
#else
  return static_cast<const T&>(p);
#endif
}

inline const char* stateTagName(StateTag tag) {
  switch (tag) {
    case StateTag::kUpdateAbsolute: return "update_abs";
    case StateTag::kUpdateDelta: return "update_delta";
    case StateTag::kMasterToAll: return "master_to_all";
    case StateTag::kNoMoreMaster: return "no_more_master";
    case StateTag::kStartSnp: return "start_snp";
    case StateTag::kSnp: return "snp";
    case StateTag::kEndSnp: return "end_snp";
    case StateTag::kMasterToSlave: return "master_to_slave";
    case StateTag::kNack: return "nack";
    case StateTag::kHeartbeat: return "heartbeat";
  }
  return "?";
}

}  // namespace loadex::core
