// State-channel message payloads used by the three mechanisms.
//
// Tags and payloads follow the paper's nomenclature:
//   Update (absolute)     — naive mechanism, Algorithm 2
//   Update (increment)    — increment mechanism, Algorithm 3
//   Master_To_All         — increment mechanism reservation broadcast
//   No_more_master        — §2.3 message-count optimisation
//   start_snp / snp / end_snp — §3 snapshot protocol
//   master_to_slave       — §3 reservation sent to selected slaves
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/load.h"
#include "sim/message.h"

namespace loadex::core {

enum class StateTag : int {
  kUpdateAbsolute = 1,
  kUpdateDelta = 2,
  kMasterToAll = 3,
  kNoMoreMaster = 4,
  kStartSnp = 5,
  kSnp = 6,
  kEndSnp = 7,
  kMasterToSlave = 8,
};

/// Request identifier for the snapshot protocol.
using RequestId = std::uint64_t;

struct UpdateAbsolutePayload final : sim::Payload {
  LoadMetrics load;
  static Bytes sizeBytes() { return 24; }
};

struct UpdateDeltaPayload final : sim::Payload {
  LoadMetrics delta;
  static Bytes sizeBytes() { return 24; }
};

struct MasterToAllPayload final : sim::Payload {
  std::vector<SlaveAssignment> assignments;
  static Bytes sizeBytes(std::size_t nslaves) {
    return 16 + 24 * static_cast<Bytes>(nslaves);
  }
};

struct NoMoreMasterPayload final : sim::Payload {
  static Bytes sizeBytes() { return 8; }
};

struct StartSnpPayload final : sim::Payload {
  RequestId request = 0;
  static Bytes sizeBytes() { return 16; }
};

struct SnpPayload final : sim::Payload {
  RequestId request = 0;
  LoadMetrics state;
  /// The paper notes snapshot answers are larger: all metrics travel in a
  /// single message.
  static Bytes sizeBytes() { return 48; }
};

struct EndSnpPayload final : sim::Payload {
  static Bytes sizeBytes() { return 8; }
};

struct MasterToSlavePayload final : sim::Payload {
  LoadMetrics share;
  static Bytes sizeBytes() { return 24; }
};

inline const char* stateTagName(StateTag tag) {
  switch (tag) {
    case StateTag::kUpdateAbsolute: return "update_abs";
    case StateTag::kUpdateDelta: return "update_delta";
    case StateTag::kMasterToAll: return "master_to_all";
    case StateTag::kNoMoreMaster: return "no_more_master";
    case StateTag::kStartSnp: return "start_snp";
    case StateTag::kSnp: return "snp";
    case StateTag::kEndSnp: return "end_snp";
    case StateTag::kMasterToSlave: return "master_to_slave";
  }
  return "?";
}

}  // namespace loadex::core
