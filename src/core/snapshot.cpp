#include "core/snapshot.h"

#include <algorithm>

#include "common/expect.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace loadex::core {

namespace {

inline int protoTrack(Rank rank) {
  return obs::rankTrack(rank, obs::Lane::kProto);
}

}  // namespace

SnapshotMechanism::SnapshotMechanism(Transport& transport,
                                     MechanismConfig config)
    : Mechanism(transport, config),
      request_(static_cast<std::size_t>(transport.nprocs()), 0),
      snp_(static_cast<std::size_t>(transport.nprocs()), false),
      delayed_(static_cast<std::size_t>(transport.nprocs()), false),
      answered_(static_cast<std::size_t>(transport.nprocs()), false),
      gathered_(static_cast<std::size_t>(transport.nprocs())) {}

void SnapshotMechanism::doAddLocalLoad(const LoadMetrics& delta,
                                     bool is_slave_delegated) {
  // Same guard as Algorithm 3 line (1): the reservation travelled in the
  // master_to_slave message and was applied on reception.
  if (is_slave_delegated && delta.allNonNegative()) return;
  my_load_ += delta;
  view_.set(self(), my_load_);
}

void SnapshotMechanism::doRequestView(ViewCallback cb) {
  LOADEX_EXPECT(!during_snp_ && !view_cb_ && !selection_open_,
                "requestView while a snapshot of mine is already in flight");
  // A process frozen by someone else's snapshot cannot take a dynamic
  // decision (Algorithm 1: it only treats state messages until every open
  // snapshot ends). Initiating from that state would let a weaker
  // initiator complete before a stronger one it already answered, leaking
  // a pre-decision view past the sequentialisation.
  LOADEX_EXPECT(!snapshot_,
                "cannot initiate a snapshot while another one is live");
  ++stats_.view_requests;
  ++stats_.snapshots_initiated;
  view_cb_ = std::move(cb);
  initiated_at_ = transport_.now();
  timeout_retries_ = 0;

  LOADEX_TRACE_SPAN_BEGIN(transport_.now(), protoTrack(self()), "snapshot");

  // "Initiate a snapshot": leader = myself; snp(myself) = true;
  // during_snp = true; then arm the first request.
  leader_ = self();
  snp_[static_cast<std::size_t>(self())] = true;
  during_snp_ = true;
  arm();
  updateBlockAccounting();
  maybeComplete();  // nprocs == 1: the view is just my own load
}

void SnapshotMechanism::onRestart() {
  Mechanism::onRestart();
  // Back to the Initialization block of §3. my_request_ is deliberately
  // NOT reset: ids stay monotonic across the restart, so a pre-crash
  // answer straggling in can never satisfy a post-restart request.
  leader_ = kNoRank;
  nb_snp_ = 0;
  during_snp_ = false;
  snapshot_ = false;
  std::fill(snp_.begin(), snp_.end(), false);
  std::fill(delayed_.begin(), delayed_.end(), false);
  nb_msgs_ = 0;
  std::fill(answered_.begin(), answered_.end(), false);
  view_cb_ = nullptr;
  selection_open_ = false;
  timeout_retries_ = 0;
  updateBlockAccounting();  // closes a stall interval left open pre-crash
}

void SnapshotMechanism::arm() {
  ++my_request_;
  request_[static_cast<std::size_t>(self())] = my_request_;
  nb_msgs_ = 0;
  std::fill(answered_.begin(), answered_.end(), false);
  auto payload = std::make_shared<StartSnpPayload>();
  payload->request = my_request_;
  // The snapshot must hear from *everyone*; No_more_master does not apply.
  broadcastState(StateTag::kStartSnp, StartSnpPayload::sizeBytes(),
                 std::move(payload), /*respect_no_more_master=*/false);
  if (hardened()) armAnswerTimeout();
}

void SnapshotMechanism::armAnswerTimeout() {
  // Captured request id instead of a cancelable timer: a timer armed for a
  // request that completed or was superseded finds req != my_request_ (or
  // no snapshot in flight) and dies silently.
  const RequestId req = my_request_;
  transport_.schedule(config_.reliability.snapshot_timeout_s,
                      [this, req] { onAnswerTimeout(req); });
}

void SnapshotMechanism::onAnswerTimeout(RequestId req) {
  if (!during_snp_ || !view_cb_ || req != my_request_) return;  // stale
  ++stats_.snapshot_timeouts;
  LOADEX_TRACE_INSTANT(transport_.now(), protoTrack(self()), "snp timeout");
  if (timeout_retries_ < config_.reliability.max_snapshot_retries) {
    ++timeout_retries_;
    // Fresh request id + re-broadcast: the retransmitted start_snp doubles
    // as the retry, and answers to the timed-out request are ignored.
    arm();
    return;
  }
  // Retry budget exhausted: whoever never answered is presumed crashed.
  // Complete with the partial quorum; missing ranks keep their (stale)
  // maintained-view entries so the decision still has an estimate.
  for (Rank r = 0; r < nprocs(); ++r) {
    if (r == self() || answered_[static_cast<std::size_t>(r)]) continue;
    declareDead(r);
  }
  ++stats_.partial_snapshots;
  maybeComplete();
}

void SnapshotMechanism::armForeignGuard(Rank src) {
  const RequestId req = request_[static_cast<std::size_t>(src)];
  transport_.schedule(foreignGuardDelay(), [this, src, req] {
    if (!snp_[static_cast<std::size_t>(src)]) return;  // end_snp arrived
    if (request_[static_cast<std::size_t>(src)] != req) {
      armForeignGuard(src);  // the initiator re-armed: watch the new round
      return;
    }
    // No end_snp and no retry for a whole guard period: the initiator is
    // presumed dead. Force-close its snapshot so this process unfreezes.
    ++stats_.snapshot_aborts;
    declareDead(src);
    delayed_[static_cast<std::size_t>(src)] = false;
    onEndSnp(src);
  });
}

void SnapshotMechanism::sendSnpAnswer(Rank dst) {
  auto payload = std::make_shared<SnpPayload>();
  payload->request = request_[static_cast<std::size_t>(dst)];
  payload->state = my_load_;
  sendState(dst, StateTag::kSnp, SnpPayload::sizeBytes(), std::move(payload));
}

void SnapshotMechanism::maybeComplete() {
  if (!during_snp_ || !view_cb_) return;
  for (Rank r = 0; r < nprocs(); ++r) {
    if (r == self() || answered_[static_cast<std::size_t>(r)]) continue;
    if (hardened() && view_.dead(r)) continue;  // partial quorum
    return;  // still waiting for this rank
  }

  view_.set(self(), my_load_);
  for (Rank r = 0; r < nprocs(); ++r)
    if (r != self() && answered_[static_cast<std::size_t>(r)])
      view_.set(r, gathered_[static_cast<std::size_t>(r)]);
  stats_.snapshot_duration.add(transport_.now() - initiated_at_);
  LOADEX_TRACE_INSTANT(transport_.now(), protoTrack(self()), "view complete");
  LOADEX_METRIC(histogram("snapshot/duration_s",
                          {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0})
                    .add(transport_.now() - initiated_at_));

  // Algorithm 4: decision happens now, synchronously; commitSelection()
  // (called inside the callback) finalizes the snapshot.
  selection_open_ = true;
  ViewCallback cb = std::move(view_cb_);
  view_cb_ = nullptr;
  cb(view_);
  LOADEX_EXPECT(!selection_open_,
                "commitSelection must be called inside the view callback");
}

void SnapshotMechanism::doCommitSelection(const SlaveSelection& selection) {
  LOADEX_EXPECT(selection_open_,
                "commitSelection without a completed snapshot");
  ++stats_.selections;
  for (const auto& a : selection) {
    LOADEX_EXPECT(a.slave >= 0 && a.slave < nprocs(),
                  "selection names an unknown slave");
    if (a.slave == self()) {
      my_load_ += a.share;
      view_.set(self(), my_load_);
      continue;
    }
    auto payload = std::make_shared<MasterToSlavePayload>();
    payload->share = a.share;
    sendState(a.slave, StateTag::kMasterToSlave,
              MasterToSlavePayload::sizeBytes(), std::move(payload));
  }
  selection_open_ = false;
  finalize();
}

void SnapshotMechanism::finalize() {
  // "Finalize the snapshot": broadcast end_snp, then — if other snapshots
  // are open — answer the new leader if an answer was delayed, and stay in
  // snapshot mode until every open snapshot completed.
  broadcastState(StateTag::kEndSnp, EndSnpPayload::sizeBytes(),
                 std::make_shared<EndSnpPayload>(),
                 /*respect_no_more_master=*/false);
  // Split an open stall interval here: the trace "stalled" and "snapshot"
  // spans live on the same track, and B/E pairs must nest — a stall that
  // outlives my snapshot (foreign ones still open) reopens just below.
  // The accounted total is unchanged by the split.
  if (was_blocked_) endStallInterval();
  LOADEX_TRACE_SPAN_END(transport_.now(), protoTrack(self()));
  snp_[static_cast<std::size_t>(self())] = false;
  during_snp_ = false;
  leader_ = kNoRank;
  if (nb_snp_ != 0) {
    snapshot_ = true;
    for (Rank r = 0; r < nprocs(); ++r)
      if (snp_[static_cast<std::size_t>(r)]) leader_ = electOver(r, leader_);
    if (leader_ != kNoRank && delayed_[static_cast<std::size_t>(leader_)]) {
      sendSnpAnswer(leader_);
      delayed_[static_cast<std::size_t>(leader_)] = false;
    }
  }
  updateBlockAccounting();
}

void SnapshotMechanism::handleState(Rank src, StateTag tag,
                                    const sim::Payload& p) {
  switch (tag) {
    case StateTag::kStartSnp:
      onStartSnp(src, payloadCast<StartSnpPayload>(p));
      return;
    case StateTag::kSnp:
      onSnp(src, payloadCast<SnpPayload>(p));
      return;
    case StateTag::kEndSnp:
      onEndSnp(src);
      return;
    case StateTag::kMasterToSlave: {
      const auto& mts = payloadCast<MasterToSlavePayload>(p);
      my_load_ += mts.share;
      view_.set(self(), my_load_);
      return;
    }
    case StateTag::kNoMoreMaster:
      markNoMoreMaster(src);  // tolerated; carries no load information
      return;
    default:
      LOADEX_EXPECT(false, std::string("snapshot mechanism received ") +
                               stateTagName(tag));
  }
}

void SnapshotMechanism::onStartSnp(Rank src, const StartSnpPayload& p) {
  leader_ = electOver(src, leader_);
  request_[static_cast<std::size_t>(src)] = p.request;
  if (!snp_[static_cast<std::size_t>(src)]) {
    ++nb_snp_;
    snp_[static_cast<std::size_t>(src)] = true;
    if (hardened()) armForeignGuard(src);
  }

  if (leader_ == self()) {
    // I lead the current set of snapshots: the sender waits for my end_snp
    // before getting an answer.
    delayed_[static_cast<std::size_t>(src)] = true;
    LOADEX_TRACE_INSTANT(transport_.now(), protoTrack(self()),
                         "delay answer P" + std::to_string(src));
    updateBlockAccounting();
    return;
  }

  if (!snapshot_) {
    snapshot_ = true;
    leader_ = src;
    sendSnpAnswer(src);
  } else if (leader_ != src || delayed_[static_cast<std::size_t>(src)]) {
    // Either the sender is not the leader, or an answer to it was already
    // delayed: delay (again) to keep the sequentialisation consistent.
    delayed_[static_cast<std::size_t>(src)] = true;
    LOADEX_TRACE_INSTANT(transport_.now(), protoTrack(self()),
                         "delay answer P" + std::to_string(src));
  } else {
    // The sender won the election: answer immediately (paper line 20).
    // Note: on networks that reorder messages *across* channel pairs this
    // answer can predate another snapshot's decision whose end_snp has
    // not reached us yet — a one-decision staleness window the paper's
    // pseudocode shares; delaying here instead deadlocks three-way
    // initiator races. FIFO transports (MPI, and this simulator with
    // jitter_s == 0) do not exhibit the window.
    sendSnpAnswer(src);
  }

  // Preempted initiator, paper variant: the initiate-loop breaks out
  // (during_snp was reset, which only happens while nb_snp == 1) and
  // re-arms with a fresh request id so that answers predating the
  // preempting decision are ignored. The hardened variant re-arms in
  // onEndSnp instead — at the moment the preempting *decision* actually
  // lands — which both closes the pseudocode's stale-answer window with
  // 3+ simultaneous snapshots and avoids re-arm broadcast cascades
  // between pending initiators.
  if (!config_.rearm_on_every_preemption && during_snp_ && view_cb_) {
    const bool src_preempts_me = electOver(src, self()) == src;
    if (src_preempts_me && nb_snp_ == 1) {
      ++stats_.snapshot_rearms;
      LOADEX_TRACE_INSTANT(transport_.now(), protoTrack(self()), "rearm");
      arm();
    }
  }
  updateBlockAccounting();
}

void SnapshotMechanism::onSnp(Rank src, const SnpPayload& p) {
  // Answers for a stale request id carry no validity guarantee: ignore.
  if (!during_snp_ || !view_cb_ || p.request != my_request_) return;
  if (answered_[static_cast<std::size_t>(src)]) return;
  answered_[static_cast<std::size_t>(src)] = true;
  gathered_[static_cast<std::size_t>(src)] = p.state;
  ++nb_msgs_;
  maybeComplete();
}

void SnapshotMechanism::onEndSnp(Rank src) {
  leader_ = kNoRank;
  if (snp_[static_cast<std::size_t>(src)]) {
    --nb_snp_;
    snp_[static_cast<std::size_t>(src)] = false;
  }
  // Hardened re-arm: another initiator's snapshot just completed, so its
  // slave-selection may have changed loads that answers gathered for my
  // current request reported. Discard them via a fresh request id. (This
  // is end-driven, hence bounded by the number of decisions — no re-arm
  // broadcast cascades.)
  if (config_.rearm_on_every_preemption && during_snp_ && view_cb_) {
    ++stats_.snapshot_rearms;
    LOADEX_TRACE_INSTANT(transport_.now(), protoTrack(self()), "rearm");
    arm();
  }
  if (nb_snp_ == 0) {
    snapshot_ = false;
    // If my own (re-armed) snapshot is the only one left open, I lead it:
    // later start_snp senders must be delayed, not answered, until my
    // end_snp. (The paper's pseudocode leaves leader undefined here.)
    if (snp_[static_cast<std::size_t>(self())]) leader_ = self();
  } else {
    for (Rank r = 0; r < nprocs(); ++r)
      if (snp_[static_cast<std::size_t>(r)]) leader_ = electOver(r, leader_);
    if (leader_ != self()) {
      if (leader_ != kNoRank && delayed_[static_cast<std::size_t>(leader_)]) {
        sendSnpAnswer(leader_);
        delayed_[static_cast<std::size_t>(leader_)] = false;
      }
    }
    // If I am the new leader, the others now answer me: keep waiting.
  }
  updateBlockAccounting();
}

void SnapshotMechanism::updateBlockAccounting() {
  const bool now_blocked = blocksComputation();
  if (now_blocked && !was_blocked_) {
    blocked_since_ = transport_.now();
    was_blocked_ = true;
    LOADEX_TRACE_SPAN_BEGIN(transport_.now(), protoTrack(self()), "stalled");
  } else if (!now_blocked && was_blocked_) {
    endStallInterval();
  }
}

void SnapshotMechanism::endStallInterval() {
  const double dur = transport_.now() - blocked_since_;
  stats_.time_blocked += dur;
  was_blocked_ = false;
  LOADEX_TRACE_SPAN_END(transport_.now(), protoTrack(self()));
  // The §4.5 stall metric, per rank: benches and the runner read these
  // back instead of recomputing the breakdown by hand.
  LOADEX_METRIC(
      accumulator("snapshot/stall/P" + std::to_string(self())).add(dur));
  LOADEX_METRIC(histogram("snapshot/stall_s",
                          {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0})
                    .add(dur));
}

}  // namespace loadex::core
