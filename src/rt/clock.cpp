#include "rt/clock.h"

#include <chrono>
#include <thread>

namespace loadex::rt {

std::uint64_t MonotonicClock::nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

MonotonicClock::MonotonicClock() : origin_ns_(nowNs()) {}

SimTime MonotonicClock::now() const {
  return static_cast<double>(nowNs() - origin_ns_) * 1e-9;
}

void MonotonicClock::sleepFor(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace loadex::rt
