// rt::WorkloadDriver — replays harness::Script plans on a running RtWorld.
//
// The driver thread walks the script in time order (optionally pacing the
// gaps by `time_scale` real seconds per script second; 0 floods the world
// as fast as backpressure allows) and posts every op onto the owning
// rank: load changes as plain closures, selections deferred while a live
// snapshot blocks the master, delegated work as a task envelope to the
// chosen slave. Which OS thread runs an op is the executor's business
// (a dedicated rank thread under legacy, any worker holding the rank's
// shard lock under M:N) — the driver only ever names ranks. The scheduling policy is the shared
// harness::leastLoadedSlave, so a sim replay of the same script commits
// the same number of selections and injects the same total load — the
// invariants tests/test_rt_differential.cpp checks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sync.h"
#include "core/binding.h"
#include "harness/script.h"
#include "rt/world.h"

namespace loadex::rt {

struct WorkloadResult {
  bool drained = false;               ///< reached quiescence in time
  std::int64_t selections_committed = 0;
  std::int64_t selections_skipped = 0;  ///< no eligible slave in the view
  core::LoadMetrics total_load;       ///< Σ final localLoad() (if drained)
  double wall_s = 0.0;                ///< replay + drain, world-clock
  std::vector<double> selection_latency_s;  ///< requestView → view cb
};

class WorkloadDriver {
 public:
  WorkloadDriver(RtWorld& world, core::MechanismSet& mechs)
      : world_(world), mechs_(mechs) {}

  /// Replay the script and drain. Call between world.start() and
  /// world.stop(), from a driver (non-node) thread.
  WorkloadResult run(const harness::Script& script, double time_scale = 0.0,
                     double drain_timeout_s = 30.0);

 private:
  void postLoad(const harness::ScriptLoadOp& op);
  void postSelection(const harness::ScriptSelectOp& op);

  RtWorld& world_;
  core::MechanismSet& mechs_;

  /// Tally lock: node owners report selection outcomes in from their
  /// view callbacks — under M:N that is a worker already holding a
  /// kShard lock, which is why kWorkloadTally ranks above kShard.
  /// Nothing nests inside it.
  sync::Mutex mu_{sync::LockRank::kWorkloadTally};
  std::int64_t committed_ LOADEX_GUARDED_BY(mu_) = 0;
  std::int64_t skipped_ LOADEX_GUARDED_BY(mu_) = 0;
  std::vector<double> latencies_ LOADEX_GUARDED_BY(mu_);
};

}  // namespace loadex::rt
