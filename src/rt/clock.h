// The real-threads runtime's one and only window onto host time.
//
// The simulator is deterministic by construction: loadex-lint bans the
// <chrono> clocks everywhere in src/. The rt runtime, by contrast, *is*
// wall-clock driven — mechanisms ask Transport::now() for timestamps and
// arm real timers — so the ban needs a single, auditable escape hatch.
// That hatch is this pair of files: only src/rt/clock.{h,cpp} may name a
// std::chrono clock (the lint rule whitelists exactly these two paths),
// and everything else in src/rt speaks seconds-since-origin doubles,
// which slot directly into the SimTime-typed Transport interface.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace loadex::rt {

/// Monotonic clock reporting seconds since construction. The origin is
/// captured once, so timestamps are small doubles (µs precision holds for
/// days) directly comparable across all threads of one RtWorld.
class MonotonicClock {
 public:
  MonotonicClock();

  /// Seconds elapsed since this clock was constructed. Monotonic,
  /// thread-safe, never goes backwards.
  SimTime now() const;

  /// Block the *calling* thread for about `seconds` (driver pacing and
  /// test backoff only — node threads never sleep through this; they wait
  /// on their mailbox instead).
  static void sleepFor(double seconds);

 private:
  static std::uint64_t nowNs();

  std::uint64_t origin_ns_ = 0;
};

}  // namespace loadex::rt
