// RtWorld: one OS thread per rank, mirroring sim::World's lifecycle.
//
//   RtWorld world(cfg);                         // build nodes + transports
//   core::MechanismSet mechs(world.transports(), kind, mcfg);
//   world.attach(r, &mechs.at(r));              // per rank, before start
//   world.start();                              // spawn node threads
//   world.post(...); world.drain(timeout);      // drive + quiesce
//   world.stop();                               // join; stats now stable
//
// Each node owns a bounded MPSC mailbox (rt/mailbox.h) and a timer wheel
// (rt/timer_wheel.h); its loop alternates firing due timers, flushing
// spill queues and popping envelopes, waking at least every
// max_idle_wait_s. Two rules make the system deadlock-free and drainable:
//
//   no node blocks  — a node thread only ever tryPushes to a peer; when
//     the peer's mailbox is full the envelope goes to a per-destination
//     spill queue on the sender, flushed on every loop turn (per-pair FIFO
//     preserved: once a destination spills, later sends to it spill too).
//     Only external driver threads may use the blocking post().
//   conservation of pending work — a global counter is incremented before
//     any envelope/timer is enqueued and decremented only after its
//     handler completes, so work a handler spawns is counted before its
//     own count drops: pending == 0 is a stable quiescent state, which is
//     exactly what drain() polls for.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.h"
#include "rt/clock.h"
#include "rt/mailbox.h"
#include "rt/timer_wheel.h"
#include "rt/transport.h"
#include "sim/application.h"

namespace loadex::rt {

struct RtConfig {
  int nprocs = 4;
  MailboxConfig mailbox;
  /// Timer wheel shape (per node).
  double timer_slot_s = 1e-4;
  std::size_t timer_slots = 256;
  /// Longest a node loop sleeps with nothing due: bounds spill-flush and
  /// stop latency, and caps the cost of any missed wakeup.
  double max_idle_wait_s = 1e-3;
};

/// Aggregated run counters; exact once stop() has joined the threads.
struct RtRunStats {
  std::int64_t state_posted = 0;     ///< sendState calls (one per dst)
  std::int64_t state_delivered = 0;  ///< onStateMessage invocations
  Bytes state_bytes = 0;             ///< payload bytes posted on kState
  std::int64_t task_posted = 0;      ///< closures posted (driver + nodes)
  std::int64_t task_delivered = 0;
  std::int64_t timers_armed = 0;
  std::int64_t timers_fired = 0;
  std::int64_t spill_enqueues = 0;   ///< sends deferred by a full mailbox
  std::uint64_t mailbox_pushes = 0;
  std::uint64_t mailbox_full_rejections = 0;
  std::uint64_t mailbox_blocking_waits = 0;
};

class RtWorld {
 public:
  explicit RtWorld(RtConfig cfg = {});
  ~RtWorld();  ///< stops (joins) if still running

  RtWorld(const RtWorld&) = delete;
  RtWorld& operator=(const RtWorld&) = delete;

  int nprocs() const { return cfg_.nprocs; }
  SimTime now() const { return clock_.now(); }

  /// Per-rank transports, in rank order — feed to MechanismSet.
  std::vector<core::Transport*> transports();

  /// Bind the state-channel handler of rank r (normally &mechs.at(r)).
  /// Must be called before start().
  void attach(Rank r, sim::StateHandler* handler);

  void start();
  bool running() const { return started_ && !stopped_; }

  /// Run a closure on rank r's thread. Blocking backpressure — driver
  /// threads only, never from a node thread (use postTask there).
  void post(Rank r, std::function<void()> fn);

  /// Like post(), but the closure is deferred (re-armed every `retry_s`)
  /// while the rank's handler blocks computation — a live snapshot freeze.
  /// Mirrors harness::CoreHarness::atWhenFree.
  void postWhenFree(Rank r, std::function<void()> fn, double retry_s = 1e-4);

  /// Node-to-node closure post (application work delegation). Must be
  /// called on `from`'s thread; never blocks (spills when `to` is full).
  void postTask(Rank from, Rank to, std::function<void()> fn);

  /// Wait until the pending-work counter reaches its stable zero, i.e. no
  /// envelope is queued or executing and no timer is armed anywhere.
  /// False on timeout (something still in flight).
  bool drain(double timeout_s);

  /// Post a stop envelope to every node and join the threads. Idempotent.
  void stop();

  /// Snapshot of the run counters (exact after stop()).
  RtRunStats runStats() const;

  /// Current pending-work count (diagnostics; racy while running).
  std::int64_t pendingWork() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class RtTransport;

  struct Node {
    Rank rank = kNoRank;
    Mailbox mailbox;
    TimerWheel wheel;
    std::unique_ptr<RtTransport> transport;
    sim::StateHandler* handler = nullptr;
    std::thread thread;
    /// Per-destination spill queues (sender side), only touched by the
    /// owning thread.
    std::vector<std::deque<Envelope>> spill;
    std::size_t spill_size = 0;
    // Counters written only by the owning thread, read after join.
    std::int64_t delivered_state = 0;
    std::int64_t delivered_task = 0;
    std::int64_t timers_fired = 0;

    Node(const RtConfig& cfg, Rank r)
        : rank(r),
          mailbox(cfg.mailbox),
          wheel(cfg.timer_slot_s, cfg.timer_slots),
          spill(static_cast<std::size_t>(cfg.nprocs)) {}
  };

  Node& node(Rank r);
  const Node& node(Rank r) const;
  Node& callingNode();  ///< hard-fails unless called on a node thread

  /// The node whose loop runs on the current thread (null on driver
  /// threads). Thread-confined by definition: no synchronisation needed.
  static thread_local Node* t_current_node;

  // RtTransport backends.
  void postState(Rank src, Rank dst, core::StateTag tag, Bytes size,
                 std::shared_ptr<const sim::Payload> payload);
  void scheduleOnCallingNode(double delay, std::function<void()> fn);

  /// Enqueue from a node thread: direct tryPush, spill on full.
  void sendFromNode(Node& src, Rank dst, Envelope&& e);
  void flushSpill(Node& n);
  void runWhenFree(Node& n, std::function<void()>&& fn, double retry_s);
  void nodeLoop(Node& n);

  RtConfig cfg_;
  MonotonicClock clock_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;
  bool stopped_ = false;

  /// The conservation counter drain() polls (see file comment).
  std::atomic<std::int64_t> pending_{0};

  // World-level posting counters (any thread).
  std::atomic<std::int64_t> state_posted_{0};
  std::atomic<std::int64_t> state_bytes_{0};
  std::atomic<std::int64_t> task_posted_{0};
  std::atomic<std::int64_t> timers_armed_{0};
  std::atomic<std::int64_t> spill_enqueues_{0};
};

}  // namespace loadex::rt
