// RtWorld: real-thread ranks, mirroring sim::World's lifecycle.
//
//   RtWorld world(cfg);                         // build nodes + transports
//   core::MechanismSet mechs(world.transports(), kind, mcfg);
//   world.attach(r, &mechs.at(r));              // per rank, before start
//   world.start();                              // spawn the executor
//   world.post(...); world.drain(timeout);      // drive + quiesce
//   world.stop();                               // join; stats now stable
//
// Each node owns a bounded MPSC mailbox (rt/mailbox.h) and a timer wheel
// (rt/timer_wheel.h). How nodes get CPU time is the executor's business
// (RtExecutorConfig):
//
//   M:N sharded executor (default) — ranks are partitioned over shards
//     (rank % shards) and a fixed worker pool runs them, so N=1024 ranks
//     fit on 8 cores. A shard's mutex (sync::LockRank::kShard) is the
//     consumer-ownership token for every member rank's mailbox, wheel and
//     spill queues: a worker locks a shard, runs each member (fire due
//     timers, flush spill, drain a mailbox batch via tryPopBatch), and
//     releases. Workers own shards round-robin (shard s is home to worker
//     s % workers) and, with steal enabled, opportunistically try_lock
//     foreign shards so an imbalanced or blocked shard cannot strand its
//     ranks. A worker never holds two shard locks at once.
//   legacy thread-per-rank (executor.legacy_executor) — one OS thread per
//     rank, the PR 5 design, kept as the A/B escape hatch. Node state is
//     thread-confined instead of shard-locked; the loop alternates firing
//     timers, flushing spill and popping envelopes, waking at least every
//     max_idle_wait_s.
//
// Two rules make the system deadlock-free and drainable:
//
//   no node blocks  — a node thread only ever tryPushes to a peer; when
//     the peer's mailbox is full the envelope goes to a per-destination
//     spill queue on the sender, flushed on every loop turn (per-pair FIFO
//     preserved: once a destination spills, later sends to it spill too).
//     Only external driver threads may use the blocking post().
//   conservation of pending work — a global counter is incremented before
//     any envelope/timer is enqueued and decremented only after its
//     handler completes, so work a handler spawns is counted before its
//     own count drops: pending == 0 is a stable quiescent state, which is
//     exactly what drain() polls for.
//
// Fault injection (rt/faults.h) extends both rules to an unreliable
// platform while keeping them true. With cfg.faults enabled:
//
//   message faults — every node-thread send may be dropped (random or
//     blackout), duplicated (the copy rides right behind the original,
//     per-pair FIFO intact) or held back by a latency spike. A held
//     envelope waits in the sender's spill queue with a release time, so
//     it still cannot overtake later sends — spikes delay the whole pair
//     stream, exactly like the simulator's FIFO-preserving spike.
//   rank lifecycle — crashRank seals the victim's mailbox (senders drop,
//     counted), cancels its armed timers and discards its outbound spill;
//     pauseRank parks the rank without consuming anything; restartRank
//     sweeps the sealed backlog and revives it. Under the M:N executor
//     these are shard-local state transitions: the driver takes the
//     victim's shard lock (becoming the unique owner of its wheel and
//     spill), flips the per-rank life atomic and tears down inline — no
//     thread is spawned or joined. The legacy executor joins/spawns the
//     rank's thread instead. Every discarded envelope and cancelled timer
//     settles the pending-work counter, so drain() still reaches a true
//     quiescent zero under any crash schedule.
//
// With the default (inert) plan none of this code runs: no per-send
// branch, no supervisor thread, and RtRunStats is bit-identical to the
// pre-fault-layer runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "common/types.h"
#include "rt/clock.h"
#include "rt/faults.h"
#include "rt/mailbox.h"
#include "rt/timer_wheel.h"
#include "rt/transport.h"
#include "sim/application.h"

namespace loadex::core {
class MechanismSet;
}  // namespace loadex::core

namespace loadex::rt {

class Supervisor;

/// How ranks get CPU time (see the file comment). The defaults run the
/// M:N sharded executor auto-sized to the machine; tests pin workers and
/// shards for reproducible schedules.
struct RtExecutorConfig {
  /// Escape hatch: one OS thread per rank (the PR 5 design), for A/B runs
  /// against the sharded executor. Every other field is ignored then.
  bool legacy_executor = false;
  /// Worker pool size; 0 auto-sizes to min(nprocs, hardware threads).
  int workers = 0;
  /// Shard count; 0 auto-sizes to min(nprocs, 2 * workers). Clamped to
  /// [1, nprocs] and workers is clamped to the shard count (an extra
  /// worker would never find an ownable shard).
  int shards = 0;
  /// Idle workers try_lock foreign shards. Off: shard s is touched only
  /// by worker s % workers, which serialises each shard's schedule.
  bool steal = true;
  /// Max envelopes drained from one mailbox per shard visit; bounds how
  /// long one rank can monopolise its shard's lock.
  int drain_batch = 16;
};

struct RtConfig {
  int nprocs = 4;
  MailboxConfig mailbox;
  RtExecutorConfig executor;
  /// Timer wheel shape (per node).
  double timer_slot_s = 1e-4;
  std::size_t timer_slots = 256;
  /// Longest a node loop / idle worker sleeps with nothing due: bounds
  /// spill-flush and stop latency, and caps the cost of any missed wakeup.
  double max_idle_wait_s = 1e-3;
  /// Fault injection + supervision plan; inert by default.
  FaultPlan faults;
};

/// Aggregated run counters; exact once stop() has joined the threads.
struct RtRunStats {
  std::int64_t state_posted = 0;     ///< sendState calls (one per dst)
  std::int64_t state_delivered = 0;  ///< onStateMessage invocations
  Bytes state_bytes = 0;             ///< payload bytes posted on kState
  std::int64_t task_posted = 0;      ///< closures posted (driver + nodes)
  std::int64_t task_delivered = 0;
  std::int64_t timers_armed = 0;
  std::int64_t timers_fired = 0;
  std::int64_t spill_enqueues = 0;   ///< sends deferred by a full mailbox
  /// Successful shard acquisitions by the M:N pool, split by provenance:
  /// a home visit is a worker entering a shard it owns (s ≡ w mod
  /// workers), a stolen visit is an idle worker's try_lock on someone
  /// else's shard. stolen / (home + stolen) is the steal rate the weak-
  /// scaling bench reports; both stay 0 under the legacy executor.
  std::int64_t shard_visits_home = 0;
  std::int64_t shard_visits_stolen = 0;
  std::uint64_t mailbox_pushes = 0;
  std::uint64_t mailbox_pops = 0;
  std::uint64_t mailbox_full_rejections = 0;
  std::uint64_t mailbox_blocking_waits = 0;

  // ---- fault & lifecycle counters (all zero on a clean run) ------------
  // Conservation under faults: every posted envelope is either delivered
  // or counted in exactly one drop bucket, and injected copies are
  // counted too, so
  //   state_posted + state_duplicated == state_delivered + state_dropped
  //   task_posted  + task_duplicated  == task_delivered  + task_dropped
  //   timers_armed == timers_fired + timers_cancelled
  // hold at stop() under any fault schedule.
  std::int64_t state_dropped = 0;     ///< state envelopes lost to any fault
  std::int64_t task_dropped = 0;      ///< task envelopes lost to any fault
  std::int64_t state_duplicated = 0;  ///< injected copies on the state channel
  std::int64_t task_duplicated = 0;
  std::int64_t fault_drops = 0;       ///< random drops + blackout hits
  std::int64_t latency_spikes = 0;    ///< sends held back by a spike
  std::int64_t dropped_at_sealed_mailbox = 0;  ///< sends to a crashed rank
  std::int64_t crash_discards = 0;    ///< a crashed rank's swept backlog
  std::int64_t timers_cancelled = 0;  ///< wheel entries dropped at crash
  std::int64_t crashes = 0;
  std::int64_t restarts = 0;
  std::int64_t resyncs = 0;           ///< rejoin resync rounds driven
  std::int64_t suspects_flagged = 0;  ///< detector alive -> suspect edges
  std::int64_t deaths_declared = 0;   ///< detector dead declarations
  std::int64_t revives = 0;           ///< detector suspect/dead -> alive edges
};

class RtWorld {
 public:
  explicit RtWorld(RtConfig cfg = {});
  ~RtWorld();  ///< stops (joins) if still running

  RtWorld(const RtWorld&) = delete;
  RtWorld& operator=(const RtWorld&) = delete;

  int nprocs() const { return cfg_.nprocs; }
  SimTime now() const { return clock_.now(); }
  const FaultPlan& faultPlan() const { return cfg_.faults; }

  /// Resolved executor shape (auto-sizing applied); 0 before start() or
  /// under the legacy executor, which has no pool.
  int workerCount() const { return n_workers_; }
  int shardCount() const { return n_shards_; }
  bool usingLegacyExecutor() const { return cfg_.executor.legacy_executor; }

  /// Per-rank transports, in rank order — feed to MechanismSet.
  std::vector<core::Transport*> transports();

  /// Bind the state-channel handler of rank r (normally &mechs.at(r)).
  /// Must be called before start().
  void attach(Rank r, sim::StateHandler* handler);

  /// Hand the mechanism set to the supervision layer (suspicion
  /// broadcasts, onRestart + rejoin resync after a scripted restart).
  /// Optional, but must precede start(); without it the supervisor still
  /// runs the crash schedule, it just cannot resync anyone.
  void superviseMechanisms(core::MechanismSet* mechs);

  void start();
  bool running() const { return started_ && !stopped_; }

  /// Run a closure on rank r's thread. Blocking backpressure — driver
  /// threads only, never from a node thread (use postTask there). With
  /// fault hooks enabled a post to a crashed rank is dropped (counted),
  /// not blocked on.
  void post(Rank r, std::function<void()> fn);

  /// Non-blocking post: false if the destination is sealed or its mailbox
  /// is full (nothing is counted as posted then). Supervisor + tests.
  bool tryPost(Rank r, std::function<void()> fn);

  /// Like post(), but the closure is deferred (re-armed every `retry_s`)
  /// while the rank's handler blocks computation — a live snapshot freeze.
  /// Mirrors harness::CoreHarness::atWhenFree.
  void postWhenFree(Rank r, std::function<void()> fn, double retry_s = 1e-4);

  /// Node-to-node closure post (application work delegation). Must be
  /// called on `from`'s thread; never blocks (spills when `to` is full).
  void postTask(Rank from, Rank to, std::function<void()> fn);

  /// Wait until the pending-work counter reaches its stable zero, i.e. no
  /// envelope is queued or executing and no timer is armed anywhere.
  /// False on timeout (something still in flight) — the per-rank pending
  /// depths (mailbox, spill, armed timers) are then logged at warn level,
  /// unless `log_on_timeout` is false (progress-polling callers drain in
  /// short slices and expect most of them to time out).
  bool drain(double timeout_s, bool log_on_timeout = true);

  /// Post a stop envelope to every node and join the threads. Idempotent.
  void stop();

  // ---- rank lifecycle (fault hooks enabled only) -----------------------
  // Callable from driver or supervisor threads, never from a node/worker
  // thread. crashRank seals the mailbox, takes ownership of the victim
  // (its shard lock under M:N, a thread join under legacy), tears down
  // its wheel + spill and sweeps the backlog; restartRank revives a
  // crashed rank (fresh thread under legacy, a life flip under M:N).
  // Concurrent use against stop() is not supported: scripted plans are
  // executed by the supervisor, which stop() joins first.

  void crashRank(Rank r) LOADEX_EXCLUDES(lifecycle_mu_);
  void pauseRank(Rank r) LOADEX_EXCLUDES(lifecycle_mu_);
  void resumeRank(Rank r) LOADEX_EXCLUDES(lifecycle_mu_);
  void restartRank(Rank r) LOADEX_EXCLUDES(lifecycle_mu_);
  RankLife rankLife(Rank r) const;

  /// Drain sealed mailboxes of crashed ranks (racing senders can land a
  /// push between the seal and their next life check; the sweep settles
  /// the pending-work counter). drain() and the supervisor call this
  /// periodically; safe from any non-node thread.
  void sweepCrashedMailboxes() LOADEX_EXCLUDES(lifecycle_mu_);

  /// Snapshot of the run counters (exact after stop()). Not safe to call
  /// while node threads run: it folds in thread-confined per-node
  /// counters. To poll progress mid-run use lifecycleCounts().
  RtRunStats runStats() const;

  /// Detector / lifecycle counters only, read from atomics — safe to
  /// poll from any thread while the world is running.
  struct LifecycleCounts {
    std::int64_t crashes = 0;
    std::int64_t restarts = 0;
    std::int64_t suspects_flagged = 0;
    std::int64_t deaths_declared = 0;
    std::int64_t revives = 0;
  };
  LifecycleCounts lifecycleCounts() const;

  /// Current pending-work count (diagnostics; racy while running).
  std::int64_t pendingWork() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class RtTransport;
  friend class Supervisor;

  /// Sender-side spill entry: an envelope waiting for mailbox space, or —
  /// under a latency-spike fault — for its release time. Keeping held
  /// envelopes in the same per-destination queue preserves per-pair FIFO:
  /// a spike delays the whole (src,dst) stream, never one message past
  /// its successors.
  struct SpillEntry {
    Envelope e;
    SimTime not_before = 0.0;  ///< 0: send as soon as the mailbox has room
  };

  struct Shard;

  struct Node {
    Rank rank = kNoRank;
    Mailbox mailbox;
    TimerWheel wheel;
    std::unique_ptr<RtTransport> transport;
    sim::StateHandler* handler = nullptr;
    /// Legacy executor only: the rank's dedicated OS thread.
    std::thread thread;
    /// M:N executor only: the shard that owns this rank (fixed at
    /// start(); holding shard->mu is what owning the node means).
    Shard* shard = nullptr;
    /// M:N executor only: this rank consumed its kStop (guarded by the
    /// shard mutex — workers skip the rank from then on).
    bool stopped = false;
    /// Confinement marker for the sender-side state below under the
    /// legacy executor; its loop rebinds on entry so restarts hand
    /// ownership to the new thread. Unused (never bound) under M:N,
    /// where the shard mutex carries ownership instead.
    LOADEX_THREAD_CONFINED(confined);
    /// Per-destination spill queues (sender side), touched only by the
    /// node's current owner. Deques are allocated lazily on first spill
    /// to a destination — an eager nprocs-sized deque table would be
    /// O(N^2) memory across the world at N=1024.
    std::vector<std::unique_ptr<std::deque<SpillEntry>>> spill;
    /// Destinations with a non-empty spill queue (each appears once);
    /// flushSpill walks and compacts this instead of scanning all N.
    std::vector<Rank> spill_dirty;
    std::size_t spill_size = 0;
    // Counters written only by the node's owner (its thread under
    // legacy, any worker holding the shard lock under M:N), read after
    // the executor quiesces. Cumulative across restarts (the join in the
    // legacy crashRank — or the shard lock under M:N — orders the old
    // incarnation's writes before the new owner's).
    std::int64_t delivered_state = 0;
    std::int64_t delivered_task = 0;
    std::int64_t timers_fired = 0;

    // ---- lifecycle + published diagnostics -----------------------------
    std::atomic<int> life{static_cast<int>(RankLife::kAlive)};
    std::atomic<bool> crash_requested{false};
    /// Wall-clock of the last loop turn (failure-detector heartbeat).
    std::atomic<double> heartbeat{0.0};
    /// Loop-turn snapshots of thread-confined depths, so drain timeout
    /// diagnostics can read them without racing the owner.
    std::atomic<std::size_t> pub_wheel_pending{0};
    std::atomic<std::size_t> pub_spill{0};
    /// Per-sender fault RNG stream (owning thread only).
    std::unique_ptr<Rng> fault_rng;

    Node(const RtConfig& cfg, Rank r)
        : rank(r),
          mailbox(cfg.mailbox),
          wheel(cfg.timer_slot_s, cfg.timer_slots),
          spill(static_cast<std::size_t>(cfg.nprocs)) {}
  };

  /// M:N executor: a run-queue partition. The mutex is the consumer-
  /// ownership token for every member rank (sync::LockRank::kShard, the
  /// bottom of the hierarchy: handlers run under it and may take any
  /// other lock). Membership is fixed at start().
  struct Shard {
    sync::Mutex mu{sync::LockRank::kShard};
    std::vector<Node*> members LOADEX_GUARDED_BY(mu);
  };

  /// Per-pass outcome a worker accumulates over the shards it visited.
  struct Pass {
    bool did_work = false;  ///< fired a timer or delivered an envelope
    bool urgent = false;    ///< armed timers / spill seen: short sleep
  };

  Node& node(Rank r);
  const Node& node(Rank r) const;
  Node& callingNode();  ///< hard-fails unless called on a node thread

  /// The node whose loop runs on the current thread (null on driver
  /// threads). Thread-confined by definition: no synchronisation needed.
  static thread_local Node* t_current_node;

  // RtTransport backends.
  void postState(Rank src, Rank dst, core::StateTag tag, Bytes size,
                 std::shared_ptr<const sim::Payload> payload);
  void scheduleOnCallingNode(double delay, std::function<void()> fn);

  /// Enqueue from a node's owner: fault draws (when enabled), then direct
  /// tryPush, spill on full / on hold.
  void sendFromNode(Node& src, Rank dst, Envelope&& e);
  void sendFromNodeFaulty(Node& src, Rank dst, Envelope&& e);
  void enqueueFromNode(Node& src, Rank dst, Envelope&& e, SimTime not_before);
  void flushSpill(Node& n);
  void runWhenFree(Node& n, std::function<void()>&& fn, double retry_s);
  void nodeLoop(Node& n);  ///< legacy executor: one per rank

  // ---- M:N executor --------------------------------------------------
  void workerLoop(int w);
  /// One attempt at a shard: skipped (false) when another worker holds
  /// it — under steal that worker is already doing the shard's work.
  bool tryRunShard(Shard& sh, std::vector<Envelope>& scratch, Pass& pass);
  void runShardLocked(Shard& sh, std::vector<Envelope>& scratch, Pass& pass)
      LOADEX_REQUIRES(sh.mu);
  /// Run one member rank: timers, spill flush, one mailbox batch.
  void processShardNode(Shard& sh, Node& n, std::vector<Envelope>& scratch,
                        Pass& pass) LOADEX_REQUIRES(sh.mu);
  /// Debug check that the calling thread owns `n`'s sender-side state:
  /// holds n.shard->mu under M:N, is the confined thread under legacy.
  /// This (not thread identity) is the spill-hold FIFO ownership rule —
  /// under stealing, consecutive flushes of one rank's spill legally run
  /// on different worker threads.
  void assertSenderOwned(const Node& n) const;

  // Fault accounting: every path that loses an envelope must settle the
  // pending-work counter and hit exactly one drop bucket + the channel
  // counter, or the conservation identities above break.
  void noteDropped(const Envelope& e, std::atomic<std::int64_t>& reason);
  RankLife lifeOf(const Node& n) const {
    return static_cast<RankLife>(n.life.load(std::memory_order_acquire));
  }

  /// Crash teardown: cancel timers, discard the outbound spill, clear
  /// published depths. Run by whoever owns the node at the crash — the
  /// dying thread itself under legacy, the driver thread holding the
  /// victim's shard lock under M:N.
  void crashTeardown(Node& n);
  /// Drain a sealed mailbox. Caller holds lifecycle_mu_ and the node's
  /// thread has been joined (the sweeper is then the unique consumer).
  void sweepMailboxLocked(Node& n) LOADEX_REQUIRES(lifecycle_mu_);
  void logDrainDiagnostics() const;

  RtConfig cfg_;
  MonotonicClock clock_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // M:N executor state; empty under the legacy executor.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  int n_workers_ = 0;  ///< resolved pool size (0 under legacy)
  int n_shards_ = 0;
  /// Stop-protocol countdown: set to the number of kStop envelopes
  /// before stopping_ is raised; workers exit only once every one has
  /// been consumed, so no kStop (or envelope ahead of it) is stranded.
  std::atomic<std::int64_t> stops_remaining_{0};
  bool started_ = false;
  bool stopped_ = false;
  /// True once any fault machinery is configured; every fault branch in
  /// the hot paths is gated on this single bool.
  bool fault_hooks_ = false;
  core::MechanismSet* mechs_ = nullptr;
  std::unique_ptr<Supervisor> supervisor_;
  /// Serialises crash/restart/sweep transitions (cold paths). Guards no
  /// member directly — the lifecycle states are per-node atomics — but
  /// mutual exclusion makes each transition's seal/join/sweep atomic.
  /// Ranked below the mailbox locks: sweeps pop sealed mailboxes.
  mutable sync::Mutex lifecycle_mu_{sync::LockRank::kLifecycle};
  /// Raised by stop(): paused loops unpark so the kStop can drain.
  std::atomic<bool> stopping_{false};

  /// The conservation counter drain() polls (see file comment).
  std::atomic<std::int64_t> pending_{0};

  // World-level posting counters (any thread).
  std::atomic<std::int64_t> state_posted_{0};
  std::atomic<std::int64_t> state_bytes_{0};
  std::atomic<std::int64_t> task_posted_{0};
  std::atomic<std::int64_t> timers_armed_{0};
  std::atomic<std::int64_t> spill_enqueues_{0};
  std::atomic<std::int64_t> shard_visits_home_{0};
  std::atomic<std::int64_t> shard_visits_stolen_{0};

  // Fault counters (any thread; all stay zero on the clean path).
  std::atomic<std::int64_t> state_dropped_{0};
  std::atomic<std::int64_t> task_dropped_{0};
  std::atomic<std::int64_t> state_duplicated_{0};
  std::atomic<std::int64_t> task_duplicated_{0};
  std::atomic<std::int64_t> fault_drops_{0};
  std::atomic<std::int64_t> latency_spikes_{0};
  std::atomic<std::int64_t> dropped_at_sealed_mailbox_{0};
  std::atomic<std::int64_t> crash_discards_{0};
  std::atomic<std::int64_t> timers_cancelled_{0};
  std::atomic<std::int64_t> crashes_{0};
  std::atomic<std::int64_t> restarts_{0};
  std::atomic<std::int64_t> resyncs_{0};
  std::atomic<std::int64_t> suspects_flagged_{0};
  std::atomic<std::int64_t> deaths_declared_{0};
  std::atomic<std::int64_t> revives_{0};
};

}  // namespace loadex::rt
