// Supervision thread of the rt fault layer (rt/faults.h).
//
// One extra OS thread, started by RtWorld::start() whenever the fault
// plan scripts process events or enables suspicion, doing three jobs on a
// short period:
//
//   schedule execution — the plan's crash / pause / resume / restart
//     events fire at their wall-clock offsets, driving the RtWorld
//     lifecycle hooks. The hooks are executor-aware: under M:N they are
//     shard-local state flips (crashRank tears the victim down under its
//     shard lock, restartRank revives it for the next worker pass); under
//     the legacy executor they join/spawn the rank's thread. restartRank
//     is followed by the rejoin resync below either way;
//   sealed-mailbox sweeps — a sender racing a crash can land an envelope
//     after the seal; periodic sweeps keep the pending-work conservation
//     honest so drain() still quiesces;
//   failure detection — every rank publishes a heartbeat whenever its
//     owner runs it (per legacy loop turn / per M:N shard visit); the
//     detector polls the shard tables, classifies heartbeat age into
//     alive / suspect / dead and broadcasts transitions to the surviving
//     mechanisms (notePeerSuspect / notePeerDead / notePeerAlive), which
//     the degradation-aware selection policies consume.
//
// The supervisor is the only component besides RtWorld allowed to retire
// threads: loadex-lint bans std::thread::detach and std::terminate across
// src/, and thread joins in src/ outside RtWorld/Supervisor code.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "common/faults.h"
#include "common/sync.h"
#include "common/types.h"
#include "rt/faults.h"

namespace loadex::core {
class MechanismSet;
}  // namespace loadex::core

namespace loadex::rt {

class RtWorld;

/// Rejoin resync: every surviving peer publishes its authoritative load
/// to `restarted`, and `restarted` publishes its (recovered) load back,
/// via Mechanism::applyPeerResync closures on the owning threads. After
/// the exchange quiesces, the rejoiner's view of the survivors and their
/// views of it are coherent again. Exposed for tests driving lifecycle
/// transitions manually (FaultPlan::manual_control).
void postRejoinResync(RtWorld& world, core::MechanismSet& mechs,
                      Rank restarted);

class Supervisor {
 public:
  Supervisor(RtWorld& world, core::MechanismSet* mechs);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void start();
  void stop();  ///< idempotent: request exit + join

 private:
  void loop();
  void applyEvent(const loadex::ProcessFaultEvent& ev);
  void restartWithResync(Rank r);
  void runDetector(SimTime now);
  void setSuspicion(Rank r, Suspicion next);

  RtWorld& world_;
  core::MechanismSet* mechs_;
  /// Confines the detector/schedule state below to the supervisor thread
  /// (constructed on the starting thread, then owned by loop()).
  LOADEX_THREAD_CONFINED(confined_);
  std::vector<loadex::ProcessFaultEvent> schedule_;  ///< time-sorted
  std::size_t next_event_ = 0;
  std::vector<Suspicion> suspicion_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace loadex::rt
