#include "rt/supervisor.h"

#include <algorithm>

#include "core/binding.h"
#include "rt/clock.h"
#include "rt/world.h"

namespace loadex::rt {

void postRejoinResync(RtWorld& world, core::MechanismSet& mechs,
                      Rank restarted) {
  const int n = world.nprocs();
  for (Rank p = 0; p < n; ++p) {
    if (p == restarted || world.rankLife(p) != RankLife::kAlive) continue;
    world.post(p, [&world, &mechs, p, restarted] {
      const core::LoadMetrics mine = mechs.at(p).localLoad();
      world.postTask(p, restarted, [&mechs, p, restarted, mine] {
        mechs.at(restarted).applyPeerResync(p, mine);
      });
    });
  }
  world.post(restarted, [&world, &mechs, restarted] {
    const core::LoadMetrics mine = mechs.at(restarted).localLoad();
    for (Rank p = 0; p < world.nprocs(); ++p) {
      if (p == restarted || world.rankLife(p) != RankLife::kAlive) continue;
      world.postTask(restarted, p, [&mechs, p, restarted, mine] {
        mechs.at(p).applyPeerResync(restarted, mine);
      });
    }
  });
}

Supervisor::Supervisor(RtWorld& world, core::MechanismSet* mechs)
    : world_(world),
      mechs_(mechs),
      schedule_(world.faultPlan().process),
      suspicion_(static_cast<std::size_t>(world.nprocs()),
                 Suspicion::kAlive) {
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const loadex::ProcessFaultEvent& a,
                      const loadex::ProcessFaultEvent& b) {
                     return a.time < b.time;
                   });
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  thread_ = std::thread(&Supervisor::loop, this);
}

void Supervisor::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Supervisor::loop() {
  // The schedule cursor and suspicion table belong to this thread from
  // here on (the constructor built them before start() spawned us).
  confined_.bindToCurrentThread();
  const FaultPlan& plan = world_.faultPlan();
  const double sweep_s =
      plan.suspicion.enabled ? plan.suspicion.sweep_period_s : 1e-3;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const SimTime now = world_.now();
    while (next_event_ < schedule_.size() &&
           schedule_[next_event_].time <= now)
      applyEvent(schedule_[next_event_++]);
    world_.sweepCrashedMailboxes();
    if (plan.suspicion.enabled) runDetector(world_.now());
    double wait = sweep_s;
    if (next_event_ < schedule_.size())
      wait = std::min(wait, schedule_[next_event_].time - world_.now());
    MonotonicClock::sleepFor(std::clamp(wait, 50e-6, 1e-3));
  }
}

void Supervisor::applyEvent(const loadex::ProcessFaultEvent& ev) {
  using Kind = loadex::ProcessFaultEvent::Kind;
  switch (ev.kind) {
    case Kind::kCrash:
      world_.crashRank(ev.rank);
      break;
    case Kind::kPause:
      world_.pauseRank(ev.rank);
      break;
    case Kind::kResume:
      world_.resumeRank(ev.rank);
      break;
    case Kind::kRestart:
      restartWithResync(ev.rank);
      break;
  }
}

void Supervisor::restartWithResync(Rank r) {
  if (world_.rankLife(r) != RankLife::kCrashed) return;
  world_.restartRank(r);
  if (mechs_ == nullptr) return;
  // First thing the revived rank runs: shed the protocol state that died
  // with the crash. The resync closures queue behind it (per-mailbox
  // FIFO), so the rejoiner's view is rebuilt on a clean slate.
  auto* mechs = mechs_;
  world_.post(r, [mechs, r] { mechs->at(r).onRestart(); });
  if (world_.faultPlan().resync_on_restart) {
    postRejoinResync(world_, *mechs_, r);
    world_.resyncs_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Supervisor::runDetector(SimTime now) {
  const SuspicionConfig& sc = world_.faultPlan().suspicion;
  for (Rank r = 0; r < world_.nprocs(); ++r) {
    Suspicion next = Suspicion::kAlive;
    if (world_.rankLife(r) == RankLife::kCrashed) {
      next = Suspicion::kDead;
    } else {
      const double age =
          now - world_.node(r).heartbeat.load(std::memory_order_relaxed);
      if (age >= sc.dead_after_s) {
        next = Suspicion::kDead;
      } else if (age >= sc.suspect_after_s) {
        next = Suspicion::kSuspect;
      }
    }
    setSuspicion(r, next);
  }
}

void Supervisor::setSuspicion(Rank r, Suspicion next) {
  LOADEX_ASSERT_CONFINED(confined_);
  Suspicion& cur = suspicion_[static_cast<std::size_t>(r)];
  if (cur == next) return;
  if (next == Suspicion::kSuspect)
    world_.suspects_flagged_.fetch_add(1, std::memory_order_relaxed);
  if (next == Suspicion::kDead)
    world_.deaths_declared_.fetch_add(1, std::memory_order_relaxed);
  if (next == Suspicion::kAlive)
    world_.revives_.fetch_add(1, std::memory_order_relaxed);
  cur = next;
  if (mechs_ == nullptr) return;
  // Advisory broadcast to every live peer; a full mailbox just misses
  // this edge (the next transition is another chance to converge).
  auto* mechs = mechs_;
  for (Rank p = 0; p < world_.nprocs(); ++p) {
    if (p == r || world_.rankLife(p) != RankLife::kAlive) continue;
    world_.tryPost(p, [mechs, p, r, next] {
      switch (next) {
        case Suspicion::kAlive:
          mechs->at(p).notePeerAlive(r);
          break;
        case Suspicion::kSuspect:
          mechs->at(p).notePeerSuspect(r);
          break;
        case Suspicion::kDead:
          mechs->at(p).notePeerDead(r);
          break;
      }
    });
  }
}

}  // namespace loadex::rt
