// Serialising shim that lets the single-threaded ProtocolAuditor observe a
// mechanism set running on real threads.
//
// The auditor's online hooks assume one caller at a time (true in the
// simulator by construction). Under rt, every rank thread fires hooks
// concurrently, so the world interposes this wrapper: attach the auditor
// normally — it sizes its per-pair state from the MechanismSet — then
// point every mechanism at a LockedAuditObserver that forwards each hook
// under one global mutex. Per-pair FIFO ordering survives the interposition
// because a sender's onStateSend runs before its mailbox post and the
// receiver's onStateDeliver runs after the pop, and the mailbox is FIFO
// per producer. finish()/expectClean() need no lock: call them after
// RtWorld::stop() has joined every node thread.
#pragma once

#include "common/sync.h"
#include "core/audit.h"
#include "core/binding.h"
#include "core/mechanism.h"

namespace loadex::rt {

class LockedAuditObserver final : public core::AuditObserver {
 public:
  explicit LockedAuditObserver(core::AuditObserver& inner) : inner_(&inner) {}

  void onLocalLoad(const core::Mechanism& m, const core::LoadMetrics& delta,
                   bool is_slave_delegated) override {
    const sync::MutexLock lk(mu_);
    inner_->onLocalLoad(m, delta, is_slave_delegated);
  }
  void onViewRequest(const core::Mechanism& m) override {
    const sync::MutexLock lk(mu_);
    inner_->onViewRequest(m);
  }
  void onSelection(const core::Mechanism& m,
                   const core::SlaveSelection& selection) override {
    const sync::MutexLock lk(mu_);
    inner_->onSelection(m, selection);
  }
  void onStateSend(const core::Mechanism& m, Rank dst, core::StateTag tag,
                   Bytes size, const sim::Payload* payload) override {
    const sync::MutexLock lk(mu_);
    inner_->onStateSend(m, dst, tag, size, payload);
  }
  void onStateDeliver(const core::Mechanism& m, Rank src, core::StateTag tag,
                      const sim::Payload* p) override {
    const sync::MutexLock lk(mu_);
    inner_->onStateDeliver(m, src, tag, p);
  }

 private:
  sync::Mutex mu_{sync::LockRank::kAuditSerial};
  /// The wrapped auditor: the pointer is set once at construction, but
  /// every call through it must hold mu_ — the auditor's online hooks
  /// assume a single caller at a time.
  core::AuditObserver* const inner_ LOADEX_PT_GUARDED_BY(mu_);
};

/// Attach `auditor` to a mechanism set bound to rt transports: size its
/// state via the normal attach (no sim::World — liveness checks that need
/// one stay off), then interpose the serialising wrapper on every rank.
/// The binding must outlive the run; detaches on destruction.
class RtAuditBinding {
 public:
  RtAuditBinding(core::ProtocolAuditor& auditor, core::MechanismSet& mechs)
      : locked_(auditor), mechs_(mechs) {
    auditor.attach(mechs, /*world=*/nullptr);
    for (Rank r = 0; r < mechs.size(); ++r)
      mechs.at(r).setAuditObserver(&locked_);
  }

  ~RtAuditBinding() {
    for (Rank r = 0; r < mechs_.size(); ++r)
      mechs_.at(r).setAuditObserver(nullptr);
  }

  RtAuditBinding(const RtAuditBinding&) = delete;
  RtAuditBinding& operator=(const RtAuditBinding&) = delete;

 private:
  LockedAuditObserver locked_;
  core::MechanismSet& mechs_;
};

}  // namespace loadex::rt
