// Bounded MPSC mailbox: the channel between node threads.
//
// Every rt node owns one mailbox; any thread may post to it, only the
// owning node thread pops. Two interchangeable implementations sit behind
// one interface (MailboxConfig::lock_free_ring picks at construction):
//
//   ring   — a Vyukov-style bounded ring of slots, each carrying its own
//            sequence number. Producers claim a slot with one CAS on the
//            tail cursor and publish with a release store of the slot
//            sequence; the consumer pops with plain loads plus one store.
//            Per-producer FIFO holds because a producer's later CAS claims
//            a strictly later slot. This is the fast path the throughput
//            bench measures.
//   mutex  — a deque under a mutex with condvars, the obviously-correct
//            baseline the differential and stress tests cross-check the
//            ring against.
//
// Blocking: pop() always takes a timeout (the node thread must wake to
// fire timers and flush spill queues), and push() — the *blocking* variant
// — is reserved for external driver threads. Node threads must only ever
// tryPush (RtWorld keeps per-destination spill queues for the full case),
// so no cycle of mutually-sending full nodes can deadlock: a node never
// blocks on another node's mailbox. Consumer wakeups are an optimisation,
// never load-bearing — waits are bounded slices, so a lost notify costs
// latency, not progress.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/expect.h"
#include "common/sync.h"
#include "sim/message.h"

namespace loadex::rt {

/// One unit of mailbox traffic. kState carries a mechanism message for
/// StateHandler::onStateMessage; kTask runs a closure on the node thread
/// (application work, driver-injected script ops); kStop ends the loop.
struct Envelope {
  enum class Kind : std::uint8_t { kState, kTask, kStop };
  Kind kind = Kind::kTask;
  sim::Message msg;            ///< kState only
  std::function<void()> fn;    ///< kTask only
};

struct MailboxConfig {
  std::size_t capacity = 1 << 12;  ///< rounded up to a power of two
  bool lock_free_ring = true;      ///< false: mutex+condvar baseline
};

/// Counters a mailbox accumulates over its lifetime (relaxed atomics;
/// read them after the producers/consumer have quiesced).
struct MailboxStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t full_rejections = 0;  ///< tryPush calls that found it full
  std::uint64_t blocking_waits = 0;   ///< push() calls that had to wait
};

class Mailbox {
 public:
  explicit Mailbox(MailboxConfig cfg = {}) : cfg_(cfg) {
    std::size_t cap = 1;
    while (cap < cfg_.capacity) cap <<= 1;
    cfg_.capacity = cap;
    if (cfg_.lock_free_ring) {
      cells_ = std::vector<Cell>(cap);
      for (std::size_t i = 0; i < cap; ++i)
        cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  std::size_t capacity() const { return cfg_.capacity; }
  bool lockFreeRing() const { return cfg_.lock_free_ring; }

  /// Non-blocking post from any thread; false if the mailbox is full.
  bool tryPush(Envelope&& e) LOADEX_EXCLUDES(mu_, deque_mu_) {
    const bool ok = cfg_.lock_free_ring ? ringPush(e) : lockedPush(e);
    if (ok) {
      pushes_.fetch_add(1, std::memory_order_relaxed);
      wakeConsumer();
    } else {
      full_rejections_.fetch_add(1, std::memory_order_relaxed);
    }
    return ok;
  }

  /// Blocking post (driver threads only — never call from a node thread).
  void push(Envelope&& e) LOADEX_EXCLUDES(mu_, deque_mu_) {
    if (tryPush(std::move(e))) return;
    blocking_waits_.fetch_add(1, std::memory_order_relaxed);
    sync::MutexLock lk(mu_);
    for (;;) {
      // Bounded wait slices: a missed not-full notify only costs a slice.
      cv_not_full_.waitFor(mu_, kWaitSliceS);
      lk.unlock();
      const bool ok = tryPush(std::move(e));
      lk.lock();
      if (ok) return;
    }
  }

  /// Pop one envelope, waiting up to `timeout_s`. Only the owning node
  /// thread may call this. Returns false on timeout.
  bool pop(Envelope& out, double timeout_s) LOADEX_EXCLUDES(mu_) {
    if (tryPop(out)) return true;
    if (timeout_s <= 0.0) return false;
    sync::MutexLock lk(mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    // Re-check after raising the flag: a producer that pushed before
    // seeing the flag is caught here; one that pushed after will notify.
    if (tryPop(out)) {
      consumer_waiting_.store(false, std::memory_order_relaxed);
      return true;
    }
    double remaining = timeout_s;
    while (remaining > 0.0) {
      const double slice = std::min(remaining, kWaitSliceS);
      cv_not_empty_.waitFor(mu_, slice);
      if (tryPop(out)) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        return true;
      }
      remaining -= slice;
    }
    consumer_waiting_.store(false, std::memory_order_relaxed);
    return false;
  }

  /// Non-blocking pop (owning node thread only).
  bool tryPop(Envelope& out) LOADEX_EXCLUDES(deque_mu_) {
    const bool ok = cfg_.lock_free_ring ? ringPop(out) : lockedPop(out);
    if (ok) {
      pops_.fetch_add(1, std::memory_order_relaxed);
      wakeProducers();
    }
    return ok;
  }

  /// Non-blocking batched pop: drain up to `max` envelopes into `out` in
  /// FIFO order, returning how many were taken (sole-consumer only, same
  /// contract as tryPop). The M:N executor drains shards with this so the
  /// per-pop producer-wake and stats overhead is paid once per batch; in
  /// mutex mode the whole batch comes out under one deque lock.
  std::size_t tryPopBatch(Envelope* out, std::size_t max)
      LOADEX_EXCLUDES(deque_mu_) {
    const std::size_t k = cfg_.lock_free_ring ? ringPopBatch(out, max)
                                              : lockedPopBatch(out, max);
    if (k > 0) {
      pops_.fetch_add(k, std::memory_order_relaxed);
      wakeProducers();
    }
    return k;
  }

  /// Approximate occupancy (exact once producers and consumer quiesce).
  std::size_t approxSize() const {
    const auto pushed = pushes_.load(std::memory_order_relaxed);
    const auto popped = pops_.load(std::memory_order_relaxed);
    return pushed >= popped ? static_cast<std::size_t>(pushed - popped) : 0;
  }

  MailboxStats stats() const {
    MailboxStats s;
    s.pushes = pushes_.load(std::memory_order_relaxed);
    s.pops = pops_.load(std::memory_order_relaxed);
    s.full_rejections = full_rejections_.load(std::memory_order_relaxed);
    s.blocking_waits = blocking_waits_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Wait granularity: wakeups are best-effort, so every sleep is a slice
  // this long at most and correctness never depends on a notify arriving.
  static constexpr double kWaitSliceS = 1e-3;

  struct Cell {
    std::atomic<std::size_t> seq{0};
    Envelope value;
  };

  bool ringPush(Envelope& e) {
    const std::size_t mask = cfg_.capacity - 1;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[pos & mask];
    cell.value = std::move(e);
    cell.seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool ringPop(Envelope& out) {
    const std::size_t mask = cfg_.capacity - 1;
    const std::size_t pos = head_;  // single consumer: plain variable
    Cell& cell = cells_[pos & mask];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff < 0) return false;  // empty (or producer mid-publish)
    LOADEX_EXPECT(diff == 0, "mailbox ring sequence corrupted");
    out = std::move(cell.value);
    cell.value = Envelope{};  // drop payload refs eagerly
    cell.seq.store(pos + cfg_.capacity, std::memory_order_release);
    head_ = pos + 1;
    return true;
  }

  std::size_t ringPopBatch(Envelope* out, std::size_t max) {
    std::size_t k = 0;
    while (k < max && ringPop(out[k])) ++k;
    return k;
  }

  bool lockedPush(Envelope& e) LOADEX_EXCLUDES(deque_mu_) {
    const sync::MutexLock lk(deque_mu_);
    if (deque_.size() >= cfg_.capacity) return false;
    deque_.push_back(std::move(e));
    return true;
  }

  bool lockedPop(Envelope& out) LOADEX_EXCLUDES(deque_mu_) {
    const sync::MutexLock lk(deque_mu_);
    if (deque_.empty()) return false;
    out = std::move(deque_.front());
    deque_.pop_front();
    return true;
  }

  std::size_t lockedPopBatch(Envelope* out, std::size_t max)
      LOADEX_EXCLUDES(deque_mu_) {
    const sync::MutexLock lk(deque_mu_);
    std::size_t k = 0;
    while (k < max && !deque_.empty()) {
      out[k++] = std::move(deque_.front());
      deque_.pop_front();
    }
    return k;
  }

  // Both wake helpers notify without taking mu_ (legal, and avoids a
  // self-deadlock when tryPop runs under pop()'s lock). The narrow race —
  // peer checked the condition but has not started waiting yet — only
  // delays it by one bounded wait slice.
  void wakeConsumer() {
    if (consumer_waiting_.load(std::memory_order_seq_cst))
      cv_not_empty_.notifyOne();
  }

  void wakeProducers() {
    if (blocking_waits_.load(std::memory_order_relaxed) >
        blocking_wakes_.load(std::memory_order_relaxed)) {
      blocking_wakes_.store(blocking_waits_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
      cv_not_full_.notifyAll();
    }
  }

  MailboxConfig cfg_;

  // Ring mode state.
  std::vector<Cell> cells_;
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::size_t head_ = 0;

  // Mutex-mode state. Innermost rt lock: pop() holds the park mutex while
  // tryPop descends here, hence the higher rank.
  sync::Mutex deque_mu_{sync::LockRank::kMailboxDeque};
  std::deque<Envelope> deque_ LOADEX_GUARDED_BY(deque_mu_);

  // Consumer/producer parking (shared by both modes). mu_ guards no data —
  // it only carries the condvar waits; the flags stay atomic because the
  // wake helpers read them without the lock.
  sync::Mutex mu_{sync::LockRank::kMailboxPark};
  sync::CondVar cv_not_empty_;
  sync::CondVar cv_not_full_;
  std::atomic<bool> consumer_waiting_{false};

  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::atomic<std::uint64_t> full_rejections_{0};
  std::atomic<std::uint64_t> blocking_waits_{0};
  std::atomic<std::uint64_t> blocking_wakes_{0};
};

}  // namespace loadex::rt
