// RtTransport: the mechanisms' view of a real-threads node.
//
// One instance per rank, owned by the RtWorld. sendState becomes a mailbox
// post to the destination node (never blocking — the world spills to a
// per-destination queue when the peer's mailbox is full), schedule arms a
// one-shot timer on the owning node's wheel, and now() reads the world's
// shared monotonic clock, so the same mechanism code that runs on
// simulated time runs here on real time with no changes.
//
// Both calls must come from the node's current *owner* — the context the
// rank's handlers run in. Under the legacy executor that is the rank's
// dedicated thread; under the M:N executor it is whichever worker holds
// the rank's shard lock (a different OS thread from turn to turn once
// work-stealing is on). Mechanisms cannot tell the difference: they only
// ever send and schedule from inside their own handlers, which is by
// construction the owner.
#pragma once

#include <functional>
#include <memory>

#include "core/mechanism.h"

namespace loadex::rt {

class RtWorld;

class RtTransport final : public core::Transport {
 public:
  RtTransport(RtWorld& world, Rank self) : world_(world), self_(self) {}

  Rank self() const override { return self_; }
  int nprocs() const override;
  SimTime now() const override;
  void sendState(Rank dst, core::StateTag tag, Bytes size,
                 std::shared_ptr<const sim::Payload> payload) override;
  /// Timers are node-confined: mechanisms arm them from inside handlers,
  /// which only ever run on this rank's thread. Hard-fails elsewhere.
  void schedule(SimTime delay, std::function<void()> fn) override;

 private:
  RtWorld& world_;
  Rank self_;
};

}  // namespace loadex::rt
