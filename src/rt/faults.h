// Fault injection and supervision plan for the real-threads runtime.
//
// Mirrors sim/faults.h on real threads: the shared message-fault plan
// (common/faults.h) is applied at RtTransport send time, and the process
// events become actual rank lifecycle transitions — a crashed rank's
// mailbox is sealed and its timers/spill are torn down, a paused rank
// idles without consuming envelopes, a restarted rank is revived plus a
// rejoin resync so it re-enters with a coherent load view. Under the M:N
// executor these are shard-local state flips (no thread starts or exits);
// the legacy executor maps them onto its per-rank threads.
//
// Spill-hold FIFO ownership: a latency spike holds an envelope in the
// *sender's* per-destination spill queue with a release time, so it can
// never overtake later sends on the same (src,dst) pair. The queue's
// correctness rule is single-OWNER, not single-thread: whoever owns the
// rank (holds its shard lock / is its legacy thread) enqueues and flushes.
// Under work-stealing the flushing worker is routinely a different OS
// thread from the one that enqueued — per-pair FIFO and the release-time
// gate must hold across that handoff (RtWorld::assertSenderOwned is the
// debug backstop; test_rt_executor pins the behaviour).
//
// Everything here is off by default. With the default plan RtWorld takes
// no fault branch at all: the clean path is bit-identical (same digests,
// same RtRunStats) to the pre-fault-layer runtime.
//
// Timebase: every `time` in the plan is wall-clock seconds since
// RtWorld::start(), i.e. the same axis as RtTransport::now().
#pragma once

#include <vector>

#include "common/faults.h"
#include "common/types.h"

namespace loadex::rt {

/// Lifecycle of one rank (written by the supervisor/driver, read by every
/// sender — stored as an atomic inside RtWorld::Node).
enum class RankLife : int {
  kAlive = 0,
  kPaused,   ///< parked: envelopes queue, nothing is consumed
  kCrashed,  ///< torn down, mailbox sealed: sends to it are dropped
};

inline const char* rankLifeName(RankLife s) {
  switch (s) {
    case RankLife::kAlive: return "alive";
    case RankLife::kPaused: return "paused";
    case RankLife::kCrashed: return "crashed";
  }
  return "?";
}

/// What the failure detector believes about a peer. Advisory: suspicion is
/// derived from heartbeat age, so a merely-slow rank can be suspected and
/// later cleared. Death is authoritative only for crashed ranks.
enum class Suspicion : int { kAlive = 0, kSuspect, kDead };

/// Heartbeat-based failure detection knobs. Each node publishes a
/// heartbeat timestamp on every loop turn; the supervisor classifies a
/// rank by the age of its last heartbeat and broadcasts transitions to
/// the surviving mechanisms (notePeerSuspect / notePeerDead /
/// notePeerAlive).
struct SuspicionConfig {
  bool enabled = false;
  double suspect_after_s = 10e-3;  ///< heartbeat age before "suspect"
  double dead_after_s = 50e-3;     ///< heartbeat age before "dead"
  double sweep_period_s = 1e-3;    ///< supervisor loop period
};

/// The full rt fault plan: message faults + scripted lifecycle events +
/// failure-detection settings.
struct FaultPlan {
  /// Per-send message faults (drop / duplicate / latency spike /
  /// blackouts), drawn from a per-sender seeded RNG stream.
  loadex::FaultPlan messages;

  /// Scripted crash / pause / resume / restart events, executed by the
  /// supervisor thread at `time` seconds after start().
  std::vector<loadex::ProcessFaultEvent> process;

  /// Failure detection (off by default even when other faults are on).
  SuspicionConfig suspicion;

  /// After restarting a crashed rank, run the rejoin resync protocol
  /// (authoritative load exchange with every surviving peer) so its view
  /// and the peers' views of it are coherent again.
  bool resync_on_restart = true;

  /// Unlock the lifecycle hooks (crashRank / pauseRank / ...) for direct
  /// calls from a test driver without scripting events or starting a
  /// supervisor.
  bool manual_control = false;

  /// Any fault machinery requested? When false RtWorld compiles the plan
  /// away at start(): no per-send branch, no supervisor, no lifecycle
  /// checks — the clean path stays bit-identical.
  bool enabled() const {
    return messages.enabled() || !process.empty() || suspicion.enabled ||
           manual_control;
  }

  /// Does this plan need the supervisor thread?
  bool needsSupervisor() const {
    return !process.empty() || suspicion.enabled;
  }
};

}  // namespace loadex::rt
