// Per-rank hashed timer wheel for RtTransport::schedule.
//
// Single-owner by design: a node's wheel is only ever touched by whoever
// currently owns the node (mechanisms arm timers from inside message
// handlers, which the owner runs), so the wheel needs no locks of its own.
// Who the owner is depends on the executor:
//
//   thread-confined — under the legacy thread-per-rank executor the owner
//     is the node's OS thread; the LOADEX_THREAD_CONFINED marker turns a
//     cross-thread touch into a debug-build abort. The node loop rebinds
//     on entry (bindToCurrentThread) so a restarted rank's fresh thread
//     takes ownership cleanly.
//   shard-confined — under the M:N executor ownership is the shard mutex
//     (sync::LockRank::kShard): any worker may run the node, but only
//     while holding its shard's lock. bindToShard switches every
//     debug assert from "am I the bound thread?" to "do I hold the shard
//     lock?" — the runtime backstop of the PR 7 LockRank hierarchy.
//
// The owner interleaves fireDue() with mailbox pops and uses
// nextDeadline() to bound its idle wait so a due timer is never slept
// through.
//
// Deadlines hash into a fixed ring of slots (deadline / slot_width mod
// nslots); a slot holds every timer of every future "lap", so fireDue
// filters by deadline and keeps not-yet-due entries in place. Due timers
// fire in (deadline, arm-order) order, which keeps re-arm chains (NACK
// retries, heartbeat tails, snapshot timeouts) deterministic relative to
// each other on one node.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "common/sync.h"
#include "common/types.h"

namespace loadex::rt {

class TimerWheel {
 public:
  explicit TimerWheel(double slot_width_s = 1e-4, std::size_t nslots = 256)
      : slot_width_s_(slot_width_s), slots_(nslots) {
    LOADEX_EXPECT(slot_width_s > 0.0 && nslots > 0, "bad timer wheel shape");
  }

  /// Take (or hand over) ownership of the wheel for the calling thread.
  /// The legacy node loop calls this on entry, which is what lets
  /// restartRank move a rank's wheel onto the replacement thread.
  void bindToCurrentThread() { confined_.bindToCurrentThread(); }

  /// Switch ownership from "one bound thread" to "whoever holds `mu`".
  /// The M:N executor binds every member rank's wheel to its shard
  /// mutex at start(); from then on each wheel call asserts the shard
  /// lock is held by the calling thread instead of checking thread
  /// identity, so work-stealing workers pass and lockless touches abort.
  void bindToShard(const sync::Mutex* mu) { shard_mu_ = mu; }

  /// Arm a one-shot timer at absolute time `now + delay`.
  void schedule(SimTime now, SimTime delay, std::function<void()> fn) {
    assertOwned();
    const SimTime deadline = now + std::max(delay, 0.0);
    slots_[slotOf(deadline)].push_back(
        Timer{deadline, next_seq_++, std::move(fn)});
    ++pending_;
  }

  /// Fire every timer with deadline <= now, in (deadline, arm-order)
  /// order. Callbacks may re-arm (they run after the wheel state is
  /// consistent again). Returns the number fired.
  int fireDue(SimTime now) {
    assertOwned();
    if (pending_ == 0) return 0;
    std::vector<Timer> due;
    for (auto& slot : slots_) {
      auto split = std::partition(
          slot.begin(), slot.end(),
          [now](const Timer& t) { return t.deadline > now; });
      std::move(split, slot.end(), std::back_inserter(due));
      slot.erase(split, slot.end());
    }
    if (due.empty()) return 0;
    pending_ -= due.size();
    std::sort(due.begin(), due.end(), [](const Timer& a, const Timer& b) {
      return a.deadline != b.deadline ? a.deadline < b.deadline
                                      : a.seq < b.seq;
    });
    for (auto& t : due) t.fn();
    return static_cast<int>(due.size());
  }

  /// Earliest pending deadline, +inf when no timer is armed.
  SimTime nextDeadline() const {
    assertOwned();
    if (pending_ == 0) return std::numeric_limits<double>::infinity();
    SimTime best = std::numeric_limits<double>::infinity();
    for (const auto& slot : slots_)
      for (const auto& t : slot) best = std::min(best, t.deadline);
    return best;
  }

  /// Drop every armed timer without firing it (crash teardown: the
  /// owning thread is about to exit). Returns how many were cancelled so
  /// the caller can settle the pending-work accounting.
  std::size_t cancelAll() {
    assertOwned();
    const std::size_t n = pending_;
    for (auto& slot : slots_) slot.clear();
    pending_ = 0;
    cancelled_ += n;
    return n;
  }

  std::size_t pending() const { return pending_; }
  std::uint64_t firedTotal() const { return next_seq_ - pending_ - cancelled_; }

 private:
  struct Timer {
    SimTime deadline = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  std::size_t slotOf(SimTime deadline) const {
    const auto ticks = static_cast<std::uint64_t>(
        std::max(deadline, 0.0) / slot_width_s_);
    return static_cast<std::size_t>(ticks % slots_.size());
  }

  /// Debug-build ownership check: shard lock held if shard-bound,
  /// otherwise thread confinement (legacy executor).
  void assertOwned() const {
    if (shard_mu_ != nullptr) {
      shard_mu_->assertHeld();
    } else {
      LOADEX_ASSERT_CONFINED(confined_);
    }
  }

  double slot_width_s_;
  const sync::Mutex* shard_mu_ = nullptr;  ///< set → shard-confined
  LOADEX_THREAD_CONFINED(confined_);  ///< one owning thread at a time
  std::vector<std::vector<Timer>> slots_;
  std::size_t pending_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace loadex::rt
