#include "rt/workload.h"

#include <utility>

#include "common/expect.h"
#include "harness/replay.h"
#include "rt/clock.h"

namespace loadex::rt {

void WorkloadDriver::postLoad(const harness::ScriptLoadOp& op) {
  world_.post(op.rank, [this, op] {
    mechs_.at(op.rank).addLocalLoad(op.delta);
  });
}

void WorkloadDriver::postSelection(const harness::ScriptSelectOp& op) {
  world_.postWhenFree(op.master, [this, op] {
    auto& m = mechs_.at(op.master);
    const SimTime t0 = world_.now();
    harness::selectAndCommit(
        m, {op.share, 0.0},
        [this, op, t0](const core::LoadView&, Rank slave) {
          const double latency = world_.now() - t0;
          {
            const sync::MutexLock lk(mu_);
            ++committed_;
            latencies_.push_back(latency);
          }
          // The delegated work travels to the slave as a task envelope;
          // its load lands with is_slave_delegated so the slave does not
          // self-report what the master's reservation already announced.
          world_.postTask(op.master, slave,
                          [this, slave, share = op.share] {
                            mechs_.at(slave).addLocalLoad(
                                {share, 0.0}, /*is_slave_delegated=*/true);
                          });
        },
        [this, t0](const core::LoadView&) {
          // Degraded decision: every peer is dead or untrusted in this
          // view, so the work stays local (the empty commit already
          // closed the view — see harness::selectAndCommit).
          const double latency = world_.now() - t0;
          const sync::MutexLock lk(mu_);
          ++skipped_;
          latencies_.push_back(latency);
        });
  });
}

WorkloadResult WorkloadDriver::run(const harness::Script& script,
                                   double time_scale,
                                   double drain_timeout_s) {
  LOADEX_EXPECT(world_.running(), "WorkloadDriver needs a started world");
  LOADEX_EXPECT(world_.nprocs() == script.nprocs &&
                    mechs_.size() == script.nprocs,
                "script/world size mismatch");

  const std::vector<harness::ScriptOpRef> ops =
      harness::orderedScriptOps(script);

  const SimTime t_start = world_.now();
  SimTime prev = ops.empty() ? 0.0 : ops.front().time;
  for (const harness::ScriptOpRef& op : ops) {
    if (time_scale > 0.0 && op.time > prev)
      MonotonicClock::sleepFor((op.time - prev) * time_scale);
    prev = op.time;
    switch (op.what) {
      case harness::ScriptOpRef::What::kLoad:
        postLoad(script.loads[op.index]);
        break;
      case harness::ScriptOpRef::What::kSelect:
        postSelection(script.selections[op.index]);
        break;
      case harness::ScriptOpRef::What::kNoMoreMaster:
        world_.postWhenFree(script.no_more_master,
                            [this, r = script.no_more_master] {
                              mechs_.at(r).noMoreMaster();
                            });
        break;
    }
  }

  WorkloadResult res;
  res.drained = world_.drain(drain_timeout_s);
  res.wall_s = world_.now() - t_start;
  {
    const sync::MutexLock lk(mu_);
    res.selections_committed = committed_;
    res.selections_skipped = skipped_;
    res.selection_latency_s = latencies_;
  }
  if (res.drained) {
    // Quiescent (pending == 0 read with acquire ordering): every node's
    // final state is visible to this thread.
    for (Rank r = 0; r < mechs_.size(); ++r)
      res.total_load += mechs_.at(r).localLoad();
  }
  return res;
}

}  // namespace loadex::rt
