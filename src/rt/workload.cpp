#include "rt/workload.h"

#include <algorithm>
#include <utility>

#include "common/expect.h"
#include "rt/clock.h"

namespace loadex::rt {

namespace {

/// Uniform view of the script's timed operations for the merge-replay.
struct TimedOp {
  SimTime time = 0.0;
  int order = 0;  ///< stable tie-break: script declaration order
  enum class What : std::uint8_t { kLoad, kSelect, kNoMoreMaster } what =
      What::kLoad;
  std::size_t index = 0;
};

}  // namespace

void WorkloadDriver::postLoad(const harness::ScriptLoadOp& op) {
  world_.post(op.rank, [this, op] {
    mechs_.at(op.rank).addLocalLoad(op.delta);
  });
}

void WorkloadDriver::postSelection(const harness::ScriptSelectOp& op) {
  world_.postWhenFree(op.master, [this, op] {
    auto& m = mechs_.at(op.master);
    const SimTime t0 = world_.now();
    m.requestView([this, op, &m, t0](const core::LoadView& v) {
      const Rank slave = harness::leastLoadedSlave(v, op.master);
      const double latency = world_.now() - t0;
      if (slave == kNoRank) {
        // Degraded decision: every peer is dead or untrusted in this
        // view, so the work stays local. The snapshot mechanism still
        // requires the decision to be committed inside the callback —
        // an empty selection closes it without delegating anything.
        m.commitSelection({});
        const sync::MutexLock lk(mu_);
        ++skipped_;
        latencies_.push_back(latency);
        return;
      }
      m.commitSelection({{slave, {op.share, 0.0}}});
      {
        const sync::MutexLock lk(mu_);
        ++committed_;
        latencies_.push_back(latency);
      }
      // The delegated work travels to the slave as a task envelope; its
      // load lands with is_slave_delegated so the slave does not
      // self-report what the master's reservation already announced.
      world_.postTask(op.master, slave, [this, slave, share = op.share] {
        mechs_.at(slave).addLocalLoad({share, 0.0},
                                      /*is_slave_delegated=*/true);
      });
    });
  });
}

WorkloadResult WorkloadDriver::run(const harness::Script& script,
                                   double time_scale,
                                   double drain_timeout_s) {
  LOADEX_EXPECT(world_.running(), "WorkloadDriver needs a started world");
  LOADEX_EXPECT(world_.nprocs() == script.nprocs &&
                    mechs_.size() == script.nprocs,
                "script/world size mismatch");

  std::vector<TimedOp> ops;
  ops.reserve(script.loads.size() + script.selections.size() + 1);
  int order = 0;
  for (std::size_t i = 0; i < script.loads.size(); ++i)
    ops.push_back({script.loads[i].time, order++, TimedOp::What::kLoad, i});
  for (std::size_t i = 0; i < script.selections.size(); ++i)
    ops.push_back(
        {script.selections[i].time, order++, TimedOp::What::kSelect, i});
  if (script.no_more_master != kNoRank)
    ops.push_back({script.no_more_master_at, order++,
                   TimedOp::What::kNoMoreMaster, 0});
  std::sort(ops.begin(), ops.end(), [](const TimedOp& a, const TimedOp& b) {
    return a.time != b.time ? a.time < b.time : a.order < b.order;
  });

  const SimTime t_start = world_.now();
  SimTime prev = ops.empty() ? 0.0 : ops.front().time;
  for (const TimedOp& op : ops) {
    if (time_scale > 0.0 && op.time > prev)
      MonotonicClock::sleepFor((op.time - prev) * time_scale);
    prev = op.time;
    switch (op.what) {
      case TimedOp::What::kLoad:
        postLoad(script.loads[op.index]);
        break;
      case TimedOp::What::kSelect:
        postSelection(script.selections[op.index]);
        break;
      case TimedOp::What::kNoMoreMaster:
        world_.postWhenFree(script.no_more_master,
                            [this, r = script.no_more_master] {
                              mechs_.at(r).noMoreMaster();
                            });
        break;
    }
  }

  WorkloadResult res;
  res.drained = world_.drain(drain_timeout_s);
  res.wall_s = world_.now() - t_start;
  {
    const sync::MutexLock lk(mu_);
    res.selections_committed = committed_;
    res.selections_skipped = skipped_;
    res.selection_latency_s = latencies_;
  }
  if (res.drained) {
    // Quiescent (pending == 0 read with acquire ordering): every node's
    // final state is visible to this thread.
    for (Rank r = 0; r < mechs_.size(); ++r)
      res.total_load += mechs_.at(r).localLoad();
  }
  return res;
}

}  // namespace loadex::rt
