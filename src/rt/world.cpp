#include "rt/world.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "rt/supervisor.h"

namespace loadex::rt {

// ---- RtTransport ----------------------------------------------------------

int RtTransport::nprocs() const { return world_.nprocs(); }

SimTime RtTransport::now() const { return world_.now(); }

void RtTransport::sendState(Rank dst, core::StateTag tag, Bytes size,
                            std::shared_ptr<const sim::Payload> payload) {
  world_.postState(self_, dst, tag, size, std::move(payload));
}

void RtTransport::schedule(SimTime delay, std::function<void()> fn) {
  world_.scheduleOnCallingNode(delay, std::move(fn));
}

// ---- RtWorld lifecycle ----------------------------------------------------

RtWorld::RtWorld(RtConfig cfg) : cfg_(cfg) {
  LOADEX_EXPECT(cfg_.nprocs >= 1, "RtWorld needs at least one rank");
  fault_hooks_ = cfg_.faults.enabled();
  nodes_.reserve(static_cast<std::size_t>(cfg_.nprocs));
  for (Rank r = 0; r < cfg_.nprocs; ++r) {
    nodes_.push_back(std::make_unique<Node>(cfg_, r));
    nodes_.back()->transport = std::make_unique<RtTransport>(*this, r);
    if (cfg_.faults.messages.enabled())
      nodes_.back()->fault_rng = std::make_unique<Rng>(
          cfg_.faults.messages.seed ^
          (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(r + 1)));
  }
}

RtWorld::~RtWorld() { stop(); }

std::vector<core::Transport*> RtWorld::transports() {
  std::vector<core::Transport*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n->transport.get());
  return out;
}

void RtWorld::attach(Rank r, sim::StateHandler* handler) {
  LOADEX_EXPECT(!started_, "attach() must precede start()");
  node(r).handler = handler;
}

void RtWorld::superviseMechanisms(core::MechanismSet* mechs) {
  LOADEX_EXPECT(!started_, "superviseMechanisms() must precede start()");
  mechs_ = mechs;
}

void RtWorld::start() {
  LOADEX_EXPECT(!started_, "RtWorld can only start once");
  started_ = true;
  const SimTime t0 = clock_.now();
  for (auto& n : nodes_) n->heartbeat.store(t0, std::memory_order_relaxed);
  if (cfg_.executor.legacy_executor) {
    for (auto& n : nodes_)
      n->thread = std::thread(&RtWorld::nodeLoop, this, std::ref(*n));
  } else {
    // Resolve the pool shape: enough shards that workers rarely contend,
    // never more than ranks (an empty shard is pure overhead), and never
    // more workers than shards (the surplus could not own anything).
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    int workers = cfg_.executor.workers > 0
                      ? cfg_.executor.workers
                      : std::max(1, std::min(cfg_.nprocs, hw > 0 ? hw : 4));
    int shards = cfg_.executor.shards > 0 ? cfg_.executor.shards
                                          : 2 * workers;
    shards = std::max(1, std::min(shards, cfg_.nprocs));
    workers = std::max(1, std::min(workers, shards));
    n_workers_ = workers;
    n_shards_ = shards;
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s)
      shards_.push_back(std::make_unique<Shard>());
    for (auto& n : nodes_) {
      Shard& sh = *shards_[static_cast<std::size_t>(n->rank) %
                           static_cast<std::size_t>(shards)];
      {
        const sync::MutexLock lk(sh.mu);
        sh.members.push_back(n.get());
      }
      n->shard = &sh;
      n->wheel.bindToShard(&sh.mu);
    }
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
      workers_.emplace_back(&RtWorld::workerLoop, this, w);
  }
  if (cfg_.faults.needsSupervisor()) {
    supervisor_ = std::make_unique<Supervisor>(*this, mechs_);
    supervisor_->start();
  }
}

void RtWorld::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Join the supervisor first: once it is gone the lifecycle states are
  // frozen, so the per-node checks below cannot race a scripted crash.
  if (supervisor_) supervisor_->stop();
  if (!cfg_.executor.legacy_executor) {
    // Publish the countdown before raising stopping_, or a worker could
    // observe (stopping && remaining == 0) and exit with kStops (and the
    // envelopes ahead of them) still queued.
    std::int64_t count = 0;
    for (auto& n : nodes_)
      if (!(fault_hooks_ && lifeOf(*n) == RankLife::kCrashed)) ++count;
    stops_remaining_.store(count, std::memory_order_release);
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& n : nodes_) {
    if (fault_hooks_ && lifeOf(*n) == RankLife::kCrashed)
      continue;  // sealed: nobody consumes there, nothing to stop
    pending_.fetch_add(1, std::memory_order_relaxed);
    Envelope e;
    e.kind = Envelope::Kind::kStop;
    n->mailbox.push(std::move(e));
  }
  if (cfg_.executor.legacy_executor) {
    for (auto& n : nodes_)
      if (n->thread.joinable()) n->thread.join();
  } else {
    for (auto& w : workers_)
      if (w.joinable()) w.join();
  }
  // Last sealed-mailbox sweep: racing senders may have landed envelopes
  // after the supervisor's final sweep.
  if (fault_hooks_) sweepCrashedMailboxes();
}

bool RtWorld::drain(double timeout_s, bool log_on_timeout) {
  const SimTime deadline = clock_.now() + timeout_s;
  for (int iter = 0;; ++iter) {
    if (pending_.load(std::memory_order_acquire) == 0) return true;
    // Crashed mailboxes have no consumer: collect what racing senders
    // landed after the seal, or pending never reaches zero.
    if (fault_hooks_ && iter % 20 == 0) sweepCrashedMailboxes();
    if (clock_.now() >= deadline) break;
    MonotonicClock::sleepFor(50e-6);
  }
  if (fault_hooks_) sweepCrashedMailboxes();
  if (pending_.load(std::memory_order_acquire) == 0) return true;
  if (log_on_timeout) logDrainDiagnostics();
  return false;
}

void RtWorld::logDrainDiagnostics() const {
  LOG_WARN("rt drain timed out with "
           << pending_.load(std::memory_order_acquire)
           << " pending work item(s); per-rank depths:");
  for (const auto& n : nodes_) {
    const std::size_t mb = n->mailbox.approxSize();
    const std::size_t sp = n->pub_spill.load(std::memory_order_relaxed);
    const std::size_t tw =
        n->pub_wheel_pending.load(std::memory_order_relaxed);
    const RankLife life = lifeOf(*n);
    if (mb == 0 && sp == 0 && tw == 0 && life == RankLife::kAlive) continue;
    LOG_WARN("  rank " << n->rank << " [" << rankLifeName(life)
                       << "]: mailbox=" << mb << " spill=" << sp
                       << " armed_timers=" << tw);
  }
}

// ---- node access ----------------------------------------------------------

RtWorld::Node& RtWorld::node(Rank r) {
  LOADEX_EXPECT(r >= 0 && r < nprocs(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(r)];
}

const RtWorld::Node& RtWorld::node(Rank r) const {
  LOADEX_EXPECT(r >= 0 && r < nprocs(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(r)];
}

thread_local RtWorld::Node* RtWorld::t_current_node = nullptr;

RtWorld::Node& RtWorld::callingNode() {
  LOADEX_EXPECT(t_current_node != nullptr, "not on a node thread");
  return *t_current_node;
}

// ---- posting --------------------------------------------------------------

void RtWorld::postState(Rank src, Rank dst, core::StateTag tag, Bytes size,
                        std::shared_ptr<const sim::Payload> payload) {
  state_posted_.fetch_add(1, std::memory_order_relaxed);
  state_bytes_.fetch_add(size, std::memory_order_relaxed);
  Envelope e;
  e.kind = Envelope::Kind::kState;
  e.msg = sim::Message{src, dst, sim::Channel::kState, static_cast<int>(tag),
                       size, std::move(payload)};
  pending_.fetch_add(1, std::memory_order_relaxed);
  // Mechanisms send only from their own node thread; route through that
  // node's spill queue so a full peer mailbox never blocks the sender.
  Node& sender = node(src);
  LOADEX_EXPECT(&callingNode() == &sender,
                "mechanism API driven off its node thread (post a closure "
                "with RtWorld::post instead)");
  sendFromNode(sender, dst, std::move(e));
}

void RtWorld::scheduleOnCallingNode(double delay, std::function<void()> fn) {
  Node& n = callingNode();
  timers_armed_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_relaxed);
  n.wheel.schedule(clock_.now(), delay, std::move(fn));
}

void RtWorld::post(Rank r, std::function<void()> fn) {
  LOADEX_EXPECT(started_ && !stopped_, "post() needs a running world");
  task_posted_.fetch_add(1, std::memory_order_relaxed);
  Envelope e;
  e.kind = Envelope::Kind::kTask;
  e.fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  Node& d = node(r);
  if (!fault_hooks_) {
    d.mailbox.push(std::move(e));  // blocking backpressure: driver only
    return;
  }
  // Under a fault plan the destination can crash at any moment; a
  // blocking push would then wait forever on a consumer that is gone.
  // Bounded-slice retries re-checking the seal keep the driver safe.
  for (;;) {
    if (lifeOf(d) == RankLife::kCrashed) {
      noteDropped(e, dropped_at_sealed_mailbox_);
      return;
    }
    if (d.mailbox.tryPush(std::move(e))) return;
    MonotonicClock::sleepFor(20e-6);
  }
}

bool RtWorld::tryPost(Rank r, std::function<void()> fn) {
  LOADEX_EXPECT(started_, "tryPost() needs a started world");
  Node& d = node(r);
  if (fault_hooks_ && lifeOf(d) == RankLife::kCrashed) return false;
  Envelope e;
  e.kind = Envelope::Kind::kTask;
  e.fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!d.mailbox.tryPush(std::move(e))) {
    pending_.fetch_sub(1, std::memory_order_release);
    return false;
  }
  task_posted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RtWorld::postWhenFree(Rank r, std::function<void()> fn, double retry_s) {
  post(r, [this, r, fn = std::move(fn), retry_s]() mutable {
    runWhenFree(node(r), std::move(fn), retry_s);
  });
}

void RtWorld::postTask(Rank from, Rank to, std::function<void()> fn) {
  task_posted_.fetch_add(1, std::memory_order_relaxed);
  Envelope e;
  e.kind = Envelope::Kind::kTask;
  e.fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  Node& src = node(from);
  LOADEX_EXPECT(&callingNode() == &src,
                "postTask must run on the `from` node's thread");
  sendFromNode(src, to, std::move(e));
}

// ---- sending + fault injection --------------------------------------------

void RtWorld::noteDropped(const Envelope& e,
                          std::atomic<std::int64_t>& reason) {
  reason.fetch_add(1, std::memory_order_relaxed);
  (e.kind == Envelope::Kind::kState ? state_dropped_ : task_dropped_)
      .fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_sub(1, std::memory_order_release);
}

void RtWorld::sendFromNode(Node& src, Rank dst, Envelope&& e) {
  if (fault_hooks_) {
    sendFromNodeFaulty(src, dst, std::move(e));
    return;
  }
  enqueueFromNode(src, dst, std::move(e), 0.0);
}

void RtWorld::sendFromNodeFaulty(Node& src, Rank dst, Envelope&& e) {
  const bool is_state = e.kind == Envelope::Kind::kState;
  const auto& fp = cfg_.faults.messages;
  SimTime hold = 0.0;
  bool duplicate = false;
  if (fp.enabled() && (is_state ? fp.affects_state : fp.affects_app)) {
    const SimTime t = clock_.now();
    for (const auto& b : fp.blackouts) {
      if (!b.matches(src.rank, dst, t)) continue;
      noteDropped(e, fault_drops_);
      return;
    }
    // Draw order is fixed (drop, duplicate, spike) so a sender's fault
    // stream depends only on its seed and send sequence.
    Rng& rng = *src.fault_rng;
    if (fp.drop_prob > 0.0 && rng.uniformReal() < fp.drop_prob) {
      noteDropped(e, fault_drops_);
      return;
    }
    if (fp.duplicate_prob > 0.0 && rng.uniformReal() < fp.duplicate_prob)
      duplicate = true;
    if (fp.latency_spike_prob > 0.0 &&
        rng.uniformReal() < fp.latency_spike_prob) {
      hold = t + fp.latency_spike_s;
      latency_spikes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (duplicate) {
    // The copy rides right behind the original: per-pair FIFO holds, the
    // receiver just sees the payload twice.
    (is_state ? state_duplicated_ : task_duplicated_)
        .fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1, std::memory_order_relaxed);
    Envelope copy = e;
    enqueueFromNode(src, dst, std::move(e), hold);
    enqueueFromNode(src, dst, std::move(copy), hold);
    return;
  }
  enqueueFromNode(src, dst, std::move(e), hold);
}

void RtWorld::assertSenderOwned(const Node& n) const {
  if (n.shard != nullptr) {
    // M:N: ownership is the shard lock, not thread identity — the worker
    // flushing a rank's spill is routinely not the one that filled it.
    n.shard->mu.assertHeld();
  } else {
    LOADEX_ASSERT_CONFINED(n.confined);
  }
}

void RtWorld::enqueueFromNode(Node& src, Rank dst, Envelope&& e,
                              SimTime not_before) {
  assertSenderOwned(src);
  Node& d = node(dst);
  if (fault_hooks_ && lifeOf(d) == RankLife::kCrashed) {
    noteDropped(e, dropped_at_sealed_mailbox_);
    return;
  }
  auto& q = src.spill[static_cast<std::size_t>(dst)];
  // Once a destination has spilled (or holds a delayed envelope), later
  // envelopes to it must queue behind the spill or per-pair FIFO breaks.
  if (not_before <= 0.0 && (q == nullptr || q->empty()) &&
      d.mailbox.tryPush(std::move(e)))
    return;
  if (not_before <= 0.0)
    spill_enqueues_.fetch_add(1, std::memory_order_relaxed);
  if (q == nullptr) q = std::make_unique<std::deque<SpillEntry>>();
  if (q->empty()) src.spill_dirty.push_back(dst);
  q->push_back({std::move(e), not_before});
  ++src.spill_size;
}

void RtWorld::flushSpill(Node& n) {
  assertSenderOwned(n);
  if (n.spill_size == 0) return;
  SimTime now = -1.0;  // read lazily: only held entries need the clock
  std::size_t keep = 0;  // compaction cursor over the dirty list
  for (std::size_t i = 0; i < n.spill_dirty.size(); ++i) {
    const Rank d = n.spill_dirty[i];
    auto& q = *n.spill[static_cast<std::size_t>(d)];
    while (!q.empty()) {
      SpillEntry& front = q.front();
      if (front.not_before > 0.0) {
        if (now < 0.0) now = clock_.now();
        if (front.not_before > now) break;  // held: successors wait too
      }
      if (fault_hooks_ && lifeOf(node(d)) == RankLife::kCrashed) {
        noteDropped(front.e, dropped_at_sealed_mailbox_);
        q.pop_front();
        --n.spill_size;
        continue;
      }
      // tryPush only consumes its argument on success, so a failed
      // attempt leaves the entry intact for the next loop turn.
      if (!node(d).mailbox.tryPush(std::move(front.e))) break;
      q.pop_front();
      --n.spill_size;
    }
    if (!q.empty()) n.spill_dirty[keep++] = d;
  }
  n.spill_dirty.resize(keep);
}

void RtWorld::runWhenFree(Node& n, std::function<void()>&& fn,
                          double retry_s) {
  if (n.handler != nullptr && n.handler->blocksComputation()) {
    // Defer: arm a retry timer carrying the closure forward. No
    // self-referencing callback — each deferral builds a fresh one.
    timers_armed_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1, std::memory_order_relaxed);
    n.wheel.schedule(clock_.now(), retry_s,
                     [this, &n, fn = std::move(fn), retry_s]() mutable {
                       runWhenFree(n, std::move(fn), retry_s);
                     });
    return;
  }
  fn();
}

// ---- rank lifecycle -------------------------------------------------------

RankLife RtWorld::rankLife(Rank r) const { return lifeOf(node(r)); }

void RtWorld::crashRank(Rank r) {
  LOADEX_EXPECT(fault_hooks_, "crashRank needs an enabled fault plan");
  LOADEX_EXPECT(t_current_node == nullptr,
                "lifecycle transitions must come from a driver/supervisor "
                "thread, not a node thread");
  Node& n = node(r);
  if (n.shard != nullptr) {
    // M:N: a crash is a shard-local state transition. Taking the shard
    // lock (rank kShard, below kLifecycle) makes this thread the unique
    // owner of the victim's wheel, spill and mailbox consumption — no
    // thread exits; workers simply skip the rank from the seal on.
    const sync::MutexLock shlk(n.shard->mu);
    const sync::MutexLock lk(lifecycle_mu_);
    if (lifeOf(n) == RankLife::kCrashed) return;
    n.life.store(static_cast<int>(RankLife::kCrashed),
                 std::memory_order_release);
    crashTeardown(n);
    crashes_.fetch_add(1, std::memory_order_relaxed);
    sweepMailboxLocked(n);
    return;
  }
  const sync::MutexLock lk(lifecycle_mu_);
  if (lifeOf(n) == RankLife::kCrashed) return;
  // Seal first: every sender's next life check starts dropping. Then ask
  // the thread to exit and join it — the join orders its teardown
  // (cancelled timers, discarded spill) before the sweep below, and
  // makes this thread the mailbox's unique consumer.
  n.life.store(static_cast<int>(RankLife::kCrashed),
               std::memory_order_release);
  n.crash_requested.store(true, std::memory_order_release);
  if (n.thread.joinable()) n.thread.join();
  crashes_.fetch_add(1, std::memory_order_relaxed);
  sweepMailboxLocked(n);
}

void RtWorld::pauseRank(Rank r) {
  LOADEX_EXPECT(fault_hooks_, "pauseRank needs an enabled fault plan");
  const sync::MutexLock lk(lifecycle_mu_);
  Node& n = node(r);
  if (lifeOf(n) != RankLife::kAlive) return;
  n.life.store(static_cast<int>(RankLife::kPaused),
               std::memory_order_release);
}

void RtWorld::resumeRank(Rank r) {
  LOADEX_EXPECT(fault_hooks_, "resumeRank needs an enabled fault plan");
  const sync::MutexLock lk(lifecycle_mu_);
  Node& n = node(r);
  if (lifeOf(n) != RankLife::kPaused) return;
  // Refresh the heartbeat before unparking so the failure detector sees
  // the rank alive as soon as it is.
  n.heartbeat.store(clock_.now(), std::memory_order_relaxed);
  n.life.store(static_cast<int>(RankLife::kAlive),
               std::memory_order_release);
}

void RtWorld::restartRank(Rank r) {
  LOADEX_EXPECT(fault_hooks_, "restartRank needs an enabled fault plan");
  LOADEX_EXPECT(t_current_node == nullptr,
                "lifecycle transitions must come from a driver/supervisor "
                "thread, not a node thread");
  Node& n = node(r);
  if (n.shard != nullptr) {
    // M:N: revival is a life flip under the shard lock — the next worker
    // pass picks the rank up again. No thread to spawn.
    const sync::MutexLock shlk(n.shard->mu);
    const sync::MutexLock lk(lifecycle_mu_);
    if (lifeOf(n) != RankLife::kCrashed) return;
    sweepMailboxLocked(n);  // envelopes landed while sealed die
    n.heartbeat.store(clock_.now(), std::memory_order_relaxed);
    n.life.store(static_cast<int>(RankLife::kAlive),
                 std::memory_order_release);
    restarts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const sync::MutexLock lk(lifecycle_mu_);
  if (lifeOf(n) != RankLife::kCrashed) return;
  sweepMailboxLocked(n);  // envelopes landed while sealed die with the crash
  n.crash_requested.store(false, std::memory_order_relaxed);
  n.heartbeat.store(clock_.now(), std::memory_order_relaxed);
  n.life.store(static_cast<int>(RankLife::kAlive),
               std::memory_order_release);
  n.thread = std::thread(&RtWorld::nodeLoop, this, std::ref(n));
  restarts_.fetch_add(1, std::memory_order_relaxed);
}

void RtWorld::sweepCrashedMailboxes() {
  if (!fault_hooks_) return;
  LOADEX_EXPECT(t_current_node == nullptr,
                "sweeps must come from a driver/supervisor thread");
  if (!shards_.empty()) {
    // M:N: sweeping pops a sealed mailbox, so the sweeper must hold the
    // victim's shard lock to be its unique consumer (workers check life
    // under the same lock). Shard-by-shard keeps the stall local.
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      const sync::MutexLock shlk(sh.mu);
      const sync::MutexLock lk(lifecycle_mu_);
      for (Node* np : sh.members)
        if (lifeOf(*np) == RankLife::kCrashed) sweepMailboxLocked(*np);
    }
    return;
  }
  const sync::MutexLock lk(lifecycle_mu_);
  for (auto& n : nodes_)
    if (lifeOf(*n) == RankLife::kCrashed) sweepMailboxLocked(*n);
}

void RtWorld::sweepMailboxLocked(Node& n) {
  LOADEX_ASSERT_HELD(lifecycle_mu_);
  Envelope e;
  while (n.mailbox.tryPop(e)) {
    if (e.kind == Envelope::Kind::kStop) {
      pending_.fetch_sub(1, std::memory_order_release);
      continue;
    }
    noteDropped(e, crash_discards_);
  }
}

void RtWorld::crashTeardown(Node& n) {
  // Armed timers die with the rank: their closures never run.
  const std::size_t cancelled = n.wheel.cancelAll();
  if (cancelled != 0) {
    timers_cancelled_.fetch_add(static_cast<std::int64_t>(cancelled),
                                std::memory_order_relaxed);
    pending_.fetch_sub(static_cast<std::int64_t>(cancelled),
                       std::memory_order_release);
  }
  // The outbound backlog dies too; the inbound mailbox is swept by
  // whoever drove the crash, once it is the unique consumer.
  for (auto& q : n.spill) {
    if (q == nullptr) continue;
    for (auto& entry : *q) noteDropped(entry.e, crash_discards_);
    q->clear();
  }
  n.spill_dirty.clear();
  n.spill_size = 0;
  n.pub_wheel_pending.store(0, std::memory_order_relaxed);
  n.pub_spill.store(0, std::memory_order_relaxed);
}

// ---- legacy executor: thread-per-rank node loop ---------------------------

void RtWorld::nodeLoop(Node& n) {
  t_current_node = &n;
  // Claim the node's thread-confined state (spill queues, timer wheel):
  // after a restart this hands ownership from the dead incarnation's
  // thread to this one.
  n.confined.bindToCurrentThread();
  n.wheel.bindToCurrentThread();
  for (;;) {
    if (fault_hooks_) {
      if (n.crash_requested.load(std::memory_order_acquire)) {
        crashTeardown(n);
        return;
      }
      if (lifeOf(n) == RankLife::kPaused) {
        // Parked: consume nothing, publish nothing — the failure
        // detector watches the heartbeat age out.
        while (lifeOf(n) == RankLife::kPaused &&
               !stopping_.load(std::memory_order_acquire) &&
               !n.crash_requested.load(std::memory_order_acquire))
          MonotonicClock::sleepFor(100e-6);
        continue;
      }
      n.heartbeat.store(clock_.now(), std::memory_order_relaxed);
    }
    n.pub_wheel_pending.store(n.wheel.pending(), std::memory_order_relaxed);
    n.pub_spill.store(n.spill_size, std::memory_order_relaxed);

    const int fired = n.wheel.fireDue(clock_.now());
    if (fired > 0) {
      n.timers_fired += fired;
      pending_.fetch_sub(fired, std::memory_order_release);
    }
    flushSpill(n);

    double wait = cfg_.max_idle_wait_s;
    const SimTime next = n.wheel.nextDeadline();
    if (std::isfinite(next)) {
      const double until = next - clock_.now();
      if (until <= 0.0) continue;  // due already: fire before sleeping
      wait = std::min(wait, until);
    }
    if (n.spill_size != 0) wait = std::min(wait, 1e-4);  // retry spill soon

    Envelope e;
    if (!n.mailbox.pop(e, wait)) continue;
    switch (e.kind) {
      case Envelope::Kind::kState:
        ++n.delivered_state;
        LOADEX_EXPECT(n.handler != nullptr, "state message with no handler");
        n.handler->onStateMessage(e.msg);
        break;
      case Envelope::Kind::kTask:
        ++n.delivered_task;
        e.fn();
        break;
      case Envelope::Kind::kStop:
        pending_.fetch_sub(1, std::memory_order_release);
        return;
    }
    // Decrement only after the handler ran: anything it posted is already
    // counted, so pending can never dip to a false zero mid-chain.
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

// ---- M:N sharded executor -------------------------------------------------

void RtWorld::workerLoop(int w) {
  // Fastest idle re-poll; backs off exponentially to max_idle_wait_s so
  // a sparse message chain sees ~tens of µs latency while a truly idle
  // pool costs one wake per worker per max_idle_wait_s.
  constexpr double kMinIdleS = 20e-6;
  const auto batch =
      static_cast<std::size_t>(std::max(1, cfg_.executor.drain_batch));
  std::vector<Envelope> scratch(batch);
  double backoff = kMinIdleS;
  // Steal-rate accounting: plain worker-locals on the hot path, folded
  // into the world atomics (and the obs registry, per worker) at exit.
  std::int64_t visits_home = 0;
  std::int64_t visits_stolen = 0;
  const auto fold_visits = [&] {
    shard_visits_home_.fetch_add(visits_home, std::memory_order_relaxed);
    shard_visits_stolen_.fetch_add(visits_stolen, std::memory_order_relaxed);
    LOADEX_METRIC(counter("rt/worker" + std::to_string(w) + "/visits_home")
                      .add(visits_home));
    LOADEX_METRIC(counter("rt/worker" + std::to_string(w) + "/visits_stolen")
                      .add(visits_stolen));
  };
  for (;;) {
    Pass pass;
    // Home pass: the shards this worker owns (s ≡ w mod workers). A
    // try_lock miss means another worker is in there stealing — the
    // shard's work is being done either way.
    for (int s = w; s < n_shards_; s += n_workers_)
      if (tryRunShard(*shards_[static_cast<std::size_t>(s)], scratch, pass))
        ++visits_home;
    // Steal pass: opportunistically visit everyone else's shards. One
    // shard lock at a time (the home pass released before this), so no
    // worker ever nests two kShard acquisitions.
    if (cfg_.executor.steal) {
      for (int off = 1; off < n_shards_; ++off) {
        const int s = (w + off) % n_shards_;
        if (s % n_workers_ == w) continue;  // home, already visited
        if (tryRunShard(*shards_[static_cast<std::size_t>(s)], scratch, pass))
          ++visits_stolen;
      }
    }
    if (stopping_.load(std::memory_order_acquire) &&
        stops_remaining_.load(std::memory_order_acquire) <= 0) {
      fold_visits();
      return;
    }
    if (pass.did_work) {
      backoff = kMinIdleS;
      continue;
    }
    // Armed timers / pending spill cap the sleep so neither is stalled
    // by a full backoff (mirrors the legacy loop's wait clamping).
    MonotonicClock::sleepFor(pass.urgent ? std::min(backoff, 1e-4)
                                         : backoff);
    backoff = std::min(backoff * 2.0, cfg_.max_idle_wait_s);
  }
}

bool RtWorld::tryRunShard(Shard& sh, std::vector<Envelope>& scratch,
                          Pass& pass) {
  if (!sh.mu.try_lock()) return false;
  runShardLocked(sh, scratch, pass);
  sh.mu.unlock();
  return true;
}

void RtWorld::runShardLocked(Shard& sh, std::vector<Envelope>& scratch,
                             Pass& pass) {
  for (Node* np : sh.members) processShardNode(sh, *np, scratch, pass);
}

void RtWorld::processShardNode(Shard& sh, Node& n,
                               std::vector<Envelope>& scratch, Pass& pass) {
  (void)sh;  // the capability the annotation names; unused at runtime
  if (n.stopped) return;
  if (fault_hooks_) {
    const RankLife life = lifeOf(n);
    if (life == RankLife::kCrashed) return;  // sealed: driver tore it down
    if (life == RankLife::kPaused) {
      // Parked: consume nothing until resumed — except during stop,
      // when the kStop must drain (the legacy loop unparks then too).
      if (!stopping_.load(std::memory_order_acquire)) return;
    } else {
      n.heartbeat.store(clock_.now(), std::memory_order_relaxed);
    }
  }
  // Handlers observe the rank they run as via the same thread-local the
  // legacy loop uses; reset before the worker moves to the next rank.
  t_current_node = &n;
  n.pub_wheel_pending.store(n.wheel.pending(), std::memory_order_relaxed);
  n.pub_spill.store(n.spill_size, std::memory_order_relaxed);

  const int fired = n.wheel.fireDue(clock_.now());
  if (fired > 0) {
    n.timers_fired += fired;
    pending_.fetch_sub(fired, std::memory_order_release);
    pass.did_work = true;
  }
  flushSpill(n);

  const std::size_t k = n.mailbox.tryPopBatch(scratch.data(), scratch.size());
  for (std::size_t i = 0; i < k; ++i) {
    Envelope& e = scratch[i];
    switch (e.kind) {
      case Envelope::Kind::kState:
        ++n.delivered_state;
        LOADEX_EXPECT(n.handler != nullptr, "state message with no handler");
        n.handler->onStateMessage(e.msg);
        break;
      case Envelope::Kind::kTask:
        ++n.delivered_task;
        e.fn();
        break;
      case Envelope::Kind::kStop:
        // Mark the rank done but deliver the rest of the batch — an
        // envelope behind a kStop only exists on undrained stops, and
        // delivering beats stranding it.
        n.stopped = true;
        pending_.fetch_sub(1, std::memory_order_release);
        stops_remaining_.fetch_sub(1, std::memory_order_release);
        e = Envelope{};
        continue;
    }
    // Decrement only after the handler ran: anything it posted is
    // already counted, so pending can never dip to a false zero.
    pending_.fetch_sub(1, std::memory_order_release);
    e = Envelope{};  // drop payload/closure refs eagerly
  }
  if (k > 0) pass.did_work = true;
  if (n.wheel.pending() > 0 || n.spill_size > 0) pass.urgent = true;
  t_current_node = nullptr;
}

// ---- stats ----------------------------------------------------------------

RtWorld::LifecycleCounts RtWorld::lifecycleCounts() const {
  LifecycleCounts c;
  c.crashes = crashes_.load(std::memory_order_relaxed);
  c.restarts = restarts_.load(std::memory_order_relaxed);
  c.suspects_flagged = suspects_flagged_.load(std::memory_order_relaxed);
  c.deaths_declared = deaths_declared_.load(std::memory_order_relaxed);
  c.revives = revives_.load(std::memory_order_relaxed);
  return c;
}

RtRunStats RtWorld::runStats() const {
  RtRunStats s;
  s.state_posted = state_posted_.load(std::memory_order_relaxed);
  s.state_bytes = state_bytes_.load(std::memory_order_relaxed);
  s.task_posted = task_posted_.load(std::memory_order_relaxed);
  s.timers_armed = timers_armed_.load(std::memory_order_relaxed);
  s.spill_enqueues = spill_enqueues_.load(std::memory_order_relaxed);
  s.shard_visits_home = shard_visits_home_.load(std::memory_order_relaxed);
  s.shard_visits_stolen =
      shard_visits_stolen_.load(std::memory_order_relaxed);
  s.state_dropped = state_dropped_.load(std::memory_order_relaxed);
  s.task_dropped = task_dropped_.load(std::memory_order_relaxed);
  s.state_duplicated = state_duplicated_.load(std::memory_order_relaxed);
  s.task_duplicated = task_duplicated_.load(std::memory_order_relaxed);
  s.fault_drops = fault_drops_.load(std::memory_order_relaxed);
  s.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  s.dropped_at_sealed_mailbox =
      dropped_at_sealed_mailbox_.load(std::memory_order_relaxed);
  s.crash_discards = crash_discards_.load(std::memory_order_relaxed);
  s.timers_cancelled = timers_cancelled_.load(std::memory_order_relaxed);
  s.crashes = crashes_.load(std::memory_order_relaxed);
  s.restarts = restarts_.load(std::memory_order_relaxed);
  s.resyncs = resyncs_.load(std::memory_order_relaxed);
  s.suspects_flagged = suspects_flagged_.load(std::memory_order_relaxed);
  s.deaths_declared = deaths_declared_.load(std::memory_order_relaxed);
  s.revives = revives_.load(std::memory_order_relaxed);
  for (const auto& n : nodes_) {
    s.state_delivered += n->delivered_state;
    s.task_delivered += n->delivered_task;
    s.timers_fired += n->timers_fired;
    const MailboxStats ms = n->mailbox.stats();
    s.mailbox_pushes += ms.pushes;
    s.mailbox_pops += ms.pops;
    s.mailbox_full_rejections += ms.full_rejections;
    s.mailbox_blocking_waits += ms.blocking_waits;
  }
  return s;
}

}  // namespace loadex::rt
