#include "rt/world.h"

#include <cmath>
#include <utility>

#include "common/expect.h"

namespace loadex::rt {

// ---- RtTransport ----------------------------------------------------------

int RtTransport::nprocs() const { return world_.nprocs(); }

SimTime RtTransport::now() const { return world_.now(); }

void RtTransport::sendState(Rank dst, core::StateTag tag, Bytes size,
                            std::shared_ptr<const sim::Payload> payload) {
  world_.postState(self_, dst, tag, size, std::move(payload));
}

void RtTransport::schedule(SimTime delay, std::function<void()> fn) {
  world_.scheduleOnCallingNode(delay, std::move(fn));
}

// ---- RtWorld lifecycle ----------------------------------------------------

RtWorld::RtWorld(RtConfig cfg) : cfg_(cfg) {
  LOADEX_EXPECT(cfg_.nprocs >= 1, "RtWorld needs at least one rank");
  nodes_.reserve(static_cast<std::size_t>(cfg_.nprocs));
  for (Rank r = 0; r < cfg_.nprocs; ++r) {
    nodes_.push_back(std::make_unique<Node>(cfg_, r));
    nodes_.back()->transport = std::make_unique<RtTransport>(*this, r);
  }
}

RtWorld::~RtWorld() { stop(); }

std::vector<core::Transport*> RtWorld::transports() {
  std::vector<core::Transport*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n->transport.get());
  return out;
}

void RtWorld::attach(Rank r, sim::StateHandler* handler) {
  LOADEX_EXPECT(!started_, "attach() must precede start()");
  node(r).handler = handler;
}

void RtWorld::start() {
  LOADEX_EXPECT(!started_, "RtWorld can only start once");
  started_ = true;
  for (auto& n : nodes_)
    n->thread = std::thread(&RtWorld::nodeLoop, this, std::ref(*n));
}

void RtWorld::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& n : nodes_) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    Envelope e;
    e.kind = Envelope::Kind::kStop;
    n->mailbox.push(std::move(e));
  }
  for (auto& n : nodes_)
    if (n->thread.joinable()) n->thread.join();
}

bool RtWorld::drain(double timeout_s) {
  const SimTime deadline = clock_.now() + timeout_s;
  for (;;) {
    if (pending_.load(std::memory_order_acquire) == 0) return true;
    if (clock_.now() >= deadline) break;
    MonotonicClock::sleepFor(50e-6);
  }
  return pending_.load(std::memory_order_acquire) == 0;
}

// ---- node access ----------------------------------------------------------

RtWorld::Node& RtWorld::node(Rank r) {
  LOADEX_EXPECT(r >= 0 && r < nprocs(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(r)];
}

const RtWorld::Node& RtWorld::node(Rank r) const {
  LOADEX_EXPECT(r >= 0 && r < nprocs(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(r)];
}

thread_local RtWorld::Node* RtWorld::t_current_node = nullptr;

RtWorld::Node& RtWorld::callingNode() {
  LOADEX_EXPECT(t_current_node != nullptr, "not on a node thread");
  return *t_current_node;
}

// ---- posting --------------------------------------------------------------

void RtWorld::postState(Rank src, Rank dst, core::StateTag tag, Bytes size,
                        std::shared_ptr<const sim::Payload> payload) {
  state_posted_.fetch_add(1, std::memory_order_relaxed);
  state_bytes_.fetch_add(size, std::memory_order_relaxed);
  Envelope e;
  e.kind = Envelope::Kind::kState;
  e.msg = sim::Message{src, dst, sim::Channel::kState, static_cast<int>(tag),
                       size, std::move(payload)};
  pending_.fetch_add(1, std::memory_order_relaxed);
  // Mechanisms send only from their own node thread; route through that
  // node's spill queue so a full peer mailbox never blocks the sender.
  Node& sender = node(src);
  LOADEX_EXPECT(&callingNode() == &sender,
                "mechanism API driven off its node thread (post a closure "
                "with RtWorld::post instead)");
  sendFromNode(sender, dst, std::move(e));
}

void RtWorld::scheduleOnCallingNode(double delay, std::function<void()> fn) {
  Node& n = callingNode();
  timers_armed_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_relaxed);
  n.wheel.schedule(clock_.now(), delay, std::move(fn));
}

void RtWorld::post(Rank r, std::function<void()> fn) {
  LOADEX_EXPECT(started_ && !stopped_, "post() needs a running world");
  task_posted_.fetch_add(1, std::memory_order_relaxed);
  Envelope e;
  e.kind = Envelope::Kind::kTask;
  e.fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  node(r).mailbox.push(std::move(e));  // blocking backpressure: driver only
}

void RtWorld::postWhenFree(Rank r, std::function<void()> fn, double retry_s) {
  post(r, [this, r, fn = std::move(fn), retry_s]() mutable {
    runWhenFree(node(r), std::move(fn), retry_s);
  });
}

void RtWorld::postTask(Rank from, Rank to, std::function<void()> fn) {
  task_posted_.fetch_add(1, std::memory_order_relaxed);
  Envelope e;
  e.kind = Envelope::Kind::kTask;
  e.fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  Node& src = node(from);
  LOADEX_EXPECT(&callingNode() == &src,
                "postTask must run on the `from` node's thread");
  sendFromNode(src, to, std::move(e));
}

void RtWorld::sendFromNode(Node& src, Rank dst, Envelope&& e) {
  auto& q = src.spill[static_cast<std::size_t>(dst)];
  // Once a destination has spilled, later envelopes to it must queue
  // behind the spill or per-pair FIFO breaks.
  if (q.empty() && node(dst).mailbox.tryPush(std::move(e))) return;
  q.push_back(std::move(e));
  ++src.spill_size;
  spill_enqueues_.fetch_add(1, std::memory_order_relaxed);
}

void RtWorld::flushSpill(Node& n) {
  if (n.spill_size == 0) return;
  for (Rank d = 0; d < nprocs(); ++d) {
    auto& q = n.spill[static_cast<std::size_t>(d)];
    while (!q.empty()) {
      // tryPush only consumes its argument on success, so a failed
      // attempt leaves q.front() intact for the next loop turn.
      if (!node(d).mailbox.tryPush(std::move(q.front()))) break;
      q.pop_front();
      --n.spill_size;
    }
  }
}

void RtWorld::runWhenFree(Node& n, std::function<void()>&& fn,
                          double retry_s) {
  if (n.handler != nullptr && n.handler->blocksComputation()) {
    // Defer: arm a retry timer carrying the closure forward. No
    // self-referencing callback — each deferral builds a fresh one.
    timers_armed_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1, std::memory_order_relaxed);
    n.wheel.schedule(clock_.now(), retry_s,
                     [this, &n, fn = std::move(fn), retry_s]() mutable {
                       runWhenFree(n, std::move(fn), retry_s);
                     });
    return;
  }
  fn();
}

// ---- node main loop -------------------------------------------------------

void RtWorld::nodeLoop(Node& n) {
  t_current_node = &n;
  for (;;) {
    const int fired = n.wheel.fireDue(clock_.now());
    if (fired > 0) {
      n.timers_fired += fired;
      pending_.fetch_sub(fired, std::memory_order_release);
    }
    flushSpill(n);

    double wait = cfg_.max_idle_wait_s;
    const SimTime next = n.wheel.nextDeadline();
    if (std::isfinite(next)) {
      const double until = next - clock_.now();
      if (until <= 0.0) continue;  // due already: fire before sleeping
      wait = std::min(wait, until);
    }
    if (n.spill_size != 0) wait = std::min(wait, 1e-4);  // retry spill soon

    Envelope e;
    if (!n.mailbox.pop(e, wait)) continue;
    switch (e.kind) {
      case Envelope::Kind::kState:
        ++n.delivered_state;
        LOADEX_EXPECT(n.handler != nullptr, "state message with no handler");
        n.handler->onStateMessage(e.msg);
        break;
      case Envelope::Kind::kTask:
        ++n.delivered_task;
        e.fn();
        break;
      case Envelope::Kind::kStop:
        pending_.fetch_sub(1, std::memory_order_release);
        return;
    }
    // Decrement only after the handler ran: anything it posted is already
    // counted, so pending can never dip to a false zero mid-chain.
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

// ---- stats ----------------------------------------------------------------

RtRunStats RtWorld::runStats() const {
  RtRunStats s;
  s.state_posted = state_posted_.load(std::memory_order_relaxed);
  s.state_bytes = state_bytes_.load(std::memory_order_relaxed);
  s.task_posted = task_posted_.load(std::memory_order_relaxed);
  s.timers_armed = timers_armed_.load(std::memory_order_relaxed);
  s.spill_enqueues = spill_enqueues_.load(std::memory_order_relaxed);
  for (const auto& n : nodes_) {
    s.state_delivered += n->delivered_state;
    s.task_delivered += n->delivered_task;
    s.timers_fired += n->timers_fired;
    const MailboxStats ms = n->mailbox.stats();
    s.mailbox_pushes += ms.pushes;
    s.mailbox_full_rejections += ms.full_rejections;
    s.mailbox_blocking_waits += ms.blocking_waits;
  }
  return s;
}

}  // namespace loadex::rt
