// Seeded workload scripts shared by the simulator and the rt runtime.
//
// A Script is a runtime-agnostic plan: timed local-load changes, timed
// master selections (each delegating `share` workload to the least-loaded
// slave in the master's view), and optionally one No_more_master
// announcement. The sim differential suites replay it on simulated time,
// rt::WorkloadDriver replays it on real threads — and because the plan
// (not the execution) fixes the injected load and the number of
// selections, both runtimes must agree on the conservation-style
// quantities in ScriptExpectations no matter how their timings differ.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/load.h"
#include "core/mechanism.h"

namespace loadex::harness {

struct ScriptLoadOp {
  SimTime time = 0.0;
  Rank rank = 0;
  core::LoadMetrics delta;
};

struct ScriptSelectOp {
  SimTime time = 0.0;
  Rank master = 0;
  double share = 0.0;  ///< workload delegated to the chosen slave
};

struct Script {
  std::uint64_t seed = 0;
  int nprocs = 4;
  core::MechanismKind kind = core::MechanismKind::kNaive;
  bool hardened = false;  ///< increment only: reliable_updates
  double threshold = 5.0;
  std::vector<ScriptLoadOp> loads;
  std::vector<ScriptSelectOp> selections;
  Rank no_more_master = kNoRank;
  SimTime no_more_master_at = 0.0;
};

/// What any faithful replay must observe at quiescence, independent of
/// message timing: every selection commits exactly once, and the total
/// load in the system is the scripted injections plus the delegated
/// shares (a share moves *new* work onto one slave; which slave is
/// timing-dependent, the amount is not).
struct ScriptExpectations {
  std::int64_t selections = 0;
  core::LoadMetrics total_load;
};

inline ScriptExpectations expectationsOf(const Script& s) {
  ScriptExpectations e;
  e.selections = static_cast<std::int64_t>(s.selections.size());
  for (const auto& op : s.loads) e.total_load += op.delta;
  for (const auto& op : s.selections) e.total_load += {op.share, 0.0};
  return e;
}

/// The scripted scheduling policy, shared verbatim by every replay:
/// delegate to the rank (other than the master) with the least viewed
/// workload, lowest rank winning ties.
inline Rank leastLoadedSlave(const core::LoadView& v, Rank self) {
  // Degradation-aware: never pick a rank declared dead, and fall back to
  // a suspect (missed heartbeats, not declared dead) only when no
  // healthy candidate exists. On a fault-free run every rank is healthy
  // and this reduces to the plain least-loaded scan.
  Rank best = kNoRank;
  Rank best_suspect = kNoRank;
  for (Rank r = 0; r < v.nprocs(); ++r) {
    if (r == self || v.dead(r)) continue;
    Rank& slot = v.suspect(r) ? best_suspect : best;
    if (slot == kNoRank || v.load(r).workload < v.load(slot).workload)
      slot = r;
  }
  return best != kNoRank ? best : best_suspect;
}

/// Draw a script from a seed: world size, mechanism, threshold, a few
/// dozen load changes, a handful of selections, sometimes No_more_master.
inline Script drawScript(std::uint64_t seed, int min_procs = 4,
                         int max_procs = 16) {
  Rng rng(seed);
  Script s;
  s.seed = seed;
  s.nprocs = min_procs + static_cast<int>(rng.uniformInt(
                             static_cast<std::uint64_t>(
                                 max_procs - min_procs + 1)));
  switch (rng.uniformInt(3)) {
    case 0: s.kind = core::MechanismKind::kNaive; break;
    case 1: s.kind = core::MechanismKind::kIncrement; break;
    default: s.kind = core::MechanismKind::kSnapshot; break;
  }
  if (s.kind == core::MechanismKind::kIncrement)
    s.hardened = rng.uniformInt(2) == 0;
  s.threshold = rng.uniformReal(0.5, 15.0);

  const auto randRank = [&] {
    return static_cast<Rank>(
        rng.uniformInt(static_cast<std::uint64_t>(s.nprocs)));
  };

  const int nloads = s.nprocs * 4 + static_cast<int>(rng.uniformInt(20));
  for (int i = 0; i < nloads; ++i)
    s.loads.push_back({rng.uniformReal(0.01, 1.0), randRank(),
                       {rng.uniformReal(-4.0, 24.0),
                        rng.uniformReal(0.0, 8.0)}});

  const int nsel = 1 + static_cast<int>(rng.uniformInt(4));
  for (int i = 0; i < nsel; ++i)
    s.selections.push_back({0.3 + 0.25 * i + rng.uniformReal(0.0, 0.1),
                            randRank(), rng.uniformReal(5.0, 40.0)});

  if (rng.uniformInt(4) == 0) {
    s.no_more_master = randRank();
    s.no_more_master_at = rng.uniformReal(0.6, 0.9);
  }
  return s;
}

}  // namespace loadex::harness
