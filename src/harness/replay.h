// Replay plumbing shared by every driver that executes a seeded plan
// against the mechanisms: the sim differential suites, rt::WorkloadDriver
// (harness::Script) and the svc dispatchers (svc::ArrivalScript).
//
// Two pieces live here so the runtimes cannot drift apart:
//
//   orderedScriptOps  — the one time-ordering of a Script's mixed op
//     streams (loads / selections / No_more_master), with declaration
//     order as the stable tie-break. Both replays must walk the same
//     sequence or "same plan" stops meaning anything.
//
//   selectAndCommit   — the one master-side decision step: requestView,
//     pick with the shared leastLoadedSlave policy, and commit *exactly
//     once inside the view callback* — including the degraded skip path,
//     which must still close the view with an empty selection (the
//     snapshot mechanism keeps the system frozen until the decision is
//     committed). The skip-path commit is the PR 6 WorkloadDriver fix;
//     hoisting it here keeps it in one place.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/mechanism.h"
#include "harness/script.h"

namespace loadex::harness {

/// Uniform, time-ordered view of a Script's operations. `index` points
/// into the script vector selected by `what`.
struct ScriptOpRef {
  SimTime time = 0.0;
  int order = 0;  ///< stable tie-break: script declaration order
  enum class What : std::uint8_t { kLoad, kSelect, kNoMoreMaster } what =
      What::kLoad;
  std::size_t index = 0;
};

inline std::vector<ScriptOpRef> orderedScriptOps(const Script& s) {
  std::vector<ScriptOpRef> ops;
  ops.reserve(s.loads.size() + s.selections.size() + 1);
  int order = 0;
  for (std::size_t i = 0; i < s.loads.size(); ++i)
    ops.push_back({s.loads[i].time, order++, ScriptOpRef::What::kLoad, i});
  for (std::size_t i = 0; i < s.selections.size(); ++i)
    ops.push_back(
        {s.selections[i].time, order++, ScriptOpRef::What::kSelect, i});
  if (s.no_more_master != kNoRank)
    ops.push_back({s.no_more_master_at, order++,
                   ScriptOpRef::What::kNoMoreMaster, 0});
  std::sort(ops.begin(), ops.end(),
            [](const ScriptOpRef& a, const ScriptOpRef& b) {
              return a.time != b.time ? a.time < b.time : a.order < b.order;
            });
  return ops;
}

/// One dynamic scheduling decision through a mechanism: request a view,
/// delegate `share` to the least-loaded healthy slave, and commit exactly
/// once before returning from the view callback.
///
/// on_chosen(view, slave) runs after the commit, on the mechanism's
/// execution context (synchronously for the maintained-view mechanisms,
/// from the snapshot-completion callback otherwise) — send the work
/// envelope there. on_skip(view) runs after the empty commit when every
/// peer is dead or untrusted; the work stays local.
template <typename OnChosen, typename OnSkip>
void selectAndCommit(core::Mechanism& m, const core::LoadMetrics& share,
                     OnChosen on_chosen, OnSkip on_skip) {
  m.requestView([&m, share, on_chosen = std::move(on_chosen),
                 on_skip = std::move(on_skip)](const core::LoadView& v) {
    const Rank slave = leastLoadedSlave(v, m.self());
    if (slave == kNoRank) {
      // Degraded decision: the snapshot mechanism still requires the
      // decision to be committed inside the callback — an empty
      // selection closes it without delegating anything.
      m.commitSelection({});
      on_skip(v);
      return;
    }
    m.commitSelection({{slave, share}});
    on_chosen(v, slave);
  });
}

}  // namespace loadex::harness
