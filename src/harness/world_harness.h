// Shared world-building harness for scripted mechanism scenarios.
//
// Tests and benchmark drivers both need the same scaffolding: a World, one
// mechanism per rank, a minimal application that accounts delegated work,
// and scheduling helpers that respect snapshot blocking. This header is the
// single home for that scaffolding — tests/sim_test_utils.h re-exports it
// under the historical loadex::test names, and the scale benches build
// their synthetic workloads on top of it.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/audit.h"
#include "core/binding.h"
#include "core/mechanism.h"
#include "sim/application.h"
#include "sim/world.h"

namespace loadex::harness {

/// Application task payload used by scripted scenarios.
struct WorkPayload final : sim::Payload {
  Flops work = 0.0;
  core::LoadMetrics load_delta;   ///< applied on arrival via addLocalLoad
  bool is_slave_delegated = false;
};

inline constexpr int kWorkTag = 100;

/// A minimal application: per-rank FIFO of compute tasks; received
/// WorkPayload messages account their load with the local mechanism and
/// enqueue a task of the given size.
class ScriptedApp : public sim::Application {
 public:
  explicit ScriptedApp(int nprocs) : queues_(static_cast<std::size_t>(nprocs)) {}

  void setMechanisms(core::MechanismSet* mechs) { mechs_ = mechs; }

  void pushTask(Rank r, Flops work,
                std::function<void(sim::Process&)> on_complete = {}) {
    queues_[static_cast<std::size_t>(r)].push_back(
        sim::ComputeTask{work, "scripted", std::move(on_complete)});
  }

  void onAppMessage(sim::Process& p, const sim::Message& m) override {
    const auto& w = m.as<WorkPayload>();
    if (mechs_ != nullptr && !w.load_delta.isZero()) {
      mechs_->at(p.rank()).addLocalLoad(w.load_delta, w.is_slave_delegated);
    }
    pushTask(p.rank(), w.work);
  }

  std::optional<sim::ComputeTask> nextTask(sim::Process& p) override {
    auto& q = queues_[static_cast<std::size_t>(p.rank())];
    if (q.empty()) return std::nullopt;
    sim::ComputeTask t = std::move(q.front());
    q.pop_front();
    return t;
  }

  bool finished(const sim::Process& p) const override {
    return queues_[static_cast<std::size_t>(p.rank())].empty();
  }

 private:
  std::vector<std::deque<sim::ComputeTask>> queues_;
  core::MechanismSet* mechs_ = nullptr;
};

/// World + per-rank mechanisms + scripted app, wired together.
struct CoreHarness {
  sim::World world;
  core::MechanismSet mechs;
  ScriptedApp app;

  explicit CoreHarness(int nprocs, core::MechanismKind kind,
                       core::MechanismConfig config = {},
                       sim::WorldConfig wcfg = {})
      : world([&] {
          wcfg.nprocs = nprocs;
          return wcfg;
        }()),
        mechs(world, kind, config),
        app(nprocs) {
    app.setMechanisms(&mechs);
    for (Rank r = 0; r < nprocs; ++r) world.attach(r, &app, &mechs.at(r));
  }

  /// Attach a ProtocolAuditor verifying paper-level invariants online.
  /// Call finishAudit() after run() to add the quiescence checks and
  /// hard-fail on any recorded violation.
  core::ProtocolAuditor& attachAuditor(core::AuditorConfig cfg = {}) {
    auditor = std::make_unique<core::ProtocolAuditor>(cfg);
    auditor->attach(mechs, &world);
    return *auditor;
  }

  void finishAudit() {
    if (auditor == nullptr) return;
    auditor->finish();
    auditor->expectClean();
  }

  std::unique_ptr<core::ProtocolAuditor> auditor;

  /// Schedule an action at an absolute simulated time.
  void at(SimTime t, std::function<void()> fn) {
    world.queue().scheduleAt(t, std::move(fn));
  }

  /// Schedule an action at time t, deferring (by `retry` steps) while the
  /// rank's mechanism blocks computation — mirrors how a real process can
  /// only take decisions between tasks, never while a snapshot is live.
  /// The retry closure lives in retry_tasks_ (stable deque addresses) so it
  /// can re-schedule itself without a shared_ptr self-reference cycle.
  void atWhenFree(SimTime t, Rank who, std::function<void()> fn,
                  SimTime retry = 1e-5) {
    retry_tasks_.emplace_back();
    std::function<void()>* task = &retry_tasks_.back();
    *task = [this, who, fn = std::move(fn), retry, task] {
      if (mechs.at(who).blocksComputation()) {
        world.queue().scheduleAfter(retry, *task);
        return;
      }
      fn();
    };
    world.queue().scheduleAt(t, *task);
  }

  sim::RunResult run() { return world.run(); }

 private:
  std::deque<std::function<void()>> retry_tasks_;
};

/// Send a work message between processes (helper for scenarios).
inline void sendWork(sim::Process& from, Rank to, Flops work,
                     core::LoadMetrics load_delta, bool is_slave_delegated,
                     Bytes size = 1024) {
  auto payload = std::make_shared<WorkPayload>();
  payload->work = work;
  payload->load_delta = load_delta;
  payload->is_slave_delegated = is_slave_delegated;
  from.send(to, sim::Channel::kApp, kWorkTag, size, std::move(payload));
}

}  // namespace loadex::harness
