#include "svc/service_app.h"

#include <utility>

#include "common/expect.h"
#include "harness/replay.h"

namespace loadex::svc {

core::AuditorConfig svcAuditorConfig(bool faulty) {
  core::AuditorConfig a;
  // Requests carry ~1e6-flop work values and a long run delegates 1e5+ of
  // them, so the reservation ledger accumulates double rounding far above
  // the default 1e-6 absolute slack. One flop of tolerance is negligible
  // against any request yet orders of magnitude above that drift.
  a.tolerance = 1.0;
  if (faulty) {
    // A lossy / crashing run violates these by design: delivery gaps,
    // lost increments corrupting remote views, reservations unmatched at
    // a dead server. That degradation is the measurement, not a bug.
    a.allow_message_loss = true;
    a.allow_crashes = true;
    a.check_conservation = false;
    a.check_reservations = false;
  }
  return a;
}

ServiceApp::ServiceApp(const SvcSimConfig& cfg, const ArrivalScript& script,
                       SvcLedger& ledger, core::MechanismSet* mechs)
    : cfg_(cfg),
      script_(script),
      ledger_(ledger),
      mechs_(mechs),
      policy_rng_(cfg.policy_seed),
      queues_(static_cast<std::size_t>(cfg.nprocs)) {
  LOADEX_EXPECT(cfg.nprocs >= 2, "svc needs a dispatcher and a server");
  LOADEX_EXPECT((mechs != nullptr) == policyUsesMechanism(cfg.policy),
                "mechanism set must match the policy kind");
  if (!policyUsesMechanism(cfg.policy))
    policy_ = makePolicy(cfg.policy, cfg.stale_refresh_s);
}

void ServiceApp::onStart(sim::Process& p) {
  const Rank r = p.rank();
  if (r == 0) {
    dispatcher_ = &p;
    if (!script_.arrivals.empty())
      p.queue().scheduleAt(script_.arrivals.front().time,
                           [this] { injectArrival(0); });
    return;
  }
  if (mechs_ != nullptr && cfg_.servers_announce_no_more_master)
    mechs_->at(r).noMoreMaster();
}

void ServiceApp::injectArrival(std::size_t idx) {
  const Arrival& a = script_.arrivals[idx];
  ledger_.arrived(a.id, dispatcher_->now());
  digest_.fold(a);
  pending_.push_back(idx);
  if (idx + 1 < script_.arrivals.size())
    dispatcher_->queue().scheduleAt(script_.arrivals[idx + 1].time,
                                    [this, idx] { injectArrival(idx + 1); });
  dispatchPending();
}

void ServiceApp::dispatchPending() {
  if (draining_) return;  // the active loop below picks the request up
  draining_ = true;
  while (!pending_.empty()) {
    if (mechs_ != nullptr && view_in_flight_) break;
    const std::size_t idx = pending_.front();
    pending_.pop_front();
    const Arrival& a = script_.arrivals[idx];
    if (mechs_ != nullptr) {
      dispatchViaMechanism(a);
    } else {
      dispatchDirect(a);
    }
  }
  draining_ = false;
}

void ServiceApp::dispatchDirect(const Arrival& a) {
  ledger_.snapshotBoard(board_scratch_);
  DispatchContext ctx;
  ctx.servers = &board_scratch_;
  ctx.self = 0;
  ctx.now = dispatcher_->now();
  const Rank server = policy_->choose(ctx, policy_rng_);
  if (server == kNoRank) {
    ledger_.dropped(a.id, DropCause::kNoCandidate, ctx.now);
    return;
  }
  sendRequest(a, server, policy_->lastInfoAge());
}

void ServiceApp::dispatchViaMechanism(const Arrival& a) {
  view_in_flight_ = true;
  core::Mechanism& m = mechs_->at(0);
  harness::selectAndCommit(
      m, {a.work, 0.0},
      [this, a](const core::LoadView& v, Rank slave) {
        const SimTime now = dispatcher_->now();
        // Age of the entry the decision acted on. lastHeardFrom is 0 for
        // a rank never heard from, so early decisions read as "as old as
        // the run" — correct: the view really is that uninformed.
        sendRequest(a, slave, now - v.lastHeardFrom(slave));
        view_in_flight_ = false;
        dispatchPending();
      },
      [this, a](const core::LoadView&) {
        ledger_.dropped(a.id, DropCause::kNoCandidate, dispatcher_->now());
        view_in_flight_ = false;
        dispatchPending();
      });
}

void ServiceApp::sendRequest(const Arrival& a, Rank server,
                             double info_age) {
  ledger_.dispatched(a.id, server, a.work, dispatcher_->now(), info_age);
  auto payload = std::make_shared<RequestPayload>();
  payload->id = a.id;
  payload->work = a.work;
  dispatcher_->send(server, sim::Channel::kApp, kSvcRequestTag, a.bytes,
                    std::move(payload));
}

void ServiceApp::onAppMessage(sim::Process& p, const sim::Message& m) {
  if (m.tag != kSvcRequestTag) return;
  const auto& req = m.as<RequestPayload>();
  // Zombie delivery: the request was already dropped at a crash (it was
  // in flight while the server was down and got here after the restart).
  if (ledger_.terminal(req.id)) return;
  const Rank r = p.rank();
  ledger_.enqueued(req.id, p.now());
  queues_[static_cast<std::size_t>(r)].push_back({req.id, req.work});
  // Delegated load: the master's reservation already announced it
  // (Alg. 3 line (1) — positive delegated deltas are not self-reported).
  if (mechs_ != nullptr)
    mechs_->at(r).addLocalLoad({req.work, 0.0}, /*is_slave_delegated=*/true);
}

std::optional<sim::ComputeTask> ServiceApp::nextTask(sim::Process& p) {
  const Rank r = p.rank();
  if (r == 0) return std::nullopt;  // the dispatcher never computes
  auto& q = queues_[static_cast<std::size_t>(r)];
  if (q.empty()) return std::nullopt;
  const QueuedRequest req = q.front();
  q.pop_front();
  ledger_.started(req.id, p.now());
  sim::ComputeTask task;
  task.work = req.work;
  task.label = "svc";
  task.on_complete = [this, req](sim::Process& pp) {
    ledger_.completed(req.id, pp.now());
    if (mechs_ != nullptr)
      mechs_->at(pp.rank()).addLocalLoad({-req.work, 0.0});
  };
  return task;
}

bool ServiceApp::finished(const sim::Process& p) const {
  const Rank r = p.rank();
  if (r == 0) return pending_.empty();
  return queues_[static_cast<std::size_t>(r)].empty();
}

void ServiceApp::onProcessFault(sim::Process& p,
                                loadex::ProcessFaultEvent::Kind kind) {
  const Rank r = p.rank();
  if (r == 0) return;  // svc scenarios never crash the dispatcher
  if (kind == loadex::ProcessFaultEvent::Kind::kCrash) {
    ledger_.setAlive(r, false);
    ledger_.dropAssignedTo(r, p.now());
    queues_[static_cast<std::size_t>(r)].clear();
    if (mechs_ != nullptr) {
      // Zero the dead server's load accounting. The broadcast this would
      // normally trigger is silently lost (a crashed process transmits
      // nothing), so the survivors keep reading the stale pre-crash
      // value — the exact staleness pathology under study.
      const core::LoadMetrics lost = mechs_->at(r).localLoad();
      if (!lost.isZero())
        mechs_->at(r).addLocalLoad({-lost.workload, -lost.memory});
    }
  } else if (kind == loadex::ProcessFaultEvent::Kind::kRestart) {
    ledger_.setAlive(r, true);
    if (mechs_ != nullptr) mechs_->at(r).onRestart();
  }
}

SvcSimResult runSvcSim(const SvcSimConfig& cfg,
                       const ArrivalScript& script) {
  sim::WorldConfig wcfg;
  wcfg.nprocs = cfg.nprocs;
  wcfg.network = cfg.network;
  wcfg.process = cfg.process;
  wcfg.speed_factors = cfg.speed_factors;
  wcfg.process_faults = cfg.process_faults;
  sim::World world(wcfg);

  std::unique_ptr<core::MechanismSet> mechs;
  std::unique_ptr<core::ProtocolAuditor> auditor;
  if (policyUsesMechanism(cfg.policy)) {
    mechs = std::make_unique<core::MechanismSet>(
        world, mechanismKindOf(cfg.policy), cfg.mech);
    if (cfg.attach_auditor) {
      core::AuditorConfig acfg = cfg.audit;
      // Announcers stop receiving updates, so their views go stale on
      // purpose; the cross-view coherence check no longer applies (same
      // gating as the rt differential suite).
      if (cfg.servers_announce_no_more_master)
        acfg.check_conservation = false;
      auditor = std::make_unique<core::ProtocolAuditor>(acfg);
      auditor->attach(*mechs, &world);
    }
  }

  SvcLedger ledger(static_cast<std::int64_t>(script.arrivals.size()),
                   cfg.nprocs);
  ServiceApp app(cfg, script, ledger, mechs.get());
  for (Rank r = 0; r < cfg.nprocs; ++r)
    world.attach(r, &app,
                 mechs != nullptr
                     ? static_cast<sim::StateHandler*>(&mechs->at(r))
                     : nullptr);

  const sim::RunResult run = world.run();
  LOADEX_EXPECT(!run.hit_limit, "svc run hit the event/time guard");
  const LedgerTotals totals = ledger.finalize(run.end_time);
  ledger.expectConserved();
  if (auditor != nullptr) {
    auditor->finish();
    auditor->expectClean();
  }

  return SvcSimResult{run,
                      totals,
                      ledger.sojourn(),
                      ledger.queueWait(),
                      ledger.service(),
                      ledger.meanInfoAge(),
                      app.injectedDigest(),
                      mechs != nullptr ? mechs->aggregateStats()
                                       : core::MechanismStats{}};
}

}  // namespace loadex::svc
