#include "svc/arrivals.h"

#include <cstring>
#include <limits>

#include "common/expect.h"
#include "common/rng.h"

namespace loadex::svc {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t bitsOf(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

void ArrivalDigest::fold(const Arrival& a) {
  h_ = fnv1a(h_, static_cast<std::uint64_t>(a.id));
  h_ = fnv1a(h_, bitsOf(a.time));
  h_ = fnv1a(h_, bitsOf(a.work));
}

std::uint64_t ArrivalScript::digest() const {
  ArrivalDigest d;
  for (const Arrival& a : arrivals) d.fold(a);
  return d.value();
}

ArrivalScript generateArrivals(const ArrivalConfig& cfg) {
  LOADEX_EXPECT(cfg.n_requests >= 0, "n_requests must be non-negative");
  LOADEX_EXPECT(cfg.mean_work > 0.0, "mean_work must be positive");
  if (cfg.phases.empty()) {
    LOADEX_EXPECT(cfg.rate_hz > 0.0, "rate_hz must be positive");
  } else {
    for (const ArrivalPhase& ph : cfg.phases) {
      LOADEX_EXPECT(ph.rate_hz > 0.0, "phase rate must be positive");
      LOADEX_EXPECT(ph.mean_duration_s > 0.0,
                    "phase mean duration must be positive");
    }
  }

  // Two independent streams so adding/removing phases never perturbs the
  // per-request work sequence: `clock` drives times (and dwell draws),
  // `body` draws service demands.
  Rng clock(cfg.seed, /*stream=*/1);
  Rng body(cfg.seed, /*stream=*/2);

  ArrivalScript script;
  script.arrivals.reserve(static_cast<std::size_t>(cfg.n_requests));

  SimTime t = 0.0;
  std::size_t phase = 0;
  SimTime phase_end = std::numeric_limits<SimTime>::infinity();
  if (!cfg.phases.empty())
    phase_end = clock.exponential(1.0 / cfg.phases[0].mean_duration_s);

  for (std::int64_t id = 0; id < cfg.n_requests; ++id) {
    const double rate =
        cfg.phases.empty() ? cfg.rate_hz : cfg.phases[phase].rate_hz;
    SimTime gap = clock.exponential(rate);
    // Exact MMPP switching: a gap crossing the phase boundary is replaced
    // by a fresh draw at the new rate, starting from the boundary
    // (memorylessness makes this equivalent to the modulated process).
    while (t + gap > phase_end) {
      t = phase_end;
      phase = (phase + 1) % cfg.phases.size();
      phase_end =
          t + clock.exponential(1.0 / cfg.phases[phase].mean_duration_s);
      gap = clock.exponential(cfg.phases[phase].rate_hz);
    }
    t += gap;

    Arrival a;
    a.id = id;
    a.time = t;
    a.work = body.exponential(1.0 / cfg.mean_work);
    a.bytes = cfg.request_bytes;
    script.arrivals.push_back(a);
  }
  return script;
}

double meanArrivalRate(const ArrivalConfig& cfg) {
  if (cfg.phases.empty()) return cfg.rate_hz;
  // Long-run rate of the cyclic MMPP: dwell-weighted mean of phase rates.
  double weighted = 0.0;
  double total_dwell = 0.0;
  for (const ArrivalPhase& ph : cfg.phases) {
    weighted += ph.rate_hz * ph.mean_duration_s;
    total_dwell += ph.mean_duration_s;
  }
  return weighted / total_dwell;
}

}  // namespace loadex::svc
