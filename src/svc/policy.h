// Dispatch policies of the service workload.
//
// PolicyKind enumerates everything the bench compares: four cheap
// reference policies implemented right here, plus the paper's three load
// information exchange mechanisms (those dispatch through the Mechanism
// seam — requestView / leastLoadedSlave / commitSelection — not through
// DispatchPolicy; see service_app.h). loadex-lint rule
// `policykind-exhaustive` checks that policyKindName and makePolicy
// dispatch over every enumerator, so adding a policy without wiring it
// everywhere is a lint failure.
//
// The reference policies:
//   random            — uniform over alive servers; the no-information
//                       floor every mechanism must beat.
//   round-robin       — cyclic over alive servers; no load information,
//                       but perfect dispersion.
//   shortest-queue    — oracle: dispatch to the server with the least
//                       outstanding work, read from the ledger's live
//                       board (instantaneous global knowledge — the
//                       upper bound no message protocol can reach).
//   stale-shortest-queue — shortest-queue over a board snapshot refreshed
//                       every `refresh_s`; the textbook stale-information
//                       pathology (it herds onto a stale minimum and may
//                       even dispatch to a server that crashed since the
//                       snapshot), giving the mechanisms a calibrated
//                       "how stale is too stale" yardstick.
//
// Liveness: random, round-robin and the oracle skip crashed servers (a
// liveness oracle is the usual baseline assumption); only the stale
// variant acts on an outdated alive bit — deliberately.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/mechanism.h"

namespace loadex::svc {

enum class PolicyKind {
  kRandom,
  kRoundRobin,
  kShortestQueue,
  kStaleShortestQueue,
  kNaive,
  kIncrement,
  kSnapshot,
};

const char* policyKindName(PolicyKind kind);
PolicyKind parsePolicyKind(const std::string& name);

/// All seven kinds, in enum order (bench / demo iteration).
const std::vector<PolicyKind>& allPolicyKinds();

/// True for the kinds that dispatch through a core::Mechanism.
bool policyUsesMechanism(PolicyKind kind);

/// The mechanism behind a mechanism-backed kind; hard-fails otherwise.
core::MechanismKind mechanismKindOf(PolicyKind kind);

/// What one server looks like to a dispatch decision.
struct ServerStat {
  double outstanding_work = 0.0;  ///< dispatched and not yet finished
  bool alive = true;
};

/// Decision input. `servers` is indexed by rank; the dispatcher's own
/// rank is present but must not be chosen (alive = false there).
struct DispatchContext {
  const std::vector<ServerStat>* servers = nullptr;
  Rank self = kNoRank;
  SimTime now = 0.0;
};

/// A reference dispatch policy. Stateful (round-robin cursor, stale
/// snapshot) and rank-0-confined: choose() is only ever called from the
/// dispatcher's execution context.
class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  /// Pick a destination server, or kNoRank when no candidate is eligible
  /// (the request is then dropped with cause kNoCandidate).
  virtual Rank choose(const DispatchContext& ctx, Rng& rng) = 0;

  /// Age of the information the last choose() acted on (seconds); 0 for
  /// policies using live state.
  virtual double lastInfoAge() const { return 0.0; }
};

/// Build a reference policy; returns nullptr for the mechanism-backed
/// kinds (the ServiceApp routes those through the Mechanism seam).
/// `refresh_s` is the stale-shortest-queue snapshot period.
std::unique_ptr<DispatchPolicy> makePolicy(PolicyKind kind, double refresh_s);

}  // namespace loadex::svc
