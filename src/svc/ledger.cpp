#include "svc/ledger.h"

#include <string>

#include "common/expect.h"

namespace loadex::svc {

const char* dropCauseName(DropCause cause) {
  switch (cause) {
    case DropCause::kNone: return "none";
    case DropCause::kNoCandidate: return "no_candidate";
    case DropCause::kServerCrash: return "server_crash";
    case DropCause::kLost: return "lost";
  }
  return "?";
}

namespace {

/// Shared log-spaced bounds: constant relative resolution from 100 ns up
/// to 1000 s, covering both simulated sojourns (ms-scale) and rt
/// dispatch latencies (us-scale) with the same bucket set.
std::vector<double> latencyBounds() {
  return obs::Histogram::logBounds(1e-7, 1e3, 6);
}

}  // namespace

SvcLedger::SvcLedger(std::int64_t n_requests, int nprocs)
    : records_(static_cast<std::size_t>(n_requests)),
      board_(static_cast<std::size_t>(nprocs)),
      sojourn_(latencyBounds()),
      queue_wait_(latencyBounds()),
      service_(latencyBounds()) {
  LOADEX_EXPECT(nprocs >= 2, "svc needs a dispatcher and a server");
  // Rank 0 is the dispatcher: present on the board, never a candidate.
  board_[0].alive = false;
}

RequestRecord& SvcLedger::rec(std::int64_t id) {
  LOADEX_EXPECT(id >= 0 &&
                    id < static_cast<std::int64_t>(records_.size()),
                "request id out of range");
  return records_[static_cast<std::size_t>(id)];
}

const RequestRecord& SvcLedger::rec(std::int64_t id) const {
  LOADEX_EXPECT(id >= 0 &&
                    id < static_cast<std::int64_t>(records_.size()),
                "request id out of range");
  return records_[static_cast<std::size_t>(id)];
}

void SvcLedger::terminalOnce(RequestRecord& r, const char* what) {
  LOADEX_EXPECT(r.state != RequestState::kCompleted &&
                    r.state != RequestState::kDropped,
                std::string("request already terminal at ") + what);
}

void SvcLedger::arrived(std::int64_t id, SimTime t) {
  const sync::MutexLock lk(mu_);
  RequestRecord& r = rec(id);
  r.state = RequestState::kArrived;
  r.t_arrive = t;
  ++totals_.arrived;
}

void SvcLedger::dispatched(std::int64_t id, Rank server, double work,
                           SimTime t, double info_age) {
  const sync::MutexLock lk(mu_);
  RequestRecord& r = rec(id);
  terminalOnce(r, "dispatched");
  r.state = RequestState::kDispatched;
  r.server = server;
  r.work = work;
  r.t_dispatch = t;
  r.info_age = info_age;
  board_[static_cast<std::size_t>(server)].outstanding_work += work;
  info_age_sum_ += info_age;
  ++info_age_count_;
}

void SvcLedger::enqueued(std::int64_t id, SimTime t) {
  const sync::MutexLock lk(mu_);
  RequestRecord& r = rec(id);
  terminalOnce(r, "enqueued");
  r.state = RequestState::kEnqueued;
  r.t_enqueue = t;
}

void SvcLedger::started(std::int64_t id, SimTime t) {
  const sync::MutexLock lk(mu_);
  RequestRecord& r = rec(id);
  terminalOnce(r, "started");
  r.state = RequestState::kInService;
  r.t_start = t;
}

void SvcLedger::completed(std::int64_t id, SimTime t) {
  const sync::MutexLock lk(mu_);
  RequestRecord& r = rec(id);
  terminalOnce(r, "completed");
  r.state = RequestState::kCompleted;
  r.t_end = t;
  ++totals_.completed;
  if (r.server != kNoRank)
    board_[static_cast<std::size_t>(r.server)].outstanding_work -= r.work;
  sojourn_.add(t - r.t_arrive);
  queue_wait_.add(r.t_start - r.t_arrive);
  service_.add(t - r.t_start);
}

void SvcLedger::dropped(std::int64_t id, DropCause cause, SimTime t) {
  const sync::MutexLock lk(mu_);
  RequestRecord& r = rec(id);
  terminalOnce(r, "dropped");
  LOADEX_EXPECT(cause != DropCause::kNone, "a drop needs a cause");
  if (r.server != kNoRank && r.state != RequestState::kArrived)
    board_[static_cast<std::size_t>(r.server)].outstanding_work -= r.work;
  r.state = RequestState::kDropped;
  r.cause = cause;
  r.t_end = t;
  switch (cause) {
    case DropCause::kNoCandidate: ++totals_.dropped_no_candidate; break;
    case DropCause::kServerCrash: ++totals_.dropped_server_crash; break;
    case DropCause::kLost: ++totals_.dropped_lost; break;
    case DropCause::kNone: break;
  }
}

bool SvcLedger::terminal(std::int64_t id) const {
  const sync::MutexLock lk(mu_);
  const RequestRecord& r = rec(id);
  return r.state == RequestState::kCompleted ||
         r.state == RequestState::kDropped;
}

void SvcLedger::setAlive(Rank r, bool alive) {
  const sync::MutexLock lk(mu_);
  board_[static_cast<std::size_t>(r)].alive = alive;
}

void SvcLedger::snapshotBoard(std::vector<ServerStat>& out) const {
  const sync::MutexLock lk(mu_);
  out = board_;
}

double SvcLedger::outstandingWork(Rank r) const {
  const sync::MutexLock lk(mu_);
  return board_[static_cast<std::size_t>(r)].outstanding_work;
}

double SvcLedger::dropAssignedTo(Rank server, SimTime t) {
  const sync::MutexLock lk(mu_);
  double released = 0.0;
  for (RequestRecord& r : records_) {
    if (r.server != server) continue;
    if (r.state == RequestState::kCompleted ||
        r.state == RequestState::kDropped || r.state == RequestState::kArrived)
      continue;
    r.state = RequestState::kDropped;
    r.cause = DropCause::kServerCrash;
    r.t_end = t;
    ++totals_.dropped_server_crash;
    released += r.work;
  }
  board_[static_cast<std::size_t>(server)].outstanding_work = 0.0;
  return released;
}

LedgerTotals SvcLedger::finalize(SimTime t) {
  const sync::MutexLock lk(mu_);
  for (RequestRecord& r : records_) {
    if (r.state == RequestState::kCompleted ||
        r.state == RequestState::kDropped)
      continue;
    if (r.server != kNoRank && r.state != RequestState::kArrived)
      board_[static_cast<std::size_t>(r.server)].outstanding_work -= r.work;
    r.state = RequestState::kDropped;
    r.cause = DropCause::kLost;
    r.t_end = t;
    ++totals_.dropped_lost;
  }
  return totals_;
}

LedgerTotals SvcLedger::totals() const {
  const sync::MutexLock lk(mu_);
  return totals_;
}

void SvcLedger::expectConserved() const {
  const sync::MutexLock lk(mu_);
  std::int64_t terminal_count = 0;
  for (const RequestRecord& r : records_)
    if (r.state == RequestState::kCompleted ||
        r.state == RequestState::kDropped)
      ++terminal_count;
  LOADEX_EXPECT(terminal_count ==
                    static_cast<std::int64_t>(records_.size()),
                "non-terminal request after finalize");
  LOADEX_EXPECT(totals_.arrived ==
                    static_cast<std::int64_t>(records_.size()),
                "not every request arrived");
  LOADEX_EXPECT(totals_.arrived == totals_.completed + totals_.dropped(),
                "request conservation violated: arrived != completed "
                "+ dropped");
}

double SvcLedger::meanInfoAge() const {
  const sync::MutexLock lk(mu_);
  return info_age_count_ > 0
             ? info_age_sum_ / static_cast<double>(info_age_count_)
             : 0.0;
}

const RequestRecord& SvcLedger::record(std::int64_t id) const {
  const sync::MutexLock lk(mu_);
  return rec(id);
}

}  // namespace loadex::svc
