// ServiceApp: the open-loop request-serving application (the repo's
// second application behind the Mechanism/Transport seams, next to the
// factorization-tree solver).
//
// Topology: rank 0 is the dispatcher front-end (it never computes),
// ranks 1..n-1 are servers. Arrivals from an ArrivalScript fire on the
// event clock at rank 0; each request is routed by the configured
// PolicyKind:
//
//   * reference policies (random / round-robin / shortest-queue /
//     stale-shortest-queue) choose synchronously from the ledger's
//     dispatch board — DispatchPolicy::choose;
//   * mechanism-backed policies (naive / increment / snapshot) take one
//     dynamic scheduling decision per request through the shared
//     harness::selectAndCommit step (requestView -> leastLoadedSlave ->
//     commitSelection), so "mechanism quality" is measured by exactly
//     the decision rule the paper's solver uses. View requests are
//     serialised (one in flight); requests arriving while a snapshot is
//     pending queue at the dispatcher and that wait is part of their
//     sojourn — the snapshot mechanism pays its freeze where a serving
//     system feels it.
//
// The chosen server receives the request as an application-channel
// message, queues it FIFO, serves it as a ComputeTask (heterogeneous
// speeds come from WorldConfig::speed_factors) and accounts its load
// through the mechanism (delegated on enqueue — the master's
// reservation already announced it — and self-reported on completion).
//
// Faults: a crashing server takes its queued and in-service requests
// down (dropped kServerCrash, board zeroed); its mechanism zeroes the
// local load, but the broadcast is silently lost — a crashed process
// transmits nothing — so the survivors' views stay stale, which is
// precisely the pathology under study. A request in flight to a dead
// server is dropped at delivery and surfaces as kLost at finalize; a
// zombie delivery after restart (the message survived the crash window)
// is recognised by its terminal ledger record and ignored.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/audit.h"
#include "core/binding.h"
#include "core/mechanism.h"
#include "sim/application.h"
#include "sim/world.h"
#include "svc/arrivals.h"
#include "svc/ledger.h"
#include "svc/policy.h"

namespace loadex::svc {

/// Application-channel tag of a request message.
inline constexpr int kSvcRequestTag = 200;

struct RequestPayload final : sim::Payload {
  std::int64_t id = 0;
  double work = 0.0;
};

struct SvcSimConfig {
  int nprocs = 8;  ///< 1 dispatcher + nprocs-1 servers
  PolicyKind policy = PolicyKind::kShortestQueue;
  /// Stale-shortest-queue board refresh period.
  double stale_refresh_s = 10e-3;
  /// Policy RNG seed (random policy tie-breaks); independent of the
  /// arrival script's seed.
  std::uint64_t policy_seed = 0xd15c0;
  /// Mechanism knobs for the mechanism-backed policies. Callers set the
  /// threshold relative to the mean request size (a threshold above
  /// every request silences the maintained-view mechanisms).
  core::MechanismConfig mech;
  /// Servers announce No_more_master at start: only the dispatcher ever
  /// requests views, so server->server load traffic is pure waste
  /// (messages drop from O(n^2) to O(n) for the maintained views).
  bool servers_announce_no_more_master = true;

  // ---- platform --------------------------------------------------------
  sim::NetworkConfig network;
  sim::ProcessConfig process;
  std::vector<double> speed_factors;  ///< heterogeneous servers
  std::vector<sim::ProcessFaultEvent> process_faults;

  // ---- auditing --------------------------------------------------------
  /// Attach a ProtocolAuditor to the mechanism set (mechanism-backed
  /// policies only) and expectClean() at the end.
  bool attach_auditor = true;
  core::AuditorConfig audit;
};

/// Auditor preset for svc runs: `faulty` relaxes exactly the checks a
/// lossy / crashing run violates by design (FIFO gaps, lost increments,
/// reservations unmatched at a dead server).
core::AuditorConfig svcAuditorConfig(bool faulty);

struct SvcSimResult {
  sim::RunResult run;
  LedgerTotals totals;
  obs::Histogram sojourn;     ///< arrival -> completion
  obs::Histogram queue_wait;  ///< arrival -> service start
  obs::Histogram service;     ///< service start -> completion
  double mean_info_age = 0.0;
  std::uint64_t arrivals_digest = 0;  ///< fold over injected arrivals
  core::MechanismStats mech_stats;    ///< zero for reference policies
};

class ServiceApp final : public sim::Application {
 public:
  /// `mechs` is null for reference policies. The script, ledger and
  /// mechanism set must outlive the app.
  ServiceApp(const SvcSimConfig& cfg, const ArrivalScript& script,
             SvcLedger& ledger, core::MechanismSet* mechs);

  // ---- sim::Application -------------------------------------------------
  void onStart(sim::Process& p) override;
  void onAppMessage(sim::Process& p, const sim::Message& m) override;
  std::optional<sim::ComputeTask> nextTask(sim::Process& p) override;
  bool finished(const sim::Process& p) const override;
  void onProcessFault(sim::Process& p,
                      loadex::ProcessFaultEvent::Kind kind) override;

  std::uint64_t injectedDigest() const { return digest_.value(); }

 private:
  struct QueuedRequest {
    std::int64_t id = 0;
    double work = 0.0;
  };

  void injectArrival(std::size_t idx);
  /// Drain the dispatcher backlog; trampolined so a synchronous view
  /// callback re-entering it cannot recurse.
  void dispatchPending();
  void dispatchDirect(const Arrival& a);
  void dispatchViaMechanism(const Arrival& a);
  void sendRequest(const Arrival& a, Rank server, double info_age);

  const SvcSimConfig& cfg_;
  const ArrivalScript& script_;
  SvcLedger& ledger_;
  core::MechanismSet* mechs_;

  sim::Process* dispatcher_ = nullptr;
  std::unique_ptr<DispatchPolicy> policy_;  ///< reference policies only
  Rng policy_rng_;
  std::deque<std::size_t> pending_;  ///< script indices awaiting dispatch
  bool view_in_flight_ = false;
  bool draining_ = false;
  std::vector<ServerStat> board_scratch_;
  ArrivalDigest digest_;

  /// Per-server FIFO run queues, indexed by rank (index 0 unused).
  std::vector<std::deque<QueuedRequest>> queues_;
};

/// Build the world, run the script to quiescence, enforce conservation
/// (and the protocol audit for mechanism-backed policies), return the
/// collected statistics.
SvcSimResult runSvcSim(const SvcSimConfig& cfg, const ArrivalScript& script);

}  // namespace loadex::svc
