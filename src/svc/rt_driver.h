// Real-threads service driver: the same open-loop workload as
// runSvcSim, executed on the loadex_rt runtime.
//
// Shape: an external driver thread floods the arrival script into rank
// 0 through the blocking post() (mailbox backpressure is the pacing);
// every dispatch decision — reference policy or mechanism view — runs
// on rank 0's node thread, so the dispatcher state (pending queue,
// policy object, in-flight view flag, injection digest) is
// thread-confined exactly like the sim version. The chosen server
// receives the request as a task envelope (postTask); its closure runs
// on the server's thread and records enqueue/start/complete back to
// back — the rt run measures the *dispatch and transport* sojourn, not
// a simulated compute burn (real spins would only re-measure the host
// scheduler). The SvcLedger is the one shared structure; it locks at
// LockRank::kSvcLedger in tight scopes.
//
// Faults: message-level faults come from cfg.rt.faults as usual. A
// crash/restart of one server is choreographed by the driver thread
// (manual_control) at request-count fractions of the flood, so the
// down window is placed relative to traffic rather than wall time:
//
//   post [0, crash_frac) -> crashRank -> post [crash_frac,
//   restart_frac) -> sleep down_wait_s -> restartRank -> post the rest
//
// Requests in the victim's mailbox and requests routed to it while down
// are dropped task envelopes; they surface as dropped(kLost) at
// finalize (the rt world has no app-level queue to sweep, unlike the
// sim crash which drops kServerCrash). Request conservation holds
// either way: arrived == completed + dropped.
#pragma once

#include <cstdint>

#include "core/audit.h"
#include "core/binding.h"
#include "rt/world.h"
#include "svc/arrivals.h"
#include "svc/ledger.h"
#include "svc/policy.h"
#include "svc/service_app.h"

namespace loadex::svc {

struct SvcRtConfig {
  int nprocs = 8;  ///< 1 dispatcher + nprocs-1 servers
  PolicyKind policy = PolicyKind::kShortestQueue;
  double stale_refresh_s = 10e-3;
  std::uint64_t policy_seed = 0xd15c0;
  core::MechanismConfig mech;
  bool servers_announce_no_more_master = true;

  /// Runtime knobs, including rt::FaultPlan. For the scripted
  /// crash/restart below set `rt.faults.manual_control = true` (the
  /// driver owns lifecycle); suspicion may be enabled on top so the
  /// mechanisms' failure detector sees the death.
  rt::RtConfig rt;
  /// Stall bound, not a run-length bound: the drain fails only after
  /// this long passes without any request reaching a terminal state. A
  /// slow policy (per-request snapshot freezes) may legally run much
  /// longer than this end to end.
  double drain_timeout_s = 60.0;

  // ---- choreographed crash (kNoRank = disabled) ------------------------
  Rank crash_rank = kNoRank;
  double crash_at_frac = 0.3;    ///< crash after this share of arrivals
  double restart_at_frac = 0.4;  ///< restart after this share
  /// Wall-clock pause between the restart-fraction post and the actual
  /// restart, so traffic flows at a dead rank long enough for suspicion
  /// (when enabled) to declare death.
  double down_wait_s = 0.0;

  bool attach_auditor = true;
  core::AuditorConfig audit;
};

struct SvcRtResult {
  bool drained = false;
  LedgerTotals totals;
  obs::Histogram sojourn;     ///< arrival -> completion (dispatch path)
  obs::Histogram queue_wait;  ///< arrival -> service start
  obs::Histogram service;
  double mean_info_age = 0.0;
  std::uint64_t arrivals_digest = 0;  ///< fold over injected arrivals
  core::MechanismStats mech_stats;    ///< zero for reference policies
  rt::RtRunStats rt_stats;
  double wall_s = 0.0;
};

/// Run the script on real threads; enforces request conservation and
/// (for mechanism-backed policies) the protocol audit before returning.
SvcRtResult runSvcRt(const SvcRtConfig& cfg, const ArrivalScript& script);

}  // namespace loadex::svc
