#include "svc/policy.h"

#include <limits>

#include "common/expect.h"

namespace loadex::svc {

const char* policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kRoundRobin: return "round_robin";
    case PolicyKind::kShortestQueue: return "shortest_queue";
    case PolicyKind::kStaleShortestQueue: return "stale_shortest_queue";
    case PolicyKind::kNaive: return "naive";
    case PolicyKind::kIncrement: return "increment";
    case PolicyKind::kSnapshot: return "snapshot";
  }
  LOADEX_EXPECT(false, "unknown PolicyKind");
  return "?";
}

PolicyKind parsePolicyKind(const std::string& name) {
  for (const PolicyKind k : allPolicyKinds())
    if (name == policyKindName(k)) return k;
  LOADEX_EXPECT(false, "unknown policy name: " + name);
  return PolicyKind::kRandom;
}

const std::vector<PolicyKind>& allPolicyKinds() {
  static const std::vector<PolicyKind> kinds = {
      PolicyKind::kRandom,        PolicyKind::kRoundRobin,
      PolicyKind::kShortestQueue, PolicyKind::kStaleShortestQueue,
      PolicyKind::kNaive,         PolicyKind::kIncrement,
      PolicyKind::kSnapshot,
  };
  return kinds;
}

bool policyUsesMechanism(PolicyKind kind) {
  return kind == PolicyKind::kNaive || kind == PolicyKind::kIncrement ||
         kind == PolicyKind::kSnapshot;
}

core::MechanismKind mechanismKindOf(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNaive: return core::MechanismKind::kNaive;
    case PolicyKind::kIncrement: return core::MechanismKind::kIncrement;
    case PolicyKind::kSnapshot: return core::MechanismKind::kSnapshot;
    default: break;
  }
  LOADEX_EXPECT(false, "policy kind is not mechanism-backed");
  return core::MechanismKind::kNaive;
}

namespace {

bool eligible(const DispatchContext& ctx, Rank r) {
  return r != ctx.self && (*ctx.servers)[static_cast<std::size_t>(r)].alive;
}

class RandomPolicy final : public DispatchPolicy {
 public:
  Rank choose(const DispatchContext& ctx, Rng& rng) override {
    const int n = static_cast<int>(ctx.servers->size());
    int alive = 0;
    for (Rank r = 0; r < n; ++r)
      if (eligible(ctx, r)) ++alive;
    if (alive == 0) return kNoRank;
    auto pick = static_cast<std::int64_t>(
        rng.uniformInt(static_cast<std::uint64_t>(alive)));
    for (Rank r = 0; r < n; ++r) {
      if (!eligible(ctx, r)) continue;
      if (pick-- == 0) return r;
    }
    return kNoRank;
  }
};

class RoundRobinPolicy final : public DispatchPolicy {
 public:
  Rank choose(const DispatchContext& ctx, Rng&) override {
    const int n = static_cast<int>(ctx.servers->size());
    for (int step = 0; step < n; ++step) {
      const Rank r = next_;
      next_ = (next_ + 1) % n;
      if (eligible(ctx, r)) return r;
    }
    return kNoRank;
  }

 private:
  Rank next_ = 0;
};

Rank leastLoadedOf(const DispatchContext& ctx,
                   const std::vector<ServerStat>& board) {
  Rank best = kNoRank;
  double best_work = std::numeric_limits<double>::infinity();
  for (Rank r = 0; r < static_cast<Rank>(board.size()); ++r) {
    if (r == ctx.self) continue;
    const ServerStat& s = board[static_cast<std::size_t>(r)];
    if (!s.alive) continue;
    if (s.outstanding_work < best_work) {
      best = r;
      best_work = s.outstanding_work;
    }
  }
  return best;
}

class ShortestQueuePolicy final : public DispatchPolicy {
 public:
  Rank choose(const DispatchContext& ctx, Rng&) override {
    return leastLoadedOf(ctx, *ctx.servers);
  }
};

class StaleShortestQueuePolicy final : public DispatchPolicy {
 public:
  explicit StaleShortestQueuePolicy(double refresh_s)
      : refresh_s_(refresh_s) {}

  Rank choose(const DispatchContext& ctx, Rng&) override {
    // Refresh only when the snapshot expired; between refreshes every
    // decision acts on the same (increasingly wrong) board — including
    // the alive bits, so a crash is invisible until the next refresh.
    if (!have_snapshot_ || ctx.now - taken_at_ >= refresh_s_) {
      snapshot_ = *ctx.servers;
      taken_at_ = ctx.now;
      have_snapshot_ = true;
    }
    age_ = ctx.now - taken_at_;
    return leastLoadedOf(ctx, snapshot_);
  }

  double lastInfoAge() const override { return age_; }

 private:
  double refresh_s_;
  std::vector<ServerStat> snapshot_;
  SimTime taken_at_ = 0.0;
  bool have_snapshot_ = false;
  double age_ = 0.0;
};

}  // namespace

std::unique_ptr<DispatchPolicy> makePolicy(PolicyKind kind,
                                           double refresh_s) {
  switch (kind) {
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>();
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kShortestQueue:
      return std::make_unique<ShortestQueuePolicy>();
    case PolicyKind::kStaleShortestQueue:
      return std::make_unique<StaleShortestQueuePolicy>(refresh_s);
    case PolicyKind::kNaive: return nullptr;
    case PolicyKind::kIncrement: return nullptr;
    case PolicyKind::kSnapshot: return nullptr;
  }
  LOADEX_EXPECT(false, "unknown PolicyKind");
  return nullptr;
}

}  // namespace loadex::svc
