// SvcLedger: per-request lifecycle accounting and the conservation
// invariant of the service workload.
//
// Every request moves through
//
//   arrived -> dispatched -> enqueued -> in-service -> completed
//
// or exits early as dropped-with-cause. Terminal transitions are checked
// to happen exactly once, and finalize() forces every straggler into the
// kLost bucket, so at the end of any run — clean, lossy or crashing —
//
//   arrived == completed + dropped(no_candidate)
//                        + dropped(server_crash)
//                        + dropped(lost)
//
// holds by construction; expectConserved() turns a violation into a
// ContractViolation. The ledger also owns the latency histograms
// (sojourn / queue wait / service, log-spaced bounds) and the live
// dispatch board (per-server outstanding work + alive bit) that the
// shortest-queue policies read.
//
// Thread safety: one mutex at LockRank::kSvcLedger, taken in tight
// scopes and never held across a mechanism, transport or policy call.
// The simulator pays one uncontended lock per transition; in the rt
// world rank threads record transitions concurrently with the rank-0
// dispatcher reading the board.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "svc/policy.h"

namespace loadex::svc {

enum class RequestState : std::uint8_t {
  kArrived,
  kDispatched,  ///< policy chose a server, request message in flight
  kEnqueued,    ///< delivered, waiting in the server's run queue
  kInService,
  kCompleted,
  kDropped,
};

enum class DropCause : std::uint8_t {
  kNone,
  kNoCandidate,  ///< no eligible server at dispatch time
  kServerCrash,  ///< was queued or in service on a crashing server
  kLost,         ///< in flight at a crash / never delivered / unfinished
};

const char* dropCauseName(DropCause cause);

struct RequestRecord {
  RequestState state = RequestState::kArrived;
  DropCause cause = DropCause::kNone;
  Rank server = kNoRank;
  double work = 0.0;
  double info_age = 0.0;  ///< staleness of the data behind the dispatch
  SimTime t_arrive = 0.0;
  SimTime t_dispatch = 0.0;
  SimTime t_enqueue = 0.0;
  SimTime t_start = 0.0;
  SimTime t_end = 0.0;  ///< completion or drop time
};

/// End-of-run totals (conservation operands).
struct LedgerTotals {
  std::int64_t arrived = 0;
  std::int64_t completed = 0;
  std::int64_t dropped_no_candidate = 0;
  std::int64_t dropped_server_crash = 0;
  std::int64_t dropped_lost = 0;

  std::int64_t dropped() const {
    return dropped_no_candidate + dropped_server_crash + dropped_lost;
  }
};

class SvcLedger {
 public:
  /// `n_requests` ids, `nprocs` board slots (rank 0 marked not-alive:
  /// the dispatcher never serves).
  SvcLedger(std::int64_t n_requests, int nprocs);

  // ---- lifecycle transitions (each takes the lock briefly) -------------
  void arrived(std::int64_t id, SimTime t);
  /// Policy picked `server`; adds `work` to its board entry. `info_age`
  /// is the age of the load information behind the decision.
  void dispatched(std::int64_t id, Rank server, double work, SimTime t,
                  double info_age);
  void enqueued(std::int64_t id, SimTime t);
  void started(std::int64_t id, SimTime t);
  void completed(std::int64_t id, SimTime t);
  void dropped(std::int64_t id, DropCause cause, SimTime t);

  /// True when `id` already reached a terminal state — used to ignore
  /// zombie deliveries (a request dropped at a crash arriving after the
  /// server restarted).
  bool terminal(std::int64_t id) const;

  // ---- dispatch board --------------------------------------------------
  void setAlive(Rank r, bool alive);
  /// Copy the live board into `out` (sized to nprocs).
  void snapshotBoard(std::vector<ServerStat>& out) const;
  /// Outstanding dispatched-but-unfinished work at `r`.
  double outstandingWork(Rank r) const;
  /// Drop every non-terminal request assigned to `r` with kServerCrash
  /// and zero its board entry; returns the work released. Crash handler.
  double dropAssignedTo(Rank r, SimTime t);

  // ---- end of run ------------------------------------------------------
  /// Force every non-terminal request into dropped(kLost) at time `t`,
  /// then return the totals.
  LedgerTotals finalize(SimTime t);
  LedgerTotals totals() const;
  /// Throws ContractViolation unless arrived == completed + dropped and
  /// every request reached a terminal state.
  void expectConserved() const;

  // ---- latency statistics (read after the run has quiesced) ------------
  const obs::Histogram& sojourn() const { return sojourn_; }
  const obs::Histogram& queueWait() const { return queue_wait_; }
  const obs::Histogram& service() const { return service_; }
  /// Mean info_age over dispatched requests.
  double meanInfoAge() const;

  const RequestRecord& record(std::int64_t id) const;

 private:
  RequestRecord& rec(std::int64_t id) LOADEX_REQUIRES(mu_);
  const RequestRecord& rec(std::int64_t id) const LOADEX_REQUIRES(mu_);
  void terminalOnce(RequestRecord& r, const char* what)
      LOADEX_REQUIRES(mu_);

  mutable sync::Mutex mu_{sync::LockRank::kSvcLedger};
  std::vector<RequestRecord> records_ LOADEX_GUARDED_BY(mu_);
  std::vector<ServerStat> board_ LOADEX_GUARDED_BY(mu_);
  LedgerTotals totals_ LOADEX_GUARDED_BY(mu_);
  obs::Histogram sojourn_ LOADEX_GUARDED_BY(mu_);
  obs::Histogram queue_wait_ LOADEX_GUARDED_BY(mu_);
  obs::Histogram service_ LOADEX_GUARDED_BY(mu_);
  double info_age_sum_ LOADEX_GUARDED_BY(mu_) = 0.0;
  std::int64_t info_age_count_ LOADEX_GUARDED_BY(mu_) = 0;
};

}  // namespace loadex::svc
