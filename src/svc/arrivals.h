// Deterministic open-loop arrival generation for the service workload.
//
// The generator materialises the whole arrival process up front as an
// ArrivalScript — a flat, time-sorted request list — so both runtimes
// replay the identical workload: the simulator injects it on the event
// clock, the rt driver posts it onto rank 0's thread. All randomness
// flows through Rng from a single 64-bit seed (the repo-wide RNG
// discipline), so the script, its digest and the simulator's schedule
// digest are reproducible bit for bit.
//
// Two arrival shapes:
//   * Poisson  — `phases` empty: exponential inter-arrival times at
//     `rate_hz` (the open-loop M/./k baseline);
//   * bursty   — `phases` non-empty: a Markov-modulated Poisson process
//     cycling deterministically through the phase list (burst / calm /
//     ...), with exponentially distributed dwell time in each phase.
//     Phase order is cyclic rather than drawn so a scenario reads as
//     written; only dwell lengths and arrivals are random.
//
// Phase switching is exact, not approximate: when a drawn inter-arrival
// gap crosses the phase boundary, the clock advances to the boundary and
// the gap is redrawn at the new rate — memorylessness of the exponential
// makes the restart statistically equivalent to thinning, and it keeps
// the draw count (hence the stream) a pure function of the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace loadex::svc {

/// One phase of a bursty (MMPP) arrival process.
struct ArrivalPhase {
  double rate_hz = 0.0;        ///< arrival rate while this phase is active
  double mean_duration_s = 0.0;  ///< mean (exponential) dwell time
};

struct ArrivalConfig {
  std::uint64_t seed = 0x5ecc1u;
  int n_requests = 1000;
  /// Poisson arrival rate; ignored when `phases` is non-empty.
  double rate_hz = 1000.0;
  /// Bursty mode: cycle through these phases (empty = plain Poisson).
  std::vector<ArrivalPhase> phases;
  /// Mean request size in flops; each request draws Exp(1/mean_work).
  double mean_work = 1e6;
  /// Wire size of one request message.
  Bytes request_bytes = 256;
};

/// One request of the open-loop workload.
struct Arrival {
  std::int64_t id = 0;    ///< dense [0, n_requests)
  SimTime time = 0.0;     ///< arrival at the dispatcher
  double work = 0.0;      ///< service demand, flops
  Bytes bytes = 0;        ///< request message size
};

/// The materialised workload: arrivals sorted by time, ids dense in time
/// order.
struct ArrivalScript {
  std::vector<Arrival> arrivals;

  /// FNV-1a fingerprint over (id, time bits, work bits) of every arrival.
  /// Drivers fold the same function over the requests they actually
  /// inject, so "sim and rt replayed the same workload" is one integer
  /// comparison (see ArrivalDigest).
  std::uint64_t digest() const;
};

/// Incremental form of ArrivalScript::digest() for the drivers.
class ArrivalDigest {
 public:
  void fold(const Arrival& a);
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
};

/// Generate the script. Deterministic: same config -> same script.
ArrivalScript generateArrivals(const ArrivalConfig& cfg);

/// Mean arrival rate of the config (phase-dwell-weighted for bursty).
double meanArrivalRate(const ArrivalConfig& cfg);

}  // namespace loadex::svc
