#include "svc/rt_driver.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "common/expect.h"
#include "harness/replay.h"
#include "rt/audit_lock.h"
#include "rt/clock.h"
#include "rt/supervisor.h"

namespace loadex::svc {

namespace {

/// Dispatcher state, confined to rank 0's node thread: every member is
/// only touched from closures posted to rank 0 (arrivals from the
/// driver thread, view callbacks from rank 0's own message handling).
/// The ledger is the one cross-thread structure and locks internally.
class RtDispatcher {
 public:
  RtDispatcher(const SvcRtConfig& cfg, const ArrivalScript& script,
               SvcLedger& ledger, rt::RtWorld& world,
               core::MechanismSet* mechs)
      : script_(script),
        ledger_(ledger),
        world_(world),
        mechs_(mechs),
        policy_rng_(cfg.policy_seed) {
    if (!policyUsesMechanism(cfg.policy))
      policy_ = makePolicy(cfg.policy, cfg.stale_refresh_s);
  }

  /// Entry point of the closure the driver posts per arrival.
  void arrive(std::size_t idx) {
    const Arrival& a = script_.arrivals[idx];
    ledger_.arrived(a.id, world_.now());
    digest_.fold(a);
    pending_.push_back(idx);
    dispatchPending();
  }

  std::uint64_t digestValue() const { return digest_.value(); }

 private:
  void dispatchPending() {
    if (draining_) return;  // the active loop below picks the request up
    draining_ = true;
    while (!pending_.empty()) {
      if (mechs_ != nullptr && view_in_flight_) break;
      const std::size_t idx = pending_.front();
      pending_.pop_front();
      const Arrival& a = script_.arrivals[idx];
      if (mechs_ != nullptr) {
        dispatchViaMechanism(a);
      } else {
        dispatchDirect(a);
      }
    }
    draining_ = false;
  }

  void dispatchDirect(const Arrival& a) {
    ledger_.snapshotBoard(board_scratch_);
    DispatchContext ctx;
    ctx.servers = &board_scratch_;
    ctx.self = 0;
    ctx.now = world_.now();
    const Rank server = policy_->choose(ctx, policy_rng_);
    if (server == kNoRank) {
      ledger_.dropped(a.id, DropCause::kNoCandidate, ctx.now);
      return;
    }
    sendRequest(a, server, policy_->lastInfoAge());
  }

  void dispatchViaMechanism(const Arrival& a) {
    view_in_flight_ = true;
    core::Mechanism& m = mechs_->at(0);
    harness::selectAndCommit(
        m, {a.work, 0.0},
        [this, a](const core::LoadView& v, Rank slave) {
          sendRequest(a, slave, world_.now() - v.lastHeardFrom(slave));
          view_in_flight_ = false;
          dispatchPending();
        },
        [this, a](const core::LoadView&) {
          ledger_.dropped(a.id, DropCause::kNoCandidate, world_.now());
          view_in_flight_ = false;
          dispatchPending();
        });
  }

  void sendRequest(const Arrival& a, Rank server, double info_age) {
    ledger_.dispatched(a.id, server, a.work, world_.now(), info_age);
    // The request travels as a task envelope; a sealed (crashed)
    // destination drops it, which finalize() later books as kLost. The
    // serve closure runs on the server's thread: enqueue, start and
    // complete land back to back — the rt sojourn is dispatch +
    // transport latency, there is no simulated compute burn.
    world_.postTask(0, server, [this, id = a.id, w = a.work, server] {
      if (ledger_.terminal(id)) return;  // zombie past a crash window
      const SimTime t = world_.now();
      ledger_.enqueued(id, t);
      if (mechs_ != nullptr)
        mechs_->at(server).addLocalLoad({w, 0.0},
                                        /*is_slave_delegated=*/true);
      ledger_.started(id, world_.now());
      ledger_.completed(id, world_.now());
      if (mechs_ != nullptr) mechs_->at(server).addLocalLoad({-w, 0.0});
    });
  }

  const ArrivalScript& script_;
  SvcLedger& ledger_;
  rt::RtWorld& world_;
  core::MechanismSet* mechs_;

  std::unique_ptr<DispatchPolicy> policy_;  ///< reference policies only
  Rng policy_rng_;
  std::deque<std::size_t> pending_;
  bool view_in_flight_ = false;
  bool draining_ = false;
  std::vector<ServerStat> board_scratch_;
  ArrivalDigest digest_;
};

}  // namespace

SvcRtResult runSvcRt(const SvcRtConfig& cfg, const ArrivalScript& script) {
  LOADEX_EXPECT(cfg.nprocs >= 2, "svc needs a dispatcher and a server");
  rt::RtConfig rcfg = cfg.rt;
  rcfg.nprocs = cfg.nprocs;
  const bool crash_scripted = cfg.crash_rank != kNoRank;
  if (crash_scripted) {
    LOADEX_EXPECT(rcfg.faults.manual_control,
                  "the choreographed crash needs manual fault control");
    LOADEX_EXPECT(cfg.crash_rank > 0 && cfg.crash_rank < cfg.nprocs,
                  "crash_rank must be a server");
    LOADEX_EXPECT(cfg.crash_at_frac <= cfg.restart_at_frac,
                  "crash must precede restart");
  }
  rt::RtWorld world(rcfg);

  std::unique_ptr<core::MechanismSet> mechs;
  std::unique_ptr<core::ProtocolAuditor> auditor;
  std::unique_ptr<rt::RtAuditBinding> audit_binding;
  if (policyUsesMechanism(cfg.policy)) {
    mechs = std::make_unique<core::MechanismSet>(
        world.transports(), mechanismKindOf(cfg.policy), cfg.mech);
    if (cfg.attach_auditor) {
      core::AuditorConfig acfg = cfg.audit;
      // Same gating as runSvcSim: announcers' views go stale on
      // purpose, so cross-view coherence no longer applies.
      if (cfg.servers_announce_no_more_master)
        acfg.check_conservation = false;
      auditor = std::make_unique<core::ProtocolAuditor>(acfg);
      audit_binding =
          std::make_unique<rt::RtAuditBinding>(*auditor, *mechs);
    }
    for (Rank r = 0; r < cfg.nprocs; ++r) world.attach(r, &mechs->at(r));
    world.superviseMechanisms(mechs.get());
  }

  SvcLedger ledger(static_cast<std::int64_t>(script.arrivals.size()),
                   cfg.nprocs);
  RtDispatcher dispatcher(cfg, script, ledger, world, mechs.get());

  world.start();
  const SimTime t_start = world.now();

  auto announceNoMoreMaster = [&](Rank r) {
    world.post(r, [&mechs, r] { mechs->at(r).noMoreMaster(); });
  };
  if (mechs != nullptr && cfg.servers_announce_no_more_master)
    for (Rank r = 1; r < cfg.nprocs; ++r) announceNoMoreMaster(r);

  const std::size_t n = script.arrivals.size();
  const auto frac_index = [n](double f) {
    const auto i = static_cast<std::size_t>(f * static_cast<double>(n));
    return i > n ? n : i;
  };
  const std::size_t i_crash = crash_scripted ? frac_index(cfg.crash_at_frac)
                                             : n + 1;
  const std::size_t i_restart =
      crash_scripted ? frac_index(cfg.restart_at_frac) : n + 1;
  bool crashed = false;
  bool restarted = false;

  const auto doCrash = [&] {
    world.crashRank(cfg.crash_rank);
    ledger.setAlive(cfg.crash_rank, false);
    crashed = true;
  };
  const auto doRestart = [&] {
    if (cfg.down_wait_s > 0.0) rt::MonotonicClock::sleepFor(cfg.down_wait_s);
    world.restartRank(cfg.crash_rank);
    if (mechs != nullptr) {
      // Manual lifecycle control bypasses the supervisor's rejoin path,
      // so run it here: surviving peers republish authoritative loads
      // and the rejoiner re-announces its master status.
      rt::postRejoinResync(world, *mechs, cfg.crash_rank);
      if (cfg.servers_announce_no_more_master)
        announceNoMoreMaster(cfg.crash_rank);
    }
    ledger.setAlive(cfg.crash_rank, true);
    restarted = true;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (crash_scripted && !crashed && i >= i_crash) doCrash();
    if (crash_scripted && crashed && !restarted && i >= i_restart)
      doRestart();
    world.post(0, [&dispatcher, i] { dispatcher.arrive(i); });
  }
  // Fractions at (or rounding to) 1.0 land after the flood.
  if (crash_scripted && !crashed) doCrash();
  if (crash_scripted && !restarted) doRestart();

  // Drain on *progress*, not absolute wall time: a per-request snapshot
  // policy grinds through its dispatch backlog at milliseconds per round
  // (the freeze is the measurement), so a long run is legal as long as
  // requests keep terminating. drain_timeout_s bounds the stall, i.e.
  // how long the run may go without a single request reaching a
  // terminal state — that is what a wedge looks like.
  bool drained = false;
  {
    std::int64_t last_terminal = -1;
    double stalled_s = 0.0;
    const double slice_s = std::min(cfg.drain_timeout_s, 2.0);
    while (!drained && stalled_s < cfg.drain_timeout_s) {
      drained = world.drain(slice_s, /*log_on_timeout=*/false);
      const LedgerTotals t = ledger.totals();
      const std::int64_t term = t.completed + t.dropped();
      if (term != last_terminal) {
        last_terminal = term;
        stalled_s = 0.0;
      } else {
        stalled_s += slice_s;
      }
    }
    // One last zero-wait pass with diagnostics for the failure report.
    if (!drained) drained = world.drain(0.0);
  }
  const double wall_s = world.now() - t_start;
  LOADEX_EXPECT(drained, "svc rt run failed to quiesce");
  const LedgerTotals totals = ledger.finalize(world.now());
  ledger.expectConserved();
  const rt::RtRunStats rt_stats = world.runStats();
  world.stop();

  if (auditor != nullptr) {
    if (crashed) auditor->noteCrashed(cfg.crash_rank);
    if (restarted) auditor->noteRestarted(cfg.crash_rank);
    auditor->finish();
    auditor->expectClean();
  }

  return SvcRtResult{drained,
                     totals,
                     ledger.sojourn(),
                     ledger.queueWait(),
                     ledger.service(),
                     ledger.meanInfoAge(),
                     dispatcher.digestValue(),
                     mechs != nullptr ? mechs->aggregateStats()
                                      : core::MechanismStats{},
                     rt_stats,
                     wall_s};
}

}  // namespace loadex::svc
