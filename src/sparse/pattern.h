// Sparse symmetric patterns in compressed (CSR-like) form.
//
// The solver pipeline only needs the *structure* of the matrix (the
// adjacency graph): orderings, elimination trees and front sizes are all
// structural. Patterns here are stored as sorted, deduplicated adjacency
// lists without the diagonal (graph form).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace loadex::sparse {

class Pattern {
 public:
  Pattern() = default;

  /// Build from (row, col) entries. Entries are symmetrized (both (i,j)
  /// and (j,i) are inserted), deduplicated, and diagonal entries dropped.
  static Pattern fromEdges(int n, std::vector<std::pair<int, int>> edges);

  int n() const { return n_; }

  /// Number of stored adjacency entries (2x the undirected edge count).
  std::int64_t adjCount() const {
    return static_cast<std::int64_t>(ind_.size());
  }

  /// Structural nonzeros of the symmetric matrix incl. diagonal:
  /// adjCount() + n (what a matrix-market header would report for the
  /// full symmetric pattern).
  std::int64_t nnzFull() const { return adjCount() + n_; }

  /// Neighbours of vertex i (sorted, no self-loop).
  std::span<const int> row(int i) const;

  int degree(int i) const {
    return static_cast<int>(ptr_[static_cast<std::size_t>(i) + 1] -
                            ptr_[static_cast<std::size_t>(i)]);
  }

  /// Symmetric permutation: vertex i of the result is vertex perm[i] of
  /// this pattern (perm is the new->old map).
  Pattern permuted(const std::vector<int>& new_to_old) const;

  /// Connected components; fills labels[v] in [0, count).
  int connectedComponents(std::vector<int>* labels) const;

  bool hasEdge(int i, int j) const;

  const std::vector<std::int64_t>& ptr() const { return ptr_; }
  const std::vector<int>& ind() const { return ind_; }

 private:
  int n_ = 0;
  std::vector<std::int64_t> ptr_;
  std::vector<int> ind_;
};

/// Validate a permutation vector (a bijection on [0, n)).
bool isPermutation(const std::vector<int>& p);

/// Invert a permutation.
std::vector<int> invertPermutation(const std::vector<int>& p);

/// Identity permutation of size n.
std::vector<int> identityPermutation(int n);

}  // namespace loadex::sparse
