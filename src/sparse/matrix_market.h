// Minimal Matrix Market (.mtx) pattern I/O.
//
// Only the structure is read (values, if present, are skipped): the solver
// pipeline is purely symbolic. Supports `coordinate` format with
// real/integer/pattern fields and general/symmetric symmetry.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/pattern.h"

namespace loadex::sparse {

struct MatrixMarketInfo {
  int rows = 0;
  int cols = 0;
  std::int64_t entries = 0;  ///< entries as declared in the header
  bool symmetric = false;
};

/// Parse a Matrix Market stream into a (square, symmetrized) Pattern.
/// Throws ContractViolation on malformed input or non-square matrices.
Pattern readMatrixMarket(std::istream& in, MatrixMarketInfo* info = nullptr);

/// Read from a file path.
Pattern readMatrixMarketFile(const std::string& path,
                             MatrixMarketInfo* info = nullptr);

/// Write a pattern as a symmetric coordinate `pattern` matrix (lower
/// triangle plus diagonal).
void writeMatrixMarket(std::ostream& out, const Pattern& pattern);

}  // namespace loadex::sparse
