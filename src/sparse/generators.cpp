#include "sparse/generators.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/expect.h"

namespace loadex::sparse {

Pattern grid2d(int nx, int ny, bool nine_point) {
  LOADEX_EXPECT(nx > 0 && ny > 0, "grid dimensions must be positive");
  const auto id = [nx](int x, int y) { return y * nx + x; };
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(nx) * ny * (nine_point ? 4 : 2));
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      if (x + 1 < nx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) edges.emplace_back(id(x, y), id(x, y + 1));
      if (nine_point) {
        if (x + 1 < nx && y + 1 < ny)
          edges.emplace_back(id(x, y), id(x + 1, y + 1));
        if (x > 0 && y + 1 < ny) edges.emplace_back(id(x, y), id(x - 1, y + 1));
      }
    }
  }
  return Pattern::fromEdges(nx * ny, std::move(edges));
}

Pattern grid3d(int nx, int ny, int nz, bool twenty_seven_point) {
  LOADEX_EXPECT(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  const auto id = [nx, ny](int x, int y, int z) {
    return (z * ny + y) * nx + x;
  };
  std::vector<std::pair<int, int>> edges;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const int v = id(x, y, z);
        if (!twenty_seven_point) {
          if (x + 1 < nx) edges.emplace_back(v, id(x + 1, y, z));
          if (y + 1 < ny) edges.emplace_back(v, id(x, y + 1, z));
          if (z + 1 < nz) edges.emplace_back(v, id(x, y, z + 1));
        } else {
          // All 26 neighbours; emit each undirected edge from one side.
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                const int x2 = x + dx, y2 = y + dy, z2 = z + dz;
                if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 < 0 ||
                    z2 >= nz)
                  continue;
                const int w = id(x2, y2, z2);
                if (w > v) edges.emplace_back(v, w);
              }
            }
          }
        }
      }
    }
  }
  return Pattern::fromEdges(nx * ny * nz, std::move(edges));
}

Pattern lpAAT(int m, int k, int nnz_per_col, Rng& rng) {
  LOADEX_EXPECT(m > 0 && k > 0 && nnz_per_col > 0, "bad lpAAT parameters");
  // Columns of A couple nnz_per_col random rows; A·Aᵀ links every pair of
  // rows sharing a column (clique per column).
  std::vector<std::pair<int, int>> edges;
  std::vector<int> rows(static_cast<std::size_t>(nnz_per_col));
  for (int c = 0; c < k; ++c) {
    for (auto& r : rows) r = static_cast<int>(rng.uniformInt(m));
    for (std::size_t a = 0; a < rows.size(); ++a)
      for (std::size_t b = a + 1; b < rows.size(); ++b)
        edges.emplace_back(rows[a], rows[b]);
  }
  return Pattern::fromEdges(m, std::move(edges));
}

Pattern circuitLike(int n, int avg_degree, int num_hubs, Rng& rng) {
  LOADEX_EXPECT(n > 1 && avg_degree >= 1, "bad circuitLike parameters");
  std::vector<std::pair<int, int>> edges;
  // Planar-ish backbone (placement grid) — circuit matrices behave
  // between chains and 2-D meshes under dissection orderings.
  const int nx = std::max(2, static_cast<int>(std::sqrt(double(n))));
  for (int v = 0; v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
    if (v + nx < n) edges.emplace_back(v, v + nx);
  }
  // Random short-range couplings on top of the backbone.
  const std::int64_t local_edges =
      static_cast<std::int64_t>(n) * avg_degree / 2;
  for (std::int64_t e = 0; e < local_edges; ++e) {
    const int i = static_cast<int>(rng.uniformInt(n));
    const int span = 1 + static_cast<int>(rng.exponential(0.25)) +
                     (rng.bernoulli(0.3) ? nx : 0);
    const int j = std::min(n - 1, i + span);
    if (i != j) edges.emplace_back(i, j);
  }
  // A few high-degree "nets" (power rails, clock) touching many nodes.
  for (int h = 0; h < num_hubs; ++h) {
    const int hub = static_cast<int>(rng.uniformInt(n));
    const int fan = n / 400 + 8;
    for (int t = 0; t < fan; ++t) {
      const int j = static_cast<int>(rng.uniformInt(n));
      if (hub != j) edges.emplace_back(hub, j);
    }
  }
  return Pattern::fromEdges(n, std::move(edges));
}

Pattern randomMesh(int n, int neighbours, Rng& rng, bool three_d) {
  LOADEX_EXPECT(n > 0 && neighbours > 0, "bad randomMesh parameters");
  // Points in the unit square/cube, each linked to its closest neighbours
  // within a sorted-window approximation of kNN — enough to get an
  // unstructured-mesh-like pattern without an exact spatial index.
  struct Pt {
    double x, y, z;
    int id;
  };
  std::vector<Pt> pts(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts[static_cast<std::size_t>(i)] = {rng.uniformReal(), rng.uniformReal(),
                                        three_d ? rng.uniformReal() : 0.0, i};
  std::sort(pts.begin(), pts.end(),
            [](const Pt& a, const Pt& b) { return a.x < b.x; });
  std::vector<std::pair<int, int>> edges;
  const int window = std::max(8, (three_d ? 8 : 4) * neighbours);
  std::vector<std::pair<double, int>> cand;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    cand.clear();
    for (int d = 1; d <= window; ++d) {
      const std::size_t j = i + static_cast<std::size_t>(d);
      if (j >= pts.size()) break;
      const double dx = pts[j].x - pts[i].x;
      const double dy = pts[j].y - pts[i].y;
      const double dz = pts[j].z - pts[i].z;
      cand.emplace_back(dx * dx + dy * dy + dz * dz, pts[j].id);
    }
    std::sort(cand.begin(), cand.end());
    const std::size_t take =
        std::min<std::size_t>(cand.size(), static_cast<std::size_t>(neighbours));
    for (std::size_t t = 0; t < take; ++t)
      edges.emplace_back(pts[i].id, cand[t].second);
  }
  return Pattern::fromEdges(n, std::move(edges));
}

namespace {

int scaled(int base, double scale) {
  return std::max(4, static_cast<int>(std::lround(base * std::cbrt(scale))));
}

int scaledLin(int base, double scale) {
  return std::max(16, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

std::vector<Problem> paperSuiteSmall(double scale, std::uint64_t seed) {
  std::vector<Problem> out;
  Rng rng(seed, /*stream=*/0xA11);

  // BMWCRA_1: automotive crankshaft FE model, SYM, n = 148,770.
  out.push_back({"BMWCRA_1",
                 grid3d(scaled(24, scale), scaled(24, scale),
                        scaled(24, scale), /*27pt=*/true),
                 true, "Automotive crankshaft model (3-D FE substitute)",
                 "grid3d27"});

  // GUPTA3: LP matrix A·Aᵀ, SYM, n = 16,783 — few, very dense rows.
  {
    Rng g = rng.fork();
    out.push_back({"GUPTA3",
                   lpAAT(scaledLin(4000, scale), scaledLin(9000, scale), 5, g),
                   true, "Linear programming basis A*A' (random substitute)",
                   "lpAAT"});
  }

  // MSDOOR: medium-size door (shell FE), SYM, n = 415,863 — 2-D-like.
  out.push_back({"MSDOOR",
                 grid2d(scaledLin(340, scale), scaledLin(260, scale),
                        /*9pt=*/true),
                 true, "Medium size door (2-D shell FE substitute)", "grid2d9"});

  // SHIP_003: ship structure, SYM, n = 121,728 — thick shell.
  out.push_back({"SHIP_003",
                 grid3d(scaledLin(90, scale), scaledLin(46, scale),
                        std::max(4, static_cast<int>(std::lround(8 * scale))),
                        true),
                 true, "Ship structure (thick-shell FE substitute)",
                 "grid3d27"});

  // PRE2: AT&T harmonic balance, UNS, n = 659,033 — circuit-like.
  {
    Rng g = rng.fork();
    out.push_back({"PRE2", circuitLike(scaledLin(42000, scale), 6, 40, g),
                   false, "Harmonic balance method (circuit substitute)",
                   "circuit"});
  }

  // TWOTONE: AT&T harmonic balance, UNS, n = 120,750.
  {
    Rng g = rng.fork();
    out.push_back({"TWOTONE", circuitLike(scaledLin(24000, scale), 5, 24, g),
                   false, "Harmonic balance method (circuit substitute)",
                   "circuit"});
  }

  // ULTRASOUND3: 3-D ultrasound wave propagation, UNS, n = 185,193.
  out.push_back({"ULTRASOUND3",
                 grid3d(scaled(26, scale), scaled(26, scale),
                        scaled(26, scale), true),
                 false, "3-D ultrasound propagation (3-D grid substitute)",
                 "grid3d27"});

  // XENON2: complex zeolite crystals (3-D), UNS, n = 157,464.
  {
    Rng g = rng.fork();
    out.push_back({"XENON2",
                   randomMesh(scaledLin(22000, scale), 10, g, /*3d=*/true),
                   false,
                   "Complex zeolite, sodalite crystals (3-D mesh substitute)",
                   "randomMesh3d"});
  }
  return out;
}

std::vector<Problem> paperSuiteLarge(double scale, std::uint64_t seed) {
  std::vector<Problem> out;
  (void)seed;

  // AUDIKW_1: automotive crankshaft, SYM, n = 943,695 — big 3-D FE.
  out.push_back({"AUDIKW_1",
                 grid3d(scaled(34, scale), scaled(34, scale),
                        scaled(34, scale), true),
                 true, "Automotive crankshaft model (large 3-D FE substitute)",
                 "grid3d27"});

  // CONV3D64: CEA-CESTA convection, UNS, n = 836,550 — structured 3-D.
  out.push_back({"CONV3D64",
                 grid3d(scaled(44, scale), scaled(44, scale),
                        scaled(22, scale), false),
                 false, "3-D convection (AQUILON) (7-pt 3-D grid substitute)",
                 "grid3d7"});

  // ULTRASOUND80: 3-D ultrasound, UNS, n = 531,441 (81³).
  out.push_back({"ULTRASOUND80",
                 grid3d(scaled(30, scale), scaled(30, scale),
                        scaled(30, scale), true),
                 false, "3-D ultrasound propagation, larger (3-D substitute)",
                 "grid3d27"});
  return out;
}

std::optional<Problem> paperProblem(const std::string& name, double scale,
                                    std::uint64_t seed) {
  auto canon = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
  };
  const std::string want = canon(name);
  for (auto& suite : {paperSuiteSmall(scale, seed), paperSuiteLarge(scale, seed)})
    for (auto& p : suite)
      if (canon(p.name) == want) return p;
  return std::nullopt;
}

}  // namespace loadex::sparse
