// Synthetic sparse-problem generators.
//
// The paper evaluates on matrices from the PARASOL and Tim Davis
// collections (Tables 1 and 2). Those files are not redistributable here,
// so each paper matrix is substituted by a generator producing a pattern
// of the same structural family (3-D/2-D finite-element grids, A·Aᵀ of a
// sparse LP matrix, circuit-like irregular graphs). What the experiments
// depend on — the shape of the assembly tree and the distribution of
// front sizes — is preserved by family; DESIGN.md documents the mapping.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sparse/pattern.h"

namespace loadex::sparse {

struct Problem {
  std::string name;         ///< paper matrix it substitutes (or own name)
  Pattern pattern;
  bool symmetric = true;    ///< SYM vs UNS in the paper's tables
  std::string description;
  std::string family;       ///< generator family used
};

// ---- elementary generators ------------------------------------------------

/// 5-point (or 9-point) 2-D grid Laplacian pattern, nx*ny vertices.
Pattern grid2d(int nx, int ny, bool nine_point = false);

/// 7-point (or 27-point) 3-D grid Laplacian pattern.
Pattern grid3d(int nx, int ny, int nz, bool twenty_seven_point = false);

/// Pattern of A·Aᵀ for a random sparse m×k LP-style matrix with
/// `nnz_per_col` entries per column. Produces dense-ish rows like GUPTA3.
Pattern lpAAT(int m, int k, int nnz_per_col, Rng& rng);

/// Circuit-like irregular pattern: mostly short-range couplings plus a few
/// high-degree nets (like TWOTONE / PRE2 / XENON2).
Pattern circuitLike(int n, int avg_degree, int num_hubs, Rng& rng);

/// Random geometric-ish mesh: k-nearest-neighbour graph of random points
/// on the unit square (`three_d == false`) or unit cube (unstructured
/// FE-style; 3-D meshes produce the larger separators of volume models).
Pattern randomMesh(int n, int neighbours, Rng& rng, bool three_d = false);

// ---- the paper's test suites ----------------------------------------------

/// Table 1 equivalents (8 problems used for the memory experiments).
/// `scale` rescales the number of unknowns; 1.0 is the library default
/// (sized so the whole benchmark suite runs in minutes on one core).
std::vector<Problem> paperSuiteSmall(double scale = 1.0,
                                     std::uint64_t seed = 1);

/// Table 2 equivalents (AUDIKW_1, CONV3D64, ULTRASOUND80) used for the
/// time / message-count experiments.
std::vector<Problem> paperSuiteLarge(double scale = 1.0,
                                     std::uint64_t seed = 1);

/// Look a problem up by (case-insensitive) name across both suites.
std::optional<Problem> paperProblem(const std::string& name,
                                    double scale = 1.0,
                                    std::uint64_t seed = 1);

}  // namespace loadex::sparse
