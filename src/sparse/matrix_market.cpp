#include "sparse/matrix_market.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/expect.h"

namespace loadex::sparse {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

Pattern readMatrixMarket(std::istream& in, MatrixMarketInfo* info) {
  std::string line;
  LOADEX_EXPECT(static_cast<bool>(std::getline(in, line)),
                "empty matrix market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  LOADEX_EXPECT(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  LOADEX_EXPECT(lower(object) == "matrix", "only matrix objects supported");
  LOADEX_EXPECT(lower(format) == "coordinate",
                "only coordinate format supported");
  const std::string sym = lower(symmetry);
  LOADEX_EXPECT(sym == "general" || sym == "symmetric",
                "only general/symmetric supported");

  // Skip comments.
  do {
    LOADEX_EXPECT(static_cast<bool>(std::getline(in, line)),
                  "truncated matrix market stream");
  } while (!line.empty() && line[0] == '%');

  std::istringstream dims(line);
  int rows = 0, cols = 0;
  std::int64_t entries = 0;
  dims >> rows >> cols >> entries;
  LOADEX_EXPECT(rows > 0 && cols > 0 && entries >= 0,
                "bad matrix market dimensions");
  LOADEX_EXPECT(rows == cols, "only square matrices supported");

  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(entries));
  for (std::int64_t e = 0; e < entries; ++e) {
    LOADEX_EXPECT(static_cast<bool>(std::getline(in, line)),
                  "truncated matrix market entries");
    std::istringstream es(line);
    int i = 0, j = 0;
    es >> i >> j;  // values (if any) are ignored
    LOADEX_EXPECT(i >= 1 && i <= rows && j >= 1 && j <= cols,
                  "entry index out of range");
    edges.emplace_back(i - 1, j - 1);
  }
  if (info != nullptr)
    *info = {rows, cols, entries, sym == "symmetric"};
  return Pattern::fromEdges(rows, std::move(edges));
}

Pattern readMatrixMarketFile(const std::string& path, MatrixMarketInfo* info) {
  std::ifstream in(path);
  LOADEX_EXPECT(in.good(), "cannot open matrix market file: " + path);
  return readMatrixMarket(in, info);
}

void writeMatrixMarket(std::ostream& out, const Pattern& pattern) {
  std::int64_t lower_entries = 0;
  for (int i = 0; i < pattern.n(); ++i)
    for (const int j : pattern.row(i))
      if (j < i) ++lower_entries;
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << pattern.n() << " " << pattern.n() << " "
      << lower_entries + pattern.n() << "\n";
  for (int i = 0; i < pattern.n(); ++i) {
    out << (i + 1) << " " << (i + 1) << "\n";
    for (const int j : pattern.row(i))
      if (j < i) out << (i + 1) << " " << (j + 1) << "\n";
  }
}

}  // namespace loadex::sparse
