#include "sparse/pattern.h"

#include <algorithm>
#include <numeric>

#include "common/expect.h"

namespace loadex::sparse {

Pattern Pattern::fromEdges(int n, std::vector<std::pair<int, int>> edges) {
  LOADEX_EXPECT(n >= 0, "pattern size must be non-negative");
  Pattern p;
  p.n_ = n;

  // Symmetrize, drop diagonal.
  std::vector<std::pair<int, int>> sym;
  sym.reserve(edges.size() * 2);
  for (const auto& [i, j] : edges) {
    LOADEX_EXPECT(i >= 0 && i < n && j >= 0 && j < n,
                  "edge endpoint out of range");
    if (i == j) continue;
    sym.emplace_back(i, j);
    sym.emplace_back(j, i);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  p.ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [i, _] : sym) ++p.ptr_[static_cast<std::size_t>(i) + 1];
  for (int i = 0; i < n; ++i)
    p.ptr_[static_cast<std::size_t>(i) + 1] +=
        p.ptr_[static_cast<std::size_t>(i)];
  p.ind_.resize(sym.size());
  std::size_t k = 0;
  for (const auto& [_, j] : sym) p.ind_[k++] = j;
  return p;
}

std::span<const int> Pattern::row(int i) const {
  LOADEX_EXPECT(i >= 0 && i < n_, "row index out of range");
  const auto begin = static_cast<std::size_t>(ptr_[static_cast<std::size_t>(i)]);
  const auto end =
      static_cast<std::size_t>(ptr_[static_cast<std::size_t>(i) + 1]);
  return {ind_.data() + begin, end - begin};
}

Pattern Pattern::permuted(const std::vector<int>& new_to_old) const {
  LOADEX_EXPECT(static_cast<int>(new_to_old.size()) == n_,
                "permutation size mismatch");
  LOADEX_EXPECT(isPermutation(new_to_old), "not a permutation");
  const std::vector<int> old_to_new = invertPermutation(new_to_old);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(ind_.size() / 2);
  for (int i = 0; i < n_; ++i) {
    for (const int j : row(i)) {
      if (j > i) continue;  // each undirected edge once
      edges.emplace_back(old_to_new[static_cast<std::size_t>(i)],
                         old_to_new[static_cast<std::size_t>(j)]);
    }
  }
  return fromEdges(n_, std::move(edges));
}

int Pattern::connectedComponents(std::vector<int>* labels) const {
  std::vector<int> lbl(static_cast<std::size_t>(n_), -1);
  int count = 0;
  std::vector<int> stack;
  for (int s = 0; s < n_; ++s) {
    if (lbl[static_cast<std::size_t>(s)] != -1) continue;
    stack.push_back(s);
    lbl[static_cast<std::size_t>(s)] = count;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const int w : row(v)) {
        if (lbl[static_cast<std::size_t>(w)] == -1) {
          lbl[static_cast<std::size_t>(w)] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  if (labels != nullptr) *labels = std::move(lbl);
  return count;
}

bool Pattern::hasEdge(int i, int j) const {
  const auto r = row(i);
  return std::binary_search(r.begin(), r.end(), j);
}

bool isPermutation(const std::vector<int>& p) {
  const int n = static_cast<int>(p.size());
  std::vector<bool> seen(p.size(), false);
  for (const int v : p) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

std::vector<int> invertPermutation(const std::vector<int>& p) {
  std::vector<int> inv(p.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    inv[static_cast<std::size_t>(p[i])] = static_cast<int>(i);
  return inv;
}

std::vector<int> identityPermutation(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  return p;
}

}  // namespace loadex::sparse
