// Elimination tree, postorder and factor column counts.
//
// All routines operate on the *graph form* pattern (symmetric adjacency,
// no diagonal) under a given ordering. The elimination tree is the core
// dependency structure of sparse factorization: column j's elimination
// must precede its parent's.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/pattern.h"

namespace loadex::symbolic {

/// Liu's elimination-tree algorithm with path compression.
/// parent[i] > i for non-roots, -1 for roots. O(nnz * alpha).
std::vector<int> eliminationTree(const sparse::Pattern& pattern);

/// Postorder of a forest given by parent[]. Children are visited in
/// increasing order, roots in increasing order; returns new->old.
std::vector<int> postorder(const std::vector<int>& parent);

/// Exact column counts of the Cholesky factor L (including the diagonal),
/// by row-subtree traversal. Cost is O(nnz(L)).
std::vector<std::int64_t> columnCounts(const sparse::Pattern& pattern,
                                       const std::vector<int>& parent);

/// Height of each node above the deepest leaf of its subtree (tree depth
/// diagnostics).
int treeHeight(const std::vector<int>& parent);

}  // namespace loadex::symbolic
