#include "symbolic/assembly_tree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/expect.h"
#include "symbolic/etree.h"

namespace loadex::symbolic {

AssemblyTree::AssemblyTree(std::vector<FrontNode> nodes, int nvars)
    : nodes_(std::move(nodes)), nvars_(nvars) {
  std::vector<int> parent(nodes_.size(), -1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    LOADEX_EXPECT(nodes_[i].id == static_cast<int>(i),
                  "assembly tree ids must be dense");
    parent[i] = nodes_[i].parent;
    if (nodes_[i].parent == -1) roots_.push_back(static_cast<int>(i));
  }
  post_ = symbolic::postorder(parent);
}

const FrontNode& AssemblyTree::node(int id) const {
  LOADEX_EXPECT(id >= 0 && id < size(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

std::int64_t AssemblyTree::totalPivots() const {
  std::int64_t total = 0;
  for (const auto& nd : nodes_) total += nd.npiv;
  return total;
}

int AssemblyTree::height() const {
  std::vector<int> parent(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) parent[i] = nodes_[i].parent;
  return treeHeight(parent);
}

int AssemblyTree::maxFront() const {
  int m = 0;
  for (const auto& nd : nodes_) m = std::max(m, nd.front);
  return m;
}

std::string AssemblyTree::render(int max_nodes) const {
  std::ostringstream os;
  int emitted = 0;
  std::function<void(int, int)> emit = [&](int id, int depth) {
    if (emitted >= max_nodes) return;
    const auto& nd = node(id);
    for (int d = 0; d < depth; ++d) os << "  ";
    os << "front #" << id << "  m=" << nd.front << " npiv=" << nd.npiv
       << " cb=" << nd.border() << "\n";
    ++emitted;
    // Children, biggest front first, so truncation keeps the heavy path.
    auto kids = nd.children;
    std::sort(kids.begin(), kids.end(), [&](int a, int b) {
      return node(a).front > node(b).front;
    });
    for (const int c : kids) emit(c, depth + 1);
  };
  for (const int r : roots_) emit(r, 0);
  if (emitted >= max_nodes) os << "... (" << size() - emitted << " more)\n";
  return os.str();
}

AssemblyTree buildAssemblyTree(const std::vector<int>& parent,
                               const std::vector<std::int64_t>& col_count,
                               AmalgamationOptions options) {
  const int n = static_cast<int>(parent.size());
  LOADEX_EXPECT(col_count.size() == parent.size(),
                "column count size mismatch");
  for (int j = 0; j < n; ++j)
    LOADEX_EXPECT(parent[static_cast<std::size_t>(j)] == -1 ||
                      parent[static_cast<std::size_t>(j)] > j,
                  "assembly tree needs a postordered (monotone) etree");

  // ---- 1. fundamental(ish) supernodes: maximal runs of consecutive
  // columns along a chain with nested structure.
  struct Sup {
    int first = 0;
    int npiv = 0;
    int border = 0;    ///< col_count(last) - 1
    int parent = -1;   ///< supernode index, filled below
  };
  std::vector<Sup> sups;
  std::vector<int> sup_of_col(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    const bool extend =
        !sups.empty() && parent[static_cast<std::size_t>(j) - 1] == j &&
        sups.back().first + sups.back().npiv == j &&
        col_count[static_cast<std::size_t>(j) - 1] ==
            col_count[static_cast<std::size_t>(j)] + 1;
    if (extend) {
      ++sups.back().npiv;
    } else {
      sups.push_back(Sup{j, 1, 0, -1});
    }
    sup_of_col[static_cast<std::size_t>(j)] =
        static_cast<int>(sups.size()) - 1;
  }
  for (auto& s : sups) {
    const int last = s.first + s.npiv - 1;
    s.border =
        static_cast<int>(col_count[static_cast<std::size_t>(last)]) - 1;
    const int pcol = parent[static_cast<std::size_t>(last)];
    s.parent = (pcol == -1) ? -1 : sup_of_col[static_cast<std::size_t>(pcol)];
  }

  // ---- 2. relaxed amalgamation (children are processed before parents
  // because supernode indices increase with first column).
  const int ns = static_cast<int>(sups.size());
  std::vector<int> merged_into(static_cast<std::size_t>(ns), -1);
  std::function<int(int)> find = [&](int s) {
    while (merged_into[static_cast<std::size_t>(s)] != -1)
      s = merged_into[static_cast<std::size_t>(s)];
    return s;
  };
  for (int s = 0; s < ns; ++s) {
    if (sups[static_cast<std::size_t>(s)].parent == -1) continue;
    const int p = find(sups[static_cast<std::size_t>(s)].parent);
    if (p == s) continue;
    auto& child = sups[static_cast<std::size_t>(s)];
    auto& par = sups[static_cast<std::size_t>(p)];
    const double m_child = child.npiv + child.border;
    const double m_par = par.npiv + par.border;
    const double m_new = child.npiv + par.npiv + par.border;
    // Merging widens the child's pivot rows/columns from m_child to m_new.
    const double extra_fill = 2.0 * child.npiv * (m_new - m_child);
    const double own = m_child * m_child + m_par * m_par;
    const bool tiny_child =
        child.npiv <= options.small_supernode &&
        par.npiv + child.npiv <= options.max_amalgamated_pivots;
    const bool cheap_fill =
        extra_fill <= options.fill_tolerance * own &&
        par.npiv + child.npiv <= 4 * options.max_amalgamated_pivots;
    if (tiny_child || cheap_fill) {
      merged_into[static_cast<std::size_t>(s)] = p;
      par.npiv += child.npiv;
      par.first = std::min(par.first, child.first);
    }
  }

  // ---- 3. compact the surviving supernodes into FrontNodes.
  std::vector<int> final_id(static_cast<std::size_t>(ns), -1);
  std::vector<FrontNode> nodes;
  for (int s = 0; s < ns; ++s) {
    if (merged_into[static_cast<std::size_t>(s)] != -1) continue;
    FrontNode nd;
    nd.id = static_cast<int>(nodes.size());
    nd.first_col = sups[static_cast<std::size_t>(s)].first;
    nd.npiv = sups[static_cast<std::size_t>(s)].npiv;
    nd.front =
        sups[static_cast<std::size_t>(s)].npiv +
        sups[static_cast<std::size_t>(s)].border;
    final_id[static_cast<std::size_t>(s)] = nd.id;
    nodes.push_back(nd);
  }
  for (int s = 0; s < ns; ++s) {
    if (merged_into[static_cast<std::size_t>(s)] != -1) continue;
    const int ps = sups[static_cast<std::size_t>(s)].parent;
    const int fid = final_id[static_cast<std::size_t>(s)];
    if (ps != -1) {
      const int fp = final_id[static_cast<std::size_t>(find(ps))];
      LOADEX_EXPECT(fp != fid, "amalgamation created a self-loop");
      nodes[static_cast<std::size_t>(fid)].parent = fp;
      nodes[static_cast<std::size_t>(fp)].children.push_back(fid);
    }
  }
  return AssemblyTree(std::move(nodes), n);
}

}  // namespace loadex::symbolic
