// Full symbolic-analysis pipeline: ordering -> postordered elimination
// tree -> column counts -> amalgamated assembly tree. This is the
// "symbolic preprocessing step" of the paper's solver (§4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/pattern.h"
#include "symbolic/assembly_tree.h"
#include "symbolic/etree.h"

namespace loadex::symbolic {

struct Analysis {
  /// Combined new->old permutation (fill-reducing ordering ∘ postorder).
  std::vector<int> perm;
  /// Monotone elimination tree on the final ordering.
  std::vector<int> parent;
  /// Exact factor column counts (incl. diagonal) on the final ordering.
  std::vector<std::int64_t> col_count;
  /// nnz(L) — sum of the column counts.
  std::int64_t factor_nnz = 0;
  /// Cholesky-style flop estimate: sum of squared column counts.
  double factor_flops = 0.0;
  /// Amalgamated assembly tree.
  AssemblyTree tree;
};

/// Run the pipeline under a given fill-reducing ordering (new->old).
Analysis analyze(const sparse::Pattern& pattern,
                 const std::vector<int>& ordering,
                 AmalgamationOptions amalgamation = {});

}  // namespace loadex::symbolic
