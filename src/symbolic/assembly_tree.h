// Assembly tree: supernodal elimination tree with relaxed amalgamation.
//
// Each node is a *front*: a dense matrix of order `front` whose first
// `npiv` variables are eliminated at this node; the trailing
// `front - npiv` rows/columns form the contribution block passed to the
// parent. This is exactly MUMPS' task-graph structure (§4.1 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/pattern.h"

namespace loadex::symbolic {

struct FrontNode {
  int id = -1;
  int parent = -1;             ///< assembly-tree parent (-1 for roots)
  std::vector<int> children;
  int first_col = 0;           ///< first pivot column (postordered index)
  int npiv = 0;                ///< variables eliminated at this front
  int front = 0;               ///< front order m (npiv + border)

  int border() const { return front - npiv; }
};

struct AmalgamationOptions {
  /// Merge a child into its parent when the child eliminates fewer
  /// variables than this (classic small-supernode absorption) ...
  int small_supernode = 4;
  /// ... as long as the parent's accumulated pivot block stays below this
  /// (prevents the whole tree collapsing into a handful of giant fronts).
  int max_amalgamated_pivots = 64;
  /// Otherwise merge when the extra factor entries created by the merge
  /// stay below this fraction of the two fronts' own entries.
  double fill_tolerance = 0.08;
};

class AssemblyTree {
 public:
  AssemblyTree() = default;
  AssemblyTree(std::vector<FrontNode> nodes, int nvars);

  int size() const { return static_cast<int>(nodes_.size()); }
  int nvars() const { return nvars_; }
  const FrontNode& node(int id) const;
  const std::vector<FrontNode>& nodes() const { return nodes_; }
  const std::vector<int>& roots() const { return roots_; }

  /// Node ids in postorder (children before parents).
  const std::vector<int>& postorder() const { return post_; }

  /// Sum of npiv over all nodes == nvars (invariant).
  std::int64_t totalPivots() const;

  /// Diagnostics.
  int height() const;
  int maxFront() const;

  /// ASCII rendering of the tree (largest fronts first), truncated to
  /// `max_nodes` lines — used by the Fig. 2 example.
  std::string render(int max_nodes = 60) const;

 private:
  std::vector<FrontNode> nodes_;
  std::vector<int> roots_;
  std::vector<int> post_;
  int nvars_ = 0;
};

/// Build the supernodal assembly tree from an elimination tree and exact
/// column counts (both on the postordered matrix), then apply relaxed
/// amalgamation.
AssemblyTree buildAssemblyTree(const std::vector<int>& parent,
                               const std::vector<std::int64_t>& col_count,
                               AmalgamationOptions options = {});

}  // namespace loadex::symbolic
