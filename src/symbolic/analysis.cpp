#include "symbolic/analysis.h"

#include "common/expect.h"

namespace loadex::symbolic {

Analysis analyze(const sparse::Pattern& pattern,
                 const std::vector<int>& ordering,
                 AmalgamationOptions amalgamation) {
  LOADEX_EXPECT(static_cast<int>(ordering.size()) == pattern.n(),
                "ordering size mismatch");
  Analysis a;

  // Apply the fill-reducing ordering, then postorder the elimination tree
  // so that supernode detection sees a monotone parent structure.
  const sparse::Pattern permuted = pattern.permuted(ordering);
  const std::vector<int> parent0 = eliminationTree(permuted);
  const std::vector<int> post = postorder(parent0);

  a.perm.resize(ordering.size());
  for (std::size_t i = 0; i < post.size(); ++i)
    a.perm[i] = ordering[static_cast<std::size_t>(post[i])];

  const sparse::Pattern reordered = permuted.permuted(post);
  a.parent = eliminationTree(reordered);
  a.col_count = columnCounts(reordered, a.parent);

  a.factor_nnz = 0;
  a.factor_flops = 0.0;
  for (const auto c : a.col_count) {
    a.factor_nnz += c;
    a.factor_flops += static_cast<double>(c) * static_cast<double>(c);
  }

  a.tree = buildAssemblyTree(a.parent, a.col_count, amalgamation);
  LOADEX_EXPECT(a.tree.totalPivots() == pattern.n(),
                "assembly tree lost pivots");
  return a;
}

}  // namespace loadex::symbolic
