#include "symbolic/etree.h"

#include <algorithm>

#include "common/expect.h"

namespace loadex::symbolic {

std::vector<int> eliminationTree(const sparse::Pattern& pattern) {
  const int n = pattern.n();
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> ancestor(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    for (const int j : pattern.row(i)) {
      if (j >= i) continue;
      // Walk from j to the root of its current subtree, compressing the
      // ancestor path, then link that root to i.
      int k = j;
      while (ancestor[static_cast<std::size_t>(k)] != -1 &&
             ancestor[static_cast<std::size_t>(k)] != i) {
        const int next = ancestor[static_cast<std::size_t>(k)];
        ancestor[static_cast<std::size_t>(k)] = i;
        k = next;
      }
      if (ancestor[static_cast<std::size_t>(k)] == -1) {
        ancestor[static_cast<std::size_t>(k)] = i;
        parent[static_cast<std::size_t>(k)] = i;
      }
    }
  }
  return parent;
}

std::vector<int> postorder(const std::vector<int>& parent) {
  const int n = static_cast<int>(parent.size());
  // Children lists, built so smaller children come first.
  std::vector<int> head(static_cast<std::size_t>(n), -1);
  std::vector<int> next(static_cast<std::size_t>(n), -1);
  for (int v = n - 1; v >= 0; --v) {
    const int p = parent[static_cast<std::size_t>(v)];
    if (p != -1) {
      next[static_cast<std::size_t>(v)] = head[static_cast<std::size_t>(p)];
      head[static_cast<std::size_t>(p)] = v;
    }
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<std::pair<int, int>> stack;  // (node, next child to expand)
  for (int root = 0; root < n; ++root) {
    if (parent[static_cast<std::size_t>(root)] != -1) continue;
    stack.emplace_back(root, head[static_cast<std::size_t>(root)]);
    while (!stack.empty()) {
      auto& [v, child] = stack.back();
      if (child == -1) {
        order.push_back(v);
        stack.pop_back();
      } else {
        const int c = child;
        child = next[static_cast<std::size_t>(c)];
        stack.emplace_back(c, head[static_cast<std::size_t>(c)]);
      }
    }
  }
  LOADEX_EXPECT(static_cast<int>(order.size()) == n,
                "postorder did not visit every node (cycle in parent[]?)");
  return order;
}

std::vector<std::int64_t> columnCounts(const sparse::Pattern& pattern,
                                       const std::vector<int>& parent) {
  const int n = pattern.n();
  LOADEX_EXPECT(static_cast<int>(parent.size()) == n, "parent size mismatch");
  std::vector<std::int64_t> count(static_cast<std::size_t>(n), 1);  // diag
  std::vector<int> mark(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    for (const int j : pattern.row(i)) {
      if (j >= i) continue;
      // Climb the row subtree of i starting at j; stop at visited nodes.
      int k = j;
      while (k != -1 && k != i && mark[static_cast<std::size_t>(k)] != i) {
        ++count[static_cast<std::size_t>(k)];
        mark[static_cast<std::size_t>(k)] = i;
        k = parent[static_cast<std::size_t>(k)];
      }
    }
  }
  return count;
}

int treeHeight(const std::vector<int>& parent) {
  const int n = static_cast<int>(parent.size());
  std::vector<int> depth(static_cast<std::size_t>(n), -1);
  int height = 0;
  for (int v = 0; v < n; ++v) {
    // Walk up until a node with known depth.
    int len = 0;
    int k = v;
    while (k != -1 && depth[static_cast<std::size_t>(k)] == -1) {
      ++len;
      k = parent[static_cast<std::size_t>(k)];
    }
    int base = (k == -1) ? 0 : depth[static_cast<std::size_t>(k)] + 1;
    // Assign depths along the walked path.
    k = v;
    int d = base + len - 1;
    while (k != -1 && depth[static_cast<std::size_t>(k)] == -1) {
      depth[static_cast<std::size_t>(k)] = d--;
      k = parent[static_cast<std::size_t>(k)];
    }
    height = std::max(height, depth[static_cast<std::size_t>(v)] + 1);
  }
  return height;
}

}  // namespace loadex::symbolic
