#include "sim/network.h"

#include <algorithm>

#include "common/expect.h"
#include "obs/trace.h"

namespace loadex::sim {

namespace {

inline int netTrack(Rank rank, Channel channel) {
  return obs::rankTrack(rank, channel == Channel::kState
                                  ? obs::Lane::kNetState
                                  : obs::Lane::kNetApp);
}

}  // namespace

Network::Network(EventQueue& queue, NetworkConfig config, int nprocs)
    : queue_(queue),
      config_(config),
      nprocs_(nprocs),
      receivers_(static_cast<std::size_t>(nprocs)),
      sender_free_at_(static_cast<std::size_t>(nprocs), 0.0),
      pair_last_arrival_(
          static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs),
          0.0),
      jitter_rng_(config.seed),
      fault_rng_(config.faults.seed),
      faults_enabled_(config.faults.enabled()) {
  LOADEX_EXPECT(nprocs > 0, "network needs at least one process");
  LOADEX_EXPECT(config_.latency_s >= 0.0, "latency must be non-negative");
  LOADEX_EXPECT(config_.jitter_s >= 0.0, "jitter must be non-negative");
  LOADEX_EXPECT(config_.bandwidth_bytes_per_s > 0.0,
                "bandwidth must be positive");
  const auto& f = config_.faults;
  LOADEX_EXPECT(f.drop_prob >= 0.0 && f.drop_prob <= 1.0,
                "drop probability must be in [0,1]");
  LOADEX_EXPECT(f.duplicate_prob >= 0.0 && f.duplicate_prob <= 1.0,
                "duplicate probability must be in [0,1]");
  LOADEX_EXPECT(f.latency_spike_prob >= 0.0 && f.latency_spike_prob <= 1.0,
                "latency-spike probability must be in [0,1]");
  LOADEX_EXPECT(f.latency_spike_s >= 0.0,
                "latency spike must be non-negative");
  for (const auto& b : f.blackouts)
    LOADEX_EXPECT(b.end >= b.start, "blackout window must have end >= start");
}

void Network::setReceiver(Rank rank, DeliveryFn fn) {
  LOADEX_EXPECT(rank >= 0 && rank < static_cast<Rank>(receivers_.size()),
                "receiver rank out of range");
  receivers_[static_cast<std::size_t>(rank)] = std::move(fn);
}

double Network::transferTime(Bytes size) const {
  return static_cast<double>(size + config_.per_message_overhead_bytes) /
         config_.bandwidth_bytes_per_s;
}

void Network::deliverNow(const Message& msg, std::uint64_t flow) {
  LOADEX_TRACE_WITH({
    const int track = netTrack(msg.dst, msg.channel);
    const std::string name =
        "rcv " + lx_tr_->messageName(static_cast<int>(msg.channel), msg.tag);
    lx_tr_->completeSpan(queue_.now(), queue_.now(), track, name);
    if (flow != 0) lx_tr_->flowEnd(queue_.now(), track, name, flow);
  });
  auto& recv = receivers_[static_cast<std::size_t>(msg.dst)];
  LOADEX_EXPECT(static_cast<bool>(recv), "no receiver registered for rank");
  recv(msg);
}

void Network::scheduleDelivery(const Message& msg, SimTime arrival,
                               std::uint64_t flow) {
  queue_.scheduleAt(arrival,
                    [this, m = msg, flow]() { deliverNow(m, flow); });
}

Network::TxPlan Network::planTx(const Message& msg) {
  LOADEX_EXPECT(msg.src >= 0 && msg.src < static_cast<Rank>(receivers_.size()),
                "message src out of range");
  LOADEX_EXPECT(msg.dst >= 0 && msg.dst < static_cast<Rank>(receivers_.size()),
                "message dst out of range");
  LOADEX_EXPECT(msg.src != msg.dst, "self-sends are not modelled");
  LOADEX_EXPECT(msg.size >= 0, "message size must be non-negative");

  const SimTime now = queue_.now();
  const Bytes wire = msg.size + config_.per_message_overhead_bytes;

  TxPlan plan;
  plan.transfer = transferTime(msg.size);
  plan.depart = now;
  if (config_.serialize_sender) {
    auto& free_at = sender_free_at_[static_cast<std::size_t>(msg.src)];
    plan.depart = std::max(now, free_at);
    free_at = plan.depart + plan.transfer;
  }
  plan.arrival = plan.depart + plan.transfer + config_.latency_s;
  if (config_.jitter_s > 0.0)
    plan.arrival += jitter_rng_.uniformReal(0.0, config_.jitter_s);

  // The sender transmitted in every case: count the message and its wire
  // bytes (payload + header overhead) before any fault is applied.
  counts_.bump(channelName(msg.channel));
  bytes_sent_ += wire;
  channel_bytes_[static_cast<std::size_t>(msg.channel)] += wire;

  if (faults_enabled_ && faultsApplyTo(msg.channel)) {
    const auto& f = config_.faults;
    for (const auto& b : f.blackouts) {
      if (b.matches(msg.src, msg.dst, now)) {
        counts_.bump("fault_blackout");
        LOADEX_TRACE_WITH(lx_tr_->instant(
            now, netTrack(msg.src, msg.channel),
            "blackout " +
                lx_tr_->messageName(static_cast<int>(msg.channel), msg.tag)));
        return plan;
      }
    }
    if (f.drop_prob > 0.0 && fault_rng_.bernoulli(f.drop_prob)) {
      counts_.bump("fault_drop");
      LOADEX_TRACE_WITH(lx_tr_->instant(
          now, netTrack(msg.src, msg.channel),
          "drop " +
              lx_tr_->messageName(static_cast<int>(msg.channel), msg.tag)));
      return plan;
    }
    if (f.duplicate_prob > 0.0 && fault_rng_.bernoulli(f.duplicate_prob)) {
      plan.duplicate = true;
      counts_.bump("fault_duplicate");
    }
    if (f.latency_spike_prob > 0.0 &&
        fault_rng_.bernoulli(f.latency_spike_prob)) {
      plan.arrival += f.latency_spike_s;
      counts_.bump("fault_latency_spike");
    }
  }
  plan.delivered = true;

  // FIFO per ordered (src,dst) pair: never deliver before an earlier send.
  auto& last = pairLastArrival(msg.src, msg.dst);
  plan.arrival = std::max(plan.arrival, last);
  last = plan.arrival;

  if (plan.duplicate) {
    // The spurious copy trails one extra latency behind and occupies the
    // wire a second time.
    plan.copy_arrival = plan.arrival + config_.latency_s;
    if (config_.jitter_s > 0.0)
      plan.copy_arrival += fault_rng_.uniformReal(0.0, config_.jitter_s);
    plan.copy_arrival = std::max(plan.copy_arrival, last);
    last = plan.copy_arrival;
    bytes_sent_ += wire;
    channel_bytes_[static_cast<std::size_t>(msg.channel)] += wire;
  }
  return plan;
}

/// Emit the wire slice on the sender's net lane plus the flow-arrow anchor
/// that the delivery event terminates at the receiver; returns the flow id
/// (0 when tracing is off). `label` is "snd" or "dup".
std::uint64_t Network::traceSendSpan(const Message& msg, const TxPlan& plan,
                                     const char* label) {
  std::uint64_t flow = 0;
  LOADEX_TRACE_WITH({
    flow = lx_tr_->nextFlowId();
    const int track = netTrack(msg.src, msg.channel);
    const std::string name =
        std::string(label) + " " +
        lx_tr_->messageName(static_cast<int>(msg.channel), msg.tag);
    lx_tr_->completeSpan(plan.depart, plan.depart + plan.transfer, track,
                         name);
    lx_tr_->flowBegin(plan.depart, track, name, flow);
  });
  return flow;
}

void Network::send(Message msg) {
  const TxPlan plan = planTx(msg);
  if (!plan.delivered) return;
  scheduleDelivery(msg, plan.arrival, traceSendSpan(msg, plan, "snd"));
  if (plan.duplicate) {
    // The spurious copy gets its own flow id so both arrows render.
    scheduleDelivery(msg, plan.copy_arrival, traceSendSpan(msg, plan, "dup"));
  }
}

void Network::broadcast(Message msg, const std::vector<Rank>& dsts) {
  if (dsts.empty()) return;
  if (config_.legacy_kernel) {
    for (const Rank r : dsts) {
      msg.dst = r;
      send(msg);
    }
    return;
  }

  // Plan every destination in order — identical RNG draws, NIC and FIFO
  // bookkeeping as N individual sends — then register the surviving
  // deliveries as one logical broadcast event. The queue assigns their
  // sequence numbers in this exact order, so the schedule digest matches
  // the eager expansion bit for bit.
  std::vector<BroadcastTarget> targets;
  targets.reserve(dsts.size());
  for (const Rank r : dsts) {
    msg.dst = r;
    const TxPlan plan = planTx(msg);
    if (!plan.delivered) continue;
    targets.push_back(BroadcastTarget{plan.arrival, r,
                                      traceSendSpan(msg, plan, "snd"), 0});
    if (plan.duplicate)
      targets.push_back(BroadcastTarget{plan.copy_arrival, r,
                                        traceSendSpan(msg, plan, "dup"), 0});
  }
  ++bcast_stats_.logical_broadcasts;
  bcast_stats_.fanout_deliveries +=
      static_cast<std::int64_t>(targets.size());
  queue_.scheduleBroadcast(
      std::move(targets),
      [this, m = std::move(msg)](const BroadcastTarget& t) mutable {
        m.dst = static_cast<Rank>(t.dst);
        deliverNow(m, t.cookie);
      });
}

}  // namespace loadex::sim
