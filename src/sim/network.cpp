#include "sim/network.h"

#include <algorithm>

#include "common/expect.h"

namespace loadex::sim {

Network::Network(EventQueue& queue, NetworkConfig config, int nprocs)
    : queue_(queue),
      config_(config),
      receivers_(static_cast<std::size_t>(nprocs)),
      sender_free_at_(static_cast<std::size_t>(nprocs), 0.0),
      jitter_rng_(config.seed) {
  LOADEX_EXPECT(nprocs > 0, "network needs at least one process");
  LOADEX_EXPECT(config_.latency_s >= 0.0, "latency must be non-negative");
  LOADEX_EXPECT(config_.jitter_s >= 0.0, "jitter must be non-negative");
  LOADEX_EXPECT(config_.bandwidth_bytes_per_s > 0.0,
                "bandwidth must be positive");
}

void Network::setReceiver(Rank rank, DeliveryFn fn) {
  LOADEX_EXPECT(rank >= 0 && rank < static_cast<Rank>(receivers_.size()),
                "receiver rank out of range");
  receivers_[static_cast<std::size_t>(rank)] = std::move(fn);
}

double Network::transferTime(Bytes size) const {
  return static_cast<double>(size + config_.per_message_overhead_bytes) /
         config_.bandwidth_bytes_per_s;
}

void Network::send(Message msg) {
  LOADEX_EXPECT(msg.src >= 0 && msg.src < static_cast<Rank>(receivers_.size()),
                "message src out of range");
  LOADEX_EXPECT(msg.dst >= 0 && msg.dst < static_cast<Rank>(receivers_.size()),
                "message dst out of range");
  LOADEX_EXPECT(msg.src != msg.dst, "self-sends are not modelled");
  LOADEX_EXPECT(msg.size >= 0, "message size must be non-negative");

  const SimTime now = queue_.now();
  const double transfer = transferTime(msg.size);

  SimTime depart = now;
  if (config_.serialize_sender) {
    auto& free_at = sender_free_at_[static_cast<std::size_t>(msg.src)];
    depart = std::max(now, free_at);
    free_at = depart + transfer;
  }
  SimTime arrival = depart + transfer + config_.latency_s;
  if (config_.jitter_s > 0.0)
    arrival += jitter_rng_.uniformReal(0.0, config_.jitter_s);

  // FIFO per ordered (src,dst) pair: never deliver before an earlier send.
  auto& last = pair_last_arrival_[{msg.src, msg.dst}];
  arrival = std::max(arrival, last);
  last = arrival;

  counts_.bump(channelName(msg.channel));
  bytes_sent_ += msg.size;

  queue_.scheduleAt(arrival, [this, m = std::move(msg)]() {
    auto& recv = receivers_[static_cast<std::size_t>(m.dst)];
    LOADEX_EXPECT(static_cast<bool>(recv), "no receiver registered for rank");
    recv(m);
  });
}

}  // namespace loadex::sim
