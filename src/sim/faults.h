// Deterministic fault injection for the simulated platform.
//
// The plan types are shared with the real-threads runtime and live in
// common/faults.h; this header re-exports them under loadex::sim, which is
// where the simulator's users (sim/network.cpp, sim/process.cpp, the
// fault tests and benches) have always found them. In the simulator the
// plan is interpreted against virtual time and is replay-deterministic:
// two runs with the same configuration produce bit-identical event
// streams.
#pragma once

#include "common/faults.h"

namespace loadex::sim {

using LinkBlackout = loadex::LinkBlackout;
using FaultPlan = loadex::FaultPlan;
using ProcessFaultEvent = loadex::ProcessFaultEvent;
using loadex::processFaultKindName;

}  // namespace loadex::sim
