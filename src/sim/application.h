// Interfaces through which an application and a load-information mechanism
// plug into a simulated process.
//
// The process main loop implements the paper's Algorithm 1:
//   1. state-information messages are received in priority;
//   2. then other (application) messages;
//   3. then the next local ready task is processed — and a process cannot
//      compute and treat messages at the same time.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/faults.h"
#include "common/types.h"
#include "sim/message.h"

namespace loadex::sim {

class Process;

/// A unit of computation. Duration is work / flops_per_s of the process.
struct ComputeTask {
  Flops work = 0.0;
  std::string label;
  /// Fired when the task completes (sends results, updates loads, ...).
  std::function<void(Process&)> on_complete;
};

/// Implemented by the distributed application (the solver).
class Application {
 public:
  virtual ~Application() = default;

  /// Called once at simulation start, before any event fires.
  virtual void onStart(Process&) {}

  /// An application-channel message arrived (task, data, ...).
  virtual void onAppMessage(Process&, const Message&) = 0;

  /// Return the next local ready task, or nullopt if nothing can start now.
  /// The implementation may initiate a mechanism view request here and
  /// return nullopt; progress must then resume via a later message or the
  /// view callback (use Process::notifyReadyWork() from callbacks).
  virtual std::optional<ComputeTask> nextTask(Process&) = 0;

  /// True when this process has no outstanding local work (diagnostics).
  virtual bool finished(const Process&) const { return true; }

  /// The process just crashed (kCrash: queues flushed, running task
  /// aborted without on_complete) or came back up (kRestart: empty, no
  /// state recovered). Fired after the process updated its own state, so
  /// the application can reconcile bookkeeping it keeps *outside* the dead
  /// rank — e.g. mark in-flight requests as lost. Only those two kinds are
  /// reported; pause/resume are transparent to the application.
  virtual void onProcessFault(Process&, loadex::ProcessFaultEvent::Kind) {}
};

/// Implemented by the load-information mechanism (loadex_core binds the
/// paper's three mechanisms to this interface).
class StateHandler {
 public:
  virtual ~StateHandler() = default;

  /// A state-channel message arrived and is being treated.
  virtual void onStateMessage(const Message&) = 0;

  /// While true, the process must not start (or resume) compute tasks —
  /// this is how a live snapshot freezes the computation (§3).
  virtual bool blocksComputation() const { return false; }
};

}  // namespace loadex::sim
