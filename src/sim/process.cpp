#include "sim/process.h"

#include "common/expect.h"
#include "common/log.h"
#include "obs/trace.h"

namespace loadex::sim {

namespace {

inline int mainTrack(Rank rank) {
  return obs::rankTrack(rank, obs::Lane::kMain);
}

}  // namespace

Process::Process(EventQueue& queue, Network& network, Rank rank, int nprocs,
                 ProcessConfig config)
    : queue_(queue),
      network_(network),
      rank_(rank),
      nprocs_(nprocs),
      config_(config) {
  LOADEX_EXPECT(rank >= 0 && rank < nprocs, "rank out of range");
  LOADEX_EXPECT(config_.flops_per_s > 0.0, "flops_per_s must be positive");
  LOADEX_EXPECT(!config_.comm_thread || config_.poll_period_s > 0.0,
                "poll period must be positive in comm-thread mode");
}

void Process::attach(Application* app, StateHandler* state_handler) {
  app_ = app;
  state_handler_ = state_handler;
}

void Process::start() {
  if (app_ != nullptr) app_->onStart(*this);
  schedulePumpAfter(0.0);
}

void Process::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crashes_;
  if (state_ == State::kComputing) {
    busy_time_ += now() - task_started_;
    queue_.cancel(end_event_);
    end_event_ = kNoEvent;
    LOADEX_TRACE_SPAN_END(now(), mainTrack(rank_));
  } else if (state_ == State::kPaused) {
    paused_time_ += now() - paused_since_;
    LOADEX_TRACE_SPAN_END(now(), mainTrack(rank_));
  }
  LOADEX_TRACE_INSTANT(now(), mainTrack(rank_), "crash");
  if (poll_event_ != kNoEvent) {
    queue_.cancel(poll_event_);
    poll_event_ = kNoEvent;
  }
  task_.reset();
  state_ = State::kIdle;
  fault_paused_ = false;
  messages_lost_ +=
      static_cast<std::int64_t>(state_q_.size() + app_q_.size());
  state_q_.clear();
  app_q_.clear();
  if (app_ != nullptr)
    app_->onProcessFault(*this, ProcessFaultEvent::Kind::kCrash);
}

void Process::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++restarts_;
  LOADEX_TRACE_INSTANT(now(), mainTrack(rank_), "restart");
  // In-flight and queued messages were lost while down; local application
  // state is whatever survived the crash (the app/mechanism decide).
  if (app_ != nullptr)
    app_->onProcessFault(*this, ProcessFaultEvent::Kind::kRestart);
  pump();
}

void Process::faultPause() {
  if (crashed_ || fault_paused_) return;
  fault_paused_ = true;
  if (state_ == State::kComputing) pauseTask();
}

void Process::faultResume() {
  if (!fault_paused_) return;
  fault_paused_ = false;
  pump();
}

void Process::deliver(const Message& msg) {
  LOADEX_EXPECT(msg.dst == rank_, "message delivered to wrong process");
  if (crashed_) {
    ++messages_lost_;
    return;
  }
  if (msg.channel == Channel::kState) {
    state_q_.push_back(msg);
  } else {
    app_q_.push_back(msg);
  }
  pump();
}

void Process::send(Rank dst, Channel channel, int tag, Bytes size,
                   std::shared_ptr<const Payload> payload) {
  if (crashed_) return;  // a dead process transmits nothing
  Message m;
  m.src = rank_;
  m.dst = dst;
  m.channel = channel;
  m.tag = tag;
  m.size = size;
  m.payload = std::move(payload);
  network_.send(std::move(m));
}

void Process::broadcast(const std::vector<Rank>& dsts, Channel channel,
                        int tag, Bytes size,
                        std::shared_ptr<const Payload> payload) {
  if (crashed_) return;  // a dead process transmits nothing
  Message m;
  m.src = rank_;
  m.channel = channel;
  m.tag = tag;
  m.size = size;
  m.payload = std::move(payload);
  network_.broadcast(std::move(m), dsts);
}

void Process::notifyReadyWork() { pump(); }

void Process::schedulePumpAfter(SimTime delay) {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  queue_.scheduleAfter(delay, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void Process::pump() {
  if (crashed_ || fault_paused_) return;  // down or stalled by a fault
  if (pump_scheduled_) return;           // a charged continuation is pending
  if (state_ == State::kComputing) return;  // cannot treat messages (Alg. 1)

  // 1. State-information messages have absolute priority.
  if (!state_q_.empty()) {
    Message m = std::move(state_q_.front());
    state_q_.pop_front();
    ++state_handled_;
    msg_handle_time_ += config_.state_msg_handle_s;
    LOADEX_TRACE_WITH(lx_tr_->completeSpan(
        now(), now() + config_.state_msg_handle_s, mainTrack(rank_),
        "rx " + lx_tr_->messageName(static_cast<int>(m.channel), m.tag)));
    if (state_handler_ != nullptr) state_handler_->onStateMessage(m);
    // Charge the handling cost, then continue pumping.
    schedulePumpAfter(config_.state_msg_handle_s);
    return;
  }

  // 2. A paused task resumes once no snapshot blocks computation.
  if (state_ == State::kPaused) {
    if (blocked()) return;  // comm thread keeps the worker frozen
    resumeTask();
    return;
  }

  // 3. While a snapshot is live, only state messages are treated.
  if (blocked()) return;

  // 4. Other messages (tasks, data, ...).
  if (!app_q_.empty()) {
    Message m = std::move(app_q_.front());
    app_q_.pop_front();
    ++app_handled_;
    msg_handle_time_ += config_.app_msg_handle_s;
    LOADEX_TRACE_WITH(lx_tr_->completeSpan(
        now(), now() + config_.app_msg_handle_s, mainTrack(rank_),
        "rx " + lx_tr_->messageName(static_cast<int>(m.channel), m.tag)));
    if (app_ != nullptr) app_->onAppMessage(*this, m);
    schedulePumpAfter(config_.app_msg_handle_s);
    return;
  }

  // 5. Process a new local ready task.
  if (app_ != nullptr) {
    std::optional<ComputeTask> task = app_->nextTask(*this);
    if (task.has_value()) {
      startTask(std::move(*task));
      return;
    }
    // nextTask may have initiated a (blocking) view request; if so the
    // blocked() branch above keeps us from spinning — nothing else to do.
  }
  // Idle: progress resumes on the next deliver()/notifyReadyWork().
}

void Process::startTask(ComputeTask task) {
  LOADEX_EXPECT(state_ == State::kIdle, "task start while not idle");
  LOADEX_EXPECT(task.work >= 0.0, "task work must be non-negative");
  state_ = State::kComputing;
  task_ = std::move(task);
  task_started_ = now();
  task_remaining_ = task_->work;
  ++tasks_run_;
  LOADEX_TRACE_SPAN_BEGIN(now(), mainTrack(rank_),
                          task_->label.empty() ? "task" : task_->label);
  end_event_ =
      queue_.scheduleAfter(task_remaining_ / config_.flops_per_s,
                           [this] { finishTask(); });
  if (config_.comm_thread) schedulePoll();
}

void Process::finishTask() {
  LOADEX_EXPECT(state_ == State::kComputing, "finish of a non-running task");
  busy_time_ += now() - task_started_;
  LOADEX_TRACE_SPAN_END(now(), mainTrack(rank_));
  state_ = State::kIdle;
  end_event_ = kNoEvent;
  if (poll_event_ != kNoEvent) {
    queue_.cancel(poll_event_);
    poll_event_ = kNoEvent;
  }
  auto cb = std::move(task_->on_complete);
  task_.reset();
  if (cb) cb(*this);
  pump();
}

void Process::pauseTask() {
  LOADEX_EXPECT(state_ == State::kComputing, "pause of a non-running task");
  const SimTime elapsed = now() - task_started_;
  busy_time_ += elapsed;
  task_remaining_ -= elapsed * config_.flops_per_s;
  if (task_remaining_ < 0.0) task_remaining_ = 0.0;
  queue_.cancel(end_event_);
  end_event_ = kNoEvent;
  if (poll_event_ != kNoEvent) {
    queue_.cancel(poll_event_);
    poll_event_ = kNoEvent;
  }
  state_ = State::kPaused;
  paused_since_ = now();
  LOADEX_TRACE_SPAN_END(now(), mainTrack(rank_));
  LOADEX_TRACE_SPAN_BEGIN(now(), mainTrack(rank_), "paused");
}

void Process::resumeTask() {
  LOADEX_EXPECT(state_ == State::kPaused, "resume of a non-paused task");
  paused_time_ += now() - paused_since_;
  LOADEX_TRACE_SPAN_END(now(), mainTrack(rank_));
  LOADEX_TRACE_SPAN_BEGIN(now(), mainTrack(rank_),
                          task_->label.empty() ? "task" : task_->label);
  state_ = State::kComputing;
  task_started_ = now();
  end_event_ =
      queue_.scheduleAfter(task_remaining_ / config_.flops_per_s,
                           [this] { finishTask(); });
  if (config_.comm_thread) schedulePoll();
}

void Process::schedulePoll() {
  poll_event_ = queue_.scheduleAfter(config_.poll_period_s, [this] {
    poll_event_ = kNoEvent;
    pollTick();
  });
}

void Process::pollTick() {
  if (state_ != State::kComputing) return;  // task ended before the tick
  if (!state_q_.empty() || blocked()) {
    // The communication thread takes the MPI lock: the worker is paused
    // while state messages are treated (and, for start_snp, until the
    // snapshot completes).
    pauseTask();
    pump();
  } else {
    schedulePoll();
  }
}

}  // namespace loadex::sim
