#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/expect.h"
#include "obs/metrics.h"

namespace loadex::sim {

namespace {

inline void fnv1a(std::uint64_t& digest, std::uint64_t bits) {
  digest ^= bits;
  digest *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
}

}  // namespace

// ---- slab pool ------------------------------------------------------------

std::uint32_t EventQueue::allocSlot() {
  ++pool_stats_.node_allocations;
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    ++pool_stats_.free_list_reuses;
    return slot;
  }
  if (total_slots_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    ++pool_stats_.pool_chunks;
  }
  return total_slots_++;
}

void EventQueue::freeSlot(std::uint32_t slot) {
  Node& n = node(slot);
  ++n.gen;
  if (n.gen == 0) n.gen = 1;  // slot 0 + gen 0 would collide with kNoEvent
  n.broadcast = false;
  n.next_target = 0;
  n.fn = nullptr;
  n.fire = nullptr;
  n.targets.clear();  // keeps capacity for the slot's next broadcast
  free_slots_.push_back(slot);
}

// ---- 4-ary heap -----------------------------------------------------------

void EventQueue::heapPush(const Entry& e) const {
  heap_.push_back(e);
  siftUp(heap_.size() - 1);
}

void EventQueue::heapPopTop() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) siftDown(0);
}

void EventQueue::siftUp(std::size_t i) const {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entryBefore(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::siftDown(std::size_t i) const {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c)
      if (entryBefore(heap_[c], heap_[best])) best = c;
    if (!entryBefore(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

// ---- scheduling -----------------------------------------------------------

EventId EventQueue::scheduleAt(SimTime t, std::function<void()> fn) {
  LOADEX_EXPECT(t >= now_, "cannot schedule an event in the past");
  LOADEX_EXPECT(!std::isnan(t), "event time must not be NaN");
  const std::uint32_t slot = allocSlot();
  Node& n = node(slot);
  n.fn = std::move(fn);
  const EventId id = makeId(n.gen, slot);
  heapPush(Entry{t, next_seq_++, id});
  ++live_;
  return id;
}

EventId EventQueue::scheduleAfter(SimTime delay, std::function<void()> fn) {
  LOADEX_EXPECT(delay >= 0.0, "delay must be non-negative");
  return scheduleAt(now_ + delay, std::move(fn));
}

void EventQueue::scheduleBroadcast(
    std::vector<BroadcastTarget> targets,
    std::function<void(const BroadcastTarget&)> fire) {
  if (targets.empty()) return;
  for (auto& t : targets) {
    LOADEX_EXPECT(t.time >= now_, "cannot schedule an event in the past");
    LOADEX_EXPECT(!std::isnan(t.time), "event time must not be NaN");
    t.seq = next_seq_++;
  }
  // The heap entry must always key the earliest remaining target; with
  // jitter / fault delays the input (= seq) order need not be the time
  // order, so sort once. Keys are unique: (time, seq) is a total order.
  std::sort(targets.begin(), targets.end(),
            [](const BroadcastTarget& a, const BroadcastTarget& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  const std::uint32_t slot = allocSlot();
  Node& n = node(slot);
  n.broadcast = true;
  n.next_target = 0;
  n.fire = std::move(fire);
  n.targets = std::move(targets);
  heapPush(Entry{n.targets[0].time, n.targets[0].seq, makeId(n.gen, slot)});
  live_ += n.targets.size();
  ++pool_stats_.broadcasts;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = idSlot(id);
  if (slot >= total_slots_) return false;
  Node& n = node(slot);
  if (n.gen != idGen(id)) return false;  // already fired, freed or reused
  if (n.broadcast) return false;         // broadcasts are not cancellable
  freeSlot(slot);
  --live_;
  // The heap entry stays; it is skipped (stale gen) when it surfaces.
  return true;
}

// ---- execution ------------------------------------------------------------

void EventQueue::popDead() const {
  while (!heap_.empty() && !liveEntry(heap_.front())) heapPopTop();
}

void EventQueue::noteFired(SimTime t, std::uint64_t seq) {
  now_ = t;
  ++fired_;
  fnv1a(digest_, std::bit_cast<std::uint64_t>(t));
  fnv1a(digest_, seq);
  // Gauge sampling piggybacks on event firing: it schedules nothing and
  // draws no randomness, so the schedule digest is unaffected.
  LOADEX_METRIC(maybeSample(now_));
}

bool EventQueue::runNext() {
  popDead();
  if (heap_.empty()) return false;
  const Entry e = heap_.front();
  heapPopTop();
  const std::uint32_t slot = idSlot(e.id);
  Node& n = node(slot);

  if (!n.broadcast) {
    // Free the slot before invoking: the handler may schedule (reusing
    // this very slot under a fresh generation) without confusion.
    auto fn = std::move(n.fn);
    freeSlot(slot);
    --live_;
    noteFired(e.time, e.seq);
    fn();
    return true;
  }

  // Logical broadcast: fire exactly one target per pop, then re-key the
  // node's single heap entry to the next remaining target. The copy below
  // keeps the target valid even if the callback grows the pool.
  const BroadcastTarget target = n.targets[n.next_target];
  ++n.next_target;
  ++pool_stats_.broadcast_deliveries;
  --live_;
  if (n.next_target < n.targets.size()) {
    const BroadcastTarget& next = n.targets[n.next_target];
    heapPush(Entry{next.time, next.seq, e.id});
    noteFired(e.time, e.seq);
    n.fire(target);  // node address is stable across reentrant scheduling
  } else {
    auto fire = std::move(n.fire);
    freeSlot(slot);
    noteFired(e.time, e.seq);
    fire(target);
  }
  return true;
}

std::uint64_t EventQueue::runUntil(SimTime until) {
  std::uint64_t n = 0;
  while (true) {
    popDead();
    if (heap_.empty() || heap_.front().time > until) break;
    runNext();
    ++n;
  }
  return n;
}

SimTime EventQueue::nextEventTime() const {
  popDead();
  return heap_.empty() ? kInfiniteTime : heap_.front().time;
}

}  // namespace loadex::sim
