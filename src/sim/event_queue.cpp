#include "sim/event_queue.h"

#include <bit>
#include <cmath>

#include "common/expect.h"
#include "obs/metrics.h"

namespace loadex::sim {

namespace {

inline void fnv1a(std::uint64_t& digest, std::uint64_t bits) {
  digest ^= bits;
  digest *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
}

}  // namespace

EventId EventQueue::scheduleAt(SimTime t, std::function<void()> fn) {
  LOADEX_EXPECT(t >= now_, "cannot schedule an event in the past");
  LOADEX_EXPECT(!std::isnan(t), "event time must not be NaN");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

EventId EventQueue::scheduleAfter(SimTime delay, std::function<void()> fn) {
  LOADEX_EXPECT(delay >= 0.0, "delay must be non-negative");
  return scheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  --live_;
  // The heap entry stays; runNext() skips entries without handlers.
  return true;
}

void EventQueue::popDead() const {
  while (!heap_.empty() && handlers_.find(heap_.top().id) == handlers_.end())
    heap_.pop();
}

bool EventQueue::runNext() {
  popDead();
  if (heap_.empty()) return false;
  const Entry e = heap_.top();
  heap_.pop();
  auto it = handlers_.find(e.id);
  LOADEX_CHECK(it != handlers_.end());
  auto fn = std::move(it->second);
  handlers_.erase(it);
  --live_;
  now_ = e.time;
  ++fired_;
  fnv1a(digest_, std::bit_cast<std::uint64_t>(e.time));
  fnv1a(digest_, e.seq);
  // Gauge sampling piggybacks on event firing: it schedules nothing and
  // draws no randomness, so the schedule digest is unaffected.
  LOADEX_METRIC(maybeSample(now_));
  fn();
  return true;
}

std::uint64_t EventQueue::runUntil(SimTime until) {
  std::uint64_t n = 0;
  while (true) {
    popDead();
    if (heap_.empty() || heap_.top().time > until) break;
    runNext();
    ++n;
  }
  return n;
}

SimTime EventQueue::nextEventTime() const {
  popDead();
  return heap_.empty() ? kInfiniteTime : heap_.top().time;
}

}  // namespace loadex::sim
