// World: owns the event queue, the network and the N simulated processes,
// and runs the simulation to quiescence.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/process.h"

namespace loadex::sim {

struct WorldConfig {
  int nprocs = 4;
  NetworkConfig network;
  ProcessConfig process;
  /// Optional per-rank compute-speed multipliers (heterogeneous platform,
  /// cf. the paper's §4 remark). Empty = homogeneous; otherwise must have
  /// nprocs entries, each > 0.
  std::vector<double> speed_factors;
  /// Scripted crash / pause / resume / restart events, scheduled when the
  /// simulation starts (see sim/faults.h).
  std::vector<ProcessFaultEvent> process_faults;
};

struct RunResult {
  SimTime end_time = 0.0;        ///< simulated time of the last event
  std::uint64_t events = 0;      ///< number of events fired
  bool hit_limit = false;        ///< stopped by the time/event guard
  /// Replay-determinism fingerprint (EventQueue::scheduleDigest): identical
  /// across runs iff the exact same event schedule executed.
  std::uint64_t schedule_digest = 0;

  // ---- fault statistics (all zero on a clean run) ----------------------
  std::int64_t messages_dropped = 0;     ///< random drops + blackouts
  std::int64_t messages_duplicated = 0;
  std::int64_t latency_spikes = 0;
  std::int64_t messages_lost_at_down_procs = 0;
  int crashes = 0;
  int restarts = 0;
};

class World {
 public:
  explicit World(WorldConfig config);

  int nprocs() const { return static_cast<int>(processes_.size()); }
  Process& process(Rank rank);
  const Process& process(Rank rank) const;
  EventQueue& queue() { return queue_; }
  Network& network() { return network_; }
  SimTime now() const { return queue_.now(); }
  const WorldConfig& config() const { return config_; }

  /// Attach the same application object (with per-rank internal state) and
  /// per-rank state handlers. Handlers may be null.
  void attach(Rank rank, Application* app, StateHandler* handler);

  /// Start all processes (fires Application::onStart) and run until the
  /// event queue drains, `until` is reached, or `max_events` fire.
  RunResult run(SimTime until = kInfiniteTime,
                std::uint64_t max_events = 2'000'000'000ULL);

  /// True when every process is idle and no event is pending.
  bool quiescent() const;

 private:
  WorldConfig config_;
  EventQueue queue_;
  Network network_;
  std::vector<std::unique_ptr<Process>> processes_;
  bool started_ = false;
};

}  // namespace loadex::sim
