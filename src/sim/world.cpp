#include "sim/world.h"

#include "common/expect.h"

namespace loadex::sim {

World::World(WorldConfig config)
    : config_(config), network_(queue_, config.network, config.nprocs) {
  LOADEX_EXPECT(config.nprocs > 0, "world needs at least one process");
  LOADEX_EXPECT(config.speed_factors.empty() ||
                    static_cast<int>(config.speed_factors.size()) ==
                        config.nprocs,
                "speed_factors must be empty or have nprocs entries");
  processes_.reserve(static_cast<std::size_t>(config.nprocs));
  for (Rank r = 0; r < config.nprocs; ++r) {
    ProcessConfig pc = config.process;
    if (!config.speed_factors.empty()) {
      const double f = config.speed_factors[static_cast<std::size_t>(r)];
      LOADEX_EXPECT(f > 0.0, "speed factor must be positive");
      pc.flops_per_s *= f;
    }
    processes_.push_back(std::make_unique<Process>(
        queue_, network_, r, config.nprocs, pc));
    network_.setReceiver(
        r, [p = processes_.back().get()](const Message& m) { p->deliver(m); });
  }
}

Process& World::process(Rank rank) {
  LOADEX_EXPECT(rank >= 0 && rank < nprocs(), "rank out of range");
  return *processes_[static_cast<std::size_t>(rank)];
}

const Process& World::process(Rank rank) const {
  LOADEX_EXPECT(rank >= 0 && rank < nprocs(), "rank out of range");
  return *processes_[static_cast<std::size_t>(rank)];
}

void World::attach(Rank rank, Application* app, StateHandler* handler) {
  process(rank).attach(app, handler);
}

RunResult World::run(SimTime until, std::uint64_t max_events) {
  if (!started_) {
    started_ = true;
    for (const auto& ev : config_.process_faults) {
      LOADEX_EXPECT(ev.rank >= 0 && ev.rank < nprocs(),
                    "process fault names an unknown rank");
      LOADEX_EXPECT(ev.time >= 0.0, "process fault time must be >= 0");
      Process* p = processes_[static_cast<std::size_t>(ev.rank)].get();
      queue_.scheduleAt(ev.time, [p, kind = ev.kind] {
        switch (kind) {
          case ProcessFaultEvent::Kind::kCrash: p->crash(); break;
          case ProcessFaultEvent::Kind::kPause: p->faultPause(); break;
          case ProcessFaultEvent::Kind::kResume: p->faultResume(); break;
          case ProcessFaultEvent::Kind::kRestart: p->restart(); break;
        }
      });
    }
    for (auto& p : processes_) p->start();
  }
  RunResult result;
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    if (queue_.nextEventTime() > until || fired >= max_events) {
      result.hit_limit = true;
      break;
    }
    queue_.runNext();
    ++fired;
  }
  result.end_time = queue_.now();
  result.events = fired;
  result.schedule_digest = queue_.scheduleDigest();
  result.messages_dropped = network_.messagesDropped();
  result.messages_duplicated = network_.messagesDuplicated();
  result.latency_spikes = network_.latencySpikes();
  for (const auto& p : processes_) {
    result.messages_lost_at_down_procs += p->messagesLost();
    result.crashes += p->crashes();
    result.restarts += p->restarts();
  }
  return result;
}

bool World::quiescent() const {
  if (!queue_.empty()) return false;
  for (const auto& p : processes_)
    if (!p->idle()) return false;
  return true;
}

}  // namespace loadex::sim
