// Simulated process: executes the paper's Algorithm 1 main loop.
//
// Two execution modes:
//  * single-threaded (paper default): messages are only treated between
//    compute tasks; a long task delays every message behind it;
//  * comm-thread (§4.5): a polling thread checks the state channel every
//    poll_period_s during computation; treating a start_snp pauses the
//    compute task until the snapshot completes, then the task resumes.
#pragma once

#include <deque>
#include <optional>

#include "common/stats.h"
#include "common/types.h"
#include "sim/application.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/network.h"

namespace loadex::sim {

struct ProcessConfig {
  /// Compute speed (floating-point operations per second).
  double flops_per_s = 1e9;

  /// CPU time to receive and treat one state-information message.
  double state_msg_handle_s = 5e-7;

  /// CPU time to receive and treat one application message (excl. payload
  /// transfer, which the network accounts for).
  double app_msg_handle_s = 2e-6;

  /// Enable the §4.5 dedicated communication thread.
  bool comm_thread = false;

  /// Poll period of the communication thread (paper: 50 microseconds).
  SimTime poll_period_s = 50e-6;
};

class Process {
 public:
  Process(EventQueue& queue, Network& network, Rank rank, int nprocs,
          ProcessConfig config);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Wire the application and the mechanism binding. Either may be null
  /// (useful in unit tests).
  void attach(Application* app, StateHandler* state_handler);

  /// Called by the world once, at t = 0.
  void start();

  // ---- scripted process faults (driven by World's fault script) --------
  /// Fail-stop: the pending task is aborted, queued and future messages
  /// are lost, and the process goes silent until restart().
  void crash();
  /// A crashed process comes back empty-handed: everything that was in
  /// flight or queued at crash time is gone (state loss).
  void restart();
  /// Slow-node stall: stop computing and treating messages; arriving
  /// messages keep queueing (unlike a crash, nothing is lost).
  void faultPause();
  void faultResume();

  /// Network receiver hook.
  void deliver(const Message& msg);

  /// Send a message from this process.
  void send(Rank dst, Channel channel, int tag, Bytes size,
            std::shared_ptr<const Payload> payload);

  /// Send one payload to every rank in `dsts` (in order) as a single
  /// logical broadcast (see Network::broadcast).
  void broadcast(const std::vector<Rank>& dsts, Channel channel, int tag,
                 Bytes size, std::shared_ptr<const Payload> payload);

  /// The application calls this when new local work became ready outside
  /// of the normal message flow (e.g. from a mechanism view callback).
  void notifyReadyWork();

  // ---- introspection -------------------------------------------------
  SimTime now() const { return queue_.now(); }
  Rank rank() const { return rank_; }
  int nprocs() const { return nprocs_; }
  const ProcessConfig& config() const { return config_; }
  Application* application() { return app_; }
  StateHandler* stateHandler() { return state_handler_; }
  EventQueue& queue() { return queue_; }

  bool computing() const { return state_ == State::kComputing; }
  bool paused() const { return state_ == State::kPaused; }
  bool crashed() const { return crashed_; }
  bool faultPaused() const { return fault_paused_; }
  bool idle() const {
    return crashed_ ||
           (state_ == State::kIdle && state_q_.empty() && app_q_.empty());
  }

  // ---- metrics ---------------------------------------------------------
  /// Pending messages per channel (gauge sources for loadex_obs).
  std::size_t stateQueueDepth() const { return state_q_.size(); }
  std::size_t appQueueDepth() const { return app_q_.size(); }
  double busyTime() const { return busy_time_; }
  double msgHandleTime() const { return msg_handle_time_; }
  std::int64_t stateMessagesHandled() const { return state_handled_; }
  std::int64_t appMessagesHandled() const { return app_handled_; }
  std::int64_t tasksRun() const { return tasks_run_; }
  double pausedTime() const { return paused_time_; }
  /// Messages lost because this process was crashed (queued at crash time
  /// or delivered while down).
  std::int64_t messagesLost() const { return messages_lost_; }
  int crashes() const { return crashes_; }
  int restarts() const { return restarts_; }

 private:
  enum class State { kIdle, kComputing, kPaused };

  bool blocked() const {
    return state_handler_ != nullptr && state_handler_->blocksComputation();
  }

  void pump();
  void schedulePumpAfter(SimTime delay);
  void startTask(ComputeTask task);
  void finishTask();
  void pauseTask();
  void resumeTask();
  void schedulePoll();
  void pollTick();

  EventQueue& queue_;
  Network& network_;
  Rank rank_;
  int nprocs_;
  ProcessConfig config_;

  Application* app_ = nullptr;
  StateHandler* state_handler_ = nullptr;

  std::deque<Message> state_q_;
  std::deque<Message> app_q_;

  State state_ = State::kIdle;
  bool pump_scheduled_ = false;
  bool crashed_ = false;
  bool fault_paused_ = false;

  std::optional<ComputeTask> task_;
  SimTime task_started_ = 0.0;
  Flops task_remaining_ = 0.0;
  EventId end_event_ = kNoEvent;
  EventId poll_event_ = kNoEvent;
  SimTime paused_since_ = 0.0;

  double busy_time_ = 0.0;
  double msg_handle_time_ = 0.0;
  double paused_time_ = 0.0;
  std::int64_t state_handled_ = 0;
  std::int64_t app_handled_ = 0;
  std::int64_t tasks_run_ = 0;
  std::int64_t messages_lost_ = 0;
  int crashes_ = 0;
  int restarts_ = 0;
};

}  // namespace loadex::sim
