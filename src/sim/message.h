// Message representation for the simulated message-passing system.
//
// Mirrors the paper's setup: a dedicated, prioritized channel carries
// *state information* messages (load updates, snapshot protocol traffic),
// and a second channel carries application messages (tasks, data).
#pragma once

#include <memory>
#include <string>
#include <typeinfo>

#include "common/types.h"

namespace loadex::sim {

/// Base class for message payloads. Concrete payloads are defined by the
/// layer that owns the message tag (mechanisms in loadex_core, the solver
/// application in loadex_solver).
class Payload {
 public:
  virtual ~Payload() = default;
};

/// The two communication channels of the paper ("In practice a specific
/// channel is used for those [state information] messages").
enum class Channel { kState, kApp };

inline const char* channelName(Channel c) {
  return c == Channel::kState ? "state" : "app";
}

struct Message {
  Rank src = kNoRank;
  Rank dst = kNoRank;
  Channel channel = Channel::kApp;
  int tag = 0;        ///< receiver-layer dispatch key
  Bytes size = 0;     ///< payload size in bytes (bandwidth + stats)
  std::shared_ptr<const Payload> payload;

  /// Convenient typed access; hard-fails on a tag/type mismatch.
  template <typename T>
  const T& as() const {
    const auto* p = dynamic_cast<const T*>(payload.get());
    if (p == nullptr) throw std::bad_cast();
    return *p;
  }
};

}  // namespace loadex::sim
