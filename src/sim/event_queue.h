// Deterministic discrete-event kernel.
//
// Events are ordered by (time, insertion sequence), so simultaneous events
// fire in the order they were scheduled — this makes every simulation run
// bit-for-bit reproducible. Events can be cancelled (needed to pause a
// running compute task in the "threaded" process mode).
//
// Storage is a slab pool: event nodes live in fixed-size chunks with a
// free list, so the steady state allocates nothing, and node addresses are
// stable (a handler may schedule further events — growing the pool — while
// it runs). Ordering is an index-based 4-ary implicit heap of (time, seq)
// keys; cancellation is lazy (the heap entry stays and is skipped when it
// surfaces, recognised by a generation tag in the event id).
//
// A *logical broadcast* (scheduleBroadcast) stores one pooled node for a
// whole fan-out: the node carries the shared fire callback plus the
// per-destination (time, seq) targets, keeps exactly one heap entry keyed
// on its earliest remaining target, and re-keys itself after each pop.
// Every delivery still fires at its own (time, seq) — the schedule digest
// is bit-identical to scheduling each destination individually.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/types.h"

namespace loadex::sim {

/// Time value meaning "run forever".
inline constexpr SimTime kInfiniteTime = std::numeric_limits<SimTime>::infinity();

using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// One destination of a logical broadcast. The caller fills `time`, `dst`
/// and `cookie` (an opaque value handed back at fire time, e.g. a trace
/// flow id); the queue assigns `seq` — in input order, exactly as if each
/// target had been scheduled with its own scheduleAt call.
struct BroadcastTarget {
  SimTime time = 0.0;
  std::int32_t dst = -1;
  std::uint64_t cookie = 0;
  std::uint64_t seq = 0;  ///< insertion sequence, assigned by the queue
};

/// Allocation counters of the pooled kernel (bench_scale_weak reports the
/// broadcast-path savings from these).
struct PoolStats {
  std::uint64_t node_allocations = 0;   ///< pool slots handed out
  std::uint64_t free_list_reuses = 0;   ///< slots served from the free list
  std::uint64_t pool_chunks = 0;        ///< slab chunks ever carved
  std::uint64_t broadcasts = 0;         ///< logical broadcast nodes
  std::uint64_t broadcast_deliveries = 0;  ///< fan-out events fired lazily
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` to fire at absolute time `t` (must be >= now()).
  EventId scheduleAt(SimTime t, std::function<void()> fn);

  /// Schedule `fn` to fire `delay` seconds from now (delay >= 0).
  EventId scheduleAfter(SimTime delay, std::function<void()> fn);

  /// Schedule one logical broadcast: `fire` is invoked once per target, at
  /// that target's (time, seq). Sequence numbers are assigned in `targets`
  /// input order, so the global event order (and the schedule digest) is
  /// identical to scheduling each target individually — but only one pool
  /// node and one heap entry exist at any time. Broadcasts cannot be
  /// cancelled.
  void scheduleBroadcast(std::vector<BroadcastTarget> targets,
                         std::function<void(const BroadcastTarget&)> fire);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (returns false).
  bool cancel(EventId id);

  /// Fire the next pending event. Returns false if the queue is empty.
  bool runNext();

  /// Run until the queue is empty or `until` is passed; returns the number
  /// of events fired.
  std::uint64_t runUntil(SimTime until = kInfiniteTime);

  SimTime now() const { return now_; }
  bool empty() const { return live_ == 0; }
  std::size_t pendingCount() const { return live_; }
  std::uint64_t firedCount() const { return fired_; }

  /// Time of the next pending event (kInfiniteTime if none).
  SimTime nextEventTime() const;

  /// FNV-1a digest over every fired event's (time, seq). Two runs with
  /// identical digests executed the exact same event schedule — this is the
  /// replay-determinism fingerprint observation must not perturb. Always on
  /// (a handful of integer ops per event), so trace-on and trace-off runs
  /// are directly comparable.
  std::uint64_t scheduleDigest() const { return digest_; }

  const PoolStats& poolStats() const { return pool_stats_; }

 private:
  /// Pool node. Addresses are stable for the node's lifetime (chunked
  /// storage); `gen` invalidates outstanding ids/heap entries on free.
  /// `fn`/`fire`/`targets` keep their buffers across reuse, so a churning
  /// slot stops allocating once warm.
  struct Node {
    std::uint32_t gen = 1;
    bool broadcast = false;
    std::uint32_t next_target = 0;
    std::function<void()> fn;
    std::function<void(const BroadcastTarget&)> fire;
    std::vector<BroadcastTarget> targets;
  };

  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };

  static bool entryBefore(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static constexpr std::size_t kChunkSize = 256;
  static std::uint32_t idSlot(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffULL);
  }
  static std::uint32_t idGen(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId makeId(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  Node& node(std::uint32_t slot) const {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }
  bool liveEntry(const Entry& e) const {
    return node(idSlot(e.id)).gen == idGen(e.id);
  }

  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t slot);

  // 4-ary implicit min-heap on (time, seq): parent (i-1)/4, children
  // 4i+1..4i+4. Shallower than a binary heap, so pops touch fewer cache
  // lines on the large queues of the scale benches.
  void heapPush(const Entry& e) const;
  void heapPopTop() const;
  void siftUp(std::size_t i) const;
  void siftDown(std::size_t i) const;

  /// Drop surfaced heap entries whose event was cancelled (stale gen).
  void popDead() const;

  /// Common accounting of one fired event (digest fold + gauge sampling).
  void noteFired(SimTime t, std::uint64_t seq);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
  std::size_t live_ = 0;

  /// Slab storage: chunk pointers never move, so node addresses survive
  /// pool growth triggered from inside a running handler.
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t total_slots_ = 0;
  std::vector<std::uint32_t> free_slots_;
  /// Heap of pending keys; mutable so the const nextEventTime() can shed
  /// lazily-cancelled entries, same contract as the map-based kernel.
  mutable std::vector<Entry> heap_;

  PoolStats pool_stats_;
};

}  // namespace loadex::sim
