// Deterministic discrete-event kernel.
//
// Events are ordered by (time, insertion sequence), so simultaneous events
// fire in the order they were scheduled — this makes every simulation run
// bit-for-bit reproducible. Events can be cancelled (needed to pause a
// running compute task in the "threaded" process mode).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace loadex::sim {

/// Time value meaning "run forever".
inline constexpr SimTime kInfiniteTime = std::numeric_limits<SimTime>::infinity();

using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  /// Schedule `fn` to fire at absolute time `t` (must be >= now()).
  EventId scheduleAt(SimTime t, std::function<void()> fn);

  /// Schedule `fn` to fire `delay` seconds from now (delay >= 0).
  EventId scheduleAfter(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (returns false).
  bool cancel(EventId id);

  /// Fire the next pending event. Returns false if the queue is empty.
  bool runNext();

  /// Run until the queue is empty or `until` is passed; returns the number
  /// of events fired.
  std::uint64_t runUntil(SimTime until = kInfiniteTime);

  SimTime now() const { return now_; }
  bool empty() const { return live_ == 0; }
  std::size_t pendingCount() const { return live_; }
  std::uint64_t firedCount() const { return fired_; }

  /// Time of the next pending event (kInfiniteTime if none).
  SimTime nextEventTime() const;

  /// FNV-1a digest over every fired event's (time, seq). Two runs with
  /// identical digests executed the exact same event schedule — this is the
  /// replay-determinism fingerprint observation must not perturb. Always on
  /// (a handful of integer ops per event), so trace-on and trace-off runs
  /// are directly comparable.
  std::uint64_t scheduleDigest() const { return digest_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void popDead() const;

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
  std::size_t live_ = 0;
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace loadex::sim
