// Network model: point-to-point links with latency, bandwidth and
// sender-side serialization (a process's NIC transmits one message at a
// time per destination). Messages between the same (src, dst) pair are
// delivered FIFO, like an MPI channel. An optional FaultPlan injects
// deterministic, seeded message loss / duplication / latency spikes and
// scripted per-link blackouts.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/message.h"

namespace loadex::sim {

struct NetworkConfig {
  /// One-way message latency in seconds. The paper's IDRIS SP has a
  /// "very high bandwidth / low latency" network; ablations sweep this.
  double latency_s = 5e-6;

  /// Link bandwidth in bytes per second.
  double bandwidth_bytes_per_s = 1e9;

  /// Fixed per-message overhead on the wire, in bytes (headers).
  Bytes per_message_overhead_bytes = 64;

  /// If true, a sender serializes its outgoing transfers (models a single
  /// NIC); if false, transfers to distinct destinations proceed in parallel.
  bool serialize_sender = true;

  /// Random extra delivery delay in [0, jitter_s), drawn deterministically
  /// from `seed`. Per-pair FIFO order is still preserved. Used to stress
  /// protocol correctness under adversarial message interleavings.
  double jitter_s = 0.0;
  std::uint64_t seed = 0x6a177e5;

  /// Message-level fault injection; inert by default (see sim/faults.h).
  FaultPlan faults;

  /// Escape hatch for the differential test harness: expand broadcast()
  /// into one independent send() per destination (the pre-pool kernel's
  /// behaviour) instead of coalescing the fan-out into one logical
  /// broadcast event. Both paths are bit-identical in schedule digest,
  /// message counts and delivered bytes — the lazy path just allocates
  /// O(1) instead of O(N) per broadcast.
  bool legacy_kernel = false;
};

/// Counters of the lazy broadcast fast path (not part of messageCounts():
/// the per-channel message statistics are identical in both kernels).
struct BroadcastPathStats {
  std::int64_t logical_broadcasts = 0;  ///< coalesced broadcast() calls
  std::int64_t fanout_deliveries = 0;   ///< deliveries those fan out into
};

/// Delivery callback: invoked at the destination's arrival time.
using DeliveryFn = std::function<void(const Message&)>;

class Network {
 public:
  Network(EventQueue& queue, NetworkConfig config, int nprocs);

  /// Register the receiver hook for a rank (the process's deliver()).
  void setReceiver(Rank rank, DeliveryFn fn);

  /// Transmit a message. Sender-side serialization and per-pair FIFO are
  /// applied; the receiver hook fires at arrival time (unless a fault
  /// drops the message).
  void send(Message msg);

  /// Transmit one payload to every rank in `dsts` (in order). Per-link
  /// bookkeeping — NIC serialization, jitter and fault draws, per-pair
  /// FIFO clamps, counters — is applied per destination exactly as N
  /// individual send() calls would, but the surviving deliveries share a
  /// single lazily-expanded queue event (unless config().legacy_kernel).
  /// `msg.dst` is ignored and overwritten per destination.
  void broadcast(Message msg, const std::vector<Rank>& dsts);

  const NetworkConfig& config() const { return config_; }

  const BroadcastPathStats& broadcastStats() const { return bcast_stats_; }

  /// Global message statistics, keyed by channel name; fault events are
  /// counted under "fault_*" keys.
  const CounterSet& messageCounts() const { return counts_; }

  /// Total bytes put on the wire: payload plus per-message overhead, for
  /// every transmission (duplicated copies included).
  Bytes bytesSent() const { return bytes_sent_; }
  /// Wire bytes broken down per channel.
  Bytes bytesSent(Channel c) const {
    return channel_bytes_[static_cast<std::size_t>(c)];
  }

  // ---- fault statistics -------------------------------------------------
  std::int64_t messagesDropped() const {
    return counts_.get("fault_drop") + counts_.get("fault_blackout");
  }
  std::int64_t messagesDuplicated() const {
    return counts_.get("fault_duplicate");
  }
  std::int64_t latencySpikes() const {
    return counts_.get("fault_latency_spike");
  }

  /// Transfer time (seconds) for a payload of `size` bytes, excluding
  /// latency and queueing.
  double transferTime(Bytes size) const;

 private:
  bool faultsApplyTo(Channel c) const {
    return c == Channel::kState ? config_.faults.affects_state
                                : config_.faults.affects_app;
  }
  SimTime& pairLastArrival(Rank src, Rank dst) {
    return pair_last_arrival_[static_cast<std::size_t>(src) *
                                  static_cast<std::size_t>(nprocs_) +
                              static_cast<std::size_t>(dst)];
  }
  /// Per-transmission plan: departure/arrival times and fault outcome.
  /// Computing it performs all sender-side bookkeeping (NIC free time,
  /// RNG draws, FIFO clamps, counters, wire bytes) in the exact order of
  /// the historical send() body, so the point-to-point and the broadcast
  /// paths stay replay-identical.
  struct TxPlan {
    SimTime depart = 0.0;
    double transfer = 0.0;
    SimTime arrival = 0.0;
    bool delivered = false;   ///< false: blackout or random drop ate it
    bool duplicate = false;
    SimTime copy_arrival = 0.0;  ///< valid when duplicate
  };
  TxPlan planTx(const Message& msg);
  std::uint64_t traceSendSpan(const Message& msg, const TxPlan& plan,
                              const char* label);

  /// `flow` is the trace flow-arrow id tying this delivery back to its
  /// send slice (0 when tracing was off at send time).
  void scheduleDelivery(const Message& msg, SimTime arrival,
                        std::uint64_t flow);
  /// Hand `msg` to its receiver at the current time (delivery event body,
  /// shared by the eager and the lazy-broadcast paths).
  void deliverNow(const Message& msg, std::uint64_t flow);

  EventQueue& queue_;
  NetworkConfig config_;
  int nprocs_;
  std::vector<DeliveryFn> receivers_;
  /// Earliest time each sender's NIC is free (serialize_sender mode).
  std::vector<SimTime> sender_free_at_;
  /// Earliest delivery time per (src,dst) pair to preserve FIFO order;
  /// flat, indexed src * nprocs + dst (hot path: no map lookups).
  std::vector<SimTime> pair_last_arrival_;
  CounterSet counts_;
  BroadcastPathStats bcast_stats_;
  Bytes bytes_sent_ = 0;
  Bytes channel_bytes_[2] = {0, 0};
  Rng jitter_rng_;
  Rng fault_rng_;
  bool faults_enabled_;
};

}  // namespace loadex::sim
