// TraceRecorder: ring-buffered span/instant/counter/flow events stamped
// with *simulated* time, exported as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Design constraints (see DESIGN.md §9):
//  * zero overhead when disabled — call sites go through the
//    LOADEX_TRACE_* macros below, which evaluate no argument unless a
//    recorder is installed (lint rule `trace-macro-guard`);
//  * recording never perturbs the simulation — no events are scheduled,
//    no random numbers drawn; memory is a bounded ring (oldest events are
//    overwritten, with a drop counter), so a trace of an arbitrarily long
//    run cannot exhaust memory;
//  * deterministic export — interned names, insertion-ordered ring,
//    fixed-precision timestamps: the same run produces the same bytes.
//  * recording is thread-safe — the rt runtime (src/rt) stamps events
//    from every rank thread with real timestamps, so each recording call
//    is one short critical section (a single mutex; the simulator pays
//    one uncontended lock per event). The introspection accessors and the
//    exporters assume the recording threads have quiesced.
//
// Track model: one Perfetto "thread" per (rank, lane). Lane kMain carries
// compute/pause/message-handling slices, kProto the mechanism protocol
// spans (snapshot lifecycle, decisions, tx/rx instants), kNetState/kNetApp
// the wire transfers of the two channels, which also anchor the
// send→deliver flow arrows.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "obs/obs.h"

namespace loadex::obs {

/// Per-rank trace lanes (Perfetto threads). Keep kLaneCount in sync.
enum class Lane : int { kMain = 0, kProto = 1, kNetState = 2, kNetApp = 3 };
inline constexpr int kLaneCount = 4;

/// Track id of a (rank, lane) pair; rank-major so the Perfetto sort index
/// groups each rank's lanes together.
constexpr int rankTrack(Rank rank, Lane lane) {
  return rank * kLaneCount + static_cast<int>(lane);
}

/// Track used for global (non-rank) counters and instants.
inline constexpr int kGlobalTrack = -1;

struct TraceConfig {
  /// Ring capacity in events. When full the oldest events are overwritten
  /// (the export notes the drop count). ~56 bytes per slot.
  std::size_t capacity = 1u << 19;
  std::string process_name = "loadex sim";
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});

  // ---- naming ----------------------------------------------------------
  /// Label a track (exported as Perfetto thread_name metadata).
  void setTrackName(int track, std::string name) LOADEX_EXCLUDES(mu_);
  /// Standard per-rank lane names ("P3 main", "P3 proto", ...).
  void nameRankTracks(int nprocs);
  /// Optional message namer used by the network instrumentation to label
  /// wire slices ("start_snp" instead of "state/5"). Must be a pure
  /// function of (channel, tag).
  void setMessageNamer(std::function<std::string(int channel, int tag)> fn)
      LOADEX_EXCLUDES(mu_) {
    const sync::MutexLock lk(mu_);
    message_namer_ = std::move(fn);
  }
  std::string messageName(int channel, int tag) const LOADEX_EXCLUDES(mu_);

  // ---- event recording (call through the LOADEX_TRACE_* macros) --------
  void beginSpan(double t, int track, std::string_view name)
      LOADEX_EXCLUDES(mu_);
  void endSpan(double t, int track) LOADEX_EXCLUDES(mu_);
  void completeSpan(double t0, double t1, int track, std::string_view name)
      LOADEX_EXCLUDES(mu_);
  void instant(double t, int track, std::string_view name)
      LOADEX_EXCLUDES(mu_);
  void counter(double t, std::string_view name, double value)
      LOADEX_EXCLUDES(mu_);
  void flowBegin(double t, int track, std::string_view name,
                 std::uint64_t flow) LOADEX_EXCLUDES(mu_);
  void flowEnd(double t, int track, std::string_view name,
               std::uint64_t flow) LOADEX_EXCLUDES(mu_);
  /// Fresh id for a send→deliver flow arrow (any thread).
  std::uint64_t nextFlowId() {
    return last_flow_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // ---- introspection (each takes the lock: callable mid-run, exact
  // once the recording threads have quiesced) ----------------------------
  std::size_t size() const LOADEX_EXCLUDES(mu_) {
    const sync::MutexLock lk(mu_);
    return events_.size();
  }
  std::uint64_t recorded() const LOADEX_EXCLUDES(mu_) {
    const sync::MutexLock lk(mu_);
    return recorded_;
  }
  std::uint64_t dropped() const LOADEX_EXCLUDES(mu_) {
    const sync::MutexLock lk(mu_);
    return dropped_;
  }
  const TraceConfig& config() const { return config_; }

  // ---- export ----------------------------------------------------------
  /// Chrome trace-event JSON ("traceEvents" array + metadata), ts in
  /// microseconds with fixed 3-decimal precision.
  void writeChromeTrace(std::ostream& os) const LOADEX_EXCLUDES(mu_);
  /// Returns false (and logs) if the file cannot be written.
  bool writeChromeTraceFile(const std::string& path) const;

 private:
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kComplete = 'X',
    kInstant = 'i',
    kCounter = 'C',
    kFlowBegin = 's',
    kFlowEnd = 'f',
  };

  struct Event {
    double ts = 0.0;       ///< simulated seconds
    double dur = 0.0;      ///< kComplete only
    double value = 0.0;    ///< kCounter only
    std::uint64_t flow = 0;
    std::int32_t track = 0;
    std::int32_t name = -1;  ///< intern id (-1: unnamed end event)
    Phase phase = Phase::kInstant;
  };

  int intern(std::string_view name) LOADEX_REQUIRES(mu_);
  void push(const Event& ev) LOADEX_REQUIRES(mu_);

  TraceConfig config_;
  /// Serialises concurrent recording from rt rank threads (see file
  /// comment); every public recording method is one critical section.
  /// Leaf of the lock hierarchy: trace calls appear under every other
  /// lock (e.g. metrics sampling emits counters), never the reverse.
  mutable sync::Mutex mu_{sync::LockRank::kTraceRing};
  std::vector<Event> events_ LOADEX_GUARDED_BY(mu_);  ///< grows, then wraps
  std::size_t head_ LOADEX_GUARDED_BY(mu_) = 0;  ///< next slot once full
  std::uint64_t recorded_ LOADEX_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ LOADEX_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> last_flow_{0};
  std::vector<std::string> names_ LOADEX_GUARDED_BY(mu_);
  std::map<std::string, int> name_ids_ LOADEX_GUARDED_BY(mu_);
  std::map<int, std::string> track_names_ LOADEX_GUARDED_BY(mu_);
  std::function<std::string(int, int)> message_namer_ LOADEX_GUARDED_BY(mu_);
};

}  // namespace loadex::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. Every macro guards argument evaluation behind the
// recorder null check, so a disabled trace costs one load + branch and
// evaluates *none* of its arguments (string concatenations, accessors, ...).
// The lint rule `trace-macro-guard` enforces this shape.
// ---------------------------------------------------------------------------

#define LOADEX_TRACE_SPAN_BEGIN(...)                          \
  do {                                                        \
    if (auto* lx_tr_ = ::loadex::obs::traceRecorder()) {      \
      lx_tr_->beginSpan(__VA_ARGS__);                         \
    }                                                         \
  } while (0)

#define LOADEX_TRACE_SPAN_END(...)                            \
  do {                                                        \
    if (auto* lx_tr_ = ::loadex::obs::traceRecorder()) {      \
      lx_tr_->endSpan(__VA_ARGS__);                           \
    }                                                         \
  } while (0)

#define LOADEX_TRACE_COMPLETE(...)                            \
  do {                                                        \
    if (auto* lx_tr_ = ::loadex::obs::traceRecorder()) {      \
      lx_tr_->completeSpan(__VA_ARGS__);                      \
    }                                                         \
  } while (0)

#define LOADEX_TRACE_INSTANT(...)                             \
  do {                                                        \
    if (auto* lx_tr_ = ::loadex::obs::traceRecorder()) {      \
      lx_tr_->instant(__VA_ARGS__);                           \
    }                                                         \
  } while (0)

#define LOADEX_TRACE_COUNTER(...)                             \
  do {                                                        \
    if (auto* lx_tr_ = ::loadex::obs::traceRecorder()) {      \
      lx_tr_->counter(__VA_ARGS__);                           \
    }                                                         \
  } while (0)

/// Run an arbitrary statement against the recorder (named `lx_tr_`), only
/// when tracing is enabled — for multi-call sequences such as a wire slice
/// plus its flow anchor.
#define LOADEX_TRACE_WITH(stmt)                               \
  do {                                                        \
    if (auto* lx_tr_ = ::loadex::obs::traceRecorder()) {      \
      stmt;                                                   \
    }                                                         \
  } while (0)
