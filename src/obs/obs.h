// loadex_obs — observability session plumbing.
//
// A *session* is the pair (TraceRecorder*, MetricsRegistry*) the
// instrumentation seams in sim/core/solver report to. Both pointers are
// null by default: every LOADEX_TRACE_* / LOADEX_METRIC macro collapses
// to a single pointer load + branch, evaluating none of its arguments
// (enforced by the `trace-macro-guard` lint rule). Installing a session
// never perturbs the simulation — the recorder and the registry schedule
// no events and draw no random numbers, so the event schedule is
// bit-identical with observation on or off (enforced by test via
// sim::EventQueue::scheduleDigest()).
//
// The simulator is single-threaded; the session globals are plain
// pointers, not atomics, on purpose.
#pragma once

namespace loadex::obs {

class TraceRecorder;
class MetricsRegistry;

namespace detail {
extern TraceRecorder* g_trace;
extern MetricsRegistry* g_metrics;
}  // namespace detail

/// Currently installed recorder (null when tracing is off).
inline TraceRecorder* traceRecorder() { return detail::g_trace; }

/// Currently installed metrics registry (null when metrics are off).
inline MetricsRegistry* metricsRegistry() { return detail::g_metrics; }

/// RAII session installer: swaps the globals in, restores the previous
/// session on destruction (sessions nest like a stack).
class ScopedObservation {
 public:
  ScopedObservation(TraceRecorder* trace, MetricsRegistry* metrics)
      : prev_trace_(detail::g_trace), prev_metrics_(detail::g_metrics) {
    detail::g_trace = trace;
    detail::g_metrics = metrics;
  }
  ~ScopedObservation() {
    detail::g_trace = prev_trace_;
    detail::g_metrics = prev_metrics_;
  }
  ScopedObservation(const ScopedObservation&) = delete;
  ScopedObservation& operator=(const ScopedObservation&) = delete;

 private:
  TraceRecorder* prev_trace_;
  MetricsRegistry* prev_metrics_;
};

}  // namespace loadex::obs
