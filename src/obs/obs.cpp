#include "obs/obs.h"

namespace loadex::obs::detail {

TraceRecorder* g_trace = nullptr;
MetricsRegistry* g_metrics = nullptr;

}  // namespace loadex::obs::detail
