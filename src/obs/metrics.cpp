#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/expect.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace loadex::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1, 0) {
  LOADEX_EXPECT(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
}

void Histogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const {
  LOADEX_EXPECT(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::int64_t b = buckets_[i];
    cum += b;
    if (b == 0 || static_cast<double>(cum) < target) continue;
    if (i >= bounds_.size()) return bounds_.back();  // overflow: clamp
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    double pos = (target - static_cast<double>(cum - b)) /
                 static_cast<double>(b);
    if (pos < 0.0) pos = 0.0;
    if (pos > 1.0) pos = 1.0;
    return lower + (upper - lower) * pos;
  }
  // count_ > 0 guarantees some bucket is non-empty; q == 1 exits above.
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::logBounds(double lo, double hi,
                                         int per_decade) {
  LOADEX_EXPECT(lo > 0.0 && hi > lo, "logBounds needs 0 < lo < hi");
  LOADEX_EXPECT(per_decade > 0, "logBounds needs per_decade > 0");
  const double step = std::pow(10.0, 1.0 / per_decade);
  std::vector<double> bounds;
  double edge = lo;
  while (true) {
    bounds.push_back(edge);
    if (edge >= hi) break;
    edge *= step;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  LOADEX_ASSERT_HELD(mu_);
  return counters_[name];
}

Accumulator& MetricsRegistry::accumulator(const std::string& name) {
  LOADEX_ASSERT_HELD(mu_);
  return accums_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  LOADEX_ASSERT_HELD(mu_);
  const auto it = hists_.find(name);
  if (it != hists_.end()) return it->second;
  return hists_.emplace(name, Histogram(std::move(bounds))).first->second;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
  const sync::MutexLock lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Accumulator* MetricsRegistry::findAccumulator(
    const std::string& name) const {
  const sync::MutexLock lk(mu_);
  return findAccumulatorLocked(name);
}

const Accumulator* MetricsRegistry::findAccumulatorLocked(
    const std::string& name) const {
  LOADEX_ASSERT_HELD(mu_);
  const auto it = accums_.find(name);
  return it == accums_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  const sync::MutexLock lk(mu_);
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void MetricsRegistry::registerGauge(const std::string& name,
                                    std::function<double()> fn) {
  LOADEX_EXPECT(static_cast<bool>(fn), "gauge needs a callback");
  const sync::MutexLock lk(mu_);
  gauges_.push_back({name, std::move(fn), {}});
}

void MetricsRegistry::setSamplePeriod(double period_s) {
  LOADEX_EXPECT(period_s >= 0.0, "sample period must be non-negative");
  const sync::MutexLock lk(mu_);
  period_s_ = period_s;
  next_sample_ = period_s;
}

void MetricsRegistry::sampleNow(double now) {
  LOADEX_ASSERT_HELD(mu_);
  ++samples_taken_;
  for (auto& g : gauges_) {
    const double v = g.fn();
    g.samples.add(v);
    LOADEX_TRACE_COUNTER(now, g.name, v);
  }
  if (period_s_ > 0.0) next_sample_ = now + period_s_;
}

const Accumulator* MetricsRegistry::findGaugeStats(
    const std::string& name) const {
  const sync::MutexLock lk(mu_);
  for (const auto& g : gauges_)
    if (g.name == name) return &g.samples;
  return nullptr;
}

double MetricsRegistry::accumulatorFamilySum(const std::string& prefix,
                                             int nprocs) const {
  const sync::MutexLock lk(mu_);
  double total = 0.0;
  for (int r = 0; r < nprocs; ++r)
    if (const auto* a = findAccumulatorLocked(prefix + "/P" + std::to_string(r)))
      total += a->sum();
  return total;
}

double MetricsRegistry::accumulatorFamilyMax(const std::string& prefix,
                                             int nprocs) const {
  const sync::MutexLock lk(mu_);
  double best = 0.0;
  for (int r = 0; r < nprocs; ++r)
    if (const auto* a = findAccumulatorLocked(prefix + "/P" + std::to_string(r)))
      best = std::max(best, a->sum());
  return best;
}

void MetricsRegistry::writeJson(std::ostream& os) const {
  const sync::MutexLock lk(mu_);
  JsonWriter w(os);
  w.beginObject();
  w.field("schema", "loadex.metrics");
  w.field("schema_version", 1);

  w.key("counters").beginObject();
  for (const auto& [name, c] : counters_) w.field(name, c.get());
  w.endObject();

  w.key("accumulators").beginObject();
  for (const auto& [name, a] : accums_) {
    w.key(name).beginObject();
    w.field("count", a.count()).field("sum", a.sum());
    if (!a.empty())
      w.field("mean", a.mean()).field("min", a.min()).field("max", a.max());
    w.endObject();
  }
  w.endObject();

  w.key("histograms").beginObject();
  for (const auto& [name, h] : hists_) {
    w.key(name).beginObject();
    w.field("count", h.count()).field("sum", h.sum());
    w.key("bounds").beginArray();
    for (const double b : h.bounds()) w.value(b);
    w.endArray();
    w.key("buckets").beginArray();
    for (const std::int64_t b : h.buckets()) w.value(b);
    w.endArray();
    w.endObject();
  }
  w.endObject();

  w.key("gauges").beginObject();
  for (const auto& g : gauges_) {
    w.key(g.name).beginObject();
    w.field("samples", g.samples.count());
    if (!g.samples.empty())
      w.field("mean", g.samples.mean())
          .field("min", g.samples.min())
          .field("max", g.samples.max());
    w.endObject();
  }
  w.endObject();

  w.endObject();
  os << "\n";
}

}  // namespace loadex::obs
