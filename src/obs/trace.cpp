#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/expect.h"
#include "common/log.h"
#include "obs/json.h"

namespace loadex::obs {

namespace {

/// Simulated seconds -> trace microseconds, fixed 3-decimal precision
/// (nanosecond resolution) so export is byte-deterministic.
std::string traceTs(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return std::string(buf);
}

std::string flowIdHex(std::uint64_t flow) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(flow));
  return std::string(buf);
}

}  // namespace

TraceRecorder::TraceRecorder(TraceConfig config) : config_(std::move(config)) {
  LOADEX_EXPECT(config_.capacity > 0, "trace ring capacity must be positive");
}

void TraceRecorder::setTrackName(int track, std::string name) {
  const sync::MutexLock lk(mu_);
  track_names_[track] = std::move(name);
}

void TraceRecorder::nameRankTracks(int nprocs) {
  static constexpr const char* kLaneNames[kLaneCount] = {"main", "proto",
                                                         "net state",
                                                         "net app"};
  for (Rank r = 0; r < nprocs; ++r)
    for (int lane = 0; lane < kLaneCount; ++lane)
      setTrackName(rankTrack(r, static_cast<Lane>(lane)),
                   "P" + std::to_string(r) + " " + kLaneNames[lane]);
}

std::string TraceRecorder::messageName(int channel, int tag) const {
  const sync::MutexLock lk(mu_);
  if (message_namer_) return message_namer_(channel, tag);
  return (channel == 0 ? "state/" : "app/") + std::to_string(tag);
}

int TraceRecorder::intern(std::string_view name) {
  LOADEX_ASSERT_HELD(mu_);
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void TraceRecorder::push(const Event& ev) {
  LOADEX_ASSERT_HELD(mu_);
  ++recorded_;
  if (events_.size() < config_.capacity) {
    events_.push_back(ev);
    return;
  }
  events_[head_] = ev;
  head_ = (head_ + 1) % config_.capacity;
  ++dropped_;
}

void TraceRecorder::beginSpan(double t, int track, std::string_view name) {
  const sync::MutexLock lk(mu_);
  push({t, 0.0, 0.0, 0, track, intern(name), Phase::kBegin});
}

void TraceRecorder::endSpan(double t, int track) {
  const sync::MutexLock lk(mu_);
  push({t, 0.0, 0.0, 0, track, -1, Phase::kEnd});
}

void TraceRecorder::completeSpan(double t0, double t1, int track,
                                 std::string_view name) {
  const sync::MutexLock lk(mu_);
  push({t0, t1 - t0, 0.0, 0, track, intern(name), Phase::kComplete});
}

void TraceRecorder::instant(double t, int track, std::string_view name) {
  const sync::MutexLock lk(mu_);
  push({t, 0.0, 0.0, 0, track, intern(name), Phase::kInstant});
}

void TraceRecorder::counter(double t, std::string_view name, double value) {
  const sync::MutexLock lk(mu_);
  push({t, 0.0, value, 0, kGlobalTrack, intern(name), Phase::kCounter});
}

void TraceRecorder::flowBegin(double t, int track, std::string_view name,
                              std::uint64_t flow) {
  const sync::MutexLock lk(mu_);
  push({t, 0.0, 0.0, flow, track, intern(name), Phase::kFlowBegin});
}

void TraceRecorder::flowEnd(double t, int track, std::string_view name,
                            std::uint64_t flow) {
  const sync::MutexLock lk(mu_);
  push({t, 0.0, 0.0, flow, track, intern(name), Phase::kFlowEnd});
}

void TraceRecorder::writeChromeTrace(std::ostream& os) const {
  const sync::MutexLock lk(mu_);
  os << "{\n";
  os << "\"displayTimeUnit\": \"ms\",\n";
  os << "\"otherData\": {\"generator\": \"loadex_obs\", \"recorded\": "
     << recorded_ << ", \"dropped\": " << dropped_ << "},\n";
  os << "\"traceEvents\": [";

  bool first = true;
  const auto emit = [&](auto&& fn) {
    os << (first ? "\n" : ",\n");
    first = false;
    JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    fn(w);
    w.endObject();
  };

  // Metadata: process name, then track (thread) names + sort order.
  emit([&](JsonWriter& w) {
    w.field("name", "process_name").field("ph", "M").field("pid", 0)
        .field("tid", 0);
    w.key("args").beginObject().field("name", config_.process_name)
        .endObject();
  });
  for (const auto& [track, name] : track_names_) {
    if (track < 0) continue;
    emit([&, t = track, n = name](JsonWriter& w) {
      w.field("name", "thread_name").field("ph", "M").field("pid", 0)
          .field("tid", t);
      w.key("args").beginObject().field("name", n).endObject();
    });
    emit([&, t = track](JsonWriter& w) {
      w.field("name", "thread_sort_index").field("ph", "M").field("pid", 0)
          .field("tid", t);
      w.key("args").beginObject().field("sort_index", t).endObject();
    });
  }

  // Ring contents, oldest first (insertion order == simulated-time order).
  const std::size_t n = events_.size();
  const bool wrapped = dropped_ > 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Copy the event and resolve its interned name before building the
    // emit closure: the thread-safety analysis does not carry the held
    // lock into lambda bodies, so guarded reads stay out of them.
    const Event ev = events_[wrapped ? (head_ + i) % n : i];
    const std::string* ev_name =
        ev.name >= 0 ? &names_[static_cast<std::size_t>(ev.name)] : nullptr;
    emit([&](JsonWriter& w) {
      const char ph[2] = {static_cast<char>(ev.phase), '\0'};
      if (ev_name != nullptr) w.field("name", *ev_name);
      w.field("ph", ph);
      switch (ev.phase) {
        case Phase::kFlowBegin:
        case Phase::kFlowEnd:
          w.field("cat", "msg").field("id", flowIdHex(ev.flow));
          break;
        case Phase::kCounter:
          w.field("cat", "metric");
          break;
        default:
          w.field("cat", "sim");
      }
      w.field("pid", 0).field("tid", ev.track >= 0 ? ev.track : 0);
      w.key("ts").valueRaw(traceTs(ev.ts));
      if (ev.phase == Phase::kComplete)
        w.key("dur").valueRaw(traceTs(ev.dur));
      if (ev.phase == Phase::kInstant) w.field("s", "t");
      if (ev.phase == Phase::kFlowEnd) w.field("bp", "e");
      if (ev.phase == Phase::kCounter)
        w.key("args").beginObject()
            .key("value").valueRaw(jsonNumber(ev.value)).endObject();
    });
  }

  os << "\n]\n}\n";
}

bool TraceRecorder::writeChromeTraceFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    LOG_WARN("cannot open trace output file: " << path);
    return false;
  }
  writeChromeTrace(f);
  return static_cast<bool>(f);
}

}  // namespace loadex::obs
