// MetricsRegistry: named counters, accumulators, fixed-bucket histograms
// and sampled gauges for a single simulation run.
//
// Gauges are *pull*-style: a registered callback is evaluated whenever the
// event kernel crosses the sampling period (sim::EventQueue::runNext calls
// maybeSample). Sampling is driven purely by existing simulation events —
// it schedules nothing and draws no randomness, so enabling metrics leaves
// the event schedule bit-identical (the same guarantee as tracing).
//
// Instrumentation call sites go through LOADEX_METRIC(...), which, like
// the trace macros, evaluates its argument only when a registry is
// installed.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/obs.h"

namespace loadex::obs {

/// Monotonic named counter.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t get() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram: bounds are upper edges, ascending; a final
/// overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void add(double x);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last one is the overflow bucket.
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Serialises instrument lookup + mutation when rt rank threads record
  /// concurrently: the LOADEX_METRIC macro holds this lock across its
  /// whole statement, so `counter("x").add(1)` stays atomic. The
  /// simulator pays one uncontended lock per macro hit. Direct read-side
  /// calls (find*, writeJson callers, tests) run after recording threads
  /// quiesce and need no lock.
  std::unique_lock<std::mutex> scopedLock() const {  // loadex-lint: allow(banned-threading) obs is shared with the rt runtime
    return std::unique_lock<std::mutex>(mu_);  // loadex-lint: allow(banned-threading) obs is shared with the rt runtime
  }

  // ---- named instruments (created on first use) ------------------------
  Counter& counter(const std::string& name);
  Accumulator& accumulator(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // ---- read-side lookups (null if never touched) -----------------------
  const Counter* findCounter(const std::string& name) const;
  const Accumulator* findAccumulator(const std::string& name) const;
  const Histogram* findHistogram(const std::string& name) const;

  // ---- gauges ----------------------------------------------------------
  /// Register a gauge; `fn` is evaluated at every sample point. Samples
  /// accumulate into an Accumulator (mean/min/max) and, when a trace
  /// recorder is also installed, are emitted as trace counter events.
  void registerGauge(const std::string& name, std::function<double()> fn);
  /// Sampling period in simulated seconds; 0 (default) disables sampling.
  void setSamplePeriod(double period_s);
  double samplePeriod() const { return period_s_; }
  /// Called by the event kernel with the current simulated time; samples
  /// every registered gauge if the period elapsed. Cheap no-op otherwise.
  /// Gauge sampling is simulator-only (the rt runtime has no event kernel
  /// to drive it) and reaches here through LOADEX_METRIC, which already
  /// holds scopedLock() — so neither method takes the lock itself.
  void maybeSample(double now) {
    if (period_s_ <= 0.0 || now < next_sample_) return;
    sampleNow(now);
  }
  void sampleNow(double now);
  std::int64_t samplesTaken() const { return samples_taken_; }
  const Accumulator* findGaugeStats(const std::string& name) const;

  /// Sum of per-rank instrument values "<prefix>/P0".."<prefix>/P<n-1>"
  /// (absent ranks contribute 0); used for per-rank accumulator families.
  double accumulatorFamilySum(const std::string& prefix, int nprocs) const;
  double accumulatorFamilyMax(const std::string& prefix, int nprocs) const;

  /// Deterministic JSON dump (ordered by instrument name).
  void writeJson(std::ostream& os) const;

 private:
  struct Gauge {
    std::string name;
    std::function<double()> fn;
    Accumulator samples;
  };

  mutable std::mutex mu_;  // loadex-lint: allow(banned-threading) obs is shared with the rt runtime
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accums_;
  std::map<std::string, Histogram> hists_;
  std::vector<Gauge> gauges_;  ///< sampled in registration order
  double period_s_ = 0.0;
  double next_sample_ = 0.0;
  std::int64_t samples_taken_ = 0;
};

}  // namespace loadex::obs

/// Run `stmt` against the installed registry (named `lx_mx_`), only when
/// metrics are enabled; the statement is not evaluated otherwise. The
/// whole statement runs under the registry lock so rt rank threads can
/// record concurrently (lookup + mutation stay one atomic step).
#define LOADEX_METRIC(stmt)                                   \
  do {                                                        \
    if (auto* lx_mx_ = ::loadex::obs::metricsRegistry()) {    \
      const auto lx_lk_ = lx_mx_->scopedLock();               \
      lx_mx_->stmt;                                           \
    }                                                         \
  } while (0)
