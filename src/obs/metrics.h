// MetricsRegistry: named counters, accumulators, fixed-bucket histograms
// and sampled gauges for a single simulation run.
//
// Gauges are *pull*-style: a registered callback is evaluated whenever the
// event kernel crosses the sampling period (sim::EventQueue::runNext calls
// maybeSample). Sampling is driven purely by existing simulation events —
// it schedules nothing and draws no randomness, so enabling metrics leaves
// the event schedule bit-identical (the same guarantee as tracing).
//
// Instrumentation call sites go through LOADEX_METRIC(...), which, like
// the trace macros, evaluates its argument only when a registry is
// installed.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/sync.h"
#include "obs/obs.h"

namespace loadex::obs {

/// Monotonic named counter.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t get() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram: bounds are upper edges, ascending; a final
/// overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void add(double x);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / double(count_) : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last one is the overflow bucket.
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

  /// Quantile estimate for q in [0, 1] with linear interpolation inside
  /// the containing bucket. Contract, precisely:
  ///   * the target rank is q * count(); the containing bucket is the
  ///     first whose cumulative count reaches it;
  ///   * within bucket i the samples are assumed uniform over
  ///     (lower, bounds()[i]], where `lower` is bounds()[i-1], or 0.0 for
  ///     the first bucket (all histograms in this repo record
  ///     non-negative quantities);
  ///   * the overflow bucket has no upper edge, so any quantile landing
  ///     there is clamped to the last bound — a *lower* bound on the true
  ///     value. Size the bounds past the expected tail (see logBounds)
  ///     when p99-style readings matter.
  /// An empty histogram returns 0.0.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Log-spaced bounds for latency/sojourn-style histograms: per_decade
  /// evenly log-spaced edges per factor of 10, from `lo` up to and
  /// including the first edge >= hi. Gives constant *relative* quantile
  /// resolution across the whole tail, unlike the linear stall-tuned
  /// bucket sets used elsewhere.
  static std::vector<double> logBounds(double lo, double hi, int per_decade);

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// The registry lock. The LOADEX_METRIC macro holds it across its whole
  /// statement, so `counter("x").add(1)` stays atomic when rt rank
  /// threads record concurrently (the simulator pays one uncontended lock
  /// per macro hit). Exposed so callers making several instrument calls
  /// can hold one critical section; the write-side instrument getters
  /// below require it.
  sync::Mutex& mu() const LOADEX_RETURN_CAPABILITY(mu_) { return mu_; }

  // ---- named instruments (created on first use; caller holds mu()) -----
  Counter& counter(const std::string& name) LOADEX_REQUIRES(mu_);
  Accumulator& accumulator(const std::string& name) LOADEX_REQUIRES(mu_);
  Histogram& histogram(const std::string& name, std::vector<double> bounds)
      LOADEX_REQUIRES(mu_);

  // ---- read-side lookups (null if never touched; lock internally, but
  // the returned pointers are only stable reads once the recording
  // threads have quiesced) ----------------------------------------------
  const Counter* findCounter(const std::string& name) const
      LOADEX_EXCLUDES(mu_);
  const Accumulator* findAccumulator(const std::string& name) const
      LOADEX_EXCLUDES(mu_);
  const Histogram* findHistogram(const std::string& name) const
      LOADEX_EXCLUDES(mu_);

  // ---- gauges ----------------------------------------------------------
  /// Register a gauge; `fn` is evaluated at every sample point. Samples
  /// accumulate into an Accumulator (mean/min/max) and, when a trace
  /// recorder is also installed, are emitted as trace counter events.
  void registerGauge(const std::string& name, std::function<double()> fn)
      LOADEX_EXCLUDES(mu_);
  /// Sampling period in simulated seconds; 0 (default) disables sampling.
  void setSamplePeriod(double period_s) LOADEX_EXCLUDES(mu_);
  double samplePeriod() const LOADEX_EXCLUDES(mu_) {
    const sync::MutexLock lk(mu_);
    return period_s_;
  }
  /// Called by the event kernel with the current simulated time; samples
  /// every registered gauge if the period elapsed. Cheap no-op otherwise.
  /// Gauge sampling is simulator-only (the rt runtime has no event kernel
  /// to drive it) and reaches here through LOADEX_METRIC, which already
  /// holds mu() — so neither method takes the lock itself.
  void maybeSample(double now) LOADEX_REQUIRES(mu_) {
    if (period_s_ <= 0.0 || now < next_sample_) return;
    sampleNow(now);
  }
  void sampleNow(double now) LOADEX_REQUIRES(mu_);
  std::int64_t samplesTaken() const LOADEX_EXCLUDES(mu_) {
    const sync::MutexLock lk(mu_);
    return samples_taken_;
  }
  const Accumulator* findGaugeStats(const std::string& name) const
      LOADEX_EXCLUDES(mu_);

  /// Sum of per-rank instrument values "<prefix>/P0".."<prefix>/P<n-1>"
  /// (absent ranks contribute 0); used for per-rank accumulator families.
  double accumulatorFamilySum(const std::string& prefix, int nprocs) const
      LOADEX_EXCLUDES(mu_);
  double accumulatorFamilyMax(const std::string& prefix, int nprocs) const
      LOADEX_EXCLUDES(mu_);

  /// Deterministic JSON dump (ordered by instrument name).
  void writeJson(std::ostream& os) const LOADEX_EXCLUDES(mu_);

 private:
  struct Gauge {
    std::string name;
    std::function<double()> fn;
    Accumulator samples;
  };

  /// Lookup core running under an already-held mu(): shared by
  /// findAccumulator and the family aggregations, which hold the lock
  /// across their whole scan.
  const Accumulator* findAccumulatorLocked(const std::string& name) const
      LOADEX_REQUIRES(mu_);

  /// Ranked below the trace ring: sampleNow emits trace counter events
  /// while holding this lock.
  mutable sync::Mutex mu_{sync::LockRank::kMetricsRegistry};
  std::map<std::string, Counter> counters_ LOADEX_GUARDED_BY(mu_);
  std::map<std::string, Accumulator> accums_ LOADEX_GUARDED_BY(mu_);
  std::map<std::string, Histogram> hists_ LOADEX_GUARDED_BY(mu_);
  /// Sampled in registration order.
  std::vector<Gauge> gauges_ LOADEX_GUARDED_BY(mu_);
  double period_s_ LOADEX_GUARDED_BY(mu_) = 0.0;
  double next_sample_ LOADEX_GUARDED_BY(mu_) = 0.0;
  std::int64_t samples_taken_ LOADEX_GUARDED_BY(mu_) = 0;
};

}  // namespace loadex::obs

/// Run `stmt` against the installed registry (named `lx_mx_`), only when
/// metrics are enabled; the statement is not evaluated otherwise. The
/// whole statement runs under the registry lock so rt rank threads can
/// record concurrently (lookup + mutation stay one atomic step).
#define LOADEX_METRIC(stmt)                                   \
  do {                                                        \
    if (auto* lx_mx_ = ::loadex::obs::metricsRegistry()) {    \
      const ::loadex::sync::MutexLock lx_lk_(lx_mx_->mu());   \
      lx_mx_->stmt;                                           \
    }                                                         \
  } while (0)
